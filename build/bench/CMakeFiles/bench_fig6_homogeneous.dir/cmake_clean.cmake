file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_homogeneous.dir/fig6_homogeneous.cc.o"
  "CMakeFiles/bench_fig6_homogeneous.dir/fig6_homogeneous.cc.o.d"
  "bench_fig6_homogeneous"
  "bench_fig6_homogeneous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_homogeneous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
