file(REMOVE_RECURSE
  "CMakeFiles/bench_secVF_scheduler.dir/secVF_scheduler.cc.o"
  "CMakeFiles/bench_secVF_scheduler.dir/secVF_scheduler.cc.o.d"
  "bench_secVF_scheduler"
  "bench_secVF_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_secVF_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
