# Empty compiler generated dependencies file for bench_secVF_scheduler.
# This may be replaced when dependencies are built.
