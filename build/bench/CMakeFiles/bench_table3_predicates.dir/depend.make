# Empty dependencies file for bench_table3_predicates.
# This may be replaced when dependencies are built.
