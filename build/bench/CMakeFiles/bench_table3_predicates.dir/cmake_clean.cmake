file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_predicates.dir/table3_predicates.cc.o"
  "CMakeFiles/bench_table3_predicates.dir/table3_predicates.cc.o.d"
  "bench_table3_predicates"
  "bench_table3_predicates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_predicates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
