file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_locality_wait.dir/ablate_locality_wait.cc.o"
  "CMakeFiles/bench_ablate_locality_wait.dir/ablate_locality_wait.cc.o.d"
  "bench_ablate_locality_wait"
  "bench_ablate_locality_wait.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_locality_wait.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
