# Empty dependencies file for bench_ablate_locality_wait.
# This may be replaced when dependencies are built.
