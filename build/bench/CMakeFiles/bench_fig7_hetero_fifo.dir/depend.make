# Empty dependencies file for bench_fig7_hetero_fifo.
# This may be replaced when dependencies are built.
