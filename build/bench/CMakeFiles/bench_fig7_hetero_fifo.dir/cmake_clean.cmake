file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_hetero_fifo.dir/fig7_hetero_fifo.cc.o"
  "CMakeFiles/bench_fig7_hetero_fifo.dir/fig7_hetero_fifo.cc.o.d"
  "bench_fig7_hetero_fifo"
  "bench_fig7_hetero_fifo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_hetero_fifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
