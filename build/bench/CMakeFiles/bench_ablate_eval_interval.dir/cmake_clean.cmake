file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_eval_interval.dir/ablate_eval_interval.cc.o"
  "CMakeFiles/bench_ablate_eval_interval.dir/ablate_eval_interval.cc.o.d"
  "bench_ablate_eval_interval"
  "bench_ablate_eval_interval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_eval_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
