# Empty dependencies file for bench_ablate_eval_interval.
# This may be replaced when dependencies are built.
