# Empty dependencies file for bench_ablate_adaptive.
# This may be replaced when dependencies are built.
