file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_adaptive.dir/ablate_adaptive.cc.o"
  "CMakeFiles/bench_ablate_adaptive.dir/ablate_adaptive.cc.o.d"
  "bench_ablate_adaptive"
  "bench_ablate_adaptive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_adaptive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
