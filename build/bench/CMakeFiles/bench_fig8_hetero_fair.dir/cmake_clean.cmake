file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_hetero_fair.dir/fig8_hetero_fair.cc.o"
  "CMakeFiles/bench_fig8_hetero_fair.dir/fig8_hetero_fair.cc.o.d"
  "bench_fig8_hetero_fair"
  "bench_fig8_hetero_fair.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_hetero_fair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
