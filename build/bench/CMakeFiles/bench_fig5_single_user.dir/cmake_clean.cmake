file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_single_user.dir/fig5_single_user.cc.o"
  "CMakeFiles/bench_fig5_single_user.dir/fig5_single_user.cc.o.d"
  "bench_fig5_single_user"
  "bench_fig5_single_user.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_single_user.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
