file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_estimator.dir/ablate_estimator.cc.o"
  "CMakeFiles/bench_ablate_estimator.dir/ablate_estimator.cc.o.d"
  "bench_ablate_estimator"
  "bench_ablate_estimator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_estimator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
