file(REMOVE_RECURSE
  "CMakeFiles/bench_ablate_grablimit.dir/ablate_grablimit.cc.o"
  "CMakeFiles/bench_ablate_grablimit.dir/ablate_grablimit.cc.o.d"
  "bench_ablate_grablimit"
  "bench_ablate_grablimit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablate_grablimit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
