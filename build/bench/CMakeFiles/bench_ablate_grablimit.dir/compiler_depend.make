# Empty compiler generated dependencies file for bench_ablate_grablimit.
# This may be replaced when dependencies are built.
