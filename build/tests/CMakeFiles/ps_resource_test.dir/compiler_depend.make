# Empty compiler generated dependencies file for ps_resource_test.
# This may be replaced when dependencies are built.
