file(REMOVE_RECURSE
  "CMakeFiles/ps_resource_test.dir/sim/ps_resource_test.cc.o"
  "CMakeFiles/ps_resource_test.dir/sim/ps_resource_test.cc.o.d"
  "ps_resource_test"
  "ps_resource_test.pdb"
  "ps_resource_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ps_resource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
