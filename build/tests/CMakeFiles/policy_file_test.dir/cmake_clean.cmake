file(REMOVE_RECURSE
  "CMakeFiles/policy_file_test.dir/dynamic/policy_file_test.cc.o"
  "CMakeFiles/policy_file_test.dir/dynamic/policy_file_test.cc.o.d"
  "policy_file_test"
  "policy_file_test.pdb"
  "policy_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
