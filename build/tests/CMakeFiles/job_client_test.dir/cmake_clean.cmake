file(REMOVE_RECURSE
  "CMakeFiles/job_client_test.dir/mapred/job_client_test.cc.o"
  "CMakeFiles/job_client_test.dir/mapred/job_client_test.cc.o.d"
  "job_client_test"
  "job_client_test.pdb"
  "job_client_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_client_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
