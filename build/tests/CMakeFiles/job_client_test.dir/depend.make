# Empty dependencies file for job_client_test.
# This may be replaced when dependencies are built.
