# Empty dependencies file for input_splits_test.
# This may be replaced when dependencies are built.
