file(REMOVE_RECURSE
  "CMakeFiles/input_splits_test.dir/mapred/input_splits_test.cc.o"
  "CMakeFiles/input_splits_test.dir/mapred/input_splits_test.cc.o.d"
  "input_splits_test"
  "input_splits_test.pdb"
  "input_splits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/input_splits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
