file(REMOVE_RECURSE
  "CMakeFiles/job_tracker_test.dir/mapred/job_tracker_test.cc.o"
  "CMakeFiles/job_tracker_test.dir/mapred/job_tracker_test.cc.o.d"
  "job_tracker_test"
  "job_tracker_test.pdb"
  "job_tracker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/job_tracker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
