# Empty dependencies file for job_tracker_test.
# This may be replaced when dependencies are built.
