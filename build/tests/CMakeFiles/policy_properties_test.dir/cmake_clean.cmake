file(REMOVE_RECURSE
  "CMakeFiles/policy_properties_test.dir/integration/policy_properties_test.cc.o"
  "CMakeFiles/policy_properties_test.dir/integration/policy_properties_test.cc.o.d"
  "policy_properties_test"
  "policy_properties_test.pdb"
  "policy_properties_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_properties_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
