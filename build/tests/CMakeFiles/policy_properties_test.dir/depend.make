# Empty dependencies file for policy_properties_test.
# This may be replaced when dependencies are built.
