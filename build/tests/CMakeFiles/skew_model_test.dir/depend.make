# Empty dependencies file for skew_model_test.
# This may be replaced when dependencies are built.
