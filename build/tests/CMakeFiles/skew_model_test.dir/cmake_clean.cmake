file(REMOVE_RECURSE
  "CMakeFiles/skew_model_test.dir/tpch/skew_model_test.cc.o"
  "CMakeFiles/skew_model_test.dir/tpch/skew_model_test.cc.o.d"
  "skew_model_test"
  "skew_model_test.pdb"
  "skew_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/skew_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
