# Empty dependencies file for grab_limit_expr_test.
# This may be replaced when dependencies are built.
