file(REMOVE_RECURSE
  "CMakeFiles/grab_limit_expr_test.dir/dynamic/grab_limit_expr_test.cc.o"
  "CMakeFiles/grab_limit_expr_test.dir/dynamic/grab_limit_expr_test.cc.o.d"
  "grab_limit_expr_test"
  "grab_limit_expr_test.pdb"
  "grab_limit_expr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grab_limit_expr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
