# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for grab_limit_expr_test.
