
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration/sim_end_to_end_test.cc" "tests/CMakeFiles/sim_end_to_end_test.dir/integration/sim_end_to_end_test.cc.o" "gcc" "tests/CMakeFiles/sim_end_to_end_test.dir/integration/sim_end_to_end_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dmr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/dmr_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/dmr_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/dmr_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/dmr_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/scheduler/CMakeFiles/dmr_scheduler.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamic/CMakeFiles/dmr_dynamic.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/dmr_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/hive/CMakeFiles/dmr_hive.dir/DependInfo.cmake"
  "/root/repo/build/src/exec/CMakeFiles/dmr_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/dmr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/testbed/CMakeFiles/dmr_testbed.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
