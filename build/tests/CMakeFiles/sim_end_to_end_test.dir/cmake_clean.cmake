file(REMOVE_RECURSE
  "CMakeFiles/sim_end_to_end_test.dir/integration/sim_end_to_end_test.cc.o"
  "CMakeFiles/sim_end_to_end_test.dir/integration/sim_end_to_end_test.cc.o.d"
  "sim_end_to_end_test"
  "sim_end_to_end_test.pdb"
  "sim_end_to_end_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_end_to_end_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
