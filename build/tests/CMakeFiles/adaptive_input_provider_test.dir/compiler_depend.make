# Empty compiler generated dependencies file for adaptive_input_provider_test.
# This may be replaced when dependencies are built.
