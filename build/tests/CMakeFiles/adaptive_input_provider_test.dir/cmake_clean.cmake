file(REMOVE_RECURSE
  "CMakeFiles/adaptive_input_provider_test.dir/dynamic/adaptive_input_provider_test.cc.o"
  "CMakeFiles/adaptive_input_provider_test.dir/dynamic/adaptive_input_provider_test.cc.o.d"
  "adaptive_input_provider_test"
  "adaptive_input_provider_test.pdb"
  "adaptive_input_provider_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_input_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
