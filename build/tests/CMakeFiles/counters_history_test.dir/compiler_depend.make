# Empty compiler generated dependencies file for counters_history_test.
# This may be replaced when dependencies are built.
