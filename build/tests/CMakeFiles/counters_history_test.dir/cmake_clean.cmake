file(REMOVE_RECURSE
  "CMakeFiles/counters_history_test.dir/mapred/counters_history_test.cc.o"
  "CMakeFiles/counters_history_test.dir/mapred/counters_history_test.cc.o.d"
  "counters_history_test"
  "counters_history_test.pdb"
  "counters_history_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/counters_history_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
