# Empty compiler generated dependencies file for lineitem_test.
# This may be replaced when dependencies are built.
