file(REMOVE_RECURSE
  "CMakeFiles/lineitem_test.dir/tpch/lineitem_test.cc.o"
  "CMakeFiles/lineitem_test.dir/tpch/lineitem_test.cc.o.d"
  "lineitem_test"
  "lineitem_test.pdb"
  "lineitem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lineitem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
