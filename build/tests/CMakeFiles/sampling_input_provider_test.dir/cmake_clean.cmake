file(REMOVE_RECURSE
  "CMakeFiles/sampling_input_provider_test.dir/dynamic/sampling_input_provider_test.cc.o"
  "CMakeFiles/sampling_input_provider_test.dir/dynamic/sampling_input_provider_test.cc.o.d"
  "sampling_input_provider_test"
  "sampling_input_provider_test.pdb"
  "sampling_input_provider_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampling_input_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
