file(REMOVE_RECURSE
  "CMakeFiles/speculative_execution_test.dir/integration/speculative_execution_test.cc.o"
  "CMakeFiles/speculative_execution_test.dir/integration/speculative_execution_test.cc.o.d"
  "speculative_execution_test"
  "speculative_execution_test.pdb"
  "speculative_execution_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculative_execution_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
