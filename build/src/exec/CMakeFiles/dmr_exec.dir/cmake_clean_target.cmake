file(REMOVE_RECURSE
  "libdmr_exec.a"
)
