
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/exec/local_runtime.cc" "src/exec/CMakeFiles/dmr_exec.dir/local_runtime.cc.o" "gcc" "src/exec/CMakeFiles/dmr_exec.dir/local_runtime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hive/CMakeFiles/dmr_hive.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/dmr_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/tpch/CMakeFiles/dmr_tpch.dir/DependInfo.cmake"
  "/root/repo/build/src/dynamic/CMakeFiles/dmr_dynamic.dir/DependInfo.cmake"
  "/root/repo/build/src/mapred/CMakeFiles/dmr_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dmr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/dmr_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/dmr_expr.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
