file(REMOVE_RECURSE
  "CMakeFiles/dmr_exec.dir/local_runtime.cc.o"
  "CMakeFiles/dmr_exec.dir/local_runtime.cc.o.d"
  "libdmr_exec.a"
  "libdmr_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
