# Empty dependencies file for dmr_exec.
# This may be replaced when dependencies are built.
