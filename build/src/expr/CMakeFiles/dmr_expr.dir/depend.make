# Empty dependencies file for dmr_expr.
# This may be replaced when dependencies are built.
