file(REMOVE_RECURSE
  "libdmr_expr.a"
)
