file(REMOVE_RECURSE
  "CMakeFiles/dmr_expr.dir/expression.cc.o"
  "CMakeFiles/dmr_expr.dir/expression.cc.o.d"
  "CMakeFiles/dmr_expr.dir/value.cc.o"
  "CMakeFiles/dmr_expr.dir/value.cc.o.d"
  "libdmr_expr.a"
  "libdmr_expr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
