file(REMOVE_RECURSE
  "libdmr_dfs.a"
)
