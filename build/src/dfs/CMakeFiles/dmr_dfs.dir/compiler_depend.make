# Empty compiler generated dependencies file for dmr_dfs.
# This may be replaced when dependencies are built.
