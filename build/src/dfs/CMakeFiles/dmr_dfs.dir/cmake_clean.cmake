file(REMOVE_RECURSE
  "CMakeFiles/dmr_dfs.dir/file_system.cc.o"
  "CMakeFiles/dmr_dfs.dir/file_system.cc.o.d"
  "libdmr_dfs.a"
  "libdmr_dfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_dfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
