# Empty compiler generated dependencies file for dmr_sim.
# This may be replaced when dependencies are built.
