file(REMOVE_RECURSE
  "libdmr_sim.a"
)
