file(REMOVE_RECURSE
  "CMakeFiles/dmr_sim.dir/ps_resource.cc.o"
  "CMakeFiles/dmr_sim.dir/ps_resource.cc.o.d"
  "CMakeFiles/dmr_sim.dir/simulation.cc.o"
  "CMakeFiles/dmr_sim.dir/simulation.cc.o.d"
  "libdmr_sim.a"
  "libdmr_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
