file(REMOVE_RECURSE
  "CMakeFiles/dmr_mapred.dir/counters.cc.o"
  "CMakeFiles/dmr_mapred.dir/counters.cc.o.d"
  "CMakeFiles/dmr_mapred.dir/input_splits.cc.o"
  "CMakeFiles/dmr_mapred.dir/input_splits.cc.o.d"
  "CMakeFiles/dmr_mapred.dir/job.cc.o"
  "CMakeFiles/dmr_mapred.dir/job.cc.o.d"
  "CMakeFiles/dmr_mapred.dir/job_client.cc.o"
  "CMakeFiles/dmr_mapred.dir/job_client.cc.o.d"
  "CMakeFiles/dmr_mapred.dir/job_history.cc.o"
  "CMakeFiles/dmr_mapred.dir/job_history.cc.o.d"
  "CMakeFiles/dmr_mapred.dir/job_tracker.cc.o"
  "CMakeFiles/dmr_mapred.dir/job_tracker.cc.o.d"
  "libdmr_mapred.a"
  "libdmr_mapred.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_mapred.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
