
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapred/counters.cc" "src/mapred/CMakeFiles/dmr_mapred.dir/counters.cc.o" "gcc" "src/mapred/CMakeFiles/dmr_mapred.dir/counters.cc.o.d"
  "/root/repo/src/mapred/input_splits.cc" "src/mapred/CMakeFiles/dmr_mapred.dir/input_splits.cc.o" "gcc" "src/mapred/CMakeFiles/dmr_mapred.dir/input_splits.cc.o.d"
  "/root/repo/src/mapred/job.cc" "src/mapred/CMakeFiles/dmr_mapred.dir/job.cc.o" "gcc" "src/mapred/CMakeFiles/dmr_mapred.dir/job.cc.o.d"
  "/root/repo/src/mapred/job_client.cc" "src/mapred/CMakeFiles/dmr_mapred.dir/job_client.cc.o" "gcc" "src/mapred/CMakeFiles/dmr_mapred.dir/job_client.cc.o.d"
  "/root/repo/src/mapred/job_history.cc" "src/mapred/CMakeFiles/dmr_mapred.dir/job_history.cc.o" "gcc" "src/mapred/CMakeFiles/dmr_mapred.dir/job_history.cc.o.d"
  "/root/repo/src/mapred/job_tracker.cc" "src/mapred/CMakeFiles/dmr_mapred.dir/job_tracker.cc.o" "gcc" "src/mapred/CMakeFiles/dmr_mapred.dir/job_tracker.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dmr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/dmr_dfs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
