# Empty compiler generated dependencies file for dmr_mapred.
# This may be replaced when dependencies are built.
