file(REMOVE_RECURSE
  "libdmr_mapred.a"
)
