file(REMOVE_RECURSE
  "libdmr_workload.a"
)
