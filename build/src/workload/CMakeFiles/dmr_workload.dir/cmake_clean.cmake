file(REMOVE_RECURSE
  "CMakeFiles/dmr_workload.dir/workload_driver.cc.o"
  "CMakeFiles/dmr_workload.dir/workload_driver.cc.o.d"
  "libdmr_workload.a"
  "libdmr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
