# Empty compiler generated dependencies file for dmr_workload.
# This may be replaced when dependencies are built.
