file(REMOVE_RECURSE
  "CMakeFiles/dmr_cluster.dir/cluster.cc.o"
  "CMakeFiles/dmr_cluster.dir/cluster.cc.o.d"
  "CMakeFiles/dmr_cluster.dir/cluster_config.cc.o"
  "CMakeFiles/dmr_cluster.dir/cluster_config.cc.o.d"
  "CMakeFiles/dmr_cluster.dir/cluster_monitor.cc.o"
  "CMakeFiles/dmr_cluster.dir/cluster_monitor.cc.o.d"
  "CMakeFiles/dmr_cluster.dir/node.cc.o"
  "CMakeFiles/dmr_cluster.dir/node.cc.o.d"
  "libdmr_cluster.a"
  "libdmr_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
