file(REMOVE_RECURSE
  "CMakeFiles/dmr_tpch.dir/dataset_catalog.cc.o"
  "CMakeFiles/dmr_tpch.dir/dataset_catalog.cc.o.d"
  "CMakeFiles/dmr_tpch.dir/dataset_io.cc.o"
  "CMakeFiles/dmr_tpch.dir/dataset_io.cc.o.d"
  "CMakeFiles/dmr_tpch.dir/generator.cc.o"
  "CMakeFiles/dmr_tpch.dir/generator.cc.o.d"
  "CMakeFiles/dmr_tpch.dir/lineitem.cc.o"
  "CMakeFiles/dmr_tpch.dir/lineitem.cc.o.d"
  "CMakeFiles/dmr_tpch.dir/predicates.cc.o"
  "CMakeFiles/dmr_tpch.dir/predicates.cc.o.d"
  "CMakeFiles/dmr_tpch.dir/skew_model.cc.o"
  "CMakeFiles/dmr_tpch.dir/skew_model.cc.o.d"
  "libdmr_tpch.a"
  "libdmr_tpch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_tpch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
