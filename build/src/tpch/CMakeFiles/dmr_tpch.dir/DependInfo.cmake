
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tpch/dataset_catalog.cc" "src/tpch/CMakeFiles/dmr_tpch.dir/dataset_catalog.cc.o" "gcc" "src/tpch/CMakeFiles/dmr_tpch.dir/dataset_catalog.cc.o.d"
  "/root/repo/src/tpch/dataset_io.cc" "src/tpch/CMakeFiles/dmr_tpch.dir/dataset_io.cc.o" "gcc" "src/tpch/CMakeFiles/dmr_tpch.dir/dataset_io.cc.o.d"
  "/root/repo/src/tpch/generator.cc" "src/tpch/CMakeFiles/dmr_tpch.dir/generator.cc.o" "gcc" "src/tpch/CMakeFiles/dmr_tpch.dir/generator.cc.o.d"
  "/root/repo/src/tpch/lineitem.cc" "src/tpch/CMakeFiles/dmr_tpch.dir/lineitem.cc.o" "gcc" "src/tpch/CMakeFiles/dmr_tpch.dir/lineitem.cc.o.d"
  "/root/repo/src/tpch/predicates.cc" "src/tpch/CMakeFiles/dmr_tpch.dir/predicates.cc.o" "gcc" "src/tpch/CMakeFiles/dmr_tpch.dir/predicates.cc.o.d"
  "/root/repo/src/tpch/skew_model.cc" "src/tpch/CMakeFiles/dmr_tpch.dir/skew_model.cc.o" "gcc" "src/tpch/CMakeFiles/dmr_tpch.dir/skew_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/dmr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/expr/CMakeFiles/dmr_expr.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
