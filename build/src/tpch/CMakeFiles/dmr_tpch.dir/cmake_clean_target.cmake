file(REMOVE_RECURSE
  "libdmr_tpch.a"
)
