# Empty compiler generated dependencies file for dmr_tpch.
# This may be replaced when dependencies are built.
