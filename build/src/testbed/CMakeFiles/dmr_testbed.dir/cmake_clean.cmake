file(REMOVE_RECURSE
  "CMakeFiles/dmr_testbed.dir/testbed.cc.o"
  "CMakeFiles/dmr_testbed.dir/testbed.cc.o.d"
  "libdmr_testbed.a"
  "libdmr_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
