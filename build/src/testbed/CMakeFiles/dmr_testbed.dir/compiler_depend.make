# Empty compiler generated dependencies file for dmr_testbed.
# This may be replaced when dependencies are built.
