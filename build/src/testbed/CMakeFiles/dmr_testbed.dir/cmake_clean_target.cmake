file(REMOVE_RECURSE
  "libdmr_testbed.a"
)
