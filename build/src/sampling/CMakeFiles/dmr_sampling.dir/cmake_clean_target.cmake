file(REMOVE_RECURSE
  "libdmr_sampling.a"
)
