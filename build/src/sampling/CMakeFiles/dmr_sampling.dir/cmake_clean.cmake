file(REMOVE_RECURSE
  "CMakeFiles/dmr_sampling.dir/sampler.cc.o"
  "CMakeFiles/dmr_sampling.dir/sampler.cc.o.d"
  "CMakeFiles/dmr_sampling.dir/sampling_job.cc.o"
  "CMakeFiles/dmr_sampling.dir/sampling_job.cc.o.d"
  "libdmr_sampling.a"
  "libdmr_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
