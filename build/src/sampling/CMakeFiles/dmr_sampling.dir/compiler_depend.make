# Empty compiler generated dependencies file for dmr_sampling.
# This may be replaced when dependencies are built.
