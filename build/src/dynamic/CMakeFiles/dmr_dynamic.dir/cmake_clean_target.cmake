file(REMOVE_RECURSE
  "libdmr_dynamic.a"
)
