file(REMOVE_RECURSE
  "CMakeFiles/dmr_dynamic.dir/adaptive_input_provider.cc.o"
  "CMakeFiles/dmr_dynamic.dir/adaptive_input_provider.cc.o.d"
  "CMakeFiles/dmr_dynamic.dir/grab_limit_expr.cc.o"
  "CMakeFiles/dmr_dynamic.dir/grab_limit_expr.cc.o.d"
  "CMakeFiles/dmr_dynamic.dir/growth_policy.cc.o"
  "CMakeFiles/dmr_dynamic.dir/growth_policy.cc.o.d"
  "CMakeFiles/dmr_dynamic.dir/sampling_input_provider.cc.o"
  "CMakeFiles/dmr_dynamic.dir/sampling_input_provider.cc.o.d"
  "libdmr_dynamic.a"
  "libdmr_dynamic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_dynamic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
