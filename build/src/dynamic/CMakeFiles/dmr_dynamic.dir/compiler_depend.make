# Empty compiler generated dependencies file for dmr_dynamic.
# This may be replaced when dependencies are built.
