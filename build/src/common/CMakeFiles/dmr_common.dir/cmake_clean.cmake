file(REMOVE_RECURSE
  "CMakeFiles/dmr_common.dir/histogram.cc.o"
  "CMakeFiles/dmr_common.dir/histogram.cc.o.d"
  "CMakeFiles/dmr_common.dir/logging.cc.o"
  "CMakeFiles/dmr_common.dir/logging.cc.o.d"
  "CMakeFiles/dmr_common.dir/properties.cc.o"
  "CMakeFiles/dmr_common.dir/properties.cc.o.d"
  "CMakeFiles/dmr_common.dir/random.cc.o"
  "CMakeFiles/dmr_common.dir/random.cc.o.d"
  "CMakeFiles/dmr_common.dir/status.cc.o"
  "CMakeFiles/dmr_common.dir/status.cc.o.d"
  "CMakeFiles/dmr_common.dir/strings.cc.o"
  "CMakeFiles/dmr_common.dir/strings.cc.o.d"
  "CMakeFiles/dmr_common.dir/table_printer.cc.o"
  "CMakeFiles/dmr_common.dir/table_printer.cc.o.d"
  "CMakeFiles/dmr_common.dir/time_series.cc.o"
  "CMakeFiles/dmr_common.dir/time_series.cc.o.d"
  "libdmr_common.a"
  "libdmr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
