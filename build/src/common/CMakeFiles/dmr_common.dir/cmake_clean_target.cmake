file(REMOVE_RECURSE
  "libdmr_common.a"
)
