file(REMOVE_RECURSE
  "CMakeFiles/dmr_hive.dir/compiler.cc.o"
  "CMakeFiles/dmr_hive.dir/compiler.cc.o.d"
  "CMakeFiles/dmr_hive.dir/lexer.cc.o"
  "CMakeFiles/dmr_hive.dir/lexer.cc.o.d"
  "CMakeFiles/dmr_hive.dir/parser.cc.o"
  "CMakeFiles/dmr_hive.dir/parser.cc.o.d"
  "libdmr_hive.a"
  "libdmr_hive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_hive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
