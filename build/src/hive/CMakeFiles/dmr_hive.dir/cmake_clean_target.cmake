file(REMOVE_RECURSE
  "libdmr_hive.a"
)
