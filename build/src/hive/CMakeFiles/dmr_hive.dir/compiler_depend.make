# Empty compiler generated dependencies file for dmr_hive.
# This may be replaced when dependencies are built.
