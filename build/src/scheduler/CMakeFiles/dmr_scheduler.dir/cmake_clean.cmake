file(REMOVE_RECURSE
  "CMakeFiles/dmr_scheduler.dir/fair_scheduler.cc.o"
  "CMakeFiles/dmr_scheduler.dir/fair_scheduler.cc.o.d"
  "CMakeFiles/dmr_scheduler.dir/fifo_scheduler.cc.o"
  "CMakeFiles/dmr_scheduler.dir/fifo_scheduler.cc.o.d"
  "libdmr_scheduler.a"
  "libdmr_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dmr_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
