file(REMOVE_RECURSE
  "libdmr_scheduler.a"
)
