
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/scheduler/fair_scheduler.cc" "src/scheduler/CMakeFiles/dmr_scheduler.dir/fair_scheduler.cc.o" "gcc" "src/scheduler/CMakeFiles/dmr_scheduler.dir/fair_scheduler.cc.o.d"
  "/root/repo/src/scheduler/fifo_scheduler.cc" "src/scheduler/CMakeFiles/dmr_scheduler.dir/fifo_scheduler.cc.o" "gcc" "src/scheduler/CMakeFiles/dmr_scheduler.dir/fifo_scheduler.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mapred/CMakeFiles/dmr_mapred.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/dmr_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dmr_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/dfs/CMakeFiles/dmr_dfs.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/dmr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
