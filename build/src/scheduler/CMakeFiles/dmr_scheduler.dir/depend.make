# Empty dependencies file for dmr_scheduler.
# This may be replaced when dependencies are built.
