file(REMOVE_RECURSE
  "CMakeFiles/hive_shell.dir/hive_shell.cpp.o"
  "CMakeFiles/hive_shell.dir/hive_shell.cpp.o.d"
  "hive_shell"
  "hive_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hive_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
