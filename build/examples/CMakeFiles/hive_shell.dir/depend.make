# Empty dependencies file for hive_shell.
# This may be replaced when dependencies are built.
