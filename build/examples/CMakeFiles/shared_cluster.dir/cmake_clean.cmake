file(REMOVE_RECURSE
  "CMakeFiles/shared_cluster.dir/shared_cluster.cpp.o"
  "CMakeFiles/shared_cluster.dir/shared_cluster.cpp.o.d"
  "shared_cluster"
  "shared_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shared_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
