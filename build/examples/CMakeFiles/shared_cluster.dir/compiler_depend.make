# Empty compiler generated dependencies file for shared_cluster.
# This may be replaced when dependencies are built.
