# Empty dependencies file for sample_tool.
# This may be replaced when dependencies are built.
