file(REMOVE_RECURSE
  "CMakeFiles/sample_tool.dir/sample_tool.cpp.o"
  "CMakeFiles/sample_tool.dir/sample_tool.cpp.o.d"
  "sample_tool"
  "sample_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
