#include "hive/compiler.h"

#include <gtest/gtest.h>

#include "hive/parser.h"
#include "tpch/lineitem.h"

namespace dmr::hive {
namespace {

class CompilerTest : public ::testing::Test {
 protected:
  CompilerTest()
      : compiler_(&tpch::LineItemSchema(), &dynamic::PolicyTable::BuiltIn()) {}

  CompiledQuery MustCompile(const std::string& sql) {
    auto result = compiler_.Process(sql);
    EXPECT_TRUE(result.ok()) << sql << " -> " << result.status().ToString();
    EXPECT_TRUE(result->query.has_value());
    return *result->query;
  }

  HiveCompiler compiler_;
};

TEST_F(CompilerTest, SamplingQueryBecomesDynamicJob) {
  CompiledQuery q = MustCompile(
      "SELECT ORDERKEY, PARTKEY, SUPPKEY FROM lineitem "
      "WHERE DISCOUNT > 0.10 LIMIT 10000");
  EXPECT_TRUE(q.is_sampling());
  EXPECT_EQ(q.limit, 10000u);
  EXPECT_TRUE(q.conf.dynamic_job());
  EXPECT_EQ(q.conf.sample_size(), 10000u);
  EXPECT_EQ(q.conf.policy(), "LA");  // session default
  EXPECT_EQ(q.policy_name, "LA");
  EXPECT_EQ(q.conf.input_file(), "lineitem");
  EXPECT_EQ(q.projection,
            (std::vector<int>{tpch::kOrderKey, tpch::kPartKey,
                              tpch::kSuppKey}));
  EXPECT_FALSE(
      q.conf.props().Get(mapred::kDynamicProviderKey, "").empty());
}

TEST_F(CompilerTest, FullScanStaysStatic) {
  CompiledQuery q =
      MustCompile("SELECT ORDERKEY FROM lineitem WHERE TAX > 0.05");
  EXPECT_FALSE(q.is_sampling());
  EXPECT_FALSE(q.conf.dynamic_job());
  EXPECT_EQ(q.conf.sample_size(), 0u);
}

TEST_F(CompilerTest, SelectStarProjectsWholeSchema) {
  CompiledQuery q = MustCompile("SELECT * FROM lineitem LIMIT 5");
  EXPECT_EQ(q.projection.size(), size_t(tpch::kNumLineItemColumns));
  EXPECT_EQ(q.projected_names.front(), "ORDERKEY");
  EXPECT_EQ(q.projected_names.back(), "COMMENT");
}

TEST_F(CompilerTest, ColumnNamesAreCaseInsensitive) {
  CompiledQuery q = MustCompile("SELECT orderkey FROM t LIMIT 1");
  EXPECT_EQ(q.projection, (std::vector<int>{tpch::kOrderKey}));
  EXPECT_EQ(q.projected_names[0], "ORDERKEY");  // canonical name
}

TEST_F(CompilerTest, UnknownProjectionColumnRejected) {
  auto result = compiler_.Process("SELECT bogus FROM t");
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(CompilerTest, UnknownPredicateColumnRejected) {
  auto result = compiler_.Process("SELECT ORDERKEY FROM t WHERE bogus > 1");
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(CompilerTest, TypeErrorInPredicateRejected) {
  auto result =
      compiler_.Process("SELECT ORDERKEY FROM t WHERE SHIPMODE > 5");
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST_F(CompilerTest, SetPolicyChangesCompilation) {
  ASSERT_TRUE(compiler_.Process("SET dynamic.job.policy = C").ok());
  CompiledQuery q = MustCompile("SELECT ORDERKEY FROM t LIMIT 10");
  EXPECT_EQ(q.conf.policy(), "C");
  EXPECT_DOUBLE_EQ(q.conf.work_threshold_pct(), 15.0);
}

TEST_F(CompilerTest, SetUnknownPolicyRejected) {
  auto result = compiler_.Process("SET dynamic.job.policy = Warp9");
  EXPECT_TRUE(result.status().IsInvalidArgument());
  // Session unchanged.
  EXPECT_EQ(compiler_.session().Get(mapred::kDynamicPolicyKey), "LA");
}

TEST_F(CompilerTest, SetUserPropagatesToJobConf) {
  ASSERT_TRUE(compiler_.Process("SET user.name = carol").ok());
  CompiledQuery q = MustCompile("SELECT ORDERKEY FROM t LIMIT 10");
  EXPECT_EQ(q.conf.user(), "carol");
}

TEST_F(CompilerTest, ArbitrarySessionSettingsAreStored) {
  auto result = compiler_.Process("SET my.custom.flag = 17");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->query.has_value());
  EXPECT_EQ(compiler_.session().Get("my.custom.flag"), "17");
}

TEST_F(CompilerTest, ExplainProducesPlanWithoutExecution) {
  auto result = compiler_.Process(
      "EXPLAIN SELECT ORDERKEY FROM lineitem WHERE TAX > 0.08 LIMIT 100");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->explain_only);
  EXPECT_NE(result->message.find("DYNAMIC predicate-based sampling"),
            std::string::npos);
  EXPECT_NE(result->message.find("policy     : LA"), std::string::npos);
}

TEST_F(CompilerTest, ExplainStaticPlanSaysFullScan) {
  auto result = compiler_.Process("EXPLAIN SELECT ORDERKEY FROM lineitem");
  ASSERT_TRUE(result.ok());
  EXPECT_NE(result->message.find("static full scan"), std::string::npos);
}

TEST_F(CompilerTest, PredicateTextRecordedInConf) {
  CompiledQuery q =
      MustCompile("SELECT ORDERKEY FROM t WHERE QUANTITY > 50 LIMIT 10");
  EXPECT_EQ(q.conf.props().Get(mapred::kPredicateKey), "(QUANTITY > 50)");
}

TEST_F(CompilerTest, CurrentPolicyTracksSession) {
  EXPECT_EQ(compiler_.CurrentPolicy()->name(), "LA");
  ASSERT_TRUE(compiler_.Process("SET dynamic.job.policy = HA").ok());
  EXPECT_EQ(compiler_.CurrentPolicy()->name(), "HA");
}

}  // namespace
}  // namespace dmr::hive
