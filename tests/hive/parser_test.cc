#include "hive/parser.h"

#include <gtest/gtest.h>

#include "hive/lexer.h"

namespace dmr::hive {
namespace {

SelectStatement MustSelect(const std::string& sql) {
  auto stmt = ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << sql << " -> " << stmt.status().ToString();
  return *std::move(stmt);
}

TEST(LexerTest, TokenKinds) {
  auto tokens = *Tokenize("SELECT a1, 'str''ing', 42, 3.14 >= <> !=;");
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_TRUE(tokens[0].IsKeyword("select"));
  EXPECT_EQ(tokens[1].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[1].text, "a1");
  EXPECT_EQ(tokens[3].kind, TokenKind::kString);
  EXPECT_EQ(tokens[3].text, "str'ing");  // escaped quote
  EXPECT_EQ(tokens[5].kind, TokenKind::kInteger);
  EXPECT_EQ(tokens[5].integer, 42);
  EXPECT_EQ(tokens[7].kind, TokenKind::kDecimal);
  EXPECT_DOUBLE_EQ(tokens[7].decimal, 3.14);
  EXPECT_TRUE(tokens[8].IsOp(">="));
  EXPECT_TRUE(tokens[9].IsOp("<>"));
}

TEST(LexerTest, CommentsAreSkipped) {
  auto tokens = *Tokenize("SELECT -- a comment\n x");
  ASSERT_EQ(tokens.size(), 3u);  // SELECT, x, end
  EXPECT_EQ(tokens[1].text, "x");
}

TEST(LexerTest, Errors) {
  EXPECT_TRUE(Tokenize("'unterminated").status().IsParseError());
  EXPECT_TRUE(Tokenize("1.2.3").status().IsParseError());
  EXPECT_TRUE(Tokenize("a @ b").status().IsParseError());
}

TEST(ParserTest, MinimalSelect) {
  SelectStatement s = MustSelect("SELECT * FROM lineitem");
  EXPECT_TRUE(s.columns.empty());
  EXPECT_EQ(s.table, "lineitem");
  EXPECT_EQ(s.where, nullptr);
  EXPECT_FALSE(s.limit.has_value());
}

TEST(ParserTest, PaperQueryTemplate) {
  SelectStatement s = MustSelect(
      "SELECT ORDERKEY, PARTKEY, SUPPKEY FROM LINEITEM "
      "WHERE DISCOUNT > 0.10 LIMIT 10000;");
  EXPECT_EQ(s.columns,
            (std::vector<std::string>{"ORDERKEY", "PARTKEY", "SUPPKEY"}));
  EXPECT_EQ(s.table, "LINEITEM");
  ASSERT_NE(s.where, nullptr);
  EXPECT_EQ(s.where->ToString(), "(DISCOUNT > 0.1)");
  EXPECT_EQ(s.limit, 10000u);
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  SelectStatement s =
      MustSelect("select x from t where x > 1 limit 5");
  EXPECT_EQ(s.columns[0], "x");
  EXPECT_EQ(s.limit, 5u);
}

TEST(ParserTest, OperatorPrecedence) {
  SelectStatement s = MustSelect(
      "SELECT a FROM t WHERE a > 1 + 2 * 3 AND b = 1 OR c = 2");
  // ((a > (1 + (2*3))) AND (b = 1)) OR (c = 2)
  EXPECT_EQ(s.where->ToString(),
            "(((a > (1 + (2 * 3))) AND (b = 1)) OR (c = 2))");
}

TEST(ParserTest, NotBetweenInLike) {
  SelectStatement s = MustSelect(
      "SELECT a FROM t WHERE a BETWEEN 1 AND 5 AND b NOT IN (1, 2) "
      "AND c LIKE 'x%' AND d NOT LIKE '%y' AND NOT e = 1");
  EXPECT_NE(s.where, nullptr);
  std::string text = s.where->ToString();
  EXPECT_NE(text.find("BETWEEN"), std::string::npos);
  EXPECT_NE(text.find("NOT ((b IN"), std::string::npos);
  EXPECT_NE(text.find("LIKE 'x%'"), std::string::npos);
  EXPECT_NE(text.find("NOT LIKE '%y'"), std::string::npos);
}

TEST(ParserTest, ParenthesizedExpressions) {
  SelectStatement s =
      MustSelect("SELECT a FROM t WHERE (a = 1 OR b = 2) AND c = 3");
  EXPECT_EQ(s.where->ToString(), "(((a = 1) OR (b = 2)) AND (c = 3))");
}

TEST(ParserTest, NegativeNumbersAndArithmetic) {
  SelectStatement s =
      MustSelect("SELECT a FROM t WHERE a * -2 < b - 1");
  EXPECT_EQ(s.where->ToString(), "((a * -(2)) < (b - 1))");
}

TEST(ParserTest, BooleanLiterals) {
  SelectStatement s = MustSelect("SELECT a FROM t WHERE TRUE OR false");
  EXPECT_EQ(s.where->ToString(), "(true OR false)");
}

TEST(ParserTest, ToStringRoundTrips) {
  const char* sql =
      "SELECT ORDERKEY, SUPPKEY FROM LINEITEM WHERE (TAX > 0.08) "
      "LIMIT 100";
  SelectStatement s = MustSelect(sql);
  SelectStatement again = MustSelect(s.ToString());
  EXPECT_EQ(s.ToString(), again.ToString());
}

TEST(ParserTest, SetStatement) {
  auto stmt = *ParseStatement("SET dynamic.job.policy = LA;");
  auto* set = std::get_if<SetStatement>(&stmt);
  ASSERT_NE(set, nullptr);
  EXPECT_EQ(set->key, "dynamic.job.policy");
  EXPECT_EQ(set->value, "LA");
}

TEST(ParserTest, SetWithNumericAndStringValues) {
  auto a = *ParseStatement("SET x = 42");
  EXPECT_EQ(std::get<SetStatement>(a).value, "42");
  auto b = *ParseStatement("SET y = 'hello world'");
  EXPECT_EQ(std::get<SetStatement>(b).value, "hello world");
}

TEST(ParserTest, ExplainStatement) {
  auto stmt = *ParseStatement("EXPLAIN SELECT a FROM t LIMIT 3");
  auto* explain = std::get_if<ExplainStatement>(&stmt);
  ASSERT_NE(explain, nullptr);
  EXPECT_EQ(explain->select.limit, 3u);
}

TEST(ParserTest, SyntaxErrors) {
  EXPECT_FALSE(ParseStatement("SELECT FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT a t").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t LIMIT").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t LIMIT 0").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t LIMIT -5").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t extra").ok());
  EXPECT_FALSE(ParseStatement("SET = 5").ok());
  EXPECT_FALSE(ParseStatement("SELECT a, FROM t").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE a NOT 5").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE a LIKE 5").ok());
  EXPECT_FALSE(ParseStatement("SELECT a FROM t WHERE a BETWEEN 1").ok());
  EXPECT_FALSE(ParseStatement("").ok());
}

TEST(ParserTest, ParseSelectRejectsNonSelect) {
  EXPECT_TRUE(ParseSelect("SET a = b").status().IsInvalidArgument());
}

}  // namespace
}  // namespace dmr::hive
