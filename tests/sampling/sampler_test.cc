#include "sampling/sampler.h"

#include <gtest/gtest.h>

#include <set>

#include "expr/expression.h"
#include "tpch/generator.h"
#include "tpch/lineitem.h"
#include "tpch/predicates.h"

namespace dmr::sampling {
namespace {

using expr::Bin;
using expr::BinaryOp;
using expr::Col;
using expr::Lit;

expr::Tuple RowWithQuantity(int64_t q) {
  tpch::LineItemRow row;
  row.quantity = q;
  return tpch::ToTuple(row);
}

expr::ExprPtr QuantityOver50() {
  return Bin(BinaryOp::kGt, Col("QUANTITY"), Lit(int64_t{50}));
}

TEST(SamplingMapperTest, EmitsOnlyMatches) {
  SamplingMapper mapper(QuantityOver50(), &tpch::LineItemSchema(), 10);
  std::vector<expr::Tuple> out;
  EXPECT_FALSE(*mapper.Map(RowWithQuantity(10), &out));
  EXPECT_TRUE(*mapper.Map(RowWithQuantity(60), &out));
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(mapper.records_seen(), 2u);
  EXPECT_EQ(mapper.records_matched(), 1u);
  EXPECT_EQ(mapper.emitted(), 1u);
}

TEST(SamplingMapperTest, CapsEmissionAtK) {
  // Algorithm 1: each map outputs at most k pairs, but keeps scanning (and
  // counting matches) past the cap.
  SamplingMapper mapper(QuantityOver50(), &tpch::LineItemSchema(), 3);
  std::vector<expr::Tuple> out;
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(*mapper.Map(RowWithQuantity(99), &out));
  }
  EXPECT_EQ(out.size(), 3u);
  EXPECT_EQ(mapper.emitted(), 3u);
  EXPECT_EQ(mapper.records_matched(), 10u);
  EXPECT_EQ(mapper.records_seen(), 10u);
}

TEST(SamplingMapperTest, PropagatesEvaluationErrors) {
  auto bad = Bin(BinaryOp::kGt, Col("NOPE"), Lit(int64_t{1}));
  SamplingMapper mapper(bad, &tpch::LineItemSchema(), 10);
  std::vector<expr::Tuple> out;
  EXPECT_FALSE(mapper.Map(RowWithQuantity(1), &out).ok());
}

TEST(SamplingReducerTest, KeepsFirstK) {
  SamplingReducer reducer(3, SampleMode::kFirstK);
  for (int64_t i = 0; i < 10; ++i) reducer.Add(RowWithQuantity(i));
  auto sample = reducer.Finish();
  ASSERT_EQ(sample.size(), 3u);
  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(std::get<int64_t>(sample[i][tpch::kQuantity]), i);
  }
}

TEST(SamplingReducerTest, FewerThanKKeepsAll) {
  SamplingReducer reducer(100, SampleMode::kFirstK);
  reducer.Add(RowWithQuantity(1));
  reducer.Add(RowWithQuantity(2));
  EXPECT_EQ(reducer.Finish().size(), 2u);
}

TEST(SamplingReducerTest, FinishResets) {
  SamplingReducer reducer(2, SampleMode::kFirstK);
  reducer.Add(RowWithQuantity(1));
  EXPECT_EQ(reducer.Finish().size(), 1u);
  EXPECT_EQ(reducer.candidates_seen(), 0u);
  EXPECT_EQ(reducer.Finish().size(), 0u);
}

TEST(SamplingReducerTest, ReservoirKeepsExactlyK) {
  SamplingReducer reducer(5, SampleMode::kReservoir, /*seed=*/3);
  for (int64_t i = 0; i < 1000; ++i) reducer.Add(RowWithQuantity(i));
  EXPECT_EQ(reducer.Finish().size(), 5u);
}

TEST(SamplingReducerTest, ReservoirIsUnbiased) {
  // Footnote 1: "one could do a 'random' k instead". Check that late
  // candidates are represented ~ uniformly (first-k would never pick them).
  const int kTrials = 2000;
  const int kStream = 100;
  const uint64_t kK = 10;
  int late_picks = 0;
  for (int t = 0; t < kTrials; ++t) {
    SamplingReducer reducer(kK, SampleMode::kReservoir, 1000 + t);
    for (int64_t i = 0; i < kStream; ++i) reducer.Add(RowWithQuantity(i));
    for (const auto& row : reducer.Finish()) {
      if (std::get<int64_t>(row[tpch::kQuantity]) >= kStream / 2) {
        ++late_picks;
      }
    }
  }
  // Expect ~half of all picked elements from the late half: 10 * 2000 / 2.
  double fraction = static_cast<double>(late_picks) / (kK * kTrials);
  EXPECT_NEAR(fraction, 0.5, 0.05);
}

TEST(SamplingReducerTest, FirstKNeverPicksLateCandidates) {
  SamplingReducer reducer(5, SampleMode::kFirstK);
  for (int64_t i = 0; i < 100; ++i) reducer.Add(RowWithQuantity(i));
  for (const auto& row : reducer.Finish()) {
    EXPECT_LT(std::get<int64_t>(row[tpch::kQuantity]), 5);
  }
}

TEST(MapReducePipelineTest, EndToEndOverGeneratedPartition) {
  // Algorithm 1 + Algorithm 2 over real generated data.
  tpch::LineItemGenerator gen(5);
  const auto& pred = tpch::PredicateSuite()[0];
  auto rows = *gen.GeneratePartition(20000, 120, pred);

  const uint64_t k = 50;
  SamplingMapper mapper(pred.predicate, &tpch::LineItemSchema(), k);
  std::vector<expr::Tuple> candidates;
  for (const auto& row : rows) {
    ASSERT_TRUE(mapper.Map(tpch::ToTuple(row), &candidates).ok());
  }
  EXPECT_EQ(mapper.records_matched(), 120u);
  EXPECT_EQ(candidates.size(), k);  // capped

  SamplingReducer reducer(k, SampleMode::kFirstK);
  for (auto& c : candidates) reducer.Add(std::move(c));
  auto sample = reducer.Finish();
  ASSERT_EQ(sample.size(), k);
  for (const auto& row : sample) {
    auto ok = expr::EvaluatePredicate(*pred.predicate,
                                      tpch::LineItemSchema(), row);
    ASSERT_TRUE(ok.ok());
    EXPECT_TRUE(*ok);
  }
}

}  // namespace
}  // namespace dmr::sampling
