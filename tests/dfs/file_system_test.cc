#include "dfs/file_system.h"

#include <gtest/gtest.h>

#include <map>

namespace dmr::dfs {
namespace {

TEST(FileSystemTest, CreateAndGetFile) {
  FileSystem fs(10, 4);
  auto file = fs.CreateFile("data", 40, 1000, 100);
  ASSERT_TRUE(file.ok());
  EXPECT_EQ(file->num_partitions(), 40);
  EXPECT_EQ(file->total_records(), 40000u);
  EXPECT_EQ(file->total_bytes(), 4000000u);
  EXPECT_TRUE(fs.Exists("data"));
  auto fetched = fs.GetFile("data");
  ASSERT_TRUE(fetched.ok());
  EXPECT_EQ(fetched->name, "data");
}

TEST(FileSystemTest, RoundRobinPlacementIsBalanced) {
  FileSystem fs(10, 4);
  auto file = *fs.CreateFile("balanced", 80, 1000, 100);
  std::map<std::pair<int, int>, int> per_disk;
  for (const auto& p : file.partitions) {
    per_disk[{p.node_id, p.disk_id}]++;
    EXPECT_GE(p.node_id, 0);
    EXPECT_LT(p.node_id, 10);
    EXPECT_GE(p.disk_id, 0);
    EXPECT_LT(p.disk_id, 4);
  }
  // 80 partitions over 40 disks: exactly 2 each (paper's balanced layout).
  EXPECT_EQ(per_disk.size(), 40u);
  for (const auto& [disk, count] : per_disk) EXPECT_EQ(count, 2);
}

TEST(FileSystemTest, PartialRoundRobinCoversDistinctDisks) {
  FileSystem fs(10, 4);
  auto file = *fs.CreateFile("small", 7, 1000, 100);
  std::map<std::pair<int, int>, int> per_disk;
  for (const auto& p : file.partitions) per_disk[{p.node_id, p.disk_id}]++;
  EXPECT_EQ(per_disk.size(), 7u);  // all on distinct disks
}

TEST(FileSystemTest, SingleDiskPlacement) {
  FileSystem fs(10, 4);
  auto file = *fs.CreateFile("hot", 5, 1000, 100, Placement::kSingleDisk);
  for (const auto& p : file.partitions) {
    EXPECT_EQ(p.node_id, 0);
    EXPECT_EQ(p.disk_id, 0);
  }
}

TEST(FileSystemTest, DuplicateNameRejected) {
  FileSystem fs(2, 2);
  ASSERT_TRUE(fs.CreateFile("dup", 1, 1, 1).ok());
  EXPECT_TRUE(fs.CreateFile("dup", 1, 1, 1).status().IsAlreadyExists());
}

TEST(FileSystemTest, InvalidPartitionCountRejected) {
  FileSystem fs(2, 2);
  EXPECT_TRUE(fs.CreateFile("bad", 0, 1, 1).status().IsInvalidArgument());
  EXPECT_TRUE(fs.CreateFile("bad", -5, 1, 1).status().IsInvalidArgument());
}

TEST(FileSystemTest, GetMissingFileIsNotFound) {
  FileSystem fs(2, 2);
  EXPECT_TRUE(fs.GetFile("ghost").status().IsNotFound());
}

TEST(FileSystemTest, DeleteFile) {
  FileSystem fs(2, 2);
  ASSERT_TRUE(fs.CreateFile("tmp", 2, 10, 10).ok());
  EXPECT_TRUE(fs.DeleteFile("tmp").ok());
  EXPECT_FALSE(fs.Exists("tmp"));
  EXPECT_TRUE(fs.DeleteFile("tmp").IsNotFound());
}

TEST(FileSystemTest, ListFiles) {
  FileSystem fs(2, 2);
  ASSERT_TRUE(fs.CreateFile("b", 1, 1, 1).ok());
  ASSERT_TRUE(fs.CreateFile("a", 1, 1, 1).ok());
  EXPECT_EQ(fs.ListFiles(), (std::vector<std::string>{"a", "b"}));
}

TEST(FileSystemTest, AddFileValidatesPlacement) {
  FileSystem fs(2, 2);
  FileInfo file;
  file.name = "external";
  PartitionInfo p;
  p.index = 0;
  p.node_id = 5;  // outside the 2-node grid
  file.partitions.push_back(p);
  EXPECT_TRUE(fs.AddFile(file).IsInvalidArgument());
  file.partitions[0].node_id = 1;
  file.partitions[0].disk_id = 1;
  EXPECT_TRUE(fs.AddFile(file).ok());
  EXPECT_TRUE(fs.Exists("external"));
}

TEST(FileSystemTest, AddFileWithHeterogeneousPartitions) {
  FileSystem fs(2, 2);
  FileInfo file;
  file.name = "uneven";
  for (int i = 0; i < 3; ++i) {
    PartitionInfo p;
    p.index = i;
    p.num_records = 100 * (i + 1);
    p.size_bytes = 1000 * (i + 1);
    p.node_id = i % 2;
    p.disk_id = 0;
    file.partitions.push_back(p);
  }
  ASSERT_TRUE(fs.AddFile(file).ok());
  EXPECT_EQ(fs.GetFile("uneven")->total_records(), 600u);
  EXPECT_EQ(fs.GetFile("uneven")->total_bytes(), 6000u);
}

}  // namespace
}  // namespace dmr::dfs
