/// \file
/// Tests for the v2-only behavior of the lint engine: the shard-ownership
/// checks and their annotation vocabulary (src/sim/affinity.h), the
/// statement-scoped suppression rules, the required-justification rule,
/// and the baseline gate used by tier-1.

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "lint/lint.h"

namespace dmr::lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(DMR_SOURCE_DIR) + "/tests/lint/fixtures/" + name;
}

/// (check id, line) pairs of the unsuppressed findings, in report order.
std::vector<std::pair<std::string, int>> Hits(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> hits;
  for (const Finding& f : findings) {
    if (!f.suppressed) hits.emplace_back(f.check, f.line);
  }
  return hits;
}

using Expected = std::vector<std::pair<std::string, int>>;

// --- shard-ownership fixture triples --------------------------------------

TEST(ShardOwnershipTest, ShardAffineViolating) {
  auto findings = LintPath(FixturePath("shard_affine_violating.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"shard-affine", 10},
                                      {"shard-affine", 16},
                                      {"shard-affine", 18}}));
  for (const Finding& f : findings) {
    EXPECT_EQ(f.severity, Severity::kError);
  }
}

TEST(ShardOwnershipTest, ShardAffineClean) {
  EXPECT_TRUE(LintPath(FixturePath("shard_affine_clean.cc")).empty());
}

TEST(ShardOwnershipTest, ShardAffineSuppressed) {
  auto findings = LintPath(FixturePath("shard_affine_suppressed.cc"));
  EXPECT_TRUE(Hits(findings).empty());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_EQ(findings[0].check, "shard-affine");
  EXPECT_NE(findings[0].justification.find("probe"), std::string::npos);
}

TEST(ShardOwnershipTest, CrossShardArenaViolating) {
  auto findings = LintPath(FixturePath("cross_shard_arena_violating.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"cross-shard-arena", 9},
                                      {"cross-shard-arena", 13},
                                      {"cross-shard-arena", 14}}));
}

TEST(ShardOwnershipTest, CrossShardArenaClean) {
  EXPECT_TRUE(LintPath(FixturePath("cross_shard_arena_clean.cc")).empty());
}

TEST(ShardOwnershipTest, CrossShardArenaSuppressed) {
  auto findings = LintPath(FixturePath("cross_shard_arena_suppressed.cc"));
  EXPECT_TRUE(Hits(findings).empty());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_EQ(findings[0].check, "cross-shard-arena");
}

TEST(ShardOwnershipTest, StagedEventViolating) {
  auto findings = LintPath(FixturePath("staged_event_violating.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"staged-event-bypass", 7},
                                      {"staged-event-bypass", 8},
                                      {"staged-event-bypass", 8}}));
}

TEST(ShardOwnershipTest, StagedEventClean) {
  EXPECT_TRUE(LintPath(FixturePath("staged_event_clean.cc")).empty());
}

TEST(ShardOwnershipTest, StagedEventSuppressed) {
  auto findings = LintPath(FixturePath("staged_event_suppressed.cc"));
  EXPECT_TRUE(Hits(findings).empty());
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_TRUE(findings[0].suppressed);
  EXPECT_EQ(findings[0].check, "staged-event-bypass");
}

// --- annotation scope rules -----------------------------------------------

TEST(ShardOwnershipTest, LambdaDoesNotInheritEnclosingSanction) {
  // The enclosing function is sanctioned, but the lambda may run on any
  // thread later — its body must carry its own annotation.
  auto findings = LintContent(
      "probe.cc",
      "struct E { DMR_SHARD_AFFINE int* shards_; };\n"
      "int F(E& e) DMR_CROSS_SHARD_OK {\n"
      "  auto probe = [&e] { return e.shards_[0]; };\n"
      "  return probe();\n"
      "}\n");
  EXPECT_EQ(Hits(findings), (Expected{{"shard-affine", 3}}));
}

TEST(ShardOwnershipTest, AnnotatedLambdaIsSanctioned) {
  auto findings = LintContent(
      "probe.cc",
      "struct E { DMR_SHARD_AFFINE int* shards_; };\n"
      "int F(E& e) {\n"
      "  auto probe = [&e] DMR_CROSS_SHARD_OK { return e.shards_[0]; };\n"
      "  return probe();\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

TEST(ShardOwnershipTest, NestedBlockInheritsSanction) {
  // Plain blocks (if/for bodies) inherit the enclosing annotation —
  // only lambda boundaries reset it.
  auto findings = LintContent(
      "probe.cc",
      "struct E { DMR_SHARD_AFFINE int* shards_; };\n"
      "int F(E& e, bool go) DMR_BARRIER_PHASE {\n"
      "  if (go) {\n"
      "    return e.shards_[0];\n"
      "  }\n"
      "  return 0;\n"
      "}\n");
  EXPECT_TRUE(findings.empty());
}

// --- statement-scoped suppressions ----------------------------------------

TEST(SuppressionTest, AllowCoversTheFollowingStatement) {
  auto findings = LintPath(FixturePath("allow_statement.cc"));
  EXPECT_TRUE(Hits(findings).empty());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 11);  // line-above form, wrapped statement
  EXPECT_EQ(findings[1].line, 17);  // trailing form, wrapped statement
  for (const Finding& f : findings) {
    EXPECT_EQ(f.check, "wall-clock");
    EXPECT_TRUE(f.suppressed);
    EXPECT_FALSE(f.justification.empty());
  }
}

TEST(SuppressionTest, AllowWithoutJustificationIsRejected) {
  auto findings = LintPath(FixturePath("allow_no_justification.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"lint-allow", 6},
                                      {"unseeded-rng", 7},
                                      {"lint-allow", 9},
                                      {"unseeded-rng", 9}}));
  for (const Finding& f : findings) {
    EXPECT_EQ(f.severity, Severity::kError);
    EXPECT_FALSE(f.suppressed) << "a bare allow must not suppress anything";
  }
  EXPECT_EQ(CountActionable(findings, Severity::kError), 4);
}

// --- token-level behavior -------------------------------------------------

TEST(TokenizerTest, RawStringContentsAreNotCode) {
  auto findings = LintContent(
      "probe.cc",
      "#include <string>\n"
      "std::string A() { return R\"(call rand() and srand() here)\"; }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(TokenizerTest, BlockCommentsAreNotCode) {
  auto findings = LintContent(
      "probe.cc",
      "/* rand() in prose\n   more rand() */\n"
      "int A() { return 7; }\n");
  EXPECT_TRUE(findings.empty());
}

// --- the baseline gate ----------------------------------------------------

TEST(BaselineTest, RoundTripMatchesExactly) {
  auto findings = LintPath(FixturePath("shard_affine_violating.cc"));
  std::string baseline = BaselineToJson(findings, Severity::kWarning);
  std::string error;
  EXPECT_TRUE(
      CompareBaseline(findings, Severity::kWarning, baseline, &error)
          .empty());
  EXPECT_TRUE(error.empty());
}

TEST(BaselineTest, NewFindingsBlock) {
  auto findings = LintPath(FixturePath("shard_affine_violating.cc"));
  // An empty baseline means every current finding is new.
  std::string empty = BaselineToJson({}, Severity::kWarning);
  std::string error;
  auto deltas = CompareBaseline(findings, Severity::kWarning, empty, &error);
  ASSERT_FALSE(deltas.empty());
  EXPECT_NE(deltas[0].find("new"), std::string::npos);
}

TEST(BaselineTest, DoctoredBaselineBlocks) {
  // A baseline claiming findings that no longer exist (or that never
  // existed) must fail too, so the recorded debt can only shrink.
  auto findings = LintPath(FixturePath("shard_affine_violating.cc"));
  std::string doctored = BaselineToJson(findings, Severity::kWarning);
  auto pos = doctored.find("\"count\": 3");
  ASSERT_NE(pos, std::string::npos) << doctored;
  doctored.replace(pos, 10, "\"count\": 9");
  std::string error;
  auto deltas =
      CompareBaseline(findings, Severity::kWarning, doctored, &error);
  ASSERT_FALSE(deltas.empty());
  EXPECT_NE(deltas[0].find("stale"), std::string::npos);
}

TEST(BaselineTest, StaleEntryBlocks) {
  auto findings = LintPath(FixturePath("shard_affine_violating.cc"));
  std::string baseline = BaselineToJson(findings, Severity::kWarning);
  std::string error;
  // The code was fixed (no findings) but the baseline still records debt.
  auto deltas = CompareBaseline({}, Severity::kWarning, baseline, &error);
  ASSERT_FALSE(deltas.empty());
  EXPECT_NE(deltas[0].find("stale"), std::string::npos);
}

TEST(BaselineTest, MalformedBaselineReports) {
  std::string error;
  auto deltas =
      CompareBaseline({}, Severity::kWarning, "{not json", &error);
  EXPECT_EQ(deltas.size(), 1u);
  EXPECT_FALSE(error.empty());
}

TEST(BaselineTest, SuppressedFindingsStayOutOfTheBaseline) {
  auto findings = LintPath(FixturePath("shard_affine_suppressed.cc"));
  ASSERT_EQ(findings.size(), 1u);
  ASSERT_TRUE(findings[0].suppressed);
  std::string baseline = BaselineToJson(findings, Severity::kWarning);
  EXPECT_EQ(baseline, BaselineToJson({}, Severity::kWarning))
      << "suppressed findings are audited in-line, not banked as debt";
}

}  // namespace
}  // namespace dmr::lint
