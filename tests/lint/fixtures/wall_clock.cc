// Wall-clock fixture: hazards at lines 5, 8 and 11 exactly.
#include <chrono>
#include <ctime>

double A() { return double(std::chrono::system_clock::now().time_since_epoch().count()); }

double B() {
  return static_cast<double>(time(nullptr));
}

double C() { return double(std::chrono::steady_clock::now().time_since_epoch().count()); }
