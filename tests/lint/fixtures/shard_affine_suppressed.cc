// Shard-affine fixture, suppressed variant: one violation, silenced by
// a justified allow. Expect one suppressed finding, zero actionable.

struct Engine {
  DMR_SHARD_AFFINE int* shards_;

  int Count() {
    // dmr-lint: allow(shard-affine) test-only probe; the engine is
    // serial here and no worker threads exist yet.
    return shards_[0];
  }
};
