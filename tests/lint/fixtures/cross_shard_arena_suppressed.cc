// Cross-shard-arena fixture, suppressed variant: one violation silenced
// by a justified allow. Expect one suppressed finding, zero actionable.

struct Arena { void* Allocate(unsigned long n); };

struct Engine {
  Arena* ShardArena(int shard);
};

void* Grab(Engine* e) {
  return e->ShardArena(0)  // dmr-lint: allow(cross-shard-arena) setup
      ->Allocate(8);       // path runs before workers are spawned
}
