// Staged-event fixture, suppressed variant: one bypass silenced by a
// justified allow. Expect one suppressed finding, zero actionable.

struct StagedEvent { double time; };

void Sneak(StagedEvent* slot) {
  // dmr-lint: allow(staged-event-bypass) unit test constructs the event
  // directly to probe the merge path in isolation.
  *slot = StagedEvent{2.5};
}
