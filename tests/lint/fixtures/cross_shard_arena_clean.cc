// Cross-shard-arena fixture, clean variant: every use is sanctioned or
// takes the nullptr spill-box form. Expect zero findings.

struct Arena { void* Allocate(unsigned long n); };

struct Engine {
  Arena* ShardArena(int shard);

  // Barrier-phase merge code may touch any shard's arena.
  void* Drain(int shard) DMR_BARRIER_PHASE {
    return ShardArena(shard)->Allocate(8);
  }
};

void* Steal(Engine* e, void* fn) DMR_CROSS_SHARD_OK {
  void* p = e->arena()->Allocate(16);
  (void)fn;
  return p;
}

// The nullptr-arena form is the cross-shard-safe spill box; it needs no
// sanction.
void* Spill(void* fn) { return EventCallback(nullptr, fn); }
