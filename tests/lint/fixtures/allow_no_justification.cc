// Bare allows are rejected: each empty-justification allow produces a
// lint-allow error and the underlying finding stays live. Expect two
// lint-allow errors plus two unsuppressed unseeded-rng findings.
#include <cstdlib>

// dmr-lint: allow(unseeded-rng)
int A() { return rand(); }

int B() { return rand(); }  // dmr-lint: allow(unseeded-rng)
