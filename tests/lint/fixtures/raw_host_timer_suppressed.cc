// Suppressed raw-host-timer fixture: both hazards carry allow() forms.
#include <chrono>
#include <cstdint>

using namespace std::chrono;  // dmr-lint: allow(raw-host-timer) trailing form

uint64_t A() {
  // dmr-lint: allow(raw-host-timer) line-above form
  return uint64_t(steady_clock::now().time_since_epoch().count());
}
