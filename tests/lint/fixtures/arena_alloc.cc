// Arena-alloc fixture: hazards at lines 8, 10 and 12 exactly; the
// suppressed duplicate at the end must not count.
#include <memory>

struct MapAttempt { int id; };
struct EventSlot { int refs; };

void* A() { return new EventSlot; }

std::shared_ptr<MapAttempt> B() { return std::make_shared<MapAttempt>(); }

MapAttempt* C() { return new MapAttempt; }

// dmr-lint: allow(arena-alloc) pool bootstrap owns this slab head
void* D() { return new EventSlot; }
