// Zone-map-unordered fixture: the loop at line 17 builds per-batch zone
// maps while iterating an unordered container, so libstdc++ hash order
// decides the fold order and which index wins the layout catalog's
// first-wins registration; the finding anchors to the for-line.
#include <cstdint>
#include <unordered_map>

struct ZoneMap {
  long min_value = 0;
};
struct Part {
  ZoneMap BuildZoneMap(uint32_t begin, uint32_t end) const;
};

ZoneMap FoldAll(const std::unordered_map<int, Part>& parts) {
  ZoneMap merged;
  for (const auto& [id, part] : parts) {
    ZoneMap zm = part.BuildZoneMap(0, 1024);
    if (zm.min_value < merged.min_value) merged.min_value = zm.min_value;
  }
  return merged;
}
