// Shard-affine fixture: violations at lines 10, 16 and 18 exactly. The
// member declaration on line 6 sanctions itself via the statement-level
// annotation; nothing sanctions the accesses.

struct Engine {
  DMR_SHARD_AFFINE int* shards_;

  int Count() {
    // Unannotated member touch of shard-affine state.
    return shards_[0];
  }
};

DMR_SHARD_AFFINE int g_slot_cursor = 0;

int Bump() { return ++g_slot_cursor; }

int Peek(const Engine& e) { return e.shards_[1]; }
