// Unseeded-RNG fixture: hazards at lines 6, 9 and 12 exactly.
#include <cstdlib>
#include <random>

int A() {
  return rand();
}

std::mt19937 g_default_engine;

int B() {
  std::random_device dev;
  return static_cast<int>(dev());
}
