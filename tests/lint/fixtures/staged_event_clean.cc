// Staged-event fixture, clean variant: the same machinery used inside
// the sanctioned seams. Expect zero findings.

struct StagedEvent { double time; };

// The staging seam itself is cross-shard by design.
void Stage(StagedEvent* inbox, int n) DMR_CROSS_SHARD_OK {
  inbox[n] = StagedEvent{2.5};
}

// The barrier-phase merge drains the inboxes serially.
void Merge(StagedEvent* inbox, int n) DMR_BARRIER_PHASE {
  for (int i = 0; i < n; ++i) (void)inbox[i].time;
}
