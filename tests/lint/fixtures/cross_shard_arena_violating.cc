// Cross-shard-arena fixture: violations at lines 9, 13 and 14 exactly.
// The ShardArena declaration on line 7 is the seam itself, not a use.

struct Arena { void* Allocate(unsigned long n); };

struct Engine {
  Arena* ShardArena(int shard);

  void* Grab(int shard) { return ShardArena(shard)->Allocate(8); }
};

void* Steal(Engine* e, void* fn) {
  void* p = e->arena()->Allocate(16);
  void* armed = EventCallback(p, fn);
  (void)armed;
  return p;
}
