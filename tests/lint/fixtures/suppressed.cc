// Suppression fixture: both allow() forms; findings at 6 and 10, both
// suppressed with a justification.
#include <chrono>

double A() {
  return double(std::chrono::steady_clock::now().time_since_epoch().count());  // dmr-lint: allow(wall-clock) trailing form
}

// dmr-lint: allow(wall-clock) line-above form
double B() { return double(std::chrono::steady_clock::now().time_since_epoch().count()); }
