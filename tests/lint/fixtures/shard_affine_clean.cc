// Shard-affine fixture, clean variant: the same accesses as the
// violating file, each under a sanctioned scope. Expect zero findings.

struct DMR_SHARD_AFFINE Engine {
  int* shards_;

  // The class body is the state's home: member touches are sanctioned.
  int Count() { return shards_[0]; }
};

DMR_SHARD_AFFINE int g_slot_cursor = 0;

// Barrier-phase code owns every shard.
int Bump() DMR_BARRIER_PHASE { return ++g_slot_cursor; }

// Reviewed cross-shard read of a plain counter.
int Peek(const Engine& e) DMR_CROSS_SHARD_OK { return e.shards_[1]; }
