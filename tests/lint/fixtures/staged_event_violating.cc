// Staged-event fixture: violations at line 7 (the inbox parameter) and
// line 8 twice (the store target and the bypassing construction). The
// type's own declaration on line 5 is not a use.

struct StagedEvent { double time; };

void Sneak(StagedEvent* inbox, int n) {
  inbox[n] = StagedEvent{2.5};
}
