// Check-side-effect fixture: hazards at lines 7 and 10 exactly.
#include "common/logging.h"

int Consume(int* it, int end) {
  int taken = 0;
  // Both arguments below would vanish in a no-check build.
  DMR_CHECK_LT((*it)++, end);
  taken = *it;
  int guard = 0;
  DMR_CHECK(guard = taken);
  return guard;
}
