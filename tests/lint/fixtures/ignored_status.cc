// Ignored-status fixture: the bare call at line 7 drops a Status.
#include "common/status.h"

struct Tracker { dmr::Status AddSplits(int splits); };

void A(Tracker* tracker_) {
  tracker_->AddSplits(3);
}
