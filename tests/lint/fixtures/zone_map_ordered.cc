// Clean counterpart to zone_map_unordered.cc: the same fold runs over a
// std::map, whose iteration order is the key order, so the merged zone
// map and any downstream catalog registration replay exactly. No
// findings.
#include <cstdint>
#include <map>

struct ZoneMap {
  long min_value = 0;
};
struct Part {
  ZoneMap BuildZoneMap(uint32_t begin, uint32_t end) const;
};

ZoneMap FoldAll(const std::map<int, Part>& parts) {
  ZoneMap merged;
  for (const auto& [id, part] : parts) {
    ZoneMap zm = part.BuildZoneMap(0, 1024);
    if (zm.min_value < merged.min_value) merged.min_value = zm.min_value;
  }
  return merged;
}
