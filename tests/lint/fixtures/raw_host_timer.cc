// Raw-host-timer fixture: hazards at lines 5, 8 and 12 exactly.
#include <chrono>
#include <cstdint>

using namespace std::chrono;

uint64_t A() {
  return uint64_t(steady_clock::now().time_since_epoch().count());
}

uint64_t B() {
  return uint64_t(high_resolution_clock::now().time_since_epoch().count());
}
