// Timeline-flavoured unordered-output fixture: a telemetry exporter that
// iterates a probe registry held in an unordered_map while emitting JSON.
// The real obs::Timeline keeps insertion-ordered probe storage precisely
// to avoid this hazard; the finding anchors to the for-line below.
#include <string>
#include <unordered_map>

std::string ExportTimeline(
    const std::unordered_map<std::string, double>& probes) {
  std::string out = "{\"probes\":[";
  for (const auto& [name, last] : probes) {
    out += "{\"series\":\"" + name + "\",\"last\":" + std::to_string(last) +
           "},";
  }
  return out + "]}";
}
