// Statement-scoped allows: the hazards sit on the continuation lines of
// wrapped statements, covered by a line-above allow (A) and a trailing
// allow on the statement's first line (B). A purely line-based engine
// suppresses neither. Expect two suppressed findings, zero actionable.
#include <chrono>

double A() {
  // dmr-lint: allow(wall-clock) startup banner timing, outside the
  // frozen-clock window.
  auto t0 =
      std::chrono::steady_clock::now().time_since_epoch().count();
  return static_cast<double>(t0);
}

double B() {
  auto t1 =  // dmr-lint: allow(wall-clock) same exemption, trailing form
      std::chrono::steady_clock::now().time_since_epoch().count();
  return static_cast<double>(t1);
}
