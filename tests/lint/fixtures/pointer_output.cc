// Pointer-output fixture: hazards at lines 6 and 11 exactly.
#include <cstdio>
#include <sstream>

void A(const int* p) {
  std::printf("at %p\n", static_cast<const void*>(p));
}

std::string B(const int* p) {
  std::ostringstream out;
  out << static_cast<const void*>(p);
  return out.str();
}
