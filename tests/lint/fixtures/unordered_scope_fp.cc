// Unordered-output false-positive fixture: B's local `items` is an
// unordered set, but the loop in A iterates a different `items` — the
// ordered vector parameter. The scope-aware engine sees that B's
// declaration scope does not enclose A's loop and reports nothing; the
// file-global name match flags the loop at line 14.
#include <string>
#include <unordered_set>
#include <vector>

void B() {
  std::unordered_set<int> items;
  (void)items;
}

std::string A(const std::vector<std::string>& items) {
  std::string out;
  for (const auto& s : items) {
    out += s;
  }
  return out;
}
