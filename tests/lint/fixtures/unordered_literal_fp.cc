// Unordered-output false-positive fixture: the only "<<" in the loop
// body lives inside a string literal. The token-aware engine blanks
// literals before scanning for emit patterns and reports nothing; the
// line-regex engine flags the loop at line 8.
#include <string>
#include <unordered_map>

std::string A(const std::unordered_map<int, int>& stats) {
  std::string out;
  for (const auto& kv : stats) {
    out.append("the << operator here is quoted prose, not an emit");
    (void)kv;
  }
  return out;
}
