// Unordered-output fixture: the loop at line 8 feeds formatted output.
#include <string>
#include <unordered_map>

std::string Render(const std::unordered_map<int, double>& stats) {
  std::string out = "{";
  // The finding anchors to the for-line below.
  for (const auto& [key, value] : stats) {
    out += std::to_string(key) + ":" + std::to_string(value);
  }
  return out + "}";
}
