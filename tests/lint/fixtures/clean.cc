// Clean fixture: deterministic idioms only — dmr-lint must stay silent.
// Sorted containers, explicit seeds, virtual time, no pointers printed.
// Mentions in comments ("std::chrono::system_clock", rand()) and strings
// must not trip checks either.
#include <map>
#include <string>

std::string Render(const std::map<int, double>& stats, unsigned seed) {
  std::string out = std::to_string(seed);
  out += "use Rng, not rand(), nor std::chrono::system_clock";
  for (const auto& [key, value] : stats) {
    out += "," + std::to_string(key) + ":" + std::to_string(value);
  }
  return out;
}
