#include "lint/lint.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "common/json.h"

namespace dmr::lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(DMR_SOURCE_DIR) + "/tests/lint/fixtures/" + name;
}

/// (check id, line) pairs of the unsuppressed findings, in report order.
std::vector<std::pair<std::string, int>> Hits(
    const std::vector<Finding>& findings) {
  std::vector<std::pair<std::string, int>> hits;
  for (const Finding& f : findings) {
    if (!f.suppressed) hits.emplace_back(f.check, f.line);
  }
  return hits;
}

using Expected = std::vector<std::pair<std::string, int>>;

TEST(LintFixtureTest, WallClock) {
  auto findings = LintPath(FixturePath("wall_clock.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"wall-clock", 5},
                                      {"wall-clock", 8},
                                      {"wall-clock", 11}}));
  for (const Finding& f : findings) {
    EXPECT_EQ(f.severity, Severity::kError);
  }
}

TEST(LintFixtureTest, RawHostTimer) {
  auto findings = LintPath(FixturePath("raw_host_timer.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"raw-host-timer", 5},
                                      {"raw-host-timer", 8},
                                      {"raw-host-timer", 12}}));
  for (const Finding& f : findings) {
    EXPECT_EQ(f.severity, Severity::kWarning);
  }
}

TEST(LintFixtureTest, RawHostTimerSuppressedPair) {
  auto findings = LintPath(FixturePath("raw_host_timer_suppressed.cc"));
  EXPECT_TRUE(Hits(findings).empty());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 5);   // trailing-comment form
  EXPECT_EQ(findings[1].line, 9);   // line-above form
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.suppressed);
    EXPECT_NE(f.justification.find("form"), std::string::npos);
  }
}

TEST(LintFixtureTest, RawHostTimerExemptsTheProfSeam) {
  // prof/prof.cc is one of the two sanctioned homes for raw monotonic
  // reads (the other is common/host_clock).
  auto findings = LintContent(
      "src/prof/prof.cc",
      "#include <chrono>\n"
      "using namespace std::chrono;\n"
      "long N() { return steady_clock::now().time_since_epoch().count(); }\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFixtureTest, UnseededRng) {
  auto findings = LintPath(FixturePath("unseeded_rng.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"unseeded-rng", 6},
                                      {"unseeded-rng", 9},
                                      {"unseeded-rng", 12}}));
}

TEST(LintFixtureTest, UnorderedOutputAnchorsToTheLoop) {
  auto findings = LintPath(FixturePath("unordered_output.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"unordered-output", 8}}));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kWarning);
  EXPECT_NE(findings[0].message.find("stats"), std::string::npos);
}

TEST(LintFixtureTest, TimelineExporterUnorderedProbeIteration) {
  auto findings = LintPath(FixturePath("timeline_unordered.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"unordered-output", 11}}));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_NE(findings[0].message.find("probes"), std::string::npos);
}

TEST(LintFixtureTest, PointerOutput) {
  auto findings = LintPath(FixturePath("pointer_output.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"pointer-output", 6},
                                      {"pointer-output", 11}}));
}

TEST(LintFixtureTest, CheckSideEffect) {
  auto findings = LintPath(FixturePath("check_side_effect.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"check-side-effect", 7},
                                      {"check-side-effect", 10}}));
}

TEST(LintFixtureTest, IgnoredStatus) {
  auto findings = LintPath(FixturePath("ignored_status.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"ignored-status", 7}}));
}

TEST(LintFixtureTest, ArenaAlloc) {
  auto findings = LintPath(FixturePath("arena_alloc.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"arena-alloc", 8},
                                      {"arena-alloc", 10},
                                      {"arena-alloc", 12}}));
  // The dmr-lint: allow() form covers the trailing duplicate.
  ASSERT_EQ(findings.size(), 4u);
  EXPECT_TRUE(findings[3].suppressed);
  for (const Finding& f : findings) {
    EXPECT_EQ(f.severity, Severity::kError);
  }
}

TEST(LintFixtureTest, ArenaAllocExemptsTheKernelItself) {
  // The slot pool / slab internals are the one sanctioned home for raw
  // allocation of these types.
  auto findings =
      LintContent("src/sim/simulation.cc", "auto* s = new EventSlot;\n");
  EXPECT_TRUE(findings.empty());
}

TEST(LintFixtureTest, ZoneMapUnorderedIteration) {
  auto findings = LintPath(FixturePath("zone_map_unordered.cc"));
  EXPECT_EQ(Hits(findings), (Expected{{"zone-map-unordered", 17}}));
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].severity, Severity::kError);
  EXPECT_NE(findings[0].message.find("parts"), std::string::npos);
}

TEST(LintFixtureTest, ZoneMapOrderedCounterpartIsClean) {
  // Same fold over std::map: key-ordered iteration, no hazard.
  auto findings = LintPath(FixturePath("zone_map_ordered.cc"));
  EXPECT_TRUE(findings.empty());
}

TEST(LintFixtureTest, CleanFileHasNoFindings) {
  auto findings = LintPath(FixturePath("clean.cc"));
  EXPECT_TRUE(findings.empty());
}

TEST(LintFixtureTest, SuppressionsCoverBothForms) {
  auto findings = LintPath(FixturePath("suppressed.cc"));
  EXPECT_TRUE(Hits(findings).empty());
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].line, 6);   // trailing-comment form
  EXPECT_EQ(findings[1].line, 10);  // line-above form
  for (const Finding& f : findings) {
    EXPECT_TRUE(f.suppressed);
    EXPECT_NE(f.justification.find("form"), std::string::npos);
  }
  EXPECT_EQ(CountActionable(findings, Severity::kNote), 0);
}

TEST(LintTest, AllowForAnotherCheckDoesNotSuppress) {
  auto findings = LintContent(
      "wrong_allow.cc",
      "#include <cstdlib>\n"
      "int A() { return rand(); }  // dmr-lint: allow(wall-clock) wrong "
      "check on purpose\n");
  EXPECT_EQ(Hits(findings), (Expected{{"unseeded-rng", 2}}));
}

TEST(LintTest, MultipleIdsInOneAllow) {
  auto findings = LintContent(
      "multi_allow.cc",
      "// dmr-lint: allow(unseeded-rng, wall-clock) both at once\n"
      "int A() { return rand() + int(clock()); }\n");
  EXPECT_TRUE(Hits(findings).empty());
  EXPECT_EQ(findings.size(), 2u);
}

TEST(LintTest, CountActionableRespectsTheFloor) {
  auto findings = LintContent(
      "mixed.cc",
      "#include <unordered_map>\n"
      "#include <string>\n"
      "std::string R(const std::unordered_map<int, int>& m) {\n"
      "  std::string out;\n"
      "  for (const auto& [k, v] : m) out += std::to_string(k);\n"
      "  return out;\n"
      "}\n");
  ASSERT_EQ(Hits(findings), (Expected{{"unordered-output", 5}}));
  EXPECT_EQ(CountActionable(findings, Severity::kWarning), 1);
  EXPECT_EQ(CountActionable(findings, Severity::kError), 0);
}

TEST(LintTest, JsonReportParsesAndCounts) {
  auto findings = LintPath(FixturePath("suppressed.cc"));
  auto more = LintPath(FixturePath("wall_clock.cc"));
  findings.insert(findings.end(), more.begin(), more.end());
  auto doc = json::JsonParse(FindingsToJson(findings));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::JsonValue* list = doc.ValueOrDie().Find("findings");
  ASSERT_NE(list, nullptr);
  EXPECT_EQ(list->items.size(), 5u);
  const json::JsonValue* counts = doc.ValueOrDie().Find("counts");
  ASSERT_NE(counts, nullptr);
  EXPECT_EQ(counts->NumberOr("errors", -1), 3);
  EXPECT_EQ(counts->NumberOr("suppressed", -1), 2);
}

TEST(LintTest, EveryBuiltinCheckHasIdSeverityAndMessage) {
  for (const CheckDef& check : BuiltinChecks()) {
    EXPECT_NE(check.id, nullptr);
    EXPECT_STRNE(check.id, "");
    EXPECT_NE(check.message, nullptr);
    EXPECT_FALSE(check.patterns.empty()) << check.id;
  }
}

}  // namespace
}  // namespace dmr::lint
