/// \file
/// Differential test for the lint rebuild: the v2 token/scope engine
/// (lint.cc) must return byte-identical findings to the preserved v1
/// line-regex engine (engine_v1.cc) on every pre-v2 fixture. The two
/// engines are allowed to diverge only where v2 is strictly better — the
/// false-positive fixtures at the bottom pin those divergences down to
/// the exact finding v1 invents and v2 does not.

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/engine_v1.h"
#include "lint/lint.h"

namespace dmr::lint {
namespace {

std::string FixturePath(const std::string& name) {
  return std::string(DMR_SOURCE_DIR) + "/tests/lint/fixtures/" + name;
}

std::string ReadFileOrDie(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read fixture " << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// Every fixture that existed before the v2 engine landed. The new-check
/// and statement-suppression fixtures are deliberately absent: those
/// exercise behavior v1 never had.
const char* kPreV2Fixtures[] = {
    "arena_alloc.cc",
    "check_side_effect.cc",
    "clean.cc",
    "ignored_status.cc",
    "pointer_output.cc",
    "raw_host_timer.cc",
    "raw_host_timer_suppressed.cc",
    "suppressed.cc",
    "timeline_unordered.cc",
    "unordered_output.cc",
    "unseeded_rng.cc",
    "wall_clock.cc",
    "zone_map_ordered.cc",
    "zone_map_unordered.cc",
};

TEST(LintDiffTest, V2MatchesV1OnEveryPreV2Fixture) {
  int total_findings = 0;
  for (const char* name : kPreV2Fixtures) {
    const std::string path = FixturePath(name);
    const std::string content = ReadFileOrDie(path);
    std::vector<Finding> v1 = v1::LintContentV1(path, content);
    std::vector<Finding> v2 = LintContent(path, content);
    ASSERT_EQ(v1.size(), v2.size()) << name << ": finding count diverged";
    for (size_t i = 0; i < v1.size(); ++i) {
      EXPECT_EQ(v1[i].check, v2[i].check) << name << " finding " << i;
      EXPECT_EQ(v1[i].severity, v2[i].severity) << name << " finding " << i;
      EXPECT_EQ(v1[i].file, v2[i].file) << name << " finding " << i;
      EXPECT_EQ(v1[i].line, v2[i].line) << name << " finding " << i;
      EXPECT_EQ(v1[i].message, v2[i].message) << name << " finding " << i;
      EXPECT_EQ(v1[i].suppressed, v2[i].suppressed)
          << name << " finding " << i;
      EXPECT_EQ(v1[i].justification, v2[i].justification)
          << name << " finding " << i;
    }
    total_findings += static_cast<int>(v1.size());
  }
  // The oracle must actually be exercised: a bug that made both engines
  // return nothing everywhere would otherwise pass.
  EXPECT_GT(total_findings, 20);
}

TEST(LintDiffTest, JsonReportsAreByteIdenticalOnPreV2Fixtures) {
  for (const char* name : kPreV2Fixtures) {
    const std::string path = FixturePath(name);
    const std::string content = ReadFileOrDie(path);
    EXPECT_EQ(FindingsToJson(v1::LintContentV1(path, content)),
              FindingsToJson(LintContent(path, content)))
        << name;
  }
}

/// The sanctioned divergences: measured false positives the token/scope
/// engine removes. Each asserts both directions — v1 really does flag the
/// fixture (the FP exists) and v2 really does not (the FP is fixed).
TEST(LintDiffTest, V2DropsStringLiteralEmitFalsePositive) {
  const std::string path = FixturePath("unordered_literal_fp.cc");
  const std::string content = ReadFileOrDie(path);
  std::vector<Finding> v1 = v1::LintContentV1(path, content);
  ASSERT_EQ(v1.size(), 1u) << "v1 should flag the quoted `<<`";
  EXPECT_EQ(v1[0].check, "unordered-output");
  EXPECT_EQ(v1[0].line, 10);
  EXPECT_TRUE(LintContent(path, content).empty())
      << "v2 must not scan string literals for emit patterns";
}

TEST(LintDiffTest, V2DropsForeignScopeNameCollisionFalsePositive) {
  const std::string path = FixturePath("unordered_scope_fp.cc");
  const std::string content = ReadFileOrDie(path);
  std::vector<Finding> v1 = v1::LintContentV1(path, content);
  ASSERT_EQ(v1.size(), 1u) << "v1 should flag the name collision";
  EXPECT_EQ(v1[0].check, "unordered-output");
  EXPECT_EQ(v1[0].line, 17);
  EXPECT_TRUE(LintContent(path, content).empty())
      << "v2 must see that B's declaration does not enclose A's loop";
}

}  // namespace
}  // namespace dmr::lint
