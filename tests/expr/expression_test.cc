#include "expr/expression.h"

#include <gtest/gtest.h>

#include "expr/value.h"

namespace dmr::expr {
namespace {

Schema TestSchema() {
  return Schema({{"ID", ValueType::kInt64},
                 {"PRICE", ValueType::kDouble},
                 {"NAME", ValueType::kString},
                 {"ACTIVE", ValueType::kBool}});
}

Tuple TestRow() { return Tuple{int64_t{7}, 19.5, std::string("widget"), true}; }

Result<bool> Eval(const ExprPtr& e) {
  Schema schema = TestSchema();
  Tuple row = TestRow();
  return EvaluatePredicate(*e, schema, row);
}

TEST(ValueTest, TypeOfMatchesAlternatives) {
  EXPECT_EQ(TypeOf(Value(int64_t{1})), ValueType::kInt64);
  EXPECT_EQ(TypeOf(Value(1.5)), ValueType::kDouble);
  EXPECT_EQ(TypeOf(Value(std::string("x"))), ValueType::kString);
  EXPECT_EQ(TypeOf(Value(true)), ValueType::kBool);
}

TEST(ValueTest, CompareNumericCoercion) {
  EXPECT_EQ(*CompareValues(Value(int64_t{2}), Value(2.0)), 0);
  EXPECT_EQ(*CompareValues(Value(int64_t{2}), Value(2.5)), -1);
  EXPECT_EQ(*CompareValues(Value(3.5), Value(int64_t{3})), 1);
}

TEST(ValueTest, CompareStrings) {
  EXPECT_EQ(*CompareValues(Value(std::string("abc")),
                           Value(std::string("abd"))), -1);
  EXPECT_EQ(*CompareValues(Value(std::string("1998-01-01")),
                           Value(std::string("1997-12-31"))), 1);
}

TEST(ValueTest, CompareMismatchedTypesErrors) {
  EXPECT_FALSE(CompareValues(Value(std::string("x")), Value(1.0)).ok());
  EXPECT_FALSE(CompareValues(Value(true), Value(int64_t{1})).ok());
}

TEST(ValueTest, SchemaLookupIsCaseInsensitive) {
  Schema schema = TestSchema();
  EXPECT_EQ(schema.FindColumn("price"), 1);
  EXPECT_EQ(schema.FindColumn("PRICE"), 1);
  EXPECT_EQ(schema.FindColumn("nonexistent"), -1);
}

TEST(ExpressionTest, ColumnRefReadsRow) {
  Schema schema = TestSchema();
  Tuple row = TestRow();
  auto v = Col("NAME")->Evaluate(schema, row);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(std::get<std::string>(*v), "widget");
}

TEST(ExpressionTest, UnknownColumnErrors) {
  Schema schema = TestSchema();
  Tuple row = TestRow();
  EXPECT_TRUE(Col("NOPE")->Evaluate(schema, row).status().IsNotFound());
}

TEST(ExpressionTest, Comparisons) {
  EXPECT_TRUE(*Eval(Bin(BinaryOp::kGt, Col("PRICE"), Lit(10.0))));
  EXPECT_FALSE(*Eval(Bin(BinaryOp::kLt, Col("PRICE"), Lit(10.0))));
  EXPECT_TRUE(*Eval(Bin(BinaryOp::kEq, Col("ID"), Lit(int64_t{7}))));
  EXPECT_TRUE(*Eval(Bin(BinaryOp::kNe, Col("ID"), Lit(int64_t{8}))));
  EXPECT_TRUE(*Eval(Bin(BinaryOp::kGe, Col("ID"), Lit(int64_t{7}))));
  EXPECT_TRUE(*Eval(Bin(BinaryOp::kLe, Col("ID"), Lit(7.5))));
}

TEST(ExpressionTest, LogicalOperators) {
  auto t = Lit(true);
  auto f = Lit(false);
  EXPECT_TRUE(*Eval(Bin(BinaryOp::kAnd, t, t)));
  EXPECT_FALSE(*Eval(Bin(BinaryOp::kAnd, t, f)));
  EXPECT_TRUE(*Eval(Bin(BinaryOp::kOr, f, t)));
  EXPECT_FALSE(*Eval(Bin(BinaryOp::kOr, f, f)));
  EXPECT_TRUE(*Eval(std::make_shared<NotExpr>(f)));
}

TEST(ExpressionTest, ShortCircuitSkipsErrors) {
  // FALSE AND <error> must not evaluate the right side.
  auto bad = Bin(BinaryOp::kGt, Col("MISSING"), Lit(1.0));
  EXPECT_FALSE(*Eval(Bin(BinaryOp::kAnd, Lit(false), bad)));
  EXPECT_TRUE(*Eval(Bin(BinaryOp::kOr, Lit(true), bad)));
}

TEST(ExpressionTest, ArithmeticIntAndDouble) {
  Schema schema = TestSchema();
  Tuple row = TestRow();
  auto sum = Bin(BinaryOp::kAdd, Col("ID"), Lit(int64_t{3}));
  EXPECT_EQ(std::get<int64_t>(*sum->Evaluate(schema, row)), 10);
  auto mul = Bin(BinaryOp::kMul, Col("PRICE"), Lit(2.0));
  EXPECT_DOUBLE_EQ(std::get<double>(*mul->Evaluate(schema, row)), 39.0);
  auto div = Bin(BinaryOp::kDiv, Lit(int64_t{7}), Lit(int64_t{2}));
  EXPECT_DOUBLE_EQ(std::get<double>(*div->Evaluate(schema, row)), 3.5);
}

TEST(ExpressionTest, DivisionByZeroErrors) {
  Schema schema = TestSchema();
  Tuple row = TestRow();
  auto div = Bin(BinaryOp::kDiv, Lit(1.0), Lit(0.0));
  EXPECT_FALSE(div->Evaluate(schema, row).ok());
}

TEST(ExpressionTest, NegateExpr) {
  Schema schema = TestSchema();
  Tuple row = TestRow();
  auto neg = std::make_shared<NegateExpr>(Col("ID"));
  EXPECT_EQ(std::get<int64_t>(*neg->Evaluate(schema, row)), -7);
  auto negd = std::make_shared<NegateExpr>(Col("PRICE"));
  EXPECT_DOUBLE_EQ(std::get<double>(*negd->Evaluate(schema, row)), -19.5);
}

TEST(ExpressionTest, BetweenIsInclusive) {
  auto mk = [](double lo, double hi) {
    return std::make_shared<BetweenExpr>(Col("PRICE"), Lit(lo), Lit(hi));
  };
  EXPECT_TRUE(*Eval(mk(19.5, 19.5)));
  EXPECT_TRUE(*Eval(mk(10.0, 20.0)));
  EXPECT_FALSE(*Eval(mk(20.0, 30.0)));
  EXPECT_FALSE(*Eval(mk(0.0, 19.4)));
}

TEST(ExpressionTest, InList) {
  auto in = std::make_shared<InExpr>(
      Col("ID"), std::vector<ExprPtr>{Lit(int64_t{1}), Lit(int64_t{7})});
  EXPECT_TRUE(*Eval(in));
  auto not_in = std::make_shared<InExpr>(
      Col("ID"), std::vector<ExprPtr>{Lit(int64_t{1}), Lit(int64_t{2})});
  EXPECT_FALSE(*Eval(not_in));
  auto empty = std::make_shared<InExpr>(Col("ID"), std::vector<ExprPtr>{});
  EXPECT_FALSE(*Eval(empty));
}

TEST(ExpressionTest, LikePatterns) {
  auto like = [](const char* pattern, bool negated = false) {
    return std::make_shared<LikeExpr>(Col("NAME"), pattern, negated);
  };
  EXPECT_TRUE(*Eval(like("widget")));
  EXPECT_TRUE(*Eval(like("wid%")));
  EXPECT_TRUE(*Eval(like("%get")));
  EXPECT_TRUE(*Eval(like("%dge%")));
  EXPECT_TRUE(*Eval(like("w_dget")));
  EXPECT_FALSE(*Eval(like("gadget")));
  EXPECT_TRUE(*Eval(like("gadget", /*negated=*/true)));
}

TEST(ExpressionTest, LikeRequiresString) {
  auto like = std::make_shared<LikeExpr>(Col("ID"), "7");
  EXPECT_FALSE(Eval(like).ok());
}

TEST(LikeMatchTest, EdgeCases) {
  EXPECT_TRUE(LikeMatch("", ""));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "%%%"));
  EXPECT_TRUE(LikeMatch("aXbXc", "a%b%c"));
  EXPECT_FALSE(LikeMatch("ab", "a_b"));
  EXPECT_TRUE(LikeMatch("aab", "%ab"));
}

TEST(ExpressionTest, PredicateMustBeBoolean) {
  auto numeric = Bin(BinaryOp::kAdd, Lit(int64_t{1}), Lit(int64_t{2}));
  EXPECT_FALSE(Eval(numeric).ok());
}

TEST(ExpressionTest, ToStringRendersSql) {
  auto e = Bin(BinaryOp::kAnd, Bin(BinaryOp::kGt, Col("PRICE"), Lit(10.0)),
               std::make_shared<LikeExpr>(Col("NAME"), "w%"));
  EXPECT_EQ(e->ToString(), "((PRICE > 10) AND (NAME LIKE 'w%'))");
}

TEST(ExpressionTest, RowNarrowerThanSchemaErrors) {
  Schema schema = TestSchema();
  Tuple short_row{int64_t{1}};
  EXPECT_TRUE(
      Col("NAME")->Evaluate(schema, short_row).status().IsInternal());
}

}  // namespace
}  // namespace dmr::expr
