#include "tpch/columnar.h"

#include <gtest/gtest.h>

#include "tpch/generator.h"
#include "tpch/lineitem.h"
#include "tpch/predicates.h"

namespace dmr::tpch {
namespace {

TEST(Date32Test, EncodesCanonicalDates) {
  auto packed = EncodeDate32("1994-03-17");
  ASSERT_TRUE(packed.ok());
  EXPECT_EQ(*packed, 19940317);
  EXPECT_EQ(DecodeDate32(*packed), "1994-03-17");
}

TEST(Date32Test, RoundTripsAcrossTheTpchRange) {
  for (int year = 1992; year <= 1998; ++year) {
    for (int month = 1; month <= 12; ++month) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", year, month, 28);
      auto packed = EncodeDate32(buf);
      ASSERT_TRUE(packed.ok()) << buf;
      EXPECT_EQ(DecodeDate32(*packed), buf);
    }
  }
}

TEST(Date32Test, PackedOrderMatchesLexicographicOrder) {
  const char* dates[] = {"1992-01-01", "1992-01-02", "1992-02-01",
                         "1993-01-01", "1998-12-31"};
  for (size_t a = 0; a < std::size(dates); ++a) {
    for (size_t b = 0; b < std::size(dates); ++b) {
      int lex = std::string_view(dates[a]).compare(dates[b]);
      int32_t pa = *EncodeDate32(dates[a]);
      int32_t pb = *EncodeDate32(dates[b]);
      EXPECT_EQ(lex < 0, pa < pb);
      EXPECT_EQ(lex == 0, pa == pb);
    }
  }
}

TEST(Date32Test, RejectsNonCanonicalShapes) {
  EXPECT_FALSE(EncodeDate32("").ok());
  EXPECT_FALSE(EncodeDate32("1994-3-17").ok());
  EXPECT_FALSE(EncodeDate32("94-03-17").ok());
  EXPECT_FALSE(EncodeDate32("1994/03/17").ok());
  EXPECT_FALSE(EncodeDate32("1994-13-01").ok());
  EXPECT_FALSE(EncodeDate32("1994-00-01").ok());
  EXPECT_FALSE(EncodeDate32("1994-01-32").ok());
  EXPECT_FALSE(EncodeDate32("1994-01-00").ok());
  EXPECT_FALSE(EncodeDate32("1994-01-0x").ok());
  EXPECT_FALSE(EncodeDate32("1994-01-01 ").ok());
}

TEST(StringDictionaryTest, AssignsCodesInFirstSeenOrder) {
  StringDictionary dict;
  EXPECT_EQ(dict.GetOrAdd("AIR"), 0u);
  EXPECT_EQ(dict.GetOrAdd("RAIL"), 1u);
  EXPECT_EQ(dict.GetOrAdd("AIR"), 0u);
  EXPECT_EQ(dict.GetOrAdd("SHIP"), 2u);
  EXPECT_EQ(dict.size(), 3u);
  EXPECT_EQ(dict.value(1), "RAIL");
}

TEST(ColumnarPartitionTest, ColumnKindsCoverTheSchema) {
  EXPECT_EQ(LineItemColumnKind(kOrderKey), ColumnKind::kInt64);
  EXPECT_EQ(LineItemColumnKind(kQuantity), ColumnKind::kInt64);
  EXPECT_EQ(LineItemColumnKind(kExtendedPrice), ColumnKind::kDouble);
  EXPECT_EQ(LineItemColumnKind(kTax), ColumnKind::kDouble);
  EXPECT_EQ(LineItemColumnKind(kShipDate), ColumnKind::kDate32);
  EXPECT_EQ(LineItemColumnKind(kReceiptDate), ColumnKind::kDate32);
  EXPECT_EQ(LineItemColumnKind(kReturnFlag), ColumnKind::kDict);
  EXPECT_EQ(LineItemColumnKind(kComment), ColumnKind::kDict);
}

std::vector<LineItemRow> GenerateRows(uint64_t n, uint64_t seed = 11) {
  LineItemGenerator gen(seed);
  std::vector<LineItemRow> rows;
  rows.reserve(n);
  for (uint64_t i = 0; i < n; ++i) rows.push_back(gen.NextBaseRow());
  return rows;
}

TEST(ColumnarPartitionTest, RowsRoundTripByteIdentically) {
  auto rows = GenerateRows(500);
  auto part = ColumnarPartition::FromRows(rows);
  ASSERT_TRUE(part.ok());
  ASSERT_EQ(part->num_rows(), 500u);
  for (uint32_t i = 0; i < part->num_rows(); ++i) {
    EXPECT_EQ(SerializeRow(part->RowAt(i)), SerializeRow(rows[i]));
  }
}

TEST(ColumnarPartitionTest, TupleAtMatchesToTuple) {
  auto rows = GenerateRows(100, 23);
  auto part = ColumnarPartition::FromRows(rows);
  ASSERT_TRUE(part.ok());
  for (uint32_t i = 0; i < part->num_rows(); ++i) {
    expr::Tuple expected = ToTuple(rows[i]);
    expr::Tuple actual = part->TupleAt(i);
    ASSERT_EQ(actual.size(), expected.size());
    for (size_t c = 0; c < expected.size(); ++c) {
      EXPECT_EQ(actual[c], expected[c]) << "row " << i << " col " << c;
      EXPECT_EQ(part->ValueAt(static_cast<int>(c), i), expected[c]);
    }
  }
}

TEST(ColumnarPartitionTest, RejectsNonCanonicalDates) {
  LineItemGenerator gen(3);
  LineItemRow row = gen.NextBaseRow();
  row.shipdate = "1994-3-17";
  ColumnarPartition part;
  EXPECT_FALSE(part.AppendRow(row).ok());
}

TEST(ColumnarPartitionTest, DictionariesStayLowCardinality) {
  auto rows = GenerateRows(2000, 7);
  auto part = ColumnarPartition::FromRows(rows);
  ASSERT_TRUE(part.ok());
  EXPECT_LE(part->Dictionary(kReturnFlag).size(), 3u);
  EXPECT_LE(part->Dictionary(kLineStatus).size(), 2u);
  EXPECT_LE(part->Dictionary(kShipMode).size(), 7u);
  EXPECT_GT(part->MemoryBytes(), 0u);
}

TEST(ColumnarPartitionTest, GeneratorProducesSameRowsDirectly) {
  const auto& pred = PredicateSuite()[0];
  LineItemGenerator row_gen(77);
  auto rows = row_gen.GeneratePartition(1000, 50, pred);
  ASSERT_TRUE(rows.ok());
  LineItemGenerator col_gen(77);
  auto part = col_gen.GenerateColumnarPartition(1000, 50, pred);
  ASSERT_TRUE(part.ok());
  ASSERT_EQ(part->num_rows(), rows->size());
  for (uint32_t i = 0; i < part->num_rows(); ++i) {
    EXPECT_EQ(SerializeRow(part->RowAt(i)), SerializeRow((*rows)[i]));
  }
}

TEST(ColumnarPartitionTest, MaterializedDatasetCarriesColumnarForm) {
  SkewSpec spec;
  spec.num_partitions = 4;
  spec.records_per_partition = 500;
  spec.selectivity = 0.01;
  spec.zipf_z = 1.0;
  auto dataset = MaterializeDataset(spec);
  ASSERT_TRUE(dataset.ok());
  ASSERT_EQ(dataset->columnar.size(), dataset->partitions.size());
  for (size_t p = 0; p < dataset->partitions.size(); ++p) {
    const auto& rows = dataset->partitions[p];
    const auto& part = dataset->columnar[p];
    ASSERT_EQ(part.num_rows(), rows.size());
    for (uint32_t i = 0; i < part.num_rows(); ++i) {
      EXPECT_EQ(SerializeRow(part.RowAt(i)), SerializeRow(rows[i]));
    }
  }
}

}  // namespace
}  // namespace dmr::tpch
