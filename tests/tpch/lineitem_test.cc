#include "tpch/lineitem.h"

#include <gtest/gtest.h>

#include "tpch/generator.h"

namespace dmr::tpch {
namespace {

TEST(LineItemSchemaTest, HasAllSixteenColumns) {
  const auto& schema = LineItemSchema();
  EXPECT_EQ(schema.num_columns(), int(kNumLineItemColumns));
  EXPECT_EQ(schema.FindColumn("ORDERKEY"), kOrderKey);
  EXPECT_EQ(schema.FindColumn("quantity"), kQuantity);
  EXPECT_EQ(schema.FindColumn("COMMENT"), kComment);
}

TEST(LineItemSchemaTest, ColumnTypes) {
  const auto& schema = LineItemSchema();
  EXPECT_EQ(schema.column(kOrderKey).type, expr::ValueType::kInt64);
  EXPECT_EQ(schema.column(kExtendedPrice).type, expr::ValueType::kDouble);
  EXPECT_EQ(schema.column(kShipDate).type, expr::ValueType::kString);
}

TEST(LineItemTest, ToTupleMatchesSchemaOrder) {
  LineItemRow row;
  row.orderkey = 42;
  row.quantity = 17;
  row.discount = 0.07;
  row.shipmode = "AIR";
  expr::Tuple tuple = ToTuple(row);
  ASSERT_EQ(tuple.size(), size_t(kNumLineItemColumns));
  EXPECT_EQ(std::get<int64_t>(tuple[kOrderKey]), 42);
  EXPECT_EQ(std::get<int64_t>(tuple[kQuantity]), 17);
  EXPECT_DOUBLE_EQ(std::get<double>(tuple[kDiscount]), 0.07);
  EXPECT_EQ(std::get<std::string>(tuple[kShipMode]), "AIR");
}

TEST(LineItemTest, SerializeParseRoundTrip) {
  LineItemGenerator gen(11);
  for (int i = 0; i < 200; ++i) {
    LineItemRow row = gen.NextBaseRow();
    auto parsed = ParseRow(SerializeRow(row));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    EXPECT_EQ(parsed->orderkey, row.orderkey);
    EXPECT_EQ(parsed->partkey, row.partkey);
    EXPECT_EQ(parsed->suppkey, row.suppkey);
    EXPECT_EQ(parsed->linenumber, row.linenumber);
    EXPECT_EQ(parsed->quantity, row.quantity);
    EXPECT_NEAR(parsed->extendedprice, row.extendedprice, 0.005);
    EXPECT_NEAR(parsed->discount, row.discount, 0.005);
    EXPECT_NEAR(parsed->tax, row.tax, 0.005);
    EXPECT_EQ(parsed->returnflag, row.returnflag);
    EXPECT_EQ(parsed->linestatus, row.linestatus);
    EXPECT_EQ(parsed->shipdate, row.shipdate);
    EXPECT_EQ(parsed->shipinstruct, row.shipinstruct);
    EXPECT_EQ(parsed->shipmode, row.shipmode);
    EXPECT_EQ(parsed->comment, row.comment);
  }
}

TEST(LineItemTest, ParseRejectsWrongFieldCount) {
  EXPECT_TRUE(ParseRow("1|2|3").status().IsParseError());
  EXPECT_TRUE(ParseRow("").status().IsParseError());
}

TEST(LineItemTest, ParseRejectsMalformedNumbers) {
  LineItemGenerator gen(12);
  std::string good = SerializeRow(gen.NextBaseRow());
  std::string bad = "x" + good;  // corrupts the leading orderkey
  EXPECT_TRUE(ParseRow(bad).status().IsParseError());
}

TEST(LineItemTest, SerializedSizeNearNominal) {
  LineItemGenerator gen(13);
  size_t total = 0;
  const int kRows = 500;
  for (int i = 0; i < kRows; ++i) {
    total += SerializeRow(gen.NextBaseRow()).size() + 1;  // + newline
  }
  double mean = static_cast<double>(total) / kRows;
  // kLineItemRecordBytes drives the simulated partition sizes; keep it
  // honest against the actual text format.
  EXPECT_NEAR(mean, double(kLineItemRecordBytes), 25.0);
}

}  // namespace
}  // namespace dmr::tpch
