#include "tpch/dataset_io.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "exec/local_runtime.h"
#include "hive/compiler.h"

namespace dmr::tpch {
namespace {

namespace fs = std::filesystem;

class DatasetIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("dmr_io_test_" +
            std::to_string(
                ::testing::UnitTest::GetInstance()->random_seed()) +
            "_" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  MaterializedDataset MakeData() {
    SkewSpec spec;
    spec.num_partitions = 4;
    spec.records_per_partition = 500;
    spec.selectivity = 0.02;
    spec.zipf_z = 1.0;
    spec.seed = 13;
    return *MaterializeDataset(spec);
  }

  fs::path dir_;
};

TEST_F(DatasetIoTest, WriteReadRoundTrip) {
  MaterializedDataset original = MakeData();
  ASSERT_TRUE(WriteDatasetToDirectory(original, dir_.string()).ok());
  EXPECT_TRUE(fs::exists(dir_ / "MANIFEST"));
  EXPECT_TRUE(fs::exists(dir_ / "part-00000.tbl"));

  auto loaded = ReadDatasetFromDirectory(dir_.string());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->partitions.size(), original.partitions.size());
  EXPECT_EQ(loaded->matching_per_partition,
            original.matching_per_partition);
  EXPECT_EQ(loaded->predicate.name, original.predicate.name);
  for (size_t p = 0; p < original.partitions.size(); ++p) {
    ASSERT_EQ(loaded->partitions[p].size(), original.partitions[p].size());
    for (size_t r = 0; r < original.partitions[p].size(); ++r) {
      EXPECT_EQ(loaded->partitions[p][r].orderkey,
                original.partitions[p][r].orderkey);
      EXPECT_EQ(loaded->partitions[p][r].shipmode,
                original.partitions[p][r].shipmode);
    }
  }
}

TEST_F(DatasetIoTest, RefusesToOverwrite) {
  MaterializedDataset data = MakeData();
  ASSERT_TRUE(WriteDatasetToDirectory(data, dir_.string()).ok());
  EXPECT_TRUE(
      WriteDatasetToDirectory(data, dir_.string()).IsAlreadyExists());
}

TEST_F(DatasetIoTest, MissingManifestIsNotFound) {
  fs::create_directories(dir_);
  EXPECT_TRUE(
      ReadDatasetFromDirectory(dir_.string()).status().IsNotFound());
}

TEST_F(DatasetIoTest, MissingDirectoryIsNotFound) {
  EXPECT_TRUE(ReadDatasetFromDirectory((dir_ / "nope").string())
                  .status()
                  .IsNotFound());
}

TEST_F(DatasetIoTest, CorruptPartitionFileIsParseError) {
  MaterializedDataset data = MakeData();
  ASSERT_TRUE(WriteDatasetToDirectory(data, dir_.string()).ok());
  std::ofstream out(dir_ / "part-00002.tbl", std::ios::app);
  out << "this is not a lineitem row\n";
  out.close();
  EXPECT_TRUE(
      ReadDatasetFromDirectory(dir_.string()).status().IsParseError());
}

TEST_F(DatasetIoTest, ReadPartitionFileSkipsBlankLines) {
  MaterializedDataset data = MakeData();
  ASSERT_TRUE(WriteDatasetToDirectory(data, dir_.string()).ok());
  std::ofstream out(dir_ / "part-00000.tbl", std::ios::app);
  out << "\n\n";
  out.close();
  auto rows = ReadPartitionFile((dir_ / "part-00000.tbl").string());
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), data.partitions[0].size());
}

TEST_F(DatasetIoTest, LoadedDatasetExecutesQueries) {
  // End to end: write to disk, read back, sample with the LocalRuntime —
  // the paper's "data resides in a filesystem" scenario for real.
  MaterializedDataset data = MakeData();
  ASSERT_TRUE(WriteDatasetToDirectory(data, dir_.string()).ok());
  auto loaded = *ReadDatasetFromDirectory(dir_.string());

  hive::HiveCompiler compiler(&LineItemSchema(),
                              &dynamic::PolicyTable::BuiltIn());
  auto compiled = compiler.Process(
      "SELECT ORDERKEY FROM lineitem WHERE DISCOUNT > 0.10 LIMIT 10");
  ASSERT_TRUE(compiled.ok());
  exec::LocalRuntime runtime({.num_threads = 2});
  auto result =
      runtime.Execute(*compiled->query, loaded,
                      *dynamic::PolicyTable::BuiltIn().Find("LA"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 10u);
}

}  // namespace
}  // namespace dmr::tpch
