#include "tpch/generator.h"

#include <gtest/gtest.h>

#include "expr/expression.h"
#include "tpch/dataset_catalog.h"
#include "tpch/lineitem.h"
#include "tpch/predicates.h"

namespace dmr::tpch {
namespace {

bool Matches(const SkewPredicate& pred, const LineItemRow& row) {
  auto result = expr::EvaluatePredicate(*pred.predicate, LineItemSchema(),
                                        ToTuple(row));
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return result.ok() && *result;
}

TEST(PredicateSuiteTest, HasThreeSkewLevels) {
  const auto& suite = PredicateSuite();
  ASSERT_EQ(suite.size(), 3u);
  EXPECT_DOUBLE_EQ(suite[0].zipf_z, 0.0);
  EXPECT_DOUBLE_EQ(suite[1].zipf_z, 1.0);
  EXPECT_DOUBLE_EQ(suite[2].zipf_z, 2.0);
}

TEST(PredicateSuiteTest, LookupBySkew) {
  EXPECT_TRUE(PredicateForSkew(1.0).ok());
  EXPECT_TRUE(PredicateForSkew(0.5).status().IsNotFound());
}

TEST(PredicateSuiteTest, GenerationHooksAreConsistentWithPredicates) {
  Rng rng(21);
  LineItemGenerator gen(22);
  for (const auto& pred : PredicateSuite()) {
    for (int i = 0; i < 300; ++i) {
      LineItemRow row = gen.NextBaseRow();
      pred.make_matching(&rng, &row);
      EXPECT_TRUE(Matches(pred, row)) << pred.name;
      pred.make_non_matching(&rng, &row);
      EXPECT_FALSE(Matches(pred, row)) << pred.name;
    }
  }
}

TEST(GeneratorTest, BaseRowsAreTpchShaped) {
  LineItemGenerator gen(31);
  for (int i = 0; i < 500; ++i) {
    LineItemRow row = gen.NextBaseRow();
    EXPECT_GT(row.orderkey, 0);
    EXPECT_GE(row.quantity, 1);
    EXPECT_LE(row.quantity, 50);
    EXPECT_GE(row.discount, 0.0);
    EXPECT_LE(row.discount, 0.10 + 1e-9);
    EXPECT_GE(row.tax, 0.0);
    EXPECT_LE(row.tax, 0.08 + 1e-9);
    EXPECT_EQ(row.shipdate.size(), 10u);
    EXPECT_FALSE(row.shipmode.empty());
  }
}

TEST(GeneratorTest, OrderKeysIncrease) {
  LineItemGenerator gen(32);
  int64_t prev = 0;
  for (int i = 0; i < 100; ++i) {
    LineItemRow row = gen.NextBaseRow();
    EXPECT_GT(row.orderkey, prev);
    prev = row.orderkey;
  }
}

TEST(GeneratorTest, PartitionHasExactMatchingCount) {
  LineItemGenerator gen(33);
  const auto& pred = PredicateSuite()[1];
  auto rows = *gen.GeneratePartition(5000, 37, pred);
  ASSERT_EQ(rows.size(), 5000u);
  int matching = 0;
  for (const auto& row : rows) {
    if (Matches(pred, row)) ++matching;
  }
  EXPECT_EQ(matching, 37);
}

TEST(GeneratorTest, ZeroMatchingPartition) {
  LineItemGenerator gen(34);
  const auto& pred = PredicateSuite()[2];
  auto rows = *gen.GeneratePartition(1000, 0, pred);
  for (const auto& row : rows) EXPECT_FALSE(Matches(pred, row));
}

TEST(GeneratorTest, AllMatchingPartition) {
  LineItemGenerator gen(35);
  const auto& pred = PredicateSuite()[0];
  auto rows = *gen.GeneratePartition(500, 500, pred);
  for (const auto& row : rows) EXPECT_TRUE(Matches(pred, row));
}

TEST(GeneratorTest, RejectsMatchingAboveRecords) {
  LineItemGenerator gen(36);
  EXPECT_TRUE(gen.GeneratePartition(10, 11, PredicateSuite()[0])
                  .status()
                  .IsInvalidArgument());
}

TEST(GeneratorTest, MatchingRowsAreSpreadThroughPartition) {
  LineItemGenerator gen(37);
  const auto& pred = PredicateSuite()[0];
  auto rows = *gen.GeneratePartition(10000, 100, pred);
  int first_half = 0;
  for (size_t i = 0; i < 5000; ++i) {
    if (Matches(pred, rows[i])) ++first_half;
  }
  // Uniform placement: expect ~50 in each half, not all clumped.
  EXPECT_GT(first_half, 25);
  EXPECT_LT(first_half, 75);
}

TEST(MaterializeDatasetTest, BuildsConsistentDataset) {
  SkewSpec spec;
  spec.num_partitions = 10;
  spec.records_per_partition = 2000;
  spec.selectivity = 0.01;
  spec.zipf_z = 1.0;
  spec.seed = 77;
  auto dataset = *MaterializeDataset(spec);
  ASSERT_EQ(dataset.partitions.size(), 10u);
  EXPECT_EQ(dataset.total_records(), 20000u);
  EXPECT_EQ(dataset.total_matching(), 200u);

  // Ground truth per partition must match the materialized rows.
  for (size_t p = 0; p < dataset.partitions.size(); ++p) {
    uint64_t matching = 0;
    for (const auto& row : dataset.partitions[p]) {
      if (Matches(dataset.predicate, row)) ++matching;
    }
    EXPECT_EQ(matching, dataset.matching_per_partition[p]) << "partition " << p;
  }
}

TEST(MaterializeDatasetTest, UsesPredicatePairedWithSkew) {
  SkewSpec spec;
  spec.num_partitions = 4;
  spec.records_per_partition = 100;
  spec.selectivity = 0.05;
  spec.zipf_z = 2.0;
  spec.seed = 5;
  auto dataset = *MaterializeDataset(spec);
  EXPECT_EQ(dataset.predicate.name, PredicateSuite()[2].name);
}

TEST(MaterializeDatasetTest, UnknownSkewIsRejected) {
  SkewSpec spec;
  spec.num_partitions = 4;
  spec.records_per_partition = 100;
  spec.zipf_z = 0.7;  // no paired predicate
  EXPECT_TRUE(MaterializeDataset(spec).status().IsNotFound());
}

TEST(CatalogTest, TableTwoProperties) {
  auto props = *PropertiesForScale(5);
  EXPECT_EQ(props.total_records, 30000000u);   // paper Table II
  EXPECT_EQ(props.num_partitions, 40);
  EXPECT_EQ(props.matching_records, 15000u);
  auto big = *PropertiesForScale(100);
  EXPECT_EQ(big.num_partitions, 800);
  EXPECT_EQ(big.total_records, 600000000u);
}

TEST(CatalogTest, RejectsNonPositiveScale) {
  EXPECT_TRUE(PropertiesForScale(0).status().IsInvalidArgument());
  EXPECT_TRUE(PropertiesForScale(-3).status().IsInvalidArgument());
}

TEST(CatalogTest, StandardScalesMatchPaper) {
  EXPECT_EQ(StandardScales(), (std::vector<int>{5, 10, 20, 40, 100}));
}

}  // namespace
}  // namespace dmr::tpch
