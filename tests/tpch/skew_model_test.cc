#include "tpch/skew_model.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "tpch/dataset_catalog.h"

namespace dmr::tpch {
namespace {

SkewSpec PaperSpec(double z, uint64_t seed = 42) {
  SkewSpec spec;
  spec.num_partitions = 40;
  spec.records_per_partition = kRecordsPerPartition;
  spec.selectivity = kPaperSelectivity;
  spec.zipf_z = z;
  spec.seed = seed;
  return spec;
}

TEST(SkewModelTest, TotalMatchingFollowsSelectivity) {
  EXPECT_EQ(TotalMatchingRecords(PaperSpec(0.0)), 15000u);  // paper: 15k @5x
}

TEST(SkewModelTest, ZeroSkewIsExactlyEqual) {
  auto counts = *AssignMatchingRecords(PaperSpec(0.0));
  ASSERT_EQ(counts.size(), 40u);
  for (uint64_t c : counts) EXPECT_EQ(c, 375u);  // paper Fig. 4
}

TEST(SkewModelTest, ZeroSkewSpreadsRemainder) {
  SkewSpec spec = PaperSpec(0.0);
  spec.num_partitions = 7;
  spec.records_per_partition = 1000;
  spec.selectivity = 0.01;  // 70 / 7 = 10 exactly; use 0.0103 for remainder
  spec.selectivity = 0.0103;
  auto counts = *AssignMatchingRecords(spec);
  uint64_t total = std::accumulate(counts.begin(), counts.end(), uint64_t{0});
  EXPECT_EQ(total, TotalMatchingRecords(spec));
  uint64_t mn = *std::min_element(counts.begin(), counts.end());
  uint64_t mx = *std::max_element(counts.begin(), counts.end());
  EXPECT_LE(mx - mn, 1u);
}

class SkewSweepTest : public ::testing::TestWithParam<double> {};

TEST_P(SkewSweepTest, ConservesTotalMatching) {
  auto spec = PaperSpec(GetParam());
  auto counts = *AssignMatchingRecords(spec);
  uint64_t total = std::accumulate(counts.begin(), counts.end(), uint64_t{0});
  EXPECT_EQ(total, TotalMatchingRecords(spec));
}

TEST_P(SkewSweepTest, NeverExceedsPartitionCapacity) {
  auto spec = PaperSpec(GetParam());
  auto counts = *AssignMatchingRecords(spec);
  for (uint64_t c : counts) EXPECT_LE(c, spec.records_per_partition);
}

TEST_P(SkewSweepTest, DeterministicForSeed) {
  auto spec = PaperSpec(GetParam(), 123);
  EXPECT_EQ(*AssignMatchingRecords(spec), *AssignMatchingRecords(spec));
}

INSTANTIATE_TEST_SUITE_P(AllSkews, SkewSweepTest,
                         ::testing::Values(0.0, 0.5, 1.0, 2.0, 3.0));

TEST(SkewModelTest, ModerateSkewMatchesPaperHeavyPartition) {
  // Paper: z=1 put 3,128 of 15,000 records in one partition. Expected mass
  // of rank 1 is 15000 / H(40) ~= 3506; accept the sampling band.
  auto counts = *AssignMatchingRecords(PaperSpec(1.0));
  uint64_t heaviest = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(heaviest, 2800u);
  EXPECT_LT(heaviest, 4300u);
}

TEST(SkewModelTest, HighSkewMatchesPaperHeavyPartition) {
  // Paper: z=2 put 8,700 of 15,000 in a single partition (P(1) ~= 0.617).
  auto counts = *AssignMatchingRecords(PaperSpec(2.0));
  uint64_t heaviest = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(heaviest, 8300u);
  EXPECT_LT(heaviest, 10200u);
}

TEST(SkewModelTest, HigherSkewConcentratesMore) {
  auto z1 = *AssignMatchingRecords(PaperSpec(1.0));
  auto z2 = *AssignMatchingRecords(PaperSpec(2.0));
  EXPECT_GT(*std::max_element(z2.begin(), z2.end()),
            *std::max_element(z1.begin(), z1.end()));
}

TEST(SkewModelTest, SkewPlacementIsShuffled) {
  // The heaviest partition should not always be partition 0.
  int heavy_at_zero = 0;
  for (uint64_t seed = 0; seed < 20; ++seed) {
    auto counts = *AssignMatchingRecords(PaperSpec(2.0, seed));
    auto mx = std::max_element(counts.begin(), counts.end());
    if (mx == counts.begin()) ++heavy_at_zero;
  }
  EXPECT_LT(heavy_at_zero, 10);
}

TEST(SkewModelTest, ZeroSelectivityYieldsNoMatches) {
  SkewSpec spec = PaperSpec(1.0);
  spec.selectivity = 0.0;
  auto counts = *AssignMatchingRecords(spec);
  for (uint64_t c : counts) EXPECT_EQ(c, 0u);
}

TEST(SkewModelTest, FullSelectivityFillsEveryPartition) {
  SkewSpec spec = PaperSpec(0.0);
  spec.selectivity = 1.0;
  auto counts = *AssignMatchingRecords(spec);
  for (uint64_t c : counts) EXPECT_EQ(c, spec.records_per_partition);
}

TEST(SkewModelTest, OverflowSpillsToNextRanks) {
  SkewSpec spec;
  spec.num_partitions = 4;
  spec.records_per_partition = 100;
  spec.selectivity = 0.9;  // 360 of 400: rank 1 must overflow under z=2
  spec.zipf_z = 2.0;
  spec.seed = 5;
  auto counts = *AssignMatchingRecords(spec);
  uint64_t total = std::accumulate(counts.begin(), counts.end(), uint64_t{0});
  EXPECT_EQ(total, 360u);
  for (uint64_t c : counts) EXPECT_LE(c, 100u);
}

TEST(SkewModelTest, InvalidSpecsAreRejected) {
  SkewSpec spec = PaperSpec(1.0);
  spec.num_partitions = 0;
  EXPECT_TRUE(AssignMatchingRecords(spec).status().IsInvalidArgument());
  spec = PaperSpec(1.0);
  spec.records_per_partition = 0;
  EXPECT_TRUE(AssignMatchingRecords(spec).status().IsInvalidArgument());
  spec = PaperSpec(1.0);
  spec.selectivity = 1.5;
  EXPECT_TRUE(AssignMatchingRecords(spec).status().IsInvalidArgument());
  spec = PaperSpec(1.0);
  spec.zipf_z = -0.5;
  EXPECT_TRUE(AssignMatchingRecords(spec).status().IsInvalidArgument());
}

}  // namespace
}  // namespace dmr::tpch
