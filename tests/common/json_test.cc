#include "common/json.h"

#include <gtest/gtest.h>

namespace dmr::json {
namespace {

TEST(JsonParseTest, ParsesScalars) {
  EXPECT_TRUE(JsonParse("null").ValueOrDie().is_null());
  EXPECT_TRUE(JsonParse("true").ValueOrDie().bool_value);
  EXPECT_FALSE(JsonParse("false").ValueOrDie().bool_value);
  EXPECT_DOUBLE_EQ(JsonParse("3.25").ValueOrDie().number_value, 3.25);
  EXPECT_DOUBLE_EQ(JsonParse("-17").ValueOrDie().number_value, -17.0);
  EXPECT_DOUBLE_EQ(JsonParse("1.5e3").ValueOrDie().number_value, 1500.0);
  EXPECT_EQ(JsonParse("\"hi\"").ValueOrDie().string_value, "hi");
}

TEST(JsonParseTest, ParsesNestedStructures) {
  auto result = JsonParse(
      R"({"name": "map 3", "args": {"local": true, "split": 7},
          "times": [1.5, 2.5]})");
  ASSERT_TRUE(result.ok());
  const JsonValue& doc = result.ValueOrDie();
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.StringOr("name", ""), "map 3");
  const JsonValue* args = doc.Find("args");
  ASSERT_NE(args, nullptr);
  EXPECT_DOUBLE_EQ(args->NumberOr("split", -1.0), 7.0);
  const JsonValue* times = doc.Find("times");
  ASSERT_NE(times, nullptr);
  ASSERT_TRUE(times->is_array());
  ASSERT_EQ(times->items.size(), 2u);
  EXPECT_DOUBLE_EQ(times->items[1].number_value, 2.5);
}

TEST(JsonParseTest, DecodesStringEscapes) {
  auto result = JsonParse(R"("a\"b\\c\n\t")");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.ValueOrDie().string_value, "a\"b\\c\n\t");
}

TEST(JsonParseTest, RejectsMalformedInput) {
  EXPECT_FALSE(JsonParse("").ok());
  EXPECT_FALSE(JsonParse("{").ok());
  EXPECT_FALSE(JsonParse("[1, 2,]").ok());
  EXPECT_FALSE(JsonParse("{\"a\" 1}").ok());
  EXPECT_FALSE(JsonParse("nope").ok());
  // Trailing garbage after a valid document is an error.
  EXPECT_FALSE(JsonParse("{} extra").ok());
}

TEST(JsonParseTest, FindOnNonObjectIsNull) {
  auto doc = JsonParse("[1, 2]").ValueOrDie();
  EXPECT_EQ(doc.Find("anything"), nullptr);
  EXPECT_DOUBLE_EQ(doc.NumberOr("x", 9.0), 9.0);
  EXPECT_EQ(doc.StringOr("x", "fallback"), "fallback");
}

TEST(JsonQuoteTest, EscapesControlCharacters) {
  EXPECT_EQ(JsonQuote("plain"), "\"plain\"");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
  EXPECT_EQ(JsonQuote("a\\b"), "\"a\\\\b\"");
  EXPECT_EQ(JsonQuote("line\nbreak"), "\"line\\nbreak\"");
  // Round-trips through the parser.
  auto parsed = JsonParse(JsonQuote("tab\there \x01 done"));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.ValueOrDie().string_value, "tab\there \x01 done");
}

}  // namespace
}  // namespace dmr::json
