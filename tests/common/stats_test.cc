#include <gtest/gtest.h>

#include "common/histogram.h"
#include "common/table_printer.h"
#include "common/time_series.h"

namespace dmr {
namespace {

TEST(HistogramTest, EmptyHistogramIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 0.0);
  EXPECT_DOUBLE_EQ(h.min(), 0.0);
  EXPECT_DOUBLE_EQ(h.max(), 0.0);
}

TEST(HistogramTest, BasicStats) {
  Histogram h;
  for (double v : {1.0, 2.0, 3.0, 4.0, 5.0}) h.Add(v);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.Mean(), 3.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 5.0);
  EXPECT_DOUBLE_EQ(h.Median(), 3.0);
  EXPECT_NEAR(h.Stddev(), 1.5811, 1e-3);
}

TEST(HistogramTest, PercentileInterpolates) {
  Histogram h;
  for (double v : {0.0, 10.0}) h.Add(v);
  EXPECT_DOUBLE_EQ(h.Percentile(0), 0.0);
  EXPECT_DOUBLE_EQ(h.Percentile(100), 10.0);
  EXPECT_DOUBLE_EQ(h.Percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.Percentile(25), 2.5);
}

TEST(HistogramTest, PercentileClampsOutOfRange) {
  Histogram h;
  h.Add(3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(-5), 3.0);
  EXPECT_DOUBLE_EQ(h.Percentile(200), 3.0);
}

TEST(HistogramTest, MergeCombinesSamples) {
  Histogram a, b;
  a.Add(1.0);
  a.Add(2.0);
  b.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_DOUBLE_EQ(a.Mean(), 2.0);
}

TEST(HistogramTest, ClearResets) {
  Histogram h;
  h.Add(5.0);
  h.Clear();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Add(1.0);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

TEST(HistogramTest, AddAfterPercentileInvalidatesCache) {
  Histogram h;
  h.Add(1.0);
  EXPECT_DOUBLE_EQ(h.Median(), 1.0);
  h.Add(100.0);
  EXPECT_DOUBLE_EQ(h.Median(), 50.5);
}

TEST(TimeSeriesTest, MeanAfterFiltersByTime) {
  TimeSeries ts;
  ts.Add(0.0, 10.0);
  ts.Add(30.0, 20.0);
  ts.Add(60.0, 30.0);
  EXPECT_DOUBLE_EQ(ts.Mean(), 20.0);
  EXPECT_DOUBLE_EQ(ts.MeanAfter(30.0), 25.0);
  EXPECT_DOUBLE_EQ(ts.MeanAfter(100.0), 0.0);
}

TEST(TimeSeriesTest, MaxAndClear) {
  TimeSeries ts;
  ts.Add(0, 5);
  ts.Add(1, 7);
  ts.Add(2, 3);
  EXPECT_DOUBLE_EQ(ts.Max(), 7.0);
  ts.Clear();
  EXPECT_TRUE(ts.empty());
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "222"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| name        | value |"), std::string::npos);
  EXPECT_NE(out.find("| longer-name | 222   |"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::string out = t.ToString();
  EXPECT_NE(out.find("| only |"), std::string::npos);
  EXPECT_EQ(t.num_rows(), 1u);
}

TEST(TablePrinterTest, NumericRowFormatsPrecision) {
  TablePrinter t({"label", "v1", "v2"});
  t.AddNumericRow("row", {1.234, 5.0}, 2);
  std::string out = t.ToString();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("5.00"), std::string::npos);
}

}  // namespace
}  // namespace dmr
