#include "common/properties.h"

#include <gtest/gtest.h>

namespace dmr {
namespace {

TEST(PropertiesTest, SetGetRoundTrip) {
  Properties props;
  props.Set("a.b.c", "value");
  EXPECT_TRUE(props.Contains("a.b.c"));
  EXPECT_EQ(props.Get("a.b.c"), "value");
  EXPECT_EQ(props.Get("missing", "fallback"), "fallback");
}

TEST(PropertiesTest, SetOverwrites) {
  Properties props;
  props.Set("k", "one");
  props.Set("k", "two");
  EXPECT_EQ(props.Get("k"), "two");
  EXPECT_EQ(props.size(), 1u);
}

TEST(PropertiesTest, TypedSettersAndGetters) {
  Properties props;
  props.SetInt("int", -42);
  props.SetDouble("dbl", 2.5);
  props.SetBool("yes", true);
  props.SetBool("no", false);
  EXPECT_EQ(*props.GetInt("int", 0), -42);
  EXPECT_DOUBLE_EQ(*props.GetDouble("dbl", 0), 2.5);
  EXPECT_TRUE(*props.GetBool("yes", false));
  EXPECT_FALSE(*props.GetBool("no", true));
}

TEST(PropertiesTest, TypedGettersFallBackWhenAbsent) {
  Properties props;
  EXPECT_EQ(*props.GetInt("nope", 7), 7);
  EXPECT_DOUBLE_EQ(*props.GetDouble("nope", 1.5), 1.5);
  EXPECT_TRUE(*props.GetBool("nope", true));
}

TEST(PropertiesTest, TypedGettersErrorOnMalformed) {
  Properties props;
  props.Set("bad", "xyz");
  EXPECT_TRUE(props.GetInt("bad", 0).status().IsParseError());
  EXPECT_TRUE(props.GetDouble("bad", 0).status().IsParseError());
  EXPECT_TRUE(props.GetBool("bad", false).status().IsParseError());
}

TEST(PropertiesTest, BoolAcceptsCommonSpellings) {
  Properties props;
  props.Set("a", "TRUE");
  props.Set("b", "0");
  props.Set("c", "Yes");
  EXPECT_TRUE(*props.GetBool("a", false));
  EXPECT_FALSE(*props.GetBool("b", true));
  EXPECT_TRUE(*props.GetBool("c", false));
}

TEST(PropertiesTest, Erase) {
  Properties props;
  props.Set("k", "v");
  EXPECT_TRUE(props.Erase("k"));
  EXPECT_FALSE(props.Erase("k"));
  EXPECT_FALSE(props.Contains("k"));
}

TEST(PropertiesTest, ParseBasicFile) {
  auto props = Properties::Parse(R"(
# a comment
key.one = hello
key.two=  spaced value
empty.ok =
)");
  ASSERT_TRUE(props.ok());
  EXPECT_EQ(props->Get("key.one"), "hello");
  EXPECT_EQ(props->Get("key.two"), "spaced value");
  EXPECT_TRUE(props->Contains("empty.ok"));
  EXPECT_EQ(props->Get("empty.ok"), "");
}

TEST(PropertiesTest, ParseInlineComments) {
  auto props = Properties::Parse("k = v  # trailing comment\n");
  ASSERT_TRUE(props.ok());
  EXPECT_EQ(props->Get("k"), "v");
}

TEST(PropertiesTest, ParseRejectsMissingEquals) {
  auto props = Properties::Parse("just some words\n");
  EXPECT_TRUE(props.status().IsParseError());
}

TEST(PropertiesTest, ParseRejectsEmptyKey) {
  auto props = Properties::Parse("= value\n");
  EXPECT_TRUE(props.status().IsParseError());
}

TEST(PropertiesTest, ToStringRoundTrips) {
  Properties props;
  props.Set("b", "2");
  props.Set("a", "1");
  auto reparsed = Properties::Parse(props.ToString());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed->Get("a"), "1");
  EXPECT_EQ(reparsed->Get("b"), "2");
  EXPECT_EQ(reparsed->size(), 2u);
}

TEST(PropertiesTest, ValueMayContainEquals) {
  auto props = Properties::Parse("expr = AS > 0 ? 1 : 2\n");
  ASSERT_TRUE(props.ok());
  EXPECT_EQ(props->Get("expr"), "AS > 0 ? 1 : 2");
}

}  // namespace
}  // namespace dmr
