#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace dmr {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, OkFactory) { EXPECT_TRUE(Status::OK().ok()); }

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  struct Case {
    Status status;
    StatusCode code;
  };
  const Case cases[] = {
      {Status::InvalidArgument("a"), StatusCode::kInvalidArgument},
      {Status::NotFound("b"), StatusCode::kNotFound},
      {Status::AlreadyExists("c"), StatusCode::kAlreadyExists},
      {Status::OutOfRange("d"), StatusCode::kOutOfRange},
      {Status::FailedPrecondition("e"), StatusCode::kFailedPrecondition},
      {Status::Unimplemented("f"), StatusCode::kUnimplemented},
      {Status::IoError("g"), StatusCode::kIoError},
      {Status::ParseError("h"), StatusCode::kParseError},
      {Status::Internal("i"), StatusCode::kInternal},
  };
  for (const auto& c : cases) {
    EXPECT_FALSE(c.status.ok());
    EXPECT_EQ(c.status.code(), c.code);
    EXPECT_FALSE(c.status.message().empty());
  }
}

TEST(StatusTest, PredicatesMatchOnlyTheirCode) {
  Status nf = Status::NotFound("x");
  EXPECT_TRUE(nf.IsNotFound());
  EXPECT_FALSE(nf.IsInvalidArgument());
  EXPECT_FALSE(nf.IsIoError());
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status st = Status::ParseError("bad token");
  EXPECT_EQ(st.ToString(), "ParseError: bad token");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
  EXPECT_FALSE(Status::NotFound("x") == Status::Internal("x"));
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto fails = []() -> Status {
    DMR_RETURN_NOT_OK(Status::IoError("disk gone"));
    return Status::OK();
  };
  EXPECT_TRUE(fails().IsIoError());

  auto succeeds = []() -> Status {
    DMR_RETURN_NOT_OK(Status::OK());
    return Status::InvalidArgument("reached end");
  };
  EXPECT_TRUE(succeeds().IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("gone");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, ValueOrReturnsValueWhenOk) {
  Result<int> r = 7;
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, MoveOnlyTypesWork) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueUnsafe();
  EXPECT_EQ(*v, 5);
}

TEST(ResultTest, AssignOrReturnMacro) {
  auto inner = [](bool fail) -> Result<int> {
    if (fail) return Status::OutOfRange("nope");
    return 10;
  };
  auto outer = [&](bool fail) -> Result<int> {
    DMR_ASSIGN_OR_RETURN(int v, inner(fail));
    return v + 1;
  };
  EXPECT_EQ(*outer(false), 11);
  EXPECT_TRUE(outer(true).status().IsOutOfRange());
}

TEST(ResultTest, ArrowOperatorAccessesMembers) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace dmr
