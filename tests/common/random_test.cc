#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

namespace dmr {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(13), 13u);
  }
}

TEST(RngTest, NextBoundedIsRoughlyUniform) {
  Rng rng(11);
  const int kBuckets = 10;
  const int kDraws = 100000;
  int counts[kBuckets] = {0};
  for (int i = 0; i < kDraws; ++i) {
    counts[rng.NextBounded(kBuckets)]++;
  }
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(RngTest, NextInRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.NextInRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    if (v == -3) saw_lo = true;
    if (v == 3) saw_hi = true;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextInRangeSingleton) {
  Rng rng(5);
  EXPECT_EQ(rng.NextInRange(42, 42), 42);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(3);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(9);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBernoulli(0.0));
    EXPECT_TRUE(rng.NextBernoulli(1.0));
    EXPECT_FALSE(rng.NextBernoulli(-1.0));
    EXPECT_TRUE(rng.NextBernoulli(2.0));
  }
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 100000; ++i) {
    if (rng.NextBernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  const int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.NextExponential(5.0);
  EXPECT_NEAR(sum / kDraws, 5.0, 0.15);
}

TEST(RngTest, ForkDecorrelates) {
  Rng parent(21);
  Rng child = parent.Fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.Next() == child.Next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(31);
  std::vector<int> items{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = items;
  rng.Shuffle(&items);
  std::sort(items.begin(), items.end());
  EXPECT_EQ(items, original);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(1);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one{9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

// --- Zipf property sweep -------------------------------------------------

class ZipfLawTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfLawTest, PmfFollowsPowerLaw) {
  double z = GetParam();
  const uint64_t n = 50;
  ZipfGenerator zipf(n, z);
  // f(k) / f(1) == 1 / k^z.
  double f1 = zipf.Pmf(1);
  for (uint64_t k : {2ULL, 5ULL, 10ULL, 50ULL}) {
    EXPECT_NEAR(zipf.Pmf(k) / f1, 1.0 / std::pow(double(k), z), 1e-9)
        << "k=" << k << " z=" << z;
  }
}

TEST_P(ZipfLawTest, PmfSumsToOne) {
  double z = GetParam();
  ZipfGenerator zipf(40, z);
  double sum = 0;
  for (uint64_t k = 1; k <= 40; ++k) sum += zipf.Pmf(k);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_P(ZipfLawTest, EmpiricalFrequenciesMatchPmf) {
  double z = GetParam();
  const uint64_t n = 20;
  ZipfGenerator zipf(n, z);
  Rng rng(77);
  const int kDraws = 200000;
  std::map<uint64_t, int> counts;
  for (int i = 0; i < kDraws; ++i) counts[zipf.Next(&rng)]++;
  for (uint64_t k = 1; k <= n; ++k) {
    double expected = zipf.Pmf(k) * kDraws;
    // 5-sigma band for a binomial count (loose, avoids flakiness).
    double sigma = std::sqrt(expected * (1 - zipf.Pmf(k)));
    EXPECT_NEAR(counts[k], expected, 5 * sigma + 5) << "k=" << k << " z=" << z;
  }
}

INSTANTIATE_TEST_SUITE_P(SkewSweep, ZipfLawTest,
                         ::testing::Values(0.0, 0.5, 1.0, 1.5, 2.0, 3.0));

TEST(ZipfTest, ZeroSkewIsUniform) {
  ZipfGenerator zipf(10, 0.0);
  for (uint64_t k = 1; k <= 10; ++k) EXPECT_NEAR(zipf.Pmf(k), 0.1, 1e-12);
}

TEST(ZipfTest, HighSkewConcentratesOnRankOne) {
  ZipfGenerator zipf(40, 2.0);
  // H(40, 2) ~= 1.6202 => P(1) ~= 0.617, the paper's "8700 of 15000 in one
  // partition" regime.
  EXPECT_NEAR(zipf.Pmf(1), 0.617, 0.005);
}

TEST(ZipfTest, SingleElementPopulation) {
  ZipfGenerator zipf(1, 2.0);
  Rng rng(1);
  EXPECT_EQ(zipf.Next(&rng), 1u);
  EXPECT_NEAR(zipf.Pmf(1), 1.0, 1e-12);
}

}  // namespace
}  // namespace dmr
