#include "common/logging.h"

#include <gtest/gtest.h>

namespace dmr {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = Logging::threshold(); }
  void TearDown() override { Logging::set_threshold(saved_); }
  LogLevel saved_;
};

TEST_F(LoggingTest, DefaultThresholdIsWarn) {
  // The library must be quiet by default for embedders.
  EXPECT_EQ(Logging::threshold(), LogLevel::kWarn);
}

TEST_F(LoggingTest, ThresholdIsAdjustable) {
  Logging::set_threshold(LogLevel::kDebug);
  EXPECT_EQ(Logging::threshold(), LogLevel::kDebug);
  Logging::set_threshold(LogLevel::kOff);
  EXPECT_EQ(Logging::threshold(), LogLevel::kOff);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotEvaluateStream) {
  Logging::set_threshold(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return "costly";
  };
  DMR_LOG(Info) << expensive();
  EXPECT_EQ(evaluations, 0);

  Logging::set_threshold(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  DMR_LOG(Info) << expensive();
  std::string output = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(evaluations, 1);
  EXPECT_NE(output.find("costly"), std::string::npos);
  EXPECT_NE(output.find("INFO"), std::string::npos);
  EXPECT_NE(output.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, ParsesLevelNames) {
  EXPECT_EQ(Logging::ParseLevel("debug"), LogLevel::kDebug);
  EXPECT_EQ(Logging::ParseLevel("info"), LogLevel::kInfo);
  EXPECT_EQ(Logging::ParseLevel("warn"), LogLevel::kWarn);
  EXPECT_EQ(Logging::ParseLevel("warning"), LogLevel::kWarn);
  EXPECT_EQ(Logging::ParseLevel("error"), LogLevel::kError);
  EXPECT_EQ(Logging::ParseLevel("off"), LogLevel::kOff);
  EXPECT_EQ(Logging::ParseLevel("none"), LogLevel::kOff);
  // Case-insensitive, as DMR_LOG_LEVEL should be forgiving.
  EXPECT_EQ(Logging::ParseLevel("DEBUG"), LogLevel::kDebug);
  EXPECT_EQ(Logging::ParseLevel("Warn"), LogLevel::kWarn);
  EXPECT_EQ(Logging::ParseLevel(""), std::nullopt);
  EXPECT_EQ(Logging::ParseLevel("verbose"), std::nullopt);
  EXPECT_EQ(Logging::ParseLevel("2"), std::nullopt);
}

TEST_F(LoggingTest, ChecksPassSilently) {
  ::testing::internal::CaptureStderr();
  DMR_CHECK(1 + 1 == 2) << "never shown";
  DMR_CHECK_GE(5, 5);
  DMR_CHECK_LT(1, 2);
  DMR_CHECK_EQ(3, 3);
  DMR_CHECK_NE(3, 4);
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

TEST_F(LoggingTest, FailedCheckAborts) {
  EXPECT_DEATH({ DMR_CHECK(false) << "boom"; }, "Check failed");
  EXPECT_DEATH({ DMR_CHECK_GT(1, 2); }, "Check failed");
}

}  // namespace
}  // namespace dmr
