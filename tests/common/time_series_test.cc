#include "common/time_series.h"

#include <gtest/gtest.h>

namespace dmr {
namespace {

TEST(TimeSeriesTest, EmptySeriesReportsZeros) {
  TimeSeries series;
  EXPECT_TRUE(series.empty());
  EXPECT_DOUBLE_EQ(series.Min(), 0.0);
  EXPECT_DOUBLE_EQ(series.Max(), 0.0);
  EXPECT_DOUBLE_EQ(series.Percentile(50.0), 0.0);
}

TEST(TimeSeriesTest, MinAndMaxTrackExtremes) {
  TimeSeries series;
  series.Add(0.0, 7.5);
  series.Add(30.0, 2.5);
  series.Add(60.0, 11.0);
  EXPECT_DOUBLE_EQ(series.Min(), 2.5);
  EXPECT_DOUBLE_EQ(series.Max(), 11.0);
}

TEST(TimeSeriesTest, MaxOfAllNegativeSeriesIsNegative) {
  // Max() must seed from the first point: a zero seed would report 0.0
  // for a series that never reaches zero (e.g. a drift gauge).
  TimeSeries series;
  series.Add(0.0, -7.5);
  series.Add(30.0, -2.5);
  series.Add(60.0, -11.0);
  EXPECT_DOUBLE_EQ(series.Max(), -2.5);
  EXPECT_DOUBLE_EQ(series.Min(), -11.0);
  EXPECT_DOUBLE_EQ(series.Percentile(100.0), series.Max());
  EXPECT_DOUBLE_EQ(series.Percentile(0.0), series.Min());
}

TEST(TimeSeriesTest, PercentileUsesNearestRank) {
  // Four values: rank(q) = ceil(q/100 * 4), 1-based.
  TimeSeries series;
  series.Add(0.0, 40.0);  // insertion order must not matter
  series.Add(1.0, 10.0);
  series.Add(2.0, 30.0);
  series.Add(3.0, 20.0);
  EXPECT_DOUBLE_EQ(series.Percentile(25.0), 10.0);  // rank 1
  EXPECT_DOUBLE_EQ(series.Percentile(50.0), 20.0);  // rank 2
  EXPECT_DOUBLE_EQ(series.Percentile(75.0), 30.0);  // rank 3
  EXPECT_DOUBLE_EQ(series.Percentile(95.0), 40.0);  // rank ceil(3.8) = 4
}

TEST(TimeSeriesTest, PercentileEndpointsMatchMinMax) {
  TimeSeries series;
  for (int i = 1; i <= 100; ++i) {
    series.Add(static_cast<double>(i), static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(series.Percentile(0.0), series.Min());
  EXPECT_DOUBLE_EQ(series.Percentile(100.0), series.Max());
  EXPECT_DOUBLE_EQ(series.Percentile(50.0), 50.0);
  EXPECT_DOUBLE_EQ(series.Percentile(95.0), 95.0);
  EXPECT_DOUBLE_EQ(series.Percentile(99.0), 99.0);
  // Out-of-range quantiles clamp rather than crash.
  EXPECT_DOUBLE_EQ(series.Percentile(-10.0), series.Min());
  EXPECT_DOUBLE_EQ(series.Percentile(250.0), series.Max());
}

TEST(TimeSeriesTest, SingleValueIsEveryPercentile) {
  TimeSeries series;
  series.Add(0.0, 42.0);
  EXPECT_DOUBLE_EQ(series.Percentile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(series.Percentile(50.0), 42.0);
  EXPECT_DOUBLE_EQ(series.Percentile(100.0), 42.0);
}

}  // namespace
}  // namespace dmr
