#include "common/strings.h"

#include <gtest/gtest.h>

namespace dmr {
namespace {

TEST(SplitStringTest, BasicSplit) {
  auto parts = SplitString("a|b|c", '|');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitStringTest, KeepsEmptyFields) {
  auto parts = SplitString("a||c|", '|');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(SplitStringTest, EmptyInputYieldsOneEmptyField) {
  auto parts = SplitString("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(TrimTest, TrimsBothEnds) {
  EXPECT_EQ(TrimWhitespace("  abc \t\n"), "abc");
  EXPECT_EQ(TrimWhitespace("abc"), "abc");
  EXPECT_EQ(TrimWhitespace("   "), "");
  EXPECT_EQ(TrimWhitespace(""), "");
  EXPECT_EQ(TrimWhitespace("a b"), "a b");
}

TEST(CaseTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("AbC123"), "abc123");
  EXPECT_EQ(ToUpper("AbC123"), "ABC123");
}

TEST(CaseTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("SELECT", "select"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abcd"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(AffixTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("policy.LA.grab", "policy."));
  EXPECT_FALSE(StartsWith("poli", "policy."));
  EXPECT_TRUE(EndsWith("file.txt", ".txt"));
  EXPECT_FALSE(EndsWith("txt", ".txt"));
  EXPECT_TRUE(StartsWith("abc", ""));
  EXPECT_TRUE(EndsWith("abc", ""));
}

TEST(JoinTest, JoinsWithSeparator) {
  EXPECT_EQ(JoinStrings({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(FormatBytesTest, PicksUnits) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(1536), "1.5 KB");
  EXPECT_EQ(FormatBytes(3 * 1024 * 1024ULL), "3.0 MB");
  EXPECT_EQ(FormatBytes(5ULL << 30), "5.0 GB");
}

TEST(FormatDurationTest, AdaptivePrecision) {
  EXPECT_EQ(FormatDuration(12.34), "12.3s");
  EXPECT_EQ(FormatDuration(135.0), "2m 15.0s");
  EXPECT_EQ(FormatDuration(3700.0), "1h 1m 40s");
  EXPECT_EQ(FormatDuration(-5.0), "0.0s");
}

TEST(ParseInt64Test, ValidAndInvalid) {
  int64_t v = 0;
  EXPECT_TRUE(ParseInt64("42", &v));
  EXPECT_EQ(v, 42);
  EXPECT_TRUE(ParseInt64("-7", &v));
  EXPECT_EQ(v, -7);
  EXPECT_TRUE(ParseInt64("  13  ", &v));
  EXPECT_EQ(v, 13);
  EXPECT_FALSE(ParseInt64("", &v));
  EXPECT_FALSE(ParseInt64("12abc", &v));
  EXPECT_FALSE(ParseInt64("1.5", &v));
  EXPECT_FALSE(ParseInt64("abc", &v));
}

TEST(ParseDoubleTest, ValidAndInvalid) {
  double v = 0;
  EXPECT_TRUE(ParseDouble("3.14", &v));
  EXPECT_DOUBLE_EQ(v, 3.14);
  EXPECT_TRUE(ParseDouble("-2", &v));
  EXPECT_DOUBLE_EQ(v, -2.0);
  EXPECT_TRUE(ParseDouble(" 1e3 ", &v));
  EXPECT_DOUBLE_EQ(v, 1000.0);
  EXPECT_FALSE(ParseDouble("", &v));
  EXPECT_FALSE(ParseDouble("x1", &v));
  EXPECT_FALSE(ParseDouble("1.5z", &v));
}

}  // namespace
}  // namespace dmr
