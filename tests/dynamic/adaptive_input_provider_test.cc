#include "dynamic/adaptive_input_provider.h"

#include <gtest/gtest.h>

#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr::dynamic {
namespace {

using mapred::ClusterStatus;
using mapred::InputResponseKind;
using mapred::InputSplit;
using mapred::JobProgress;

std::vector<InputSplit> MakeSplits(int n) {
  std::vector<InputSplit> splits;
  for (int i = 0; i < n; ++i) {
    InputSplit s;
    s.index = i;
    s.num_records = 750000;
    splits.push_back(s);
  }
  return splits;
}

mapred::JobConf Conf(uint64_t k = 10000) {
  mapred::JobConf conf;
  conf.set_sample_size(k);
  return conf;
}

ClusterStatus Load(int total, int occupied) {
  ClusterStatus s;
  s.total_map_slots = total;
  s.occupied_map_slots = occupied;
  return s;
}

TEST(AdaptiveProviderTest, RequiresSampleSize) {
  AdaptiveInputProvider provider(1);
  EXPECT_TRUE(provider.Initialize(MakeSplits(4), mapred::JobConf())
                  .IsInvalidArgument());
}

TEST(AdaptiveProviderTest, GrabScalesWithLoad) {
  AdaptiveInputProvider provider(1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(200), Conf()).ok());
  // Idle 40-slot cluster: AS^2/TS = 40 (HA-like).
  auto idle = provider.GetInitialInput(Load(40, 0));
  EXPECT_EQ(idle.splits.size(), 40u);

  AdaptiveInputProvider half(2);
  ASSERT_TRUE(half.Initialize(MakeSplits(200), Conf()).ok());
  // Half busy: 20^2/40 = 10 (between MA and LA).
  EXPECT_EQ(half.GetInitialInput(Load(40, 20)).splits.size(), 10u);

  AdaptiveInputProvider busy(3);
  ASSERT_TRUE(busy.Initialize(MakeSplits(200), Conf()).ok());
  // 90 % busy: 4^2/40 = 0.4 -> floor of 1 (C-like trickle).
  EXPECT_EQ(busy.GetInitialInput(Load(40, 36)).splits.size(), 1u);
}

TEST(AdaptiveProviderTest, EndsOnTargetOrExhaustion) {
  AdaptiveInputProvider provider(1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(40), Conf(100)).ok());
  (void)provider.GetInitialInput(Load(40, 0));
  JobProgress done;
  done.output_records = 100;
  EXPECT_EQ(provider.Evaluate(done, Load(40, 0)).kind,
            InputResponseKind::kEndOfInput);

  AdaptiveInputProvider exhausted(2);
  ASSERT_TRUE(exhausted.Initialize(MakeSplits(10), Conf()).ok());
  (void)exhausted.GetInitialInput(Load(40, 0));  // takes all 10
  JobProgress partial;
  partial.output_records = 3;
  EXPECT_EQ(exhausted.Evaluate(partial, Load(40, 0)).kind,
            InputResponseKind::kEndOfInput);
}

TEST(AdaptiveProviderTest, SkewSignalRisesWithVariance) {
  AdaptiveInputProvider provider(1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(200), Conf()).ok());
  (void)provider.GetInitialInput(Load(40, 36));  // takes 1

  // Feed evaluations with wildly varying per-map yields.
  JobProgress p;
  p.maps_completed = 1;
  p.records_processed = 750000;
  p.output_records = 1;  // 1 match in the first map
  (void)provider.Evaluate(p, Load(40, 36));
  double cv_early = provider.observed_skew_cv();

  p.maps_completed = 2;
  p.records_processed = 2 * 750000;
  p.output_records = 5001;  // 5000 matches in the second: huge variance
  (void)provider.Evaluate(p, Load(40, 36));
  EXPECT_GT(provider.observed_skew_cv(), cv_early);
  EXPECT_GT(provider.observed_skew_cv(), 0.5);
}

TEST(AdaptiveProviderTest, UniformYieldsKeepCvLow) {
  AdaptiveInputProvider provider(1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(200), Conf()).ok());
  (void)provider.GetInitialInput(Load(40, 36));
  JobProgress p;
  for (int i = 1; i <= 5; ++i) {
    p.maps_completed = i;
    p.records_processed = uint64_t(i) * 750000;
    p.output_records = uint64_t(i) * 375;  // identical yields
    (void)provider.Evaluate(p, Load(40, 36));
  }
  EXPECT_LT(provider.observed_skew_cv(), 0.05);
}

TEST(AdaptiveProviderTest, EndToEndUnderLoadMatchesSampleSize) {
  // Run a full simulated job with the adaptive provider plugged in.
  testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
  auto dataset = testbed::MakeLineItemDataset(&bed.fs(), 10, 2.0, 8);
  ASSERT_TRUE(dataset.ok());
  auto policy = *PolicyTable::BuiltIn().Find("LA");  // conf params only
  sampling::SamplingJobOptions options;
  options.job_name = "adaptive";
  options.sample_size = 10000;
  options.seed = 21;
  auto submission = sampling::MakeSamplingJob(
      dataset->file, dataset->matching_per_partition, policy, options);
  ASSERT_TRUE(submission.ok());
  submission->input_provider = std::make_shared<AdaptiveInputProvider>(21);
  auto stats = bed.RunJobToCompletion(*std::move(submission));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->result_records, 10000u);
  EXPECT_LT(stats->splits_processed, 80);
}

}  // namespace
}  // namespace dmr::dynamic
