#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "dynamic/growth_policy.h"

namespace dmr::dynamic {
namespace {

/// Loads the repo's shipped configs/policies.conf (located relative to the
/// source tree via the compile-time path).
std::string ReadShippedConfig() {
  std::ifstream in(std::string(DMR_SOURCE_DIR) + "/configs/policies.conf");
  EXPECT_TRUE(in.good()) << "configs/policies.conf missing";
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(PolicyFileTest, ShippedConfigParses) {
  auto table = PolicyTable::Parse(ReadShippedConfig());
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table->policies().size(), 7u);
}

TEST(PolicyFileTest, ShippedTableOneMatchesBuiltIns) {
  auto table = *PolicyTable::Parse(ReadShippedConfig());
  const auto& builtin = PolicyTable::BuiltIn();
  for (const char* name : {"Hadoop", "HA", "MA", "LA", "C"}) {
    auto from_file = table.Find(name);
    auto from_code = builtin.Find(name);
    ASSERT_TRUE(from_file.ok()) << name;
    ASSERT_TRUE(from_code.ok()) << name;
    EXPECT_DOUBLE_EQ(from_file->work_threshold_pct(),
                     from_code->work_threshold_pct())
        << name;
    // Same grab limits at a spread of cluster states.
    for (int as : {0, 3, 20, 40}) {
      mapred::ClusterStatus status;
      status.total_map_slots = 40;
      status.occupied_map_slots = 40 - as;
      EXPECT_EQ(from_file->GrabLimit(status), from_code->GrabLimit(status))
          << name << " AS=" << as;
    }
  }
}

TEST(PolicyFileTest, CustomPoliciesBehaveAsDocumented) {
  auto table = *PolicyTable::Parse(ReadShippedConfig());
  auto load_scaled = *table.Find("LoadScaled");
  mapred::ClusterStatus idle;
  idle.total_map_slots = 40;
  idle.occupied_map_slots = 0;
  EXPECT_EQ(load_scaled.GrabLimit(idle), 40);
  mapred::ClusterStatus busy;
  busy.total_map_slots = 40;
  busy.occupied_map_slots = 36;
  EXPECT_EQ(load_scaled.GrabLimit(busy), 1);  // 0.4 floored up

  auto burst = *table.Find("Burst32");
  mapred::ClusterStatus huge;
  huge.total_map_slots = 160;
  huge.occupied_map_slots = 0;
  EXPECT_EQ(burst.GrabLimit(huge), 32);  // capped
  EXPECT_DOUBLE_EQ(burst.eval_interval(), 2.0);
}

}  // namespace
}  // namespace dmr::dynamic
