#include "dynamic/sampling_input_provider.h"

#include <gtest/gtest.h>

#include <set>

namespace dmr::dynamic {
namespace {

using mapred::ClusterStatus;
using mapred::InputResponse;
using mapred::InputResponseKind;
using mapred::InputSplit;
using mapred::JobProgress;

std::vector<InputSplit> MakeSplits(int n, uint64_t records = 750000) {
  std::vector<InputSplit> splits;
  for (int i = 0; i < n; ++i) {
    InputSplit s;
    s.file = "f";
    s.index = i;
    s.num_records = records;
    s.node_id = i % 10;
    splits.push_back(s);
  }
  return splits;
}

mapred::JobConf SamplingConf(uint64_t k = 10000) {
  mapred::JobConf conf;
  conf.set_sample_size(k);
  return conf;
}

ClusterStatus Idle40() {
  ClusterStatus s;
  s.total_map_slots = 40;
  s.occupied_map_slots = 0;
  return s;
}

GrowthPolicy Policy(const char* name) {
  return *PolicyTable::BuiltIn().Find(name);
}

TEST(SamplingProviderTest, RequiresSampleSize) {
  SamplingInputProvider provider(Policy("LA"), 1);
  EXPECT_TRUE(provider.Initialize(MakeSplits(4), mapred::JobConf())
                  .IsInvalidArgument());
}

TEST(SamplingProviderTest, DoubleInitializeFails) {
  SamplingInputProvider provider(Policy("LA"), 1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(4), SamplingConf()).ok());
  EXPECT_TRUE(provider.Initialize(MakeSplits(4), SamplingConf())
                  .IsFailedPrecondition());
}

TEST(SamplingProviderTest, InitialInputRespectsGrabLimit) {
  SamplingInputProvider provider(Policy("LA"), 1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(100), SamplingConf()).ok());
  InputResponse r = provider.GetInitialInput(Idle40());
  EXPECT_EQ(r.kind, InputResponseKind::kInputAvailable);
  // LA on an idle 40-slot cluster: 0.2 * 40 = 8.
  EXPECT_EQ(r.splits.size(), 8u);
  EXPECT_EQ(provider.remaining_splits(), 92);
}

TEST(SamplingProviderTest, HadoopPolicyTakesEverythingUpFront) {
  SamplingInputProvider provider(Policy("Hadoop"), 1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(100), SamplingConf()).ok());
  InputResponse r = provider.GetInitialInput(Idle40());
  EXPECT_EQ(r.kind, InputResponseKind::kInputAvailable);
  EXPECT_EQ(r.splits.size(), 100u);
  EXPECT_EQ(provider.remaining_splits(), 0);
}

TEST(SamplingProviderTest, EmptyInputEndsImmediately) {
  SamplingInputProvider provider(Policy("LA"), 1);
  ASSERT_TRUE(provider.Initialize({}, SamplingConf()).ok());
  EXPECT_EQ(provider.GetInitialInput(Idle40()).kind,
            InputResponseKind::kEndOfInput);
}

TEST(SamplingProviderTest, InitialDrawIsWithoutReplacement) {
  SamplingInputProvider provider(Policy("HA"), 7);
  ASSERT_TRUE(provider.Initialize(MakeSplits(40), SamplingConf()).ok());
  InputResponse r = provider.GetInitialInput(Idle40());
  std::set<int> indexes;
  for (const auto& s : r.splits) indexes.insert(s.index);
  EXPECT_EQ(indexes.size(), r.splits.size());
}

TEST(SamplingProviderTest, EndsWhenOutputReachesSampleSize) {
  SamplingInputProvider provider(Policy("LA"), 1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(40), SamplingConf(100)).ok());
  (void)provider.GetInitialInput(Idle40());
  JobProgress progress;
  progress.output_records = 100;
  EXPECT_EQ(provider.Evaluate(progress, Idle40()).kind,
            InputResponseKind::kEndOfInput);
}

TEST(SamplingProviderTest, EndsWhenInputExhausted) {
  SamplingInputProvider provider(Policy("Hadoop"), 1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(10), SamplingConf()).ok());
  (void)provider.GetInitialInput(Idle40());  // takes all 10
  JobProgress progress;
  progress.output_records = 5;  // short of k, but nothing left to add
  EXPECT_EQ(provider.Evaluate(progress, Idle40()).kind,
            InputResponseKind::kEndOfInput);
}

TEST(SamplingProviderTest, WaitsWhilePendingCoversTheGap) {
  SamplingInputProvider provider(Policy("LA"), 1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(100), SamplingConf()).ok());
  (void)provider.GetInitialInput(Idle40());
  JobProgress progress;
  progress.maps_completed = 4;
  progress.maps_running = 4;
  progress.records_processed = 4 * 750000;
  progress.output_records = 6000;           // sigma = 0.2 %
  progress.pending_records = 4 * 750000;    // expected 6000 more >= k
  EXPECT_EQ(provider.Evaluate(progress, Idle40()).kind,
            InputResponseKind::kNoInputAvailable);
}

TEST(SamplingProviderTest, AddsTheEstimatedShortfall) {
  SamplingInputProvider provider(Policy("HA"), 1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(100), SamplingConf()).ok());
  (void)provider.GetInitialInput(Idle40());  // HA takes 40
  JobProgress progress;
  progress.maps_completed = 40;
  progress.records_processed = 40ULL * 750000;
  progress.output_records = 4000;  // sigma = 4000 / 30 M
  progress.pending_records = 0;
  InputResponse r = provider.Evaluate(progress, Idle40());
  ASSERT_EQ(r.kind, InputResponseKind::kInputAvailable);
  // Need (10000 - 4000) / sigma = 45 M records = 60 splits, capped by the
  // HA grab limit max(0.5*40, 40) = 40.
  EXPECT_EQ(r.splits.size(), 40u);
  EXPECT_DOUBLE_EQ(provider.estimated_selectivity(), 4000.0 / 30000000.0);
}

TEST(SamplingProviderTest, SplitsNeededUsesObservedRecordsPerSplit) {
  SamplingInputProvider provider(Policy("HA"), 1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(100), SamplingConf()).ok());
  (void)provider.GetInitialInput(Idle40());
  JobProgress progress;
  progress.maps_completed = 10;
  progress.records_processed = 10ULL * 750000;
  progress.output_records = 7500;  // sigma = 0.1 %: 1 matching per 1000
  progress.pending_records = 0;
  InputResponse r = provider.Evaluate(progress, Idle40());
  ASSERT_EQ(r.kind, InputResponseKind::kInputAvailable);
  // Shortfall 2500 -> 2.5 M records -> ceil(2.5 M / 750 K) = 4 splits.
  EXPECT_EQ(r.splits.size(), 4u);
}

TEST(SamplingProviderTest, BlindWhenNothingMatchedYet) {
  SamplingInputProvider provider(Policy("LA"), 1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(100), SamplingConf()).ok());
  (void)provider.GetInitialInput(Idle40());
  JobProgress starved;
  starved.maps_completed = 8;
  starved.records_processed = 8ULL * 750000;
  starved.output_records = 0;  // nothing matched
  InputResponse r = provider.Evaluate(starved, Idle40());
  EXPECT_EQ(r.kind, InputResponseKind::kInputAvailable);
  EXPECT_EQ(r.splits.size(), 8u);  // LA grab limit on idle cluster

  JobProgress in_flight = starved;
  in_flight.maps_running = 2;
  EXPECT_EQ(provider.Evaluate(in_flight, Idle40()).kind,
            InputResponseKind::kNoInputAvailable);
}

TEST(SamplingProviderTest, SaturatedClusterConservativeWaits) {
  SamplingInputProvider provider(Policy("C"), 1);
  ASSERT_TRUE(provider.Initialize(MakeSplits(100), SamplingConf()).ok());
  (void)provider.GetInitialInput(Idle40());
  ClusterStatus saturated;
  saturated.total_map_slots = 40;
  saturated.occupied_map_slots = 40;
  JobProgress progress;
  progress.maps_completed = 1;
  progress.records_processed = 750000;
  progress.output_records = 10;  // far short, sigma > 0
  InputResponse r = provider.Evaluate(progress, saturated);
  // C's grab limit is 0.1 * AS = 0: nothing may be added right now.
  EXPECT_EQ(r.kind, InputResponseKind::kNoInputAvailable);
}

TEST(SamplingProviderTest, DrawsAreSeedDeterministic) {
  for (int trial = 0; trial < 2; ++trial) {
    SamplingInputProvider a(Policy("LA"), 99);
    SamplingInputProvider b(Policy("LA"), 99);
    ASSERT_TRUE(a.Initialize(MakeSplits(50), SamplingConf()).ok());
    ASSERT_TRUE(b.Initialize(MakeSplits(50), SamplingConf()).ok());
    auto ra = a.GetInitialInput(Idle40());
    auto rb = b.GetInitialInput(Idle40());
    ASSERT_EQ(ra.splits.size(), rb.splits.size());
    for (size_t i = 0; i < ra.splits.size(); ++i) {
      EXPECT_EQ(ra.splits[i].index, rb.splits[i].index);
    }
  }
}

TEST(SamplingProviderTest, BlindModeIgnoresEstimates) {
  SamplingInputProvider::Options options;
  options.use_selectivity_estimation = false;
  SamplingInputProvider provider(Policy("LA"), 1, options);
  ASSERT_TRUE(provider.Initialize(MakeSplits(100), SamplingConf()).ok());
  (void)provider.GetInitialInput(Idle40());
  JobProgress progress;
  progress.maps_completed = 8;
  progress.records_processed = 8ULL * 750000;
  progress.output_records = 9999;       // sigma would say "1 more split"
  progress.pending_records = 0;
  InputResponse r = provider.Evaluate(progress, Idle40());
  ASSERT_EQ(r.kind, InputResponseKind::kInputAvailable);
  EXPECT_EQ(r.splits.size(), 8u);  // full grab limit, not the shortfall
}

}  // namespace
}  // namespace dmr::dynamic
