#include "dynamic/grab_limit_expr.h"

#include <gtest/gtest.h>

#include <cmath>

namespace dmr::dynamic {
namespace {

double Eval(const std::string& text, double as, double ts) {
  auto expr = GrabLimitExpr::Parse(text);
  EXPECT_TRUE(expr.ok()) << text << ": " << expr.status().ToString();
  return expr->Evaluate({as, ts});
}

TEST(GrabLimitExprTest, Literals) {
  EXPECT_DOUBLE_EQ(Eval("42", 0, 0), 42.0);
  EXPECT_DOUBLE_EQ(Eval("2.5", 0, 0), 2.5);
  EXPECT_DOUBLE_EQ(Eval("-3", 0, 0), -3.0);
}

TEST(GrabLimitExprTest, Variables) {
  EXPECT_DOUBLE_EQ(Eval("AS", 17, 40), 17.0);
  EXPECT_DOUBLE_EQ(Eval("TS", 17, 40), 40.0);
  EXPECT_DOUBLE_EQ(Eval("as", 5, 9), 5.0);  // case-insensitive
  EXPECT_DOUBLE_EQ(Eval("ts", 5, 9), 9.0);
}

TEST(GrabLimitExprTest, Infinity) {
  EXPECT_TRUE(std::isinf(Eval("INF", 0, 0)));
  EXPECT_TRUE(std::isinf(Eval("infinity", 0, 0)));
}

TEST(GrabLimitExprTest, Arithmetic) {
  EXPECT_DOUBLE_EQ(Eval("1 + 2 * 3", 0, 0), 7.0);
  EXPECT_DOUBLE_EQ(Eval("(1 + 2) * 3", 0, 0), 9.0);
  EXPECT_DOUBLE_EQ(Eval("10 - 4 - 3", 0, 0), 3.0);  // left associative
  EXPECT_DOUBLE_EQ(Eval("8 / 2 / 2", 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(Eval("0.5 * TS", 0, 40), 20.0);
  EXPECT_DOUBLE_EQ(Eval("-AS + 1", 4, 0), -3.0);
}

TEST(GrabLimitExprTest, MaxMin) {
  EXPECT_DOUBLE_EQ(Eval("max(3, 7)", 0, 0), 7.0);
  EXPECT_DOUBLE_EQ(Eval("min(3, 7)", 0, 0), 3.0);
  EXPECT_DOUBLE_EQ(Eval("max(0.5 * TS, AS)", 30, 40), 30.0);
  EXPECT_DOUBLE_EQ(Eval("max(0.5 * TS, AS)", 10, 40), 20.0);
  EXPECT_DOUBLE_EQ(Eval("min(max(AS, 1), TS)", 0, 8), 1.0);
}

TEST(GrabLimitExprTest, Comparisons) {
  EXPECT_DOUBLE_EQ(Eval("3 > 2", 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(Eval("2 > 3", 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(Eval("2 >= 2", 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(Eval("2 <= 1", 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(Eval("2 == 2", 0, 0), 1.0);
  EXPECT_DOUBLE_EQ(Eval("2 != 2", 0, 0), 0.0);
}

TEST(GrabLimitExprTest, Ternary) {
  EXPECT_DOUBLE_EQ(Eval("AS > 0 ? 0.5 * AS : 0.2 * TS", 10, 40), 5.0);
  EXPECT_DOUBLE_EQ(Eval("AS > 0 ? 0.5 * AS : 0.2 * TS", 0, 40), 8.0);
  EXPECT_DOUBLE_EQ(Eval("1 ? 2 : 3", 0, 0), 2.0);
  EXPECT_DOUBLE_EQ(Eval("0 ? 2 : 3", 0, 0), 3.0);
  // Nested / right-associative.
  EXPECT_DOUBLE_EQ(Eval("AS > 10 ? 1 : AS > 5 ? 2 : 3", 7, 0), 2.0);
  EXPECT_DOUBLE_EQ(Eval("AS > 10 ? 1 : AS > 5 ? 2 : 3", 2, 0), 3.0);
}

TEST(GrabLimitExprTest, AndOrKeywords) {
  EXPECT_DOUBLE_EQ(Eval("AS > 0 and TS > 0 ? 1 : 0", 1, 1), 1.0);
  EXPECT_DOUBLE_EQ(Eval("AS > 0 and TS > 0 ? 1 : 0", 1, 0), 0.0);
  EXPECT_DOUBLE_EQ(Eval("AS > 0 or TS > 0 ? 1 : 0", 0, 1), 1.0);
}

TEST(GrabLimitExprTest, PaperTableOne) {
  // All five Table I expressions parse and behave per the paper.
  EXPECT_TRUE(std::isinf(Eval("INF", 0, 40)));
  EXPECT_DOUBLE_EQ(Eval("max(0.5 * TS, AS)", 40, 40), 40.0);
  EXPECT_DOUBLE_EQ(Eval("AS > 0 ? 0.5 * AS : 0.2 * TS", 0, 160), 32.0);
  EXPECT_DOUBLE_EQ(Eval("AS > 0 ? 0.2 * AS : 0.1 * TS", 0, 160), 16.0);
  EXPECT_DOUBLE_EQ(Eval("0.1 * AS", 0, 160), 0.0);
}

TEST(GrabLimitExprTest, DivisionByZeroIsInfinity) {
  EXPECT_TRUE(std::isinf(Eval("1 / 0", 0, 0)));
}

TEST(GrabLimitExprTest, TextIsPreserved) {
  auto expr = GrabLimitExpr::Parse("0.1 * AS");
  ASSERT_TRUE(expr.ok());
  EXPECT_EQ(expr->text(), "0.1 * AS");
}

TEST(GrabLimitExprTest, SyntaxErrors) {
  EXPECT_TRUE(GrabLimitExpr::Parse("").status().IsParseError());
  EXPECT_TRUE(GrabLimitExpr::Parse("AS +").status().IsParseError());
  EXPECT_TRUE(GrabLimitExpr::Parse("max(1)").status().IsParseError());
  EXPECT_TRUE(GrabLimitExpr::Parse("max(1, 2").status().IsParseError());
  EXPECT_TRUE(GrabLimitExpr::Parse("(1 + 2").status().IsParseError());
  EXPECT_TRUE(GrabLimitExpr::Parse("FOO * 2").status().IsParseError());
  EXPECT_TRUE(GrabLimitExpr::Parse("1 ? 2").status().IsParseError());
  EXPECT_TRUE(GrabLimitExpr::Parse("1 2").status().IsParseError());
  EXPECT_TRUE(GrabLimitExpr::Parse("1..5").status().IsParseError());
  EXPECT_TRUE(GrabLimitExpr::Parse("@").status().IsParseError());
}

}  // namespace
}  // namespace dmr::dynamic
