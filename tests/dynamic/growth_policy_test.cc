#include "dynamic/growth_policy.h"

#include <gtest/gtest.h>

#include <limits>

namespace dmr::dynamic {
namespace {

mapred::ClusterStatus Status40(int available) {
  mapred::ClusterStatus s;
  s.total_map_slots = 40;
  s.occupied_map_slots = 40 - available;
  return s;
}

TEST(GrowthPolicyTest, CreateValidates) {
  EXPECT_TRUE(GrowthPolicy::Create("", "", 0, "AS").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GrowthPolicy::Create("p", "", -1, "AS").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GrowthPolicy::Create("p", "", 101, "AS").status()
                  .IsInvalidArgument());
  EXPECT_TRUE(GrowthPolicy::Create("p", "", 0, "AS", 0.0).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      GrowthPolicy::Create("p", "", 0, "bogus expr").status().IsParseError());
  EXPECT_TRUE(GrowthPolicy::Create("p", "d", 5, "0.5 * AS", 2.0).ok());
}

TEST(GrowthPolicyTest, BuiltInTableMatchesPaper) {
  const auto& table = PolicyTable::BuiltIn();
  ASSERT_EQ(table.policies().size(), 5u);
  EXPECT_TRUE(table.Contains("Hadoop"));
  EXPECT_TRUE(table.Contains("HA"));
  EXPECT_TRUE(table.Contains("MA"));
  EXPECT_TRUE(table.Contains("LA"));
  EXPECT_TRUE(table.Contains("C"));

  EXPECT_DOUBLE_EQ(table.Find("HA")->work_threshold_pct(), 0.0);
  EXPECT_DOUBLE_EQ(table.Find("MA")->work_threshold_pct(), 5.0);
  EXPECT_DOUBLE_EQ(table.Find("LA")->work_threshold_pct(), 10.0);
  EXPECT_DOUBLE_EQ(table.Find("C")->work_threshold_pct(), 15.0);
  // Evaluation interval fixed at 4 s (paper Section III-B).
  EXPECT_DOUBLE_EQ(table.Find("LA")->eval_interval(), 4.0);
}

TEST(GrowthPolicyTest, LookupIsCaseInsensitive) {
  const auto& table = PolicyTable::BuiltIn();
  EXPECT_TRUE(table.Find("hadoop").ok());
  EXPECT_TRUE(table.Find("la").ok());
  EXPECT_TRUE(table.Find("nope").status().IsNotFound());
}

TEST(GrowthPolicyTest, HadoopPolicyIsUnbounded) {
  auto hadoop = *PolicyTable::BuiltIn().Find("Hadoop");
  EXPECT_TRUE(hadoop.unbounded());
  EXPECT_EQ(hadoop.GrabLimit(Status40(0)),
            std::numeric_limits<int64_t>::max());
  auto la = *PolicyTable::BuiltIn().Find("LA");
  EXPECT_FALSE(la.unbounded());
}

TEST(GrowthPolicyTest, GrabLimitsMatchTableOne) {
  const auto& table = PolicyTable::BuiltIn();
  // Idle 40-slot cluster.
  EXPECT_EQ(table.Find("HA")->GrabLimit(Status40(40)), 40);
  EXPECT_EQ(table.Find("MA")->GrabLimit(Status40(40)), 20);
  EXPECT_EQ(table.Find("LA")->GrabLimit(Status40(40)), 8);
  EXPECT_EQ(table.Find("C")->GrabLimit(Status40(40)), 4);
  // Saturated cluster: the fallback branches.
  EXPECT_EQ(table.Find("HA")->GrabLimit(Status40(0)), 20);   // 0.5*TS
  EXPECT_EQ(table.Find("MA")->GrabLimit(Status40(0)), 8);    // 0.2*TS
  EXPECT_EQ(table.Find("LA")->GrabLimit(Status40(0)), 4);    // 0.1*TS
  EXPECT_EQ(table.Find("C")->GrabLimit(Status40(0)), 0);     // 0.1*0
}

TEST(GrowthPolicyTest, PositiveFractionsRoundUpToOne) {
  auto c = *PolicyTable::BuiltIn().Find("C");
  // 0.1 * 3 = 0.3 -> at least one split so a starved job can progress.
  EXPECT_EQ(c.GrabLimit(Status40(3)), 1);
}

TEST(GrowthPolicyTest, ApplyWritesJobConf) {
  auto la = *PolicyTable::BuiltIn().Find("LA");
  mapred::JobConf conf;
  la.Apply(&conf);
  EXPECT_TRUE(conf.dynamic_job());
  EXPECT_EQ(conf.policy(), "LA");
  EXPECT_DOUBLE_EQ(conf.eval_interval(), 4.0);
  EXPECT_DOUBLE_EQ(conf.work_threshold_pct(), 10.0);
}

TEST(PolicyTableTest, AddRejectsDuplicates) {
  PolicyTable table;
  ASSERT_TRUE(table.Add(*GrowthPolicy::Create("X", "", 0, "AS")).ok());
  EXPECT_TRUE(table.Add(*GrowthPolicy::Create("x", "", 0, "TS"))
                  .IsAlreadyExists());
}

TEST(PolicyTableTest, ParsePolicyFile) {
  auto table = PolicyTable::Parse(R"(
# policy.xml analogue
policy.Fast.description = go fast
policy.Fast.work_threshold = 0
policy.Fast.grab_limit = AS
policy.Fast.eval_interval = 2

policy.Slow.grab_limit = 1
policy.Slow.work_threshold = 20
)");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->policies().size(), 2u);
  auto fast = *table->Find("Fast");
  EXPECT_EQ(fast.description(), "go fast");
  EXPECT_DOUBLE_EQ(fast.eval_interval(), 2.0);
  EXPECT_EQ(fast.GrabLimit(Status40(12)), 12);
  auto slow = *table->Find("Slow");
  EXPECT_DOUBLE_EQ(slow.work_threshold_pct(), 20.0);
  EXPECT_DOUBLE_EQ(slow.eval_interval(), 4.0);  // default
}

TEST(PolicyTableTest, ParseRejectsMissingGrabLimit) {
  auto table = PolicyTable::Parse("policy.Bad.work_threshold = 5\n");
  EXPECT_TRUE(table.status().IsParseError());
}

TEST(PolicyTableTest, ParseRejectsForeignKeys) {
  auto table = PolicyTable::Parse("unrelated.key = 1\n");
  EXPECT_TRUE(table.status().IsParseError());
}

TEST(PolicyTableTest, ParseRejectsMalformedExpression) {
  auto table = PolicyTable::Parse("policy.Bad.grab_limit = AS +\n");
  EXPECT_FALSE(table.ok());
}

}  // namespace
}  // namespace dmr::dynamic
