#include <gtest/gtest.h>

#include <memory>

#include "mapred/job.h"
#include "scheduler/fair_scheduler.h"
#include "scheduler/fifo_scheduler.h"

namespace dmr::scheduler {
namespace {

using mapred::InputSplit;
using mapred::Job;
using mapred::JobConf;
using mapred::MapAssignment;

InputSplit MakeSplit(int index, int node) {
  InputSplit s;
  s.file = "f";
  s.index = index;
  s.num_records = 1000;
  s.node_id = node;
  return s;
}

std::unique_ptr<Job> MakeJob(int id, const std::string& user,
                             std::vector<InputSplit> splits) {
  JobConf conf;
  conf.set_user(user);
  auto job = std::make_unique<Job>(
      id, conf, static_cast<int>(splits.size()),
      [](const InputSplit&) { return uint64_t{0}; }, 0.0);
  job->AddSplits(splits);
  return job;
}

// ---------------------------------------------------------------------
// FIFO
// ---------------------------------------------------------------------

TEST(FifoSchedulerTest, AssignsUpToFreeSlots) {
  FifoScheduler fifo;
  auto job = MakeJob(1, "u", {MakeSplit(0, 0), MakeSplit(1, 0),
                              MakeSplit(2, 0)});
  auto assignments = fifo.AssignMapTasks({job.get()}, 0, 2, 0.0);
  EXPECT_EQ(assignments.size(), 2u);
  EXPECT_EQ(job->pending_count(), 1);
}

TEST(FifoSchedulerTest, PrefersLocalSplits) {
  FifoScheduler fifo;
  auto job = MakeJob(1, "u", {MakeSplit(0, 5), MakeSplit(1, 2)});
  auto assignments = fifo.AssignMapTasks({job.get()}, 2, 1, 0.0);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_TRUE(assignments[0].local);
  EXPECT_EQ(assignments[0].split.node_id, 2);
}

TEST(FifoSchedulerTest, FallsBackToRemoteImmediately) {
  FifoScheduler fifo;
  auto job = MakeJob(1, "u", {MakeSplit(0, 5)});
  auto assignments = fifo.AssignMapTasks({job.get()}, 2, 1, 0.0);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_FALSE(assignments[0].local);
}

TEST(FifoSchedulerTest, ServesJobsInSubmissionOrder) {
  FifoScheduler fifo;
  auto first = MakeJob(1, "a", {MakeSplit(0, 0)});
  auto second = MakeJob(2, "b", {MakeSplit(0, 0)});
  auto assignments =
      fifo.AssignMapTasks({first.get(), second.get()}, 0, 1, 0.0);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].job->id(), 1);
}

TEST(FifoSchedulerTest, HeadOfLineBlocksLaterJobs) {
  // Strict Hadoop-0.20 behaviour: the head job's remote work is taken
  // before a later job's local work.
  FifoScheduler fifo;
  auto head = MakeJob(1, "a", {MakeSplit(0, 5)});       // remote for node 2
  auto later = MakeJob(2, "b", {MakeSplit(0, 2)});      // local for node 2
  auto assignments =
      fifo.AssignMapTasks({head.get(), later.get()}, 2, 1, 0.0);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].job->id(), 1);
  EXPECT_FALSE(assignments[0].local);
}

TEST(FifoSchedulerTest, MovesToNextJobWhenHeadIsDrained) {
  FifoScheduler fifo;
  auto drained = MakeJob(1, "a", {});
  auto next = MakeJob(2, "b", {MakeSplit(0, 0)});
  auto assignments =
      fifo.AssignMapTasks({drained.get(), next.get()}, 0, 4, 0.0);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].job->id(), 2);
}

TEST(FifoSchedulerTest, NothingToAssignReturnsEmpty) {
  FifoScheduler fifo;
  auto job = MakeJob(1, "a", {});
  EXPECT_TRUE(fifo.AssignMapTasks({job.get()}, 0, 4, 0.0).empty());
  EXPECT_TRUE(fifo.AssignMapTasks({}, 0, 4, 0.0).empty());
}

// ---------------------------------------------------------------------
// Fair
// ---------------------------------------------------------------------

FairSchedulerOptions FairOpts(double wait = 0.0, bool multiple = true) {
  FairSchedulerOptions options;
  options.total_map_slots = 40;
  options.locality_wait = wait;
  options.assign_multiple = multiple;
  return options;
}

TEST(FairSchedulerTest, SharesAcrossPools) {
  FairScheduler fair(FairOpts());
  auto a = MakeJob(1, "alice", {MakeSplit(0, 0), MakeSplit(1, 0)});
  auto b = MakeJob(2, "bob", {MakeSplit(0, 0), MakeSplit(1, 0)});
  auto assignments =
      fair.AssignMapTasks({a.get(), b.get()}, 0, 2, 0.0);
  ASSERT_EQ(assignments.size(), 2u);
  // One task per pool: equal sharing instead of FIFO head-of-line.
  EXPECT_NE(assignments[0].job->id(), assignments[1].job->id());
}

TEST(FairSchedulerTest, MostStarvedPoolFirst) {
  FairScheduler fair(FairOpts());
  auto busy = MakeJob(1, "alice", {MakeSplit(0, 0)});
  // alice already runs 4 tasks; bob runs none.
  for (int i = 0; i < 4; ++i) {
    busy->OnMapLaunched(MakeSplit(100 + i, 0), 0, true);
  }
  auto idle = MakeJob(2, "bob", {MakeSplit(0, 0)});
  auto assignments =
      fair.AssignMapTasks({busy.get(), idle.get()}, 0, 1, 0.0);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].job->id(), 2);
}

TEST(FairSchedulerTest, AssignMultipleFalseLimitsToOnePerHeartbeat) {
  FairSchedulerOptions options = FairOpts();
  options.assign_multiple = false;
  FairScheduler fair(options);
  auto job = MakeJob(1, "u", {MakeSplit(0, 0), MakeSplit(1, 0),
                              MakeSplit(2, 0)});
  auto assignments = fair.AssignMapTasks({job.get()}, 0, 16, 0.0);
  EXPECT_EQ(assignments.size(), 1u);
}

TEST(FairSchedulerTest, DelaySchedulingHoldsRemoteWork) {
  FairScheduler fair(FairOpts(/*wait=*/5.0));
  auto job = MakeJob(1, "u", {MakeSplit(0, 7)});  // nothing local to node 0
  // First opportunity: the job starts waiting, no assignment.
  EXPECT_TRUE(fair.AssignMapTasks({job.get()}, 0, 4, 0.0).empty());
  // Still waiting before the deadline.
  EXPECT_TRUE(fair.AssignMapTasks({job.get()}, 0, 4, 3.0).empty());
  // After the wait expires the remote launch is allowed.
  auto late = fair.AssignMapTasks({job.get()}, 0, 4, 6.0);
  ASSERT_EQ(late.size(), 1u);
  EXPECT_FALSE(late[0].local);
}

TEST(FairSchedulerTest, LocalAssignmentResetsDelayState) {
  FairScheduler fair(FairOpts(/*wait=*/5.0));
  auto job = MakeJob(1, "u", {MakeSplit(0, 7), MakeSplit(1, 0)});
  // Node 0 heartbeat, one slot: the local split is taken immediately and
  // the job is not left in the waiting state.
  auto a = fair.AssignMapTasks({job.get()}, 0, 1, 0.0);
  ASSERT_EQ(a.size(), 1u);
  EXPECT_TRUE(a[0].local);
  EXPECT_FALSE(job->delay_waiting);
}

TEST(FairSchedulerTest, ZeroWaitAssignsRemoteImmediately) {
  FairScheduler fair(FairOpts(/*wait=*/0.0));
  auto job = MakeJob(1, "u", {MakeSplit(0, 7)});
  auto assignments = fair.AssignMapTasks({job.get()}, 0, 4, 0.0);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_FALSE(assignments[0].local);
}

TEST(FairSchedulerTest, StrictDelayHoldsSlotForDeservingPool) {
  FairSchedulerOptions options = FairOpts(/*wait=*/5.0);
  options.strict_delay = true;
  FairScheduler fair(options);
  // alice (starved pool) has only remote work; bob has local work.
  auto alice = MakeJob(1, "alice", {MakeSplit(0, 7)});
  auto bob = MakeJob(2, "bob", {MakeSplit(0, 0)});
  for (int i = 0; i < 4; ++i) {
    bob->OnMapLaunched(MakeSplit(100 + i, 0), 0, true);
  }
  // Strict: the slot is held for alice even though bob could use it.
  EXPECT_TRUE(
      fair.AssignMapTasks({alice.get(), bob.get()}, 0, 1, 0.0).empty());
}

TEST(FairSchedulerTest, NonStrictDelaySkipsToNextJob) {
  FairSchedulerOptions options = FairOpts(/*wait=*/5.0);
  options.strict_delay = false;
  FairScheduler fair(options);
  auto alice = MakeJob(1, "alice", {MakeSplit(0, 7)});
  auto bob = MakeJob(2, "bob", {MakeSplit(0, 0)});
  for (int i = 0; i < 4; ++i) {
    bob->OnMapLaunched(MakeSplit(100 + i, 0), 0, true);
  }
  auto assignments =
      fair.AssignMapTasks({alice.get(), bob.get()}, 0, 1, 0.0);
  ASSERT_EQ(assignments.size(), 1u);
  EXPECT_EQ(assignments[0].job->id(), 2);
}

TEST(FairSchedulerTest, EmptyJobListIsFine) {
  FairScheduler fair(FairOpts());
  EXPECT_TRUE(fair.AssignMapTasks({}, 0, 4, 0.0).empty());
}

}  // namespace
}  // namespace dmr::scheduler
