#include "obs/metrics.h"

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "exec/parallel.h"

namespace dmr::obs {
namespace {

TEST(MetricsRegistryTest, RegistrationDedupesByName) {
  MetricsRegistry registry;
  CounterHandle a = registry.RegisterCounter("mapred.heartbeats");
  CounterHandle b = registry.RegisterCounter("mapred.heartbeats");
  EXPECT_EQ(a.index, b.index);
  HistogramHandle h1 = registry.RegisterHistogram("task_wait", "s");
  HistogramHandle h2 = registry.RegisterHistogram("task_wait", "s");
  EXPECT_EQ(h1.index, h2.index);
  EXPECT_NE(registry.RegisterCounter("other").index, a.index);
}

TEST(MetricsRegistryTest, InvalidHandlesAreNoOps) {
  MetricsRegistry registry;
  registry.Add(CounterHandle{});
  registry.Set(GaugeHandle{}, 1.0);
  registry.Observe(HistogramHandle{}, 1.0);
  MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  EXPECT_TRUE(snap.counters.empty());
  EXPECT_TRUE(snap.gauges.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(MetricsRegistryTest, SnapshotAggregatesAndSortsByName) {
  MetricsRegistry registry;
  CounterHandle zebra = registry.RegisterCounter("zebra");
  CounterHandle alpha = registry.RegisterCounter("alpha");
  GaugeHandle gauge = registry.RegisterGauge("selectivity");
  HistogramHandle hist = registry.RegisterHistogram("wait", "sim_s");

  registry.Add(zebra, 3);
  registry.Add(alpha);
  registry.Add(alpha, 4);
  registry.Set(gauge, 0.25);
  registry.Set(gauge, 0.5);  // last write wins
  for (int i = 1; i <= 4; ++i) registry.Observe(hist, static_cast<double>(i));

  MetricsRegistry::Snapshot snap = registry.TakeSnapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "alpha");  // sorted, registration order was zebra first
  EXPECT_EQ(snap.counters[0].second, 5);
  EXPECT_EQ(snap.counters[1].first, "zebra");
  EXPECT_EQ(snap.counters[1].second, 3);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 0.5);

  const MetricsRegistry::HistogramSnapshot* h = snap.FindHistogram("wait");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->unit, "sim_s");
  EXPECT_EQ(h->count, 4u);
  EXPECT_DOUBLE_EQ(h->min, 1.0);
  EXPECT_DOUBLE_EQ(h->max, 4.0);
  EXPECT_DOUBLE_EQ(h->sum, 10.0);
  EXPECT_EQ(snap.FindCounter("alpha") != nullptr, true);
  EXPECT_EQ(snap.FindCounter("missing"), nullptr);
}

TEST(HistogramDataTest, PercentilesAreAccurateWithinBucketPrecision) {
  HistogramData hist;
  for (int i = 1; i <= 1000; ++i) hist.Observe(static_cast<double>(i));
  EXPECT_EQ(hist.count(), 1000u);
  // 32 sub-buckets per octave => <= ~3.2 % relative error at the bucket
  // lower edge; allow 5 %.
  EXPECT_NEAR(hist.Percentile(50.0), 500.0, 25.0);
  EXPECT_NEAR(hist.Percentile(95.0), 950.0, 48.0);
  EXPECT_NEAR(hist.Percentile(99.0), 990.0, 50.0);
  EXPECT_DOUBLE_EQ(hist.Percentile(0.0), 1.0);     // clamped to min
  EXPECT_DOUBLE_EQ(hist.Percentile(100.0), 1000.0);  // clamped to max
}

TEST(HistogramDataTest, HandlesDegenerateValues) {
  HistogramData hist;
  hist.Observe(0.0);
  hist.Observe(-5.0);  // underflow bucket
  hist.Observe(1e-30);
  hist.Observe(1e30);
  EXPECT_EQ(hist.count(), 4u);
  EXPECT_DOUBLE_EQ(hist.min(), -5.0);
  EXPECT_DOUBLE_EQ(hist.max(), 1e30);
}

/// The tentpole determinism property: histogram state merged across
/// per-thread shards must match a serial run observing the same multiset
/// of values, bit for bit, regardless of which worker recorded what.
TEST(MetricsRegistryTest, ShardMergeIsDeterministicUnderParallelFor) {
  auto value_for = [](size_t task, int rep) {
    // A deterministic, wide-spread multiset of latencies.
    return 0.001 * static_cast<double>((task * 37 + rep * 11) % 997 + 1);
  };
  constexpr size_t kTasks = 2048;
  constexpr int kReps = 16;

  MetricsRegistry serial;
  CounterHandle serial_events = serial.RegisterCounter("events");
  HistogramHandle serial_latency = serial.RegisterHistogram("latency", "s");
  for (size_t t = 0; t < kTasks; ++t) {
    for (int r = 0; r < kReps; ++r) {
      serial.Add(serial_events);
      serial.Observe(serial_latency, value_for(t, r));
    }
  }
  MetricsRegistry::Snapshot expected = serial.TakeSnapshot();

  MetricsRegistry parallel;
  CounterHandle events = parallel.RegisterCounter("events");
  HistogramHandle latency = parallel.RegisterHistogram("latency", "s");
  exec::ThreadPool pool(8);
  Status status = exec::ParallelFor(&pool, kTasks, [&](size_t t) {
    for (int r = 0; r < kReps; ++r) {
      parallel.Add(events);
      parallel.Observe(latency, value_for(t, r));
    }
    return Status::OK();
  });
  ASSERT_TRUE(status.ok());
  // The work must actually have been sharded for this test to mean much.
  EXPECT_GE(parallel.num_shards(), 2u);

  MetricsRegistry::Snapshot got = parallel.TakeSnapshot();
  ASSERT_EQ(got.counters.size(), expected.counters.size());
  EXPECT_EQ(*got.FindCounter("events"),
            static_cast<int64_t>(kTasks) * kReps);
  EXPECT_EQ(*got.FindCounter("events"), *expected.FindCounter("events"));

  const auto* got_hist = got.FindHistogram("latency");
  const auto* want_hist = expected.FindHistogram("latency");
  ASSERT_NE(got_hist, nullptr);
  ASSERT_NE(want_hist, nullptr);
  EXPECT_EQ(got_hist->count, want_hist->count);
  EXPECT_DOUBLE_EQ(got_hist->min, want_hist->min);
  EXPECT_DOUBLE_EQ(got_hist->max, want_hist->max);
  EXPECT_DOUBLE_EQ(got_hist->p50, want_hist->p50);
  EXPECT_DOUBLE_EQ(got_hist->p95, want_hist->p95);
  EXPECT_DOUBLE_EQ(got_hist->p99, want_hist->p99);
  // Sums of the same doubles in a different order can differ in the last
  // ulp; the merge adds per-shard sums, so demand near-equality only.
  EXPECT_NEAR(got_hist->sum, want_hist->sum, 1e-9 * want_hist->sum);
}

TEST(MetricsRegistryTest, TwoRegistriesDoNotShareShards) {
  // The thread-local shard cache is keyed by registry id; interleaved use
  // of two registries from one thread must keep their data separate.
  MetricsRegistry first;
  MetricsRegistry second;
  CounterHandle c1 = first.RegisterCounter("x");
  CounterHandle c2 = second.RegisterCounter("x");
  for (int i = 0; i < 10; ++i) {
    first.Add(c1);
    second.Add(c2, 100);
  }
  EXPECT_EQ(*first.TakeSnapshot().FindCounter("x"), 10);
  EXPECT_EQ(*second.TakeSnapshot().FindCounter("x"), 1000);
}

}  // namespace
}  // namespace dmr::obs
