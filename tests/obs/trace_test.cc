#include "obs/trace.h"

#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "common/json.h"

namespace dmr::obs {
namespace {

using json::JsonParse;
using json::JsonValue;

/// Parses the recorder output and returns the traceEvents array.
std::vector<JsonValue> Events(const TraceRecorder& recorder) {
  auto doc = JsonParse(recorder.ToJson());
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc.ValueOrDie().Find("traceEvents");
  EXPECT_NE(events, nullptr);
  return events->items;
}

TEST(TraceTest, EmptyRecorderStillParses) {
  TraceRecorder recorder;
  EXPECT_EQ(Events(recorder).size(), 0u);
  EXPECT_EQ(recorder.num_events(), 0u);
  EXPECT_EQ(recorder.num_streams(), 0u);
}

TEST(TraceTest, CompleteSpanRoundTripsThroughJson) {
  TraceRecorder recorder;
  TraceStream* stream = recorder.NewStream("cell-0000", 2);
  TraceArgs args;
  args.Set("split", 7).Set("local", true).Set("policy", "LA");
  stream->Complete(/*ts=*/1.5, /*dur=*/0.25, /*pid=*/1, /*tid=*/3,
                   "map j1/s7", "map", args);

  std::vector<JsonValue> events = Events(recorder);
  ASSERT_EQ(events.size(), 1u);
  const JsonValue& e = events[0];
  EXPECT_EQ(e.StringOr("ph", ""), "X");
  EXPECT_EQ(e.StringOr("name", ""), "map j1/s7");
  EXPECT_EQ(e.StringOr("cat", ""), "map");
  // Simulated seconds are rendered as microseconds.
  EXPECT_DOUBLE_EQ(e.NumberOr("ts", -1.0), 1.5e6);
  EXPECT_DOUBLE_EQ(e.NumberOr("dur", -1.0), 0.25e6);
  EXPECT_DOUBLE_EQ(e.NumberOr("pid", -1.0), 1.0);
  EXPECT_DOUBLE_EQ(e.NumberOr("tid", -1.0), 3.0);
  const JsonValue* a = e.Find("args");
  ASSERT_NE(a, nullptr);
  EXPECT_DOUBLE_EQ(a->NumberOr("split", -1.0), 7.0);
  EXPECT_EQ(a->StringOr("policy", ""), "LA");
  ASSERT_NE(a->Find("local"), nullptr);
  EXPECT_TRUE(a->Find("local")->bool_value);
}

TEST(TraceTest, AsyncPairShareCategoryAndId) {
  TraceRecorder recorder;
  TraceStream* stream = recorder.NewStream("cell", 1);
  stream->AsyncBegin(0.0, /*id=*/42, /*pid=*/0, "job 42", "job");
  stream->AsyncEnd(9.0, /*id=*/42, /*pid=*/0, "job 42", "job");

  std::vector<JsonValue> events = Events(recorder);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].StringOr("ph", ""), "b");
  EXPECT_EQ(events[1].StringOr("ph", ""), "e");
  EXPECT_EQ(events[0].StringOr("cat", ""), events[1].StringOr("cat", ""));
  EXPECT_DOUBLE_EQ(events[0].NumberOr("id", -1.0),
                   events[1].NumberOr("id", -2.0));
}

TEST(TraceTest, InstantAndCounterEvents) {
  TraceRecorder recorder;
  TraceStream* stream = recorder.NewStream("cell", 1);
  TraceArgs args;
  args.Set("selectivity_estimate", 0.001);
  stream->Instant(2.0, 0, 0, "provider.decision", "provider", args);
  stream->Counter(3.0, 0, "map_slots", "used", 4.0);

  std::vector<JsonValue> events = Events(recorder);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].StringOr("ph", ""), "i");
  EXPECT_EQ(events[0].StringOr("s", ""), "t");  // thread-scoped instant
  EXPECT_DOUBLE_EQ(
      events[0].Find("args")->NumberOr("selectivity_estimate", -1.0), 0.001);
  EXPECT_EQ(events[1].StringOr("ph", ""), "C");
  EXPECT_DOUBLE_EQ(events[1].Find("args")->NumberOr("used", -1.0), 4.0);
}

TEST(TraceTest, MetadataEventsNameTracks) {
  TraceRecorder recorder;
  TraceStream* stream = recorder.NewStream("cell-0001", 1);
  stream->ProcessName(0, "cell-0001 node0");
  stream->ThreadName(0, 2, "slot2");

  std::vector<JsonValue> events = Events(recorder);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].StringOr("ph", ""), "M");
  EXPECT_EQ(events[0].StringOr("name", ""), "process_name");
  EXPECT_EQ(events[0].Find("args")->StringOr("name", ""), "cell-0001 node0");
  EXPECT_EQ(events[1].StringOr("name", ""), "thread_name");
  EXPECT_EQ(events[1].Find("args")->StringOr("name", ""), "slot2");
  EXPECT_DOUBLE_EQ(events[1].NumberOr("tid", -1.0), 2.0);
}

TEST(TraceTest, StreamsGetDisjointPidAndIdRanges) {
  TraceRecorder recorder;
  TraceStream* first = recorder.NewStream("cell-a", 3);
  TraceStream* second = recorder.NewStream("cell-b", 2);
  EXPECT_EQ(recorder.num_streams(), 2u);

  // Both cells record "their" pid 0 and async id 7; the file must keep
  // them apart.
  first->Complete(0.0, 1.0, 0, 0, "map", "map");
  second->Complete(0.0, 1.0, 0, 0, "map", "map");
  first->AsyncBegin(0.0, 7, 0, "job", "job");
  second->AsyncBegin(0.0, 7, 0, "job", "job");

  // Output groups events per stream in creation order:
  // [a.Complete, a.AsyncBegin, b.Complete, b.AsyncBegin].
  std::vector<JsonValue> events = Events(recorder);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_DOUBLE_EQ(events[0].NumberOr("pid", -1.0), 0.0);
  EXPECT_DOUBLE_EQ(events[2].NumberOr("pid", -1.0), 3.0);  // after cell-a's 3
  double id_a = events[1].NumberOr("id", -1.0);
  double id_b = events[3].NumberOr("id", -1.0);
  EXPECT_NE(id_a, id_b);
  EXPECT_DOUBLE_EQ(id_b - id_a, 4294967296.0);  // 2^32 id namespace stride
}

}  // namespace
}  // namespace dmr::obs
