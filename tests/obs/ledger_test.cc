/// \file
/// Tests for the slot-time ledger and the critical-path event graph: unit
/// coverage of the category attribution rules, a randomized exhaustiveness
/// property (every slot-second lands in exactly one category), an
/// end-to-end property over a randomized policy/z grid on the real
/// testbed, and byte-identical ledger/critical-path JSON across thread
/// counts.

#include <random>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "exec/parallel.h"
#include "obs/critical_path.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr::obs {
namespace {

double Category(const Ledger::Totals& totals, SlotCategory category) {
  return totals.seconds[static_cast<int>(category)];
}

TEST(LedgerTest, AttributesBusyFreeAndWastedTime) {
  // One node, one slot, makespan 10. An attempt runs [2, 6); the sample
  // became satisfiable at t=4, so half the attempt is wasted. The cluster
  // had queued work in [0, 2) and waited for the provider in [6, 8).
  Ledger ledger(/*num_nodes=*/1, /*map_slots_per_node=*/1);
  ledger.OnFreeState(Ledger::FreeState::kQueue, 0.0);
  ledger.OnSlotAcquired(0, 0, 2.0);
  ledger.OnSampleSatisfiable(/*job=*/1, 4.0);
  ledger.OnAttemptOutcome(0, 0, /*job=*/1, Ledger::AttemptKind::kCompleted);
  ledger.OnSlotReleased(0, 0, 6.0);
  ledger.OnFreeState(Ledger::FreeState::kProviderWait, 6.0);
  ledger.OnFreeState(Ledger::FreeState::kIdle, 8.0);
  ledger.Seal(10.0);

  Ledger::Totals totals = ledger.Resolve();
  EXPECT_DOUBLE_EQ(totals.makespan, 10.0);
  EXPECT_DOUBLE_EQ(totals.expected_total, 10.0);
  EXPECT_DOUBLE_EQ(Category(totals, SlotCategory::kUseful), 2.0);
  EXPECT_DOUBLE_EQ(Category(totals, SlotCategory::kWasted), 2.0);
  EXPECT_DOUBLE_EQ(Category(totals, SlotCategory::kSpeculative), 0.0);
  EXPECT_DOUBLE_EQ(Category(totals, SlotCategory::kQueueing), 2.0);
  EXPECT_DOUBLE_EQ(Category(totals, SlotCategory::kProviderWait), 2.0);
  EXPECT_DOUBLE_EQ(Category(totals, SlotCategory::kIdle), 2.0);
  EXPECT_EQ(totals.attempts_completed, 1);
}

TEST(LedgerTest, KilledAndFailedAttemptsAreSpeculative) {
  Ledger ledger(1, 2);
  ledger.OnSlotAcquired(0, 0, 0.0);
  ledger.OnAttemptOutcome(0, 0, 1, Ledger::AttemptKind::kKilled);
  ledger.OnSlotReleased(0, 0, 3.0);
  ledger.OnSlotAcquired(0, 1, 1.0);
  ledger.OnAttemptOutcome(0, 1, 1, Ledger::AttemptKind::kFailed);
  ledger.OnSlotReleased(0, 1, 5.0);
  ledger.Seal(5.0);

  Ledger::Totals totals = ledger.Resolve();
  EXPECT_DOUBLE_EQ(Category(totals, SlotCategory::kSpeculative), 7.0);
  EXPECT_DOUBLE_EQ(Category(totals, SlotCategory::kUseful), 0.0);
  EXPECT_EQ(totals.attempts_speculative, 2);
  EXPECT_DOUBLE_EQ(totals.sum(), totals.expected_total);
}

TEST(LedgerTest, JobWithoutSatisfiabilityIsAllUseful) {
  // k = 0 or input exhausted first: no satisfiability instant, so the
  // whole attempt counts as useful work.
  Ledger ledger(1, 1);
  ledger.OnSlotAcquired(0, 0, 0.0);
  ledger.OnAttemptOutcome(0, 0, 7, Ledger::AttemptKind::kCompleted);
  ledger.OnSlotReleased(0, 0, 4.0);
  ledger.Seal(4.0);
  Ledger::Totals totals = ledger.Resolve();
  EXPECT_DOUBLE_EQ(Category(totals, SlotCategory::kUseful), 4.0);
  EXPECT_DOUBLE_EQ(Category(totals, SlotCategory::kWasted), 0.0);
}

TEST(LedgerTest, OpenIntervalsAreClampedToTheSeal) {
  // An attempt still running at teardown is charged up to the makespan.
  Ledger ledger(1, 1);
  ledger.OnSlotAcquired(0, 0, 1.0);
  ledger.Seal(3.0);
  Ledger::Totals totals = ledger.Resolve();
  EXPECT_DOUBLE_EQ(Category(totals, SlotCategory::kUseful), 2.0);
  EXPECT_DOUBLE_EQ(totals.sum(), totals.expected_total);
}

TEST(LedgerTest, RandomizedLedgerIsAlwaysExhaustive) {
  // Property: whatever the interleaving of busy intervals, free-state
  // transitions and satisfiability instants, every slot-second of
  // nodes x slots x makespan lands in exactly one category.
  std::mt19937 rng(20120401);
  for (int trial = 0; trial < 200; ++trial) {
    int nodes = 1 + static_cast<int>(rng() % 3);
    int slots = 1 + static_cast<int>(rng() % 3);
    Ledger ledger(nodes, slots);
    std::uniform_real_distribution<double> dt(0.05, 3.0);

    double clock = 0.0;
    for (int step = 0; step < 40; ++step) {
      clock += dt(rng);
      switch (rng() % 4) {
        case 0:
          ledger.OnFreeState(
              static_cast<Ledger::FreeState>(rng() % 3), clock);
          break;
        case 1:
          if (rng() % 2 == 0) {
            ledger.OnSampleSatisfiable(static_cast<int>(rng() % 5), clock);
          }
          break;
        default: {
          // Run one complete attempt on a random slot.
          int node = static_cast<int>(rng() % nodes);
          int slot = static_cast<int>(rng() % slots);
          ledger.OnSlotAcquired(node, slot, clock);
          int job = static_cast<int>(rng() % 5);
          ledger.OnAttemptOutcome(
              node, slot, job,
              static_cast<Ledger::AttemptKind>(rng() % 3));
          clock += dt(rng);
          ledger.OnSlotReleased(node, slot, clock);
          break;
        }
      }
    }
    ledger.Seal(clock + dt(rng));

    // Resolve() itself DMR_CHECKs exhaustiveness; re-assert it here so a
    // failure reports the trial seed instead of aborting.
    Ledger::Totals totals = ledger.Resolve();
    EXPECT_NEAR(totals.sum(), totals.expected_total,
                1e-6 * std::max(1.0, totals.expected_total))
        << "trial " << trial;
    for (int c = 0; c < kNumSlotCategories; ++c) {
      EXPECT_GE(totals.seconds[c], 0.0) << "trial " << trial;
    }
  }
}

TEST(EventGraphTest, ExtractsTheBindingChain) {
  // submit(0) -> provider(1) -> split(2); the attempt at t=5 was gated by
  // the slot release at t=4 (binding), not the split at t=2.
  EventGraph graph;
  graph.JobSubmitted(1, 0.0);
  graph.ProviderDecision(1, 1.0, "input-available");
  graph.SplitAdded(1, 0, 2.0);
  graph.AttemptLaunched(2, 9, 0.5, 0, 0, false);  // another job holds slot
  graph.AttemptDone(2, 9, 4.0, 0, 0, "ok");
  graph.AttemptLaunched(1, 0, 5.0, 0, 0, false);
  graph.AttemptDone(1, 0, 8.0, 0, 0, "ok");
  graph.SampleSatisfiable(1, 8.0);
  graph.InputFinalized(1, 8.5);
  graph.ReduceStarted(1, 9.0);
  graph.JobCompleted(1, 10.0);

  std::vector<EventGraph::JobPath> paths = graph.AnalyzeCriticalPaths();
  ASSERT_EQ(paths.size(), 1u);
  const EventGraph::JobPath& path = paths[0];
  EXPECT_EQ(path.job, 1);
  EXPECT_DOUBLE_EQ(path.finish_time, 10.0);
  EXPECT_DOUBLE_EQ(path.response_time, 10.0);

  // The chain crosses into job 2: its attempt-done freed the slot.
  EXPECT_EQ(path.root_job, 2);
  ASSERT_GE(path.steps.size(), 3u);
  EXPECT_EQ(path.steps.back().type, EventGraph::EventType::kJobCompleted);

  // The launch step waited on the slot (queueing), and its slack against
  // the runner-up parent (split added at t=2) is 4 - 2 = 2.
  bool found_launch = false;
  for (const EventGraph::PathStep& step : path.steps) {
    if (step.type == EventGraph::EventType::kAttemptLaunched &&
        step.job == 1) {
      found_launch = true;
      EXPECT_EQ(step.category, EventGraph::EdgeCategory::kQueueing);
      EXPECT_DOUBLE_EQ(step.dur, 1.0);   // 5.0 - 4.0
      EXPECT_DOUBLE_EQ(step.slack, 2.0);  // 4.0 - 2.0
    }
  }
  EXPECT_TRUE(found_launch);

  // The per-category breakdown covers the whole path.
  double breakdown_sum = 0.0;
  for (const auto& [category, seconds] : path.breakdown) {
    breakdown_sum += seconds;
  }
  EXPECT_DOUBLE_EQ(breakdown_sum, path.path_time);

  // And the JSON rendering parses back.
  auto doc = json::JsonParse(graph.AnalysisToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::JsonValue* jobs = doc.ValueOrDie().Find("jobs");
  ASSERT_NE(jobs, nullptr);
  EXPECT_EQ(jobs->items.size(), 1u);
}

TEST(EventGraphTest, FailedAttemptRearmsTheSplit) {
  EventGraph graph;
  graph.JobSubmitted(1, 0.0);
  graph.SplitAdded(1, 0, 0.0);
  graph.AttemptLaunched(1, 0, 1.0, 0, 0, false);
  graph.AttemptDone(1, 0, 2.0, 0, 0, "failed");
  graph.AttemptLaunched(1, 0, 3.0, 1, 0, false);
  graph.AttemptDone(1, 0, 5.0, 1, 0, "ok");
  graph.JobCompleted(1, 5.0);

  std::vector<EventGraph::JobPath> paths = graph.AnalyzeCriticalPaths();
  ASSERT_EQ(paths.size(), 1u);
  // The retry's launch hangs off the failure, so the path includes both
  // attempts: submit, split, launch, fail, launch, done, completed.
  EXPECT_EQ(paths[0].steps.size(), 7u);
  EXPECT_EQ(paths[0].root_job, 1);
}

// --- end-to-end properties over the real simulated cluster ---------------

/// Runs a (policy, z) grid of small single-user sampling jobs with the obs
/// hub installed and `threads` workers, and returns the deterministic
/// ledger + critical-path JSON of the book.
std::pair<std::string, std::string> RunGrid(int threads) {
  struct Cell {
    const char* policy;
    double z;
  };
  const std::vector<Cell> cells = {
      {"HA", 0.0}, {"HA", 2.0}, {"LA", 0.0}, {"LA", 2.0}, {"Hadoop", 1.0}};

  MetricsRegistry registry;
  TraceRecorder recorder;
  LedgerBook book;
  Hub::Install(&registry, &recorder, &book);

  exec::ThreadPool pool(threads);
  auto results = exec::ParallelMap<int>(&pool, cells.size(), [&](size_t i) {
    testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
    bed.Annotate("cell", "grid");
    bed.Annotate("policy", cells[i].policy);
    bed.Annotate("z", cells[i].z);
    auto dataset = *testbed::MakeLineItemDataset(
        &bed.fs(), 5, cells[i].z, 42 + static_cast<uint64_t>(i));
    auto policy = *dynamic::PolicyTable::BuiltIn().Find(cells[i].policy);
    sampling::SamplingJobOptions options;
    options.sample_size = 1000;
    options.seed = 7 + i;
    auto submission = sampling::MakeSamplingJob(
        dataset.file, dataset.matching_per_partition, policy, options);
    EXPECT_TRUE(submission.ok());
    auto stats = bed.RunJobToCompletion(*std::move(submission));
    EXPECT_TRUE(stats.ok()) << stats.status().ToString();
    return Result<int>(0);
  });
  EXPECT_TRUE(results.ok());

  std::pair<std::string, std::string> json = {book.LedgerJson(),
                                              book.CriticalPathJson()};
  Hub::Uninstall();
  return json;
}

TEST(LedgerBookTest, GridLedgersAreExhaustiveAndWellFormed) {
  auto [ledger_json, cp_json] = RunGrid(/*threads=*/1);

  auto doc = json::JsonParse(ledger_json);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::JsonValue* cells = doc.ValueOrDie().Find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->items.size(), 5u);
  for (const json::JsonValue& cell : cells->items) {
    double expected = cell.NumberOr("nodes", 0) *
                      cell.NumberOr("map_slots_per_node", 0) *
                      cell.NumberOr("makespan", 0);
    EXPECT_NEAR(cell.NumberOr("total_slot_seconds", -1), expected,
                1e-6 * std::max(1.0, expected));
    const json::JsonValue* categories = cell.Find("categories");
    ASSERT_NE(categories, nullptr);
    double sum = 0.0;
    int count = 0;
    for (const auto& [name, value] : categories->members) {
      sum += value.number_value;
      ++count;
    }
    EXPECT_EQ(count, kNumSlotCategories);
    // The invariant the ledger exists for: categories partition the total.
    EXPECT_NEAR(sum, expected, 1e-6 * std::max(1.0, expected));
    // A single-user run does real work.
    EXPECT_GT(categories->NumberOr("useful", 0.0), 0.0);
  }

  auto cp_doc = json::JsonParse(cp_json);
  ASSERT_TRUE(cp_doc.ok()) << cp_doc.status().ToString();
  ASSERT_NE(cp_doc.ValueOrDie().Find("cells"), nullptr);
  EXPECT_EQ(cp_doc.ValueOrDie().Find("cells")->items.size(), 5u);
}

TEST(LedgerBookTest, JsonIsByteIdenticalAcrossThreadCounts) {
  auto serial = RunGrid(/*threads=*/1);
  auto parallel = RunGrid(/*threads=*/4);
  EXPECT_EQ(serial.first, parallel.first);
  EXPECT_EQ(serial.second, parallel.second);
}

}  // namespace
}  // namespace dmr::obs
