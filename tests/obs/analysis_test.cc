/// \file
/// Tests for the dmr-analyze library: report parsing + repeat aggregation,
/// cross-run rendering, and baseline checking (tolerance bands, ordering
/// assertions, regression detection with an injected slowdown).

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/analysis.h"

namespace dmr::obs::analysis {
namespace {

/// A minimal Report::ToJson()-shaped document: two repeats of one cell
/// (policy HA) and one cell of policy Hadoop, each with one job.
/// HA: useful 40+60, wasted 10+10; Hadoop: useful 20, wasted 80.
std::string TwoPolicyReport(double hadoop_response) {
  std::string out = R"({
  "info": {"driver": "unit_driver"},
  "ledger": {"cells": [
    {"label": "cell-0000",
     "annotations": {"cell": "c1", "policy": "HA", "z": "1", "repeat": "0"},
     "nodes": 2, "map_slots_per_node": 2, "makespan": 50,
     "total_slot_seconds": 200,
     "categories": {"useful": 40, "wasted": 10, "speculative": 0,
                    "queueing": 50, "provider_wait": 60, "idle": 40},
     "wasted_pct": 20, "utilization_pct": 25, "delay_holds": 1,
     "attempts_completed": 4, "attempts_speculative": 0},
    {"label": "cell-0001",
     "annotations": {"cell": "c1", "policy": "HA", "z": "1", "repeat": "1"},
     "nodes": 2, "map_slots_per_node": 2, "makespan": 50,
     "total_slot_seconds": 200,
     "categories": {"useful": 60, "wasted": 10, "speculative": 10,
                    "queueing": 40, "provider_wait": 50, "idle": 30},
     "wasted_pct": 12.5, "utilization_pct": 40, "delay_holds": 2,
     "attempts_completed": 5, "attempts_speculative": 1},
    {"label": "cell-0002",
     "annotations": {"cell": "c1", "policy": "Hadoop", "z": "1"},
     "nodes": 2, "map_slots_per_node": 2, "makespan": 100,
     "total_slot_seconds": 400,
     "categories": {"useful": 20, "wasted": 80, "speculative": 0,
                    "queueing": 100, "provider_wait": 0, "idle": 200},
     "wasted_pct": 80, "utilization_pct": 25, "delay_holds": 0,
     "attempts_completed": 10, "attempts_speculative": 0}
  ]},
  "critical_path": {"cells": [
    {"label": "cell-0000",
     "annotations": {"cell": "c1", "policy": "HA", "z": "1", "repeat": "0"},
     "analysis": {"jobs": [
       {"job": 1, "finish_time": 50, "response_time": 20, "path_time": 20,
        "root_job": 1, "root_type": "submit",
        "breakdown": {"execution": 15, "queueing": 5},
        "path_truncated": false, "path": []}]}},
    {"label": "cell-0001",
     "annotations": {"cell": "c1", "policy": "HA", "z": "1", "repeat": "1"},
     "analysis": {"jobs": [
       {"job": 1, "finish_time": 50, "response_time": 30, "path_time": 30,
        "root_job": 1, "root_type": "submit",
        "breakdown": {"execution": 25, "queueing": 5},
        "path_truncated": false, "path": []}]}},
    {"label": "cell-0002",
     "annotations": {"cell": "c1", "policy": "Hadoop", "z": "1"},
     "analysis": {"jobs": [
       {"job": 1, "finish_time": 100, "response_time": )";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", hadoop_response);
  out += buf;
  out += R"(, "path_time": 90,
        "root_job": 1, "root_type": "submit",
        "breakdown": {"execution": 80, "queueing": 10},
        "path_truncated": false, "path": []}]}}
  ]}
})";
  return out;
}

TEST(AnalysisParseTest, AggregatesRepeatsByJoinKey) {
  auto run = ParseReport(TwoPolicyReport(90.0), "mem");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->driver, "unit_driver");
  ASSERT_EQ(run->cells.size(), 2u);  // HA repeats merged, Hadoop separate

  CellKey ha{"unit_driver", "c1", "HA", "1"};
  const CellAggregate* agg = run->FindCell(ha);
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->repeats, 2);
  EXPECT_EQ(agg->jobs, 2);
  EXPECT_DOUBLE_EQ(agg->makespan(), 50.0);
  EXPECT_DOUBLE_EQ(agg->response_time(), 25.0);  // (20 + 30) / 2
  // wasted = 20 of busy 120 (useful 100, wasted 20, speculative 10 -> 130).
  EXPECT_NEAR(agg->wasted_pct(), 100.0 * 20 / 130, 1e-9);
  EXPECT_NEAR(agg->utilization_pct(), 100.0 * 130 / 400, 1e-9);
  EXPECT_EQ(agg->delay_holds, 3);
  EXPECT_DOUBLE_EQ(agg->path_breakdown.at("execution"), 40.0);

  CellKey hadoop{"unit_driver", "c1", "Hadoop", "1"};
  const CellAggregate* h = run->FindCell(hadoop);
  ASSERT_NE(h, nullptr);
  EXPECT_NEAR(h->wasted_pct(), 80.0, 1e-9);
}

TEST(AnalysisParseTest, MissingCategoryIsAnError) {
  std::string bad = R"({
    "info": {"driver": "d"},
    "ledger": {"cells": [
      {"label": "x", "annotations": {}, "nodes": 1, "map_slots_per_node": 1,
       "makespan": 1, "total_slot_seconds": 1,
       "categories": {"useful": 1}}]}})";
  auto run = ParseReport(bad, "mem");
  EXPECT_FALSE(run.ok());
}

TEST(AnalysisParseTest, ReportsWithoutSectionsAreEmptyButValid) {
  auto run = ParseReport(R"({"info": {"driver": "fig4_skew"}})", "mem");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->cells.empty());
}

TEST(AnalysisRenderTest, MarkdownAndJsonCarryTheJoin) {
  auto run = ParseReport(TwoPolicyReport(90.0), "mem");
  ASSERT_TRUE(run.ok());
  std::vector<RunData> runs = {*std::move(run)};

  std::string markdown = RenderComparisonMarkdown(runs);
  EXPECT_NE(markdown.find("| c1 | HA | 1 |"), std::string::npos);
  EXPECT_NE(markdown.find("| c1 | Hadoop | 1 |"), std::string::npos);

  auto doc = json::JsonParse(RenderComparisonJson(runs));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::JsonValue* cells = doc.ValueOrDie().Find("cells");
  ASSERT_NE(cells, nullptr);
  ASSERT_EQ(cells->items.size(), 2u);
  const json::JsonValue* entry = cells->items[0].Find("runs");
  ASSERT_NE(entry, nullptr);
  ASSERT_EQ(entry->items.size(), 1u);
  EXPECT_DOUBLE_EQ(entry->items[0].NumberOr("response_time", -1), 25.0);
}

std::vector<RunData> RunsFor(double hadoop_response) {
  auto run = ParseReport(TwoPolicyReport(hadoop_response), "mem");
  EXPECT_TRUE(run.ok());
  std::vector<RunData> runs;
  runs.push_back(*std::move(run));
  return runs;
}

TEST(BaselineTest, EmittedBaselineChecksClean) {
  std::vector<RunData> runs = RunsFor(90.0);
  auto baseline = json::JsonParse(EmitBaseline(runs, 0.05));
  ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
  auto report = CheckBaseline(baseline.ValueOrDie(), runs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->ok()) << report->failures.front();
  EXPECT_EQ(report->entries_checked, 8);  // 2 cells x 4 metrics
}

TEST(BaselineTest, InjectedSlowdownIsARegression) {
  // Baseline from the healthy run; check a run where the Hadoop cell's
  // response time regressed 2x.
  std::vector<RunData> healthy = RunsFor(90.0);
  auto baseline = json::JsonParse(EmitBaseline(healthy, 0.05));
  ASSERT_TRUE(baseline.ok());

  std::vector<RunData> slow = RunsFor(180.0);
  auto report = CheckBaseline(baseline.ValueOrDie(), slow);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->ok());
  ASSERT_EQ(report->failures.size(), 1u);
  EXPECT_NE(report->failures[0].find("response_time"), std::string::npos);
  EXPECT_NE(report->failures[0].find("Hadoop"), std::string::npos);
}

TEST(BaselineTest, OrderingViolationsAreDetected) {
  std::vector<RunData> runs = RunsFor(90.0);
  // HA (25s) must not be slower than Hadoop (90s): holds -> no failure.
  std::string good = R"({
    "driver": "unit_driver",
    "orderings": [{"metric": "response_time", "cells": [
      {"cell": "c1", "policy": "HA", "z": "1"},
      {"cell": "c1", "policy": "Hadoop", "z": "1"}]}]})";
  auto good_doc = json::JsonParse(good);
  ASSERT_TRUE(good_doc.ok());
  auto good_report = CheckBaseline(good_doc.ValueOrDie(), runs);
  ASSERT_TRUE(good_report.ok());
  EXPECT_TRUE(good_report->ok());
  EXPECT_EQ(good_report->orderings_checked, 1);

  // The reverse ordering is violated.
  std::string bad = R"({
    "driver": "unit_driver",
    "orderings": [{"metric": "response_time", "cells": [
      {"cell": "c1", "policy": "Hadoop", "z": "1"},
      {"cell": "c1", "policy": "HA", "z": "1"}]}]})";
  auto bad_doc = json::JsonParse(bad);
  ASSERT_TRUE(bad_doc.ok());
  auto bad_report = CheckBaseline(bad_doc.ValueOrDie(), runs);
  ASSERT_TRUE(bad_report.ok());
  EXPECT_FALSE(bad_report->ok());
  EXPECT_NE(bad_report->failures[0].find("ordering violated"),
            std::string::npos);
}

TEST(BaselineTest, MissingCellAndWrongDriverFail) {
  std::vector<RunData> runs = RunsFor(90.0);
  std::string missing = R"({
    "driver": "unit_driver",
    "entries": [{"cell": "nope", "policy": "HA", "z": "1",
                 "metrics": {"response_time": 1}}]})";
  auto doc = json::JsonParse(missing);
  ASSERT_TRUE(doc.ok());
  auto report = CheckBaseline(doc.ValueOrDie(), runs);
  ASSERT_TRUE(report.ok());
  EXPECT_FALSE(report->ok());

  auto wrong = json::JsonParse(R"({"driver": "other_driver"})");
  ASSERT_TRUE(wrong.ok());
  auto wrong_report = CheckBaseline(wrong.ValueOrDie(), runs);
  ASSERT_TRUE(wrong_report.ok());
  EXPECT_FALSE(wrong_report->ok());
}

TEST(BaselineTest, ToleranceBandsAreRespected) {
  std::vector<RunData> runs = RunsFor(90.0);
  // Baseline response_time 85 vs actual 90: within rel 0.1 (8.5), noted
  // as drift; with rel 0.01 (0.85) it fails.
  std::string tight = R"({
    "driver": "unit_driver",
    "tolerances": {"response_time": 0.01},
    "entries": [{"cell": "c1", "policy": "Hadoop", "z": "1",
                 "metrics": {"response_time": 85}}]})";
  auto tight_doc = json::JsonParse(tight);
  ASSERT_TRUE(tight_doc.ok());
  auto tight_report = CheckBaseline(tight_doc.ValueOrDie(), runs);
  ASSERT_TRUE(tight_report.ok());
  EXPECT_FALSE(tight_report->ok());

  std::string loose = R"({
    "driver": "unit_driver",
    "tolerances": {"response_time": 0.1},
    "entries": [{"cell": "c1", "policy": "Hadoop", "z": "1",
                 "metrics": {"response_time": 85}}]})";
  auto loose_doc = json::JsonParse(loose);
  ASSERT_TRUE(loose_doc.ok());
  auto loose_report = CheckBaseline(loose_doc.ValueOrDie(), runs);
  ASSERT_TRUE(loose_report.ok());
  EXPECT_TRUE(loose_report->ok());
  EXPECT_FALSE(loose_report->notes.empty());  // drift is surfaced
}

/// A minimal --timeline document: one cell with one probe series and one
/// windowed series, shaped like TimelineBook::ToJson. `p99` parameterizes
/// the 10 s window's whole-run p99 maximum so tests can inject a latency
/// regression.
std::string TimelineDoc(double p99) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%g", p99);
  std::string out = R"({
  "driver": "unit_driver",
  "timeline": {
    "interval": 1,
    "windows": [10],
    "cells": [
      {"label": "cell-0000",
       "annotations": {"cell": "c1", "policy": "HA", "z": "1"},
       "timeline": {
         "ticks": 3, "dropped_ticks": 0, "sealed_at": 3,
         "series": [
           {"name": "sim.live", "unit": "events", "kind": "gauge",
            "summary": {"ticks": 3, "min": 1, "max": 9, "mean": 5,
                        "last": 5, "t_at_max": 2},
            "points": [[1, 1, 0], [2, 9, 8], [3, 5, -4]]}],
         "windowed": [
           {"name": "job.latency", "unit": "s",
            "windows": [
              {"window": 10,
               "summary": {"count_max": 4, "p50_max": 2.0,
                           "p90_max": 3.0, "p99_max": )";
  out += buf;
  out += R"(},
               "points": [[1, 2, 1, 1, 2], [2, 4, 2, 3, )";
  out += buf;
  out += R"(], [3, 4, 2, 3, 3]]}]}]},
       "slo": {"rules": [], "breaches": []},
       "flight_recorder": {"capacity": 8, "appended": 0, "dropped": 0,
                           "events": []}}
    ]
  }
})";
  return out;
}

TEST(TimelineBaselineTest, EmittedBaselineChecksCleanAndCatchesRegression) {
  auto healthy = ParseTimeline(TimelineDoc(4.0), "healthy.json");
  ASSERT_TRUE(healthy.ok()) << healthy.status().message();
  std::vector<TimelineRunData> healthy_runs{healthy.ValueOrDie()};

  auto baseline = json::JsonParse(EmitTimelineBaseline(healthy_runs, 0.05));
  ASSERT_TRUE(baseline.ok()) << baseline.status().message();
  auto clean = CheckTimelineBaseline(baseline.ValueOrDie(), healthy_runs);
  ASSERT_TRUE(clean.ok()) << clean.status().message();
  EXPECT_TRUE(clean->ok()) << (clean->failures.empty()
                                   ? ""
                                   : clean->failures.front());
  EXPECT_GT(clean->entries_checked, 0);

  // A 3x windowed p99 regression must fail the band.
  auto slow = ParseTimeline(TimelineDoc(12.0), "slow.json");
  ASSERT_TRUE(slow.ok()) << slow.status().message();
  std::vector<TimelineRunData> slow_runs{slow.ValueOrDie()};
  auto report = CheckTimelineBaseline(baseline.ValueOrDie(), slow_runs);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_FALSE(report->ok());
  bool mentions_p99 = false;
  for (const std::string& failure : report->failures) {
    if (failure.find("p99") != std::string::npos) mentions_p99 = true;
  }
  EXPECT_TRUE(mentions_p99);

  // A missing cell is a failure, not a silent skip.
  auto empty = ParseTimeline(R"({"driver": "unit_driver",
    "timeline": {"interval": 1, "windows": [10], "cells": []}})",
                             "empty.json");
  ASSERT_TRUE(empty.ok()) << empty.status().message();
  std::vector<TimelineRunData> empty_runs{empty.ValueOrDie()};
  auto missing = CheckTimelineBaseline(baseline.ValueOrDie(), empty_runs);
  ASSERT_TRUE(missing.ok());
  EXPECT_FALSE(missing->ok());
}

TEST(TimelineBaselineTest, MarkdownRendersSeriesAndSparklines) {
  auto run = ParseTimeline(TimelineDoc(4.0), "run.json");
  ASSERT_TRUE(run.ok()) << run.status().message();
  const std::string markdown =
      RenderTimelineMarkdown({run.ValueOrDie(), run.ValueOrDie()});
  EXPECT_NE(markdown.find("sim.live"), std::string::npos);
  EXPECT_NE(markdown.find("job.latency"), std::string::npos);
  // Windowed table: header plus a row whose window column is "10".
  EXPECT_NE(markdown.find("window (s)"), std::string::npos);
  EXPECT_NE(markdown.find("| job.latency | 10 | "), std::string::npos);
}

}  // namespace
}  // namespace dmr::obs::analysis
