/// \file
/// FlightRecorder unit tests: ring wraparound accounting, oldest-first
/// snapshots, arena-backed storage, and the deterministic dump paths
/// (DumpText and the sorted fatal-dump registry).

#include "obs/flight_recorder.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "sim/arena.h"

namespace dmr::obs {
namespace {

/// Runs `fn` against a FILE* and returns everything it wrote.
template <typename Fn>
std::string CaptureOutput(Fn&& fn) {
  std::FILE* f = std::tmpfile();
  EXPECT_NE(f, nullptr);
  fn(f);
  std::fflush(f);
  long size = std::ftell(f);
  std::rewind(f);
  std::string out(static_cast<size_t>(size), '\0');
  const size_t read = std::fread(out.data(), 1, out.size(), f);
  out.resize(read);
  std::fclose(f);
  return out;
}

void AppendN(FlightRecorder* recorder, int n) {
  for (int i = 0; i < n; ++i) {
    recorder->Append(/*t=*/static_cast<double>(i),
                     FlightEventKind::kSchedule, /*job=*/i, /*node=*/i * 10,
                     /*detail=*/i + 100, /*value=*/0.5 * i);
  }
}

TEST(FlightRecorderTest, WraparoundKeepsNewestOldestFirst) {
  FlightRecorder recorder(4);
  AppendN(&recorder, 10);

  EXPECT_EQ(recorder.capacity(), 4u);
  EXPECT_EQ(recorder.appended(), 10u);
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.dropped(), 6u);

  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    // Sequences 6..9 survive, oldest first, fields intact.
    EXPECT_EQ(events[i].seq, static_cast<uint64_t>(6 + i));
    EXPECT_DOUBLE_EQ(events[i].t, static_cast<double>(6 + i));
    EXPECT_EQ(events[i].job, 6 + i);
    EXPECT_EQ(events[i].node, (6 + i) * 10);
    EXPECT_EQ(events[i].detail, 106 + i);
    EXPECT_DOUBLE_EQ(events[i].value, 0.5 * (6 + i));
  }
}

TEST(FlightRecorderTest, UnderfilledRingSnapshotsInAppendOrder) {
  FlightRecorder recorder(8);
  AppendN(&recorder, 3);
  EXPECT_EQ(recorder.size(), 3u);
  EXPECT_EQ(recorder.dropped(), 0u);
  std::vector<FlightEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(events[i].seq, static_cast<uint64_t>(i));
  }
}

TEST(FlightRecorderTest, ArenaBackedRingBehavesLikeHeapBacked) {
  sim::Arena arena;
  FlightRecorder arena_backed(4, &arena);
  FlightRecorder heap_backed(4);
  AppendN(&arena_backed, 10);
  AppendN(&heap_backed, 10);
  EXPECT_EQ(arena_backed.ToJson(), heap_backed.ToJson());
  const std::string arena_dump = CaptureOutput(
      [&](std::FILE* f) { arena_backed.DumpText(f, "cell"); });
  const std::string heap_dump = CaptureOutput(
      [&](std::FILE* f) { heap_backed.DumpText(f, "cell"); });
  EXPECT_EQ(arena_dump, heap_dump);
}

TEST(FlightRecorderTest, DumpTextIsDeterministicAndLabelled) {
  FlightRecorder recorder(4);
  AppendN(&recorder, 6);
  const std::string first = CaptureOutput(
      [&](std::FILE* f) { recorder.DumpText(f, "cell-0"); });
  const std::string second = CaptureOutput(
      [&](std::FILE* f) { recorder.DumpText(f, "cell-0"); });
  EXPECT_EQ(first, second);
  EXPECT_NE(first.find("cell-0"), std::string::npos);
  EXPECT_NE(first.find("schedule"), std::string::npos);
  // Oldest first: seq 2 must be printed before seq 5.
  EXPECT_LT(first.find("seq=2"), first.find("seq=5"));
}

TEST(FlightRecorderTest, RegisteredDumpIsSortedByLabel) {
  FlightRecorder late(2);
  FlightRecorder early(2);
  late.Append(1.0, FlightEventKind::kBackup, 1, 2, 3, 4.0);
  early.Append(2.0, FlightEventKind::kPreempt, 5, 6, 7, 8.0);
  RegisterFlightRecorderForFatalDump(&late, "zz-cell");
  RegisterFlightRecorderForFatalDump(&early, "aa-cell");
  const std::string dump = CaptureOutput(
      [](std::FILE* f) { DumpRegisteredFlightRecorders(f); });
  UnregisterFlightRecorderForFatalDump(&late);
  UnregisterFlightRecorderForFatalDump(&early);
  const size_t aa = dump.find("aa-cell");
  const size_t zz = dump.find("zz-cell");
  ASSERT_NE(aa, std::string::npos);
  ASSERT_NE(zz, std::string::npos);
  EXPECT_LT(aa, zz);  // sorted by label, not registration order
}

TEST(FlightRecorderTest, ToJsonCarriesCountsAndEvents) {
  FlightRecorder recorder(4);
  AppendN(&recorder, 6);
  auto doc = json::JsonParse(recorder.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  EXPECT_DOUBLE_EQ(doc->NumberOr("capacity", 0.0), 4.0);
  EXPECT_DOUBLE_EQ(doc->NumberOr("appended", 0.0), 6.0);
  EXPECT_DOUBLE_EQ(doc->NumberOr("dropped", 0.0), 2.0);
  const json::JsonValue* events = doc->Find("events");
  ASSERT_NE(events, nullptr);
  ASSERT_EQ(events->items.size(), 4u);
  uint64_t prev_seq = 0;
  for (size_t i = 0; i < events->items.size(); ++i) {
    const auto seq =
        static_cast<uint64_t>(events->items[i].NumberOr("seq", -1.0));
    if (i > 0) {
      EXPECT_GT(seq, prev_seq);
    }
    prev_seq = seq;
  }
}

TEST(FlightRecorderTest, KindNamesAreStable) {
  EXPECT_EQ(FlightEventKindName(FlightEventKind::kSchedule), "schedule");
  EXPECT_EQ(FlightEventKindName(FlightEventKind::kSloBreach), "slo_breach");
}

}  // namespace
}  // namespace dmr::obs
