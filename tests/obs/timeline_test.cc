/// \file
/// Timeline + SloMonitor unit tests: probe ring semantics (points, rates,
/// eviction-proof summaries), sliding-window percentile rolls, SLO breach
/// instants / error-budget burn, and the determinism contract — the
/// emitted JSON must be byte-identical across {serial, RunParallel} x
/// {calendar, heap} x tie-shuffle seeds (DESIGN.md §15).

#include "obs/timeline.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "obs/metrics.h"
#include "obs/slo.h"
#include "sim/simulation.h"

namespace dmr::obs {
namespace {

using dmr::sim::EventClass;
using dmr::sim::QueueKind;
using dmr::sim::Simulation;
using dmr::sim::SimulationOptions;

/// The HDR bucket edge an observation actually lands on — windowed
/// percentiles answer bucket lower edges, not raw values.
double Edge(double value) {
  return HistogramData::BucketLowerEdge(HistogramData::BucketFor(value));
}

TEST(TimelineTest, ProbePointsCarryValuesAndRates) {
  Timeline tl;
  double gauge = 5.0;
  double counter = 0.0;
  tl.AddProbe("g", "items", Timeline::SeriesKind::kGauge,
              [&gauge] { return gauge; });
  tl.AddProbe("c", "events", Timeline::SeriesKind::kCounter,
              [&counter] { return counter; });

  gauge = 7.0;
  counter = 10.0;
  tl.Sample(1.0);
  gauge = 3.0;
  counter = 30.0;
  tl.Sample(2.0);

  double out = 0.0;
  ASSERT_TRUE(tl.LatestProbeValue("g", &out));
  EXPECT_DOUBLE_EQ(out, 3.0);
  ASSERT_TRUE(tl.LatestProbeValue("c", &out));
  EXPECT_DOUBLE_EQ(out, 30.0);
  EXPECT_FALSE(tl.LatestProbeValue("unknown", &out));

  tl.Seal(2.0);
  auto doc = json::JsonParse(tl.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const json::JsonValue* series = doc->Find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->items.size(), 2u);
  // Sorted by name: "c" first.
  const json::JsonValue* c_points = series->items[0].Find("points");
  ASSERT_NE(c_points, nullptr);
  ASSERT_EQ(c_points->items.size(), 2u);
  // Counter rate is the delta per simulated second: (30 - 10) / 1.0.
  EXPECT_DOUBLE_EQ(c_points->items[1].items[0].number_value, 2.0);
  EXPECT_DOUBLE_EQ(c_points->items[1].items[1].number_value, 30.0);
  EXPECT_DOUBLE_EQ(c_points->items[1].items[2].number_value, 20.0);
}

TEST(TimelineTest, RingEvictionKeepsWholeRunSummary) {
  TimelineOptions options;
  options.max_ticks = 2;
  Timeline tl(options);
  double value = 0.0;
  tl.AddProbe("v", "items", Timeline::SeriesKind::kGauge,
              [&value] { return value; });
  // Values 10, 40, 20, 30, 25 at t = 1..5: the max (40 at t=2) falls off
  // the two-point ring, so only the summary can still report it.
  const double values[] = {10.0, 40.0, 20.0, 30.0, 25.0};
  for (int i = 0; i < 5; ++i) {
    value = values[i];
    tl.Sample(static_cast<double>(i + 1));
  }
  EXPECT_EQ(tl.ticks(), 5u);
  EXPECT_EQ(tl.dropped_ticks(), 3u);

  tl.Seal(5.0);
  auto doc = json::JsonParse(tl.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const json::JsonValue* series = doc->Find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_EQ(series->items.size(), 1u);
  const json::JsonValue* points = series->items[0].Find("points");
  ASSERT_NE(points, nullptr);
  EXPECT_EQ(points->items.size(), 2u);  // ring keeps the last max_ticks
  const json::JsonValue* summary = series->items[0].Find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_DOUBLE_EQ(summary->NumberOr("ticks", 0.0), 5.0);
  EXPECT_DOUBLE_EQ(summary->NumberOr("min", 0.0), 10.0);
  EXPECT_DOUBLE_EQ(summary->NumberOr("max", 0.0), 40.0);
  EXPECT_DOUBLE_EQ(summary->NumberOr("t_at_max", 0.0), 2.0);
  EXPECT_DOUBLE_EQ(summary->NumberOr("mean", 0.0), 25.0);
  EXPECT_DOUBLE_EQ(summary->NumberOr("last", 0.0), 25.0);
}

TEST(TimelineTest, WindowedPercentilesSlideAndEvict) {
  TimelineOptions options;
  options.windows = {2.0};
  Timeline tl(options);
  Timeline::WindowedId lat = tl.AddWindowed("lat", "s");

  // One slow observation in tick 1, fast ones afterwards: the 2-tick
  // window must forget the 100 once tick 3 closes.
  tl.Observe(lat, 100.0);
  tl.Observe(lat, 10.0);
  tl.Sample(1.0);
  double p99 = 0.0;
  ASSERT_TRUE(tl.LatestWindowStat("lat", 2.0, 99.0, &p99));
  EXPECT_DOUBLE_EQ(p99, Edge(100.0));

  tl.Observe(lat, 10.0);
  tl.Sample(2.0);
  ASSERT_TRUE(tl.LatestWindowStat("lat", 2.0, 99.0, &p99));
  EXPECT_DOUBLE_EQ(p99, Edge(100.0));  // window covers ticks {1, 2}

  tl.Observe(lat, 10.0);
  tl.Sample(3.0);
  ASSERT_TRUE(tl.LatestWindowStat("lat", 2.0, 99.0, &p99));
  EXPECT_DOUBLE_EQ(p99, Edge(10.0));  // the 100 slid out

  double p50 = 0.0;
  ASSERT_TRUE(tl.LatestWindowStat("lat", 2.0, 50.0, &p50));
  EXPECT_DOUBLE_EQ(p50, Edge(10.0));
  EXPECT_FALSE(tl.LatestWindowStat("lat", 60.0, 99.0, &p99));  // no window
  EXPECT_FALSE(tl.LatestWindowStat("nope", 2.0, 99.0, &p99));

  // Whole-run window summary keeps the peak even after it slid out.
  tl.Seal(3.0);
  auto doc = json::JsonParse(tl.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  const json::JsonValue* windowed = doc->Find("windowed");
  ASSERT_NE(windowed, nullptr);
  ASSERT_EQ(windowed->items.size(), 1u);
  const json::JsonValue* windows = windowed->items[0].Find("windows");
  ASSERT_NE(windows, nullptr);
  ASSERT_EQ(windows->items.size(), 1u);
  const json::JsonValue* summary = windows->items[0].Find("summary");
  ASSERT_NE(summary, nullptr);
  EXPECT_DOUBLE_EQ(summary->NumberOr("p99_max", 0.0), Edge(100.0));
  EXPECT_DOUBLE_EQ(summary->NumberOr("count_max", 0.0), 3.0);
}

TEST(TimelineTest, InvalidWindowedIdIsIgnored) {
  Timeline tl;
  Timeline::WindowedId bogus;  // default: invalid
  EXPECT_FALSE(bogus.valid());
  tl.Observe(bogus, 1.0);  // must not crash or record anything
  tl.Sample(1.0);
  EXPECT_EQ(tl.ticks(), 1u);
}

TEST(TimelineTest, DuplicateRegistrationsDedupeByName) {
  Timeline tl;
  double a = 1.0;
  tl.AddProbe("p", "x", Timeline::SeriesKind::kGauge, [&a] { return a; });
  tl.AddProbe("p", "x", Timeline::SeriesKind::kGauge, [] { return 99.0; });
  Timeline::WindowedId w1 = tl.AddWindowed("w", "s");
  Timeline::WindowedId w2 = tl.AddWindowed("w", "s");
  EXPECT_EQ(w1.index, w2.index);
  tl.Sample(1.0);
  double out = 0.0;
  ASSERT_TRUE(tl.LatestProbeValue("p", &out));
  EXPECT_DOUBLE_EQ(out, 1.0);  // first registration won
}

TEST(SloMonitorTest, BreachInstantsAndBudgetBurn) {
  TimelineOptions options;
  options.windows = {2.0};
  Timeline tl(options);
  Timeline::WindowedId lat = tl.AddWindowed("lat", "s");
  FlightRecorder flight(16);
  SloMonitor slo(&tl);
  slo.AttachFlightRecorder(&flight);
  SloRule rule;
  rule.name = "lat_p99";
  rule.series = "lat";
  rule.window = 2.0;
  rule.quantile = 99.0;
  rule.max_value = 50.0;
  rule.budget_fraction = 0.5;
  ASSERT_EQ(slo.AddRule(rule), 0);

  auto step = [&](double t, double value) {
    tl.Observe(lat, value);
    tl.Sample(t);
    slo.Evaluate(t);
  };

  step(1.0, 10.0);   // ok
  step(2.0, 100.0);  // breach instant (burn 1/2 == budget: not yet burned)
  ASSERT_EQ(slo.breaches().size(), 1u);
  EXPECT_DOUBLE_EQ(slo.breaches()[0].t, 2.0);
  EXPECT_EQ(slo.breaches()[0].rule, 0);
  EXPECT_FALSE(slo.breaches()[0].burn);
  EXPECT_DOUBLE_EQ(slo.breaches()[0].measured, Edge(100.0));

  step(3.0, 100.0);  // still in breach: no new instant, but 2/3 > 0.5 burns
  ASSERT_EQ(slo.breaches().size(), 2u);
  EXPECT_DOUBLE_EQ(slo.breaches()[1].t, 3.0);
  EXPECT_TRUE(slo.breaches()[1].burn);
  EXPECT_DOUBLE_EQ(slo.breaches()[1].measured, 2.0 / 3.0);

  step(4.0, 100.0);  // sustained: burn is latched, nothing new
  EXPECT_EQ(slo.breaches().size(), 2u);

  // Recovery (window forgets the 100s), then a fresh crossing is a fresh
  // instant.
  step(5.0, 10.0);  // window {4,5} still holds tick 4's 100
  step(6.0, 10.0);  // window {5,6}: recovered
  step(7.0, 100.0);
  ASSERT_EQ(slo.breaches().size(), 3u);
  EXPECT_DOUBLE_EQ(slo.breaches()[2].t, 7.0);
  EXPECT_FALSE(slo.breaches()[2].burn);

  // Both the threshold crossings and the burn landed in the recorder.
  std::vector<FlightEvent> events = flight.Snapshot();
  ASSERT_EQ(events.size(), 3u);
  for (const FlightEvent& ev : events) {
    EXPECT_EQ(ev.kind, FlightEventKind::kSloBreach);
    EXPECT_EQ(ev.detail, 0);  // rule index
  }
  EXPECT_DOUBLE_EQ(events[0].t, 2.0);
  EXPECT_DOUBLE_EQ(events[1].t, 3.0);
  EXPECT_DOUBLE_EQ(events[2].t, 7.0);
}

/// Runs the reference event program against one {engine, queue, seed}
/// combination and returns the sealed timeline + SLO JSON. The program
/// observes from shard-0 events only (the single-writer contract) while
/// shard 1 churns through background events, and plants same-instant
/// bookkeeping-vs-telemetry ties at every tick to exercise the EventClass
/// ordering that makes sampling tie-order independent.
std::string RunTimelineProgram(bool parallel, QueueKind kind,
                               uint64_t shuffle_seed) {
  SimulationOptions options;
  options.queue = kind;
  Simulation sim(options);
  if (shuffle_seed != 0) sim.EnableTieShuffle(shuffle_seed);
  sim.ConfigureShards(parallel ? 2 : 1);

  TimelineOptions tl_options;
  tl_options.windows = {2.0, 4.0};
  tl_options.max_ticks = 4;  // eviction must be identical too
  Timeline timeline(tl_options);
  Timeline::WindowedId lat = timeline.AddWindowed("task.latency", "s");
  // Probes must read state that is deterministic *at shard-0 tick times*:
  // a global like events_fired() would race shard 1's progress inside a
  // lookahead epoch. Counting shard-0 observations is exactly the kind of
  // cell-local state real drivers expose.
  double observed = 0.0;
  timeline.AddProbe("cell.observations", "events",
                    Timeline::SeriesKind::kCounter,
                    [&observed] { return observed; });
  SloMonitor slo(&timeline);
  SloRule rule;
  rule.name = "lat_p99";
  rule.series = "task.latency";
  rule.window = 2.0;
  rule.quantile = 99.0;
  rule.max_value = 6.0;
  rule.budget_fraction = 0.5;
  slo.AddRule(rule);

  const int observer_shard = 0;
  const int noise_shard = parallel ? 1 : 0;
  for (int i = 0; i < 40; ++i) {
    // Observations land at tick boundaries ON PURPOSE: a kBookkeeping
    // event tied with the kTelemetry tick at the same instant must fire
    // first (class order), so which tick an observation belongs to never
    // depends on tie resolution.
    const double t = 1.0 + static_cast<double>(i % 8);
    const double value = static_cast<double>((i * 7) % 11);
    sim.ScheduleOnShardDetached(observer_shard, t, EventClass::kBookkeeping,
                                [&timeline, &observed, lat, value]() {
                                  timeline.Observe(lat, value);
                                  observed += 1.0;
                                });
    sim.ScheduleOnShardDetached(noise_shard, 0.25 + 0.2 * i,
                                EventClass::kDefault, []() {});
  }
  for (double t = 1.0; t <= 8.0; t += 1.0) {
    sim.ScheduleOnShardDetached(observer_shard, t, EventClass::kTelemetry,
                                [&timeline, &slo, &sim]() {
                                  timeline.Sample(sim.Now());
                                  slo.Evaluate(sim.Now());
                                });
  }

  if (parallel) {
    sim.RunParallel(2, 9.0);
  } else {
    sim.RunUntil(9.0);
  }
  timeline.Seal(9.0);
  return timeline.ToJson() + "\n" + slo.ToJson();
}

TEST(TimelineTest, JsonIsByteIdenticalAcrossEnginesQueuesAndSeeds) {
  const std::string reference =
      RunTimelineProgram(/*parallel=*/false, QueueKind::kBinaryHeap,
                         /*shuffle_seed=*/0);
  ASSERT_NE(reference.find("task.latency"), std::string::npos);
  ASSERT_NE(reference.find("breaches"), std::string::npos);
  for (bool parallel : {false, true}) {
    for (QueueKind kind : {QueueKind::kCalendar, QueueKind::kBinaryHeap}) {
      for (uint64_t seed : {uint64_t{0}, uint64_t{11}, uint64_t{23}}) {
        EXPECT_EQ(RunTimelineProgram(parallel, kind, seed), reference)
            << "engine=" << (parallel ? "parallel" : "serial")
            << " queue=" << (kind == QueueKind::kCalendar ? "calendar" : "heap")
            << " seed=" << seed;
      }
    }
  }
}

}  // namespace
}  // namespace dmr::obs
