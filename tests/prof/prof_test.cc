/// \file
/// The host profiler's contract (DESIGN.md §17): profiling is
/// determinism-invisible (every simulation digest is byte-identical with
/// the profiler on or off, serial or sharded), the merged phase tree obeys
/// self = total - sum(children) under arbitrary nesting, the collapsed
/// flamegraph text round-trips losslessly (including through the
/// dmr-analyze profile parser), timer-stack imbalances are detected, and
/// allocation accounting is gated on Enabled(). The concurrent-scopes test
/// is TSan-targeted: thread-local trees must merge without races.

#include "prof/prof.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/json.h"
#include "obs/analysis.h"
#include "sim/simulation.h"

namespace dmr {
namespace {

class ProfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    prof::Disable();
    prof::ResetForTest();
  }
  void TearDown() override {
    prof::Disable();
    prof::ResetForTest();
  }
};

// --- determinism: digests are byte-identical with profiling on/off -------

constexpr int kShards = 2;
constexpr int kNodesPerShard = 4;
constexpr int kNodes = kShards * kNodesPerShard;
constexpr double kPeriod = 2.0;
constexpr double kUntil = 40.0;
constexpr double kSlot = kPeriod / kNodes;

/// One log per shard, cache-line aligned so parallel workers append
/// without sharing.
struct alignas(64) ShardLog {
  std::vector<std::pair<int, double>> fired;
};

int ShardOf(int node) { return node / kNodesPerShard; }
double TimeAt(long cell, double frac) {
  return (static_cast<double>(cell) + frac) * kSlot;
}

/// A heartbeat + cross-shard ping program with globally unique event times
/// (no ties), mirroring the RunParallel equivalence suite: identical
/// per-shard firing sequences are the digest under test.
struct Digest {
  std::vector<std::vector<std::pair<int, double>>> logs;
  uint64_t fired = 0;
};

Digest RunProgram(bool parallel) {
  sim::Simulation sim;
  sim.ConfigureShards(kShards);
  std::vector<ShardLog> logs(kShards);
  std::function<void(int, long)> beat = [&](int node, long k) {
    const int shard = ShardOf(node);
    logs[shard].fired.emplace_back(1 * kNodes + node, sim.Now());
    const long cell = k * kNodes + node;
    sim.ScheduleDetachedAt(TimeAt(cell, 0.5), sim::EventClass::kTaskLifecycle,
                           [&logs, &sim, node] {
                             logs[ShardOf(node)].fired.emplace_back(
                                 2 * kNodes + node, sim.Now());
                           });
    const int target = (shard + 1) % kShards;
    const long ping_cells = static_cast<long>(2.5 * kPeriod / kSlot);
    sim.ScheduleOnShardDetached(
        parallel ? target : 0, TimeAt(cell + ping_cells, 0.75),
        sim::EventClass::kDefault, [&logs, &sim, target, node] {
          logs[target].fired.emplace_back(3 * kNodes + node, sim.Now());
        });
    sim.ScheduleDetachedAt(TimeAt(cell + kNodes, 0.25),
                           sim::EventClass::kScheduling,
                           [&beat, node, k] { beat(node, k + 1); });
  };
  for (int node = 0; node < kNodes; ++node) {
    sim.ScheduleOnShardDetached(parallel ? ShardOf(node) : 0,
                                TimeAt(node, 0.25),
                                sim::EventClass::kScheduling,
                                [&beat, node] { beat(node, 0); });
  }
  Digest out;
  out.fired =
      parallel ? sim.RunParallel(kShards, kUntil, kPeriod) : sim.RunUntil(kUntil);
  for (ShardLog& log : logs) out.logs.push_back(std::move(log.fired));
  return out;
}

TEST_F(ProfTest, DigestIdenticalProfilingOnAndOff) {
  for (bool parallel : {false, true}) {
    Digest off = RunProgram(parallel);
    prof::Enable();
    Digest on = RunProgram(parallel);
    prof::Disable();
    ASSERT_GT(off.fired, 300u) << "program degenerated";
    ASSERT_EQ(off.fired, on.fired) << "parallel=" << parallel;
    for (int s = 0; s < kShards; ++s) {
      ASSERT_EQ(off.logs[s], on.logs[s])
          << "profiling changed shard " << s << " (parallel=" << parallel
          << ")";
    }
    // The profiled run actually recorded the kernel phases ("sim.dispatch"
    // under serial Run/RunUntil, "sim.parallel_dispatch" in the workers).
    prof::ProfReport report = prof::Collect();
    bool saw_dispatch = false;
    for (const prof::PhaseStat& phase : report.phases) {
      saw_dispatch |= phase.path.find("dispatch") != std::string::npos;
    }
    EXPECT_TRUE(saw_dispatch) << "parallel=" << parallel;
    prof::ResetForTest();
  }
}

TEST_F(ProfTest, SerialAndParallelDigestsAgreeWhileProfiled) {
  prof::Enable();
  Digest serial = RunProgram(/*parallel=*/false);
  Digest parallel = RunProgram(/*parallel=*/true);
  prof::Disable();
  ASSERT_EQ(serial.fired, parallel.fired);
  for (int s = 0; s < kShards; ++s) {
    ASSERT_EQ(serial.logs[s], parallel.logs[s]) << "shard " << s;
  }
}

// --- the phase-tree arithmetic -------------------------------------------

/// Number of path segments ';' + 1.
size_t Depth(const std::string& path) {
  size_t depth = 1;
  for (char c : path) depth += c == ';';
  return depth;
}

bool IsDirectChild(const std::string& parent, const std::string& child) {
  return child.size() > parent.size() + 1 &&
         child.compare(0, parent.size(), parent) == 0 &&
         child[parent.size()] == ';' &&
         Depth(child) == Depth(parent) + 1;
}

TEST_F(ProfTest, SelfTimeSumsToTotalUnderRandomizedNesting) {
  prof::Enable();
  static const prof::PhaseId kIds[5] = {
      prof::RegisterPhase("nest", "a"), prof::RegisterPhase("nest", "b"),
      prof::RegisterPhase("nest", "c"), prof::RegisterPhase("nest", "d"),
      prof::RegisterPhase("nest", "e")};
  uint64_t rng = 0x9E3779B97F4A7C15ULL;  // fixed seed: the test must replay
  uint64_t frames = 0;
  std::function<void(int)> recurse = [&](int depth) {
    rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
    prof::ScopedTimer frame(kIds[(rng >> 33) % 5]);
    ++frames;
    const int kids = depth < 4 ? static_cast<int>(rng >> 62) : 0;  // 0..3
    for (int i = 0; i < kids; ++i) recurse(depth + 1);
  };
  for (int i = 0; i < 500; ++i) recurse(0);
  prof::Disable();
  prof::ProfReport report = prof::Collect();
  EXPECT_EQ(report.imbalances, 0);
  uint64_t count_sum = 0;
  for (const prof::PhaseStat& phase : report.phases) {
    count_sum += phase.count;
    EXPECT_LE(phase.self_ns, phase.total_ns) << phase.path;
    EXPECT_LE(phase.min_ns, phase.max_ns) << phase.path;
    EXPECT_GT(phase.count, 0u) << phase.path;
    uint64_t children_total = 0;
    for (const prof::PhaseStat& child : report.phases) {
      if (IsDirectChild(phase.path, child.path)) {
        children_total += child.total_ns;
      }
    }
    const uint64_t expected_self = phase.total_ns >= children_total
                                       ? phase.total_ns - children_total
                                       : 0;
    EXPECT_EQ(phase.self_ns, expected_self) << phase.path;
  }
  EXPECT_EQ(count_sum, frames);
}

// --- collapsed-stack round trip ------------------------------------------

TEST_F(ProfTest, CollapsedRoundTripsThroughParserAndAnalysis) {
  prof::Enable();
  static const prof::PhaseId kOuter = prof::RegisterPhase("rt", "outer");
  static const prof::PhaseId kInner = prof::RegisterPhase("rt", "inner");
  for (int i = 0; i < 16; ++i) {
    prof::ScopedTimer outer(kOuter);
    prof::ScopedTimer inner(kInner);
  }
  prof::Disable();
  prof::ProfReport report = prof::Collect();
  const std::string collapsed = prof::ToCollapsed(report);
  ASSERT_FALSE(collapsed.empty());

  Result<prof::ProfReport> parsed = prof::ParseCollapsed(collapsed);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(prof::ToCollapsed(*parsed), collapsed);

  // Through the dmr-analyze profile layer: a metrics file carrying this
  // "prof" section re-emits byte-identical collapsed text.
  const std::string json = "{\"info\": {\"driver\": \"prof_test\"}, "
                           "\"prof\": " + prof::ToJson(report) + "}";
  Result<obs::analysis::ProfileRunData> run =
      obs::analysis::ParseProfile(json, "inline");
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_EQ(run->driver, "prof_test");
  EXPECT_EQ(obs::analysis::RenderProfileCollapsed(*run), collapsed);

  ASSERT_FALSE(prof::ParseCollapsed("rt.outer not_a_number\n").ok());
}

// --- imbalance + allocation accounting -----------------------------------

TEST_F(ProfTest, TimerStackImbalanceIsDetected) {
  static const prof::PhaseId kId = prof::RegisterPhase("imb", "open");
  prof::Enable();
  prof::BeginPhase(kId);  // never closed
  prof::Disable();
  EXPECT_GE(prof::Collect().imbalances, 1);
  prof::ResetForTest();

  prof::Enable();
  prof::EndPhase(1);  // never opened
  prof::Disable();
  EXPECT_GE(prof::Collect().imbalances, 1);
}

TEST_F(ProfTest, AllocAccountingIsGatedOnEnable) {
  prof::AccountAlloc(prof::AllocSite::kArenaChunk, 1, 999);  // disabled: no-op
  prof::Enable();
  prof::AccountAlloc(prof::AllocSite::kArenaChunk, 2, 256);
  prof::AccountAlloc(prof::AllocSite::kCallbackSpill, 1, 64);
  prof::Disable();
  prof::ProfReport report = prof::Collect();
  ASSERT_EQ(report.alloc.size(), 2u);  // untouched sites are omitted
  EXPECT_EQ(report.alloc[0].site, "sim.arena.chunk");
  EXPECT_EQ(report.alloc[0].count, 2u);
  EXPECT_EQ(report.alloc[0].bytes, 256u);
  EXPECT_EQ(report.alloc[1].site, "sim.callback.spill");
  EXPECT_EQ(report.alloc[1].count, 1u);
  EXPECT_EQ(report.alloc[1].bytes, 64u);
}

// --- baseline gate --------------------------------------------------------

TEST_F(ProfTest, ProfileBaselineGateFlagsSeededRegression) {
  obs::analysis::ProfileRunData run;
  run.source = "inline";
  run.driver = "prof_test";
  obs::analysis::ProfilePhaseStat phase;
  phase.path = "sim.run_until;sim.dispatch";
  phase.count = 100;
  phase.total_ns = 5000;
  phase.self_ns = 5000;
  run.phases.push_back(phase);

  const char* kBaseline =
      "{\"kind\": \"profile\", \"driver\": \"prof_test\","
      " \"require_balanced\": true,"
      " \"tolerances\": {\"count\": {\"rel\": 0.05, \"abs\": 2}},"
      " \"entries\": [{\"path\": \"sim.run_until;sim.dispatch\","
      "                \"metrics\": {\"count\": 100}}]}";
  Result<json::JsonValue> baseline = json::JsonParse(kBaseline);
  ASSERT_TRUE(baseline.ok());

  auto ok = obs::analysis::CheckProfileBaseline(*baseline, {run});
  ASSERT_TRUE(ok.ok());
  EXPECT_TRUE(ok->ok()) << (ok->failures.empty() ? "" : ok->failures[0]);

  run.phases[0].count = 1000;  // seeded 10x regression
  auto bad = obs::analysis::CheckProfileBaseline(*baseline, {run});
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->ok());

  run.phases[0].count = 100;
  run.imbalances = 3;  // require_balanced trips
  auto imb = obs::analysis::CheckProfileBaseline(*baseline, {run});
  ASSERT_TRUE(imb.ok());
  EXPECT_FALSE(imb->ok());
}

// --- cross-thread merge (TSan target) ------------------------------------

TEST_F(ProfTest, ConcurrentScopesMergeAcrossThreads) {
  static const prof::PhaseId kWorker = prof::RegisterPhase("conc", "worker");
  static const prof::PhaseId kInner = prof::RegisterPhase("conc", "inner");
  constexpr int kThreads = 4;
  constexpr int kIters = 2000;
  prof::Enable();
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kIters; ++i) {
        prof::ScopedTimer outer(kWorker);
        prof::ScopedTimer inner(kInner);
        prof::AccountAlloc(prof::AllocSite::kColumnarBuild, 1, 8);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  prof::Disable();
  prof::ProfReport report = prof::Collect();
  EXPECT_EQ(report.imbalances, 0);
  EXPECT_GE(report.threads, kThreads);
  const prof::PhaseStat* worker = report.FindPhase("conc.worker");
  const prof::PhaseStat* inner = report.FindPhase("conc.worker;conc.inner");
  ASSERT_NE(worker, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(worker->count, uint64_t{kThreads} * kIters);
  EXPECT_EQ(inner->count, uint64_t{kThreads} * kIters);
  bool saw_alloc = false;
  for (const prof::AllocStat& stat : report.alloc) {
    if (stat.site == "exec.columnar.build") {
      saw_alloc = true;
      EXPECT_EQ(stat.count, uint64_t{kThreads} * kIters);
      EXPECT_EQ(stat.bytes, uint64_t{kThreads} * kIters * 8);
    }
  }
  EXPECT_TRUE(saw_alloc);
}

}  // namespace
}  // namespace dmr
