#include "cluster/cluster.h"

#include <gtest/gtest.h>

#include "cluster/cluster_monitor.h"
#include "sim/simulation.h"

namespace dmr::cluster {
namespace {

TEST(ClusterConfigTest, PaperDefaultsAreValid) {
  EXPECT_TRUE(ClusterConfig().Validate().ok());
  EXPECT_TRUE(ClusterConfig::SingleUser().Validate().ok());
  EXPECT_TRUE(ClusterConfig::MultiUser().Validate().ok());
}

TEST(ClusterConfigTest, PaperTestbedShape) {
  ClusterConfig config = ClusterConfig::SingleUser();
  EXPECT_EQ(config.num_nodes, 10);
  EXPECT_EQ(config.total_cores(), 40);   // paper Section V-A
  EXPECT_EQ(config.total_disks(), 40);
  EXPECT_EQ(config.total_map_slots(), 40);
  EXPECT_EQ(ClusterConfig::MultiUser().total_map_slots(), 160);
}

TEST(ClusterConfigTest, ValidationCatchesBadValues) {
  ClusterConfig config;
  config.num_nodes = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ClusterConfig();
  config.disk_bandwidth = -1;
  EXPECT_FALSE(config.Validate().ok());
  config = ClusterConfig();
  config.heartbeat_interval = 0;
  EXPECT_FALSE(config.Validate().ok());
  config = ClusterConfig();
  config.map_slots_per_node = 0;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(NodeTest, SlotAccounting) {
  sim::Simulation sim;
  ClusterConfig config;
  NodeStateTable state(4, config.map_slots_per_node,
                       config.reduce_slots_per_node);
  Node node(&sim, config, 3, &state);
  EXPECT_EQ(node.id(), 3);
  EXPECT_EQ(node.free_map_slots(), config.map_slots_per_node);
  // Slots are handed out lowest-index-first and are reusable once freed.
  EXPECT_EQ(node.AcquireMapSlot(), 0);
  EXPECT_EQ(node.AcquireMapSlot(), 1);
  EXPECT_EQ(node.used_map_slots(), 2);
  node.ReleaseMapSlot(0);
  EXPECT_EQ(node.used_map_slots(), 1);
  EXPECT_EQ(node.AcquireMapSlot(), 0);
  node.ReleaseMapSlot(0);
  node.AcquireReduceSlot();
  EXPECT_EQ(node.free_reduce_slots(), config.reduce_slots_per_node - 1);
  node.ReleaseReduceSlot();
  EXPECT_EQ(node.free_reduce_slots(), config.reduce_slots_per_node);
}

TEST(NodeTest, ResourcesAreProvisioned) {
  sim::Simulation sim;
  ClusterConfig config;
  NodeStateTable state(1, config.map_slots_per_node,
                       config.reduce_slots_per_node);
  Node node(&sim, config, 0, &state);
  EXPECT_EQ(node.num_disks(), config.disks_per_node);
  EXPECT_DOUBLE_EQ(node.cpu()->capacity(),
                   static_cast<double>(config.cores_per_node));
  EXPECT_DOUBLE_EQ(node.disk(0)->capacity(), config.disk_bandwidth);
}

TEST(ClusterTest, AggregatesSlots) {
  sim::Simulation sim;
  Cluster cluster(&sim, ClusterConfig::SingleUser());
  EXPECT_EQ(cluster.num_nodes(), 10);
  EXPECT_EQ(cluster.free_map_slots(), 40);
  cluster.node(0)->AcquireMapSlot();
  cluster.node(9)->AcquireMapSlot();
  EXPECT_EQ(cluster.free_map_slots(), 38);
  EXPECT_EQ(cluster.used_map_slots(), 2);
}

TEST(ClusterTest, CpuUtilizationAveragesNodes) {
  sim::Simulation sim;
  Cluster cluster(&sim, ClusterConfig::SingleUser());
  EXPECT_DOUBLE_EQ(cluster.CpuUtilizationPercent(), 0.0);
  // Load one node fully (4 tasks on 4 cores) => cluster-wide 10 %.
  for (int i = 0; i < 4; ++i) {
    cluster.node(0)->cpu()->Submit(1000.0, nullptr);
  }
  EXPECT_NEAR(cluster.CpuUtilizationPercent(), 10.0, 1e-6);
}

TEST(ClusterTest, DiskBytesAccumulate) {
  sim::Simulation sim;
  Cluster cluster(&sim, ClusterConfig::SingleUser());
  cluster.node(2)->disk(1)->Submit(1.0e6, nullptr);
  sim.RunUntil(100.0);
  EXPECT_NEAR(cluster.TotalDiskBytesRead(), 1.0e6, 1.0);
}

TEST(ClusterMonitorTest, SamplesAtConfiguredInterval) {
  sim::Simulation sim;
  ClusterConfig config;
  config.monitor_interval = 30.0;
  Cluster cluster(&sim, config);
  ClusterMonitor monitor(&cluster);
  sim.RunUntil(95.0);
  EXPECT_EQ(monitor.cpu_percent().size(), 3u);  // t = 30, 60, 90
  EXPECT_EQ(monitor.disk_read_kbs().size(), 3u);
  EXPECT_EQ(monitor.slot_occupancy_percent().size(), 3u);
}

TEST(ClusterMonitorTest, DiskRateReflectsReads) {
  sim::Simulation sim;
  ClusterConfig config;
  Cluster cluster(&sim, config);
  ClusterMonitor monitor(&cluster);
  // Read 40 MB in the first interval on one disk.
  cluster.node(0)->disk(0)->Submit(40.0e6, nullptr);
  sim.RunUntil(30.0);
  ASSERT_EQ(monitor.disk_read_kbs().size(), 1u);
  // 40 MB over 30 s over 40 disks, in KB/s.
  double expected = 40.0e6 / 30.0 / 40.0 / 1024.0;
  EXPECT_NEAR(monitor.disk_read_kbs().points()[0].value, expected, 1.0);
}

TEST(ClusterMonitorTest, OccupancyTracksSlots) {
  sim::Simulation sim;
  ClusterConfig config = ClusterConfig::SingleUser();
  Cluster cluster(&sim, config);
  ClusterMonitor monitor(&cluster);
  for (int i = 0; i < 10; ++i) cluster.node(i % 10)->AcquireMapSlot();
  sim.RunUntil(30.0);
  ASSERT_FALSE(monitor.slot_occupancy_percent().empty());
  EXPECT_NEAR(monitor.slot_occupancy_percent().points()[0].value, 25.0,
              1e-6);
}

TEST(ClusterMonitorTest, StopHaltsSampling) {
  sim::Simulation sim;
  Cluster cluster(&sim, ClusterConfig());
  ClusterMonitor monitor(&cluster);
  sim.RunUntil(35.0);
  monitor.Stop();
  sim.RunUntil(200.0);
  EXPECT_EQ(monitor.cpu_percent().size(), 1u);
}

}  // namespace
}  // namespace dmr::cluster
