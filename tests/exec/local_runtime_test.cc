#include "exec/local_runtime.h"

#include <gtest/gtest.h>

#include "hive/compiler.h"
#include "tpch/dataset_catalog.h"
#include "tpch/lineitem.h"

namespace dmr::exec {
namespace {

class LocalRuntimeTest : public ::testing::Test {
 protected:
  LocalRuntimeTest()
      : compiler_(&tpch::LineItemSchema(),
                  &dynamic::PolicyTable::BuiltIn()) {}

  tpch::MaterializedDataset MakeData(int partitions, uint64_t records,
                                     double selectivity, double z,
                                     uint64_t seed = 5) {
    tpch::SkewSpec spec;
    spec.num_partitions = partitions;
    spec.records_per_partition = records;
    spec.selectivity = selectivity;
    spec.zipf_z = z;
    spec.seed = seed;
    auto dataset = tpch::MaterializeDataset(spec);
    EXPECT_TRUE(dataset.ok());
    return *std::move(dataset);
  }

  hive::CompiledQuery Compile(const std::string& sql) {
    auto result = compiler_.Process(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result->query;
  }

  dynamic::GrowthPolicy Policy(const char* name) {
    return *dynamic::PolicyTable::BuiltIn().Find(name);
  }

  hive::HiveCompiler compiler_;
};

TEST_F(LocalRuntimeTest, SampleSatisfiesPredicateAndSize) {
  auto data = MakeData(12, 10000, 0.01, 1.0);  // 1200 matching
  auto query = Compile(
      "SELECT * FROM lineitem WHERE DISCOUNT > 0.10 LIMIT 100");
  LocalRuntime runtime({.num_threads = 4});
  auto result = runtime.Execute(query, data, Policy("LA"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 100u);
  for (const auto& row : result->rows) {
    auto matches = expr::EvaluatePredicate(*query.predicate,
                                           tpch::LineItemSchema(), row);
    ASSERT_TRUE(matches.ok());
    EXPECT_TRUE(*matches);
  }
}

TEST_F(LocalRuntimeTest, StopsEarlyWhenEnoughFound) {
  auto data = MakeData(20, 5000, 0.05, 0.0);  // plenty of matches everywhere
  auto query =
      Compile("SELECT ORDERKEY FROM lineitem WHERE QUANTITY > 50 LIMIT 50");
  LocalRuntime runtime({.num_threads = 4});
  auto result = runtime.Execute(query, data, Policy("C"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 50u);
  EXPECT_LT(result->partitions_processed, 20);
}

TEST_F(LocalRuntimeTest, ScansEverythingWhenMatchesAreScarce) {
  auto data = MakeData(6, 2000, 0.0, 0.0);  // zero matching records
  auto query =
      Compile("SELECT ORDERKEY FROM lineitem WHERE QUANTITY > 50 LIMIT 10");
  LocalRuntime runtime({.num_threads = 2});
  auto result = runtime.Execute(query, data, Policy("LA"));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->rows.empty());
  EXPECT_EQ(result->partitions_processed, 6);
  EXPECT_EQ(result->records_scanned, 12000u);
}

TEST_F(LocalRuntimeTest, PartialSampleWhenMatchesShortOfK) {
  auto data = MakeData(5, 4000, 0.005, 0.0);  // 100 matching total
  auto query =
      Compile("SELECT ORDERKEY FROM lineitem WHERE QUANTITY > 50 LIMIT 500");
  LocalRuntime runtime({.num_threads = 4});
  auto result = runtime.Execute(query, data, Policy("HA"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 100u);
  EXPECT_EQ(result->partitions_processed, 5);
}

TEST_F(LocalRuntimeTest, ProjectionSelectsRequestedColumns) {
  auto data = MakeData(4, 1000, 0.01, 0.0);
  auto query = Compile(
      "SELECT SUPPKEY, SHIPMODE FROM lineitem WHERE QUANTITY > 50 LIMIT 5");
  LocalRuntime runtime({.num_threads = 2});
  auto result = runtime.Execute(query, data, Policy("LA"));
  ASSERT_TRUE(result.ok());
  ASSERT_FALSE(result->rows.empty());
  for (const auto& row : result->rows) {
    ASSERT_EQ(row.size(), 2u);
    EXPECT_EQ(expr::TypeOf(row[0]), expr::ValueType::kInt64);
    EXPECT_EQ(expr::TypeOf(row[1]), expr::ValueType::kString);
  }
}

TEST_F(LocalRuntimeTest, FullScanWithoutLimitReturnsAllMatches) {
  auto data = MakeData(8, 2500, 0.01, 1.0);  // 200 matching
  auto query = Compile("SELECT ORDERKEY FROM lineitem WHERE DISCOUNT > 0.10");
  LocalRuntime runtime({.num_threads = 4});
  auto result = runtime.Execute(query, data, Policy("LA"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 200u);
  EXPECT_EQ(result->partitions_processed, 8);
}

TEST_F(LocalRuntimeTest, NoWhereClauseSamplesAnything) {
  auto data = MakeData(4, 1000, 0.0, 0.0);
  auto query = Compile("SELECT ORDERKEY FROM lineitem LIMIT 7");
  LocalRuntime runtime({.num_threads = 2});
  auto result = runtime.Execute(query, data, Policy("LA"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 7u);
  EXPECT_LT(result->partitions_processed, 4);  // one partition suffices
}

TEST_F(LocalRuntimeTest, SelectivityEstimateConvergesOnUniformData) {
  auto data = MakeData(16, 20000, 0.002, 0.0);
  auto query =
      Compile("SELECT ORDERKEY FROM lineitem WHERE QUANTITY > 50 LIMIT 200");
  LocalRuntime runtime({.num_threads = 4});
  auto result = runtime.Execute(query, data, Policy("C"));
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->rows.size(), 200u);
  EXPECT_NEAR(result->estimated_selectivity, 0.002, 0.001);
}

TEST_F(LocalRuntimeTest, ReservoirModeStillSatisfiesPredicate) {
  auto data = MakeData(10, 5000, 0.01, 1.0);
  auto query =
      Compile("SELECT * FROM lineitem WHERE DISCOUNT > 0.10 LIMIT 40");
  LocalRuntime runtime(
      {.num_threads = 4, .sample_mode = sampling::SampleMode::kReservoir});
  auto result = runtime.Execute(query, data, Policy("MA"));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->rows.size(), 40u);
  for (const auto& row : result->rows) {
    EXPECT_TRUE(*expr::EvaluatePredicate(*query.predicate,
                                         tpch::LineItemSchema(), row));
  }
}

TEST_F(LocalRuntimeTest, DeterministicForSeed) {
  auto data = MakeData(10, 2000, 0.01, 1.0);
  auto query =
      Compile("SELECT ORDERKEY FROM lineitem WHERE DISCOUNT > 0.10 LIMIT 30");
  LocalRuntime a({.num_threads = 3, .seed = 99});
  LocalRuntime b({.num_threads = 3, .seed = 99});
  auto ra = a.Execute(query, data, Policy("LA"));
  auto rb = b.Execute(query, data, Policy("LA"));
  ASSERT_TRUE(ra.ok());
  ASSERT_TRUE(rb.ok());
  ASSERT_EQ(ra->rows.size(), rb->rows.size());
  EXPECT_EQ(ra->partitions_processed, rb->partitions_processed);
  for (size_t i = 0; i < ra->rows.size(); ++i) {
    EXPECT_EQ(std::get<int64_t>(ra->rows[i][0]),
              std::get<int64_t>(rb->rows[i][0]));
  }
}

class LocalPolicySweepTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LocalPolicySweepTest, EveryPolicyDeliversTheSample) {
  tpch::SkewSpec spec;
  spec.num_partitions = 12;
  spec.records_per_partition = 5000;
  spec.selectivity = 0.01;
  spec.zipf_z = 2.0;
  spec.seed = 31;
  auto data = *tpch::MaterializeDataset(spec);

  hive::HiveCompiler compiler(&tpch::LineItemSchema(),
                              &dynamic::PolicyTable::BuiltIn());
  auto compiled =
      compiler.Process("SELECT * FROM lineitem WHERE TAX > 0.08 LIMIT 150");
  ASSERT_TRUE(compiled.ok());
  LocalRuntime runtime({.num_threads = 4});
  auto policy = *dynamic::PolicyTable::BuiltIn().Find(GetParam());
  auto result = runtime.Execute(*compiled->query, data, policy);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->rows.size(), 150u);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, LocalPolicySweepTest,
                         ::testing::Values("Hadoop", "HA", "MA", "LA", "C"));

}  // namespace
}  // namespace dmr::exec
