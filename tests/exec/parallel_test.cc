#include "exec/parallel.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "dynamic/growth_policy.h"
#include "sampling/sampling_job.h"
#include "sim/simulation.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr::exec {
namespace {

TEST(ThreadPoolTest, RunsEverySubmittedTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusableAcrossBatches) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  for (int batch = 0; batch < 3; ++batch) {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
    EXPECT_EQ(count.load(), (batch + 1) * 10);
  }
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();  // nothing submitted
}

TEST(ThreadPoolTest, BoundedQueueAppliesBackpressureWithoutDeadlock) {
  ThreadPool pool(2, /*queue_capacity=*/4);
  std::atomic<int> count{0};
  for (int i = 0; i < 200; ++i) {
    pool.Submit([&count] {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
      count.fetch_add(1, std::memory_order_relaxed);
    });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  }
  EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPoolTest, HardwareThreadsHonorsEnvOverride) {
  ::setenv("DMR_THREADS", "3", 1);
  EXPECT_EQ(ThreadPool::HardwareThreads(), 3);
  ::setenv("DMR_THREADS", "not-a-number", 1);
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
  ::unsetenv("DMR_THREADS");
  EXPECT_GE(ThreadPool::HardwareThreads(), 1);
}

TEST(ParallelForTest, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  Status status = ParallelFor(&pool, hits.size(), [&](size_t i) {
    hits[i].fetch_add(1);
    return Status::OK();
  });
  EXPECT_TRUE(status.ok());
  for (const auto& hit : hits) EXPECT_EQ(hit.load(), 1);
}

TEST(ParallelForTest, ZeroCellsIsOk) {
  ThreadPool pool(2);
  Status status =
      ParallelFor(&pool, 0, [](size_t) { return Status::OK(); });
  EXPECT_TRUE(status.ok());
}

TEST(ParallelForTest, ReportsLowestIndexError) {
  ThreadPool pool(4);
  Status status = ParallelFor(&pool, 100, [&](size_t i) -> Status {
    if (i % 7 == 3) {
      return Status::Internal("cell " + std::to_string(i) + " failed");
    }
    return Status::OK();
  });
  ASSERT_FALSE(status.ok());
  // Lowest failing index is 3, regardless of completion order.
  EXPECT_EQ(status.message(), "cell 3 failed");
}

TEST(ParallelMapTest, PreservesIndexOrder) {
  ThreadPool pool(4);
  auto result = ParallelMap<int>(&pool, 500, [](size_t i) {
    return Result<int>(static_cast<int>(i * i));
  });
  ASSERT_TRUE(result.ok());
  const std::vector<int>& values = *result;
  ASSERT_EQ(values.size(), 500u);
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(values[i], static_cast<int>(i * i));
  }
}

TEST(ParallelMapTest, PropagatesFirstErrorByIndex) {
  ThreadPool pool(4);
  auto result = ParallelMap<int>(&pool, 50, [](size_t i) -> Result<int> {
    if (i >= 10) return Status::InvalidArgument("bad " + std::to_string(i));
    return static_cast<int>(i);
  });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().message(), "bad 10");
}

TEST(ParallelGridTest, ShapesResultsAsRowsByColumns) {
  ThreadPool pool(4);
  auto result = ParallelGrid<std::string>(
      &pool, 3, 4, [](size_t row, size_t col) {
        return Result<std::string>(std::to_string(row) + ":" +
                                   std::to_string(col));
      });
  ASSERT_TRUE(result.ok());
  const auto& grid = *result;
  ASSERT_EQ(grid.size(), 3u);
  for (size_t r = 0; r < 3; ++r) {
    ASSERT_EQ(grid[r].size(), 4u);
    for (size_t c = 0; c < 4; ++c) {
      EXPECT_EQ(grid[r][c], std::to_string(r) + ":" + std::to_string(c));
    }
  }
}

// --- Determinism regression: the harness contract ---
// Each cell builds its own Simulation, so a grid must produce byte-identical
// results no matter how many worker threads execute it.

std::string RunSamplingCell(const std::string& policy_name, double z) {
  testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
  auto dataset = testbed::MakeLineItemDataset(&bed.fs(), /*scale=*/5, z,
                                              /*seed=*/424242);
  if (!dataset.ok()) return "dataset error";
  auto policy = dynamic::PolicyTable::BuiltIn().Find(policy_name);
  if (!policy.ok()) return "policy error";
  sampling::SamplingJobOptions options;
  options.job_name = "determinism-" + policy_name;
  options.sample_size = tpch::kPaperSampleSize;
  options.seed = 31337;
  auto submission = sampling::MakeSamplingJob(
      dataset->file, dataset->matching_per_partition, *policy, options);
  if (!submission.ok()) return "job error";
  auto stats = bed.RunJobToCompletion(std::move(*submission));
  if (!stats.ok()) return "run error";
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%.17g|%llu|%llu",
                stats->response_time(),
                static_cast<unsigned long long>(stats->splits_processed),
                static_cast<unsigned long long>(stats->input_increments));
  return buf;
}

TEST(ParallelDeterminismTest, GridIsByteIdenticalAcrossThreadCounts) {
  const std::vector<std::string> policies = {"HA", "C"};
  const std::vector<double> zs = {0.0, 2.0};
  auto run_grid = [&](int threads) {
    ThreadPool pool(threads);
    auto grid = ParallelGrid<std::string>(
        &pool, policies.size(), zs.size(), [&](size_t p, size_t z) {
          return Result<std::string>(RunSamplingCell(policies[p], zs[z]));
        });
    std::string flat;
    EXPECT_TRUE(grid.ok());
    for (const auto& row : *grid) {
      for (const auto& cell : row) flat += cell + "\n";
    }
    return flat;
  };
  std::string serial = run_grid(1);
  std::string parallel4 = run_grid(4);
  std::string parallel7 = run_grid(7);
  EXPECT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel4);
  EXPECT_EQ(serial, parallel7);
  // And the cells are genuinely distinct experiments.
  EXPECT_NE(serial.substr(0, serial.find('\n')),
            serial.substr(serial.rfind('|')));
}

}  // namespace
}  // namespace dmr::exec
