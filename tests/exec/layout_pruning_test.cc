/// \file
/// Differential tests for the adaptive-layout path (DESIGN.md §16): zone-map
/// pruning and piggybacked indexing must be invisible to everything except
/// physical cost. A 200-case seeded fuzzer compares pruned and unpruned runs
/// of both engines, in both trim modes, against the interpreted oracle; a
/// dedicated test pins down that a repeated predicate is strictly cheaper
/// once the piggybacked index has landed.

#include <iterator>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "exec/layout_catalog.h"
#include "exec/local_runtime.h"
#include "exec/vectorized.h"
#include "hive/compiler.h"
#include "tpch/dataset_catalog.h"
#include "tpch/generator.h"
#include "tpch/lineitem.h"

namespace dmr::exec {
namespace {

class LayoutPruningTest : public ::testing::Test {
 protected:
  LayoutPruningTest()
      : compiler_(&tpch::LineItemSchema(), &dynamic::PolicyTable::BuiltIn()) {}

  tpch::MaterializedDataset MakeData(int partitions, uint64_t records,
                                     double selectivity, double z,
                                     uint64_t seed) {
    tpch::SkewSpec spec;
    spec.num_partitions = partitions;
    spec.records_per_partition = records;
    spec.selectivity = selectivity;
    spec.zipf_z = z;
    spec.seed = seed;
    auto dataset = tpch::MaterializeDataset(spec);
    EXPECT_TRUE(dataset.ok()) << dataset.status().ToString();
    return *std::move(dataset);
  }

  hive::CompiledQuery Compile(const std::string& sql) {
    auto result = compiler_.Process(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result->query;
  }

  dynamic::GrowthPolicy Policy(const char* name) {
    return *dynamic::PolicyTable::BuiltIn().Find(name);
  }

  hive::HiveCompiler compiler_;
};

/// Expects two runs to agree on everything the pruning contract freezes:
/// the exact result rows (values and order), the logical record counters
/// and the provider behaviour — only physical-cost counters may differ.
void ExpectSameOutcome(const LocalRunResult& a, const LocalRunResult& b,
                       const std::string& what) {
  EXPECT_EQ(a.rows, b.rows) << what;
  EXPECT_EQ(a.records_scanned, b.records_scanned) << what;
  EXPECT_EQ(a.candidate_records, b.candidate_records) << what;
  EXPECT_EQ(a.partitions_processed, b.partitions_processed) << what;
  EXPECT_EQ(a.provider_rounds, b.provider_rounds) << what;
}

/// 200 seeded random cases: dataset shape x suite predicate x LIMIT x trim
/// mode. For each case the interpreted engine is the oracle; the vectorized
/// engine must reproduce it unpruned, pruned-first (fresh catalog, indexes
/// registered) and pruned-repeated (catalog warm, indexes consulted).
TEST_F(LayoutPruningTest, DifferentialFuzzPrunedVsOracle) {
  // Predicates over every zone-map slot kind the compiler prunes with:
  // int64, double, date and dictionary columns, plus compound shapes.
  const char* predicates[] = {
      "QUANTITY > 50",
      "DISCOUNT > 0.10",
      "TAX > 0.08",
      "QUANTITY > 30 AND DISCOUNT > 0.05",
      "QUANTITY > 62 OR TAX > 0.07",
      "SHIPDATE > '1998-09-01'",
      "RETURNFLAG = 'Z'",
      "QUANTITY BETWEEN 48 AND 50 AND TAX > 0.05",
      "EXTENDEDPRICE > 90000.0",
      "LINENUMBER IN (8, 9)",
  };
  Rng rng(0xD1CE5EEDULL);
  for (int c = 0; c < 200; ++c) {
    const int partitions = static_cast<int>(rng.NextInRange(1, 5));
    const uint64_t records = static_cast<uint64_t>(rng.NextInRange(64, 2500));
    const double selectivity = 0.02 * rng.NextDouble();
    const double z = static_cast<double>(rng.NextBounded(3));
    const uint64_t data_seed = rng.Next();
    const char* pred = predicates[rng.NextBounded(std::size(predicates))];
    const uint64_t limit = rng.NextBounded(4) == 0
                               ? 0  // full select-project scan
                               : static_cast<uint64_t>(
                                     rng.NextInRange(1, 150));
    const uint64_t run_seed = rng.Next();
    const sampling::SampleMode mode = rng.NextBounded(2) == 0
                                          ? sampling::SampleMode::kFirstK
                                          : sampling::SampleMode::kReservoir;

    std::string sql = std::string("SELECT * FROM lineitem WHERE ") + pred;
    if (limit > 0) sql += " LIMIT " + std::to_string(limit);
    SCOPED_TRACE("case " + std::to_string(c) + ": " + sql + " over " +
                 std::to_string(partitions) + "x" + std::to_string(records) +
                 " z=" + std::to_string(z));

    auto data = MakeData(partitions, records, selectivity, z, data_seed);
    auto query = Compile(sql);
    auto policy = Policy("LA");

    LocalRunOptions base;
    base.num_threads = 2;
    base.seed = run_seed;
    base.sample_mode = mode;

    LocalRunOptions interpreted = base;
    interpreted.engine = Engine::kInterpreted;
    auto oracle = LocalRuntime(interpreted).Execute(query, data, policy);
    ASSERT_TRUE(oracle.ok()) << oracle.status().ToString();

    LocalRunOptions vectorized = base;
    vectorized.engine = Engine::kVectorized;
    auto unpruned = LocalRuntime(vectorized).Execute(query, data, policy);
    ASSERT_TRUE(unpruned.ok()) << unpruned.status().ToString();
    ExpectSameOutcome(*oracle, *unpruned, "vectorized vs oracle");

    LayoutCatalog catalog;
    LocalRunOptions pruned = vectorized;
    pruned.zone_map_pruning = true;
    pruned.layout_catalog = &catalog;
    auto first = LocalRuntime(pruned).Execute(query, data, policy);
    ASSERT_TRUE(first.ok()) << first.status().ToString();
    ExpectSameOutcome(*oracle, *first, "pruned-first vs oracle");

    auto repeated = LocalRuntime(pruned).Execute(query, data, policy);
    ASSERT_TRUE(repeated.ok()) << repeated.status().ToString();
    ExpectSameOutcome(*oracle, *repeated, "pruned-repeated vs oracle");
    // Whatever the index skipped must never exceed what exists, and the
    // logical counters must not notice the physical savings.
    EXPECT_LE(repeated->rows_physically_scanned,
              repeated->records_scanned);
  }
}

/// Once the first scan has piggybacked the per-batch index, a repeated
/// low-selectivity predicate must get strictly cheaper: fewer rows
/// physically scanned, with the index consulted — and identical output.
TEST_F(LayoutPruningTest, RepeatedPredicateStrictlyCheaperAfterIndexLands) {
  auto data = MakeData(8, 5000, 0.001, 1.0, /*seed=*/20120402);
  auto query = Compile(
      "SELECT * FROM lineitem WHERE DISCOUNT > 0.10 LIMIT 50");
  auto policy = Policy("LA");

  LayoutCatalog catalog;
  LocalRunOptions options;
  options.num_threads = 2;
  options.engine = Engine::kVectorized;
  options.zone_map_pruning = true;
  options.layout_catalog = &catalog;

  auto first = LocalRuntime(options).Execute(query, data, policy);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_GT(first->index_builds, 0u);
  EXPECT_EQ(first->index_hits, 0u);

  auto repeated = LocalRuntime(options).Execute(query, data, policy);
  ASSERT_TRUE(repeated.ok()) << repeated.status().ToString();
  ExpectSameOutcome(*first, *repeated, "repeated vs first");
  EXPECT_GT(repeated->index_hits, 0u);
  EXPECT_EQ(repeated->index_builds, 0u);
  EXPECT_LT(repeated->rows_physically_scanned,
            first->rows_physically_scanned);
  EXPECT_GT(repeated->batches_pruned, 0u);
}

/// BuildZoneMap's column-major fold must agree exactly with the
/// incrementally maintained partition-level map (the row-major fold).
TEST_F(LayoutPruningTest, ColumnMajorBuildMatchesIncrementalMap) {
  auto data = MakeData(1, 3000, 0.01, 0.0, /*seed=*/99);
  const tpch::ColumnarPartition& part = data.columnar[0];
  const tpch::ZoneMap& incremental = part.zone_map();
  tpch::ZoneMap rebuilt = part.BuildZoneMap(0, part.num_rows());
  for (int s = 0; s < tpch::ZoneMap::kI64Slots; ++s) {
    EXPECT_EQ(rebuilt.i64_min[s], incremental.i64_min[s]);
    EXPECT_EQ(rebuilt.i64_max[s], incremental.i64_max[s]);
  }
  for (int s = 0; s < tpch::ZoneMap::kF64Slots; ++s) {
    EXPECT_EQ(rebuilt.f64_min[s], incremental.f64_min[s]);
    EXPECT_EQ(rebuilt.f64_max[s], incremental.f64_max[s]);
  }
  for (int s = 0; s < tpch::ZoneMap::kDateSlots; ++s) {
    EXPECT_EQ(rebuilt.date_min[s], incremental.date_min[s]);
    EXPECT_EQ(rebuilt.date_max[s], incremental.date_max[s]);
  }
  for (int s = 0; s < tpch::ZoneMap::kDictSlots; ++s) {
    EXPECT_EQ(rebuilt.dict_present[s], incremental.dict_present[s]);
  }
}

/// A column-subset map stays sound for predicates over other columns: the
/// unfolded slots are invalid and the evaluator must answer kMaybe, never
/// a false kNoMatch/kAllMatch.
TEST_F(LayoutPruningTest, SubsetZoneMapIsSoundForOtherPredicates) {
  auto data = MakeData(1, 2048, 0.01, 0.0, /*seed=*/7);
  const tpch::ColumnarPartition& part = data.columnar[0];

  auto quantity_query = Compile(
      "SELECT * FROM lineitem WHERE QUANTITY < 1000 LIMIT 5");
  auto program = PredicateProgram::Compile(*quantity_query.predicate);
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  // Fold only the columns a DISCOUNT predicate consults.
  auto discount_query = Compile(
      "SELECT * FROM lineitem WHERE DISCOUNT > 0.10 LIMIT 5");
  auto discount_program = PredicateProgram::Compile(
      *discount_query.predicate);
  ASSERT_TRUE(discount_program.ok());
  tpch::ZoneMap subset = part.BuildZoneMap(
      0, part.num_rows(), discount_program->ZoneMapColumnsUsed());

  // Every QUANTITY is far below 1000, so against a full map the verdict is
  // decidable (kAllMatch); against the subset map its slot is invalid and
  // the evaluator must refuse to decide.
  BoundPredicate bound(&*program, &part);
  EXPECT_EQ(bound.EvaluateZoneMap(part.zone_map()), PruneVerdict::kAllMatch);
  EXPECT_EQ(bound.EvaluateZoneMap(subset), PruneVerdict::kMaybe);

  // The subset map still decides for its own predicate exactly as the full
  // map does.
  BoundPredicate discount_bound(&*discount_program, &part);
  EXPECT_EQ(discount_bound.EvaluateZoneMap(subset),
            discount_bound.EvaluateZoneMap(part.zone_map()));
}

}  // namespace
}  // namespace dmr::exec
