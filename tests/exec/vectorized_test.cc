/// \file
/// Differential tests for the vectorized predicate engine: the interpreted
/// evaluator is the oracle. Covers the hand-written kernel matrix, LIKE
/// edge patterns, a seeded expression fuzzer (200 randomized well-typed
/// predicates), engine parity through LocalRuntime, the positional
/// reducer, the batch mapper, and the memoized dataset cache under
/// concurrency (suite names carry "Vectorized" so the TSan preset picks
/// them up).

#include "exec/vectorized.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/random.h"
#include "exec/local_runtime.h"
#include "exec/parallel.h"
#include "expr/expression.h"
#include "hive/compiler.h"
#include "sampling/sampler.h"
#include "tpch/columnar.h"
#include "tpch/generator.h"
#include "tpch/lineitem.h"
#include "tpch/predicates.h"

namespace dmr::exec {
namespace {

using expr::Bin;
using expr::BinaryOp;
using expr::Col;
using expr::ExprPtr;
using expr::Lit;
using expr::Value;

ExprPtr Like(ExprPtr operand, std::string pattern, bool negated = false) {
  return std::make_shared<expr::LikeExpr>(std::move(operand),
                                          std::move(pattern), negated);
}

ExprPtr Between(ExprPtr operand, ExprPtr lo, ExprPtr hi) {
  return std::make_shared<expr::BetweenExpr>(std::move(operand),
                                             std::move(lo), std::move(hi));
}

ExprPtr In(ExprPtr operand, std::vector<ExprPtr> candidates) {
  return std::make_shared<expr::InExpr>(std::move(operand),
                                        std::move(candidates));
}

ExprPtr Not(ExprPtr operand) {
  return std::make_shared<expr::NotExpr>(std::move(operand));
}

/// A small partition with both matching and non-matching rows of the suite
/// predicate, so comparisons see both outcomes.
class VectorizedParityTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    tpch::LineItemGenerator gen(20120402);
    rows_ = new std::vector<tpch::LineItemRow>(
        *gen.GeneratePartition(512, 32, tpch::PredicateSuite()[0]));
    partition_ = new tpch::ColumnarPartition(
        *tpch::ColumnarPartition::FromRows(*rows_));
    tuples_ = new std::vector<expr::Tuple>();
    tuples_->reserve(rows_->size());
    for (const auto& row : *rows_) tuples_->push_back(tpch::ToTuple(row));
  }

  static void TearDownTestSuite() {
    delete rows_;
    delete partition_;
    delete tuples_;
    rows_ = nullptr;
    partition_ = nullptr;
    tuples_ = nullptr;
  }

  /// Evaluates `e` per row with the interpreter and over the partition with
  /// the compiled program, and requires identical outcomes — identical
  /// match lists when both succeed, or failure on both sides.
  void ExpectParity(const ExprPtr& e) {
    SCOPED_TRACE(e->ToString());
    std::vector<uint32_t> expected;
    bool interp_failed = false;
    const auto& schema = tpch::LineItemSchema();
    for (uint32_t i = 0; i < tuples_->size(); ++i) {
      auto v = expr::EvaluatePredicate(*e, schema, (*tuples_)[i]);
      if (!v.ok()) {
        interp_failed = true;
        break;
      }
      if (*v) expected.push_back(i);
    }
    auto compiled = PredicateProgram::Compile(*e);
    if (!compiled.ok()) {
      // The documented deviation: the vectorized engine rejects ill-typed
      // expressions at compile time, which the interpreter only notices on
      // the rows it evaluates. A compile rejection is only acceptable when
      // the interpreter failed too.
      EXPECT_TRUE(interp_failed)
          << "vectorized rejected what the interpreter accepts: "
          << compiled.status().ToString();
      return;
    }
    auto program = std::move(compiled).ValueUnsafe();
    BoundPredicate bound(&program, partition_);
    std::vector<uint32_t> actual;
    Status status = bound.FilterAll(&actual);
    if (interp_failed) {
      EXPECT_FALSE(status.ok())
          << "interpreter failed but the vectorized engine succeeded";
      return;
    }
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(actual, expected);
  }

  static std::vector<tpch::LineItemRow>* rows_;
  static tpch::ColumnarPartition* partition_;
  static std::vector<expr::Tuple>* tuples_;
};

std::vector<tpch::LineItemRow>* VectorizedParityTest::rows_ = nullptr;
tpch::ColumnarPartition* VectorizedParityTest::partition_ = nullptr;
std::vector<expr::Tuple>* VectorizedParityTest::tuples_ = nullptr;

TEST_F(VectorizedParityTest, SuitePredicatesMatchInterpreter) {
  for (const auto& pred : tpch::PredicateSuite()) {
    ExpectParity(pred.predicate);
  }
}

TEST_F(VectorizedParityTest, NumericComparisonsAllOpsAndKinds) {
  const BinaryOp cmps[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                           BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
  for (BinaryOp cmp : cmps) {
    ExpectParity(Bin(cmp, Col("QUANTITY"), Lit(Value(int64_t{25}))));
    ExpectParity(Bin(cmp, Col("DISCOUNT"), Lit(Value(0.05))));
    ExpectParity(Bin(cmp, Lit(Value(int64_t{25})), Col("QUANTITY")));
    // int column vs double literal exercises the coercion path.
    ExpectParity(Bin(cmp, Col("QUANTITY"), Lit(Value(25.5))));
    // Column vs column, same and mixed kinds.
    ExpectParity(Bin(cmp, Col("QUANTITY"), Col("LINENUMBER")));
    ExpectParity(Bin(cmp, Col("DISCOUNT"), Col("TAX")));
    ExpectParity(Bin(cmp, Col("QUANTITY"), Col("TAX")));
  }
}

TEST_F(VectorizedParityTest, StringAndDateComparisons) {
  const BinaryOp cmps[] = {BinaryOp::kEq, BinaryOp::kNe, BinaryOp::kLt,
                           BinaryOp::kLe, BinaryOp::kGt, BinaryOp::kGe};
  for (BinaryOp cmp : cmps) {
    ExpectParity(Bin(cmp, Col("RETURNFLAG"), Lit(Value(std::string("R")))));
    ExpectParity(Bin(cmp, Lit(Value(std::string("AIR"))), Col("SHIPMODE")));
    ExpectParity(
        Bin(cmp, Col("SHIPDATE"), Lit(Value(std::string("1995-06-17")))));
    // Column vs column across dictionaries and dates.
    ExpectParity(Bin(cmp, Col("RETURNFLAG"), Col("LINESTATUS")));
    ExpectParity(Bin(cmp, Col("SHIPDATE"), Col("RECEIPTDATE")));
    ExpectParity(Bin(cmp, Col("SHIPMODE"), Col("SHIPDATE")));
  }
  // A literal that is not canonical 'YYYY-MM-DD' cannot use the packed
  // fast path; the generic string kernel must agree with the interpreter.
  ExpectParity(Bin(BinaryOp::kGt, Col("SHIPDATE"),
                   Lit(Value(std::string("1995-6")))));
  ExpectParity(Bin(BinaryOp::kNe, Col("SHIPDATE"), Lit(Value(std::string("")))));
}

TEST_F(VectorizedParityTest, ArithmeticAndNegation) {
  ExpectParity(Bin(BinaryOp::kGt,
                   Bin(BinaryOp::kAdd, Bin(BinaryOp::kMul, Col("QUANTITY"),
                                           Lit(Value(int64_t{2}))),
                       Lit(Value(int64_t{1}))),
                   Lit(Value(int64_t{60}))));
  ExpectParity(Bin(BinaryOp::kLt,
                   Bin(BinaryOp::kSub, Col("EXTENDEDPRICE"),
                       Bin(BinaryOp::kMul, Col("TAX"), Lit(Value(1000.0)))),
                   Lit(Value(20000.0))));
  ExpectParity(Bin(BinaryOp::kGt,
                   Bin(BinaryOp::kDiv, Col("QUANTITY"), Lit(Value(2.0))),
                   Col("LINENUMBER")));
  ExpectParity(Bin(BinaryOp::kLt,
                   std::make_shared<expr::NegateExpr>(Col("QUANTITY")),
                   Lit(Value(int64_t{-25}))));
  ExpectParity(Bin(BinaryOp::kGe,
                   Bin(BinaryOp::kAdd, Col("DISCOUNT"), Col("TAX")),
                   Lit(Value(0.1))));
}

TEST_F(VectorizedParityTest, LogicShortCircuitAndNot) {
  ExprPtr cheap = Bin(BinaryOp::kGt, Col("QUANTITY"), Lit(Value(int64_t{25})));
  ExprPtr mid = Bin(BinaryOp::kLt, Col("DISCOUNT"), Lit(Value(0.05)));
  ExprPtr rare = Bin(BinaryOp::kEq, Col("RETURNFLAG"),
                     Lit(Value(std::string("R"))));
  ExpectParity(Bin(BinaryOp::kAnd, cheap, mid));
  ExpectParity(Bin(BinaryOp::kOr, cheap, mid));
  ExpectParity(Bin(BinaryOp::kAnd, Bin(BinaryOp::kOr, cheap, rare),
                   Bin(BinaryOp::kAnd, mid, Not(rare))));
  ExpectParity(Not(Bin(BinaryOp::kOr, Not(cheap), Not(mid))));
  // Literal sides: the interpreter short-circuits without evaluating the
  // other operand; the compiler prunes the same way.
  ExpectParity(Bin(BinaryOp::kAnd, Lit(Value(false)), cheap));
  ExpectParity(Bin(BinaryOp::kAnd, Lit(Value(true)), cheap));
  ExpectParity(Bin(BinaryOp::kOr, Lit(Value(true)), rare));
  ExpectParity(Bin(BinaryOp::kOr, Lit(Value(false)), rare));
  // Comparing boolean sub-results exercises the kCmpBool kernel.
  ExpectParity(Bin(BinaryOp::kEq, cheap, mid));
  ExpectParity(Bin(BinaryOp::kNe, cheap, rare));
}

TEST_F(VectorizedParityTest, BetweenOnEveryOperandKind) {
  ExpectParity(Between(Col("QUANTITY"), Lit(Value(int64_t{10})),
                       Lit(Value(int64_t{20}))));
  ExpectParity(Between(Col("DISCOUNT"), Lit(Value(0.02)), Lit(Value(0.07))));
  ExpectParity(Between(Col("SHIPDATE"), Lit(Value(std::string("1994-01-01"))),
                       Lit(Value(std::string("1995-12-31")))));
  ExpectParity(Between(Col("SHIPMODE"), Lit(Value(std::string("AIR"))),
                       Lit(Value(std::string("RAIL")))));
  // Empty range: lower bound above upper bound.
  ExpectParity(Between(Col("QUANTITY"), Lit(Value(int64_t{30})),
                       Lit(Value(int64_t{10}))));
  // Computed operand.
  ExpectParity(Between(Bin(BinaryOp::kMul, Col("QUANTITY"),
                           Lit(Value(int64_t{2}))),
                       Lit(Value(int64_t{20})), Lit(Value(int64_t{40}))));
}

TEST_F(VectorizedParityTest, InListsAcrossKinds) {
  ExpectParity(In(Col("QUANTITY"), {Lit(Value(int64_t{1})),
                                    Lit(Value(int64_t{25})),
                                    Lit(Value(int64_t{50}))}));
  ExpectParity(In(Col("DISCOUNT"), {Lit(Value(0.0)), Lit(Value(0.05))}));
  // Mixed numeric candidate kinds against an int column.
  ExpectParity(In(Col("QUANTITY"), {Lit(Value(25.0)), Lit(Value(int64_t{30}))}));
  ExpectParity(In(Col("SHIPMODE"), {Lit(Value(std::string("AIR"))),
                                    Lit(Value(std::string("RAIL"))),
                                    Lit(Value(std::string("TRUCK")))}));
  ExpectParity(In(Col("SHIPDATE"), {Lit(Value(std::string("1994-01-01"))),
                                    Lit(Value(std::string("1995-06-17")))}));
  // Non-canonical date candidates can never equal a stored canonical date;
  // both engines must agree they contribute nothing.
  ExpectParity(In(Col("SHIPDATE"), {Lit(Value(std::string("1995-6-17"))),
                                    Lit(Value(std::string("")))}));
  // Empty list is constant false.
  ExpectParity(In(Col("QUANTITY"), {}));
  // A column-dependent candidate forces the OR-chain fallback.
  ExpectParity(In(Col("QUANTITY"), {Lit(Value(int64_t{5})),
                                    Col("LINENUMBER")}));
}

TEST_F(VectorizedParityTest, LikeEdgePatterns) {
  const char* dict_patterns[] = {"%%", "",   "_",    "%",     "R",
                                 "R%", "%R", "_IR",  "AI_",   "%A%",
                                 "%_", "__", "TRUCK", "%RUCK", "T%K"};
  for (const char* pattern : dict_patterns) {
    ExpectParity(Like(Col("SHIPMODE"), pattern));
    ExpectParity(Like(Col("SHIPMODE"), pattern, /*negated=*/true));
    ExpectParity(Like(Col("RETURNFLAG"), pattern));
  }
  const char* date_patterns[] = {"%%", "", "_", "199%", "%-06-%",
                                 "____-__-__", "1994-__-1_", "%7"};
  for (const char* pattern : date_patterns) {
    ExpectParity(Like(Col("SHIPDATE"), pattern));
    ExpectParity(Like(Col("SHIPDATE"), pattern, /*negated=*/true));
  }
}

TEST_F(VectorizedParityTest, DivisionByZeroFailsOnBothEngines) {
  // Column-dependent zero denominator: every evaluated lane divides by
  // zero, which the interpreter reports per row and the vectorized engine
  // reports from the batch kernel.
  ExpectParity(Bin(BinaryOp::kGt,
                   Bin(BinaryOp::kDiv, Col("QUANTITY"),
                       Bin(BinaryOp::kSub, Col("QUANTITY"), Col("QUANTITY"))),
                   Lit(Value(1.0))));
}

TEST_F(VectorizedParityTest, FilterRangeMatchesFilterAllSlice) {
  const auto& pred = tpch::PredicateSuite()[0];
  auto program =
      std::move(PredicateProgram::Compile(*pred.predicate)).ValueUnsafe();
  BoundPredicate bound(&program, partition_);
  std::vector<uint32_t> all;
  ASSERT_TRUE(bound.FilterAll(&all).ok());
  // A range crossing batch boundaries selects exactly the slice of `all`.
  const uint32_t begin = 100, end = 400;
  std::vector<uint32_t> ranged;
  ASSERT_TRUE(bound.FilterRange(begin, end, &ranged).ok());
  std::vector<uint32_t> expected;
  for (uint32_t row : all) {
    if (row >= begin && row < end) expected.push_back(row);
  }
  EXPECT_EQ(ranged, expected);
}

TEST(VectorizedCompileTest, RejectsIllTypedAndUnknownColumns) {
  // Unknown column.
  EXPECT_FALSE(PredicateProgram::Compile(
                   *Bin(BinaryOp::kGt, Col("NO_SUCH_COLUMN"),
                        Lit(Value(int64_t{1}))))
                   .ok());
  // Number vs string comparison is a static type error.
  EXPECT_FALSE(PredicateProgram::Compile(
                   *Bin(BinaryOp::kGt, Col("QUANTITY"),
                        Lit(Value(std::string("abc")))))
                   .ok());
  // Arithmetic on a string column cannot be coerced.
  EXPECT_FALSE(PredicateProgram::Compile(
                   *Bin(BinaryOp::kGt,
                        Bin(BinaryOp::kAdd, Col("SHIPMODE"),
                            Lit(Value(int64_t{1}))),
                        Lit(Value(int64_t{1}))))
                   .ok());
  // A numeric root is not a predicate.
  EXPECT_FALSE(PredicateProgram::Compile(
                   *Bin(BinaryOp::kAdd, Col("QUANTITY"),
                        Lit(Value(int64_t{1}))))
                   .ok());
}

TEST(VectorizedCompileTest, SuiteProgramsCompileAndDisassemble) {
  for (const auto& pred : tpch::PredicateSuite()) {
    auto program = PredicateProgram::Compile(*pred.predicate);
    ASSERT_TRUE(program.ok()) << pred.sql;
    EXPECT_GT(program->num_instructions(), 0u);
    EXPECT_FALSE(program->ToString().empty());
  }
}

/// Generates random well-typed predicates over LINEITEM. Divisions only
/// ever see non-zero literal denominators and multiplications are kept
/// bounded, so no generated expression can fail at evaluation time — any
/// divergence between the engines is a real bug.
class ExprFuzzer {
 public:
  explicit ExprFuzzer(uint64_t seed) : rng_(seed) {}

  ExprPtr RandomPredicate() { return RandomBool(0); }

 private:
  ExprPtr RandomBool(int depth) {
    if (depth < 3 && rng_.NextBernoulli(0.35)) {
      ExprPtr l = RandomBool(depth + 1);
      ExprPtr r = RandomBool(depth + 1);
      switch (rng_.NextBounded(3)) {
        case 0: return Bin(BinaryOp::kAnd, std::move(l), std::move(r));
        case 1: return Bin(BinaryOp::kOr, std::move(l), std::move(r));
        default: return Not(std::move(l));
      }
    }
    switch (rng_.NextBounded(6)) {
      case 0: return NumericCompare(depth);
      case 1: return StringCompare();
      case 2: return RandomBetween();
      case 3: return RandomIn();
      case 4: return RandomLike();
      default:
        // Boolean equality over two leaf comparisons (kCmpBool kernel).
        return Bin(rng_.NextBernoulli(0.5) ? BinaryOp::kEq : BinaryOp::kNe,
                   NumericCompare(3), StringCompare());
    }
  }

  ExprPtr NumericCompare(int depth) {
    return Bin(RandomCmp(), RandomNumeric(depth), RandomNumeric(depth));
  }

  ExprPtr StringCompare() {
    int col = StringColumn();
    if (rng_.NextBernoulli(0.3)) {
      return Bin(RandomCmp(), Col(ColumnName(col)),
                 Col(ColumnName(StringColumn())));
    }
    ExprPtr lit = Lit(Value(StringLiteralFor(col)));
    if (rng_.NextBernoulli(0.5)) {
      return Bin(RandomCmp(), Col(ColumnName(col)), std::move(lit));
    }
    return Bin(RandomCmp(), std::move(lit), Col(ColumnName(col)));
  }

  ExprPtr RandomBetween() {
    if (rng_.NextBernoulli(0.6)) {
      return Between(RandomNumeric(2), NumericLiteral(), NumericLiteral());
    }
    int col = StringColumn();
    return Between(Col(ColumnName(col)), Lit(Value(StringLiteralFor(col))),
                   Lit(Value(StringLiteralFor(col))));
  }

  ExprPtr RandomIn() {
    uint64_t n = rng_.NextBounded(5);  // empty lists included
    std::vector<ExprPtr> candidates;
    if (rng_.NextBernoulli(0.6)) {
      ExprPtr operand = Col(ColumnName(NumericColumn()));
      for (uint64_t i = 0; i < n; ++i) candidates.push_back(NumericLiteral());
      if (n > 0 && rng_.NextBernoulli(0.2)) {
        // Column-dependent candidate: forces the OR-chain fallback.
        candidates.push_back(Col(ColumnName(NumericColumn())));
      }
      return In(std::move(operand), std::move(candidates));
    }
    int col = StringColumn();
    for (uint64_t i = 0; i < n; ++i) {
      candidates.push_back(Lit(Value(StringLiteralFor(col))));
    }
    return In(Col(ColumnName(col)), std::move(candidates));
  }

  ExprPtr RandomLike() {
    static const char* kPatterns[] = {
        "%%", "",   "_",    "%",    "R",     "R%",         "%R",
        "_IR", "AI_", "%A%", "%_",  "__",    "T%K",        "199%",
        "%-06-%", "____-__-__", "1994-__-1_", "%7", "%IR%", "N"};
    int col = StringColumn();
    return Like(Col(ColumnName(col)),
                kPatterns[rng_.NextBounded(std::size(kPatterns))],
                rng_.NextBernoulli(0.3));
  }

  ExprPtr RandomNumeric(int depth) {
    if (depth >= 2 || rng_.NextBernoulli(0.55)) return NumericAtom();
    switch (rng_.NextBounded(5)) {
      case 0:
        return Bin(BinaryOp::kAdd, RandomNumeric(depth + 1),
                   RandomNumeric(depth + 1));
      case 1:
        return Bin(BinaryOp::kSub, RandomNumeric(depth + 1),
                   RandomNumeric(depth + 1));
      case 2:
        // Bounded product: atom times a small literal.
        return Bin(BinaryOp::kMul, NumericAtom(),
                   Lit(Value(static_cast<int64_t>(rng_.NextInRange(1, 8)))));
      case 3:
        // Non-zero literal denominator only — division cannot fail.
        return Bin(BinaryOp::kDiv, RandomNumeric(depth + 1),
                   Lit(Value(0.5 + rng_.NextDouble() * 4.0)));
      default:
        return std::make_shared<expr::NegateExpr>(NumericAtom());
    }
  }

  ExprPtr NumericAtom() {
    if (rng_.NextBernoulli(0.6)) return Col(ColumnName(NumericColumn()));
    return NumericLiteral();
  }

  ExprPtr NumericLiteral() {
    if (rng_.NextBernoulli(0.5)) {
      return Lit(Value(static_cast<int64_t>(rng_.NextInRange(-5, 60))));
    }
    return Lit(Value(rng_.NextDouble() * 1.2));
  }

  int NumericColumn() {
    static const int kCols[] = {tpch::kOrderKey,  tpch::kPartKey,
                                tpch::kSuppKey,   tpch::kLineNumber,
                                tpch::kQuantity,  tpch::kExtendedPrice,
                                tpch::kDiscount,  tpch::kTax};
    return kCols[rng_.NextBounded(std::size(kCols))];
  }

  int StringColumn() {
    static const int kCols[] = {tpch::kReturnFlag, tpch::kLineStatus,
                                tpch::kShipDate,   tpch::kCommitDate,
                                tpch::kReceiptDate, tpch::kShipInstruct,
                                tpch::kShipMode,   tpch::kComment};
    return kCols[rng_.NextBounded(std::size(kCols))];
  }

  std::string ColumnName(int col) {
    return tpch::LineItemSchema().column(col).name;
  }

  std::string StringLiteralFor(int col) {
    switch (col) {
      case tpch::kReturnFlag: {
        static const char* kVals[] = {"R", "A", "N", "Z", ""};
        return kVals[rng_.NextBounded(std::size(kVals))];
      }
      case tpch::kLineStatus: {
        static const char* kVals[] = {"O", "F", "X"};
        return kVals[rng_.NextBounded(std::size(kVals))];
      }
      case tpch::kShipDate:
      case tpch::kCommitDate:
      case tpch::kReceiptDate: {
        // Canonical dates, non-canonical shapes and non-dates.
        static const char* kVals[] = {"1994-01-01", "1995-06-17",
                                      "1992-03-08", "1998-12-01",
                                      "1995-6-17",  "",
                                      "zzz",        "1994"};
        return kVals[rng_.NextBounded(std::size(kVals))];
      }
      case tpch::kShipMode: {
        static const char* kVals[] = {"AIR",   "RAIL", "SHIP", "TRUCK",
                                      "MAIL",  "FOB",  "REG AIR", "BARGE"};
        return kVals[rng_.NextBounded(std::size(kVals))];
      }
      case tpch::kShipInstruct: {
        static const char* kVals[] = {"DELIVER IN PERSON", "COLLECT COD",
                                      "NONE", "TAKE BACK RETURN", "??"};
        return kVals[rng_.NextBounded(std::size(kVals))];
      }
      default: {
        static const char* kVals[] = {"final", "requests", "the", ""};
        return kVals[rng_.NextBounded(std::size(kVals))];
      }
    }
  }

  BinaryOp RandomCmp() {
    static const BinaryOp kCmps[] = {BinaryOp::kEq, BinaryOp::kNe,
                                     BinaryOp::kLt, BinaryOp::kLe,
                                     BinaryOp::kGt, BinaryOp::kGe};
    return kCmps[rng_.NextBounded(std::size(kCmps))];
  }

  Rng rng_;
};

TEST_F(VectorizedParityTest, FuzzedExpressionsMatchInterpreter) {
  ExprFuzzer fuzzer(0xF022A11EDULL);
  for (int i = 0; i < 200; ++i) {
    ExprPtr e = fuzzer.RandomPredicate();
    SCOPED_TRACE("fuzz #" + std::to_string(i));
    ExpectParity(e);
  }
}

/// End-to-end parity: LocalRuntime must produce identical samples on both
/// engines, for both trim modes, on skewed data.
class VectorizedRuntimeTest : public ::testing::Test {
 protected:
  VectorizedRuntimeTest()
      : compiler_(&tpch::LineItemSchema(), &dynamic::PolicyTable::BuiltIn()) {}

  hive::CompiledQuery Compile(const std::string& sql) {
    auto result = compiler_.Process(sql);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return *result->query;
  }

  void ExpectEnginesAgree(const std::string& sql,
                          sampling::SampleMode mode) {
    tpch::SkewSpec spec;
    spec.num_partitions = 10;
    spec.records_per_partition = 4000;
    spec.selectivity = 0.01;
    spec.zipf_z = 1.0;
    spec.seed = 29;
    auto data = *tpch::MaterializeDataset(spec);
    auto query = Compile(sql);
    auto policy = *dynamic::PolicyTable::BuiltIn().Find("LA");

    LocalRuntime interpreted({.num_threads = 4,
                              .sample_mode = mode,
                              .seed = 99,
                              .engine = Engine::kInterpreted});
    LocalRuntime vectorized({.num_threads = 4,
                             .sample_mode = mode,
                             .seed = 99,
                             .engine = Engine::kVectorized});
    auto ri = interpreted.Execute(query, data, policy);
    auto rv = vectorized.Execute(query, data, policy);
    ASSERT_TRUE(ri.ok()) << ri.status().ToString();
    ASSERT_TRUE(rv.ok()) << rv.status().ToString();
    EXPECT_EQ(ri->records_scanned, rv->records_scanned);
    EXPECT_EQ(ri->candidate_records, rv->candidate_records);
    EXPECT_EQ(ri->partitions_processed, rv->partitions_processed);
    ASSERT_EQ(ri->rows.size(), rv->rows.size());
    for (size_t i = 0; i < ri->rows.size(); ++i) {
      EXPECT_EQ(ri->rows[i], rv->rows[i]) << "row " << i;
    }
  }

  hive::HiveCompiler compiler_;
};

TEST_F(VectorizedRuntimeTest, IdenticalSamplesFirstK) {
  ExpectEnginesAgree(
      "SELECT * FROM lineitem WHERE DISCOUNT > 0.10 LIMIT 100",
      sampling::SampleMode::kFirstK);
}

TEST_F(VectorizedRuntimeTest, IdenticalSamplesReservoir) {
  ExpectEnginesAgree(
      "SELECT * FROM lineitem WHERE DISCOUNT > 0.10 LIMIT 100",
      sampling::SampleMode::kReservoir);
}

TEST_F(VectorizedRuntimeTest, IdenticalProjectionAndFullScan) {
  ExpectEnginesAgree(
      "SELECT ORDERKEY, SHIPMODE FROM lineitem WHERE DISCOUNT > 0.10 LIMIT 50",
      sampling::SampleMode::kFirstK);
  ExpectEnginesAgree("SELECT ORDERKEY FROM lineitem WHERE DISCOUNT > 0.10",
                     sampling::SampleMode::kFirstK);
  ExpectEnginesAgree("SELECT ORDERKEY FROM lineitem LIMIT 9",
                     sampling::SampleMode::kFirstK);
}

TEST(VectorizedReducerTest, RefReducerSelectsSameCandidates) {
  // Feeding candidate i as both a tuple and a RowRef with the same seed
  // must select the same positions: the reservoir consumes the RNG stream
  // identically regardless of the value type.
  for (auto mode :
       {sampling::SampleMode::kFirstK, sampling::SampleMode::kReservoir}) {
    sampling::SamplingReducer tuples(25, mode, 42);
    sampling::RefSamplingReducer refs(25, mode, 42);
    for (uint32_t i = 0; i < 1000; ++i) {
      tuples.Add(expr::Tuple{expr::Value(static_cast<int64_t>(i))});
      refs.Add(sampling::RowRef{i / 100, i % 100});
    }
    EXPECT_EQ(tuples.candidates_seen(), refs.candidates_seen());
    auto tuple_sample = tuples.Finish();
    auto ref_sample = refs.Finish();
    ASSERT_EQ(tuple_sample.size(), ref_sample.size());
    for (size_t i = 0; i < tuple_sample.size(); ++i) {
      uint32_t tuple_id = static_cast<uint32_t>(
          std::get<int64_t>(tuple_sample[i][0]));
      EXPECT_EQ(tuple_id, ref_sample[i].partition * 100 + ref_sample[i].row);
    }
  }
}

TEST(VectorizedMapperTest, MapMatchesMirrorsPerRowMap) {
  const auto& pred = tpch::PredicateSuite()[0];
  tpch::LineItemGenerator gen(9);
  auto rows = *gen.GeneratePartition(400, 40, pred);
  const auto& schema = tpch::LineItemSchema();
  const uint64_t k = 25;

  sampling::SamplingMapper per_row(pred.predicate, &schema, k);
  std::vector<expr::Tuple> emitted;
  std::vector<uint32_t> match_rows;
  for (uint32_t i = 0; i < rows.size(); ++i) {
    auto matched = per_row.Map(tpch::ToTuple(rows[i]), &emitted);
    ASSERT_TRUE(matched.ok());
    if (*matched) match_rows.push_back(i);
  }

  sampling::SamplingMapper batch(nullptr, &schema, k);
  std::vector<sampling::RowRef> refs;
  batch.MapMatches(rows.size(), match_rows, /*partition=*/3, &refs);

  EXPECT_EQ(batch.records_seen(), per_row.records_seen());
  EXPECT_EQ(batch.records_matched(), per_row.records_matched());
  EXPECT_EQ(batch.emitted(), per_row.emitted());
  ASSERT_EQ(refs.size(), emitted.size());
  for (size_t i = 0; i < refs.size(); ++i) {
    EXPECT_EQ(refs[i].partition, 3u);
    EXPECT_EQ(refs[i].row, match_rows[i]);
    EXPECT_EQ(tpch::ToTuple(rows[refs[i].row]), emitted[i]);
  }
}

TEST(VectorizedCacheTest, SharedDatasetIsMemoized) {
  tpch::SkewSpec spec;
  spec.num_partitions = 3;
  spec.records_per_partition = 600;
  spec.selectivity = 0.01;
  spec.zipf_z = 1.0;
  spec.seed = 7771;
  auto first = tpch::MaterializeDatasetShared(spec);
  auto second = tpch::MaterializeDatasetShared(spec);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->get(), second->get());

  // Any key ingredient change misses the cache.
  tpch::SkewSpec other = spec;
  other.seed = 7772;
  auto third = tpch::MaterializeDatasetShared(other);
  ASSERT_TRUE(third.ok());
  EXPECT_NE(first->get(), third->get());

  // The memoized dataset matches a fresh materialization exactly.
  auto fresh = tpch::MaterializeDataset(spec);
  ASSERT_TRUE(fresh.ok());
  ASSERT_EQ((*first)->partitions.size(), fresh->partitions.size());
  for (size_t p = 0; p < fresh->partitions.size(); ++p) {
    ASSERT_EQ((*first)->partitions[p].size(), fresh->partitions[p].size());
    for (size_t i = 0; i < fresh->partitions[p].size(); ++i) {
      EXPECT_EQ(tpch::SerializeRow((*first)->partitions[p][i]),
                tpch::SerializeRow(fresh->partitions[p][i]));
    }
  }
}

TEST(VectorizedCacheTest, ConcurrentCallersShareOneGeneration) {
  tpch::SkewSpec spec;
  spec.num_partitions = 4;
  spec.records_per_partition = 2000;
  spec.selectivity = 0.01;
  spec.zipf_z = 2.0;
  spec.seed = 424242;  // unique to this test: first caller generates

  ThreadPool pool(8);
  auto datasets = ParallelMap<std::shared_ptr<const tpch::MaterializedDataset>>(
      &pool, 32,
      [&](size_t) -> Result<std::shared_ptr<const tpch::MaterializedDataset>> {
        return tpch::MaterializeDatasetShared(spec);
      });
  ASSERT_TRUE(datasets.ok()) << datasets.status().ToString();
  ASSERT_EQ(datasets->size(), 32u);
  for (const auto& dataset : *datasets) {
    EXPECT_EQ(dataset.get(), (*datasets)[0].get());
  }
  EXPECT_EQ((*datasets)[0]->total_records(), 8000u);
}

}  // namespace
}  // namespace dmr::exec
