#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "cluster/cluster.h"
#include "dfs/file_system.h"
#include "dynamic/growth_policy.h"
#include "mapred/job_client.h"
#include "mapred/job_tracker.h"
#include "sampling/sampling_job.h"
#include "scheduler/fifo_scheduler.h"
#include "sim/simulation.h"
#include "tpch/dataset_catalog.h"
#include "tpch/skew_model.h"

namespace dmr {
namespace {

/// A self-contained simulated cluster with one LINEITEM dataset.
class SimEndToEndTest : public ::testing::Test {
 protected:
  void SetUp() override {
    config_ = cluster::ClusterConfig::SingleUser();
    cluster_ = std::make_unique<cluster::Cluster>(&sim_, config_);
    tracker_ =
        std::make_unique<mapred::JobTracker>(cluster_.get(), &scheduler_);
    tracker_->Start();
    client_ = std::make_unique<mapred::JobClient>(tracker_.get());
    fs_ = std::make_unique<dfs::FileSystem>(config_.num_nodes,
                                            config_.disks_per_node);
  }

  /// Creates a dataset at `scale` with skew `z`, returns (file, matching).
  std::pair<dfs::FileInfo, std::vector<uint64_t>> MakeDataset(int scale,
                                                              double z) {
    auto props = tpch::PropertiesForScale(scale);
    EXPECT_TRUE(props.ok());
    std::string name =
        props->file_name() + "_v" + std::to_string(dataset_counter_++);
    auto file = fs_->CreateFile(name, props->num_partitions,
                                tpch::kRecordsPerPartition,
                                tpch::kLineItemRecordBytes);
    EXPECT_TRUE(file.ok());
    tpch::SkewSpec spec;
    spec.num_partitions = props->num_partitions;
    spec.records_per_partition = tpch::kRecordsPerPartition;
    spec.selectivity = tpch::kPaperSelectivity;
    spec.zipf_z = z;
    spec.seed = 99;
    auto matching = tpch::AssignMatchingRecords(spec);
    EXPECT_TRUE(matching.ok());
    return {*file, *matching};
  }

  /// Submits a sampling job under `policy_name` and runs to completion.
  mapred::JobStats RunSamplingJob(const dfs::FileInfo& file,
                                  const std::vector<uint64_t>& matching,
                                  const std::string& policy_name,
                                  uint64_t k = 10000) {
    auto policy = dynamic::PolicyTable::BuiltIn().Find(policy_name);
    EXPECT_TRUE(policy.ok());
    sampling::SamplingJobOptions options;
    options.job_name = "sample-" + policy_name;
    options.sample_size = k;
    options.seed = 4242;
    auto submission =
        sampling::MakeSamplingJob(file, matching, *policy, options);
    EXPECT_TRUE(submission.ok()) << submission.status().ToString();
    std::optional<mapred::JobStats> stats;
    auto id = client_->Submit(*std::move(submission),
                              [&](const mapred::JobStats& s) { stats = s; });
    EXPECT_TRUE(id.ok()) << id.status().ToString();
    sim_.RunUntil(sim_.Now() + 24 * 3600.0);
    EXPECT_TRUE(stats.has_value()) << "job did not complete";
    return *stats;
  }

  sim::Simulation sim_;
  cluster::ClusterConfig config_;
  std::unique_ptr<cluster::Cluster> cluster_;
  scheduler::FifoScheduler scheduler_;
  std::unique_ptr<mapred::JobTracker> tracker_;
  std::unique_ptr<mapred::JobClient> client_;
  std::unique_ptr<dfs::FileSystem> fs_;
  int dataset_counter_ = 0;
};

TEST_F(SimEndToEndTest, DynamicSamplingJobProducesFullSample) {
  auto [file, matching] = MakeDataset(5, 0.0);
  mapred::JobStats stats = RunSamplingJob(file, matching, "LA");
  EXPECT_EQ(stats.result_records, 10000u);
  EXPECT_GE(stats.output_records, 10000u);
  // With 375 matches per partition, ~27 of the 40 partitions suffice; the
  // dynamic job must not scan everything.
  EXPECT_LT(stats.splits_processed, 40);
  EXPECT_GE(stats.splits_processed, 26);
  EXPECT_GT(stats.provider_evaluations, 0);
  EXPECT_GT(stats.input_increments, 1);
  EXPECT_GT(stats.response_time(), 0.0);
}

TEST_F(SimEndToEndTest, HadoopPolicyProcessesAllInput) {
  auto [file, matching] = MakeDataset(5, 0.0);
  mapred::JobStats stats = RunSamplingJob(file, matching, "Hadoop");
  EXPECT_EQ(stats.splits_processed, 40);
  EXPECT_EQ(stats.result_records, 10000u);
  // A single unbounded intake.
  EXPECT_EQ(stats.input_increments, 1);
}

TEST_F(SimEndToEndTest, DynamicResponseTimeIsFlatAcrossScales) {
  auto [small_file, small_matching] = MakeDataset(5, 0.0);
  mapred::JobStats small = RunSamplingJob(small_file, small_matching, "HA");
  auto [big_file, big_matching] = MakeDataset(20, 0.0);
  mapred::JobStats big = RunSamplingJob(big_file, big_matching, "HA");
  // Paper headline: response time depends on the sample size, not on the
  // input size. Allow 2x slack for scheduling noise.
  EXPECT_LT(big.response_time(), 2.0 * small.response_time());
}

TEST_F(SimEndToEndTest, HadoopResponseTimeGrowsWithScale) {
  auto [small_file, small_matching] = MakeDataset(5, 0.0);
  mapred::JobStats small =
      RunSamplingJob(small_file, small_matching, "Hadoop");
  auto [big_file, big_matching] = MakeDataset(40, 0.0);
  mapred::JobStats big = RunSamplingJob(big_file, big_matching, "Hadoop");
  // 8x the input => 8 map waves instead of 1; fixed overheads (startup,
  // heartbeats, reduce) damp the ratio below 8 but it must grow strongly.
  EXPECT_GT(big.response_time(), 2.5 * small.response_time());
}

TEST_F(SimEndToEndTest, DynamicBeatsHadoopOnLargeInput) {
  auto [file, matching] = MakeDataset(20, 0.0);
  mapred::JobStats ha = RunSamplingJob(file, matching, "HA");
  auto [file2, matching2] = MakeDataset(20, 0.0);
  (void)file2;
  mapred::JobStats hadoop = RunSamplingJob(file, matching, "Hadoop");
  EXPECT_LT(ha.response_time(), hadoop.response_time());
  EXPECT_LT(ha.splits_processed, hadoop.splits_processed);
}

TEST_F(SimEndToEndTest, ZeroMatchesConsumesEverythingAndReturnsEmpty) {
  auto [file, matching] = MakeDataset(5, 0.0);
  std::vector<uint64_t> none(matching.size(), 0);
  mapred::JobStats stats = RunSamplingJob(file, none, "MA");
  EXPECT_EQ(stats.result_records, 0u);
  EXPECT_EQ(stats.splits_processed, 40);  // had to look everywhere
}

TEST_F(SimEndToEndTest, StaticSelectProjectJobRuns) {
  auto [file, matching] = MakeDataset(5, 0.0);
  auto submission =
      sampling::MakeSelectProjectJob(file, matching, "sp-job", "alice");
  ASSERT_TRUE(submission.ok());
  std::optional<mapred::JobStats> stats;
  auto id = client_->Submit(*std::move(submission),
                            [&](const mapred::JobStats& s) { stats = s; });
  ASSERT_TRUE(id.ok());
  sim_.RunUntil(sim_.Now() + 4 * 3600.0);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->splits_processed, 40);
  EXPECT_EQ(stats->result_records, 15000u);  // all matches, no LIMIT
}

TEST_F(SimEndToEndTest, SkewSlowsConservativePolicies) {
  auto [uniform_file, uniform_matching] = MakeDataset(10, 0.0);
  mapred::JobStats uniform =
      RunSamplingJob(uniform_file, uniform_matching, "C");
  auto [skewed_file, skewed_matching] = MakeDataset(10, 2.0);
  mapred::JobStats skewed = RunSamplingJob(skewed_file, skewed_matching, "C");
  // Under high skew most partitions yield nothing, so a conservative job
  // needs more rounds/partitions than under a uniform spread.
  EXPECT_GE(skewed.splits_processed, uniform.splits_processed);
}

}  // namespace
}  // namespace dmr
