#include "testbed/testbed.h"

#include <gtest/gtest.h>

#include "sampling/sampling_job.h"
#include "tpch/dataset_catalog.h"

namespace dmr::testbed {
namespace {

TEST(TestbedTest, ProvisionsPaperCluster) {
  Testbed bed(cluster::ClusterConfig::SingleUser());
  EXPECT_EQ(bed.cluster().num_nodes(), 10);
  EXPECT_EQ(bed.cluster().total_map_slots(), 40);
  EXPECT_EQ(bed.fs().num_nodes(), 10);
  EXPECT_EQ(bed.fs().disks_per_node(), 4);
}

TEST(TestbedTest, MakeLineItemDatasetRegistersFile) {
  Testbed bed(cluster::ClusterConfig::SingleUser());
  auto dataset = MakeLineItemDataset(&bed.fs(), 5, 1.0, 42);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->file.num_partitions(), 40);
  EXPECT_EQ(dataset->matching_per_partition.size(), 40u);
  EXPECT_EQ(dataset->properties.scale, 5);
  EXPECT_TRUE(bed.fs().Exists(dataset->file.name));
}

TEST(TestbedTest, TagDisambiguatesCopies) {
  Testbed bed(cluster::ClusterConfig::SingleUser());
  ASSERT_TRUE(MakeLineItemDataset(&bed.fs(), 5, 0.0, 1, "a").ok());
  ASSERT_TRUE(MakeLineItemDataset(&bed.fs(), 5, 0.0, 1, "b").ok());
  // Same name collides.
  EXPECT_TRUE(MakeLineItemDataset(&bed.fs(), 5, 0.0, 1, "a")
                  .status()
                  .IsAlreadyExists());
}

TEST(TestbedTest, RunJobToCompletionReturnsStats) {
  Testbed bed(cluster::ClusterConfig::SingleUser());
  auto dataset = *MakeLineItemDataset(&bed.fs(), 5, 0.0, 42);
  auto policy = *dynamic::PolicyTable::BuiltIn().Find("HA");
  sampling::SamplingJobOptions options;
  options.sample_size = 1000;
  options.seed = 3;
  auto submission = sampling::MakeSamplingJob(
      dataset.file, dataset.matching_per_partition, policy, options);
  ASSERT_TRUE(submission.ok());
  auto stats = bed.RunJobToCompletion(*std::move(submission));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_records, 1000u);
}

TEST(TestbedTest, TimeoutSurfacesAsError) {
  Testbed bed(cluster::ClusterConfig::SingleUser());
  auto dataset = *MakeLineItemDataset(&bed.fs(), 5, 0.0, 42);
  auto policy = *dynamic::PolicyTable::BuiltIn().Find("C");
  sampling::SamplingJobOptions options;
  options.sample_size = 10000;
  options.seed = 3;
  auto submission = sampling::MakeSamplingJob(
      dataset.file, dataset.matching_per_partition, policy, options);
  ASSERT_TRUE(submission.ok());
  // One virtual second is not enough for anything.
  auto stats = bed.RunJobToCompletion(*std::move(submission), 1.0);
  EXPECT_TRUE(stats.status().IsInternal());
}

TEST(TestbedTest, MonitorIsRunning) {
  Testbed bed(cluster::ClusterConfig::SingleUser());
  bed.sim().RunUntil(65.0);
  EXPECT_GE(bed.monitor().cpu_percent().size(), 2u);
}

TEST(TestbedTest, FairSchedulerVariantWorks) {
  Testbed bed(cluster::ClusterConfig::MultiUser(), SchedulerKind::kFair,
              /*locality_wait=*/2.0);
  auto dataset = *MakeLineItemDataset(&bed.fs(), 5, 0.0, 42);
  auto policy = *dynamic::PolicyTable::BuiltIn().Find("LA");
  sampling::SamplingJobOptions options;
  options.sample_size = 1000;
  options.seed = 5;
  auto submission = sampling::MakeSamplingJob(
      dataset.file, dataset.matching_per_partition, policy, options);
  ASSERT_TRUE(submission.ok());
  auto stats = bed.RunJobToCompletion(*std::move(submission));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_records, 1000u);
}

}  // namespace
}  // namespace dmr::testbed
