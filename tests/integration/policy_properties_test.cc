/// \file
/// Property sweep over (policy x skew) on the cluster simulator: the
/// invariants every configuration must satisfy, regardless of timing.

#include <gtest/gtest.h>

#include <tuple>

#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr {
namespace {

class PolicySkewSweep
    : public ::testing::TestWithParam<std::tuple<const char*, double>> {};

TEST_P(PolicySkewSweep, InvariantsHold) {
  const auto& [policy_name, z] = GetParam();
  constexpr int kScale = 10;  // 80 partitions
  constexpr uint64_t kK = 10000;

  testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
  auto dataset = testbed::MakeLineItemDataset(&bed.fs(), kScale, z, 777);
  ASSERT_TRUE(dataset.ok());
  uint64_t total_matching = 0;
  for (uint64_t m : dataset->matching_per_partition) total_matching += m;

  auto policy = *dynamic::PolicyTable::BuiltIn().Find(policy_name);
  sampling::SamplingJobOptions options;
  options.job_name = std::string("sweep-") + policy_name;
  options.sample_size = kK;
  options.seed = 31337;
  auto submission = sampling::MakeSamplingJob(
      dataset->file, dataset->matching_per_partition, policy, options);
  ASSERT_TRUE(submission.ok());
  auto stats = bed.RunJobToCompletion(*std::move(submission));
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  // 1. The sample is exactly min(k, total matching records).
  EXPECT_EQ(stats->result_records, std::min(kK, total_matching));

  // 2. Work is bounded by the input.
  EXPECT_LE(stats->splits_processed, stats->splits_total);
  EXPECT_EQ(stats->splits_total, 80);
  EXPECT_LE(stats->records_processed,
            80ULL * tpch::kRecordsPerPartition);

  // 3. The unbounded policy processes everything; bounded ones never add
  //    past the point where completed output covers k... Hadoop excepted.
  if (std::string(policy_name) == "Hadoop") {
    EXPECT_EQ(stats->splits_processed, 80);
  }

  // 4. Attempt accounting is consistent.
  EXPECT_EQ(stats->local_maps + stats->remote_maps,
            stats->splits_processed + stats->speculative_maps +
                stats->failed_maps);

  // 5. The cluster is quiescent afterwards.
  EXPECT_EQ(bed.cluster().used_map_slots(), 0);

  // 6. Dynamic jobs were actually driven by the provider.
  if (std::string(policy_name) != "Hadoop") {
    EXPECT_GT(stats->provider_evaluations, 0);
  }

  // 7. History bookkeeping matches stats.
  int completions = 0;
  for (const auto& ev : bed.tracker().history().ForJob(stats->job_id)) {
    if (ev.kind == mapred::JobEventKind::kMapCompleted) ++completions;
  }
  EXPECT_EQ(completions, stats->splits_processed);
}

INSTANTIATE_TEST_SUITE_P(
    AllPoliciesAllSkews, PolicySkewSweep,
    ::testing::Combine(::testing::Values("Hadoop", "HA", "MA", "LA", "C"),
                       ::testing::Values(0.0, 1.0, 2.0)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param);
      name += "_z";
      name += std::to_string(static_cast<int>(std::get<1>(info.param)));
      return name;
    });

/// Determinism: the whole simulated run is a pure function of its seeds.
class DeterminismSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(DeterminismSweep, RunsAreBitwiseRepeatable) {
  auto run = [&] {
    testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
    auto dataset = *testbed::MakeLineItemDataset(&bed.fs(), 5, 1.0, 99);
    auto policy = *dynamic::PolicyTable::BuiltIn().Find(GetParam());
    sampling::SamplingJobOptions options;
    options.sample_size = 10000;
    options.seed = 12;
    auto submission = sampling::MakeSamplingJob(
        dataset.file, dataset.matching_per_partition, policy, options);
    return *bed.RunJobToCompletion(*std::move(submission));
  };
  mapred::JobStats a = run();
  mapred::JobStats b = run();
  EXPECT_DOUBLE_EQ(a.response_time(), b.response_time());
  EXPECT_EQ(a.splits_processed, b.splits_processed);
  EXPECT_EQ(a.records_processed, b.records_processed);
  EXPECT_EQ(a.input_increments, b.input_increments);
  EXPECT_EQ(a.local_maps, b.local_maps);
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, DeterminismSweep,
                         ::testing::Values("Hadoop", "HA", "MA", "LA", "C"));

}  // namespace
}  // namespace dmr
