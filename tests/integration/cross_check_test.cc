/// \file
/// Cross-checks the two execution paths over statistically identical data:
/// the record-level LocalRuntime (real rows, real predicate evaluation) and
/// the cluster simulator (analytic output model). Both implement the same
/// Input Provider loop, so their *work* metrics must agree even though one
/// simulates time and the other runs threads.

#include <gtest/gtest.h>

#include <memory>

#include "dynamic/sampling_input_provider.h"
#include "exec/local_runtime.h"
#include "hive/compiler.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/generator.h"

namespace dmr {
namespace {

/// Shared experiment shape: 24 partitions x 25k records, sigma = 0.2 %,
/// k = 400. Uniform spread so sampling noise can't dominate.
constexpr int kPartitions = 24;
constexpr uint64_t kRecords = 25000;
constexpr double kSelectivity = 0.002;
constexpr uint64_t kSampleK = 400;

TEST(CrossCheckTest, LocalAndSimulatedWorkAgree) {
  // --- local path: real data -------------------------------------------
  tpch::SkewSpec spec;
  spec.num_partitions = kPartitions;
  spec.records_per_partition = kRecords;
  spec.selectivity = kSelectivity;
  spec.zipf_z = 0.0;
  spec.seed = 62;
  auto data = *tpch::MaterializeDataset(spec);

  hive::HiveCompiler compiler(&tpch::LineItemSchema(),
                              &dynamic::PolicyTable::BuiltIn());
  ASSERT_TRUE(compiler.Process("SET dynamic.job.policy = LA").ok());
  auto compiled = compiler.Process(
      "SELECT ORDERKEY FROM lineitem WHERE QUANTITY > 50 LIMIT 400");
  ASSERT_TRUE(compiled.ok());

  exec::LocalRuntime runtime({.num_threads = 8, .seed = 4242});
  auto local = runtime.Execute(*compiled->query, data,
                               *dynamic::PolicyTable::BuiltIn().Find("LA"));
  ASSERT_TRUE(local.ok()) << local.status().ToString();
  ASSERT_EQ(local->rows.size(), kSampleK);

  // --- simulated path: same statistics ---------------------------------
  cluster::ClusterConfig config = cluster::ClusterConfig::SingleUser();
  // Match the local mini-cluster's parallelism (8 worker threads).
  config.num_nodes = 4;
  config.map_slots_per_node = 2;
  testbed::Testbed bed(config);
  dfs::FileInfo file =
      *bed.fs().CreateFile("cross", kPartitions, kRecords, 132);
  sampling::SamplingJobOptions options;
  options.sample_size = kSampleK;
  options.seed = 4242;
  auto submission = sampling::MakeSamplingJob(
      file, data.matching_per_partition,
      *dynamic::PolicyTable::BuiltIn().Find("LA"), options);
  ASSERT_TRUE(submission.ok());
  auto sim_stats = bed.RunJobToCompletion(*std::move(submission));
  ASSERT_TRUE(sim_stats.ok());

  // Both paths must deliver the full sample...
  EXPECT_EQ(sim_stats->result_records, kSampleK);
  // ...and agree on the scale of work: partitions processed within 2x of
  // each other (the provider draws and timing differ, the economics not).
  double ratio = static_cast<double>(sim_stats->splits_processed) /
                 static_cast<double>(local->partitions_processed);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
  // Neither may scan the whole input (uniform data, k covered by ~9).
  EXPECT_LT(local->partitions_processed, kPartitions);
  EXPECT_LT(sim_stats->splits_processed, kPartitions);
}

TEST(CrossCheckTest, SimOutputModelMatchesRealMapperCounts) {
  // The simulator's map-output model (min(k, matching)) must agree with
  // what the record-level mapper actually emits on the same partition.
  tpch::SkewSpec spec;
  spec.num_partitions = 6;
  spec.records_per_partition = 8000;
  spec.selectivity = 0.01;
  spec.zipf_z = 2.0;
  spec.seed = 9;
  auto data = *tpch::MaterializeDataset(spec);

  const uint64_t k = 50;
  auto model = sampling::SamplingMapOutputModel(k);
  for (int p = 0; p < spec.num_partitions; ++p) {
    sampling::SamplingMapper mapper(data.predicate.predicate,
                                    &tpch::LineItemSchema(), k);
    std::vector<expr::Tuple> out;
    for (const auto& row : data.partitions[p]) {
      ASSERT_TRUE(mapper.Map(tpch::ToTuple(row), &out).ok());
    }
    mapred::InputSplit split;
    split.num_matching = data.matching_per_partition[p];
    EXPECT_EQ(model(split), out.size()) << "partition " << p;
  }
}

}  // namespace
}  // namespace dmr
