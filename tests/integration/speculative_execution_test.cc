#include <gtest/gtest.h>

#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr {
namespace {

mapred::JobStats RunJob(testbed::Testbed* bed, const char* policy_name,
                        uint64_t seed) {
  auto dataset = testbed::MakeLineItemDataset(&bed->fs(), 5, 0.0, seed);
  EXPECT_TRUE(dataset.ok());
  auto policy = *dynamic::PolicyTable::BuiltIn().Find(policy_name);
  sampling::SamplingJobOptions options;
  options.job_name = "spec-test";
  options.sample_size = 10000;
  options.seed = seed;
  auto submission = sampling::MakeSamplingJob(
      dataset->file, dataset->matching_per_partition, policy, options);
  EXPECT_TRUE(submission.ok());
  auto stats = bed->RunJobToCompletion(*std::move(submission));
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return *stats;
}

cluster::ClusterConfig StragglerConfig() {
  cluster::ClusterConfig config = cluster::ClusterConfig::SingleUser();
  config.straggler_prob = 0.15;
  config.straggler_slowdown = 8.0;
  config.fault_seed = 77;
  return config;
}

TEST(SpeculativeExecutionTest, BackupsMitigateStragglersOnAverage) {
  // Backups can themselves straggle (they draw from the same fault model,
  // as in real Hadoop), so the benefit is statistical: compare mean
  // response times over several fault seeds.
  double slow_sum = 0, fast_sum = 0;
  int total_backups = 0;
  for (uint64_t fault_seed : {77u, 78u, 79u, 80u, 81u}) {
    cluster::ClusterConfig plain = StragglerConfig();
    plain.fault_seed = fault_seed;
    testbed::Testbed slow_bed(plain);
    mapred::JobStats slow = RunJob(&slow_bed, "Hadoop", 41);
    slow_sum += slow.response_time();

    cluster::ClusterConfig speculative = plain;
    speculative.speculative_execution = true;
    speculative.speculative_min_runtime = 5.0;
    testbed::Testbed fast_bed(speculative);
    mapred::JobStats fast = RunJob(&fast_bed, "Hadoop", 41);
    fast_sum += fast.response_time();
    total_backups += fast.speculative_maps;

    // Correctness is untouched either way.
    EXPECT_EQ(fast.splits_processed, 40);
    EXPECT_EQ(fast.result_records, 10000u);
  }
  EXPECT_GT(total_backups, 0);
  EXPECT_LT(fast_sum, slow_sum);
}

TEST(SpeculativeExecutionTest, NoBackupsWithoutStragglers) {
  cluster::ClusterConfig config = cluster::ClusterConfig::SingleUser();
  config.speculative_execution = true;
  config.speculative_min_runtime = 5.0;
  testbed::Testbed bed(config);
  mapred::JobStats stats = RunJob(&bed, "Hadoop", 43);
  // Homogeneous tasks: nothing runs 1.5x beyond the mean.
  EXPECT_EQ(stats.speculative_maps, 0);
  EXPECT_EQ(bed.tracker().total_speculative_maps(), 0);
}

TEST(SpeculativeExecutionTest, OffByDefault) {
  testbed::Testbed bed(StragglerConfig());
  mapred::JobStats stats = RunJob(&bed, "Hadoop", 47);
  EXPECT_EQ(stats.speculative_maps, 0);
}

TEST(SpeculativeExecutionTest, SlotAccountingSurvivesKills) {
  cluster::ClusterConfig config = StragglerConfig();
  config.speculative_execution = true;
  config.speculative_min_runtime = 5.0;
  testbed::Testbed bed(config);
  mapred::JobStats stats = RunJob(&bed, "HA", 53);
  EXPECT_EQ(stats.result_records, 10000u);
  // After everything completed every slot must be free again.
  EXPECT_EQ(bed.cluster().used_map_slots(), 0);
  EXPECT_EQ(bed.cluster().free_reduce_slots(),
            bed.config().total_reduce_slots());
}

TEST(SpeculativeExecutionTest, WorksTogetherWithFailures) {
  cluster::ClusterConfig config = StragglerConfig();
  config.speculative_execution = true;
  config.speculative_min_runtime = 5.0;
  config.map_failure_prob = 0.15;
  testbed::Testbed bed(config);
  mapred::JobStats stats = RunJob(&bed, "Hadoop", 59);
  EXPECT_EQ(stats.splits_processed, 40);
  EXPECT_EQ(stats.result_records, 10000u);
  EXPECT_EQ(bed.cluster().used_map_slots(), 0);
}

}  // namespace
}  // namespace dmr
