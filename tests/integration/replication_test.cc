#include <gtest/gtest.h>

#include <set>

#include "dfs/file_system.h"
#include "mapred/input_splits.h"
#include "mapred/job.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"

namespace dmr {
namespace {

TEST(ReplicationTest, DfsPlacesReplicasOnDistinctNodes) {
  dfs::FileSystem fs(10, 4);
  auto file = fs.CreateFile("replicated", 40, 1000, 100,
                            dfs::Placement::kRoundRobin, /*replication=*/3);
  ASSERT_TRUE(file.ok());
  for (const auto& p : file->partitions) {
    auto locations = p.locations();
    ASSERT_EQ(locations.size(), 3u);
    std::set<int> nodes;
    for (const auto& loc : locations) nodes.insert(loc.node_id);
    EXPECT_EQ(nodes.size(), 3u) << "partition " << p.index;
    EXPECT_EQ(locations.front().node_id, p.node_id);  // primary first
  }
}

TEST(ReplicationTest, ReplicationBoundsValidated) {
  dfs::FileSystem fs(3, 2);
  EXPECT_TRUE(fs.CreateFile("r0", 2, 1, 1, dfs::Placement::kRoundRobin, 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(fs.CreateFile("r4", 2, 1, 1, dfs::Placement::kRoundRobin, 4)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(fs.CreateFile("r3", 2, 1, 1, dfs::Placement::kRoundRobin, 3)
                  .ok());
}

TEST(ReplicationTest, SplitsCarryAllLocations) {
  dfs::FileSystem fs(10, 4);
  auto file = *fs.CreateFile("replicated", 8, 1000, 100,
                             dfs::Placement::kRoundRobin, 2);
  auto splits = *mapred::MakeInputSplits(file, {});
  for (const auto& s : splits) {
    EXPECT_EQ(s.all_locations().size(), 2u);
    EXPECT_TRUE(s.IsLocalTo(s.node_id));
    EXPECT_TRUE(s.IsLocalTo(s.all_locations()[1].node_id));
    EXPECT_FALSE(s.IsLocalTo((s.node_id + 5) % 10));
  }
}

TEST(ReplicationTest, ReadLocationPrefersLocalReplica) {
  mapred::InputSplit split;
  split.node_id = 2;
  split.disk_id = 1;
  split.locations = {{2, 1}, {5, 3}};
  auto on_replica = split.ReadLocationFor(5);
  EXPECT_EQ(on_replica.node_id, 5);
  EXPECT_EQ(on_replica.disk_id, 3);
  auto elsewhere = split.ReadLocationFor(7);
  EXPECT_EQ(elsewhere.node_id, 2);  // falls back to the primary
}

TEST(ReplicationTest, JobServesLocalWorkFromAnyReplica) {
  mapred::JobConf conf;
  mapred::Job job(1, conf, 1,
                  [](const mapred::InputSplit&) { return uint64_t{0}; },
                  0.0);
  mapred::InputSplit split;
  split.index = 0;
  split.node_id = 2;
  split.locations = {{2, 0}, {6, 1}};
  job.AddSplits({split});
  EXPECT_TRUE(job.HasLocalPending(2));
  EXPECT_TRUE(job.HasLocalPending(6));
  EXPECT_FALSE(job.HasLocalPending(3));
  // Taking via the replica node removes it everywhere.
  auto taken = job.TakeLocalPending(6);
  ASSERT_TRUE(taken.has_value());
  EXPECT_FALSE(job.HasLocalPending(2));
  EXPECT_FALSE(job.HasPendingSplits());
}

TEST(ReplicationTest, ReplicationRaisesLocalityUnderContention) {
  // Give every user a single-node-hosted dataset so unreplicated reads are
  // mostly remote; with 3x replication, locality recovers.
  auto run = [](int replication) {
    cluster::ClusterConfig config = cluster::ClusterConfig::SingleUser();
    testbed::Testbed bed(config);
    auto file = *bed.fs().CreateFile("skewed-placement", 40, 750000, 132,
                                     dfs::Placement::kSingleDisk,
                                     replication);
    std::vector<uint64_t> matching(40, 400);
    auto submission = sampling::MakeSelectProjectJob(file, matching,
                                                     "scan", "u");
    EXPECT_TRUE(submission.ok());
    auto stats = bed.RunJobToCompletion(*std::move(submission));
    EXPECT_TRUE(stats.ok());
    return bed.tracker().LocalityPercent();
  };
  double unreplicated = run(1);
  double replicated = run(3);
  EXPECT_GT(replicated, unreplicated + 10.0);
}

TEST(ReplicationTest, SamplingJobCorrectWithReplication) {
  testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
  auto file = *bed.fs().CreateFile("rep3", 40, 750000, 132,
                                   dfs::Placement::kRoundRobin, 3);
  std::vector<uint64_t> matching(40, 375);
  auto policy = *dynamic::PolicyTable::BuiltIn().Find("LA");
  sampling::SamplingJobOptions options;
  options.sample_size = 10000;
  options.seed = 77;
  auto submission =
      sampling::MakeSamplingJob(file, matching, policy, options);
  ASSERT_TRUE(submission.ok());
  auto stats = bed.RunJobToCompletion(*std::move(submission));
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->result_records, 10000u);
  EXPECT_LT(stats->splits_processed, 40);
}

}  // namespace
}  // namespace dmr
