/// \file
/// End-to-end observability test: runs the Figure 5 single-user scenario
/// (one sampling job on the 10-node paper cluster) with the global obs hub
/// installed and asserts that the emitted trace spans and metric counters
/// agree with the job's own statistics.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.h"
#include "mapred/job_history.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/scope.h"
#include "obs/trace.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr::testbed {
namespace {

using json::JsonParse;
using json::JsonValue;

/// RAII hub session so failed assertions cannot leak the global install
/// into later tests.
class HubSession {
 public:
  HubSession() { obs::Hub::Install(&registry, &recorder); }
  ~HubSession() { obs::Hub::Uninstall(); }
  obs::MetricsRegistry registry;
  obs::TraceRecorder recorder;
};

mapred::JobStats RunFig5Cell() {
  Testbed bed(cluster::ClusterConfig::SingleUser());
  auto dataset = *MakeLineItemDataset(&bed.fs(), 5, 1.0, 42);
  auto policy = *dynamic::PolicyTable::BuiltIn().Find("LA");
  sampling::SamplingJobOptions options;
  options.sample_size = 1000;
  options.seed = 7;
  auto submission = sampling::MakeSamplingJob(
      dataset.file, dataset.matching_per_partition, policy, options);
  EXPECT_TRUE(submission.ok());
  auto stats = bed.RunJobToCompletion(*std::move(submission));
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return *stats;
}

int CountEvents(const std::vector<JsonValue>& events, const std::string& ph,
                const std::string& cat) {
  int n = 0;
  for (const auto& e : events) {
    if (e.StringOr("ph", "") == ph && e.StringOr("cat", "") == cat) ++n;
  }
  return n;
}

TEST(ObsIntegrationTest, TraceSpansMatchTaskCounts) {
  HubSession hub;
  mapred::JobStats stats = RunFig5Cell();

  obs::MetricsRegistry::Snapshot snap = hub.registry.TakeSnapshot();
  const int64_t* launched = snap.FindCounter("mapred.maps_launched");
  const int64_t* completed = snap.FindCounter("mapred.maps_completed");
  const int64_t* failed = snap.FindCounter("mapred.maps_failed");
  const int64_t* backups = snap.FindCounter("mapred.backups_launched");
  const int64_t* splits = snap.FindCounter("mapred.splits_added");
  ASSERT_NE(launched, nullptr);
  ASSERT_NE(completed, nullptr);
  // The job's own accounting and the obs counters must agree.
  EXPECT_EQ(*completed, stats.splits_processed);
  EXPECT_EQ(*launched, *completed + *failed + *backups);
  EXPECT_EQ(*splits, stats.splits_processed);
  EXPECT_EQ(*snap.FindCounter("mapred.jobs_submitted"), 1);
  EXPECT_EQ(*snap.FindCounter("mapred.jobs_completed"), 1);
  EXPECT_EQ(*snap.FindCounter("mapred.reduces_launched"), 1);

  // Latency histograms: one task_wait sample per primary map launch, one
  // task_run per finished attempt.
  const auto* wait = snap.FindHistogram("mapred.task_wait");
  const auto* run = snap.FindHistogram("mapred.task_run");
  ASSERT_NE(wait, nullptr);
  ASSERT_NE(run, nullptr);
  EXPECT_EQ(static_cast<int64_t>(wait->count), *launched - *backups);
  EXPECT_EQ(static_cast<int64_t>(run->count), *completed + *failed);
  EXPECT_GT(wait->p95, 0.0);
  EXPECT_GE(wait->p99, wait->p95);
  EXPECT_GE(wait->p95, wait->p50);

  // Parse the trace back and compare span counts to the counters.
  auto doc = JsonParse(hub.recorder.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* trace_events = doc.ValueOrDie().Find("traceEvents");
  ASSERT_NE(trace_events, nullptr);
  const std::vector<JsonValue>& events = trace_events->items;

  EXPECT_EQ(CountEvents(events, "X", "map"),
            static_cast<int>(*launched));  // one span per map attempt
  EXPECT_EQ(CountEvents(events, "X", "reduce"), 1);
  EXPECT_EQ(CountEvents(events, "b", "job"), 1);
  EXPECT_EQ(CountEvents(events, "e", "job"), 1);
  EXPECT_EQ(CountEvents(events, "b", "split"), static_cast<int>(*splits));
  EXPECT_EQ(CountEvents(events, "e", "split"),
            static_cast<int>(*completed));
  // One provider-decision instant per provider invocation (initial grab +
  // each periodic evaluation).
  const auto* decisions = snap.FindHistogram("provider.decision");
  ASSERT_NE(decisions, nullptr);
  EXPECT_EQ(CountEvents(events, "i", "provider"),
            static_cast<int>(decisions->count));
  EXPECT_EQ(*snap.FindCounter("provider.evaluations"),
            stats.provider_evaluations);
}

TEST(ObsIntegrationTest, ReportRendersCountersAndHistograms) {
  HubSession hub;
  RunFig5Cell();

  obs::Report report;
  report.SetInfo("driver", "obs_integration_test");
  report.SetSnapshot(hub.registry.TakeSnapshot());

  std::string text = report.ToText();
  EXPECT_NE(text.find("mapred.maps_launched"), std::string::npos);
  EXPECT_NE(text.find("mapred.task_wait"), std::string::npos);
  EXPECT_NE(text.find("p95"), std::string::npos);

  auto doc = JsonParse(report.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue& root = doc.ValueOrDie();
  ASSERT_NE(root.Find("counters"), nullptr);
  EXPECT_GT(root.Find("counters")->NumberOr("mapred.maps_launched", 0.0),
            0.0);
  const JsonValue* hists = root.Find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_TRUE(hists->is_array());
  EXPECT_FALSE(hists->items.empty());
}

TEST(ObsIntegrationTest, TestbedAppendsSeriesAndHistory) {
  HubSession hub;
  Testbed bed(cluster::ClusterConfig::SingleUser());
  auto dataset = *MakeLineItemDataset(&bed.fs(), 5, 0.0, 42);
  auto policy = *dynamic::PolicyTable::BuiltIn().Find("HA");
  sampling::SamplingJobOptions options;
  options.sample_size = 1000;
  options.seed = 3;
  auto submission = sampling::MakeSamplingJob(
      dataset.file, dataset.matching_per_partition, policy, options);
  ASSERT_TRUE(submission.ok());
  auto stats = bed.RunJobToCompletion(*std::move(submission));
  ASSERT_TRUE(stats.ok());

  // Satellite: JobStats carries the history slice, and it renders as JSON.
  EXPECT_FALSE(stats->history.empty());
  auto history_doc = JsonParse(mapred::JobHistory::ToJson(stats->history));
  ASSERT_TRUE(history_doc.ok()) << history_doc.status().ToString();
  EXPECT_TRUE(history_doc.ValueOrDie().is_array());

  obs::Report report;
  report.SetSnapshot(hub.registry.TakeSnapshot());
  bed.AppendToReport(&report);
  auto doc = JsonParse(report.ToJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue& root = doc.ValueOrDie();
  const JsonValue* series = root.Find("series");
  ASSERT_NE(series, nullptr);
  ASSERT_TRUE(series->is_array());
  EXPECT_EQ(series->items.size(), 3u);  // cpu, disk_read, slot_occupancy
  EXPECT_EQ(series->items[0].StringOr("name", ""), "cluster.cpu");
  const JsonValue* history = root.Find("job_history");
  ASSERT_NE(history, nullptr);
  EXPECT_TRUE(history->is_array());
  EXPECT_FALSE(history->items.empty());
}

TEST(ObsIntegrationTest, NoHubMeansNoScopeAndCleanRun) {
  // Zero-overhead-when-off contract: without an installed hub the testbed
  // must not attach any scope, and the run must behave identically.
  ASSERT_FALSE(obs::Hub::active());
  Testbed bed(cluster::ClusterConfig::SingleUser());
  EXPECT_EQ(bed.obs(), nullptr);
  mapred::JobStats stats = RunFig5Cell();
  EXPECT_EQ(stats.result_records, 1000u);
}

}  // namespace
}  // namespace dmr::testbed
