#include <gtest/gtest.h>

#include <memory>
#include <optional>

#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr {
namespace {

mapred::JobStats RunWithConfig(const cluster::ClusterConfig& config,
                               const char* policy_name, uint64_t seed) {
  testbed::Testbed bed(config);
  auto dataset = testbed::MakeLineItemDataset(&bed.fs(), 5, 0.0, seed);
  EXPECT_TRUE(dataset.ok());
  auto policy = dynamic::PolicyTable::BuiltIn().Find(policy_name);
  EXPECT_TRUE(policy.ok());
  sampling::SamplingJobOptions options;
  options.job_name = "fault-test";
  options.sample_size = 10000;
  options.seed = seed;
  auto submission = sampling::MakeSamplingJob(
      dataset->file, dataset->matching_per_partition, *policy, options);
  EXPECT_TRUE(submission.ok());
  auto stats = bed.RunJobToCompletion(*std::move(submission));
  EXPECT_TRUE(stats.ok()) << stats.status().ToString();
  return *stats;
}

TEST(FaultInjectionTest, JobSurvivesMapFailures) {
  cluster::ClusterConfig config = cluster::ClusterConfig::SingleUser();
  config.map_failure_prob = 0.2;
  config.fault_seed = 99;
  mapred::JobStats stats = RunWithConfig(config, "LA", 11);
  EXPECT_EQ(stats.result_records, 10000u);
  EXPECT_GT(stats.failed_maps, 0);
  // Every completed split was eventually processed exactly once.
  EXPECT_GE(stats.splits_processed, 26);
}

TEST(FaultInjectionTest, HadoopPolicySurvivesFailuresToo) {
  cluster::ClusterConfig config = cluster::ClusterConfig::SingleUser();
  config.map_failure_prob = 0.3;
  config.fault_seed = 7;
  mapred::JobStats stats = RunWithConfig(config, "Hadoop", 13);
  EXPECT_EQ(stats.splits_processed, 40);  // all input despite retries
  EXPECT_GT(stats.failed_maps, 3);
  EXPECT_EQ(stats.result_records, 10000u);
}

TEST(FaultInjectionTest, FailuresDelayCompletion) {
  cluster::ClusterConfig healthy = cluster::ClusterConfig::SingleUser();
  mapred::JobStats ok = RunWithConfig(healthy, "Hadoop", 17);

  cluster::ClusterConfig flaky = healthy;
  flaky.map_failure_prob = 0.4;
  flaky.fault_seed = 3;
  mapred::JobStats slow = RunWithConfig(flaky, "Hadoop", 17);
  EXPECT_GT(slow.response_time(), ok.response_time());
}

TEST(FaultInjectionTest, StragglersStretchResponseTime) {
  cluster::ClusterConfig healthy = cluster::ClusterConfig::SingleUser();
  mapred::JobStats fast = RunWithConfig(healthy, "HA", 19);

  cluster::ClusterConfig slow_config = healthy;
  slow_config.straggler_prob = 0.25;
  slow_config.straggler_slowdown = 5.0;
  slow_config.fault_seed = 21;
  mapred::JobStats slow = RunWithConfig(slow_config, "HA", 19);
  EXPECT_GT(slow.response_time(), fast.response_time());
  EXPECT_EQ(slow.result_records, 10000u);  // correctness unaffected
}

TEST(FaultInjectionTest, ConfigValidationRejectsBadProbabilities) {
  cluster::ClusterConfig config;
  config.map_failure_prob = 1.0;  // would retry forever
  EXPECT_FALSE(config.Validate().ok());
  config = cluster::ClusterConfig();
  config.straggler_prob = -0.1;
  EXPECT_FALSE(config.Validate().ok());
  config = cluster::ClusterConfig();
  config.straggler_slowdown = 0.5;
  EXPECT_FALSE(config.Validate().ok());
}

TEST(FaultInjectionTest, DeterministicGivenSeeds) {
  cluster::ClusterConfig config = cluster::ClusterConfig::SingleUser();
  config.map_failure_prob = 0.2;
  config.fault_seed = 5;
  mapred::JobStats a = RunWithConfig(config, "MA", 23);
  mapred::JobStats b = RunWithConfig(config, "MA", 23);
  EXPECT_DOUBLE_EQ(a.response_time(), b.response_time());
  EXPECT_EQ(a.failed_maps, b.failed_maps);
  EXPECT_EQ(a.splits_processed, b.splits_processed);
}

}  // namespace
}  // namespace dmr
