#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "sim/simulation.h"

namespace dmr::sim {
namespace {

TEST(TieRaceDetectorTest, CountsSameInstantSameClassGroups) {
  Simulation sim;
  sim.Schedule(1.0, [] {});
  sim.Schedule(1.0, [] {});
  sim.Schedule(1.0, [] {});
  sim.Schedule(2.0, [] {});
  sim.RunUntil(100.0);
  EXPECT_EQ(sim.tie_stats().groups, 1u);
  EXPECT_EQ(sim.tie_stats().tied_events, 3u);
  EXPECT_EQ(sim.tie_stats().max_group, 3u);
}

TEST(TieRaceDetectorTest, DistinctTimesAreNotTies) {
  Simulation sim;
  sim.Schedule(1.0, [] {});
  sim.Schedule(2.0, [] {});
  sim.Schedule(3.0, [] {});
  sim.RunUntil(100.0);
  EXPECT_EQ(sim.tie_stats().groups, 0u);
  EXPECT_EQ(sim.tie_stats().tied_events, 0u);
}

TEST(TieRaceDetectorTest, DistinctClassesAtOneInstantAreNotTies) {
  // Cross-class order at one instant is fixed by the phase contract, so
  // simultaneous events of different classes are not racy.
  Simulation sim;
  sim.Schedule(1.0, EventClass::kTaskLifecycle, [] {});
  sim.Schedule(1.0, EventClass::kScheduling, [] {});
  sim.Schedule(1.0, EventClass::kBookkeeping, [] {});
  sim.RunUntil(100.0);
  EXPECT_EQ(sim.tie_stats().groups, 0u);
  EXPECT_EQ(sim.tie_stats().tied_events, 0u);
}

TEST(TieRaceDetectorTest, TracksSeveralGroupsAndTheMaximum) {
  Simulation sim;
  for (int i = 0; i < 2; ++i) sim.Schedule(1.0, [] {});
  for (int i = 0; i < 4; ++i) sim.Schedule(2.0, [] {});
  sim.RunUntil(100.0);
  EXPECT_EQ(sim.tie_stats().groups, 2u);
  EXPECT_EQ(sim.tie_stats().tied_events, 6u);
  EXPECT_EQ(sim.tie_stats().max_group, 4u);
}

TEST(TieShuffleTest, ClassPhaseOrderHoldsForEverySeed) {
  // Insertion order is the reverse of phase order; firing order must be
  // phase order, with or without shuffling.
  for (std::optional<uint64_t> seed :
       {std::optional<uint64_t>(), std::optional<uint64_t>(7),
        std::optional<uint64_t>(991)}) {
    Simulation sim;
    if (seed.has_value()) sim.EnableTieShuffle(*seed);
    std::string order;
    sim.Schedule(1.0, EventClass::kBookkeeping, [&order] { order += 'B'; });
    sim.Schedule(1.0, EventClass::kDefault, [&order] { order += 'D'; });
    sim.Schedule(1.0, EventClass::kScheduling, [&order] { order += 'S'; });
    sim.Schedule(1.0, EventClass::kInputGrowth, [&order] { order += 'I'; });
    sim.Schedule(1.0, EventClass::kTaskLifecycle,
                 [&order] { order += 'T'; });
    sim.RunUntil(100.0);
    EXPECT_EQ(order, "TISDB");
  }
}

std::vector<int> FiringOrder(std::optional<uint64_t> seed, int n) {
  Simulation sim;
  if (seed.has_value()) sim.EnableTieShuffle(*seed);
  std::vector<int> order;
  for (int i = 0; i < n; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.RunUntil(100.0);
  return order;
}

TEST(TieShuffleTest, PermutesWithinClassReproducibly) {
  const int n = 8;
  std::vector<int> insertion = FiringOrder(std::nullopt, n);
  std::vector<int> expected(n);
  for (int i = 0; i < n; ++i) expected[i] = i;
  EXPECT_EQ(insertion, expected);  // default: insertion order

  bool any_permuted = false;
  for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    std::vector<int> a = FiringOrder(seed, n);
    EXPECT_EQ(a, FiringOrder(seed, n)) << "seed " << seed;  // reproducible
    std::vector<int> sorted = a;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, expected) << "seed " << seed;  // still a permutation
    if (a != insertion) any_permuted = true;
  }
  EXPECT_TRUE(any_permuted);  // the shuffle really exercises other orders
}

TEST(TieShuffleTest, CommutingHandlersGiveSeedInvariantState) {
  // The property --shuffle-ties exists to check, in miniature: when tied
  // handlers commute, final state is identical for every tie order.
  auto digest = [](std::optional<uint64_t> seed) {
    Simulation sim;
    if (seed.has_value()) sim.EnableTieShuffle(*seed);
    int64_t sum = 0;
    uint64_t fired = 0;
    for (int i = 0; i < 16; ++i) {
      sim.Schedule(1.0, [&sum, &fired, i] {
        sum += static_cast<int64_t>(i) * i;
        ++fired;
      });
    }
    sim.RunUntil(100.0);
    return std::to_string(sum) + "/" + std::to_string(fired) + "/" +
           std::to_string(sim.tie_stats().tied_events);
  };
  std::string base = digest(std::nullopt);
  for (uint64_t seed : {11u, 23u, 37u}) {
    EXPECT_EQ(digest(seed), base) << "seed " << seed;
  }
}

TEST(TieShuffleTest, GlobalSeedAppliesToNewSimulations) {
  Simulation::SetGlobalTieShuffle(7);
  {
    Simulation sim;
    EXPECT_TRUE(sim.tie_shuffle_enabled());
    EXPECT_EQ(sim.tie_shuffle_seed(), 7u);
  }
  Simulation::SetGlobalTieShuffle(std::nullopt);
  EXPECT_FALSE(Simulation::GlobalTieShuffle().has_value());
  Simulation sim;
  EXPECT_FALSE(sim.tie_shuffle_enabled());
}

TEST(TieShuffleTest, CancelledTiesDoNotFireOrCount) {
  Simulation sim;
  sim.EnableTieShuffle(5);
  int fired = 0;
  sim.Schedule(1.0, [&fired] { ++fired; });
  EventHandle cancelled = sim.Schedule(1.0, [&fired] { ++fired; });
  sim.Schedule(1.0, [&fired] { ++fired; });
  cancelled.Cancel();
  sim.RunUntil(100.0);
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(sim.tie_stats().tied_events, 2u);
}

}  // namespace
}  // namespace dmr::sim
