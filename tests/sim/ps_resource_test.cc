#include "sim/ps_resource.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.h"

namespace dmr::sim {
namespace {

TEST(PsResourceTest, SingleRequestTakesDemandOverCapacity) {
  Simulation sim;
  PsResource disk(&sim, "disk", 100.0);  // 100 units/s
  double done_at = -1;
  disk.Submit(500.0, [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_NEAR(done_at, 5.0, 1e-6);
}

TEST(PsResourceTest, TwoEqualRequestsShareCapacity) {
  Simulation sim;
  PsResource disk(&sim, "disk", 100.0);
  std::vector<double> done;
  disk.Submit(500.0, [&] { done.push_back(sim.Now()); });
  disk.Submit(500.0, [&] { done.push_back(sim.Now()); });
  sim.Run();
  ASSERT_EQ(done.size(), 2u);
  // Each gets 50 units/s => both complete at t = 10.
  EXPECT_NEAR(done[0], 10.0, 1e-6);
  EXPECT_NEAR(done[1], 10.0, 1e-6);
}

TEST(PsResourceTest, PerRequestCapLimitsLoneRequest) {
  Simulation sim;
  PsResource cpu(&sim, "cpu", 4.0, /*per_request_cap=*/1.0);
  double done_at = -1;
  cpu.Submit(2.0, [&] { done_at = sim.Now(); });  // 2 core-seconds
  sim.Run();
  EXPECT_NEAR(done_at, 2.0, 1e-6);  // capped at 1 core despite capacity 4
}

TEST(PsResourceTest, FourTasksOnFourCoresRunAtFullSpeed) {
  Simulation sim;
  PsResource cpu(&sim, "cpu", 4.0, 1.0);
  std::vector<double> done;
  for (int i = 0; i < 4; ++i) {
    cpu.Submit(3.0, [&] { done.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(done.size(), 4u);
  for (double t : done) EXPECT_NEAR(t, 3.0, 1e-6);
}

TEST(PsResourceTest, OversubscriptionSlowsEveryone) {
  Simulation sim;
  PsResource cpu(&sim, "cpu", 4.0, 1.0);
  std::vector<double> done;
  for (int i = 0; i < 8; ++i) {
    cpu.Submit(3.0, [&] { done.push_back(sim.Now()); });
  }
  sim.Run();
  ASSERT_EQ(done.size(), 8u);
  // 8 tasks share 4 cores: 0.5 core each => 6 s.
  for (double t : done) EXPECT_NEAR(t, 6.0, 1e-6);
}

TEST(PsResourceTest, LateArrivalSlowsInFlightRequest) {
  Simulation sim;
  PsResource disk(&sim, "disk", 100.0);
  double first_done = -1, second_done = -1;
  disk.Submit(500.0, [&] { first_done = sim.Now(); });
  sim.Schedule(2.5, [&] {
    disk.Submit(250.0, [&] { second_done = sim.Now(); });
  });
  sim.Run();
  // First: 250 units by t=2.5, then shares 50/s => 250/50 = 5 more => 7.5.
  EXPECT_NEAR(first_done, 7.5, 1e-6);
  // Second: 250 at 50/s alongside => also done at 7.5.
  EXPECT_NEAR(second_done, 7.5, 1e-6);
}

TEST(PsResourceTest, CompletionFreesBandwidthForRemainder) {
  Simulation sim;
  PsResource disk(&sim, "disk", 100.0);
  double small_done = -1, big_done = -1;
  disk.Submit(100.0, [&] { small_done = sim.Now(); });
  disk.Submit(300.0, [&] { big_done = sim.Now(); });
  sim.Run();
  // Shared at 50/s: small finishes at t=2 (100 units), big has 200 left,
  // then runs at 100/s: +2 s => t=4.
  EXPECT_NEAR(small_done, 2.0, 1e-6);
  EXPECT_NEAR(big_done, 4.0, 1e-6);
}

TEST(PsResourceTest, ZeroDemandCompletesImmediately) {
  Simulation sim;
  PsResource disk(&sim, "disk", 100.0);
  double done_at = -1;
  disk.Submit(0.0, [&] { done_at = sim.Now(); });
  sim.Run();
  EXPECT_NEAR(done_at, 0.0, 1e-3);
}

TEST(PsResourceTest, CancelRequestStopsCallback) {
  Simulation sim;
  PsResource disk(&sim, "disk", 100.0);
  bool fired = false;
  auto id = disk.Submit(500.0, [&] { fired = true; });
  sim.Schedule(1.0, [&] { EXPECT_TRUE(disk.CancelRequest(id)); });
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(disk.active_requests(), 0u);
}

TEST(PsResourceTest, CancelUnknownRequestReturnsFalse) {
  Simulation sim;
  PsResource disk(&sim, "disk", 100.0);
  EXPECT_FALSE(disk.CancelRequest(12345));
}

TEST(PsResourceTest, UtilizationReflectsLoad) {
  Simulation sim;
  PsResource cpu(&sim, "cpu", 4.0, 1.0);
  EXPECT_DOUBLE_EQ(cpu.Utilization(), 0.0);
  cpu.Submit(100.0, nullptr);
  EXPECT_NEAR(cpu.Utilization(), 0.25, 1e-9);  // 1 core of 4
  cpu.Submit(100.0, nullptr);
  cpu.Submit(100.0, nullptr);
  cpu.Submit(100.0, nullptr);
  EXPECT_NEAR(cpu.Utilization(), 1.0, 1e-9);
  cpu.Submit(100.0, nullptr);  // oversubscribed, still 100%
  EXPECT_NEAR(cpu.Utilization(), 1.0, 1e-9);
}

TEST(PsResourceTest, TotalDeliveredTracksWork) {
  Simulation sim;
  PsResource disk(&sim, "disk", 100.0);
  disk.Submit(300.0, nullptr);
  sim.RunUntil(1.0);
  EXPECT_NEAR(disk.total_delivered(), 100.0, 1e-6);
  sim.RunUntil(3.0);
  EXPECT_NEAR(disk.total_delivered(), 300.0, 1e-6);
  sim.RunUntil(10.0);
  EXPECT_NEAR(disk.total_delivered(), 300.0, 1e-6);  // no more work
}

TEST(PsResourceTest, CallbackMayResubmitToSameResource) {
  Simulation sim;
  PsResource disk(&sim, "disk", 100.0);
  int completions = 0;
  std::function<void()> resubmit = [&] {
    if (++completions < 3) disk.Submit(100.0, resubmit);
  };
  disk.Submit(100.0, resubmit);
  sim.Run();
  EXPECT_EQ(completions, 3);
  EXPECT_NEAR(sim.Now(), 3.0, 1e-3);
}

TEST(PsResourceTest, ManyTinyRequestsAllComplete) {
  // Regression: floating-point residue once caused a same-timestamp event
  // livelock (see kMinDelay in ps_resource.cc).
  Simulation sim;
  PsResource disk(&sim, "disk", 80e6, 80e6);
  int done = 0;
  for (int i = 0; i < 500; ++i) {
    sim.Schedule(0.001 * i, [&disk, &done] {
      disk.Submit(94.0e6 / 7, [&done] { ++done; });
    });
  }
  uint64_t fired = sim.Run(2'000'000);
  EXPECT_EQ(done, 500);
  EXPECT_LT(fired, 1'000'000u);  // no event explosion
}

}  // namespace
}  // namespace dmr::sim
