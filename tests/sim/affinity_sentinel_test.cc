/// \file
/// The dynamic shard-affinity sentinel (sim/affinity.h): under
/// RunParallel each shard is bound to the worker thread that owns it for
/// the epoch, and a wrong-thread touch of shard state outside a barrier
/// window is a DMR_CHECK failure. Two contracts are pinned here:
///
///  1. The sentinel *fires* — a shard-0 event reaching into shard 1
///     dies with "shard-affinity violation" (run under the TSan and ASan
///     presets, where DMR_SHARD_SENTINEL_DEFAULT=1 arms it by default).
///  2. The sentinel is *observation-only* — enabling it changes no
///     digest: fired counts, per-shard event logs and tie stats are
///     byte-identical with the sentinel on and off, serial and parallel,
///     with and without tie shuffling.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/simulation.h"

namespace dmr::sim {
namespace {

constexpr int kShards = 4;

/// One log per shard, cache-line aligned so parallel workers append
/// without sharing.
struct alignas(64) ShardLog {
  std::vector<std::pair<int, SimTime>> fired;
};

struct RunOut {
  uint64_t fired = 0;
  std::vector<ShardLog> logs;
  TieStats ties;
};

/// A cross-shard ping workload with globally unique event times (integer
/// cells per (k, shard), distinct fractions per event kind), so serial
/// and parallel schedules are comparable tie-free.
RunOut RunWorkload(bool sentinel, bool parallel, uint64_t shuffle_seed) {
  Simulation sim;
  sim.ConfigureShards(kShards);
  sim.EnableAffinitySentinel(sentinel);
  if (shuffle_seed != 0) sim.EnableTieShuffle(shuffle_seed);
  RunOut out;
  out.logs.resize(kShards);
  for (int shard = 0; shard < kShards; ++shard) {
    for (int k = 0; k < 50; ++k) {
      const double cell = static_cast<double>(k * kShards + shard);
      sim.ScheduleOnShardDetached(
          shard, cell + 0.25, EventClass::kDefault,
          [&out, &sim, shard, k] {
            out.logs[static_cast<std::size_t>(shard)].fired.emplace_back(
                shard * 1000 + k, sim.Now());
            // Ping the next shard well past the conservative horizon.
            const int target = (shard + 1) % kShards;
            const double when = sim.Now() + 150.25;
            sim.ScheduleOnShardDetached(
                target, when, EventClass::kDefault, [&out, &sim, target, shard, k] {
                  out.logs[static_cast<std::size_t>(target)]
                      .fired.emplace_back(10000 + shard * 1000 + k,
                                          sim.Now());
                });
          });
    }
  }
  out.fired = parallel ? sim.RunParallel(kShards, 400.0, 3.0)
                       : sim.RunUntil(400.0);
  out.ties = sim.tie_stats();
  return out;
}

void ExpectIdentical(const RunOut& a, const RunOut& b, const char* what) {
  EXPECT_EQ(a.fired, b.fired) << what;
  EXPECT_EQ(a.ties.groups, b.ties.groups) << what;
  EXPECT_EQ(a.ties.tied_events, b.ties.tied_events) << what;
  for (int s = 0; s < kShards; ++s) {
    ASSERT_EQ(a.logs[s].fired, b.logs[s].fired)
        << what << ": shard " << s << " diverged";
  }
}

TEST(AffinitySentinelTest, DigestsAreIdenticalWithSentinelOnAndOff) {
  for (bool parallel : {false, true}) {
    for (uint64_t shuffle_seed : {0u, 99u}) {
      RunOut off = RunWorkload(/*sentinel=*/false, parallel, shuffle_seed);
      RunOut on = RunWorkload(/*sentinel=*/true, parallel, shuffle_seed);
      EXPECT_EQ(on.fired, 2u * kShards * 50u);
      ExpectIdentical(off, on,
                      parallel ? "parallel A/B" : "serial A/B");
    }
  }
}

TEST(AffinitySentinelTest, SerialEngineIsExempt) {
  // The serial engine legitimately runs every shard on one thread; the
  // sentinel must only arm inside RunParallel's worker epochs.
  Simulation sim;
  sim.ConfigureShards(2);
  sim.EnableAffinitySentinel(true);
  bool ran = false;
  sim.ScheduleOnShardDetached(0, 1.0, EventClass::kDefault, [&] {
    sim.CheckShardAccess(1);
    ran = true;
  });
  sim.RunUntil(10.0);
  EXPECT_TRUE(ran);
}

TEST(AffinitySentinelTest, OwnShardAccessPassesInParallel) {
  Simulation sim;
  sim.ConfigureShards(2);
  sim.EnableAffinitySentinel(true);
  for (int shard = 0; shard < 2; ++shard) {
    for (int i = 0; i < 25; ++i) {
      sim.ScheduleOnShardDetached(shard, 1.0 + i, EventClass::kDefault,
                                  [&sim, shard] {
                                    sim.CheckShardAccess(shard);
                                  });
    }
  }
  // All 50 events completing is the assertion: any wrong-binding would
  // have DMR_CHECK-aborted inside a worker.
  EXPECT_EQ(sim.RunParallel(2, 100.0, 5.0), 50u);
}

TEST(AffinitySentinelDeathTest, WrongThreadAccessDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  auto cross = [] {
    Simulation sim;
    sim.ConfigureShards(2);
    sim.EnableAffinitySentinel(true);
    for (int shard = 0; shard < 2; ++shard) {
      for (int i = 0; i < 50; ++i) {
        sim.ScheduleOnShardDetached(
            shard, 1.0 + i, EventClass::kDefault,
            // Reaching into the *other* shard from this worker is the
            // violation the sentinel exists to catch.
            [&sim, shard] { sim.CheckShardAccess(shard ^ 1); });
      }
    }
    sim.RunParallel(2, 100.0, 5.0);
  };
  EXPECT_DEATH(cross(), "shard-affinity violation");
}

TEST(AffinitySentinelDeathTest, DisabledSentinelDoesNotFire) {
  // The same wrong-thread access with the sentinel off must complete:
  // the guard is strictly an observer, never a behavior change.
  Simulation sim;
  sim.ConfigureShards(2);
  sim.EnableAffinitySentinel(false);
  uint64_t fired = 0;
  for (int shard = 0; shard < 2; ++shard) {
    for (int i = 0; i < 25; ++i) {
      sim.ScheduleOnShardDetached(shard, 1.0 + i, EventClass::kDefault,
                                  [&sim, shard] {
                                    sim.CheckShardAccess(shard ^ 1);
                                  });
    }
  }
  fired = sim.RunParallel(2, 100.0, 5.0);
  EXPECT_EQ(fired, 50u);
}

}  // namespace
}  // namespace dmr::sim
