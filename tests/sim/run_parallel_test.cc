/// \file
/// The sharded conservative-lookahead engine's contract (DESIGN.md §14):
/// RunParallel must fire each shard's events in exactly the order and at
/// exactly the times a serial RunUntil of the same program does, merge
/// cross-shard schedules deterministically at barrier epochs, and merge
/// counters/tie stats exactly. Built to run under ThreadSanitizer: every
/// callback touches only its own shard's cache-line-aligned log, so a
/// TSan report here is a real kernel race, not a test artifact.

#include <gtest/gtest.h>

#include <cstdint>
#include <utility>
#include <vector>

#include "sim/simulation.h"

namespace dmr::sim {
namespace {

constexpr int kShards = 4;
constexpr int kNodesPerShard = 8;
constexpr int kNodes = kShards * kNodesPerShard;
constexpr double kPeriod = 3.0;
constexpr double kUntil = 60.0;

/// One log per shard, cache-line aligned: parallel workers append
/// concurrently without sharing (the TSan-visible correctness claim).
struct alignas(64) ShardLog {
  std::vector<std::pair<int, SimTime>> fired;
};

/// A deterministic heartbeat + cross-shard ping program with globally
/// unique event times (the same (cell + frac) * slot construction the
/// scale bench uses): node n's k-th beat owns cell k * kNodes + n, each
/// event kind a distinct fraction of the node slot. Unique times mean no
/// ties, which keeps serial and parallel runs comparable even for
/// cross-shard pings (their tie-break sequence numbers are assigned at
/// different points by the two engines and only commute when untied).
struct PingProgram {
  Simulation* sim = nullptr;
  std::vector<ShardLog>* logs = nullptr;
  bool sharded = false;

  static constexpr double kSlot = kPeriod / kNodes;

  static int ShardOf(int node) { return node / kNodesPerShard; }
  static double TimeAt(long cell, double frac) {
    return (static_cast<double>(cell) + frac) * kSlot;
  }

  void Note(int shard, int code, int node) {
    (*logs)[static_cast<std::size_t>(shard)].fired.emplace_back(
        code * kNodes + node, sim->Now());
  }

  void Beat(int node, long k) {
    const int shard = ShardOf(node);
    Note(shard, 1, node);
    const long cell = k * kNodes + node;
    // A local completion, a cross-shard ping two lookahead epochs out
    // (>= the conservative horizon), and the next beat.
    sim->ScheduleDetachedAt(TimeAt(cell, 0.375), EventClass::kTaskLifecycle,
                            [this, node] { Note(ShardOf(node), 2, node); });
    const int target = (shard + 1) % kShards;
    const long ping_cells = static_cast<long>(2.5 * kPeriod / kSlot);
    sim->ScheduleOnShardDetached(
        sharded ? target : 0, TimeAt(cell + ping_cells, 0.75),
        EventClass::kDefault, [this, target, node] { Note(target, 3, node); });
    sim->ScheduleDetachedAt(TimeAt(cell + kNodes, 0.125),
                            EventClass::kScheduling,
                            [this, node, k] { Beat(node, k + 1); });
  }

  void Seed() {
    for (int node = 0; node < kNodes; ++node) {
      sim->ScheduleOnShardDetached(sharded ? ShardOf(node) : 0,
                                   TimeAt(node, 0.125),
                                   EventClass::kScheduling,
                                   [this, node] { Beat(node, 0); });
    }
  }
};

struct RunOutput {
  std::vector<ShardLog> logs;
  uint64_t fired = 0;
  TieStats ties;
};

RunOutput RunPing(bool parallel) {
  Simulation sim;
  sim.ConfigureShards(kShards);
  RunOutput out;
  out.logs.resize(kShards);
  PingProgram program{&sim, &out.logs, /*sharded=*/true};
  program.Seed();
  out.fired = parallel ? sim.RunParallel(kShards, kUntil, kPeriod)
                       : sim.RunUntil(kUntil);
  out.ties = sim.tie_stats();
  return out;
}

TEST(RunParallelTest, MatchesSerialPerShard) {
  RunOutput serial = RunPing(/*parallel=*/false);
  RunOutput parallel = RunPing(/*parallel=*/true);
  ASSERT_EQ(serial.fired, parallel.fired);
  ASSERT_GT(serial.fired, 1000u) << "program degenerated";
  for (int s = 0; s < kShards; ++s) {
    ASSERT_EQ(serial.logs[s].fired, parallel.logs[s].fired)
        << "shard " << s << " fired a different sequence in parallel";
  }
}

TEST(RunParallelTest, RepeatedRunsAreIdentical) {
  // Thread scheduling jitter across runs must be invisible: the barrier
  // protocol pins the merge order, not the OS.
  RunOutput first = RunPing(/*parallel=*/true);
  for (int repeat = 0; repeat < 3; ++repeat) {
    RunOutput again = RunPing(/*parallel=*/true);
    ASSERT_EQ(first.fired, again.fired);
    for (int s = 0; s < kShards; ++s) {
      ASSERT_EQ(first.logs[s].fired, again.logs[s].fired)
          << "run " << repeat << " diverged on shard " << s;
    }
  }
}

TEST(RunParallelTest, CrossShardPingsFireOnTheTargetShard) {
  RunOutput parallel = RunPing(/*parallel=*/true);
  // Every ping from source shard s must land in the log owned by shard
  // (s + 1) % kShards — i.e. the target's worker executed it. Ping log
  // entries carry id = 3 * kNodes + source_node.
  int pings_seen = 0;
  for (int s = 0; s < kShards; ++s) {
    for (const auto& [id, time] : parallel.logs[s].fired) {
      if (id < 3 * kNodes) continue;
      const int source_node = id - 3 * kNodes;
      EXPECT_EQ((PingProgram::ShardOf(source_node) + 1) % kShards, s)
          << "ping from node " << source_node << " fired on shard " << s;
      ++pings_seen;
    }
  }
  EXPECT_GT(pings_seen, 100) << "no cross-shard traffic was exercised";
}

TEST(RunParallelTest, CountersAndTieStatsMergeExactly) {
  RunOutput serial = RunPing(/*parallel=*/false);
  RunOutput parallel = RunPing(/*parallel=*/true);
  EXPECT_EQ(serial.fired, parallel.fired);
  EXPECT_EQ(serial.ties.groups, parallel.ties.groups);
  EXPECT_EQ(serial.ties.tied_events, parallel.ties.tied_events);
  EXPECT_EQ(serial.ties.max_group, parallel.ties.max_group);
  // The program is constructed tie-free; the detector must agree.
  EXPECT_EQ(parallel.ties.groups, 0u);
}

TEST(RunParallelTest, LocalTiesResolveIdenticallyUnderShuffle) {
  // With no cross-shard traffic each shard's sequence counter advances
  // identically in serial and parallel runs, so deliberately tied local
  // events must resolve the same way — for any shuffle seed.
  for (uint64_t shuffle_seed : {0u, 17u, 303u}) {
    auto run = [shuffle_seed](bool parallel) {
      Simulation sim;
      sim.ConfigureShards(kShards);
      if (shuffle_seed != 0) sim.EnableTieShuffle(shuffle_seed);
      auto logs = std::vector<ShardLog>(kShards);
      for (int shard = 0; shard < kShards; ++shard) {
        for (int i = 0; i < 200; ++i) {
          // Five-way ties at every integer second, per shard.
          const double when = 1.0 + i / 5;
          sim.ScheduleOnShardDetached(
              shard, when, EventClass::kDefault,
              [&logs, shard, i, &sim] {
                logs[static_cast<std::size_t>(shard)].fired.emplace_back(
                    i, sim.Now());
              });
        }
      }
      const uint64_t fired = parallel ? sim.RunParallel(kShards, 100.0)
                                      : sim.RunUntil(100.0);
      EXPECT_EQ(fired, static_cast<uint64_t>(kShards) * 200u);
      return logs;
    };
    auto serial = run(false);
    auto parallel = run(true);
    for (int s = 0; s < kShards; ++s) {
      ASSERT_EQ(serial[s].fired, parallel[s].fired)
          << "tied order diverged on shard " << s << " with shuffle seed "
          << shuffle_seed;
    }
  }
}

}  // namespace
}  // namespace dmr::sim
