#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <vector>

namespace dmr::sim {
namespace {

TEST(SimulationTest, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.Now(), 0.0);
}

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 3.0);
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, CallbacksCanScheduleMoreEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) sim.Schedule(1.0, chain);
  };
  sim.Schedule(1.0, chain);
  sim.Run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.Now(), 10.0);
}

TEST(SimulationTest, ZeroDelayFiresAtCurrentTime) {
  Simulation sim;
  double fire_time = -1;
  sim.Schedule(5.0, [&] {
    sim.Schedule(0.0, [&] { fire_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fire_time, 5.0);
}

TEST(SimulationTest, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  EventHandle handle = sim.Schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelAfterFiringIsHarmless) {
  Simulation sim;
  EventHandle handle = sim.Schedule(1.0, [] {});
  sim.Run();
  EXPECT_FALSE(handle.pending());
  handle.Cancel();  // no-op
}

TEST(SimulationTest, DefaultHandleIsNotPending) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.Cancel();  // no-op
}

TEST(SimulationTest, RunUntilStopsAtBoundary) {
  Simulation sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.Schedule(t, [&fired, &sim] { fired.push_back(sim.Now()); });
  }
  sim.RunUntil(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.Now(), 2.5);
  sim.RunUntil(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(sim.Now(), 10.0);
}

TEST(SimulationTest, RunUntilIncludesEventsAtBoundary) {
  Simulation sim;
  bool fired = false;
  sim.Schedule(2.0, [&] { fired = true; });
  sim.RunUntil(2.0);
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, RunUntilAdvancesTimeOnEmptyQueue) {
  Simulation sim;
  sim.RunUntil(42.0);
  EXPECT_EQ(sim.Now(), 42.0);
}

TEST(SimulationTest, MaxEventsBoundsRun) {
  Simulation sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(i, [&] { ++count; });
  }
  uint64_t fired = sim.Run(3);
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(count, 3);
}

TEST(SimulationTest, EventsFiredCounterAccumulates) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_fired(), 7u);
}

TEST(SimulationTest, ScheduleAtAbsoluteTime) {
  Simulation sim;
  double when = -1;
  sim.ScheduleAt(4.5, [&] { when = sim.Now(); });
  sim.Run();
  EXPECT_EQ(when, 4.5);
}

TEST(SimulationTest, CancelledEventsDoNotBlockRunUntil) {
  Simulation sim;
  EventHandle h1 = sim.Schedule(1.0, [] {});
  h1.Cancel();
  bool fired = false;
  sim.Schedule(5.0, [&] { fired = true; });
  sim.RunUntil(10.0);
  EXPECT_TRUE(fired);
}

}  // namespace
}  // namespace dmr::sim
