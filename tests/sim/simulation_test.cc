#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <utility>
#include <vector>

namespace dmr::sim {
namespace {

TEST(SimulationTest, StartsAtTimeZero) {
  Simulation sim;
  EXPECT_EQ(sim.Now(), 0.0);
}

TEST(SimulationTest, EventsFireInTimeOrder) {
  Simulation sim;
  std::vector<int> order;
  sim.Schedule(3.0, [&] { order.push_back(3); });
  sim.Schedule(1.0, [&] { order.push_back(1); });
  sim.Schedule(2.0, [&] { order.push_back(2); });
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 3.0);
}

TEST(SimulationTest, TiesBreakByInsertionOrder) {
  Simulation sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.Schedule(1.0, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulationTest, CallbacksCanScheduleMoreEvents) {
  Simulation sim;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 10) sim.Schedule(1.0, chain);
  };
  sim.Schedule(1.0, chain);
  sim.Run();
  EXPECT_EQ(count, 10);
  EXPECT_EQ(sim.Now(), 10.0);
}

TEST(SimulationTest, ZeroDelayFiresAtCurrentTime) {
  Simulation sim;
  double fire_time = -1;
  sim.Schedule(5.0, [&] {
    sim.Schedule(0.0, [&] { fire_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(fire_time, 5.0);
}

TEST(SimulationTest, CancelPreventsFiring) {
  Simulation sim;
  bool fired = false;
  EventHandle handle = sim.Schedule(1.0, [&] { fired = true; });
  EXPECT_TRUE(handle.pending());
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelAfterFiringIsHarmless) {
  Simulation sim;
  EventHandle handle = sim.Schedule(1.0, [] {});
  sim.Run();
  EXPECT_FALSE(handle.pending());
  handle.Cancel();  // no-op
}

TEST(SimulationTest, DefaultHandleIsNotPending) {
  EventHandle handle;
  EXPECT_FALSE(handle.pending());
  handle.Cancel();  // no-op
}

TEST(SimulationTest, RunUntilStopsAtBoundary) {
  Simulation sim;
  std::vector<double> fired;
  for (double t : {1.0, 2.0, 3.0, 4.0}) {
    sim.Schedule(t, [&fired, &sim] { fired.push_back(sim.Now()); });
  }
  sim.RunUntil(2.5);
  EXPECT_EQ(fired, (std::vector<double>{1.0, 2.0}));
  EXPECT_EQ(sim.Now(), 2.5);
  sim.RunUntil(10.0);
  EXPECT_EQ(fired.size(), 4u);
  EXPECT_EQ(sim.Now(), 10.0);
}

TEST(SimulationTest, RunUntilIncludesEventsAtBoundary) {
  Simulation sim;
  bool fired = false;
  sim.Schedule(2.0, [&] { fired = true; });
  sim.RunUntil(2.0);
  EXPECT_TRUE(fired);
}

TEST(SimulationTest, RunUntilAdvancesTimeOnEmptyQueue) {
  Simulation sim;
  sim.RunUntil(42.0);
  EXPECT_EQ(sim.Now(), 42.0);
}

TEST(SimulationTest, MaxEventsBoundsRun) {
  Simulation sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) {
    sim.Schedule(i, [&] { ++count; });
  }
  uint64_t fired = sim.Run(3);
  EXPECT_EQ(fired, 3u);
  EXPECT_EQ(count, 3);
}

TEST(SimulationTest, EventsFiredCounterAccumulates) {
  Simulation sim;
  for (int i = 0; i < 7; ++i) sim.Schedule(i, [] {});
  sim.Run();
  EXPECT_EQ(sim.events_fired(), 7u);
}

TEST(SimulationTest, ScheduleAtAbsoluteTime) {
  Simulation sim;
  double when = -1;
  sim.ScheduleAt(4.5, [&] { when = sim.Now(); });
  sim.Run();
  EXPECT_EQ(when, 4.5);
}

TEST(SimulationTest, CancelledEventsDoNotBlockRunUntil) {
  Simulation sim;
  EventHandle h1 = sim.Schedule(1.0, [] {});
  h1.Cancel();
  bool fired = false;
  sim.Schedule(5.0, [&] { fired = true; });
  sim.RunUntil(10.0);
  EXPECT_TRUE(fired);
}

// --- Cancel semantics under the slab/free-list slot storage ---

TEST(SimulationTest, CancelBeforeFire) {
  Simulation sim;
  bool fired = false;
  EventHandle handle = sim.Schedule(1.0, [&] { fired = true; });
  handle.Cancel();
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(sim.events_fired(), 0u);
}

TEST(SimulationTest, DoubleCancelIsIdempotent) {
  Simulation sim;
  bool fired = false;
  EventHandle handle = sim.Schedule(1.0, [&] { fired = true; });
  handle.Cancel();
  handle.Cancel();
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, CancelAfterFireIsANoOp) {
  Simulation sim;
  int count = 0;
  EventHandle handle = sim.Schedule(1.0, [&] { ++count; });
  sim.Run();
  EXPECT_EQ(count, 1);
  handle.Cancel();
  handle.Cancel();
  EXPECT_FALSE(handle.pending());
  // A later event still fires normally after the stale cancels.
  sim.Schedule(1.0, [&] { ++count; });
  sim.Run();
  EXPECT_EQ(count, 2);
}

TEST(SimulationTest, HandleOutlivesSimulation) {
  EventHandle pending_handle;
  EventHandle fired_handle;
  EventHandle cancelled_handle;
  {
    Simulation sim;
    fired_handle = sim.Schedule(1.0, [] {});
    pending_handle = sim.Schedule(10.0, [] {});
    cancelled_handle = sim.Schedule(10.0, [] {});
    cancelled_handle.Cancel();
    sim.Run(1);
  }
  // The simulation (and its queue) are gone; the handles must stay safe.
  EXPECT_FALSE(pending_handle.pending());  // never fired, queue destroyed
  EXPECT_FALSE(fired_handle.pending());
  EXPECT_FALSE(cancelled_handle.pending());
  pending_handle.Cancel();  // must not touch the dead simulation
  fired_handle.Cancel();
  cancelled_handle.Cancel();
}

TEST(SimulationTest, CopiedHandlesShareCancellationState) {
  Simulation sim;
  bool fired = false;
  EventHandle a = sim.Schedule(1.0, [&] { fired = true; });
  EventHandle b = a;        // copy
  EventHandle c;
  c = b;                    // copy-assign
  EXPECT_TRUE(a.pending());
  EXPECT_TRUE(c.pending());
  c.Cancel();
  EXPECT_FALSE(a.pending());
  EXPECT_FALSE(b.pending());
  sim.Run();
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, MovedFromHandleIsEmpty) {
  Simulation sim;
  EventHandle a = sim.Schedule(1.0, [] {});
  EventHandle b = std::move(a);
  EXPECT_TRUE(b.pending());
  EXPECT_FALSE(a.pending());  // NOLINT(bugprone-use-after-move)
  a.Cancel();                 // no-op on the empty handle
  EXPECT_TRUE(b.pending());
}

TEST(SimulationTest, SlotReuseDoesNotConfuseOldHandles) {
  // Fire enough events that freed slots get recycled, and verify a stale
  // handle from an early (fired) event never reports pending again.
  Simulation sim;
  EventHandle first = sim.Schedule(0.0, [] {});
  sim.Run();
  EXPECT_FALSE(first.pending());
  for (int i = 0; i < 2000; ++i) sim.Schedule(1.0 + i, [] {});
  sim.Run();
  EXPECT_FALSE(first.pending());
  first.Cancel();
  EXPECT_EQ(sim.events_fired(), 2001u);
}

TEST(SimulationTest, MassCancellationTriggersBatchedPurge) {
  Simulation sim;
  int fired = 0;
  std::vector<EventHandle> handles;
  for (int i = 0; i < 1000; ++i) {
    handles.push_back(sim.Schedule(1.0 + i, [&] { ++fired; }));
  }
  // Cancel everything but every 10th event; the purge threshold (>= 64
  // cancelled and >= 50% of the calendar queue, >= 25% for the heap) is
  // crossed many times over.
  for (size_t i = 0; i < handles.size(); ++i) {
    if (i % 10 != 0) handles[i].Cancel();
  }
  EXPECT_EQ(sim.live_size(), 100u);    // cancellation bookkeeping is exact
  EXPECT_LT(sim.queue_size(), 1000u);  // purge actually shrank the queue
  sim.Run();
  EXPECT_EQ(fired, 100);
}

TEST(SimulationTest, PurgePreservesFiringOrder) {
  Simulation sim;
  std::vector<int> order;
  std::vector<EventHandle> doomed;
  for (int i = 0; i < 500; ++i) {
    int when = 1000 - i;  // reverse-time insertion
    if (i % 2 == 0) {
      sim.Schedule(when, [&order, when] { order.push_back(when); });
    } else {
      doomed.push_back(sim.Schedule(when, [&order] { order.push_back(-1); }));
    }
  }
  for (auto& handle : doomed) handle.Cancel();
  sim.Run();
  ASSERT_EQ(order.size(), 250u);
  for (size_t i = 1; i < order.size(); ++i) {
    EXPECT_LT(order[i - 1], order[i]);
  }
}

TEST(SimulationTest, CancelInsideCallbackOfEarlierEvent) {
  Simulation sim;
  bool late_fired = false;
  EventHandle late = sim.Schedule(5.0, [&] { late_fired = true; });
  sim.Schedule(1.0, [&] { late.Cancel(); });
  sim.Run();
  EXPECT_FALSE(late_fired);
  EXPECT_EQ(sim.events_fired(), 1u);
}

TEST(SimulationTest, HeapCallbacksReleaseTheirCaptures) {
  // A shared_ptr capture is too big/non-trivial for the inline callback
  // buffer; verify the heap fallback destroys it both when fired and when
  // the simulation dies with the event still queued.
  auto token = std::make_shared<int>(42);
  {
    Simulation sim;
    sim.Schedule(1.0, [token] { (void)*token; });
    EXPECT_EQ(token.use_count(), 2);
    sim.Run();
    EXPECT_EQ(token.use_count(), 1);
    sim.Schedule(1.0, [token] { (void)*token; });  // never runs
    EXPECT_EQ(token.use_count(), 2);
  }
  EXPECT_EQ(token.use_count(), 1);
}

}  // namespace
}  // namespace dmr::sim
