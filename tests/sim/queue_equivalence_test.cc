/// \file
/// The calendar/heap equivalence contract (DESIGN.md §14), checked as a
/// randomized property: for hundreds of seeded random event programs —
/// cascading schedules, deliberate virtual-time ties, cancellations,
/// detached events, multi-shard placement — the calendar queue must fire
/// the exact (id, time) sequence the binary-heap oracle fires, with and
/// without tie shuffling.
///
/// The programs consume their RNG inside event callbacks, so any ordering
/// divergence immediately desynchronizes the two traces instead of being
/// masked by later coincidences.

#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <random>
#include <utility>
#include <vector>

#include "sim/simulation.h"

namespace dmr::sim {
namespace {

struct Firing {
  int id;
  SimTime time;
  bool operator==(const Firing& other) const {
    return id == other.id && time == other.time;
  }
};

/// A seeded random event cascade. Times are drawn from a coarse 0.25 s
/// grid so same-instant ties (the interesting case for ordering) are
/// common; roughly half the events are detached, a quarter of the seeded
/// cancellable ones are cancelled (exercising tombstone compaction in
/// both queue kinds), and fired events sometimes schedule children.
class RandomProgram {
 public:
  RandomProgram(Simulation* sim, uint64_t seed, int shards)
      : sim_(sim), rng_(seed), shards_(shards) {}

  void Seed(int n) {
    for (int i = 0; i < n; ++i) ScheduleOne(/*depth=*/0);
    for (std::size_t i = 0; i < handles_.size(); i += 4) {
      handles_[i].Cancel();
    }
  }

  std::vector<Firing> trace;

 private:
  void ScheduleOne(int depth) {
    static constexpr EventClass kClasses[] = {
        EventClass::kTaskLifecycle, EventClass::kInputGrowth,
        EventClass::kScheduling, EventClass::kDefault,
        EventClass::kBookkeeping};
    const int id = next_id_++;
    const SimTime when =
        sim_->Now() + 0.25 * static_cast<double>(rng_() % 200 + 1);
    const EventClass cls = kClasses[rng_() % 5];
    const int shard =
        shards_ > 1 ? static_cast<int>(rng_() % static_cast<uint64_t>(shards_))
                    : 0;
    auto fire = [this, id, depth] {
      trace.push_back({id, sim_->Now()});
      // The RNG is consumed in firing order: a single out-of-order event
      // shifts every later draw, so divergence cannot cancel out.
      if (depth < 2 && rng_() % 3 == 0) ScheduleOne(depth + 1);
    };
    if (rng_() % 2 == 0) {
      handles_.push_back(sim_->ScheduleOnShard(shard, when, cls, fire));
    } else {
      sim_->ScheduleOnShardDetached(shard, when, cls, fire);
    }
  }

  Simulation* sim_;
  std::mt19937_64 rng_;
  int shards_;
  int next_id_ = 0;
  std::vector<EventHandle> handles_;
};

std::vector<Firing> RunProgram(uint64_t seed, QueueKind kind, int shards,
                               std::optional<uint64_t> shuffle_seed,
                               uint64_t* fired_out = nullptr) {
  SimulationOptions options;
  options.queue = kind;
  // Deliberately small near-future tier so programs spill into the
  // overflow tier and exercise Refill/rebase, not just bucket drains.
  options.bucket_width = 0.375;
  options.num_buckets = 64;
  Simulation sim(options);
  if (shards > 1) sim.ConfigureShards(shards);
  if (shuffle_seed.has_value()) sim.EnableTieShuffle(*shuffle_seed);
  RandomProgram program(&sim, seed, shards);
  program.Seed(/*n=*/60);
  const uint64_t fired = sim.RunUntil(1000.0);
  if (fired_out != nullptr) *fired_out = fired;
  EXPECT_EQ(sim.live_size(), 0u) << "program did not drain";
  return std::move(program.trace);
}

TEST(QueueEquivalenceTest, RandomProgramsFireIdenticallyOnBothQueues) {
  for (uint64_t seed = 1; seed <= 500; ++seed) {
    uint64_t fired_calendar = 0;
    uint64_t fired_heap = 0;
    std::vector<Firing> calendar = RunProgram(
        seed, QueueKind::kCalendar, /*shards=*/1, std::nullopt,
        &fired_calendar);
    std::vector<Firing> heap = RunProgram(
        seed, QueueKind::kBinaryHeap, /*shards=*/1, std::nullopt,
        &fired_heap);
    ASSERT_EQ(calendar, heap) << "trace divergence at seed " << seed;
    ASSERT_EQ(fired_calendar, fired_heap) << "count mismatch at seed "
                                          << seed;
    ASSERT_GE(calendar.size(), 45u)
        << "degenerate program at seed " << seed;
  }
}

TEST(QueueEquivalenceTest, ShuffleSeedsPreserveEquivalence) {
  // Under tie shuffling both kinds must still produce one identical total
  // order per (program, shuffle seed): EventAfter is the single source of
  // truth for order, the queues only differ in how they realize it.
  for (uint64_t shuffle_seed : {7u, 23u, 41u, 97u, 1009u}) {
    for (uint64_t seed = 1; seed <= 25; ++seed) {
      std::vector<Firing> calendar = RunProgram(
          seed, QueueKind::kCalendar, /*shards=*/1, shuffle_seed);
      std::vector<Firing> heap = RunProgram(
          seed, QueueKind::kBinaryHeap, /*shards=*/1, shuffle_seed);
      ASSERT_EQ(calendar, heap)
          << "shuffled trace divergence at program seed " << seed
          << ", shuffle seed " << shuffle_seed;
    }
  }
}

TEST(QueueEquivalenceTest, ShardedSerialFiresIdenticallyOnBothQueues) {
  // Multi-shard serial runs interleave per-shard queues into one total
  // order via the k-way scan; the packed keys (class | shard | seq) are
  // identical for both kinds, so so must be the merged sequence.
  for (uint64_t seed = 1; seed <= 100; ++seed) {
    std::vector<Firing> calendar =
        RunProgram(seed, QueueKind::kCalendar, /*shards=*/4, std::nullopt);
    std::vector<Firing> heap =
        RunProgram(seed, QueueKind::kBinaryHeap, /*shards=*/4, std::nullopt);
    ASSERT_EQ(calendar, heap) << "sharded trace divergence at seed " << seed;
  }
}

TEST(QueueEquivalenceTest, ShuffleActuallyExercisesDifferentTieOrders) {
  // Sanity that the equivalence-under-shuffle property is not vacuous:
  // at least one shuffle seed must yield a trace different from the
  // unshuffled one, i.e. the random programs really do contain ties.
  // (Traces may differ in content, not just order: the cascade draws its
  // RNG in firing order, so a reordered tie changes later decisions.)
  std::vector<Firing> base =
      RunProgram(/*seed=*/3, QueueKind::kCalendar, 1, std::nullopt);
  bool any_reorder = false;
  for (uint64_t shuffle_seed : {7u, 23u, 41u}) {
    std::vector<Firing> shuffled =
        RunProgram(/*seed=*/3, QueueKind::kCalendar, 1, shuffle_seed);
    if (!(shuffled == base)) any_reorder = true;
  }
  EXPECT_TRUE(any_reorder)
      << "no shuffle seed produced a different tie order; the program has "
         "no effective ties and the property tests above are vacuous";
}

}  // namespace
}  // namespace dmr::sim
