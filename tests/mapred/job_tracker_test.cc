#include "mapred/job_tracker.h"

#include <gtest/gtest.h>

#include <optional>

#include "cluster/cluster.h"
#include "mapred/job_client.h"
#include "scheduler/fifo_scheduler.h"
#include "sim/simulation.h"

namespace dmr::mapred {
namespace {

class JobTrackerTest : public ::testing::Test {
 protected:
  JobTrackerTest()
      : config_(cluster::ClusterConfig::SingleUser()),
        cluster_(&sim_, config_),
        tracker_(&cluster_, &scheduler_) {
    tracker_.Start();
  }

  std::vector<InputSplit> MakeSplits(int n, uint64_t matching_each = 100) {
    std::vector<InputSplit> splits;
    for (int i = 0; i < n; ++i) {
      InputSplit s;
      s.file = "f";
      s.index = i;
      s.num_records = 750000;
      s.num_matching = matching_each;
      s.size_bytes = s.num_records * 132;
      s.node_id = (i / config_.disks_per_node) % config_.num_nodes;
      s.disk_id = i % config_.disks_per_node;
      splits.push_back(s);
    }
    return splits;
  }

  static MapOutputModel AllMatches() {
    return [](const InputSplit& s) { return s.num_matching; };
  }

  sim::Simulation sim_;
  cluster::ClusterConfig config_;
  cluster::Cluster cluster_;
  scheduler::FifoScheduler scheduler_;
  JobTracker tracker_;
};

TEST_F(JobTrackerTest, SubmitRequiresStartedTracker) {
  sim::Simulation sim2;
  cluster::Cluster cluster2(&sim2, config_);
  scheduler::FifoScheduler sched2;
  JobTracker unstarted(&cluster2, &sched2);
  auto id = unstarted.SubmitStaticJob(JobConf(), MakeSplits(1), AllMatches(),
                                      nullptr);
  EXPECT_TRUE(id.status().IsFailedPrecondition());
}

TEST_F(JobTrackerTest, StaticJobRunsToCompletion) {
  std::optional<JobStats> stats;
  auto id = tracker_.SubmitStaticJob(
      JobConf(), MakeSplits(8), AllMatches(),
      [&](const JobStats& s) { stats = s; });
  ASSERT_TRUE(id.ok());
  sim_.RunUntil(3600);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->splits_processed, 8);
  EXPECT_EQ(stats->records_processed, 8u * 750000u);
  EXPECT_EQ(stats->output_records, 800u);
  EXPECT_EQ(stats->result_records, 800u);  // no sample cap
  EXPECT_GT(stats->finish_time, 0.0);
  EXPECT_TRUE(*tracker_.IsJobComplete(*id));
}

TEST_F(JobTrackerTest, SampleSizeCapsResultRecords) {
  JobConf conf;
  conf.set_sample_size(150);
  std::optional<JobStats> stats;
  ASSERT_TRUE(tracker_
                  .SubmitStaticJob(conf, MakeSplits(4), AllMatches(),
                                   [&](const JobStats& s) { stats = s; })
                  .ok());
  sim_.RunUntil(3600);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->output_records, 400u);
  EXPECT_EQ(stats->result_records, 150u);
}

TEST_F(JobTrackerTest, SlotLimitsAreRespected) {
  // 80 splits, 40 slots: the cluster must never exceed capacity.
  ASSERT_TRUE(tracker_
                  .SubmitStaticJob(JobConf(), MakeSplits(80), AllMatches(),
                                   nullptr)
                  .ok());
  double max_used = 0;
  for (int step = 0; step < 2000; ++step) {
    sim_.Run(10);
    max_used = std::max(max_used, double(cluster_.used_map_slots()));
    EXPECT_LE(cluster_.used_map_slots(), cluster_.total_map_slots());
    for (int n = 0; n < cluster_.num_nodes(); ++n) {
      EXPECT_GE(cluster_.node(n)->free_map_slots(), 0);
    }
  }
  EXPECT_GT(max_used, 30);  // and it should actually use the cluster
}

TEST_F(JobTrackerTest, DynamicJobWaitsForFinalize) {
  std::optional<JobStats> stats;
  auto id = tracker_.SubmitDynamicJob(
      JobConf(), 10, AllMatches(), [&](const JobStats& s) { stats = s; });
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(tracker_.AddSplits(*id, MakeSplits(2)).ok());
  sim_.RunUntil(600);
  EXPECT_FALSE(stats.has_value());  // input not finalized: no reduce yet
  auto progress = tracker_.GetJobProgress(*id);
  ASSERT_TRUE(progress.ok());
  EXPECT_EQ(progress->maps_completed, 2);
  ASSERT_TRUE(tracker_.FinalizeInput(*id).ok());
  sim_.RunUntil(1200);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->splits_processed, 2);
}

TEST_F(JobTrackerTest, AddSplitsAfterFinalizeFails) {
  auto id = tracker_.SubmitDynamicJob(JobConf(), 10, AllMatches(), nullptr);
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(tracker_.FinalizeInput(*id).ok());
  EXPECT_TRUE(tracker_.AddSplits(*id, MakeSplits(1)).IsFailedPrecondition());
}

TEST_F(JobTrackerTest, FinalizeIsIdempotent) {
  auto id = tracker_.SubmitDynamicJob(JobConf(), 10, AllMatches(), nullptr);
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(tracker_.FinalizeInput(*id).ok());
  EXPECT_TRUE(tracker_.FinalizeInput(*id).ok());
}

TEST_F(JobTrackerTest, EmptyDynamicJobCompletesWithNothing) {
  std::optional<JobStats> stats;
  auto id = tracker_.SubmitDynamicJob(
      JobConf(), 0, AllMatches(), [&](const JobStats& s) { stats = s; });
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(tracker_.FinalizeInput(*id).ok());
  sim_.RunUntil(600);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->splits_processed, 0);
  EXPECT_EQ(stats->result_records, 0u);
}

TEST_F(JobTrackerTest, UnknownJobIdsAreNotFound) {
  EXPECT_TRUE(tracker_.AddSplits(999, MakeSplits(1)).IsNotFound());
  EXPECT_TRUE(tracker_.FinalizeInput(999).IsNotFound());
  EXPECT_TRUE(tracker_.GetJobProgress(999).status().IsNotFound());
  EXPECT_TRUE(tracker_.IsJobComplete(999).status().IsNotFound());
}

TEST_F(JobTrackerTest, RejectsBadSubmissions) {
  EXPECT_TRUE(tracker_.SubmitDynamicJob(JobConf(), -1, AllMatches(), nullptr)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(tracker_.SubmitDynamicJob(JobConf(), 1, nullptr, nullptr)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(JobTrackerTest, ClusterStatusReflectsLoad) {
  ClusterStatus before = tracker_.GetClusterStatus();
  EXPECT_EQ(before.total_map_slots, 40);
  EXPECT_EQ(before.occupied_map_slots, 0);
  EXPECT_EQ(before.available_map_slots(), 40);
  EXPECT_EQ(before.running_jobs, 0);

  ASSERT_TRUE(tracker_
                  .SubmitStaticJob(JobConf(), MakeSplits(40), AllMatches(),
                                   nullptr)
                  .ok());
  sim_.RunUntil(5.0);  // past the first heartbeats
  ClusterStatus during = tracker_.GetClusterStatus();
  EXPECT_GT(during.occupied_map_slots, 0);
  EXPECT_EQ(during.running_jobs, 1);
}

TEST_F(JobTrackerTest, LocalMapsDominateOnIdleCluster) {
  std::optional<JobStats> stats;
  ASSERT_TRUE(tracker_
                  .SubmitStaticJob(JobConf(), MakeSplits(40), AllMatches(),
                                   [&](const JobStats& s) { stats = s; })
                  .ok());
  sim_.RunUntil(3600);
  ASSERT_TRUE(stats.has_value());
  // One job, evenly placed splits: locality should be near-perfect.
  EXPECT_GT(tracker_.LocalityPercent(), 90.0);
  EXPECT_EQ(stats->local_maps + stats->remote_maps, 40);
}

TEST_F(JobTrackerTest, TwoJobsBothComplete) {
  std::optional<JobStats> first, second;
  ASSERT_TRUE(tracker_
                  .SubmitStaticJob(JobConf(), MakeSplits(20), AllMatches(),
                                   [&](const JobStats& s) { first = s; })
                  .ok());
  ASSERT_TRUE(tracker_
                  .SubmitStaticJob(JobConf(), MakeSplits(20), AllMatches(),
                                   [&](const JobStats& s) { second = s; })
                  .ok());
  sim_.RunUntil(3600);
  EXPECT_TRUE(first.has_value());
  EXPECT_TRUE(second.has_value());
  EXPECT_EQ(tracker_.completed_jobs().size(), 2u);
}

TEST_F(JobTrackerTest, RemoteReadsCountedWhenDataIsElsewhere) {
  // All splits on node 0's disks, so most tasks must read remotely.
  std::vector<InputSplit> splits = MakeSplits(40);
  for (auto& s : splits) {
    s.node_id = 0;
    s.disk_id = 0;
  }
  std::optional<JobStats> stats;
  ASSERT_TRUE(tracker_
                  .SubmitStaticJob(JobConf(), splits, AllMatches(),
                                   [&](const JobStats& s) { stats = s; })
                  .ok());
  sim_.RunUntil(24 * 3600);
  ASSERT_TRUE(stats.has_value());
  EXPECT_GT(stats->remote_maps, 30);  // only node 0's 4 slots can be local
}

}  // namespace
}  // namespace dmr::mapred
