#include <gtest/gtest.h>

#include "mapred/counters.h"
#include "mapred/job_history.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"

namespace dmr::mapred {
namespace {

TEST(CountersTest, AddGetMerge) {
  Counters c;
  EXPECT_EQ(c.Get("X"), 0);
  EXPECT_FALSE(c.Contains("X"));
  c.Increment("X");
  c.Add("X", 4);
  c.Add("Y", -2);
  EXPECT_EQ(c.Get("X"), 5);
  EXPECT_EQ(c.Get("Y"), -2);
  EXPECT_EQ(c.size(), 2u);

  Counters d;
  d.Add("X", 10);
  d.Add("Z", 1);
  c.Merge(d);
  EXPECT_EQ(c.Get("X"), 15);
  EXPECT_EQ(c.Get("Z"), 1);
}

TEST(CountersTest, NegativeDeltasRollBackPartialProgress) {
  // Hadoop decrements counters when a failed/killed attempt's partial
  // progress is rolled back; Add() must therefore accept negative deltas
  // and values may go below zero transiently.
  Counters c;
  c.Add("MAP_INPUT_RECORDS", 100);
  c.Add("MAP_INPUT_RECORDS", -40);
  EXPECT_EQ(c.Get("MAP_INPUT_RECORDS"), 60);
  c.Add("MAP_INPUT_RECORDS", -70);
  EXPECT_EQ(c.Get("MAP_INPUT_RECORDS"), -10);
  c.Add("MAP_INPUT_RECORDS", 10);
  EXPECT_EQ(c.Get("MAP_INPUT_RECORDS"), 0);
  EXPECT_TRUE(c.Contains("MAP_INPUT_RECORDS"));
}

TEST(CountersTest, ToStringIsSorted) {
  Counters c;
  c.Add("B", 2);
  c.Add("A", 1);
  EXPECT_EQ(c.ToString(), "A = 1\nB = 2\n");
}

TEST(JobHistoryTest, RecordAndFilter) {
  JobHistory history;
  history.Record(1.0, 1, JobEventKind::kSubmitted);
  history.Record(2.0, 2, JobEventKind::kSubmitted);
  history.Record(3.0, 1, JobEventKind::kMapLaunched, 0, 4);
  EXPECT_EQ(history.size(), 3u);
  auto job1 = history.ForJob(1);
  ASSERT_EQ(job1.size(), 2u);
  EXPECT_EQ(job1[1].kind, JobEventKind::kMapLaunched);
  EXPECT_EQ(job1[1].node_id, 4);
  EXPECT_NE(job1[1].ToString().find("MAP_LAUNCHED"), std::string::npos);
}

TEST(JobHistoryTest, TimelineOfUnknownJob) {
  JobHistory history;
  EXPECT_EQ(history.RenderTimeline(9), "(no events for job)\n");
}

class TrackedJobTest : public ::testing::Test {
 protected:
  TrackedJobTest() : bed_(cluster::ClusterConfig::SingleUser()) {}

  JobStats RunSamplingJob(const char* policy_name) {
    auto dataset = *testbed::MakeLineItemDataset(&bed_.fs(), 5, 0.0, 5,
                                                 policy_name);
    auto policy = *dynamic::PolicyTable::BuiltIn().Find(policy_name);
    sampling::SamplingJobOptions options;
    options.sample_size = 10000;
    options.seed = 5;
    auto submission = sampling::MakeSamplingJob(
        dataset.file, dataset.matching_per_partition, policy, options);
    EXPECT_TRUE(submission.ok());
    auto stats = bed_.RunJobToCompletion(*std::move(submission));
    EXPECT_TRUE(stats.ok());
    return *stats;
  }

  testbed::Testbed bed_;
};

TEST_F(TrackedJobTest, StatsCarryConsistentCounters) {
  JobStats stats = RunSamplingJob("LA");
  const Counters& c = stats.counters;
  EXPECT_EQ(c.Get(kCounterMapInputRecords),
            static_cast<int64_t>(stats.records_processed));
  EXPECT_EQ(c.Get(kCounterMapOutputRecords),
            static_cast<int64_t>(stats.output_records));
  EXPECT_EQ(c.Get(kCounterSplitsProcessed), stats.splits_processed);
  EXPECT_EQ(c.Get(kCounterLocalMaps) + c.Get(kCounterRemoteMaps),
            stats.local_maps + stats.remote_maps);
  EXPECT_EQ(c.Get(kCounterResultRecords), 10000);
  EXPECT_EQ(c.Get(kCounterFailedMaps), 0);
}

TEST_F(TrackedJobTest, HistoryTellsTheJobsStory) {
  JobStats stats = RunSamplingJob("C");
  auto events = bed_.tracker().history().ForJob(stats.job_id);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(events.front().kind, JobEventKind::kSubmitted);
  EXPECT_EQ(events.back().kind, JobEventKind::kJobCompleted);

  int launches = 0, completions = 0, adds = 0, finalized = 0, reduces = 0;
  for (const auto& ev : events) {
    switch (ev.kind) {
      case JobEventKind::kMapLaunched:
        ++launches;
        break;
      case JobEventKind::kMapCompleted:
        ++completions;
        break;
      case JobEventKind::kSplitsAdded:
        ++adds;
        break;
      case JobEventKind::kInputFinalized:
        ++finalized;
        break;
      case JobEventKind::kReduceStarted:
        ++reduces;
        break;
      default:
        break;
    }
  }
  EXPECT_EQ(launches, stats.splits_processed);
  EXPECT_EQ(completions, stats.splits_processed);
  // The conservative policy grows in many increments.
  EXPECT_EQ(adds, stats.input_increments);
  EXPECT_GT(adds, 2);
  EXPECT_EQ(finalized, 1);
  EXPECT_EQ(reduces, 1);

  // Events are time-ordered.
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].time, events[i].time);
  }
}

TEST_F(TrackedJobTest, TimelineRendersOccupancy) {
  JobStats stats = RunSamplingJob("HA");
  std::string timeline =
      bed_.tracker().history().RenderTimeline(stats.job_id, 2.0);
  EXPECT_NE(timeline.find("t="), std::string::npos);
  EXPECT_NE(timeline.find('#'), std::string::npos);
  // Peak concurrency appears somewhere (HA grabs the full 40-slot wave).
  EXPECT_NE(timeline.find("(40)"), std::string::npos);
}

}  // namespace
}  // namespace dmr::mapred
