#include "mapred/input_splits.h"

#include <gtest/gtest.h>

#include "dfs/file_system.h"

namespace dmr::mapred {
namespace {

TEST(InputSplitsTest, CopiesMetadataAndMatching) {
  dfs::FileSystem fs(10, 4);
  auto file = *fs.CreateFile("f", 8, 1000, 100);
  std::vector<uint64_t> matching = {1, 2, 3, 4, 5, 6, 7, 8};
  auto splits = *MakeInputSplits(file, matching);
  ASSERT_EQ(splits.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(splits[i].file, "f");
    EXPECT_EQ(splits[i].index, i);
    EXPECT_EQ(splits[i].num_records, 1000u);
    EXPECT_EQ(splits[i].size_bytes, 100000u);
    EXPECT_EQ(splits[i].num_matching, matching[i]);
    EXPECT_EQ(splits[i].node_id, file.partitions[i].node_id);
    EXPECT_EQ(splits[i].disk_id, file.partitions[i].disk_id);
  }
}

TEST(InputSplitsTest, EmptyMatchingMeansZero) {
  dfs::FileSystem fs(2, 2);
  auto file = *fs.CreateFile("f", 3, 10, 10);
  auto splits = *MakeInputSplits(file, {});
  for (const auto& s : splits) EXPECT_EQ(s.num_matching, 0u);
}

TEST(InputSplitsTest, SizeMismatchRejected) {
  dfs::FileSystem fs(2, 2);
  auto file = *fs.CreateFile("f", 3, 10, 10);
  EXPECT_TRUE(
      MakeInputSplits(file, {1, 2}).status().IsInvalidArgument());
}

TEST(InputSplitTest, LegacySplitHasPrimaryLocationOnly) {
  InputSplit split;
  split.node_id = 4;
  split.disk_id = 2;
  auto locations = split.all_locations();
  ASSERT_EQ(locations.size(), 1u);
  EXPECT_EQ(locations[0].node_id, 4);
  EXPECT_EQ(locations[0].disk_id, 2);
  EXPECT_TRUE(split.IsLocalTo(4));
  EXPECT_FALSE(split.IsLocalTo(5));
  EXPECT_EQ(split.ReadLocationFor(9).node_id, 4);
}

TEST(ClusterStatusTest, AvailableSlots) {
  ClusterStatus status;
  status.total_map_slots = 40;
  status.occupied_map_slots = 15;
  EXPECT_EQ(status.available_map_slots(), 25);
}

TEST(JobProgressTest, StarvedSemantics) {
  JobProgress p;
  EXPECT_TRUE(p.starved());
  p.maps_running = 1;
  EXPECT_FALSE(p.starved());
  p.maps_running = 0;
  p.maps_pending = 1;
  EXPECT_FALSE(p.starved());
}

TEST(JobStatsTest, ResponseTime) {
  JobStats stats;
  stats.submit_time = 10.0;
  stats.finish_time = 35.5;
  EXPECT_DOUBLE_EQ(stats.response_time(), 25.5);
}

}  // namespace
}  // namespace dmr::mapred
