#include "mapred/job.h"

#include <gtest/gtest.h>

#include "mapred/job_conf.h"

namespace dmr::mapred {
namespace {

InputSplit MakeSplit(int index, int node, uint64_t records = 1000,
                     uint64_t matching = 10) {
  InputSplit split;
  split.file = "f";
  split.index = index;
  split.num_records = records;
  split.num_matching = matching;
  split.size_bytes = records * 100;
  split.node_id = node;
  split.disk_id = 0;
  return split;
}

MapOutputModel Identity() {
  return [](const InputSplit& s) { return s.num_matching; };
}

TEST(JobConfTest, DefaultsAndAccessors) {
  JobConf conf;
  EXPECT_EQ(conf.name(), "job");
  EXPECT_EQ(conf.user(), "default");
  EXPECT_FALSE(conf.dynamic_job());
  EXPECT_DOUBLE_EQ(conf.eval_interval(), 4.0);
  EXPECT_DOUBLE_EQ(conf.work_threshold_pct(), 0.0);
  EXPECT_EQ(conf.sample_size(), 0u);

  conf.set_name("sample");
  conf.set_user("alice");
  conf.set_dynamic_job(true);
  conf.set_policy("LA");
  conf.set_eval_interval(2.0);
  conf.set_work_threshold_pct(10.0);
  conf.set_sample_size(10000);
  conf.set_input_file("lineitem");
  EXPECT_EQ(conf.name(), "sample");
  EXPECT_EQ(conf.user(), "alice");
  EXPECT_TRUE(conf.dynamic_job());
  EXPECT_EQ(conf.policy(), "LA");
  EXPECT_DOUBLE_EQ(conf.eval_interval(), 2.0);
  EXPECT_DOUBLE_EQ(conf.work_threshold_pct(), 10.0);
  EXPECT_EQ(conf.sample_size(), 10000u);
  EXPECT_EQ(conf.input_file(), "lineitem");
}

TEST(JobTest, AddAndTakeLocalSplits) {
  Job job(1, JobConf(), 10, Identity(), 0.0);
  job.AddSplits({MakeSplit(0, 2), MakeSplit(1, 3), MakeSplit(2, 2)});
  EXPECT_EQ(job.pending_count(), 3);
  EXPECT_TRUE(job.HasLocalPending(2));
  EXPECT_FALSE(job.HasLocalPending(7));
  auto s = job.TakeLocalPending(2);
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->node_id, 2);
  EXPECT_EQ(job.pending_count(), 2);
  auto s2 = job.TakeLocalPending(2);
  ASSERT_TRUE(s2.has_value());
  EXPECT_FALSE(job.TakeLocalPending(2).has_value());
}

TEST(JobTest, TakeAnyPrefersBiggestBacklog) {
  Job job(1, JobConf(), 10, Identity(), 0.0);
  job.AddSplits({MakeSplit(0, 1), MakeSplit(1, 5), MakeSplit(2, 5),
                 MakeSplit(3, 5)});
  auto s = job.TakeAnyPending();
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->node_id, 5);  // node 5 has the deepest queue
}

TEST(JobTest, TakeAnyFromEmptyIsNull) {
  Job job(1, JobConf(), 0, Identity(), 0.0);
  EXPECT_FALSE(job.TakeAnyPending().has_value());
  EXPECT_FALSE(job.HasPendingSplits());
}

TEST(JobTest, ProgressCountersTrackLifecycle) {
  Job job(1, JobConf(), 4, Identity(), 5.0);
  job.AddSplits({MakeSplit(0, 0, 1000, 3), MakeSplit(1, 1, 2000, 7)});
  JobProgress p0 = job.GetProgress(10.0);
  EXPECT_EQ(p0.splits_added, 2);
  EXPECT_EQ(p0.splits_total, 4);
  EXPECT_EQ(p0.maps_pending, 2);
  EXPECT_EQ(p0.pending_records, 3000u);
  EXPECT_FALSE(p0.starved());

  auto s = *job.TakeLocalPending(0);
  job.OnMapLaunched(s, 0, true);
  JobProgress p1 = job.GetProgress(11.0);
  EXPECT_EQ(p1.maps_running, 1);
  EXPECT_EQ(p1.maps_pending, 1);

  job.OnMapCompleted(s, job.ComputeMapOutput(s));
  JobProgress p2 = job.GetProgress(12.0);
  EXPECT_EQ(p2.maps_completed, 1);
  EXPECT_EQ(p2.records_processed, 1000u);
  EXPECT_EQ(p2.output_records, 3u);
  EXPECT_EQ(p2.pending_records, 2000u);
}

TEST(JobTest, StarvedWhenNothingPendingOrRunning) {
  Job job(1, JobConf(), 2, Identity(), 0.0);
  EXPECT_TRUE(job.GetProgress(0).starved());
  job.AddSplits({MakeSplit(0, 0)});
  EXPECT_FALSE(job.GetProgress(0).starved());
  auto s = *job.TakeAnyPending();
  job.OnMapLaunched(s, 0, true);
  EXPECT_FALSE(job.GetProgress(0).starved());
  job.OnMapCompleted(s, 0);
  EXPECT_TRUE(job.GetProgress(0).starved());
}

TEST(JobTest, ReduceReadinessRequiresFinalizedAndDrained) {
  Job job(1, JobConf(), 2, Identity(), 0.0);
  job.AddSplits({MakeSplit(0, 0)});
  EXPECT_FALSE(job.ReadyForReduce());  // not finalized
  auto s = *job.TakeAnyPending();
  job.OnMapLaunched(s, 0, true);
  job.FinalizeInput();
  EXPECT_FALSE(job.ReadyForReduce());  // map still running
  job.OnMapCompleted(s, 5);
  EXPECT_TRUE(job.ReadyForReduce());
}

TEST(JobTest, LocalityCountersInStats) {
  Job job(9, JobConf(), 3, Identity(), 1.0);
  job.AddSplits({MakeSplit(0, 0), MakeSplit(1, 1), MakeSplit(2, 2)});
  for (int i = 0; i < 3; ++i) {
    auto s = *job.TakeAnyPending();
    job.OnMapLaunched(s, 0, /*local=*/i == 0);
    job.OnMapCompleted(s, 1);
  }
  job.set_finish_time(99.0);
  JobStats stats = job.GetStats();
  EXPECT_EQ(stats.job_id, 9);
  EXPECT_EQ(stats.local_maps, 1);
  EXPECT_EQ(stats.remote_maps, 2);
  EXPECT_EQ(stats.splits_processed, 3);
  EXPECT_DOUBLE_EQ(stats.submit_time, 1.0);
  EXPECT_DOUBLE_EQ(stats.response_time(), 98.0);
}

TEST(JobTest, StateTransitions) {
  Job job(1, JobConf(), 0, Identity(), 0.0);
  EXPECT_EQ(job.state(), JobState::kMapping);
  EXPECT_STREQ(JobStateToString(job.state()), "MAPPING");
  job.set_state(JobState::kReducing);
  EXPECT_STREQ(JobStateToString(job.state()), "REDUCING");
  job.set_state(JobState::kSucceeded);
  EXPECT_STREQ(JobStateToString(job.state()), "SUCCEEDED");
}

}  // namespace
}  // namespace dmr::mapred
