#include "mapred/job_client.h"

#include <gtest/gtest.h>

#include <optional>

#include "cluster/cluster.h"
#include "scheduler/fifo_scheduler.h"
#include "sim/simulation.h"

namespace dmr::mapred {
namespace {

/// A scripted provider for exercising the JobClient loop.
class ScriptedProvider : public InputProvider {
 public:
  explicit ScriptedProvider(std::vector<InputResponse> script)
      : script_(std::move(script)) {}

  Status Initialize(const std::vector<InputSplit>& all_splits,
                    const JobConf& conf) override {
    (void)conf;
    all_splits_ = all_splits;
    initialized_ = true;
    return Status::OK();
  }

  InputResponse GetInitialInput(const ClusterStatus&) override {
    if (all_splits_.empty()) return InputResponse::EndOfInput();
    return InputResponse::Available({all_splits_[0]});
  }

  InputResponse Evaluate(const JobProgress& progress,
                         const ClusterStatus& cluster) override {
    (void)cluster;
    last_progress_ = progress;
    ++evaluations_;
    if (next_ < script_.size()) return script_[next_++];
    return InputResponse::EndOfInput();
  }

  bool initialized_ = false;
  int evaluations_ = 0;
  JobProgress last_progress_;

 private:
  std::vector<InputResponse> script_;
  size_t next_ = 0;
  std::vector<InputSplit> all_splits_;
};

class JobClientTest : public ::testing::Test {
 protected:
  JobClientTest()
      : config_(cluster::ClusterConfig::SingleUser()),
        cluster_(&sim_, config_),
        tracker_(&cluster_, &scheduler_),
        client_(&tracker_) {
    tracker_.Start();
  }

  std::vector<InputSplit> MakeSplits(int n) {
    std::vector<InputSplit> splits;
    for (int i = 0; i < n; ++i) {
      InputSplit s;
      s.file = "f";
      s.index = i;
      s.num_records = 750000;
      s.num_matching = 100;
      s.size_bytes = s.num_records * 132;
      s.node_id = i % config_.num_nodes;
      s.disk_id = 0;
      splits.push_back(s);
    }
    return splits;
  }

  JobSubmission MakeSubmission(std::shared_ptr<InputProvider> provider,
                               int splits = 8) {
    JobSubmission sub;
    sub.conf.set_dynamic_job(true);
    sub.conf.set_eval_interval(4.0);
    sub.input = MakeSplits(splits);
    sub.output_model = [](const InputSplit& s) { return s.num_matching; };
    sub.input_provider = std::move(provider);
    return sub;
  }

  sim::Simulation sim_;
  cluster::ClusterConfig config_;
  cluster::Cluster cluster_;
  scheduler::FifoScheduler scheduler_;
  JobTracker tracker_;
  JobClient client_;
};

TEST_F(JobClientTest, DynamicJobNeedsProvider) {
  JobSubmission sub = MakeSubmission(nullptr);
  EXPECT_TRUE(
      client_.Submit(std::move(sub), nullptr).status().IsInvalidArgument());
}

TEST_F(JobClientTest, RejectsNonPositiveEvalInterval) {
  auto provider = std::make_shared<ScriptedProvider>(
      std::vector<InputResponse>{InputResponse::EndOfInput()});
  JobSubmission sub = MakeSubmission(provider);
  sub.conf.set_eval_interval(0.0);
  EXPECT_TRUE(
      client_.Submit(std::move(sub), nullptr).status().IsInvalidArgument());
}

TEST_F(JobClientTest, StaticJobBypassesProviderLoop) {
  JobSubmission sub;
  sub.conf.set_dynamic_job(false);
  sub.input = MakeSplits(4);
  sub.output_model = [](const InputSplit&) { return uint64_t{1}; };
  std::optional<JobStats> stats;
  auto id = client_.Submit(std::move(sub),
                           [&](const JobStats& s) { stats = s; });
  ASSERT_TRUE(id.ok());
  sim_.RunUntil(3600);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->splits_processed, 4);
  EXPECT_EQ(stats->provider_evaluations, 0);
}

TEST_F(JobClientTest, ProviderDrivesIncrementalGrowth) {
  auto splits = MakeSplits(8);
  auto provider = std::make_shared<ScriptedProvider>(
      std::vector<InputResponse>{
          InputResponse::Available({splits[1], splits[2]}),
          InputResponse::NoInput(),
          InputResponse::Available({splits[3]}),
          InputResponse::EndOfInput()});
  std::optional<JobStats> stats;
  auto id = client_.Submit(MakeSubmission(provider),
                           [&](const JobStats& s) { stats = s; });
  ASSERT_TRUE(id.ok());
  EXPECT_TRUE(provider->initialized_);
  sim_.RunUntil(4 * 3600);
  ASSERT_TRUE(stats.has_value());
  // Initial split + 2 + 1 added by the script.
  EXPECT_EQ(stats->splits_processed, 4);
  EXPECT_EQ(stats->input_increments, 3);  // initial + two Available
  EXPECT_GE(stats->provider_evaluations, 4);
}

TEST_F(JobClientTest, ImmediateEndOfInputStillReduces) {
  auto provider = std::make_shared<ScriptedProvider>(
      std::vector<InputResponse>{InputResponse::EndOfInput()});
  std::optional<JobStats> stats;
  auto id = client_.Submit(MakeSubmission(provider),
                           [&](const JobStats& s) { stats = s; });
  ASSERT_TRUE(id.ok());
  sim_.RunUntil(3600);
  ASSERT_TRUE(stats.has_value());
  EXPECT_EQ(stats->splits_processed, 1);  // just the initial split
}

TEST_F(JobClientTest, WorkThresholdGatesEvaluations) {
  // Threshold 50 % of 8 splits = 4 completions required between provider
  // invocations; with 1-split increments the provider is only invoked when
  // the job starves, not at every 4 s tick.
  auto splits = MakeSplits(8);
  auto provider = std::make_shared<ScriptedProvider>(
      std::vector<InputResponse>{InputResponse::Available({splits[1]}),
                                 InputResponse::EndOfInput()});
  JobSubmission sub = MakeSubmission(provider);
  sub.conf.set_work_threshold_pct(50.0);
  std::optional<JobStats> stats;
  auto id =
      client_.Submit(std::move(sub), [&](const JobStats& s) { stats = s; });
  ASSERT_TRUE(id.ok());
  sim_.RunUntil(4 * 3600);
  ASSERT_TRUE(stats.has_value());
  // Exactly the two scripted invocations (each at a starvation point); the
  // periodic ticks in between must have been gated by the threshold.
  EXPECT_EQ(stats->provider_evaluations, 2);
}

TEST_F(JobClientTest, ProgressSnapshotReachesProvider) {
  auto provider = std::make_shared<ScriptedProvider>(
      std::vector<InputResponse>{InputResponse::EndOfInput()});
  auto id = client_.Submit(MakeSubmission(provider), nullptr);
  ASSERT_TRUE(id.ok());
  sim_.RunUntil(3600);
  EXPECT_EQ(provider->last_progress_.maps_completed, 1);
  EXPECT_EQ(provider->last_progress_.records_processed, 750000u);
  EXPECT_EQ(provider->last_progress_.output_records, 100u);
  EXPECT_TRUE(provider->last_progress_.starved());
}

}  // namespace
}  // namespace dmr::mapred
