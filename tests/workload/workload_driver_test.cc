#include "workload/workload_driver.h"

#include <gtest/gtest.h>

#include "sampling/sampling_job.h"
#include "testbed/testbed.h"

namespace dmr::workload {
namespace {

class WorkloadDriverTest : public ::testing::Test {
 protected:
  WorkloadDriverTest() : bed_(cluster::ClusterConfig::SingleUser()) {}

  testbed::Dataset MakeData(const std::string& tag) {
    auto dataset =
        testbed::MakeLineItemDataset(&bed_.fs(), 5, 0.0, 101, tag);
    EXPECT_TRUE(dataset.ok());
    return *std::move(dataset);
  }

  UserSpec SamplingUser(const std::string& name, const testbed::Dataset* ds,
                        const char* policy_name = "LA") {
    UserSpec user;
    user.name = name;
    user.job_class = "Sampling";
    auto policy = *dynamic::PolicyTable::BuiltIn().Find(policy_name);
    user.make_job = [ds, policy,
                     name](int it) -> Result<mapred::JobSubmission> {
      sampling::SamplingJobOptions options;
      options.job_name = name;
      options.user = name;
      options.sample_size = 10000;
      options.seed = 7 + 13ULL * it;
      return sampling::MakeSamplingJob(ds->file, ds->matching_per_partition,
                                       policy, options);
    };
    return user;
  }

  testbed::Testbed bed_;
};

TEST_F(WorkloadDriverTest, RequiresUsers) {
  WorkloadDriver driver(&bed_.client());
  EXPECT_TRUE(driver.Run({.duration = 100, .warmup = 10})
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(WorkloadDriverTest, RejectsWarmupBeyondDuration) {
  WorkloadDriver driver(&bed_.client());
  auto data = MakeData("a");
  driver.AddUser(SamplingUser("u", &data));
  EXPECT_TRUE(driver.Run({.duration = 100, .warmup = 100})
                  .status()
                  .IsInvalidArgument());
}

TEST_F(WorkloadDriverTest, ClosedLoopAccumulatesCompletions) {
  auto data = MakeData("a");
  WorkloadDriver driver(&bed_.client());
  driver.AddUser(SamplingUser("u1", &data));
  auto report = driver.Run({.duration = 1800, .warmup = 0});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ClassReport& sampling = report->For("Sampling");
  EXPECT_GT(sampling.completions, 5);
  EXPECT_GT(sampling.throughput_jobs_per_hour, 0.0);
  EXPECT_GT(sampling.response_times.Mean(), 0.0);
  EXPECT_GT(sampling.mean_partitions_per_job, 0.0);
  EXPECT_EQ(report->total_completions, sampling.completions);
}

TEST_F(WorkloadDriverTest, WarmupExcludesEarlyCompletions) {
  auto data = MakeData("a");
  WorkloadDriver cold(&bed_.client());
  cold.AddUser(SamplingUser("u1", &data));
  auto report = cold.Run({.duration = 1800, .warmup = 900});
  ASSERT_TRUE(report.ok());
  // Steady-state throughput is computed over the post-warmup hour only.
  double window_hours = 900.0 / 3600.0;
  EXPECT_NEAR(report->For("Sampling").throughput_jobs_per_hour,
              report->For("Sampling").completions / window_hours, 1e-9);
}

TEST_F(WorkloadDriverTest, MultipleClassesAreReportedSeparately) {
  auto a = MakeData("a");
  auto b = MakeData("b");
  WorkloadDriver driver(&bed_.client());
  driver.AddUser(SamplingUser("u1", &a));
  UserSpec scan;
  scan.name = "u2";
  scan.job_class = "NonSampling";
  scan.make_job = [&b](int) -> Result<mapred::JobSubmission> {
    return sampling::MakeSelectProjectJob(b.file, b.matching_per_partition,
                                          "scan", "u2");
  };
  driver.AddUser(std::move(scan));
  auto report = driver.Run({.duration = 1800, .warmup = 0});
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->For("Sampling").completions, 0);
  EXPECT_GT(report->For("NonSampling").completions, 0);
  EXPECT_EQ(report->total_completions,
            report->For("Sampling").completions +
                report->For("NonSampling").completions);
}

TEST_F(WorkloadDriverTest, ThinkTimeReducesThroughput) {
  auto a = MakeData("a");
  auto b = MakeData("b");
  {
    WorkloadDriver eager(&bed_.client());
    eager.AddUser(SamplingUser("u1", &a));
    auto fast = eager.Run({.duration = 1800, .warmup = 0});
    ASSERT_TRUE(fast.ok());

    testbed::Testbed bed2(cluster::ClusterConfig::SingleUser());
    auto data2 = testbed::MakeLineItemDataset(&bed2.fs(), 5, 0.0, 101, "b");
    ASSERT_TRUE(data2.ok());
    WorkloadDriver lazy(&bed2.client());
    UserSpec user = SamplingUser("u1", &*data2);
    user.think_time = 120.0;
    lazy.AddUser(std::move(user));
    auto slow = lazy.Run({.duration = 1800, .warmup = 0});
    ASSERT_TRUE(slow.ok());
    EXPECT_LT(slow->For("Sampling").completions,
              fast->For("Sampling").completions);
  }
}

TEST_F(WorkloadDriverTest, MissingClassYieldsEmptyReport) {
  auto data = MakeData("a");
  WorkloadDriver driver(&bed_.client());
  driver.AddUser(SamplingUser("u1", &data));
  auto report = driver.Run({.duration = 600, .warmup = 0});
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->For("NoSuchClass").completions, 0);
}

TEST_F(WorkloadDriverTest, OpenLoopArrivalsFollowTheRate) {
  auto data = MakeData("a");
  WorkloadDriver driver(&bed_.client());
  UserSpec user = SamplingUser("poisson", &data, "HA");
  user.arrival_rate = 1.0 / 120.0;  // one job every ~2 minutes
  user.arrival_seed = 9;
  driver.AddUser(std::move(user));
  auto report = driver.Run({.duration = 2 * 3600, .warmup = 0});
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // ~60 arrivals expected over 2 h; allow a generous Poisson band.
  int completions = report->For("Sampling").completions;
  EXPECT_GT(completions, 35);
  EXPECT_LT(completions, 90);
}

TEST_F(WorkloadDriverTest, OpenLoopKeepsArrivingWhileJobsRun) {
  // Closed loop with one user can never have two jobs in flight; an open
  // loop can. Use a conservative policy so jobs are slow, and a fast
  // arrival rate, then check more jobs completed than a closed loop could.
  auto data = MakeData("a");

  WorkloadDriver closed(&bed_.client());
  closed.AddUser(SamplingUser("closed", &data, "C"));
  auto closed_report = closed.Run({.duration = 1800, .warmup = 0});
  ASSERT_TRUE(closed_report.ok());

  testbed::Testbed bed2(cluster::ClusterConfig::SingleUser());
  auto data2 = *testbed::MakeLineItemDataset(&bed2.fs(), 5, 0.0, 101, "a");
  WorkloadDriver open(&bed2.client());
  UserSpec user;
  user.name = "open";
  user.job_class = "Sampling";
  auto policy = *dynamic::PolicyTable::BuiltIn().Find("C");
  const testbed::Dataset* ds = &data2;
  user.make_job = [ds, policy](int it) -> Result<mapred::JobSubmission> {
    sampling::SamplingJobOptions options;
    options.job_name = "open";
    options.user = "open";
    options.sample_size = 10000;
    options.seed = 7 + 13ULL * it;
    return sampling::MakeSamplingJob(ds->file, ds->matching_per_partition,
                                     policy, options);
  };
  user.arrival_rate = 0.1;  // every ~10 s, far faster than C completes
  open.AddUser(std::move(user));
  auto open_report = open.Run({.duration = 1800, .warmup = 0});
  ASSERT_TRUE(open_report.ok());
  EXPECT_GT(open_report->For("Sampling").completions,
            closed_report->For("Sampling").completions);
}

TEST_F(WorkloadDriverTest, FactoryErrorSurfaces) {
  WorkloadDriver driver(&bed_.client());
  UserSpec broken;
  broken.name = "bad";
  broken.job_class = "X";
  broken.make_job = [](int) -> Result<mapred::JobSubmission> {
    return Status::Internal("factory exploded");
  };
  driver.AddUser(std::move(broken));
  auto report = driver.Run({.duration = 600, .warmup = 0});
  EXPECT_TRUE(report.status().IsInternal());
}

}  // namespace
}  // namespace dmr::workload
