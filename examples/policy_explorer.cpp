/// \file
/// Policy explorer: runs one predicate-based sampling job under every
/// configured growth policy — including custom policies loaded from a
/// policy file (the paper's policy.xml analogue) — and prints a comparison
/// of response time, partitions processed, input increments and provider
/// evaluations. The per-policy runs are independent simulations and fan
/// out across hardware threads (DMR_THREADS caps the worker count).
///
/// Usage: policy_explorer [--trace=FILE] [--metrics=FILE] [--threads=N]
///                        [scale] [zipf_z]
///   scale   TPC-H scale factor (default 20)
///   zipf_z  skew of the matching-record distribution: 0, 1 or 2
///           (default 1)

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/growth_policy.h"
#include "exec/parallel.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace {

template <typename T>
T Unwrap(dmr::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueUnsafe();
}

/// Custom policies a user might define beside the built-in Table I set.
constexpr const char* kCustomPolicyFile = R"(
# Custom growth policies (policy file format; see dynamic/growth_policy.h)
policy.Turbo.description   = all free slots, re-evaluated constantly
policy.Turbo.work_threshold = 0
policy.Turbo.grab_limit     = AS
policy.Turbo.eval_interval  = 2

policy.Steady.description   = a fixed trickle of four partitions per step
policy.Steady.work_threshold = 5
policy.Steady.grab_limit     = 4
)";

dmr::Result<dmr::mapred::JobStats> RunPolicy(
    const dmr::dynamic::GrowthPolicy& policy, int scale, double z) {
  using namespace dmr;
  testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
  DMR_ASSIGN_OR_RETURN(
      testbed::Dataset dataset,
      testbed::MakeLineItemDataset(&bed.fs(), scale, z, 2024));
  sampling::SamplingJobOptions options;
  options.job_name = "explore-" + policy.name();
  options.sample_size = tpch::kPaperSampleSize;
  options.seed = 5150;
  DMR_ASSIGN_OR_RETURN(
      mapred::JobSubmission submission,
      sampling::MakeSamplingJob(dataset.file, dataset.matching_per_partition,
                                policy, options));
  return bed.RunJobToCompletion(std::move(submission));
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions bench_options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(bench_options, "policy_explorer");
  int scale = argc > 1 ? std::atoi(argv[1]) : 20;
  double z = argc > 2 ? std::atof(argv[2]) : 1.0;
  if (scale < 1 || (z != 0.0 && z != 1.0 && z != 2.0)) {
    std::fprintf(stderr, "usage: %s [scale>=1] [z in {0,1,2}]\n", argv[0]);
    return 2;
  }

  // Built-in Table I policies + the custom policy file.
  dynamic::PolicyTable policies = dynamic::PolicyTable::BuiltIn();
  auto custom =
      Unwrap(dynamic::PolicyTable::Parse(kCustomPolicyFile), "policy file");
  for (const auto& p : custom.policies()) {
    Unwrap(Result<bool>([&] {
             Status st = policies.Add(p);
             if (!st.ok()) return Result<bool>(st);
             return Result<bool>(true);
           }()),
           "register policy");
  }

  std::printf("sampling LINEITEM %dx (skew z=%g), k = %llu, single user on "
              "the simulated 10-node cluster\n\n",
              scale, z, (unsigned long long)tpch::kPaperSampleSize);

  exec::ThreadPool pool = bench_options.MakePool();
  auto stats = Unwrap(
      exec::ParallelMap<mapred::JobStats>(
          &pool, policies.policies().size(),
          [&](size_t i) {
            return RunPolicy(policies.policies()[i], scale, z);
          }),
      "policy runs");

  TablePrinter table({"policy", "response (s)", "partitions", "of total",
                      "increments", "evaluations"});
  for (size_t i = 0; i < stats.size(); ++i) {
    table.AddRow({policies.policies()[i].name(),
                  std::to_string(stats[i].response_time()).substr(0, 6),
                  std::to_string(stats[i].splits_processed),
                  std::to_string(stats[i].splits_total),
                  std::to_string(stats[i].input_increments),
                  std::to_string(stats[i].provider_evaluations)});
  }
  table.Print();
  std::printf("\nTip: edit kCustomPolicyFile (or load your own) to try new "
              "grab-limit expressions over AS/TS.\n");
  return 0;
}
