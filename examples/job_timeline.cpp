/// \file
/// Visualizes how differently the growth policies consume the cluster:
/// runs one predicate-based sampling job per policy on the simulated
/// 10-node testbed and renders each job's map-slot occupancy timeline from
/// the JobTracker's history log, plus its Hadoop-style counters.
///
/// Usage: job_timeline [policy ...]    (default: HA C Hadoop)

#include <cstdio>
#include <string>
#include <vector>

#include "dynamic/growth_policy.h"
#include "mapred/job_history.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace {

template <typename T>
T Unwrap(dmr::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueUnsafe();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmr;
  std::vector<std::string> policies;
  for (int i = 1; i < argc; ++i) policies.push_back(argv[i]);
  if (policies.empty()) policies = {"HA", "C", "Hadoop"};

  for (const auto& name : policies) {
    testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
    auto dataset = Unwrap(
        testbed::MakeLineItemDataset(&bed.fs(), 10, /*z=*/1.0, 303),
        "dataset");
    auto policy =
        Unwrap(dynamic::PolicyTable::BuiltIn().Find(name), "policy");
    sampling::SamplingJobOptions options;
    options.job_name = "timeline-" + name;
    options.sample_size = tpch::kPaperSampleSize;
    options.seed = 99;
    auto submission = Unwrap(
        sampling::MakeSamplingJob(dataset.file,
                                  dataset.matching_per_partition, policy,
                                  options),
        "job");
    auto stats =
        Unwrap(bed.RunJobToCompletion(std::move(submission)), "run");

    std::printf("================ policy %s ================\n",
                name.c_str());
    std::printf("response %.1fs, %d/%d partitions, %d increments\n\n",
                stats.response_time(), stats.splits_processed,
                stats.splits_total, stats.input_increments);
    std::printf("map-slot occupancy over time (one row per 2 s):\n%s\n",
                bed.tracker()
                    .history()
                    .RenderTimeline(stats.job_id, 2.0)
                    .c_str());
    std::printf("counters:\n%s\n", stats.counters.ToString().c_str());
  }
  std::printf("Aggressive policies spike wide and finish fast; conservative "
              "ones trickle; Hadoop holds every slot until the whole input "
              "is done.\n");
  return 0;
}
