/// \file
/// Quickstart: generate a small LINEITEM dataset, compile a HiveQL
/// predicate-based sampling query, and execute it two ways:
///
///  1. For real, on this machine, with the LocalRuntime (actual records,
///     actual predicate evaluation, multithreaded map tasks); and
///  2. On the simulated 10-node Hadoop cluster, comparing a dynamic policy
///     with stock Hadoop execution.
///
/// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "dynamic/growth_policy.h"
#include "exec/local_runtime.h"
#include "expr/value.h"
#include "hive/compiler.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"
#include "tpch/generator.h"
#include "tpch/lineitem.h"

namespace {

/// Exits with a message when a Status is an error.
template <typename T>
T Unwrap(dmr::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueUnsafe();
}

}  // namespace

int main() {
  using namespace dmr;

  // ---------------------------------------------------------------------
  // 1. Generate a small, real LINEITEM dataset: 16 partitions of 50,000
  //    rows, matching records placed with moderate skew (z = 1).
  // ---------------------------------------------------------------------
  tpch::SkewSpec spec;
  spec.num_partitions = 16;
  spec.records_per_partition = 50000;
  spec.selectivity = 0.0005;  // 0.05 %, as in the paper
  spec.zipf_z = 1.0;
  spec.seed = 7;
  auto dataset = Unwrap(tpch::MaterializeDataset(spec), "generate dataset");
  std::printf("dataset: %llu records in %d partitions, %llu match \"%s\"\n",
              (unsigned long long)dataset.total_records(),
              spec.num_partitions,
              (unsigned long long)dataset.total_matching(),
              dataset.predicate.sql.c_str());

  // ---------------------------------------------------------------------
  // 2. Compile a HiveQL sampling query. The LIMIT makes the compiler mark
  //    the job dynamic; SET dynamic.job.policy picks the growth policy.
  // ---------------------------------------------------------------------
  hive::HiveCompiler compiler(&tpch::LineItemSchema(),
                              &dynamic::PolicyTable::BuiltIn());
  auto set = Unwrap(compiler.Process("SET dynamic.job.policy = LA"), "SET");
  std::printf("session: %s\n", set.message.c_str());

  const char* sql =
      "SELECT ORDERKEY, PARTKEY, SUPPKEY FROM lineitem "
      "WHERE DISCOUNT > 0.10 LIMIT 200";
  auto processed = Unwrap(compiler.Process(sql), "compile query");
  const hive::CompiledQuery& query = *processed.query;
  std::printf("\n%s\n", query.ExplainString().c_str());

  // ---------------------------------------------------------------------
  // 3. Execute locally: real records, real predicate evaluation.
  // ---------------------------------------------------------------------
  auto policy = Unwrap(compiler.CurrentPolicy(), "policy");
  exec::LocalRuntime runtime({.num_threads = 4});
  auto result = Unwrap(runtime.Execute(query, dataset, policy), "execute");

  std::printf("local run: %zu sample rows (asked for %llu), scanned %llu "
              "records in %d/%d partitions over %d provider rounds; "
              "estimated selectivity %.4f%%\n",
              result.rows.size(), (unsigned long long)query.limit,
              (unsigned long long)result.records_scanned,
              result.partitions_processed, result.partitions_total,
              result.provider_rounds,
              100.0 * result.estimated_selectivity);
  std::printf("first rows of the sample:\n");
  for (size_t i = 0; i < result.rows.size() && i < 5; ++i) {
    std::printf("  (%s, %s, %s)\n",
                expr::ValueToString(result.rows[i][0]).c_str(),
                expr::ValueToString(result.rows[i][1]).c_str(),
                expr::ValueToString(result.rows[i][2]).c_str());
  }

  // ---------------------------------------------------------------------
  // 4. The same query on the simulated 10-node cluster, LA vs Hadoop.
  // ---------------------------------------------------------------------
  std::printf("\nsimulated 10-node cluster (paper testbed), 20x data:\n");
  for (const char* policy_name : {"LA", "Hadoop"}) {
    testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
    auto sim_dataset = Unwrap(
        testbed::MakeLineItemDataset(&bed.fs(), 20, /*z=*/1.0, 42),
        "sim dataset");
    auto sim_policy =
        Unwrap(dynamic::PolicyTable::BuiltIn().Find(policy_name), "policy");
    sampling::SamplingJobOptions options;
    options.job_name = std::string("quickstart-") + policy_name;
    options.sample_size = 10000;
    options.seed = 11;
    auto submission = Unwrap(
        sampling::MakeSamplingJob(sim_dataset.file,
                                  sim_dataset.matching_per_partition,
                                  sim_policy, options),
        "make job");
    auto stats =
        Unwrap(bed.RunJobToCompletion(std::move(submission)), "run job");
    std::printf(
        "  %-6s response %6.1fs, processed %3d/%d partitions, sample %llu\n",
        policy_name, stats.response_time(), stats.splits_processed,
        stats.splits_total, (unsigned long long)stats.result_records);
  }
  std::printf("\nThe dynamic job answers from a fraction of the input; the "
              "Hadoop policy scans everything.\n");
  return 0;
}
