/// \file
/// A small command-line sampler over on-disk datasets — the "downstream
/// user" artifact: point it at a dataset directory (written with
/// tpch::WriteDatasetToDirectory; pass --generate to create a demo one) and
/// give it a HiveQL sampling query.
///
/// Usage:
///   sample_tool --generate <dir>          create a demo dataset directory
///   sample_tool <dir> "<SQL>" [policy]    run a query against it
///
/// Example:
///   sample_tool --generate /tmp/lineitem
///   sample_tool /tmp/lineitem \
///     "SELECT ORDERKEY, DISCOUNT FROM lineitem WHERE DISCOUNT > 0.10 \
///      LIMIT 25" C

#include <cstdio>
#include <cstring>
#include <string>

#include "dynamic/growth_policy.h"
#include "exec/local_runtime.h"
#include "expr/value.h"
#include "hive/compiler.h"
#include "tpch/dataset_io.h"
#include "tpch/lineitem.h"

namespace {

template <typename T>
T Unwrap(dmr::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueUnsafe();
}

int Generate(const std::string& dir) {
  dmr::tpch::SkewSpec spec;
  spec.num_partitions = 12;
  spec.records_per_partition = 25000;
  spec.selectivity = 0.002;
  spec.zipf_z = 1.0;
  spec.seed = 2012;
  auto dataset =
      Unwrap(dmr::tpch::MaterializeDataset(spec), "generate dataset");
  dmr::Status st = dmr::tpch::WriteDatasetToDirectory(dataset, dir);
  if (!st.ok()) {
    std::fprintf(stderr, "write: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("wrote %llu records (%llu matching \"%s\") into %d partition "
              "files under %s\n",
              (unsigned long long)dataset.total_records(),
              (unsigned long long)dataset.total_matching(),
              dataset.predicate.sql.c_str(), spec.num_partitions,
              dir.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmr;
  if (argc >= 3 && std::strcmp(argv[1], "--generate") == 0) {
    return Generate(argv[2]);
  }
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s --generate <dir>\n"
                 "       %s <dir> \"<SQL>\" [policy]\n",
                 argv[0], argv[0]);
    return 2;
  }
  std::string dir = argv[1];
  std::string sql = argv[2];
  std::string policy_name = argc > 3 ? argv[3] : "LA";

  auto dataset =
      Unwrap(tpch::ReadDatasetFromDirectory(dir), "load dataset");
  std::printf("loaded %zu partitions (%llu records) from %s\n",
              dataset.partitions.size(),
              (unsigned long long)dataset.total_records(), dir.c_str());

  hive::HiveCompiler compiler(&tpch::LineItemSchema(),
                              &dynamic::PolicyTable::BuiltIn());
  Unwrap(compiler.Process("SET dynamic.job.policy = " + policy_name),
         "set policy");
  auto processed = Unwrap(compiler.Process(sql), "compile");
  if (!processed.query.has_value()) {
    std::printf("%s\n", processed.message.c_str());
    return 0;
  }
  const hive::CompiledQuery& query = *processed.query;

  exec::LocalRuntime runtime({.num_threads = 4});
  auto policy = Unwrap(compiler.CurrentPolicy(), "policy");
  auto result = Unwrap(runtime.Execute(query, dataset, policy), "execute");

  for (const auto& name : query.projected_names) {
    std::printf("%s\t", name.c_str());
  }
  std::printf("\n");
  for (const auto& row : result.rows) {
    for (const auto& value : row) {
      std::printf("%s\t", expr::ValueToString(value).c_str());
    }
    std::printf("\n");
  }
  std::fprintf(stderr,
               "-- %zu rows; scanned %llu records in %d/%d partitions over "
               "%d rounds (policy %s)\n",
               result.rows.size(),
               (unsigned long long)result.records_scanned,
               result.partitions_processed, result.partitions_total,
               result.provider_rounds, policy.name().c_str());
  return 0;
}
