/// \file
/// Shared-cluster scenario (the paper's Section V-E in miniature): a team of
/// analysts shares the 10-node cluster. Some explore data with
/// predicate-based sampling queries, the rest run full select-project scans.
/// The example contrasts how the samplers' growth policy affects *everyone*:
/// run the sampling class under stock Hadoop execution and the scan users
/// crawl; switch to a conservative policy and both classes speed up.
///
/// Usage: shared_cluster [sampling_users (0..10)] [scheduler: fifo|fair]

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/table_printer.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"
#include "workload/workload_driver.h"

namespace {

template <typename T>
T Unwrap(dmr::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueUnsafe();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmr;
  int sampling_users = argc > 1 ? std::atoi(argv[1]) : 4;
  bool fair = argc > 2 && std::strcmp(argv[2], "fair") == 0;
  if (sampling_users < 0 || sampling_users > 10) {
    std::fprintf(stderr, "usage: %s [sampling_users 0..10] [fifo|fair]\n",
                 argv[0]);
    return 2;
  }
  constexpr int kUsers = 10;
  constexpr int kScale = 100;

  std::printf("10 analysts on a shared 10-node cluster (16 map slots/node), "
              "%d sampling + %d scanning, %s scheduler\n\n",
              sampling_users, kUsers - sampling_users,
              fair ? "Fair" : "FIFO");

  TablePrinter table({"samplers' policy", "Sampling (jobs/h)",
                      "NonSampling (jobs/h)", "mean sample RT (s)",
                      "mean scan RT (s)"});

  for (const char* policy_name : {"Hadoop", "HA", "LA", "C"}) {
    testbed::Testbed bed(
        cluster::ClusterConfig::MultiUser(),
        fair ? testbed::SchedulerKind::kFair : testbed::SchedulerKind::kFifo);
    auto policy = Unwrap(dynamic::PolicyTable::BuiltIn().Find(policy_name),
                         "policy");

    std::vector<testbed::Dataset> datasets;
    for (int u = 0; u < kUsers; ++u) {
      datasets.push_back(Unwrap(
          testbed::MakeLineItemDataset(&bed.fs(), kScale, /*z=*/0.0,
                                       3000 + 7 * u,
                                       "u" + std::to_string(u)),
          "dataset"));
    }

    workload::WorkloadDriver driver(&bed.client());
    for (int u = 0; u < kUsers; ++u) {
      workload::UserSpec user;
      user.name = "analyst" + std::to_string(u);
      user.think_time = 30.0;
      const testbed::Dataset* ds = &datasets[u];
      if (u < sampling_users) {
        user.job_class = "Sampling";
        user.make_job = [ds, policy,
                         u](int it) -> Result<mapred::JobSubmission> {
          sampling::SamplingJobOptions options;
          options.job_name = "explore";
          options.user = "analyst" + std::to_string(u);
          options.sample_size = tpch::kPaperSampleSize;
          options.seed = 500 + 17ULL * u + 3121ULL * it;
          return sampling::MakeSamplingJob(ds->file,
                                           ds->matching_per_partition,
                                           policy, options);
        };
      } else {
        user.job_class = "NonSampling";
        user.make_job = [ds, u](int) -> Result<mapred::JobSubmission> {
          return sampling::MakeSelectProjectJob(
              ds->file, ds->matching_per_partition, "report",
              "analyst" + std::to_string(u));
        };
      }
      driver.AddUser(std::move(user));
    }

    auto report = Unwrap(
        driver.Run({.duration = 3.0 * 3600, .warmup = 1200.0}), "workload");
    const auto& sampling = report.For("Sampling");
    const auto& scans = report.For("NonSampling");
    table.AddNumericRow(policy_name,
                        {sampling.throughput_jobs_per_hour,
                         scans.throughput_jobs_per_hour,
                         sampling.response_times.Mean(),
                         scans.response_times.Mean()},
                        1);
  }
  table.Print();
  std::printf("\nSwitching the samplers from 'Hadoop' to a conservative "
              "policy frees the cluster for the scan users.\n");
  return 0;
}
