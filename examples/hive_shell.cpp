/// \file
/// A miniature Hive CLI over a real in-memory LINEITEM dataset. Queries are
/// parsed, compiled to job descriptions and executed with the LocalRuntime;
/// LIMIT queries run as dynamic predicate-based sampling jobs under the
/// session's policy.
///
/// Statements:
///   SELECT cols|* FROM lineitem [WHERE expr] [LIMIT k];
///   SET dynamic.job.policy = <Hadoop|HA|MA|LA|C>;
///   EXPLAIN SELECT ...;
///   quit
///
/// Usage: hive_shell            (interactive)
///        echo "SELECT ...;" | hive_shell   (scripted)

#include <cstdio>
#include <iostream>
#include <string>

#include "dynamic/growth_policy.h"
#include "exec/local_runtime.h"
#include "expr/value.h"
#include "hive/compiler.h"
#include "tpch/generator.h"
#include "tpch/lineitem.h"

namespace {

template <typename T>
T Unwrap(dmr::Result<T> result, const char* what) {
  if (!result.ok()) {
    std::fprintf(stderr, "%s: %s\n", what,
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).ValueUnsafe();
}

void PrintRows(const std::vector<dmr::expr::Tuple>& rows,
               const std::vector<std::string>& names, size_t max_rows) {
  std::printf("  ");
  for (const auto& n : names) std::printf("%s\t", n.c_str());
  std::printf("\n");
  for (size_t i = 0; i < rows.size() && i < max_rows; ++i) {
    std::printf("  ");
    for (const auto& v : rows[i]) {
      std::printf("%s\t", dmr::expr::ValueToString(v).c_str());
    }
    std::printf("\n");
  }
  if (rows.size() > max_rows) {
    std::printf("  ... (%zu rows total)\n", rows.size());
  }
}

}  // namespace

int main() {
  using namespace dmr;

  // A small but real dataset: 8 partitions x 20,000 rows, moderate skew.
  tpch::SkewSpec spec;
  spec.num_partitions = 8;
  spec.records_per_partition = 20000;
  spec.selectivity = 0.001;
  spec.zipf_z = 1.0;
  spec.seed = 404;
  auto dataset = Unwrap(tpch::MaterializeDataset(spec), "dataset");

  hive::HiveCompiler compiler(&tpch::LineItemSchema(),
                              &dynamic::PolicyTable::BuiltIn());
  exec::LocalRuntime runtime({.num_threads = 4});

  std::printf("mini-hive over LINEITEM (%llu rows, 8 partitions; matching "
              "predicate of the generator: %s)\n",
              (unsigned long long)dataset.total_records(),
              dataset.predicate.sql.c_str());
  std::printf("type a query (end with ';'), or 'quit'.\n");

  std::string line;
  std::string statement;
  std::printf("hive> ");
  std::fflush(stdout);
  while (std::getline(std::cin, line)) {
    statement += line;
    if (statement.find(';') == std::string::npos &&
        statement != "quit" && statement != "exit") {
      statement += ' ';
      std::printf("    > ");
      std::fflush(stdout);
      continue;
    }
    if (statement == "quit" || statement == "exit") break;

    auto processed = compiler.Process(statement);
    statement.clear();
    if (!processed.ok()) {
      std::printf("error: %s\n", processed.status().ToString().c_str());
    } else if (!processed->query.has_value()) {
      std::printf("ok: %s\n", processed->message.c_str());
    } else if (processed->explain_only) {
      std::printf("%s", processed->message.c_str());
    } else {
      const hive::CompiledQuery& query = *processed->query;
      auto policy = Unwrap(compiler.CurrentPolicy(), "policy");
      auto result = runtime.Execute(query, dataset, policy);
      if (!result.ok()) {
        std::printf("execution error: %s\n",
                    result.status().ToString().c_str());
      } else {
        PrintRows(result->rows, query.projected_names, 20);
        std::printf("  [%d/%d partitions scanned, %llu records, %d rounds",
                    result->partitions_processed, result->partitions_total,
                    (unsigned long long)result->records_scanned,
                    result->provider_rounds);
        if (query.is_sampling()) {
          std::printf(", policy %s", policy.name().c_str());
        }
        std::printf("]\n");
      }
    }
    std::printf("hive> ");
    std::fflush(stdout);
  }
  std::printf("\nbye\n");
  return 0;
}
