#ifndef DMR_BENCH_HETERO_WORKLOAD_H_
#define DMR_BENCH_HETERO_WORKLOAD_H_

#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"
#include "workload/workload_driver.h"

namespace dmr::bench {

/// Shared driver for the heterogeneous-workload experiments (Figures 7 & 8
/// and the Section V-F scheduler statistics): `sampling_users` of the 10
/// users run dynamic predicate-based sampling jobs under `policy_name`
/// (uniform matching distribution, per the paper), the rest run static
/// select-project scans with 0.05 % selectivity over their own copy of the
/// 100x data.
struct HeteroResult {
  double sampling_throughput = 0;
  double non_sampling_throughput = 0;
  double locality_percent = 0;
  double slot_occupancy_percent = 0;
};

/// Each call builds a private Testbed, so concurrent calls from the
/// parallel experiment harness are fully isolated.
inline Result<HeteroResult> RunHeteroWorkload(testbed::SchedulerKind scheduler,
                                              const std::string& policy_name,
                                              int sampling_users,
                                              double duration = 6.0 * 3600,
                                              double warmup = 1800.0) {
  constexpr int kNumUsers = 10;
  constexpr int kScale = 100;

  testbed::Testbed bed(cluster::ClusterConfig::MultiUser(), scheduler);
  bed.Annotate("cell",
               std::string(scheduler == testbed::SchedulerKind::kFifo
                               ? "hetero-fifo-f"
                               : "hetero-fair-f") +
                   std::to_string(sampling_users));
  bed.Annotate("policy", policy_name);
  bed.Annotate("z", 0.0);
  DMR_ASSIGN_OR_RETURN(dynamic::GrowthPolicy policy,
                       dynamic::PolicyTable::BuiltIn().Find(policy_name));

  std::vector<testbed::Dataset> datasets;
  for (int u = 0; u < kNumUsers; ++u) {
    DMR_ASSIGN_OR_RETURN(
        testbed::Dataset dataset,
        testbed::MakeLineItemDataset(&bed.fs(), kScale, /*z=*/0.0,
                                     7000 + 311 * u, "u" + std::to_string(u)));
    datasets.push_back(std::move(dataset));
  }

  workload::WorkloadDriver driver(&bed.client());
  for (int u = 0; u < kNumUsers; ++u) {
    workload::UserSpec user;
    user.name = "user" + std::to_string(u);
    // Hive client compile/submit/fetch plus Hadoop 0.20 job setup/cleanup.
    user.think_time = 30.0;
    const testbed::Dataset* dataset = &datasets[u];
    if (u < sampling_users) {
      user.job_class = "Sampling";
      user.make_job = [dataset, policy, u](int iteration)
          -> Result<mapred::JobSubmission> {
        sampling::SamplingJobOptions options;
        options.job_name = "hetero-sampling";
        options.user = "user" + std::to_string(u);
        options.sample_size = tpch::kPaperSampleSize;
        options.seed = 400000 + 7919ULL * u + 104729ULL * iteration;
        return sampling::MakeSamplingJob(
            dataset->file, dataset->matching_per_partition, policy, options);
      };
    } else {
      user.job_class = "NonSampling";
      user.make_job = [dataset, u](int) -> Result<mapred::JobSubmission> {
        return sampling::MakeSelectProjectJob(
            dataset->file, dataset->matching_per_partition, "hetero-sp",
            "user" + std::to_string(u));
      };
    }
    driver.AddUser(std::move(user));
  }

  DMR_ASSIGN_OR_RETURN(workload::WorkloadReport report,
                       driver.Run({.duration = duration, .warmup = warmup}));

  HeteroResult result;
  result.sampling_throughput =
      report.For("Sampling").throughput_jobs_per_hour;
  result.non_sampling_throughput =
      report.For("NonSampling").throughput_jobs_per_hour;
  result.locality_percent = bed.tracker().LocalityPercent();
  result.slot_occupancy_percent =
      bed.monitor().slot_occupancy_percent().MeanAfter(warmup);
  return result;
}

}  // namespace dmr::bench

#endif  // DMR_BENCH_HETERO_WORKLOAD_H_
