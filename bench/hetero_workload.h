#ifndef DMR_BENCH_HETERO_WORKLOAD_H_
#define DMR_BENCH_HETERO_WORKLOAD_H_

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "dfs/file_system.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"
#include "workload/workload_driver.h"

namespace dmr::bench {

/// Shared driver for the heterogeneous-workload experiments (Figures 7 & 8
/// and the Section V-F scheduler statistics): `sampling_users` of the 10
/// users run dynamic predicate-based sampling jobs under `policy_name`
/// (uniform matching distribution, per the paper), the rest run static
/// select-project scans with 0.05 % selectivity over their own copy of the
/// 100x data.
struct HeteroResult {
  double sampling_throughput = 0;
  double non_sampling_throughput = 0;
  double locality_percent = 0;
  double slot_occupancy_percent = 0;
};

/// Optional adaptive-layout axis for the V-F extension (DESIGN.md §16):
/// `divergent_layouts` tags every dataset replica with a cycling
/// row/columnar/indexed layout (Dittrich et al., per-replica layouts) and
/// `layout_weight` sets how strongly the Fair Scheduler trades locality
/// against replica layout quality (ignored by FIFO).
struct HeteroLayoutOptions {
  bool divergent_layouts = false;
  double layout_weight = 0.0;
};

/// Each call builds a private Testbed, so concurrent calls from the
/// parallel experiment harness are fully isolated.
inline Result<HeteroResult> RunHeteroWorkload(
    testbed::SchedulerKind scheduler, const std::string& policy_name,
    int sampling_users, double duration = 6.0 * 3600, double warmup = 1800.0,
    const HeteroLayoutOptions& layout = {}) {
  constexpr int kNumUsers = 10;
  constexpr int kScale = 100;

  testbed::Testbed bed(cluster::ClusterConfig::MultiUser(), scheduler,
                       /*locality_wait=*/5.0, layout.layout_weight);
  std::string cell = std::string(scheduler == testbed::SchedulerKind::kFifo
                                     ? "hetero-fifo-f"
                                     : "hetero-fair-f") +
                     std::to_string(sampling_users);
  if (layout.divergent_layouts) {
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), "-layout-w%.2f",
                  layout.layout_weight);
    cell += suffix;
  }
  bed.Annotate("cell", cell);
  bed.Annotate("policy", policy_name);
  bed.Annotate("z", 0.0);
  DMR_ASSIGN_OR_RETURN(dynamic::GrowthPolicy policy,
                       dynamic::PolicyTable::BuiltIn().Find(policy_name));

  std::vector<testbed::Dataset> datasets;
  for (int u = 0; u < kNumUsers; ++u) {
    DMR_ASSIGN_OR_RETURN(
        testbed::Dataset dataset,
        testbed::MakeLineItemDataset(&bed.fs(), kScale, /*z=*/0.0,
                                     7000 + 311 * u, "u" + std::to_string(u)));
    if (layout.divergent_layouts) dfs::ApplyDivergentLayouts(&dataset.file);
    datasets.push_back(std::move(dataset));
  }

  workload::WorkloadDriver driver(&bed.client());
  for (int u = 0; u < kNumUsers; ++u) {
    workload::UserSpec user;
    user.name = "user" + std::to_string(u);
    // Hive client compile/submit/fetch plus Hadoop 0.20 job setup/cleanup.
    user.think_time = 30.0;
    const testbed::Dataset* dataset = &datasets[u];
    if (u < sampling_users) {
      user.job_class = "Sampling";
      user.make_job = [dataset, policy, u](int iteration)
          -> Result<mapred::JobSubmission> {
        sampling::SamplingJobOptions options;
        options.job_name = "hetero-sampling";
        options.user = "user" + std::to_string(u);
        options.sample_size = tpch::kPaperSampleSize;
        options.seed = 400000 + 7919ULL * u + 104729ULL * iteration;
        return sampling::MakeSamplingJob(
            dataset->file, dataset->matching_per_partition, policy, options);
      };
    } else {
      user.job_class = "NonSampling";
      user.make_job = [dataset, u](int) -> Result<mapred::JobSubmission> {
        return sampling::MakeSelectProjectJob(
            dataset->file, dataset->matching_per_partition, "hetero-sp",
            "user" + std::to_string(u));
      };
    }
    driver.AddUser(std::move(user));
  }

  DMR_ASSIGN_OR_RETURN(workload::WorkloadReport report,
                       driver.Run({.duration = duration, .warmup = warmup}));

  HeteroResult result;
  result.sampling_throughput =
      report.For("Sampling").throughput_jobs_per_hour;
  result.non_sampling_throughput =
      report.For("NonSampling").throughput_jobs_per_hour;
  result.locality_percent = bed.tracker().LocalityPercent();
  result.slot_occupancy_percent =
      bed.monitor().slot_occupancy_percent().MeanAfter(warmup);
  return result;
}

}  // namespace dmr::bench

#endif  // DMR_BENCH_HETERO_WORKLOAD_H_
