/// \file
/// Measures raw DES kernel throughput at cluster scale: a synthetic
/// heartbeat + task-lifecycle + cross-shard-ping event program is run at
/// 100 / 1k / 10k nodes through every {queue kind} x {engine} combination
/// ({calendar, heap} x {serial, sharded RunParallel}) and the events/sec
/// and wall time of each cell are recorded as BENCH_sim_scale.json (via
/// --json=FILE).
///
/// Every cell also folds its firing sequence into per-shard FNV digests
/// (combined in shard order); the driver aborts unless all cells at one
/// node count produce the same digest and event count — the order
/// equivalence contract of DESIGN.md §14, checked end to end.
///
/// Event times are constructed to be globally unique (each (node, period,
/// kind) triple owns a distinct rational multiple of the node slot width),
/// so the program has no virtual-time ties. That keeps serial and sharded
/// runs digest-comparable even for cross-shard pings, whose sequence
/// numbers are assigned at different points by the two engines and which
/// therefore only commute when untied (see DESIGN.md §14).
///
/// Usage: sim_scale [--nodes=100,1000,10000] [--shards=4] [--until=60]
///                  [--json=FILE] [--queue=calendar|heap]
///
/// With --queue given, only that kind runs (the tier-1 smoke uses this to
/// cross-check the heap oracle); otherwise both kinds run and are compared.

#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/host_clock.h"
#include "common/table_printer.h"
#include "sim/simulation.h"

namespace {

using dmr::sim::EventClass;
using dmr::sim::QueueKind;
using dmr::sim::Simulation;
using dmr::sim::SimulationOptions;

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline uint64_t Mix(uint64_t h, uint64_t v) { return (h ^ v) * kFnvPrime; }

/// One cache line per shard so parallel workers never share a digest line.
struct alignas(64) ShardDigest {
  uint64_t h = kFnvOffset;
};

/// The synthetic event program. Per node and 3 s heartbeat period:
///   - a heartbeat (kScheduling) that re-arms itself,
///   - one task completion (kTaskLifecycle) ~0.5 s later that fires,
///   - one speculative task that is cancelled immediately (exercising the
///     tombstone path),
///   - a ping onto the next shard ~7.1 s ahead (>= two 3 s lookahead
///     epochs, satisfying the conservative cross-shard contract),
///   - plus `kLeasesPerNode` far-future lease events scheduled at setup
///     that never fire inside the run: dead weight every heap operation
///     pays for and the calendar's overflow tier keeps out of the way.
struct Workload {
  Simulation* sim = nullptr;
  std::vector<ShardDigest>* digests = nullptr;
  int nodes = 0;
  int shards = 0;
  /// True when the simulation itself is sharded (RunParallel cells).
  /// Serial cells push the whole program through one queue — exactly the
  /// pre-shard kernel shape, which makes heap/serial the genuine baseline.
  /// The digest partition below stays ShardOf(node) either way: a node
  /// group's events fire in time order in both engines, so the per-group
  /// subsequences — and hence the digests — are comparable.
  bool sharded_sim = false;
  double slot = 0.0;  // 3.0 / nodes: each node owns one slot per period
  long task_cells = 0;  // slots between a heartbeat and its task event
  long ping_cells = 0;  // slots between a heartbeat and its ping

  static constexpr double kPeriod = 3.0;
  static constexpr int kLeasesPerNode = 1024;

  int ShardOf(int node) const {
    return static_cast<int>(static_cast<long>(node) * shards / nodes);
  }

  /// The simulation shard a node's events are placed on.
  int PlaceShard(int node) const { return sharded_sim ? ShardOf(node) : 0; }

  /// All fired times are (cell + frac) * slot with frac in (0, 1) unique
  /// per event kind and cell unique per (node, period, kind): strictly
  /// monotone in cell + frac, hence collision-free.
  double TimeAt(long cell, double frac) const {
    return (static_cast<double>(cell) + frac) * slot;
  }

  void Note(int shard, uint64_t kind, int node) {
    uint64_t h = (*digests)[shard].h;
    h = Mix(h, kind);
    h = Mix(h, static_cast<uint64_t>(node));
    h = Mix(h, std::bit_cast<uint64_t>(sim->Now()));
    (*digests)[shard].h = h;
  }

  void Heartbeat(int node, long k) {
    int shard = ShardOf(node);
    Note(shard, 0x48, node);
    long cell = k * nodes + node;
    // Task that completes (and one that is immediately speculated away).
    // Everything that never needs a handle schedules detached — the shape
    // product heartbeat chains use — so the cell measures queue cost, not
    // slot-pool refcounting.
    sim->ScheduleDetachedAt(TimeAt(cell + task_cells, 0.375),
                            EventClass::kTaskLifecycle,
                            [this, node](){ Note(ShardOf(node), 0x54, node); });
    dmr::sim::EventHandle spec =
        sim->ScheduleAt(TimeAt(cell + task_cells, 0.5),
                        EventClass::kTaskLifecycle,
                        [this, node](){ Note(ShardOf(node), 0x58, node); });
    spec.Cancel();
    // Ping the next node group two lookahead epochs out (a cross-shard
    // staged event in the parallel cells).
    int target = (shard + 1) % shards;
    sim->ScheduleOnShardDetached(
        sharded_sim ? target : 0, TimeAt(cell + ping_cells, 0.75),
        EventClass::kDefault,
        [this, target, node](){ Note(target, 0x50, node); });
    sim->ScheduleDetachedAt(TimeAt(cell + static_cast<long>(nodes), 0.125),
                            EventClass::kScheduling,
                            [this, node, k](){ Heartbeat(node, k + 1); });
  }

  void Seed(double until) {
    for (int node = 0; node < nodes; ++node) {
      int shard = PlaceShard(node);
      sim->ScheduleOnShardDetached(shard, TimeAt(node, 0.125),
                                   EventClass::kScheduling,
                                   [this, node](){ Heartbeat(node, 0); });
      for (int j = 0; j < kLeasesPerNode; ++j) {
        sim->ScheduleOnShardDetached(
            shard, until + 1000.0 + j * kPeriod + node * slot,
            EventClass::kBookkeeping, [](){});
      }
    }
  }
};

struct CellResult {
  std::string queue;
  std::string mode;
  int shards = 0;
  uint64_t events = 0;
  double wall_ms = 0.0;
  uint64_t digest = 0;
};

CellResult RunCell(QueueKind kind, bool parallel, int nodes, int shards,
                   double until) {
  SimulationOptions options;
  options.queue = kind;
  // Size buckets so one holds only a couple of events regardless of node
  // count (~2 node slots per bucket), with the near-future horizon sized
  // to the run so steady-state pushes land in buckets and the lease dead
  // weight stays in the overflow tier for the duration (the standard
  // calendar-queue sizing discipline: array spans the active window).
  options.bucket_width = Workload::kPeriod * 2.0 / nodes;
  options.num_buckets =
      static_cast<int>((until + 10.0) / options.bucket_width) + 1;

  Simulation sim(options);
  sim.ConfigureShards(parallel ? shards : 1);
  std::vector<ShardDigest> digests(shards);

  Workload w;
  w.sim = &sim;
  w.digests = &digests;
  w.nodes = nodes;
  w.shards = shards;
  w.sharded_sim = parallel;
  w.slot = Workload::kPeriod / nodes;
  w.task_cells = nodes / 6;  // ~0.5 s
  w.ping_cells = static_cast<long>(7.1 / Workload::kPeriod * nodes) + 1;
  w.Seed(until);

  // dmr-lint: allow(wall-clock) measuring real kernel throughput is the
  // point; timings feed the printed table and JSON only, never a digest.
  double t0 = dmr::HostClock::NowMicros();
  uint64_t fired = parallel ? sim.RunParallel(shards, until)
                            : sim.RunUntil(until);
  double wall_us = dmr::HostClock::NowMicros() - t0;

  CellResult result;
  result.queue = sim.options().queue == QueueKind::kCalendar ? "calendar"
                                                             : "heap";
  result.mode = parallel ? "parallel" : "serial";
  result.shards = shards;
  result.events = fired;
  result.wall_ms = wall_us / 1000.0;
  uint64_t combined = kFnvOffset;
  for (const ShardDigest& d : digests) combined = Mix(combined, d.h);
  result.digest = combined;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmr;

  // Driver flags, stripped before the shared parser (which rejects
  // unknown --flags).
  std::string nodes_list = "100,1000,10000";
  int shards = 4;
  double until = 60.0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--nodes=", 8) == 0) {
      nodes_list = arg + 8;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      shards = std::atoi(arg + 9);
      if (shards < 1 || shards > 256) {
        std::fprintf(stderr, "bad --shards value: %s (want 1..256)\n",
                     arg + 9);
        return 2;
      }
    } else if (std::strncmp(arg, "--until=", 8) == 0) {
      until = std::atof(arg + 8);
      if (until <= 0.0) {
        std::fprintf(stderr, "bad --until value: %s\n", arg + 8);
        return 2;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);

  std::vector<int> node_counts;
  for (const char* p = nodes_list.c_str(); *p != '\0';) {
    char* end = nullptr;
    long n = std::strtol(p, &end, 10);
    if (end == p || n < shards || n > 10000000) {
      std::fprintf(stderr, "bad --nodes value: %s (want counts >= shards)\n",
                   nodes_list.c_str());
      return 2;
    }
    node_counts.push_back(static_cast<int>(n));
    p = *end == ',' ? end + 1 : end;
  }

  std::vector<QueueKind> kinds;
  if (auto forced = sim::Simulation::GlobalQueueKind(); forced.has_value()) {
    kinds.push_back(*forced);  // --queue smoke mode: one kind, both engines
  } else {
    kinds = {QueueKind::kCalendar, QueueKind::kBinaryHeap};
  }

  bench::PrintHeader(
      "DES kernel scale: calendar queue + sharded parallel execution",
      "kernel substrate for all paper figures (DESIGN.md §14)",
      "identical digests for every {queue} x {engine} cell; calendar "
      ">= 5x heap events/sec at 10k nodes (serial)");

  bench::JsonWriter json;
  TablePrinter table(
      {"nodes", "queue", "mode", "events", "wall ms", "events/sec",
       "digest"});
  bool ok = true;
  for (int nodes : node_counts) {
    std::vector<CellResult> cells;
    for (QueueKind kind : kinds) {
      cells.push_back(RunCell(kind, /*parallel=*/false, nodes, shards,
                              until));
      cells.push_back(RunCell(kind, /*parallel=*/true, nodes, shards,
                              until));
    }
    for (const CellResult& cell : cells) {
      double events_per_sec =
          static_cast<double>(cell.events) / (cell.wall_ms / 1000.0);
      char wall_buf[32], eps_buf[32], digest_buf[32];
      std::snprintf(wall_buf, sizeof(wall_buf), "%.1f", cell.wall_ms);
      std::snprintf(eps_buf, sizeof(eps_buf), "%.3g", events_per_sec);
      std::snprintf(digest_buf, sizeof(digest_buf), "%016llx",
                    static_cast<unsigned long long>(cell.digest));
      table.AddRow({std::to_string(nodes), cell.queue, cell.mode,
                    std::to_string(cell.events), wall_buf, eps_buf,
                    digest_buf});
      json.AddCell()
          .Set("bench", "sim_scale")
          .Set("nodes", nodes)
          .Set("queue", cell.queue)
          .Set("mode", cell.mode)
          .Set("shards", cell.shards)
          .Set("events", cell.events)
          .Set("wall_ms", cell.wall_ms)
          .Set("events_per_sec", events_per_sec)
          .Set("digest", digest_buf);
      if (cell.digest != cells[0].digest || cell.events != cells[0].events) {
        std::fprintf(stderr,
                     "FAIL: %s/%s at %d nodes fired %llu events with digest "
                     "%016llx; expected %llu / %016llx (%s/%s)\n",
                     cell.queue.c_str(), cell.mode.c_str(), nodes,
                     static_cast<unsigned long long>(cell.events),
                     static_cast<unsigned long long>(cell.digest),
                     static_cast<unsigned long long>(cells[0].events),
                     static_cast<unsigned long long>(cells[0].digest),
                     cells[0].queue.c_str(), cells[0].mode.c_str());
        ok = false;
      }
    }
  }
  table.Print();
  std::printf("\n(per-shard FNV digests over the firing sequence, combined "
              "in shard order; every cell in a node-count group must "
              "match)\n");
  bench::MaybeWriteJson(options, json);
  if (!ok) {
    std::fprintf(stderr, "\ndigest mismatch between queue/engine cells\n");
    return 1;
  }
  return 0;
}
