/// \file
/// Measures raw DES kernel throughput at cluster scale: a synthetic
/// heartbeat + task-lifecycle + cross-shard-ping event program is run at
/// 100 / 1k / 10k nodes through every {queue kind} x {engine} combination
/// ({calendar, heap} x {serial, sharded RunParallel}) and the events/sec
/// and wall time of each cell are recorded as BENCH_sim_scale.json (via
/// --json=FILE).
///
/// Every cell also folds its firing sequence into per-shard FNV digests
/// (combined in shard order); the driver aborts unless all cells at one
/// node count produce the same digest and event count — the order
/// equivalence contract of DESIGN.md §14, checked end to end.
///
/// Event times are constructed to be globally unique (each (node, period,
/// kind) triple owns a distinct rational multiple of the node slot width),
/// so the program has no virtual-time ties. That keeps serial and sharded
/// runs digest-comparable even for cross-shard pings, whose sequence
/// numbers are assigned at different points by the two engines and which
/// therefore only commute when untied (see DESIGN.md §14).
///
/// Usage: sim_scale [--nodes=100,1000,10000] [--shards=4] [--until=60]
///                  [--json=FILE] [--queue=calendar|heap]
///
/// With --queue given, only that kind runs (the tier-1 smoke uses this to
/// cross-check the heap oracle); otherwise both kinds run and are compared.
///
/// --shards takes a comma list (e.g. --shards=1,2,4,8): each shard count
/// forms its own digest group (the digest partition is per shard, so cells
/// are only comparable at equal shard counts) and the driver emits one
/// `sim_scale_crossover` summary per node count recording the serial
/// events/sec against the best parallel shard count. When no shard count
/// beats serial — the current truth at every measured scale, see
/// EXPERIMENTS.md — the recommendation defaults to serial.

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/host_clock.h"
#include "common/table_printer.h"
#include "obs/flight_recorder.h"
#include "obs/timeline.h"
#include "sim/simulation.h"

namespace {

using dmr::sim::EventClass;
using dmr::sim::QueueKind;
using dmr::sim::Simulation;
using dmr::sim::SimulationOptions;

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

inline uint64_t Mix(uint64_t h, uint64_t v) { return (h ^ v) * kFnvPrime; }

/// One cache line per shard so parallel workers never share a digest line.
struct alignas(64) ShardDigest {
  uint64_t h = kFnvOffset;
};

/// The synthetic event program. Per node and 3 s heartbeat period:
///   - a heartbeat (kScheduling) that re-arms itself,
///   - one task completion (kTaskLifecycle) ~0.5 s later that fires,
///   - one speculative task that is cancelled immediately (exercising the
///     tombstone path),
///   - a ping onto the next shard ~7.1 s ahead (>= two 3 s lookahead
///     epochs, satisfying the conservative cross-shard contract),
///   - plus `kLeasesPerNode` far-future lease events scheduled at setup
///     that never fire inside the run: dead weight every heap operation
///     pays for and the calendar's overflow tier keeps out of the way.
/// Telemetry attached to the serial overhead cells: a timeline with the
/// testbed's probe population, a windowed series fed from completed tasks,
/// and flight-recorder appends from heartbeats. Hooks ride 1 in 16 events
/// (kHookMask) — the synthetic program's events are ~100 ns no-ops,
/// whereas the real drivers fire ~15 kernel events (heartbeat chains, PS
/// resource steps, DFS transfers) per obs-instrumented operation (fig5:
/// ~1M events for ~68k task launches/completions + provider decisions),
/// so per-event hooking here would overstate the hook density 15x.
/// Serial cells only — Timeline/FlightRecorder are single-writer, and the
/// sharded engine would interleave Observe/Append across worker threads.
struct TimelineHooks {
  static constexpr int kHookMask = 15;  // hook (node + period) % 16 == 0

  dmr::obs::Timeline* timeline = nullptr;
  dmr::obs::FlightRecorder* flight = nullptr;
  dmr::obs::Timeline::WindowedId task_latency;
};

struct Workload {
  Simulation* sim = nullptr;
  std::vector<ShardDigest>* digests = nullptr;
  TimelineHooks* hooks = nullptr;
  int nodes = 0;
  int shards = 0;
  /// True when the simulation itself is sharded (RunParallel cells).
  /// Serial cells push the whole program through one queue — exactly the
  /// pre-shard kernel shape, which makes heap/serial the genuine baseline.
  /// The digest partition below stays ShardOf(node) either way: a node
  /// group's events fire in time order in both engines, so the per-group
  /// subsequences — and hence the digests — are comparable.
  bool sharded_sim = false;
  double slot = 0.0;  // 3.0 / nodes: each node owns one slot per period
  long task_cells = 0;  // slots between a heartbeat and its task event
  long ping_cells = 0;  // slots between a heartbeat and its ping

  static constexpr double kPeriod = 3.0;
  static constexpr int kLeasesPerNode = 1024;

  int ShardOf(int node) const {
    return static_cast<int>(static_cast<long>(node) * shards / nodes);
  }

  /// The simulation shard a node's events are placed on.
  int PlaceShard(int node) const { return sharded_sim ? ShardOf(node) : 0; }

  /// All fired times are (cell + frac) * slot with frac in (0, 1) unique
  /// per event kind and cell unique per (node, period, kind): strictly
  /// monotone in cell + frac, hence collision-free.
  double TimeAt(long cell, double frac) const {
    return (static_cast<double>(cell) + frac) * slot;
  }

  void Note(int shard, uint64_t kind, int node) {
    uint64_t h = (*digests)[shard].h;
    h = Mix(h, kind);
    h = Mix(h, static_cast<uint64_t>(node));
    h = Mix(h, std::bit_cast<uint64_t>(sim->Now()));
    (*digests)[shard].h = h;
  }

  void Heartbeat(int node, long k) {
    int shard = ShardOf(node);
    Note(shard, 0x48, node);
    if (hooks != nullptr &&
        ((node + k) & TimelineHooks::kHookMask) == 0) {
      hooks->flight->Append(sim->Now(), dmr::obs::FlightEventKind::kSchedule,
                            /*job=*/static_cast<int32_t>(k), node,
                            /*detail=*/0, /*value=*/0.0);
    }
    long cell = k * nodes + node;
    // Task that completes (and one that is immediately speculated away).
    // Everything that never needs a handle schedules detached — the shape
    // product heartbeat chains use — so the cell measures queue cost, not
    // slot-pool refcounting.
    sim->ScheduleDetachedAt(TimeAt(cell + task_cells, 0.375),
                            EventClass::kTaskLifecycle, [this, node, k]() {
                              Note(ShardOf(node), 0x54, node);
                              if (hooks != nullptr &&
                                  ((node + k) &
                                   TimelineHooks::kHookMask) == 0) {
                                hooks->timeline->Observe(
                                    hooks->task_latency,
                                    static_cast<double>(node % 97) * slot);
                              }
                            });
    dmr::sim::EventHandle spec =
        sim->ScheduleAt(TimeAt(cell + task_cells, 0.5),
                        EventClass::kTaskLifecycle,
                        [this, node](){ Note(ShardOf(node), 0x58, node); });
    spec.Cancel();
    // Ping the next node group two lookahead epochs out (a cross-shard
    // staged event in the parallel cells).
    int target = (shard + 1) % shards;
    sim->ScheduleOnShardDetached(
        sharded_sim ? target : 0, TimeAt(cell + ping_cells, 0.75),
        EventClass::kDefault,
        [this, target, node](){ Note(target, 0x50, node); });
    sim->ScheduleDetachedAt(TimeAt(cell + static_cast<long>(nodes), 0.125),
                            EventClass::kScheduling,
                            [this, node, k](){ Heartbeat(node, k + 1); });
  }

  void Seed(double until) {
    for (int node = 0; node < nodes; ++node) {
      int shard = PlaceShard(node);
      sim->ScheduleOnShardDetached(shard, TimeAt(node, 0.125),
                                   EventClass::kScheduling,
                                   [this, node](){ Heartbeat(node, 0); });
      for (int j = 0; j < kLeasesPerNode; ++j) {
        sim->ScheduleOnShardDetached(
            shard, until + 1000.0 + j * kPeriod + node * slot,
            EventClass::kBookkeeping, [](){});
      }
    }
  }
};

struct CellResult {
  std::string queue;
  std::string mode;
  int shards = 0;
  uint64_t events = 0;
  double wall_ms = 0.0;
  uint64_t digest = 0;
};

CellResult RunCell(QueueKind kind, bool parallel, int nodes, int shards,
                   double until, bool with_timeline = false) {
  SimulationOptions options;
  options.queue = kind;
  // Size buckets so one holds only a couple of events regardless of node
  // count (~2 node slots per bucket), with the near-future horizon sized
  // to the run so steady-state pushes land in buckets and the lease dead
  // weight stays in the overflow tier for the duration (the standard
  // calendar-queue sizing discipline: array spans the active window).
  options.bucket_width = Workload::kPeriod * 2.0 / nodes;
  options.num_buckets =
      static_cast<int>((until + 10.0) / options.bucket_width) + 1;

  Simulation sim(options);
  sim.ConfigureShards(parallel ? shards : 1);
  std::vector<ShardDigest> digests(shards);

  Workload w;
  w.sim = &sim;
  w.digests = &digests;
  w.nodes = nodes;
  w.shards = shards;
  w.sharded_sim = parallel;
  w.slot = Workload::kPeriod / nodes;
  w.task_cells = nodes / 6;  // ~0.5 s
  w.ping_cells = static_cast<long>(7.1 / Workload::kPeriod * nodes) + 1;

  dmr::obs::Timeline timeline;
  dmr::obs::FlightRecorder flight(128);
  TimelineHooks hooks;
  if (with_timeline) {
    // Testbed-shaped probe population plus the windowed/flight hot paths;
    // ticks ride kTelemetry once per simulated second, like the testbed.
    timeline.AddProbe("sim.events_fired", "events",
                      dmr::obs::Timeline::SeriesKind::kCounter,
                      [&sim] { return static_cast<double>(sim.events_fired()); });
    timeline.AddProbe("sim.live_size", "events",
                      dmr::obs::Timeline::SeriesKind::kGauge,
                      [&sim] { return static_cast<double>(sim.live_size()); });
    hooks.timeline = &timeline;
    hooks.flight = &flight;
    hooks.task_latency = timeline.AddWindowed("task.latency", "sim_s");
    w.hooks = &hooks;
  }
  w.Seed(until);
  if (with_timeline) {
    // Scheduled AFTER seeding on purpose: the calendar rebases its epoch
    // at the first push into an empty queue, and a t=1.0 tick arriving
    // first would park the epoch a full second past the workload's t~0
    // events, clamping the entire first second into bucket 0.
    for (double t = 1.0; t < until; t += 1.0) {
      sim.ScheduleDetachedAt(t, EventClass::kTelemetry, [&timeline, &sim]() {
        timeline.Sample(sim.Now());
      });
    }
  }

  // dmr-lint: allow(wall-clock) measuring real kernel throughput is the
  // point; timings feed the printed table and JSON only, never a digest.
  double t0 = dmr::HostClock::NowMicros();
  uint64_t fired = parallel ? sim.RunParallel(shards, until)
                            : sim.RunUntil(until);
  double wall_us = dmr::HostClock::NowMicros() - t0;

  CellResult result;
  result.queue = sim.options().queue == QueueKind::kCalendar ? "calendar"
                                                             : "heap";
  result.mode = parallel ? "parallel" : "serial";
  result.shards = shards;
  result.events = fired;
  result.wall_ms = wall_us / 1000.0;
  uint64_t combined = kFnvOffset;
  for (const ShardDigest& d : digests) combined = Mix(combined, d.h);
  result.digest = combined;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmr;

  // Driver flags, stripped before the shared parser (which rejects
  // unknown --flags).
  std::string nodes_list = "100,1000,10000";
  std::string shards_list = "4";
  double until = 60.0;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--nodes=", 8) == 0) {
      nodes_list = arg + 8;
    } else if (std::strncmp(arg, "--shards=", 9) == 0) {
      shards_list = arg + 9;
    } else if (std::strncmp(arg, "--until=", 8) == 0) {
      until = std::atof(arg + 8);
      if (until <= 0.0) {
        std::fprintf(stderr, "bad --until value: %s\n", arg + 8);
        return 2;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);

  std::vector<int> shard_counts;
  for (const char* p = shards_list.c_str(); *p != '\0';) {
    char* end = nullptr;
    long s = std::strtol(p, &end, 10);
    if (end == p || s < 1 || s > 256) {
      std::fprintf(stderr, "bad --shards value: %s (want counts in 1..256)\n",
                   shards_list.c_str());
      return 2;
    }
    shard_counts.push_back(static_cast<int>(s));
    p = *end == ',' ? end + 1 : end;
  }
  const int max_shards =
      *std::max_element(shard_counts.begin(), shard_counts.end());

  std::vector<int> node_counts;
  for (const char* p = nodes_list.c_str(); *p != '\0';) {
    char* end = nullptr;
    long n = std::strtol(p, &end, 10);
    if (end == p || n < max_shards || n > 10000000) {
      std::fprintf(stderr, "bad --nodes value: %s (want counts >= shards)\n",
                   nodes_list.c_str());
      return 2;
    }
    node_counts.push_back(static_cast<int>(n));
    p = *end == ',' ? end + 1 : end;
  }

  std::vector<QueueKind> kinds;
  if (auto forced = sim::Simulation::GlobalQueueKind(); forced.has_value()) {
    kinds.push_back(*forced);  // --queue smoke mode: one kind, both engines
  } else {
    kinds = {QueueKind::kCalendar, QueueKind::kBinaryHeap};
  }

  bench::PrintHeader(
      "DES kernel scale: calendar queue + sharded parallel execution",
      "kernel substrate for all paper figures (DESIGN.md §14)",
      "identical digests for every {queue} x {engine} cell; calendar "
      ">= 5x heap events/sec at 10k nodes (serial)");

  bench::JsonWriter json;
  TablePrinter table(
      {"nodes", "queue", "mode", "shards", "events", "wall ms", "events/sec",
       "digest"});
  bool ok = true;
  std::vector<std::string> overhead_lines;
  std::vector<std::string> crossover_lines;
  for (int nodes : node_counts) {
    // Crossover bookkeeping (front kind only — calendar unless --queue
    // forced heap): best serial run vs best parallel run per shard count.
    double serial_eps = 0.0;
    double best_par_eps = 0.0;
    int best_par_shards = 0;
    uint64_t ref_digest = 0;   // first shard group's digest (overhead cells)
    for (int shards : shard_counts) {
      std::vector<CellResult> cells;
      for (QueueKind kind : kinds) {
        cells.push_back(RunCell(kind, /*parallel=*/false, nodes, shards,
                                until));
        cells.push_back(RunCell(kind, /*parallel=*/true, nodes, shards,
                                until));
      }
      if (shards == shard_counts.front()) ref_digest = cells[0].digest;
      for (const CellResult& cell : cells) {
        double events_per_sec =
            static_cast<double>(cell.events) / (cell.wall_ms / 1000.0);
        if (cell.queue == cells[0].queue) {
          if (cell.mode == "serial") {
            serial_eps = std::max(serial_eps, events_per_sec);
          } else if (events_per_sec > best_par_eps) {
            best_par_eps = events_per_sec;
            best_par_shards = cell.shards;
          }
        }
        char wall_buf[32], eps_buf[32], digest_buf[32];
        std::snprintf(wall_buf, sizeof(wall_buf), "%.1f", cell.wall_ms);
        std::snprintf(eps_buf, sizeof(eps_buf), "%.3g", events_per_sec);
        std::snprintf(digest_buf, sizeof(digest_buf), "%016llx",
                      static_cast<unsigned long long>(cell.digest));
        table.AddRow({std::to_string(nodes), cell.queue, cell.mode,
                      std::to_string(cell.shards),
                      std::to_string(cell.events), wall_buf, eps_buf,
                      digest_buf});
        json.AddCell()
            .Set("bench", "sim_scale")
            .Set("nodes", nodes)
            .Set("queue", cell.queue)
            .Set("mode", cell.mode)
            .Set("shards", cell.shards)
            .Set("events", cell.events)
            .Set("wall_ms", cell.wall_ms)
            .Set("events_per_sec", events_per_sec)
            .Set("digest", digest_buf);
        // Digest groups are per (nodes, shards): the digest partition is
        // ShardOf(node), so only equal shard counts are comparable.
        if (cell.digest != cells[0].digest ||
            cell.events != cells[0].events) {
          std::fprintf(stderr,
                       "FAIL: %s/%s at %d nodes / %d shards fired %llu "
                       "events with digest %016llx; expected %llu / %016llx "
                       "(%s/%s)\n",
                       cell.queue.c_str(), cell.mode.c_str(), nodes,
                       shards, static_cast<unsigned long long>(cell.events),
                       static_cast<unsigned long long>(cell.digest),
                       static_cast<unsigned long long>(cells[0].events),
                       static_cast<unsigned long long>(cells[0].digest),
                       cells[0].queue.c_str(), cells[0].mode.c_str());
          ok = false;
        }
      }
    }
    // The serial-by-default recommendation: RunParallel only pays when the
    // best shard count beats serial on this workload/machine; so far it
    // never has (EXPERIMENTS.md records the sweep), so drivers keep serial
    // RunUntil as the default engine and RunParallel stays the explicit
    // opt-in for scale studies.
    const bool parallel_pays = best_par_eps > serial_eps;
    char cross_buf[160];
    std::snprintf(cross_buf, sizeof(cross_buf),
                  "%d nodes: serial %.3g ev/s vs best parallel %.3g ev/s "
                  "(%d shards) -> recommend %s",
                  nodes, serial_eps, best_par_eps, best_par_shards,
                  parallel_pays ? "parallel" : "serial");
    crossover_lines.push_back(cross_buf);
    json.AddCell()
        .Set("bench", "sim_scale_crossover")
        .Set("nodes", nodes)
        .Set("serial_events_per_sec", serial_eps)
        .Set("best_parallel_shards", best_par_shards)
        .Set("best_parallel_events_per_sec", best_par_eps)
        .Set("parallel_pays", parallel_pays)
        .Set("recommended_mode", parallel_pays ? "parallel" : "serial");

    // Timeline-overhead cells: the same serial program with the obs layer's
    // probe/windowed/flight hot paths attached (see TimelineHooks). Kept
    // OUT of the digest cross-check group above — the telemetry tick adds
    // fired events — but the *noted* firing sequence must not move, so the
    // digest itself is still compared. The true per-run cost (~1 ms of
    // hooks + ticks, see BM_TimelineSample / BM_FlightRecorderAppend) sits
    // well below this machine's run-to-run wall-clock noise, so a naive
    // A/B comparison reports the weather, not the code. Each repetition
    // therefore runs base / timeline / base (A/B/A) and takes the timeline
    // run against the MEAN of its two brackets — centring cancels linear
    // drift — and the bracket-vs-bracket spread is reported alongside as
    // the A/A noise floor: an overhead figure is only meaningful relative
    // to that floor. Medians across repetitions shed the remaining
    // outliers. Only the largest node count runs these cells: the claim
    // under test is that sampling amortizes at scale, whereas a tiny cell
    // (~1 ms of kernel work at 100 nodes) mostly measures the fixed
    // per-tick cost and would report a scary-but-irrelevant percentage.
    if (nodes != *std::max_element(node_counts.begin(), node_counts.end())) {
      continue;
    }
    const int tl_shards = shard_counts.front();  // digest partition only
    for (QueueKind kind : kinds) {
      CellResult base{};
      CellResult with_tl{};
      std::vector<double> deltas;
      std::vector<double> null_deltas;
      for (int rep = 0; rep < 5; ++rep) {
        CellResult b1 =
            RunCell(kind, /*parallel=*/false, nodes, tl_shards, until);
        CellResult t = RunCell(kind, /*parallel=*/false, nodes, tl_shards,
                               until, /*with_timeline=*/true);
        CellResult b2 =
            RunCell(kind, /*parallel=*/false, nodes, tl_shards, until);
        if (rep == 0 || b1.wall_ms < base.wall_ms) base = b1;
        if (b2.wall_ms < base.wall_ms) base = b2;
        if (rep == 0 || t.wall_ms < with_tl.wall_ms) with_tl = t;
        deltas.push_back(t.wall_ms - (b1.wall_ms + b2.wall_ms) / 2.0);
        null_deltas.push_back(std::abs(b2.wall_ms - b1.wall_ms));
      }
      std::sort(deltas.begin(), deltas.end());
      std::sort(null_deltas.begin(), null_deltas.end());
      const double median_delta = deltas[deltas.size() / 2];
      const double noise_floor = null_deltas[null_deltas.size() / 2];
      double overhead_pct =
          base.wall_ms > 0.0 ? 100.0 * median_delta / base.wall_ms : 0.0;
      double noise_floor_pct =
          base.wall_ms > 0.0 ? 100.0 * noise_floor / base.wall_ms : 0.0;
      double events_per_sec =
          static_cast<double>(with_tl.events) / (with_tl.wall_ms / 1000.0);
      char wall_buf[32], eps_buf[32], digest_buf[32], ovh_buf[128];
      std::snprintf(wall_buf, sizeof(wall_buf), "%.1f", with_tl.wall_ms);
      std::snprintf(eps_buf, sizeof(eps_buf), "%.3g", events_per_sec);
      std::snprintf(digest_buf, sizeof(digest_buf), "%016llx",
                    static_cast<unsigned long long>(with_tl.digest));
      table.AddRow({std::to_string(nodes), with_tl.queue, "serial+timeline",
                    std::to_string(tl_shards),
                    std::to_string(with_tl.events), wall_buf, eps_buf,
                    digest_buf});
      std::snprintf(ovh_buf, sizeof(ovh_buf),
                    "timeline overhead at %d nodes (%s serial): %+.2f%% "
                    "(A/A noise floor %.2f%%)",
                    nodes, with_tl.queue.c_str(), overhead_pct,
                    noise_floor_pct);
      overhead_lines.push_back(ovh_buf);
      json.AddCell()
          .Set("bench", "sim_scale_timeline_overhead")
          .Set("nodes", nodes)
          .Set("queue", with_tl.queue)
          .Set("events", with_tl.events)
          .Set("wall_ms", with_tl.wall_ms)
          .Set("wall_ms_base", base.wall_ms)
          .Set("median_delta_ms", median_delta)
          .Set("overhead_pct", overhead_pct)
          .Set("noise_floor_pct", noise_floor_pct);
      if (with_tl.digest != ref_digest) {
        std::fprintf(stderr,
                     "FAIL: %s/serial+timeline at %d nodes perturbed the "
                     "noted firing sequence (digest %016llx != %016llx)\n",
                     with_tl.queue.c_str(), nodes,
                     static_cast<unsigned long long>(with_tl.digest),
                     static_cast<unsigned long long>(ref_digest));
        ok = false;
      }
    }

    // Prof-overhead cell: the same serial program with the host profiler
    // recording (chunked dispatch frames + queue refill/purge scopes).
    // Bracketed A/B/A exactly like the timeline cells above, because the
    // budget under test — <= 2% events/sec cost at the largest node count
    // (DESIGN.md §17) — is near this machine's run-to-run noise. The
    // profiled run must also leave the firing digest untouched: profiling
    // reads the host clock but never virtual time.
    {
      const QueueKind kind = kinds.front();
      CellResult prof_base{};
      CellResult with_prof{};
      std::vector<double> deltas;
      std::vector<double> null_deltas;
      for (int rep = 0; rep < 5; ++rep) {
        CellResult b1 =
            RunCell(kind, /*parallel=*/false, nodes, tl_shards, until);
        prof::Enable();
        CellResult p =
            RunCell(kind, /*parallel=*/false, nodes, tl_shards, until);
        prof::Disable();
        prof::ResetForTest();
        CellResult b2 =
            RunCell(kind, /*parallel=*/false, nodes, tl_shards, until);
        if (rep == 0 || b1.wall_ms < prof_base.wall_ms) prof_base = b1;
        if (b2.wall_ms < prof_base.wall_ms) prof_base = b2;
        if (rep == 0 || p.wall_ms < with_prof.wall_ms) with_prof = p;
        deltas.push_back(p.wall_ms - (b1.wall_ms + b2.wall_ms) / 2.0);
        null_deltas.push_back(std::abs(b2.wall_ms - b1.wall_ms));
      }
      std::sort(deltas.begin(), deltas.end());
      std::sort(null_deltas.begin(), null_deltas.end());
      const double median_delta = deltas[deltas.size() / 2];
      const double noise_floor = null_deltas[null_deltas.size() / 2];
      double overhead_pct = prof_base.wall_ms > 0.0
                                ? 100.0 * median_delta / prof_base.wall_ms
                                : 0.0;
      double noise_floor_pct = prof_base.wall_ms > 0.0
                                   ? 100.0 * noise_floor / prof_base.wall_ms
                                   : 0.0;
      double events_per_sec = static_cast<double>(with_prof.events) /
                              (with_prof.wall_ms / 1000.0);
      char wall_buf[32], eps_buf[32], digest_buf[32], ovh_buf[128];
      std::snprintf(wall_buf, sizeof(wall_buf), "%.1f", with_prof.wall_ms);
      std::snprintf(eps_buf, sizeof(eps_buf), "%.3g", events_per_sec);
      std::snprintf(digest_buf, sizeof(digest_buf), "%016llx",
                    static_cast<unsigned long long>(with_prof.digest));
      table.AddRow({std::to_string(nodes), with_prof.queue, "serial+prof",
                    std::to_string(tl_shards),
                    std::to_string(with_prof.events), wall_buf, eps_buf,
                    digest_buf});
      std::snprintf(ovh_buf, sizeof(ovh_buf),
                    "prof overhead at %d nodes (%s serial): %+.2f%% "
                    "(A/A noise floor %.2f%%, budget 2%%)",
                    nodes, with_prof.queue.c_str(), overhead_pct,
                    noise_floor_pct);
      overhead_lines.push_back(ovh_buf);
      json.AddCell()
          .Set("bench", "sim_scale_prof_overhead")
          .Set("nodes", nodes)
          .Set("queue", with_prof.queue)
          .Set("events", with_prof.events)
          .Set("wall_ms", with_prof.wall_ms)
          .Set("wall_ms_base", prof_base.wall_ms)
          .Set("median_delta_ms", median_delta)
          .Set("overhead_pct", overhead_pct)
          .Set("noise_floor_pct", noise_floor_pct)
          .Set("budget_pct", 2.0);
      if (with_prof.digest != ref_digest ||
          with_prof.events != prof_base.events) {
        std::fprintf(stderr,
                     "FAIL: %s/serial+prof at %d nodes perturbed the firing "
                     "sequence (digest %016llx != %016llx)\n",
                     with_prof.queue.c_str(), nodes,
                     static_cast<unsigned long long>(with_prof.digest),
                     static_cast<unsigned long long>(ref_digest));
        ok = false;
      }
    }
  }
  table.Print();
  std::printf("\n(per-shard FNV digests over the firing sequence, combined "
              "in shard order; every cell in a node-count group must "
              "match)\n");
  for (const std::string& line : crossover_lines) {
    std::printf("%s\n", line.c_str());
  }
  for (const std::string& line : overhead_lines) {
    std::printf("%s\n", line.c_str());
  }
  bench::MaybeWriteJson(options, json);
  if (!ok) {
    std::fprintf(stderr, "\ndigest mismatch between queue/engine cells\n");
    return 1;
  }
  return 0;
}
