/// \file
/// Reproduces Figure 7: heterogeneous multi-user workload under the default
/// (FIFO) scheduler. A fraction (0.2..0.8) of 10 users run dynamic sampling
/// jobs under each policy; the rest run static select-project scans.
/// Reports per-class throughput (jobs/hour). The policy x fraction grid
/// fans out across hardware threads.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/hetero_workload.h"
#include "common/table_printer.h"
#include "exec/parallel.h"

namespace dmr {
namespace {

void RunFigure(testbed::SchedulerKind scheduler,
               const bench::BenchOptions& options) {
  const std::vector<std::string> policies = {"C", "LA", "MA", "HA", "Hadoop"};
  const std::vector<int> sampling_counts = {2, 4, 6, 8};

  exec::ThreadPool pool = options.MakePool();
  auto grid = bench::UnwrapOrDie(
      exec::ParallelGrid<bench::HeteroResult>(
          &pool, policies.size(), sampling_counts.size(),
          [&](size_t p, size_t c) {
            return bench::RunHeteroWorkload(scheduler, policies[p],
                                            sampling_counts[c]);
          }),
      "figure 7 grid");

  bench::JsonWriter json;
  std::vector<std::vector<double>> sampling_rows(policies.size());
  std::vector<std::vector<double>> non_sampling_rows(policies.size());
  for (size_t p = 0; p < policies.size(); ++p) {
    for (size_t c = 0; c < sampling_counts.size(); ++c) {
      const bench::HeteroResult& r = grid[p][c];
      sampling_rows[p].push_back(r.sampling_throughput);
      non_sampling_rows[p].push_back(r.non_sampling_throughput);
      json.AddCell()
          .Set("figure", "fig7")
          .Set("policy", policies[p])
          .Set("sampling_fraction", sampling_counts[c] / 10.0)
          .Set("sampling_jobs_per_hour", r.sampling_throughput)
          .Set("non_sampling_jobs_per_hour", r.non_sampling_throughput);
    }
  }

  std::printf("(a) Sampling class throughput (jobs/hour)\n");
  TablePrinter sampling_table(
      {"policy", "frac=0.2", "frac=0.4", "frac=0.6", "frac=0.8"});
  for (size_t p = 0; p < policies.size(); ++p) {
    sampling_table.AddNumericRow(policies[p], sampling_rows[p], 1);
  }
  sampling_table.Print();

  std::printf("\n(b) Non-Sampling class throughput (jobs/hour)\n");
  TablePrinter ns_table(
      {"policy", "frac=0.2", "frac=0.4", "frac=0.6", "frac=0.8"});
  for (size_t p = 0; p < policies.size(); ++p) {
    ns_table.AddNumericRow(policies[p], non_sampling_rows[p], 1);
  }
  ns_table.Print();

  // The paper highlights the LA-vs-Hadoop improvement factors (3x at 20 %,
  // up to 8x at 80 %).
  size_t la = 1, hadoop = 4;
  std::printf("\nNon-Sampling throughput gain, LA vs Hadoop: ");
  for (size_t i = 0; i < sampling_counts.size(); ++i) {
    double gain = non_sampling_rows[hadoop][i] > 0
                      ? non_sampling_rows[la][i] / non_sampling_rows[hadoop][i]
                      : 0.0;
    std::printf("frac=%.1f: %.1fx  ", sampling_counts[i] / 10.0, gain);
  }
  std::printf("\n");
  bench::MaybeWriteJson(options, json);
}

}  // namespace
}  // namespace dmr

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "fig7_hetero_fifo");
  bench::PrintHeader(
      "Figure 7: heterogeneous workload, default (FIFO) scheduler",
      "Grover & Carey, ICDE 2012, Fig. 7 (a), (b)",
      "Sampling throughput rises with the sampling fraction; Non-Sampling "
      "throughput is lowest when the Sampling class runs the Hadoop policy "
      "and improves ~3x (frac 0.2) to ~8x (frac 0.8) under LA; conservative "
      "policies (C/LA) maximize both classes");
  RunFigure(testbed::SchedulerKind::kFifo, options);
  return 0;
}
