/// \file
/// Reproduces the Section V-F scheduler measurements: data locality (% of
/// map tasks reading from their home node) and slot occupancy (% of map
/// slots in use) for the default FIFO scheduler vs the Fair Scheduler, on
/// the heterogeneous workload (sampling fraction 0.4, LA policy).
///
/// Paper numbers: Fair Scheduler 88 % locality / 18 % occupancy; default
/// scheduler 57 % locality / 44 % occupancy — higher locality costs
/// occupancy because delay scheduling holds slots idle waiting for local
/// work.

#include <cstdio>

#include "bench/bench_util.h"
#include "bench/hetero_workload.h"
#include "common/table_printer.h"

int main() {
  using namespace dmr;
  bench::PrintHeader(
      "Section V-F: scheduler impact on locality and occupancy",
      "Grover & Carey, ICDE 2012, Section V-F",
      "Fair Scheduler: much higher locality, much lower occupancy and lower "
      "throughput than FIFO (paper: 88%/18% vs 57%/44%)");

  bench::HeteroResult fifo = bench::RunHeteroWorkload(
      testbed::SchedulerKind::kFifo, "LA", /*sampling_users=*/4);
  bench::HeteroResult fair = bench::RunHeteroWorkload(
      testbed::SchedulerKind::kFair, "LA", /*sampling_users=*/4);

  TablePrinter table({"scheduler", "locality (%)", "slot occupancy (%)",
                      "Sampling (jobs/h)", "NonSampling (jobs/h)"});
  table.AddNumericRow("default (FIFO)",
                      {fifo.locality_percent, fifo.slot_occupancy_percent,
                       fifo.sampling_throughput,
                       fifo.non_sampling_throughput},
                      1);
  table.AddNumericRow("Fair Scheduler",
                      {fair.locality_percent, fair.slot_occupancy_percent,
                       fair.sampling_throughput,
                       fair.non_sampling_throughput},
                      1);
  table.Print();
  return 0;
}
