/// \file
/// Reproduces the Section V-F scheduler measurements: data locality (% of
/// map tasks reading from their home node) and slot occupancy (% of map
/// slots in use) for the default FIFO scheduler vs the Fair Scheduler, on
/// the heterogeneous workload (sampling fraction 0.4, LA policy).
///
/// Paper numbers: Fair Scheduler 88 % locality / 18 % occupancy; default
/// scheduler 57 % locality / 44 % occupancy — higher locality costs
/// occupancy because delay scheduling holds slots idle waiting for local
/// work.
///
/// Extension (DESIGN.md §16): three more Fair cells re-run the workload
/// with divergent per-replica layouts (every partition's copies cycle
/// row/columnar/indexed) at layout weight 0 / 0.5 / 1.0. Weight 0 is the
/// layout-blind baseline on the same divergent data; positive weights let
/// the scheduler trade locality for a better-layout replica, which shows
/// up as recovered occupancy/throughput at a locality cost.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/hetero_workload.h"
#include "common/table_printer.h"
#include "exec/parallel.h"

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "secVF_scheduler");
  bench::PrintHeader(
      "Section V-F: scheduler impact on locality and occupancy",
      "Grover & Carey, ICDE 2012, Section V-F",
      "Fair Scheduler: much higher locality, much lower occupancy and lower "
      "throughput than FIFO (paper: 88%/18% vs 57%/44%); layout-aware "
      "weights recover throughput on divergent-layout replicas");

  struct Cell {
    const char* label;
    testbed::SchedulerKind scheduler;
    bench::HeteroLayoutOptions layout;
  };
  const std::vector<Cell> cells = {
      {"default (FIFO)", testbed::SchedulerKind::kFifo, {}},
      {"Fair Scheduler", testbed::SchedulerKind::kFair, {}},
      {"Fair+layouts w=0.0", testbed::SchedulerKind::kFair, {true, 0.0}},
      {"Fair+layouts w=0.5", testbed::SchedulerKind::kFair, {true, 0.5}},
      {"Fair+layouts w=1.0", testbed::SchedulerKind::kFair, {true, 1.0}},
  };

  exec::ThreadPool pool = options.MakePool();
  auto results = bench::UnwrapOrDie(
      exec::ParallelMap<bench::HeteroResult>(
          &pool, cells.size(),
          [&](size_t i) {
            return bench::RunHeteroWorkload(cells[i].scheduler, "LA",
                                            /*sampling_users=*/4,
                                            /*duration=*/6.0 * 3600,
                                            /*warmup=*/1800.0,
                                            cells[i].layout);
          }),
      "scheduler comparison");

  bench::JsonWriter json;
  TablePrinter table({"scheduler", "locality (%)", "slot occupancy (%)",
                      "Sampling (jobs/h)", "NonSampling (jobs/h)"});
  for (size_t i = 0; i < results.size(); ++i) {
    const bench::HeteroResult& r = results[i];
    table.AddNumericRow(cells[i].label,
                        {r.locality_percent, r.slot_occupancy_percent,
                         r.sampling_throughput, r.non_sampling_throughput},
                        1);
    json.AddCell()
        .Set("figure", "secVF")
        .Set("scheduler", cells[i].label)
        .Set("divergent_layouts", cells[i].layout.divergent_layouts)
        .Set("layout_weight", cells[i].layout.layout_weight)
        .Set("locality_percent", r.locality_percent)
        .Set("slot_occupancy_percent", r.slot_occupancy_percent)
        .Set("sampling_jobs_per_hour", r.sampling_throughput)
        .Set("non_sampling_jobs_per_hour", r.non_sampling_throughput);
  }
  table.Print();
  bench::MaybeWriteJson(options, json);
  return 0;
}
