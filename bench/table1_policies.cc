/// \file
/// Prints Table I — the configured policies for incremental processing of
/// input — as loaded from the built-in registry, and demonstrates the
/// grab-limit expressions at a few cluster states.

#include <cstdio>
#include <limits>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/growth_policy.h"
#include "exec/parallel.h"

namespace {

struct StateRow {
  std::vector<int64_t> limits;  // grab limit per probed AS value
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "table1_policies");
  bench::PrintHeader("Table I: policies for incremental processing of input",
                     "Grover & Carey, ICDE 2012, Table I",
                     "five policies from Hadoop (unbounded) to C "
                     "(conservative); grab limits shown for representative "
                     "cluster states");

  const auto& table = dynamic::PolicyTable::BuiltIn();
  bench::JsonWriter json;
  TablePrinter policies({"policy", "description", "work threshold (%)",
                         "grab limit"});
  for (const auto& p : table.policies()) {
    policies.AddRow({p.name(), p.description(),
                     std::to_string(static_cast<int>(p.work_threshold_pct())),
                     p.grab_limit_text()});
    json.AddCell()
        .Set("table", "table1")
        .Set("policy", p.name())
        .Set("description", p.description())
        .Set("work_threshold_pct", p.work_threshold_pct())
        .Set("grab_limit", p.grab_limit_text());
  }
  policies.Print();

  std::printf("\nGrab limits at representative cluster states "
              "(TS = 40 total slots):\n");
  const std::vector<int> probe_as = {40, 20, 4, 0};
  exec::ThreadPool pool = options.MakePool();
  auto rows = bench::UnwrapOrDie(
      exec::ParallelMap<StateRow>(
          &pool, table.policies().size(),
          [&](size_t i) -> Result<StateRow> {
            StateRow row;
            for (int as : probe_as) {
              mapred::ClusterStatus status;
              status.total_map_slots = 40;
              status.occupied_map_slots = 40 - as;
              row.limits.push_back(table.policies()[i].GrabLimit(status));
            }
            return row;
          }),
      "grab-limit probe");

  TablePrinter states({"policy", "AS=40 (idle)", "AS=20", "AS=4", "AS=0"});
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& p = table.policies()[i];
    std::vector<std::string> cells = {p.name()};
    for (size_t s = 0; s < probe_as.size(); ++s) {
      int64_t g = rows[i].limits[s];
      std::string text = g == std::numeric_limits<int64_t>::max()
                             ? "inf"
                             : std::to_string(g);
      json.AddCell()
          .Set("table", "table1-states")
          .Set("policy", p.name())
          .Set("available_slots", probe_as[s])
          .Set("grab_limit", text);
      cells.push_back(std::move(text));
    }
    states.AddRow(cells);
  }
  states.Print();
  bench::MaybeWriteJson(options, json);
  return 0;
}
