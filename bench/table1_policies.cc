/// \file
/// Prints Table I — the configured policies for incremental processing of
/// input — as loaded from the built-in registry, and demonstrates the
/// grab-limit expressions at a few cluster states.

#include <cstdio>
#include <limits>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/growth_policy.h"

int main() {
  using namespace dmr;
  bench::PrintHeader("Table I: policies for incremental processing of input",
                     "Grover & Carey, ICDE 2012, Table I",
                     "five policies from Hadoop (unbounded) to C "
                     "(conservative); grab limits shown for representative "
                     "cluster states");

  const auto& table = dynamic::PolicyTable::BuiltIn();
  TablePrinter policies({"policy", "description", "work threshold (%)",
                         "grab limit"});
  for (const auto& p : table.policies()) {
    policies.AddRow({p.name(), p.description(),
                     std::to_string(static_cast<int>(p.work_threshold_pct())),
                     p.grab_limit_text()});
  }
  policies.Print();

  std::printf("\nGrab limits at representative cluster states "
              "(TS = 40 total slots):\n");
  TablePrinter states({"policy", "AS=40 (idle)", "AS=20", "AS=4", "AS=0"});
  for (const auto& p : table.policies()) {
    auto limit = [&](int as) -> std::string {
      mapred::ClusterStatus status;
      status.total_map_slots = 40;
      status.occupied_map_slots = 40 - as;
      int64_t g = p.GrabLimit(status);
      return g == std::numeric_limits<int64_t>::max() ? "inf"
                                                      : std::to_string(g);
    };
    states.AddRow({p.name(), limit(40), limit(20), limit(4), limit(0)});
  }
  states.Print();
  return 0;
}
