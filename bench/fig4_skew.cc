/// \file
/// Reproduces Figure 4: the distribution of matching records across the 40
/// partitions of the 5x dataset for each degree of skew (z = 0, 1, 2) at
/// 0.05 % selectivity (15,000 matching records total).
///
/// The paper's reference points: z=0 gives an equal count per partition;
/// z=1 puts ~3,128 records in the heaviest partition; z=2 puts ~8,700 in a
/// single partition.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel.h"
#include "tpch/dataset_catalog.h"
#include "tpch/skew_model.h"

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "fig4_skew");
  bench::PrintHeader(
      "Figure 4: distribution of matching records across partitions (5x)",
      "Grover & Carey, ICDE 2012, Fig. 4",
      "z=0: equal counts (375/partition); z=1: heaviest partition ~3.1k; "
      "z=2: heaviest partition ~8.7k of 15k");

  const std::vector<double> zs = {0.0, 1.0, 2.0};
  exec::ThreadPool pool = options.MakePool();
  auto all_counts = bench::UnwrapOrDie(
      exec::ParallelMap<std::vector<uint64_t>>(
          &pool, zs.size(),
          [&](size_t i) {
            tpch::SkewSpec spec;
            spec.num_partitions = 40;
            spec.records_per_partition = tpch::kRecordsPerPartition;
            spec.selectivity = tpch::kPaperSelectivity;
            spec.zipf_z = zs[i];
            spec.seed = 20120401;
            return tpch::AssignMatchingRecords(spec);
          }),
      "skew model");

  bench::JsonWriter json;
  for (size_t zi = 0; zi < zs.size(); ++zi) {
    const std::vector<uint64_t>& counts = all_counts[zi];
    std::vector<uint64_t> sorted = counts;
    std::sort(sorted.rbegin(), sorted.rend());
    uint64_t total = 0;
    for (uint64_t c : sorted) total += c;

    std::printf("z = %.0f: total matching = %llu\n", zs[zi],
                static_cast<unsigned long long>(total));
    std::printf("  top partitions: ");
    for (int i = 0; i < 8; ++i) {
      std::printf("%llu ", static_cast<unsigned long long>(sorted[i]));
    }
    std::printf("...\n");
    int empty = static_cast<int>(
        std::count(sorted.begin(), sorted.end(), uint64_t{0}));
    std::printf("  partitions with zero matches: %d / 40\n", empty);

    // A coarse ASCII rendering of the per-partition histogram.
    uint64_t max_count = sorted.front();
    std::printf("  per-partition counts (physical order):\n");
    for (int i = 0; i < 40; i += 1) {
      int bar = max_count == 0
                    ? 0
                    : static_cast<int>(50.0 * static_cast<double>(counts[i]) /
                                       static_cast<double>(max_count));
      std::printf("   p%02d %6llu |%s\n", i,
                  static_cast<unsigned long long>(counts[i]),
                  std::string(bar, '#').c_str());
      json.AddCell()
          .Set("figure", "fig4")
          .Set("z", zs[zi])
          .Set("partition", i)
          .Set("matching_records", counts[i]);
    }
    std::printf("\n");
  }
  bench::MaybeWriteJson(options, json);
  return 0;
}
