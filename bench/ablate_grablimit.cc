/// \file
/// Ablation: expression-based grab limits (Table I) vs fixed grab sizes.
/// Single-user sampling on 20x data, moderate skew. Shows why the paper
/// couples the grab limit to cluster state (AS/TS): small fixed grabs
/// serialize rounds; huge fixed grabs waste work like the Hadoop policy.
/// The per-limit cells fan out across hardware threads.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/growth_policy.h"
#include "exec/parallel.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr {
namespace {

struct Row {
  double response = 0;
  double partitions = 0;
  double increments = 0;
};

Result<Row> RunWith(const dynamic::GrowthPolicy& policy) {
  double rt = 0, parts = 0, incs = 0;
  constexpr int kRepeats = 5;
  for (int run = 0; run < kRepeats; ++run) {
    testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
    bed.Annotate("cell", "grablimit-s20");
    bed.Annotate("policy", policy.name());
    bed.Annotate("z", 1.0);
    bed.Annotate("repeat", static_cast<int64_t>(run));
    DMR_ASSIGN_OR_RETURN(
        testbed::Dataset dataset,
        testbed::MakeLineItemDataset(&bed.fs(), 20, /*z=*/1.0,
                                     500 + 37 * run));
    sampling::SamplingJobOptions options;
    options.job_name = "ablate-grab";
    options.sample_size = tpch::kPaperSampleSize;
    options.seed = 1234 + run;
    DMR_ASSIGN_OR_RETURN(
        mapred::JobSubmission submission,
        sampling::MakeSamplingJob(dataset.file, dataset.matching_per_partition,
                                  policy, options));
    DMR_ASSIGN_OR_RETURN(mapred::JobStats stats,
                         bed.RunJobToCompletion(std::move(submission)));
    rt += stats.response_time();
    parts += stats.splits_processed;
    incs += stats.input_increments;
  }
  return Row{rt / kRepeats, parts / kRepeats, incs / kRepeats};
}

}  // namespace
}  // namespace dmr

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "ablate_grablimit");
  bench::PrintHeader(
      "Ablation: grab-limit form (fixed sizes vs cluster-coupled "
      "expressions)",
      "DESIGN.md ablation #1 (supports the paper's Table I design)",
      "tiny fixed grabs serialize rounds (slow); unbounded grabs waste "
      "partitions; AS/TS-coupled limits sit near the knee");

  std::vector<dynamic::GrowthPolicy> policies;
  std::vector<std::string> labels;
  for (int fixed : {1, 2, 4, 8, 16, 32, 64}) {
    policies.push_back(bench::UnwrapOrDie(
        dynamic::GrowthPolicy::Create("F" + std::to_string(fixed),
                                      "fixed grab", 0.0,
                                      std::to_string(fixed)),
        "policy"));
    labels.push_back("fixed " + std::to_string(fixed));
  }
  for (const char* name : {"HA", "MA", "LA", "C", "Hadoop"}) {
    policies.push_back(bench::UnwrapOrDie(
        dynamic::PolicyTable::BuiltIn().Find(name), "policy"));
    labels.push_back(std::string("Table I: ") + name);
  }

  exec::ThreadPool pool = options.MakePool();
  auto rows = bench::UnwrapOrDie(
      exec::ParallelMap<Row>(&pool, policies.size(),
                             [&](size_t i) { return RunWith(policies[i]); }),
      "grab-limit grid");

  bench::JsonWriter json;
  TablePrinter table({"grab limit", "response time (s)",
                      "partitions processed", "input increments"});
  for (size_t i = 0; i < rows.size(); ++i) {
    table.AddNumericRow(labels[i], {rows[i].response, rows[i].partitions,
                                    rows[i].increments}, 1);
    json.AddCell()
        .Set("study", "ablate_grablimit")
        .Set("grab_limit", labels[i])
        .Set("response_time_s", rows[i].response)
        .Set("partitions", rows[i].partitions)
        .Set("increments", rows[i].increments);
  }
  table.Print();
  bench::MaybeWriteJson(options, json);
  return 0;
}
