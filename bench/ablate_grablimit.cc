/// \file
/// Ablation: expression-based grab limits (Table I) vs fixed grab sizes.
/// Single-user sampling on 20x data, moderate skew. Shows why the paper
/// couples the grab limit to cluster state (AS/TS): small fixed grabs
/// serialize rounds; huge fixed grabs waste work like the Hadoop policy.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/growth_policy.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr {
namespace {

struct Row {
  std::string label;
  double response = 0;
  double partitions = 0;
  double increments = 0;
};

Row RunWith(const dynamic::GrowthPolicy& policy, const std::string& label) {
  double rt = 0, parts = 0, incs = 0;
  constexpr int kRepeats = 5;
  for (int run = 0; run < kRepeats; ++run) {
    testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
    auto dataset = bench::UnwrapOrDie(
        testbed::MakeLineItemDataset(&bed.fs(), 20, /*z=*/1.0,
                                     500 + 37 * run),
        "dataset");
    sampling::SamplingJobOptions options;
    options.job_name = "ablate-grab";
    options.sample_size = tpch::kPaperSampleSize;
    options.seed = 1234 + run;
    auto submission = bench::UnwrapOrDie(
        sampling::MakeSamplingJob(dataset.file,
                                  dataset.matching_per_partition, policy,
                                  options),
        "job");
    auto stats =
        bench::UnwrapOrDie(bed.RunJobToCompletion(std::move(submission)),
                           "run");
    rt += stats.response_time();
    parts += stats.splits_processed;
    incs += stats.input_increments;
  }
  return {label, rt / kRepeats, parts / kRepeats, incs / kRepeats};
}

}  // namespace
}  // namespace dmr

int main() {
  using namespace dmr;
  bench::PrintHeader(
      "Ablation: grab-limit form (fixed sizes vs cluster-coupled "
      "expressions)",
      "DESIGN.md ablation #1 (supports the paper's Table I design)",
      "tiny fixed grabs serialize rounds (slow); unbounded grabs waste "
      "partitions; AS/TS-coupled limits sit near the knee");

  std::vector<Row> rows;
  for (int fixed : {1, 2, 4, 8, 16, 32, 64}) {
    auto policy = bench::UnwrapOrDie(
        dynamic::GrowthPolicy::Create("F" + std::to_string(fixed),
                                      "fixed grab", 0.0,
                                      std::to_string(fixed)),
        "policy");
    rows.push_back(RunWith(policy, "fixed " + std::to_string(fixed)));
  }
  for (const char* name : {"HA", "MA", "LA", "C", "Hadoop"}) {
    auto policy = bench::UnwrapOrDie(
        dynamic::PolicyTable::BuiltIn().Find(name), "policy");
    rows.push_back(RunWith(policy, std::string("Table I: ") + name));
  }

  TablePrinter table({"grab limit", "response time (s)",
                      "partitions processed", "input increments"});
  for (const auto& row : rows) {
    table.AddNumericRow(row.label, {row.response, row.partitions,
                                    row.increments}, 1);
  }
  table.Print();
  return 0;
}
