/// \file
/// Reproduces Figure 5 of the paper: single-user response times for each
/// policy (Hadoop, HA, MA, LA, C) over dataset scales 5..100 at zero (a),
/// moderate (b) and high (c) skew, plus (d) the number of partitions
/// processed per job under moderate skew.
///
/// The policy x scale x skew grid (75 cells, 5 repeats each) fans out
/// across hardware threads; per-cell seeding is unchanged from the serial
/// driver so the tables are bit-identical at any --threads setting.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/growth_policy.h"
#include "exec/parallel.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr {
namespace {

constexpr int kRepeats = 5;  // the paper averages over 5 runs

struct CellResult {
  double response_time = 0;
  double partitions = 0;
};

Result<CellResult> RunCell(const std::string& policy_name, int scale,
                           double z) {
  double rt_sum = 0, parts_sum = 0;
  for (int run = 0; run < kRepeats; ++run) {
    // A fresh cluster per run (the paper's runs are back-to-back on an idle
    // cluster; a fresh testbed avoids cross-run interference).
    testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
    bed.Annotate("cell", "s" + std::to_string(scale));
    bed.Annotate("policy", policy_name);
    bed.Annotate("z", z);
    bed.Annotate("repeat", static_cast<int64_t>(run));
    uint64_t seed = 1000 + 17 * run + scale;
    DMR_ASSIGN_OR_RETURN(
        testbed::Dataset dataset,
        testbed::MakeLineItemDataset(&bed.fs(), scale, z, seed));
    DMR_ASSIGN_OR_RETURN(dynamic::GrowthPolicy policy,
                         dynamic::PolicyTable::BuiltIn().Find(policy_name));
    sampling::SamplingJobOptions options;
    options.job_name = "fig5-" + policy_name;
    options.sample_size = tpch::kPaperSampleSize;
    options.seed = seed * 31 + 7;
    options.predicate_sql = "selectivity 0.05%, z=" + std::to_string(z);
    DMR_ASSIGN_OR_RETURN(
        mapred::JobSubmission submission,
        sampling::MakeSamplingJob(dataset.file, dataset.matching_per_partition,
                                  policy, options));
    DMR_ASSIGN_OR_RETURN(mapred::JobStats stats,
                         bed.RunJobToCompletion(std::move(submission)));
    rt_sum += stats.response_time();
    parts_sum += stats.splits_processed;
  }
  return CellResult{rt_sum / kRepeats, parts_sum / kRepeats};
}

}  // namespace
}  // namespace dmr

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "fig5_single_user");
  bench::PrintHeader(
      "Figure 5: single-user workload",
      "Grover & Carey, ICDE 2012, Fig. 5 (a)-(d)",
      "Hadoop grows ~linearly with scale; dynamic policies stay ~flat; "
      "HA <= MA < LA < C on the idle cluster; skew hurts conservative "
      "policies most; Hadoop processes every partition");

  const std::vector<std::string> policies = {"Hadoop", "HA", "MA", "LA", "C"};
  const std::vector<int>& scales = tpch::StandardScales();
  struct Panel {
    const char* label;
    double z;
  };
  const std::vector<Panel> panels = {
      {"a: zero skew", 0.0}, {"b: moderate skew", 1.0}, {"c: high skew", 2.0}};

  // Flatten panel x policy x scale into one fan-out.
  const size_t cells_per_panel = policies.size() * scales.size();
  exec::ThreadPool pool = options.MakePool();
  auto flat = bench::UnwrapOrDie(
      exec::ParallelMap<CellResult>(
          &pool, panels.size() * cells_per_panel,
          [&](size_t i) {
            size_t panel = i / cells_per_panel;
            size_t p = (i % cells_per_panel) / scales.size();
            size_t s = i % scales.size();
            return RunCell(policies[p], scales[s], panels[panel].z);
          }),
      "figure 5 grid");

  bench::JsonWriter json;
  std::vector<std::vector<double>> partitions_z1;
  for (size_t panel = 0; panel < panels.size(); ++panel) {
    TablePrinter table({"policy", "5x", "10x", "20x", "40x", "100x"});
    std::printf("Figure 5 (%s): response time (s) vs dataset scale, z=%g\n",
                panels[panel].label, panels[panel].z);
    for (size_t p = 0; p < policies.size(); ++p) {
      std::vector<double> row_rt;
      std::vector<double> row_parts;
      for (size_t s = 0; s < scales.size(); ++s) {
        const CellResult& cell =
            flat[panel * cells_per_panel + p * scales.size() + s];
        row_rt.push_back(cell.response_time);
        row_parts.push_back(cell.partitions);
        json.AddCell()
            .Set("figure", "fig5")
            .Set("policy", policies[p])
            .Set("scale", scales[s])
            .Set("z", panels[panel].z)
            .Set("response_time_s", cell.response_time)
            .Set("partitions", cell.partitions);
      }
      table.AddNumericRow(policies[p], row_rt, 1);
      if (panels[panel].z == 1.0) partitions_z1.push_back(row_parts);
    }
    table.Print();
    std::printf("\n");
  }

  std::printf(
      "Figure 5 (d): partitions processed per job (moderate skew, z=1)\n");
  TablePrinter parts_table({"policy", "5x", "10x", "20x", "40x", "100x"});
  for (size_t p = 0; p < partitions_z1.size(); ++p) {
    parts_table.AddNumericRow(policies[p], partitions_z1[p], 1);
  }
  parts_table.Print();
  bench::MaybeWriteJson(options, json);
  return 0;
}
