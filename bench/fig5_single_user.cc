/// \file
/// Reproduces Figure 5 of the paper: single-user response times for each
/// policy (Hadoop, HA, MA, LA, C) over dataset scales 5..100 at zero (a),
/// moderate (b) and high (c) skew, plus (d) the number of partitions
/// processed per job under moderate skew.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/growth_policy.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr {
namespace {

constexpr int kRepeats = 5;  // the paper averages over 5 runs

struct CellResult {
  double response_time = 0;
  double partitions = 0;
};

CellResult RunCell(const std::string& policy_name, int scale, double z) {
  double rt_sum = 0, parts_sum = 0;
  for (int run = 0; run < kRepeats; ++run) {
    // A fresh cluster per run (the paper's runs are back-to-back on an idle
    // cluster; a fresh testbed avoids cross-run interference).
    testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
    uint64_t seed = 1000 + 17 * run + scale;
    auto dataset = bench::UnwrapOrDie(
        testbed::MakeLineItemDataset(&bed.fs(), scale, z, seed),
        "dataset generation");
    auto policy = bench::UnwrapOrDie(
        dynamic::PolicyTable::BuiltIn().Find(policy_name), "policy lookup");
    sampling::SamplingJobOptions options;
    options.job_name = "fig5-" + policy_name;
    options.sample_size = tpch::kPaperSampleSize;
    options.seed = seed * 31 + 7;
    options.predicate_sql = "selectivity 0.05%, z=" + std::to_string(z);
    auto submission = bench::UnwrapOrDie(
        sampling::MakeSamplingJob(dataset.file,
                                  dataset.matching_per_partition, policy,
                                  options),
        "job construction");
    auto stats = bench::UnwrapOrDie(
        bed.RunJobToCompletion(std::move(submission)), "job execution");
    rt_sum += stats.response_time();
    parts_sum += stats.splits_processed;
  }
  return {rt_sum / kRepeats, parts_sum / kRepeats};
}

void RunSkewPanel(const char* label, double z,
                  std::vector<std::vector<double>>* partitions_out) {
  const std::vector<std::string> policies = {"Hadoop", "HA", "MA", "LA", "C"};
  const std::vector<int>& scales = tpch::StandardScales();

  TablePrinter table({"policy", "5x", "10x", "20x", "40x", "100x"});
  std::printf("Figure 5 (%s): response time (s) vs dataset scale, z=%g\n",
              label, z);
  for (const auto& policy : policies) {
    std::vector<double> row_rt;
    std::vector<double> row_parts;
    for (int scale : scales) {
      CellResult cell = RunCell(policy, scale, z);
      row_rt.push_back(cell.response_time);
      row_parts.push_back(cell.partitions);
    }
    table.AddNumericRow(policy, row_rt, 1);
    if (partitions_out) partitions_out->push_back(row_parts);
  }
  table.Print();
  std::printf("\n");
}

}  // namespace
}  // namespace dmr

int main() {
  using namespace dmr;
  bench::PrintHeader(
      "Figure 5: single-user workload",
      "Grover & Carey, ICDE 2012, Fig. 5 (a)-(d)",
      "Hadoop grows ~linearly with scale; dynamic policies stay ~flat; "
      "HA <= MA < LA < C on the idle cluster; skew hurts conservative "
      "policies most; Hadoop processes every partition");

  RunSkewPanel("a: zero skew", 0.0, nullptr);

  std::vector<std::vector<double>> partitions;
  RunSkewPanel("b: moderate skew", 1.0, &partitions);

  RunSkewPanel("c: high skew", 2.0, nullptr);

  std::printf(
      "Figure 5 (d): partitions processed per job (moderate skew, z=1)\n");
  TablePrinter parts_table({"policy", "5x", "10x", "20x", "40x", "100x"});
  const char* names[] = {"Hadoop", "HA", "MA", "LA", "C"};
  for (size_t i = 0; i < partitions.size(); ++i) {
    parts_table.AddNumericRow(names[i], partitions[i], 1);
  }
  parts_table.Print();
  return 0;
}
