/// \file
/// Reproduces Table II: properties of the generated LINEITEM datasets at
/// scales 5, 10, 20, 40 and 100 — total records, size, partition count and
/// matching records at the paper's 0.05 % predicate selectivity.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "exec/parallel.h"
#include "tpch/dataset_catalog.h"

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "table2_datasets");
  bench::PrintHeader(
      "Table II: test dataset properties",
      "Grover & Carey, ICDE 2012, Table II",
      "5x data = 30 M records in 40 partitions (one per disk); partitions "
      "and records scale linearly; 0.05 % selectivity = 15,000 matches at "
      "5x");

  const std::vector<int>& scales = tpch::StandardScales();
  exec::ThreadPool pool = options.MakePool();
  auto props = bench::UnwrapOrDie(
      exec::ParallelMap<tpch::DatasetProperties>(
          &pool, scales.size(),
          [&](size_t i) { return tpch::PropertiesForScale(scales[i]); }),
      "catalog");

  bench::JsonWriter json;
  TablePrinter table({"scale", "records", "size", "partitions",
                      "matching records (0.05%)"});
  for (size_t i = 0; i < scales.size(); ++i) {
    table.AddRow({std::to_string(scales[i]) + "x",
                  std::to_string(props[i].total_records),
                  FormatBytes(props[i].total_bytes),
                  std::to_string(props[i].num_partitions),
                  std::to_string(props[i].matching_records)});
    json.AddCell()
        .Set("table", "table2")
        .Set("scale", scales[i])
        .Set("total_records", props[i].total_records)
        .Set("total_bytes", props[i].total_bytes)
        .Set("partitions", props[i].num_partitions)
        .Set("matching_records", props[i].matching_records);
  }
  table.Print();
  bench::MaybeWriteJson(options, json);
  return 0;
}
