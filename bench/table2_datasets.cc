/// \file
/// Reproduces Table II: properties of the generated LINEITEM datasets at
/// scales 5, 10, 20, 40 and 100 — total records, size, partition count and
/// matching records at the paper's 0.05 % predicate selectivity.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/strings.h"
#include "common/table_printer.h"
#include "tpch/dataset_catalog.h"

int main() {
  using namespace dmr;
  bench::PrintHeader(
      "Table II: test dataset properties",
      "Grover & Carey, ICDE 2012, Table II",
      "5x data = 30 M records in 40 partitions (one per disk); partitions "
      "and records scale linearly; 0.05 % selectivity = 15,000 matches at "
      "5x");

  TablePrinter table({"scale", "records", "size", "partitions",
                      "matching records (0.05%)"});
  for (int scale : tpch::StandardScales()) {
    auto props =
        bench::UnwrapOrDie(tpch::PropertiesForScale(scale), "catalog");
    table.AddRow({std::to_string(scale) + "x",
                  std::to_string(props.total_records),
                  FormatBytes(props.total_bytes),
                  std::to_string(props.num_partitions),
                  std::to_string(props.matching_records)});
  }
  table.Print();
  return 0;
}
