#ifndef DMR_BENCH_BENCH_UTIL_H_
#define DMR_BENCH_BENCH_UTIL_H_

#include <sys/utsname.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "exec/parallel.h"
#include "prof/prof.h"
#include "sim/simulation.h"
#include "obs/flight_recorder.h"
#include "obs/ledger.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/scope.h"
#include "obs/timeline.h"
#include "obs/trace.h"

namespace dmr::bench {

/// Aborts the benchmark with a message when a Status is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T UnwrapOrDie(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).ValueUnsafe();
}

/// Prints the standard benchmark header.
inline void PrintHeader(const std::string& title, const std::string& paper_ref,
                        const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================\n\n");
}

/// \brief Command-line options shared by every bench driver.
///
/// --threads=N        experiment-cell parallelism (0 or "auto" = all
///                    hardware threads; 1 = the historical serial behaviour)
/// --json=FILE        additionally emit per-cell results as a JSON array
/// --trace=FILE       record a Chrome trace-event file of every simulated
///                    cluster (open in Perfetto / chrome://tracing)
/// --metrics=FILE     emit the unified metrics report (counters + latency
///                    histogram percentiles) as JSON, plus a text summary
/// --timeline=FILE    emit the virtual-time telemetry timelines (per-cell
///                    probe series + sliding-window percentiles + SLO
///                    breaches + flight-recorder ring) as JSON
/// --profile=FILE     enable the host-side profiler (prof/prof.h) for the
///                    whole run and write collapsed flamegraph stacks to
///                    FILE; the phase tree also lands in the --metrics
///                    report as the "prof" section. Profiling never touches
///                    virtual time — every digest stays byte-identical
/// --dump-flight-recorder  print every cell's flight-recorder ring to
///                    stdout at teardown (post-mortem without a crash)
/// --shuffle-ties=S   fire same-timestamp simulation events in a seeded
///                    pseudo-random permutation of insertion order; all
///                    tables/digests must be identical for every seed
///                    (the virtual-time tie-race check, see DESIGN.md §13)
/// --queue=KIND       event-queue implementation: "calendar" (default,
///                    two-tier bucket queue) or "heap" (the legacy binary
///                    heap oracle); firing order — and hence every digest —
///                    must be identical for both (see DESIGN.md §14)
struct BenchOptions {
  int threads = 0;
  std::string json_path;
  std::string trace_path;
  std::string metrics_path;
  std::string timeline_path;
  std::string profile_path;
  bool dump_flight_recorder = false;
  /// Set when --shuffle-ties was given (already applied process-wide).
  std::optional<uint64_t> shuffle_ties;
  /// The --queue kind (already applied process-wide).
  sim::QueueKind queue = sim::QueueKind::kCalendar;

  bool obs_enabled() const {
    return !trace_path.empty() || !metrics_path.empty() ||
           !timeline_path.empty() || !profile_path.empty() ||
           dump_flight_recorder;
  }

  /// Parses the shared flags; unknown --flags abort with usage, bare
  /// positional arguments are left for the driver (returned indices are
  /// compacted into argv[1..] with argc updated).
  static BenchOptions Parse(int& argc, char** argv) {
    BenchOptions options;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
      const char* arg = argv[i];
      if (std::strncmp(arg, "--threads=", 10) == 0) {
        const char* value = arg + 10;
        if (std::strcmp(value, "auto") == 0) {
          options.threads = 0;  // pool picks DMR_THREADS / hardware count
        } else {
          char* end = nullptr;
          long parsed = std::strtol(value, &end, 10);
          if (end == value || *end != '\0' || parsed < 1 || parsed > 4096) {
            std::fprintf(stderr, "bad --threads value: %s (want 1..4096 or auto)\n",
                         value);
            std::exit(2);
          }
          options.threads = static_cast<int>(parsed);
        }
      } else if (std::strncmp(arg, "--json=", 7) == 0) {
        options.json_path = arg + 7;
      } else if (std::strncmp(arg, "--trace=", 8) == 0) {
        options.trace_path = arg + 8;
      } else if (std::strncmp(arg, "--metrics=", 10) == 0) {
        options.metrics_path = arg + 10;
      } else if (std::strncmp(arg, "--timeline=", 11) == 0) {
        options.timeline_path = arg + 11;
      } else if (std::strncmp(arg, "--profile=", 10) == 0) {
        options.profile_path = arg + 10;
        // Process-wide, before any cell runs: every ScopedTimer in the
        // process records into the phase tree ObsSession seals at Finish.
        prof::Enable();
      } else if (std::strcmp(arg, "--dump-flight-recorder") == 0) {
        options.dump_flight_recorder = true;
      } else if (std::strncmp(arg, "--shuffle-ties=", 15) == 0) {
        const char* value = arg + 15;
        char* end = nullptr;
        unsigned long long seed = std::strtoull(value, &end, 10);
        if (end == value || *end != '\0') {
          std::fprintf(stderr, "bad --shuffle-ties value: %s (want a seed)\n",
                       value);
          std::exit(2);
        }
        options.shuffle_ties = static_cast<uint64_t>(seed);
        // Applied process-wide, before any worker threads or Simulations
        // exist: every experiment cell shuffles its virtual-time ties.
        sim::Simulation::SetGlobalTieShuffle(options.shuffle_ties);
      } else if (std::strncmp(arg, "--queue=", 8) == 0) {
        const char* value = arg + 8;
        if (std::strcmp(value, "calendar") == 0) {
          options.queue = sim::QueueKind::kCalendar;
        } else if (std::strcmp(value, "heap") == 0) {
          options.queue = sim::QueueKind::kBinaryHeap;
        } else {
          std::fprintf(stderr,
                       "bad --queue value: %s (want calendar|heap)\n", value);
          std::exit(2);
        }
        // Like --shuffle-ties: process-wide, before any Simulation exists.
        sim::Simulation::SetGlobalQueueKind(options.queue);
      } else if (std::strncmp(arg, "--", 2) == 0) {
        std::fprintf(stderr,
                     "unknown flag %s\nusage: %s [--threads=N|auto] "
                     "[--json=FILE] [--trace=FILE] [--metrics=FILE] "
                     "[--timeline=FILE] [--profile=FILE] "
                     "[--dump-flight-recorder] [--shuffle-ties=SEED] "
                     "[--queue=calendar|heap] [driver args]\n",
                     arg, argv[0]);
        std::exit(2);
      } else {
        argv[kept++] = argv[i];
      }
    }
    argc = kept;
    return options;
  }

  /// The pool every converted driver fans its cells out on.
  exec::ThreadPool MakePool() const { return exec::ThreadPool(threads); }
};

/// \brief Collects per-cell results and renders them as a JSON array of flat
/// objects — the machine-readable twin of the printed tables, consumed by
/// the BENCH_*.json perf-trajectory tooling.
///
/// Field order follows Set() call order and cells are appended in
/// deterministic (serial) order by the drivers, so output is byte-identical
/// across --threads settings.
class JsonWriter {
 public:
  class Cell {
   public:
    Cell& Set(const std::string& key, const std::string& value) {
      return Raw(key, Quote(value));
    }
    Cell& Set(const std::string& key, const char* value) {
      return Raw(key, Quote(value));
    }
    Cell& Set(const std::string& key, double value) {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", value);
      return Raw(key, buf);
    }
    Cell& Set(const std::string& key, int value) {
      return Raw(key, std::to_string(value));
    }
    Cell& Set(const std::string& key, int64_t value) {
      return Raw(key, std::to_string(value));
    }
    Cell& Set(const std::string& key, uint64_t value) {
      return Raw(key, std::to_string(value));
    }
    Cell& Set(const std::string& key, bool value) {
      return Raw(key, value ? "true" : "false");
    }

   private:
    friend class JsonWriter;
    Cell& Raw(const std::string& key, std::string rendered) {
      fields_.emplace_back(key, std::move(rendered));
      return *this;
    }
    static std::string Quote(const std::string& s) {
      std::string out = "\"";
      for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
              char buf[8];
              std::snprintf(buf, sizeof(buf), "\\u%04x", c);
              out += buf;
            } else {
              out += c;
            }
        }
      }
      out += '"';
      return out;
    }
    std::vector<std::pair<std::string, std::string>> fields_;
  };

  /// Appends an object to the array; the reference stays valid for chaining.
  Cell& AddCell() {
    cells_.emplace_back();
    return cells_.back();
  }

  /// Provenance stamp prepended to every BENCH_*.json array: compiler,
  /// build preset and host identity, marked "bench": "_meta" so the
  /// perf-trajectory tooling can tell environments apart (and cell
  /// consumers skip it by the bench-name mismatch). Deliberately no
  /// timestamps — rebuilding the same tree must reproduce the same bytes.
  static Cell MetaCell() {
    Cell meta;
    meta.Set("bench", "_meta");
#ifdef __VERSION__
    meta.Set("compiler", __VERSION__);
#else
    meta.Set("compiler", "unknown");
#endif
#ifdef DMR_BUILD_TYPE
    meta.Set("build_type", DMR_BUILD_TYPE);
#else
    meta.Set("build_type", "unknown");
#endif
    struct utsname u;
    if (uname(&u) == 0) {
      meta.Set("os", std::string(u.sysname) + " " + u.release);
      meta.Set("arch", u.machine);
    } else {
      meta.Set("os", "unknown");
      meta.Set("arch", "unknown");
    }
    char host[256] = {};
    if (gethostname(host, sizeof(host) - 1) == 0 && host[0] != '\0') {
      meta.Set("host", host);
    } else {
      meta.Set("host", "unknown");
    }
    return meta;
  }

  std::string ToString() const {
    std::deque<Cell> all;
    all.push_back(MetaCell());
    all.insert(all.end(), cells_.begin(), cells_.end());
    std::string out = "[\n";
    for (size_t i = 0; i < all.size(); ++i) {
      out += "  {";
      const auto& fields = all[i].fields_;
      for (size_t f = 0; f < fields.size(); ++f) {
        if (f > 0) out += ", ";
        out += Cell::Quote(fields[f].first) + ": " + fields[f].second;
      }
      out += i + 1 < all.size() ? "},\n" : "}\n";
    }
    out += "]\n";
    return out;
  }

  Status WriteToFile(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      return Status::IoError("cannot open " + path + " for writing");
    }
    std::string text = ToString();
    size_t written = std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
    if (written != text.size()) {
      return Status::IoError("short write to " + path);
    }
    return Status::OK();
  }

 private:
  std::deque<Cell> cells_;
};

/// \brief The driver-side observability session behind --trace/--metrics.
///
/// Construct one right after BenchOptions::Parse; it installs the global
/// obs::Hub so every Testbed the driver creates (including from worker
/// threads) auto-attaches a per-cell Scope. Finish() — also run by the
/// destructor — snapshots the metrics into a Report, writes the requested
/// files and uninstalls the hub. With neither flag given the session is
/// inert and costs nothing.
class ObsSession {
 public:
  ObsSession(const BenchOptions& options, std::string driver)
      : driver_(std::move(driver)),
        trace_path_(options.trace_path),
        metrics_path_(options.metrics_path),
        timeline_path_(options.timeline_path),
        profile_path_(options.profile_path),
        dump_flight_(options.dump_flight_recorder) {
    if (!options.obs_enabled()) return;
    registry_ = std::make_unique<obs::MetricsRegistry>();
    if (!trace_path_.empty()) {
      recorder_ = std::make_unique<obs::TraceRecorder>();
    }
    book_ = std::make_unique<obs::LedgerBook>();
    if (!timeline_path_.empty() || dump_flight_) {
      timelines_ = std::make_unique<obs::TimelineBook>();
    }
    if (!profile_path_.empty()) {
      // Session-level ring: records the profile seal (and any timer-stack
      // imbalance) so post-mortems state whether profiling was live.
      prof_flight_ = std::make_unique<obs::FlightRecorder>(16);
      obs::RegisterFlightRecorderForFatalDump(prof_flight_.get(),
                                              "prof/" + driver_);
    }
    obs::Hub::Install(registry_.get(), recorder_.get(), book_.get(),
                      timelines_.get());
    installed_ = true;
  }

  ~ObsSession() { Finish(); }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

  /// Writes the trace / metrics outputs (idempotent). Must only run after
  /// all experiment cells completed (no concurrent Testbeds).
  void Finish() {
    if (!installed_) return;
    installed_ = false;
    obs::Hub::Uninstall();
    if (recorder_ != nullptr) {
      CheckOk(recorder_->WriteJson(trace_path_), "trace output");
      std::printf("\ntrace written to %s (%zu events, %zu cells)\n",
                  trace_path_.c_str(), recorder_->num_events(),
                  recorder_->num_streams());
    }
    obs::Report report;
    report.SetInfo("driver", driver_);
    report.SetSnapshot(registry_->TakeSnapshot());
    // Slot-time attribution + per-job critical paths for every cell;
    // Resolve() inside LedgerJson asserts the sum-to-total invariant.
    report.AddJsonSection("ledger", book_->LedgerJson());
    report.AddJsonSection("critical_path", book_->CriticalPathJson());
    if (!profile_path_.empty()) {
      // Seal the host profile: stop recording, merge every thread's phase
      // tree, stamp the seal into the session flight ring (detail = stack
      // imbalances, value = profiled host ms).
      prof::Disable();
      prof::ProfReport prof_report = prof::Collect();
      double profiled_ms = 0.0;
      for (const prof::PhaseStat& phase : prof_report.phases) {
        profiled_ms += static_cast<double>(phase.self_ns) / 1e6;
      }
      prof_flight_->Append(0.0, obs::FlightEventKind::kProfSeal, -1, -1,
                           prof_report.imbalances, profiled_ms);
      if (prof_report.imbalances != 0) {
        std::fprintf(stderr,
                     "prof: WARNING: %d timer-stack imbalance(s) detected\n",
                     prof_report.imbalances);
      }
      report.AddJsonSection("prof", prof::ToJson(prof_report));
      std::string collapsed = prof::ToCollapsed(prof_report);
      std::FILE* f = std::fopen(profile_path_.c_str(), "w");
      if (f == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", profile_path_.c_str());
        std::exit(1);
      }
      if (std::fwrite(collapsed.data(), 1, collapsed.size(), f) !=
          collapsed.size()) {
        std::fprintf(stderr, "short write to %s\n", profile_path_.c_str());
        std::exit(1);
      }
      std::fclose(f);
      std::printf("profile (collapsed stacks) written to %s\n",
                  profile_path_.c_str());
    }
    std::printf("\n%s", report.ToText().c_str());
    if (!metrics_path_.empty()) {
      CheckOk(report.WriteJson(metrics_path_), "metrics output");
      std::printf("metrics report written to %s\n", metrics_path_.c_str());
    }
    if (prof_flight_ != nullptr) {
      if (dump_flight_) prof_flight_->DumpText(stdout, "prof/" + driver_);
      obs::UnregisterFlightRecorderForFatalDump(prof_flight_.get());
    }
    if (timelines_ != nullptr) {
      if (dump_flight_) timelines_->DumpFlightRecorders(stdout);
      if (!timeline_path_.empty()) {
        // Standalone file (kept out of the metrics report: timelines are
        // an order of magnitude bigger than the end-of-run aggregates).
        std::string text = "{\"driver\": \"" + driver_ +
                           "\",\n \"timeline\": " + timelines_->ToJson() +
                           "}\n";
        std::FILE* f = std::fopen(timeline_path_.c_str(), "w");
        if (f == nullptr) {
          std::fprintf(stderr, "cannot open %s\n", timeline_path_.c_str());
          std::exit(1);
        }
        if (std::fwrite(text.data(), 1, text.size(), f) != text.size()) {
          std::fprintf(stderr, "short write to %s\n", timeline_path_.c_str());
          std::exit(1);
        }
        std::fclose(f);
        std::printf("timeline written to %s\n", timeline_path_.c_str());
      }
    }
  }

 private:
  std::string driver_;
  std::string trace_path_;
  std::string metrics_path_;
  std::string timeline_path_;
  std::string profile_path_;
  bool dump_flight_ = false;
  std::unique_ptr<obs::MetricsRegistry> registry_;
  std::unique_ptr<obs::TraceRecorder> recorder_;
  std::unique_ptr<obs::LedgerBook> book_;
  std::unique_ptr<obs::TimelineBook> timelines_;
  std::unique_ptr<obs::FlightRecorder> prof_flight_;
  bool installed_ = false;
};

/// Writes the collected cells when --json=FILE was given; dies on IO error.
inline void MaybeWriteJson(const BenchOptions& options,
                           const JsonWriter& writer) {
  if (options.json_path.empty()) return;
  CheckOk(writer.WriteToFile(options.json_path), "json output");
  std::printf("\nper-cell results written to %s\n",
              options.json_path.c_str());
}

}  // namespace dmr::bench

#endif  // DMR_BENCH_BENCH_UTIL_H_
