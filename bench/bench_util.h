#ifndef DMR_BENCH_BENCH_UTIL_H_
#define DMR_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/result.h"
#include "common/status.h"

namespace dmr::bench {

/// Aborts the benchmark with a message when a Status is not OK.
inline void CheckOk(const Status& status, const char* what) {
  if (status.ok()) return;
  std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
  std::exit(1);
}

template <typename T>
T UnwrapOrDie(Result<T> result, const char* what) {
  CheckOk(result.status(), what);
  return std::move(result).ValueUnsafe();
}

/// Prints the standard benchmark header.
inline void PrintHeader(const std::string& title, const std::string& paper_ref,
                        const std::string& expectation) {
  std::printf("==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("Expected shape: %s\n", expectation.c_str());
  std::printf("==============================================================\n\n");
}

}  // namespace dmr::bench

#endif  // DMR_BENCH_BENCH_UTIL_H_
