/// \file
/// Reproduces Table III: the predicate used for each degree of skew. The
/// paper picked one arbitrary LINEITEM column per skew level, all with
/// 0.05 % overall selectivity; skew lives in the *placement* of the
/// matching records (Figure 4), not in the predicate itself. This harness
/// prints the suite and then *verifies the selectivity empirically* by
/// materializing a small dataset per predicate and counting matches.
/// The per-predicate cells fan out across hardware threads.

#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel.h"
#include "expr/expression.h"
#include "tpch/dataset_catalog.h"
#include "tpch/generator.h"
#include "tpch/lineitem.h"
#include "tpch/predicates.h"

namespace {

struct PredicateCell {
  uint64_t matches = 0;
  uint64_t total = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "table3_predicates");
  bench::PrintHeader(
      "Table III: predicates and the associated skew",
      "Grover & Carey, ICDE 2012, Table III",
      "one predicate per skew degree (z = 0, 1, 2), each with 0.05% "
      "selectivity imposed by the generator");

  const auto& suite = tpch::PredicateSuite();
  exec::ThreadPool pool = options.MakePool();
  auto cells = bench::UnwrapOrDie(
      exec::ParallelMap<PredicateCell>(
          &pool, suite.size(),
          [&](size_t i) -> Result<PredicateCell> {
            const auto& pred = suite[i];
            // Materialize 200k rows at the paper's selectivity and count
            // matches with the real evaluator.
            tpch::SkewSpec spec;
            spec.num_partitions = 8;
            spec.records_per_partition = 25000;
            spec.selectivity = tpch::kPaperSelectivity;
            spec.zipf_z = pred.zipf_z;
            spec.seed = 20120402;
            DMR_ASSIGN_OR_RETURN(auto dataset,
                                 tpch::MaterializeDataset(spec, pred));
            PredicateCell cell;
            for (const auto& partition : dataset.partitions) {
              for (const auto& row : partition) {
                DMR_ASSIGN_OR_RETURN(
                    bool matched,
                    expr::EvaluatePredicate(*pred.predicate,
                                            tpch::LineItemSchema(),
                                            tpch::ToTuple(row)));
                if (matched) ++cell.matches;
                ++cell.total;
              }
            }
            return cell;
          }),
      "predicate verification");

  bench::JsonWriter json;
  TablePrinter table({"skew z", "predicate", "name",
                      "empirical selectivity (%)"});
  for (size_t i = 0; i < suite.size(); ++i) {
    const auto& pred = suite[i];
    double selectivity = 100.0 * static_cast<double>(cells[i].matches) /
                         static_cast<double>(cells[i].total);
    char sel[32];
    std::snprintf(sel, sizeof(sel), "%.4f", selectivity);
    table.AddRow({std::to_string(static_cast<int>(pred.zipf_z)), pred.sql,
                  pred.name, sel});
    json.AddCell()
        .Set("table", "table3")
        .Set("z", pred.zipf_z)
        .Set("predicate", pred.sql)
        .Set("name", pred.name)
        .Set("matches", cells[i].matches)
        .Set("rows", cells[i].total)
        .Set("empirical_selectivity_pct", selectivity);
  }
  table.Print();
  std::printf("\n(paper fixes 0.0500%% for every predicate; the empirical "
              "counts above are exact by construction)\n");
  bench::MaybeWriteJson(options, json);
  return 0;
}
