/// \file
/// Reproduces Table III: the predicate used for each degree of skew. The
/// paper picked one arbitrary LINEITEM column per skew level, all with
/// 0.05 % overall selectivity; skew lives in the *placement* of the
/// matching records (Figure 4), not in the predicate itself. This harness
/// prints the suite and then *verifies the selectivity empirically* by
/// materializing a small dataset per predicate and counting matches.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "expr/expression.h"
#include "tpch/dataset_catalog.h"
#include "tpch/generator.h"
#include "tpch/lineitem.h"
#include "tpch/predicates.h"

int main() {
  using namespace dmr;
  bench::PrintHeader(
      "Table III: predicates and the associated skew",
      "Grover & Carey, ICDE 2012, Table III",
      "one predicate per skew degree (z = 0, 1, 2), each with 0.05% "
      "selectivity imposed by the generator");

  TablePrinter table({"skew z", "predicate", "name",
                      "empirical selectivity (%)"});
  for (const auto& pred : tpch::PredicateSuite()) {
    // Materialize 200k rows at the paper's selectivity and count matches
    // with the real evaluator.
    tpch::SkewSpec spec;
    spec.num_partitions = 8;
    spec.records_per_partition = 25000;
    spec.selectivity = tpch::kPaperSelectivity;
    spec.zipf_z = pred.zipf_z;
    spec.seed = 20120402;
    auto dataset =
        bench::UnwrapOrDie(tpch::MaterializeDataset(spec, pred), "dataset");
    uint64_t matches = 0;
    uint64_t total = 0;
    for (const auto& partition : dataset.partitions) {
      for (const auto& row : partition) {
        auto ok = expr::EvaluatePredicate(*pred.predicate,
                                          tpch::LineItemSchema(),
                                          tpch::ToTuple(row));
        bench::CheckOk(ok.status(), "predicate evaluation");
        if (*ok) ++matches;
        ++total;
      }
    }
    char sel[32];
    std::snprintf(sel, sizeof(sel), "%.4f",
                  100.0 * static_cast<double>(matches) /
                      static_cast<double>(total));
    table.AddRow({std::to_string(static_cast<int>(pred.zipf_z)), pred.sql,
                  pred.name, sel});
  }
  table.Print();
  std::printf("\n(paper fixes 0.0500%% for every predicate; the empirical "
              "counts above are exact by construction)\n");
  return 0;
}
