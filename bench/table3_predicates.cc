/// \file
/// Reproduces Table III: the predicate used for each degree of skew. The
/// paper picked one arbitrary LINEITEM column per skew level, all with
/// 0.05 % overall selectivity; skew lives in the *placement* of the
/// matching records (Figure 4), not in the predicate itself. This harness
/// prints the suite and then *verifies the selectivity empirically* by
/// materializing a small dataset per predicate and counting matches.
/// The per-predicate cells fan out across hardware threads.
///
/// Usage: table3_predicates [interpreted|vectorized]
/// The engine defaults to vectorized; both engines produce byte-identical
/// counts (and therefore byte-identical --json output), which the tier-1
/// bench-smoke stage asserts by diffing the two files.

#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel.h"
#include "exec/vectorized.h"
#include "expr/expression.h"
#include "tpch/dataset_catalog.h"
#include "tpch/generator.h"
#include "tpch/lineitem.h"
#include "tpch/predicates.h"

namespace {

struct PredicateCell {
  uint64_t matches = 0;
  uint64_t total = 0;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  exec::Engine engine = exec::Engine::kVectorized;
  if (argc > 1) {
    if (std::strcmp(argv[1], "interpreted") == 0) {
      engine = exec::Engine::kInterpreted;
    } else if (std::strcmp(argv[1], "vectorized") == 0) {
      engine = exec::Engine::kVectorized;
    } else {
      std::fprintf(stderr, "unknown engine '%s' (want interpreted|vectorized)\n",
                   argv[1]);
      return 2;
    }
  }
  bench::ObsSession obs_session(options, "table3_predicates");
  bench::PrintHeader(
      "Table III: predicates and the associated skew",
      "Grover & Carey, ICDE 2012, Table III",
      "one predicate per skew degree (z = 0, 1, 2), each with 0.05% "
      "selectivity imposed by the generator");
  std::printf("predicate engine: %s\n\n", exec::EngineToString(engine));

  const auto& suite = tpch::PredicateSuite();
  exec::ThreadPool pool = options.MakePool();
  auto cells = bench::UnwrapOrDie(
      exec::ParallelMap<PredicateCell>(
          &pool, suite.size(),
          [&](size_t i) -> Result<PredicateCell> {
            const auto& pred = suite[i];
            // Materialize 200k rows at the paper's selectivity and count
            // matches with the selected engine. The memoized dataset cache
            // keeps repeated runs (and other drivers at the same z) from
            // regenerating.
            tpch::SkewSpec spec;
            spec.num_partitions = 8;
            spec.records_per_partition = 25000;
            spec.selectivity = tpch::kPaperSelectivity;
            spec.zipf_z = pred.zipf_z;
            spec.seed = 20120402;
            DMR_ASSIGN_OR_RETURN(auto dataset,
                                 tpch::MaterializeDatasetShared(spec, pred));
            PredicateCell cell;
            if (engine == exec::Engine::kVectorized) {
              DMR_ASSIGN_OR_RETURN(
                  exec::PredicateProgram program,
                  exec::PredicateProgram::Compile(*pred.predicate));
              for (const auto& partition : dataset->columnar) {
                DMR_ASSIGN_OR_RETURN(uint64_t matches,
                                     exec::CountMatches(program, partition));
                cell.matches += matches;
                cell.total += partition.num_rows();
              }
            } else {
              for (const auto& partition : dataset->partitions) {
                for (const auto& row : partition) {
                  DMR_ASSIGN_OR_RETURN(
                      bool matched,
                      expr::EvaluatePredicate(*pred.predicate,
                                              tpch::LineItemSchema(),
                                              tpch::ToTuple(row)));
                  if (matched) ++cell.matches;
                  ++cell.total;
                }
              }
            }
            return cell;
          }),
      "predicate verification");

  bench::JsonWriter json;
  TablePrinter table({"skew z", "predicate", "name",
                      "empirical selectivity (%)"});
  for (size_t i = 0; i < suite.size(); ++i) {
    const auto& pred = suite[i];
    double selectivity = 100.0 * static_cast<double>(cells[i].matches) /
                         static_cast<double>(cells[i].total);
    char sel[32];
    std::snprintf(sel, sizeof(sel), "%.4f", selectivity);
    table.AddRow({std::to_string(static_cast<int>(pred.zipf_z)), pred.sql,
                  pred.name, sel});
    json.AddCell()
        .Set("table", "table3")
        .Set("z", pred.zipf_z)
        .Set("predicate", pred.sql)
        .Set("name", pred.name)
        .Set("matches", cells[i].matches)
        .Set("rows", cells[i].total)
        .Set("empirical_selectivity_pct", selectivity);
  }
  table.Print();
  std::printf("\n(paper fixes 0.0500%% for every predicate; the empirical "
              "counts above are exact by construction)\n");
  bench::MaybeWriteJson(options, json);
  return 0;
}
