/// \file
/// Reproduces Figure 8: the heterogeneous workload of Figure 7 re-run under
/// the Fair Scheduler (with delay scheduling). The paper's finding: the same
/// policy ordering holds, but overall throughput drops relative to FIFO
/// because delay scheduling trades slot occupancy for locality.
/// The policy x fraction grid fans out across hardware threads.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/hetero_workload.h"
#include "common/table_printer.h"
#include "exec/parallel.h"

namespace dmr {
namespace {

void RunFigure(const bench::BenchOptions& options) {
  const std::vector<std::string> policies = {"C", "LA", "MA", "HA", "Hadoop"};
  const std::vector<int> sampling_counts = {2, 4, 6, 8};

  exec::ThreadPool pool = options.MakePool();
  auto grid = bench::UnwrapOrDie(
      exec::ParallelGrid<bench::HeteroResult>(
          &pool, policies.size(), sampling_counts.size(),
          [&](size_t p, size_t c) {
            return bench::RunHeteroWorkload(testbed::SchedulerKind::kFair,
                                            policies[p], sampling_counts[c]);
          }),
      "figure 8 grid");

  bench::JsonWriter json;
  std::vector<std::vector<double>> sampling_rows(policies.size());
  std::vector<std::vector<double>> non_sampling_rows(policies.size());
  for (size_t p = 0; p < policies.size(); ++p) {
    for (size_t c = 0; c < sampling_counts.size(); ++c) {
      const bench::HeteroResult& r = grid[p][c];
      sampling_rows[p].push_back(r.sampling_throughput);
      non_sampling_rows[p].push_back(r.non_sampling_throughput);
      json.AddCell()
          .Set("figure", "fig8")
          .Set("policy", policies[p])
          .Set("sampling_fraction", sampling_counts[c] / 10.0)
          .Set("sampling_jobs_per_hour", r.sampling_throughput)
          .Set("non_sampling_jobs_per_hour", r.non_sampling_throughput);
    }
  }

  std::printf("(a) Sampling class throughput (jobs/hour)\n");
  TablePrinter sampling_table(
      {"policy", "frac=0.2", "frac=0.4", "frac=0.6", "frac=0.8"});
  for (size_t p = 0; p < policies.size(); ++p) {
    sampling_table.AddNumericRow(policies[p], sampling_rows[p], 1);
  }
  sampling_table.Print();

  std::printf("\n(b) Non-Sampling class throughput (jobs/hour)\n");
  TablePrinter ns_table(
      {"policy", "frac=0.2", "frac=0.4", "frac=0.6", "frac=0.8"});
  for (size_t p = 0; p < policies.size(); ++p) {
    ns_table.AddNumericRow(policies[p], non_sampling_rows[p], 1);
  }
  ns_table.Print();
  bench::MaybeWriteJson(options, json);
}

}  // namespace
}  // namespace dmr

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "fig8_hetero_fair");
  bench::PrintHeader(
      "Figure 8: heterogeneous workload, Fair Scheduler",
      "Grover & Carey, ICDE 2012, Fig. 8 (a), (b)",
      "Same ordering as Figure 7 (conservative sampling policies lift both "
      "classes; Hadoop policy worst), with lower absolute throughput than "
      "the FIFO scheduler due to delay scheduling");
  RunFigure(options);
  return 0;
}
