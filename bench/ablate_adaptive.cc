/// \file
/// Extension study: the paper's future-work proposal (Section VII) — a job
/// that re-tunes its policy at runtime from cluster load and observed data
/// characteristics — against the static Table I policies. Two settings:
/// single user on an idle cluster (aggression pays) and 10 concurrent users
/// (conservatism pays). A good adaptive provider should be near the best
/// static policy in *both*.

#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/adaptive_input_provider.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"
#include "workload/workload_driver.h"

namespace dmr {
namespace {

Result<mapred::JobSubmission> MakeJob(const testbed::Dataset& dataset,
                                      const std::string& provider_kind,
                                      const std::string& user, uint64_t seed) {
  auto policy = dynamic::PolicyTable::BuiltIn().Find(
      provider_kind == "Adaptive" ? "LA" : provider_kind);
  DMR_RETURN_NOT_OK(policy.status());
  sampling::SamplingJobOptions options;
  options.job_name = "adapt-" + provider_kind;
  options.user = user;
  options.sample_size = tpch::kPaperSampleSize;
  options.seed = seed;
  DMR_ASSIGN_OR_RETURN(
      mapred::JobSubmission submission,
      sampling::MakeSamplingJob(dataset.file, dataset.matching_per_partition,
                                *policy, options));
  if (provider_kind == "Adaptive") {
    submission.input_provider =
        std::make_shared<dynamic::AdaptiveInputProvider>(seed);
  }
  return submission;
}

double SingleUserResponse(const std::string& kind, double z) {
  double sum = 0;
  constexpr int kRepeats = 5;
  for (int run = 0; run < kRepeats; ++run) {
    testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
    auto dataset = bench::UnwrapOrDie(
        testbed::MakeLineItemDataset(&bed.fs(), 40, z, 6100 + run),
        "dataset");
    auto submission = bench::UnwrapOrDie(
        MakeJob(dataset, kind, "solo", 900 + run), "job");
    auto stats = bench::UnwrapOrDie(
        bed.RunJobToCompletion(std::move(submission)), "run");
    sum += stats.response_time();
  }
  return sum / kRepeats;
}

double MultiUserThroughput(const std::string& kind, double z) {
  constexpr int kUsers = 10;
  testbed::Testbed bed(cluster::ClusterConfig::MultiUser());
  std::vector<testbed::Dataset> datasets;
  for (int u = 0; u < kUsers; ++u) {
    datasets.push_back(bench::UnwrapOrDie(
        testbed::MakeLineItemDataset(&bed.fs(), 100, z, 6200 + 31 * u,
                                     "u" + std::to_string(u)),
        "dataset"));
  }
  workload::WorkloadDriver driver(&bed.client());
  for (int u = 0; u < kUsers; ++u) {
    workload::UserSpec user;
    user.name = "user" + std::to_string(u);
    user.job_class = "Sampling";
    const testbed::Dataset* ds = &datasets[u];
    user.make_job = [ds, kind, u](int it) {
      return MakeJob(*ds, kind, "user" + std::to_string(u),
                     7000 + 97ULL * u + 13ULL * it);
    };
    driver.AddUser(std::move(user));
  }
  auto report = bench::UnwrapOrDie(
      driver.Run({.duration = 4.0 * 3600, .warmup = 1800.0}), "workload");
  return report.For("Sampling").throughput_jobs_per_hour;
}

}  // namespace
}  // namespace dmr

int main() {
  using namespace dmr;
  bench::PrintHeader(
      "Extension: runtime-adaptive policy vs static Table I policies",
      "Grover & Carey, ICDE 2012, Section VII (future work)",
      "the adaptive provider should track HA on the idle cluster and "
      "LA/C under contention, without being told which world it is in");

  const std::vector<std::string> kinds = {"Adaptive", "HA", "MA", "LA", "C"};

  std::printf("Single user, idle cluster: response time (s)\n");
  TablePrinter single({"provider", "uniform (z=0)", "high skew (z=2)"});
  for (const auto& kind : kinds) {
    single.AddNumericRow(kind, {SingleUserResponse(kind, 0.0),
                                SingleUserResponse(kind, 2.0)}, 1);
  }
  single.Print();

  std::printf("\n10 concurrent users: throughput (jobs/hour)\n");
  TablePrinter multi({"provider", "uniform (z=0)", "high skew (z=2)"});
  for (const auto& kind : kinds) {
    multi.AddNumericRow(kind, {MultiUserThroughput(kind, 0.0),
                               MultiUserThroughput(kind, 2.0)}, 1);
  }
  multi.Print();
  return 0;
}
