/// \file
/// Extension study: the paper's future-work proposal (Section VII) — a job
/// that re-tunes its policy at runtime from cluster load and observed data
/// characteristics — against the static Table I policies. Two settings:
/// single user on an idle cluster (aggression pays) and 10 concurrent users
/// (conservatism pays). A good adaptive provider should be near the best
/// static policy in *both*. Both provider x skew grids fan out across
/// hardware threads.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/adaptive_input_provider.h"
#include "exec/parallel.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"
#include "workload/workload_driver.h"

namespace dmr {
namespace {

Result<mapred::JobSubmission> MakeJob(const testbed::Dataset& dataset,
                                      const std::string& provider_kind,
                                      const std::string& user, uint64_t seed) {
  auto policy = dynamic::PolicyTable::BuiltIn().Find(
      provider_kind == "Adaptive" ? "LA" : provider_kind);
  DMR_RETURN_NOT_OK(policy.status());
  sampling::SamplingJobOptions options;
  options.job_name = "adapt-" + provider_kind;
  options.user = user;
  options.sample_size = tpch::kPaperSampleSize;
  options.seed = seed;
  DMR_ASSIGN_OR_RETURN(
      mapred::JobSubmission submission,
      sampling::MakeSamplingJob(dataset.file, dataset.matching_per_partition,
                                *policy, options));
  if (provider_kind == "Adaptive") {
    submission.input_provider =
        std::make_shared<dynamic::AdaptiveInputProvider>(seed);
  }
  return submission;
}

Result<double> SingleUserResponse(const std::string& kind, double z) {
  double sum = 0;
  constexpr int kRepeats = 5;
  for (int run = 0; run < kRepeats; ++run) {
    testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
    bed.Annotate("cell", "adaptive-single-s40");
    bed.Annotate("policy", kind);
    bed.Annotate("z", z);
    bed.Annotate("repeat", static_cast<int64_t>(run));
    DMR_ASSIGN_OR_RETURN(
        testbed::Dataset dataset,
        testbed::MakeLineItemDataset(&bed.fs(), 40, z, 6100 + run));
    DMR_ASSIGN_OR_RETURN(mapred::JobSubmission submission,
                         MakeJob(dataset, kind, "solo", 900 + run));
    DMR_ASSIGN_OR_RETURN(mapred::JobStats stats,
                         bed.RunJobToCompletion(std::move(submission)));
    sum += stats.response_time();
  }
  return sum / kRepeats;
}

Result<double> MultiUserThroughput(const std::string& kind, double z) {
  constexpr int kUsers = 10;
  testbed::Testbed bed(cluster::ClusterConfig::MultiUser());
  bed.Annotate("cell", "adaptive-multi-s100");
  bed.Annotate("policy", kind);
  bed.Annotate("z", z);
  std::vector<testbed::Dataset> datasets;
  for (int u = 0; u < kUsers; ++u) {
    DMR_ASSIGN_OR_RETURN(
        testbed::Dataset dataset,
        testbed::MakeLineItemDataset(&bed.fs(), 100, z, 6200 + 31 * u,
                                     "u" + std::to_string(u)));
    datasets.push_back(std::move(dataset));
  }
  workload::WorkloadDriver driver(&bed.client());
  for (int u = 0; u < kUsers; ++u) {
    workload::UserSpec user;
    user.name = "user" + std::to_string(u);
    user.job_class = "Sampling";
    const testbed::Dataset* ds = &datasets[u];
    user.make_job = [ds, kind, u](int it) {
      return MakeJob(*ds, kind, "user" + std::to_string(u),
                     7000 + 97ULL * u + 13ULL * it);
    };
    driver.AddUser(std::move(user));
  }
  DMR_ASSIGN_OR_RETURN(
      workload::WorkloadReport report,
      driver.Run({.duration = 4.0 * 3600, .warmup = 1800.0}));
  return report.For("Sampling").throughput_jobs_per_hour;
}

}  // namespace
}  // namespace dmr

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "ablate_adaptive");
  bench::PrintHeader(
      "Extension: runtime-adaptive policy vs static Table I policies",
      "Grover & Carey, ICDE 2012, Section VII (future work)",
      "the adaptive provider should track HA on the idle cluster and "
      "LA/C under contention, without being told which world it is in");

  const std::vector<std::string> kinds = {"Adaptive", "HA", "MA", "LA", "C"};
  const std::vector<double> zs = {0.0, 2.0};

  exec::ThreadPool pool = options.MakePool();
  auto single = bench::UnwrapOrDie(
      exec::ParallelGrid<double>(
          &pool, kinds.size(), zs.size(),
          [&](size_t k, size_t z) {
            return SingleUserResponse(kinds[k], zs[z]);
          }),
      "single-user grid");
  auto multi = bench::UnwrapOrDie(
      exec::ParallelGrid<double>(
          &pool, kinds.size(), zs.size(),
          [&](size_t k, size_t z) {
            return MultiUserThroughput(kinds[k], zs[z]);
          }),
      "multi-user grid");

  bench::JsonWriter json;
  std::printf("Single user, idle cluster: response time (s)\n");
  TablePrinter single_table({"provider", "uniform (z=0)", "high skew (z=2)"});
  for (size_t k = 0; k < kinds.size(); ++k) {
    single_table.AddNumericRow(kinds[k], {single[k][0], single[k][1]}, 1);
    for (size_t z = 0; z < zs.size(); ++z) {
      json.AddCell()
          .Set("study", "ablate_adaptive")
          .Set("setting", "single_user")
          .Set("provider", kinds[k])
          .Set("z", zs[z])
          .Set("response_time_s", single[k][z]);
    }
  }
  single_table.Print();

  std::printf("\n10 concurrent users: throughput (jobs/hour)\n");
  TablePrinter multi_table({"provider", "uniform (z=0)", "high skew (z=2)"});
  for (size_t k = 0; k < kinds.size(); ++k) {
    multi_table.AddNumericRow(kinds[k], {multi[k][0], multi[k][1]}, 1);
    for (size_t z = 0; z < zs.size(); ++z) {
      json.AddCell()
          .Set("study", "ablate_adaptive")
          .Set("setting", "multi_user")
          .Set("provider", kinds[k])
          .Set("z", zs[z])
          .Set("throughput_jobs_per_hour", multi[k][z]);
    }
  }
  multi_table.Print();
  bench::MaybeWriteJson(options, json);
  return 0;
}
