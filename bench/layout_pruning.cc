/// \file
/// Measures the adaptive-layout subsystem (DESIGN.md §16) end to end and
/// records BENCH_layout_pruning.json (via --json=FILE):
///
///  * Host level (the real record engines): for z = 0/1/2 and two
///    selectivities (the paper's 0.05% and a 10x-lower 0.005%) a LIMIT-k
///    sampling query runs through `LocalRuntime` unpruned (PR 3's plain
///    vectorized path), pruned by the partition zone maps (first query:
///    piggybacked per-batch indexes are registered as a side effect), and
///    pruned again (repeated query: the registered indexes narrow the scan
///    to qualifying batches). The driver records rows-skipped %, the
///    first-vs-repeated wall-time speedups over the unpruned path, and the
///    match counts + an FNV digest of the sampled rows — which must be
///    byte-identical across all variants (pruning is a physical-cost
///    optimization only; a run whose counters or sample move aborts). The
///    low-selectivity repeated cells are the ones expected to clear 5x:
///    batch skipping scales with the fraction of 1024-row batches that are
///    match-free.
///
///  * Simulated cluster (the paper's testbed): the same query shape runs
///    as a dynamic sampling job first-query style (row replicas, no
///    stats), and repeated-query style: the piggybacked index the first
///    scan left behind makes every replica effectively indexed, and each
///    split's scan fraction is the expected fraction of its 1024-row
///    batches containing at least one match, 1-(1-1024/n)^m (0 for a
///    provably match-free split, which costs only a stats read, per the
///    §16 cost model). The repeated run is also tried with the provider's
///    cheapest-first hint grab, at the base tie order and 2 shuffled tie
///    seeds. Simulated response times are virtual-time deterministic, so
///    every seed must reproduce them exactly.
///
/// The simulated cells are annotated (cell/policy/z) for --metrics, which
/// feeds the `dmr-analyze --baseline` band in tier1.sh
/// (configs/baselines/layout_pruning.json).
///
/// Usage: layout_pruning [--threads=N] [--reps=N] [--json=FILE]
///                       [--metrics=FILE]

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dfs/file_system.h"
#include "dynamic/growth_policy.h"
#include "dynamic/sampling_input_provider.h"
#include "exec/layout_catalog.h"
#include "exec/local_runtime.h"
#include "exec/vectorized.h"
#include "hive/compiler.h"
#include "sampling/sampling_job.h"
#include "sim/simulation.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"
#include "tpch/generator.h"
#include "tpch/lineitem.h"
#include "tpch/predicates.h"

namespace {

using namespace dmr;

constexpr uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr uint64_t kFnvPrime = 1099511628211ULL;

uint64_t Mix(uint64_t h, uint64_t v) { return (h ^ v) * kFnvPrime; }

/// Order- and value-sensitive digest of the sampled rows: the byte-identity
/// contract covers the exact sample, not just its size.
uint64_t RowsDigest(const std::vector<expr::Tuple>& rows) {
  uint64_t h = kFnvOffset;
  for (const expr::Tuple& row : rows) {
    for (const expr::Value& value : row) {
      h = Mix(h, static_cast<uint64_t>(value.index()));
      if (const auto* i = std::get_if<int64_t>(&value)) {
        h = Mix(h, static_cast<uint64_t>(*i));
      } else if (const auto* d = std::get_if<double>(&value)) {
        h = Mix(h, std::bit_cast<uint64_t>(*d));
      } else if (const auto* s = std::get_if<std::string>(&value)) {
        for (char c : *s) h = Mix(h, static_cast<unsigned char>(c));
      } else if (const auto* b = std::get_if<bool>(&value)) {
        h = Mix(h, *b ? 1u : 0u);
      }
    }
    h = Mix(h, 0x2C);  // row separator
  }
  return h;
}

// The host-level cells measure real engine wall time — that is the point;
// timings feed the printed table and JSON only, never a digest.
// dmr-lint: allow(wall-clock) measuring real engine response time
double Seconds(std::chrono::steady_clock::time_point start) {
  // dmr-lint: allow(wall-clock) see above
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// The z -> suite predicate SQL used throughout the repo's tests.
const char* SqlForZ(double z) {
  if (z == 0.0) return "SELECT * FROM lineitem WHERE QUANTITY > 50 LIMIT 100";
  if (z == 1.0) {
    return "SELECT * FROM lineitem WHERE DISCOUNT > 0.10 LIMIT 100";
  }
  return "SELECT * FROM lineitem WHERE TAX > 0.08 LIMIT 100";
}

struct HostRun {
  double wall_s = 0.0;
  exec::LocalRunResult result;
  uint64_t digest = 0;
};

Result<HostRun> RunHost(const hive::CompiledQuery& query,
                        const tpch::MaterializedDataset& dataset,
                        const dynamic::GrowthPolicy& policy,
                        const exec::LocalRunOptions& options) {
  exec::LocalRuntime runtime(options);
  // dmr-lint: allow(wall-clock) real response-time measurement
  auto start = std::chrono::steady_clock::now();
  DMR_ASSIGN_OR_RETURN(exec::LocalRunResult result,
                       runtime.Execute(query, dataset, policy));
  HostRun run;
  run.wall_s = Seconds(start);
  run.digest = RowsDigest(result.rows);
  run.result = std::move(result);
  return run;
}

/// One simulated sampling job. The "unpruned" variant is the first query:
/// row replicas, no stats, the paper's original cost model. The repeated
/// variants model the state after a first scan piggybacked its per-batch
/// index: replicas behave as indexed, a zero-matching split is provably
/// match-free (exactly what the zone maps prove for the boundary-strict
/// suite predicates — the host cells above check that equivalence on real
/// rows) and costs only the stats read, and a matching split scans only
/// the expected fraction of its 1024-row batches that contain a match.
struct SimCell {
  double response_time = 0.0;
  int splits_processed = 0;
  int64_t pruned_splits = 0;
};

Result<SimCell> RunSim(double z, const char* variant,
                       const std::string& seed_label) {
  testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
  bed.Annotate("cell", "layout-s10");
  bed.Annotate("policy", variant);
  bed.Annotate("z", z);
  bed.Annotate("seed", seed_label);
  DMR_ASSIGN_OR_RETURN(
      testbed::Dataset dataset,
      testbed::MakeLineItemDataset(&bed.fs(), /*scale=*/10, z, /*seed=*/4242));
  DMR_ASSIGN_OR_RETURN(dynamic::GrowthPolicy policy,
                       dynamic::PolicyTable::BuiltIn().Find("MA"));

  sampling::SamplingJobOptions options;
  options.job_name = std::string("layout-") + variant;
  options.sample_size = tpch::kPaperSampleSize;
  options.seed = 20120402;
  options.predicate_sql = "selectivity 0.05%, z=" + std::to_string(z);
  DMR_ASSIGN_OR_RETURN(
      mapred::JobSubmission submission,
      sampling::MakeSamplingJob(dataset.file, dataset.matching_per_partition,
                                policy, options));

  const bool repeated = std::strcmp(variant, "unpruned") != 0;
  const bool hints = std::strcmp(variant, "repeated+hints") == 0;
  if (repeated) {
    for (mapred::InputSplit& split : submission.input) {
      // The first scan's piggybacked index is available at every replica.
      for (mapred::SplitLocation& loc : split.locations) {
        loc.layout = dfs::ReplicaLayout::kIndexed;
      }
      if (split.num_matching == 0) {
        split.scan_fraction = 0.0;
        split.hint_selectivity = 0.0;
      } else {
        // Expected fraction of the split's 1024-row batches containing at
        // least one of its m uniformly placed matches among n rows — the
        // portion an index-guided repeated scan must still read.
        const double n = static_cast<double>(split.num_records);
        const double m = static_cast<double>(split.num_matching);
        const double batch = static_cast<double>(exec::kVectorBatchRows);
        split.scan_fraction =
            std::clamp(1.0 - std::pow(1.0 - batch / n, m), 0.0, 1.0);
        split.hint_selectivity = m / n;
      }
    }
  }
  if (hints) {
    dynamic::SamplingInputProvider::Options popts;
    popts.use_split_hints = true;
    submission.input_provider =
        std::make_shared<dynamic::SamplingInputProvider>(policy, options.seed,
                                                         popts);
  }
  DMR_ASSIGN_OR_RETURN(mapred::JobStats stats,
                       bed.RunJobToCompletion(std::move(submission)));
  SimCell cell;
  cell.response_time = stats.response_time();
  cell.splits_processed = stats.splits_processed;
  cell.pruned_splits = bed.tracker().total_pruned_splits();
  return cell;
}

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

}  // namespace

int main(int argc, char** argv) {
  // Driver flag, stripped before the shared parser.
  int reps = 7;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--reps=", 7) == 0) {
      reps = std::atoi(arg + 7);
      if (reps < 1 || reps > 100) {
        std::fprintf(stderr, "bad --reps value: %s (want 1..100)\n", arg + 7);
        return 2;
      }
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "layout_pruning");
  bench::PrintHeader(
      "Adaptive layout: zone-map pruning + piggybacked indexing",
      "DESIGN.md §16 (Richter et al. piggybacked indexing over the paper's "
      "sampling scans)",
      "identical match counts and sample digests pruned vs unpruned; "
      "repeated low-selectivity query >= 5x faster than the unpruned "
      "vectorized path; simulated response times identical across tie "
      "seeds");

  const std::vector<double> zs = {0.0, 1.0, 2.0};
  // The paper's selectivity plus a 10x-lower one: with ~1 match per
  // partition most 1024-row batches are provably match-free, which is
  // where index-guided skipping pays off hardest.
  const std::vector<double> sels = {tpch::kPaperSelectivity,
                                    tpch::kPaperSelectivity / 10.0};
  const int host_threads = options.threads > 0 ? options.threads : 4;

  hive::HiveCompiler compiler(&tpch::LineItemSchema(),
                              &dynamic::PolicyTable::BuiltIn());
  bench::JsonWriter json;
  TablePrinter table({"z", "sel %", "variant", "wall ms", "rows phys",
                      "skipped %", "idx build/hit", "matches",
                      "sample digest"});
  bool ok = true;
  double low_sel_best_speedup = 0.0;

  struct Variant {
    const char* name;
    bool pruned;
    bool repeated;
  };
  const std::vector<Variant> variants = {
      {"unpruned-first", false, false},
      {"unpruned-repeated", false, true},
      {"pruned-first", true, false},
      {"pruned-repeated", true, true},
  };

  for (double z : zs) {
  for (double sel : sels) {
    tpch::SkewSpec spec;
    spec.num_partitions = 16;
    spec.records_per_partition = 50000;
    spec.selectivity = sel;
    spec.zipf_z = z;
    spec.seed = 20120402;
    auto pred = bench::UnwrapOrDie(tpch::PredicateForSkew(z), "predicate");
    auto dataset = bench::UnwrapOrDie(tpch::MaterializeDatasetShared(spec,
                                                                     pred),
                                      "dataset");
    auto compiled = compiler.Process(SqlForZ(z));
    bench::CheckOk(compiled.status(), "compile");
    const hive::CompiledQuery& query = *compiled->query;
    auto policy = bench::UnwrapOrDie(
        dynamic::PolicyTable::BuiltIn().Find("LA"), "policy");

    // reps repetitions of the 4-variant cycle; each pruned cycle starts
    // from a fresh catalog so "first" really is the index-building scan.
    std::vector<std::vector<double>> walls(variants.size());
    std::optional<HostRun> reference;
    std::vector<HostRun> last(variants.size());
    for (int rep = 0; rep < reps; ++rep) {
      exec::LayoutCatalog catalog;
      for (size_t v = 0; v < variants.size(); ++v) {
        exec::LocalRunOptions opts;
        opts.num_threads = host_threads;
        opts.engine = exec::Engine::kVectorized;
        opts.zone_map_pruning = variants[v].pruned;
        opts.layout_catalog = variants[v].pruned ? &catalog : nullptr;
        HostRun run =
            bench::UnwrapOrDie(RunHost(query, *dataset, policy, opts),
                               "host run");
        walls[v].push_back(run.wall_s);
        if (!reference.has_value()) reference = run;
        // The byte-identity contract: every variant, every repetition.
        if (run.digest != reference->digest ||
            run.result.candidate_records !=
                reference->result.candidate_records ||
            run.result.records_scanned != reference->result.records_scanned ||
            run.result.rows.size() != reference->result.rows.size()) {
          std::fprintf(stderr,
                       "FAIL: z=%g sel=%g %s diverged from the unpruned "
                       "oracle "
                       "(digest %016llx vs %016llx, matches %llu vs %llu)\n",
                       z, sel, variants[v].name,
                       static_cast<unsigned long long>(run.digest),
                       static_cast<unsigned long long>(reference->digest),
                       static_cast<unsigned long long>(
                           run.result.candidate_records),
                       static_cast<unsigned long long>(
                           reference->result.candidate_records));
          ok = false;
        }
        last[v] = std::move(run);
      }
    }

    const double unpruned_ms = Median(walls[0]) * 1000.0;
    for (size_t v = 0; v < variants.size(); ++v) {
      const HostRun& run = last[v];
      const double wall_ms = Median(walls[v]) * 1000.0;
      const double skipped_pct =
          run.result.records_scanned > 0
              ? 100.0 *
                    static_cast<double>(run.result.records_scanned -
                                        run.result.rows_physically_scanned) /
                    static_cast<double>(run.result.records_scanned)
              : 0.0;
      const double speedup = wall_ms > 0.0 ? unpruned_ms / wall_ms : 0.0;
      if (sel < tpch::kPaperSelectivity && variants[v].pruned &&
          variants[v].repeated) {
        low_sel_best_speedup = std::max(low_sel_best_speedup, speedup);
      }
      char wall_buf[32], sel_buf[32], skip_buf[32], idx_buf[32],
          digest_buf[32];
      std::snprintf(wall_buf, sizeof(wall_buf), "%.3f", wall_ms);
      std::snprintf(sel_buf, sizeof(sel_buf), "%.3f", sel * 100.0);
      std::snprintf(skip_buf, sizeof(skip_buf), "%.1f", skipped_pct);
      std::snprintf(idx_buf, sizeof(idx_buf), "%llu/%llu",
                    static_cast<unsigned long long>(run.result.index_builds),
                    static_cast<unsigned long long>(run.result.index_hits));
      std::snprintf(digest_buf, sizeof(digest_buf), "%016llx",
                    static_cast<unsigned long long>(run.digest));
      table.AddRow({std::to_string(static_cast<int>(z)), sel_buf,
                    variants[v].name, wall_buf,
                    std::to_string(run.result.rows_physically_scanned),
                    skip_buf, idx_buf,
                    std::to_string(run.result.candidate_records),
                    digest_buf});
      json.AddCell()
          .Set("bench", "layout_pruning")
          .Set("z", z)
          .Set("selectivity", sel)
          .Set("variant", variants[v].name)
          .Set("wall_ms", wall_ms)
          .Set("speedup_vs_unpruned", speedup)
          .Set("records_scanned", run.result.records_scanned)
          .Set("rows_physically_scanned",
               run.result.rows_physically_scanned)
          .Set("rows_skipped_pct", skipped_pct)
          .Set("partitions_pruned", run.result.partitions_pruned)
          .Set("batches_pruned", run.result.batches_pruned)
          .Set("index_builds", run.result.index_builds)
          .Set("index_hits", run.result.index_hits)
          .Set("matches", run.result.candidate_records)
          .Set("sample_rows", static_cast<uint64_t>(run.result.rows.size()))
          .Set("sample_digest", digest_buf);
    }
  }
  }
  table.Print();
  std::printf("\n(matches and sample digests must agree for every variant "
              "of a (z, sel) row; wall times are medians over %d "
              "repetitions)\n",
              reps);
  std::printf("low-selectivity repeated-query speedup vs unpruned: %.1fx "
              "(best over z)\n\n",
              low_sel_best_speedup);

  // Simulated cluster cells: base tie order + 2 shuffled seeds. Virtual
  // time is deterministic, so each (z, variant) triple must produce the
  // same response time at every seed. Skipped when --shuffle-ties was
  // given on the command line (the seed is then process-global and swept
  // by the caller instead — tier1 does this for the digest-invariance
  // stage).
  const bool sweep_seeds = !options.shuffle_ties.has_value();
  const std::vector<std::pair<std::string, std::optional<uint64_t>>> seeds =
      sweep_seeds
          ? std::vector<std::pair<std::string, std::optional<uint64_t>>>{
                {"base", std::nullopt}, {"11", 11}, {"23", 23}}
          : std::vector<std::pair<std::string, std::optional<uint64_t>>>{
                {"cli", options.shuffle_ties}};
  const std::vector<const char*> sim_variants = {"unpruned", "repeated",
                                                 "repeated+hints"};
  TablePrinter sim_table({"z", "variant", "seed", "response time (s)",
                          "splits", "pruned splits"});
  for (double z : zs) {
    for (const char* variant : sim_variants) {
      std::optional<SimCell> first;
      for (const auto& [label, seed] : seeds) {
        if (sweep_seeds) sim::Simulation::SetGlobalTieShuffle(seed);
        SimCell cell =
            bench::UnwrapOrDie(RunSim(z, variant, label), "sim cell");
        char rt_buf[32];
        std::snprintf(rt_buf, sizeof(rt_buf), "%.3f", cell.response_time);
        sim_table.AddRow({std::to_string(static_cast<int>(z)), variant,
                          label, rt_buf,
                          std::to_string(cell.splits_processed),
                          std::to_string(cell.pruned_splits)});
        json.AddCell()
            .Set("bench", "layout_pruning_sim")
            .Set("z", z)
            .Set("variant", variant)
            .Set("seed", label)
            .Set("response_time_s", cell.response_time)
            .Set("splits_processed", cell.splits_processed)
            .Set("pruned_splits", cell.pruned_splits);
        if (!first.has_value()) {
          first = cell;
        } else if (cell.response_time != first->response_time ||
                   cell.splits_processed != first->splits_processed ||
                   cell.pruned_splits != first->pruned_splits) {
          std::fprintf(stderr,
                       "FAIL: z=%g %s seed=%s diverged (response %.6f vs "
                       "%.6f)\n",
                       z, variant, label.c_str(), cell.response_time,
                       first->response_time);
          ok = false;
        }
      }
    }
  }
  if (sweep_seeds) sim::Simulation::SetGlobalTieShuffle(std::nullopt);
  sim_table.Print();
  std::printf("\n(virtual-time response times must be identical across tie "
              "seeds; pruned splits cost only the stats read)\n");

  bench::MaybeWriteJson(options, json);
  if (!ok) {
    std::fprintf(stderr, "\nlayout pruning perturbed a digest-checked "
                 "quantity\n");
    return 1;
  }
  return 0;
}
