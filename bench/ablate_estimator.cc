/// \file
/// Ablation: online selectivity estimation (paper Section IV) vs blind
/// policy-paced growth. The estimator lets the provider stop adding input
/// once the expected yield of in-flight work covers the sample size; blind
/// growth keeps adding GrabLimit-sized batches until the output target is
/// actually met, over-processing partitions. The policy x skew x estimator
/// grid fans out across hardware threads.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/sampling_input_provider.h"
#include "exec/parallel.h"
#include "mapred/input_splits.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr {
namespace {

struct Row {
  double response = 0;
  double partitions = 0;
  double increments = 0;
};

Result<Row> RunOne(const std::string& policy_name, bool use_estimator,
                   double z) {
  double rt = 0, parts = 0, incs = 0;
  constexpr int kRepeats = 5;
  for (int run = 0; run < kRepeats; ++run) {
    testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
    bed.Annotate("cell", use_estimator ? "estimator-on-s20" : "estimator-off-s20");
    bed.Annotate("policy", policy_name);
    bed.Annotate("z", z);
    bed.Annotate("repeat", static_cast<int64_t>(run));
    DMR_ASSIGN_OR_RETURN(
        testbed::Dataset dataset,
        testbed::MakeLineItemDataset(&bed.fs(), 20, z, 800 + 41 * run));
    DMR_ASSIGN_OR_RETURN(dynamic::GrowthPolicy policy,
                         dynamic::PolicyTable::BuiltIn().Find(policy_name));

    sampling::SamplingJobOptions options;
    options.job_name = "ablate-estimator";
    options.sample_size = tpch::kPaperSampleSize;
    options.seed = 4100 + run;
    DMR_ASSIGN_OR_RETURN(
        mapred::JobSubmission submission,
        sampling::MakeSamplingJob(dataset.file, dataset.matching_per_partition,
                                  policy, options));
    // Swap in a provider with estimation toggled.
    dynamic::SamplingInputProvider::Options popts;
    popts.use_selectivity_estimation = use_estimator;
    submission.input_provider =
        std::make_shared<dynamic::SamplingInputProvider>(policy,
                                                         options.seed, popts);
    DMR_ASSIGN_OR_RETURN(mapred::JobStats stats,
                         bed.RunJobToCompletion(std::move(submission)));
    rt += stats.response_time();
    parts += stats.splits_processed;
    incs += stats.input_increments;
  }
  return Row{rt / kRepeats, parts / kRepeats, incs / kRepeats};
}

}  // namespace
}  // namespace dmr

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "ablate_estimator");
  bench::PrintHeader(
      "Ablation: online selectivity estimation on/off",
      "DESIGN.md ablation #2 (supports the paper's Section IV estimator)",
      "without the estimator, jobs keep adding batches until the target is "
      "met in completed output, processing more partitions and taking "
      "longer, especially for aggressive policies");

  struct Cell {
    const char* policy;
    double z;
    bool est;
  };
  std::vector<Cell> cells;
  for (const char* policy : {"HA", "MA", "LA", "C"}) {
    for (double z : {0.0, 2.0}) {
      for (bool est : {true, false}) {
        cells.push_back({policy, z, est});
      }
    }
  }

  exec::ThreadPool pool = options.MakePool();
  auto rows = bench::UnwrapOrDie(
      exec::ParallelMap<Row>(&pool, cells.size(),
                             [&](size_t i) {
                               return RunOne(cells[i].policy, cells[i].est,
                                             cells[i].z);
                             }),
      "estimator grid");

  bench::JsonWriter json;
  TablePrinter table({"policy", "skew z", "estimator", "response (s)",
                      "partitions", "increments"});
  for (size_t i = 0; i < cells.size(); ++i) {
    const Row& r = rows[i];
    table.AddRow({cells[i].policy,
                  std::to_string(static_cast<int>(cells[i].z)),
                  cells[i].est ? "on" : "off",
                  std::to_string(r.response).substr(0, 6),
                  std::to_string(r.partitions).substr(0, 6),
                  std::to_string(r.increments).substr(0, 4)});
    json.AddCell()
        .Set("study", "ablate_estimator")
        .Set("policy", cells[i].policy)
        .Set("z", cells[i].z)
        .Set("estimator", cells[i].est)
        .Set("response_time_s", r.response)
        .Set("partitions", r.partitions)
        .Set("increments", r.increments);
  }
  table.Print();
  bench::MaybeWriteJson(options, json);
  return 0;
}
