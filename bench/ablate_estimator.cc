/// \file
/// Ablation: online selectivity estimation (paper Section IV) vs blind
/// policy-paced growth. The estimator lets the provider stop adding input
/// once the expected yield of in-flight work covers the sample size; blind
/// growth keeps adding GrabLimit-sized batches until the output target is
/// actually met, over-processing partitions.

#include <cstdio>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/sampling_input_provider.h"
#include "mapred/input_splits.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr {
namespace {

struct Row {
  double response = 0;
  double partitions = 0;
  double increments = 0;
};

Row RunOne(const std::string& policy_name, bool use_estimator, double z) {
  double rt = 0, parts = 0, incs = 0;
  constexpr int kRepeats = 5;
  for (int run = 0; run < kRepeats; ++run) {
    testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
    auto dataset = bench::UnwrapOrDie(
        testbed::MakeLineItemDataset(&bed.fs(), 20, z, 800 + 41 * run),
        "dataset");
    auto policy = bench::UnwrapOrDie(
        dynamic::PolicyTable::BuiltIn().Find(policy_name), "policy");

    sampling::SamplingJobOptions options;
    options.job_name = "ablate-estimator";
    options.sample_size = tpch::kPaperSampleSize;
    options.seed = 4100 + run;
    auto submission = bench::UnwrapOrDie(
        sampling::MakeSamplingJob(dataset.file,
                                  dataset.matching_per_partition, policy,
                                  options),
        "job");
    // Swap in a provider with estimation toggled.
    dynamic::SamplingInputProvider::Options popts;
    popts.use_selectivity_estimation = use_estimator;
    submission.input_provider =
        std::make_shared<dynamic::SamplingInputProvider>(policy,
                                                         options.seed, popts);
    auto stats =
        bench::UnwrapOrDie(bed.RunJobToCompletion(std::move(submission)),
                           "run");
    rt += stats.response_time();
    parts += stats.splits_processed;
    incs += stats.input_increments;
  }
  return {rt / kRepeats, parts / kRepeats, incs / kRepeats};
}

}  // namespace
}  // namespace dmr

int main() {
  using namespace dmr;
  bench::PrintHeader(
      "Ablation: online selectivity estimation on/off",
      "DESIGN.md ablation #2 (supports the paper's Section IV estimator)",
      "without the estimator, jobs keep adding batches until the target is "
      "met in completed output, processing more partitions and taking "
      "longer, especially for aggressive policies");

  TablePrinter table({"policy", "skew z", "estimator", "response (s)",
                      "partitions", "increments"});
  for (const char* policy : {"HA", "MA", "LA", "C"}) {
    for (double z : {0.0, 2.0}) {
      for (bool est : {true, false}) {
        Row r = RunOne(policy, est, z);
        table.AddRow({policy, std::to_string(static_cast<int>(z)),
                      est ? "on" : "off",
                      std::to_string(r.response).substr(0, 6),
                      std::to_string(r.partitions).substr(0, 6),
                      std::to_string(r.increments).substr(0, 4)});
      }
    }
  }
  table.Print();
  return 0;
}
