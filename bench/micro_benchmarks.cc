/// \file
/// Component micro-benchmarks (google-benchmark): PRNG and Zipf sampling,
/// skew assignment, LINEITEM generation and text round-trip, predicate
/// evaluation, HiveQL parsing, grab-limit expression evaluation, the
/// discrete-event kernel and the processor-sharing resource.

#include <benchmark/benchmark.h>

#include <atomic>

#include "common/properties.h"
#include "common/random.h"
#include "dynamic/grab_limit_expr.h"
#include "exec/parallel.h"
#include "expr/expression.h"
#include "hive/parser.h"
#include "sim/ps_resource.h"
#include "sim/simulation.h"
#include "tpch/generator.h"
#include "tpch/lineitem.h"
#include "tpch/predicates.h"
#include "tpch/skew_model.h"

namespace dmr {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(state.range(0), 1.0);
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.Next(&rng));
}
BENCHMARK(BM_ZipfNext)->Arg(40)->Arg(800)->Arg(8000);

void BM_AssignMatchingRecords(benchmark::State& state) {
  tpch::SkewSpec spec;
  spec.num_partitions = static_cast<int>(state.range(0));
  spec.zipf_z = 1.0;
  for (auto _ : state) {
    auto counts = tpch::AssignMatchingRecords(spec);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_AssignMatchingRecords)->Arg(40)->Arg(800);

void BM_GenerateRow(benchmark::State& state) {
  tpch::LineItemGenerator gen(3);
  for (auto _ : state) {
    auto row = gen.NextBaseRow();
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_GenerateRow);

void BM_RowSerde(benchmark::State& state) {
  tpch::LineItemGenerator gen(4);
  auto row = gen.NextBaseRow();
  for (auto _ : state) {
    std::string text = tpch::SerializeRow(row);
    auto parsed = tpch::ParseRow(text);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_RowSerde);

void BM_PredicateEval(benchmark::State& state) {
  tpch::LineItemGenerator gen(5);
  auto row = tpch::ToTuple(gen.NextBaseRow());
  const auto& pred = tpch::PredicateSuite()[0];
  const auto& schema = tpch::LineItemSchema();
  for (auto _ : state) {
    auto v = expr::EvaluatePredicate(*pred.predicate, schema, row);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_PredicateEval);

void BM_HiveParse(benchmark::State& state) {
  const std::string sql =
      "SELECT ORDERKEY, PARTKEY, SUPPKEY FROM lineitem "
      "WHERE DISCOUNT > 0.05 AND QUANTITY BETWEEN 10 AND 20 "
      "AND SHIPMODE IN ('AIR', 'RAIL') LIMIT 10000";
  for (auto _ : state) {
    auto stmt = hive::ParseStatement(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_HiveParse);

void BM_GrabLimitEval(benchmark::State& state) {
  auto expr = dynamic::GrabLimitExpr::Parse("AS > 0 ? 0.2 * AS : 0.1 * TS");
  dynamic::SlotVars vars{17, 160};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->Evaluate(vars));
  }
}
BENCHMARK(BM_GrabLimitEval);

void BM_PropertiesParse(benchmark::State& state) {
  std::string text;
  for (int i = 0; i < 50; ++i) {
    text += "key." + std::to_string(i) + " = value" + std::to_string(i) +
            "\n";
  }
  for (auto _ : state) {
    auto props = Properties::Parse(text);
    benchmark::DoNotOptimize(props);
  }
}
BENCHMARK(BM_PropertiesParse);

/// The raw Schedule+fire hot path: one event in flight per iteration batch,
/// no cancellations. Measures callback storage + slot + heap costs.
void BM_SimSchedule(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    uint64_t fired = 0;
    for (int i = 0; i < batch; ++i) {
      sim.Schedule(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SimSchedule)->Arg(1000)->Arg(100000);

/// The reschedule pattern PsResource leans on: schedule, cancel, replace.
/// Half the scheduled events are cancelled via their handles, exercising
/// slot reuse and the batched queue purge.
void BM_SimScheduleCancel(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    uint64_t fired = 0;
    sim::EventHandle last;
    for (int i = 0; i < batch; ++i) {
      last.Cancel();
      last = sim.Schedule(static_cast<double>(i % 89), [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SimScheduleCancel)->Arg(1000)->Arg(100000);

/// Fan-out scaling of the experiment harness: N simulation cells (each a
/// private Simulation running an event cascade) spread over the pool.
/// Compare threads=1 vs higher counts for the harness speedup.
void BM_ThreadPoolFanOut(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kCells = 64;
  constexpr int kEventsPerCell = 20000;
  exec::ThreadPool pool(threads);
  for (auto _ : state) {
    std::atomic<uint64_t> total{0};
    Status status = exec::ParallelFor(&pool, kCells, [&](size_t cell) {
      sim::Simulation sim;
      uint64_t fired = 0;
      for (int i = 0; i < kEventsPerCell; ++i) {
        sim.Schedule(static_cast<double>((i * 31 + cell) % 101),
                     [&fired] { ++fired; });
      }
      sim.Run();
      total.fetch_add(fired, std::memory_order_relaxed);
      return Status::OK();
    });
    if (!status.ok()) state.SkipWithError("cell failed");
    benchmark::DoNotOptimize(total.load());
  }
  state.SetItemsProcessed(state.iterations() * kCells * kEventsPerCell);
}
BENCHMARK(BM_ThreadPoolFanOut)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_PsResourceChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::PsResource disk(&sim, "disk", 80e6, 80e6);
    int done = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.Schedule(static_cast<double>(i), [&disk, &done] {
        disk.Submit(8e6, [&done] { ++done; });
      });
    }
    sim.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PsResourceChurn)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace dmr

BENCHMARK_MAIN();
