/// \file
/// Component micro-benchmarks (google-benchmark): PRNG and Zipf sampling,
/// skew assignment, LINEITEM generation and text round-trip, predicate
/// evaluation, HiveQL parsing, grab-limit expression evaluation, the
/// discrete-event kernel and the processor-sharing resource.

#include <benchmark/benchmark.h>

#include "common/properties.h"
#include "common/random.h"
#include "dynamic/grab_limit_expr.h"
#include "expr/expression.h"
#include "hive/parser.h"
#include "sim/ps_resource.h"
#include "sim/simulation.h"
#include "tpch/generator.h"
#include "tpch/lineitem.h"
#include "tpch/predicates.h"
#include "tpch/skew_model.h"

namespace dmr {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(state.range(0), 1.0);
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.Next(&rng));
}
BENCHMARK(BM_ZipfNext)->Arg(40)->Arg(800)->Arg(8000);

void BM_AssignMatchingRecords(benchmark::State& state) {
  tpch::SkewSpec spec;
  spec.num_partitions = static_cast<int>(state.range(0));
  spec.zipf_z = 1.0;
  for (auto _ : state) {
    auto counts = tpch::AssignMatchingRecords(spec);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_AssignMatchingRecords)->Arg(40)->Arg(800);

void BM_GenerateRow(benchmark::State& state) {
  tpch::LineItemGenerator gen(3);
  for (auto _ : state) {
    auto row = gen.NextBaseRow();
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_GenerateRow);

void BM_RowSerde(benchmark::State& state) {
  tpch::LineItemGenerator gen(4);
  auto row = gen.NextBaseRow();
  for (auto _ : state) {
    std::string text = tpch::SerializeRow(row);
    auto parsed = tpch::ParseRow(text);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_RowSerde);

void BM_PredicateEval(benchmark::State& state) {
  tpch::LineItemGenerator gen(5);
  auto row = tpch::ToTuple(gen.NextBaseRow());
  const auto& pred = tpch::PredicateSuite()[0];
  const auto& schema = tpch::LineItemSchema();
  for (auto _ : state) {
    auto v = expr::EvaluatePredicate(*pred.predicate, schema, row);
    benchmark::DoNotOptimize(v);
  }
}
BENCHMARK(BM_PredicateEval);

void BM_HiveParse(benchmark::State& state) {
  const std::string sql =
      "SELECT ORDERKEY, PARTKEY, SUPPKEY FROM lineitem "
      "WHERE DISCOUNT > 0.05 AND QUANTITY BETWEEN 10 AND 20 "
      "AND SHIPMODE IN ('AIR', 'RAIL') LIMIT 10000";
  for (auto _ : state) {
    auto stmt = hive::ParseStatement(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_HiveParse);

void BM_GrabLimitEval(benchmark::State& state) {
  auto expr = dynamic::GrabLimitExpr::Parse("AS > 0 ? 0.2 * AS : 0.1 * TS");
  dynamic::SlotVars vars{17, 160};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->Evaluate(vars));
  }
}
BENCHMARK(BM_GrabLimitEval);

void BM_PropertiesParse(benchmark::State& state) {
  std::string text;
  for (int i = 0; i < 50; ++i) {
    text += "key." + std::to_string(i) + " = value" + std::to_string(i) +
            "\n";
  }
  for (auto _ : state) {
    auto props = Properties::Parse(text);
    benchmark::DoNotOptimize(props);
  }
}
BENCHMARK(BM_PropertiesParse);

void BM_SimulationScheduleRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    int fired = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.Schedule(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SimulationScheduleRun)->Arg(1000)->Arg(100000);

void BM_PsResourceChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::PsResource disk(&sim, "disk", 80e6, 80e6);
    int done = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.Schedule(static_cast<double>(i), [&disk, &done] {
        disk.Submit(8e6, [&done] { ++done; });
      });
    }
    sim.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PsResourceChurn)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace dmr

BENCHMARK_MAIN();
