/// \file
/// Component micro-benchmarks (google-benchmark): PRNG and Zipf sampling,
/// skew assignment, LINEITEM generation and text round-trip, predicate
/// evaluation (interpreted vs vectorized) and columnar conversion, HiveQL
/// parsing, grab-limit expression evaluation, the discrete-event kernel and
/// the processor-sharing resource.

#include <benchmark/benchmark.h>

#include <atomic>

#include "common/properties.h"
#include "common/random.h"
#include "lint/engine_v1.h"
#include "lint/lint.h"
#include "dynamic/grab_limit_expr.h"
#include "obs/flight_recorder.h"
#include "obs/timeline.h"
#include "exec/parallel.h"
#include "exec/vectorized.h"
#include "expr/expression.h"
#include "tpch/columnar.h"
#include "hive/parser.h"
#include "sim/ps_resource.h"
#include "sim/simulation.h"
#include "tpch/generator.h"
#include "tpch/lineitem.h"
#include "tpch/predicates.h"
#include "tpch/skew_model.h"

namespace dmr {
namespace {

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) benchmark::DoNotOptimize(rng.Next());
}
BENCHMARK(BM_RngNext);

void BM_ZipfNext(benchmark::State& state) {
  ZipfGenerator zipf(state.range(0), 1.0);
  Rng rng(2);
  for (auto _ : state) benchmark::DoNotOptimize(zipf.Next(&rng));
}
BENCHMARK(BM_ZipfNext)->Arg(40)->Arg(800)->Arg(8000);

void BM_AssignMatchingRecords(benchmark::State& state) {
  tpch::SkewSpec spec;
  spec.num_partitions = static_cast<int>(state.range(0));
  spec.zipf_z = 1.0;
  for (auto _ : state) {
    auto counts = tpch::AssignMatchingRecords(spec);
    benchmark::DoNotOptimize(counts);
  }
}
BENCHMARK(BM_AssignMatchingRecords)->Arg(40)->Arg(800);

void BM_GenerateRow(benchmark::State& state) {
  tpch::LineItemGenerator gen(3);
  for (auto _ : state) {
    auto row = gen.NextBaseRow();
    benchmark::DoNotOptimize(row);
  }
}
BENCHMARK(BM_GenerateRow);

void BM_RowSerde(benchmark::State& state) {
  tpch::LineItemGenerator gen(4);
  auto row = gen.NextBaseRow();
  for (auto _ : state) {
    std::string text = tpch::SerializeRow(row);
    auto parsed = tpch::ParseRow(text);
    benchmark::DoNotOptimize(parsed);
  }
}
BENCHMARK(BM_RowSerde);

/// Rows shared by the predicate-evaluation benchmarks; big enough to
/// exercise the vectorized engine's batch loop several times over.
constexpr uint64_t kPredicateBenchRows = 8192;

std::vector<tpch::LineItemRow> PredicateBenchRows(size_t suite_index) {
  tpch::LineItemGenerator gen(5);
  const auto& pred = tpch::PredicateSuite()[suite_index];
  // ~2% matching so the selection paths see both outcomes.
  auto rows = gen.GeneratePartition(kPredicateBenchRows,
                                    kPredicateBenchRows / 50, pred);
  return *rows;
}

/// Per-row tree interpretation over variant tuples (the original path and
/// correctness oracle). Arg = suite predicate index (z = 0, 1, 2).
void BM_PredicateEvalInterp(benchmark::State& state) {
  const size_t suite_index = static_cast<size_t>(state.range(0));
  const auto& pred = tpch::PredicateSuite()[suite_index];
  const auto& schema = tpch::LineItemSchema();
  std::vector<expr::Tuple> tuples;
  tuples.reserve(kPredicateBenchRows);
  for (const auto& row : PredicateBenchRows(suite_index)) {
    tuples.push_back(tpch::ToTuple(row));
  }
  for (auto _ : state) {
    uint64_t matches = 0;
    for (const auto& tuple : tuples) {
      auto v = expr::EvaluatePredicate(*pred.predicate, schema, tuple);
      if (v.ok() && *v) ++matches;
    }
    benchmark::DoNotOptimize(matches);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(tuples.size()));
}
BENCHMARK(BM_PredicateEvalInterp)->Arg(0)->Arg(1)->Arg(2);

/// The compiled kernel program over columnar batches. Compile and bind
/// happen once (as in the runtime, where they amortize over a partition);
/// the loop measures the per-row scan cost.
void BM_PredicateEvalVectorized(benchmark::State& state) {
  const size_t suite_index = static_cast<size_t>(state.range(0));
  const auto& pred = tpch::PredicateSuite()[suite_index];
  auto partition =
      *tpch::ColumnarPartition::FromRows(PredicateBenchRows(suite_index));
  auto program =
      std::move(exec::PredicateProgram::Compile(*pred.predicate)).ValueUnsafe();
  exec::BoundPredicate bound(&program, &partition);
  std::vector<uint32_t> matches;
  matches.reserve(partition.num_rows());
  for (auto _ : state) {
    matches.clear();
    Status status = bound.FilterAll(&matches);
    if (!status.ok()) state.SkipWithError("filter failed");
    benchmark::DoNotOptimize(matches.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(partition.num_rows()));
}
BENCHMARK(BM_PredicateEvalVectorized)->Arg(0)->Arg(1)->Arg(2);

/// Row-to-columnar conversion cost (dates packed, strings dictionary
/// encoded) — the one-off price of admission for the vectorized scan.
void BM_ColumnarConvert(benchmark::State& state) {
  auto rows = PredicateBenchRows(0);
  for (auto _ : state) {
    auto partition = tpch::ColumnarPartition::FromRows(rows);
    benchmark::DoNotOptimize(partition);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(rows.size()));
}
BENCHMARK(BM_ColumnarConvert);

void BM_HiveParse(benchmark::State& state) {
  const std::string sql =
      "SELECT ORDERKEY, PARTKEY, SUPPKEY FROM lineitem "
      "WHERE DISCOUNT > 0.05 AND QUANTITY BETWEEN 10 AND 20 "
      "AND SHIPMODE IN ('AIR', 'RAIL') LIMIT 10000";
  for (auto _ : state) {
    auto stmt = hive::ParseStatement(sql);
    benchmark::DoNotOptimize(stmt);
  }
}
BENCHMARK(BM_HiveParse);

void BM_GrabLimitEval(benchmark::State& state) {
  auto expr = dynamic::GrabLimitExpr::Parse("AS > 0 ? 0.2 * AS : 0.1 * TS");
  dynamic::SlotVars vars{17, 160};
  for (auto _ : state) {
    benchmark::DoNotOptimize(expr->Evaluate(vars));
  }
}
BENCHMARK(BM_GrabLimitEval);

void BM_PropertiesParse(benchmark::State& state) {
  std::string text;
  for (int i = 0; i < 50; ++i) {
    text += "key." + std::to_string(i) + " = value" + std::to_string(i) +
            "\n";
  }
  for (auto _ : state) {
    auto props = Properties::Parse(text);
    benchmark::DoNotOptimize(props);
  }
}
BENCHMARK(BM_PropertiesParse);

/// The raw Schedule+fire hot path: one event in flight per iteration batch,
/// no cancellations. Measures callback storage + slot + heap costs.
void BM_SimSchedule(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    uint64_t fired = 0;
    for (int i = 0; i < batch; ++i) {
      sim.Schedule(static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SimSchedule)->Arg(1000)->Arg(100000);

/// The reschedule pattern PsResource leans on: schedule, cancel, replace.
/// Half the scheduled events are cancelled via their handles, exercising
/// slot reuse and the batched queue purge.
void BM_SimScheduleCancel(benchmark::State& state) {
  const int batch = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Simulation sim;
    uint64_t fired = 0;
    sim::EventHandle last;
    for (int i = 0; i < batch; ++i) {
      last.Cancel();
      last = sim.Schedule(static_cast<double>(i % 89), [&fired] { ++fired; });
    }
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_SimScheduleCancel)->Arg(1000)->Arg(100000);

/// Tombstone purge economics around the MaybePurgeCancelled thresholds.
/// Cancels push tombstone density to `pct`% of the queue against a fixed
/// pool of `live` firable events. The sweep runs only at >= 64 tombstones
/// AND >= 25% (heap) / >= 50% (calendar) density; the cells below sit just
/// either side of each boundary so the skip-on-pop vs. global-sweep
/// regimes are both measured.
void BM_SimCancelPurge(benchmark::State& state) {
  const auto kind = state.range(0) == 0 ? sim::QueueKind::kBinaryHeap
                                        : sim::QueueKind::kCalendar;
  const int pct = static_cast<int>(state.range(1));
  const int live = static_cast<int>(state.range(2));
  // Density pct means cancels / (live + cancels) == pct / 100.
  const int cancels = live * pct / (100 - pct);
  for (auto _ : state) {
    sim::SimulationOptions options;
    options.queue = kind;
    sim::Simulation sim(options);
    uint64_t fired = 0;
    for (int i = 0; i < live; ++i) {
      sim.Schedule(1.0 + static_cast<double>(i % 97), [&fired] { ++fired; });
    }
    for (int i = 0; i < cancels; ++i) {
      sim::EventHandle doomed =
          sim.Schedule(1.0 + static_cast<double>(i % 89),
                       [&fired] { ++fired; });
      doomed.Cancel();
    }
    benchmark::DoNotOptimize(sim.live_size());
    sim.Run();
    benchmark::DoNotOptimize(fired);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(live + cancels));
}
BENCHMARK(BM_SimCancelPurge)
    ->ArgNames({"queue", "pct", "live"})
    // heap (queue=0): density past 25% but only ~54 tombstones, under the
    // 64-count floor, so no sweep; then just under / just over the 25%
    // density line at scale.
    ->Args({0, 30, 128})
    ->Args({0, 20, 4096})
    ->Args({0, 30, 4096})
    // calendar (queue=1): just under / just over its 50% density line.
    ->Args({1, 40, 4096})
    ->Args({1, 60, 4096});

/// Fan-out scaling of the experiment harness: N simulation cells (each a
/// private Simulation running an event cascade) spread over the pool.
/// Compare threads=1 vs higher counts for the harness speedup.
void BM_ThreadPoolFanOut(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  constexpr int kCells = 64;
  constexpr int kEventsPerCell = 20000;
  exec::ThreadPool pool(threads);
  for (auto _ : state) {
    std::atomic<uint64_t> total{0};
    Status status = exec::ParallelFor(&pool, kCells, [&](size_t cell) {
      sim::Simulation sim;
      uint64_t fired = 0;
      for (int i = 0; i < kEventsPerCell; ++i) {
        sim.Schedule(static_cast<double>((i * 31 + cell) % 101),
                     [&fired] { ++fired; });
      }
      sim.Run();
      total.fetch_add(fired, std::memory_order_relaxed);
      return Status::OK();
    });
    if (!status.ok()) state.SkipWithError("cell failed");
    benchmark::DoNotOptimize(total.load());
  }
  state.SetItemsProcessed(state.iterations() * kCells * kEventsPerCell);
}
BENCHMARK(BM_ThreadPoolFanOut)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

/// One timeline tick over a testbed-sized probe/windowed population: the
/// recurring per-simulated-second cost a cell pays for --timeline. Arg =
/// windowed observations recorded into the open tick (the hot path that
/// scales with job throughput).
void BM_TimelineSample(benchmark::State& state) {
  const int observations = static_cast<int>(state.range(0));
  obs::TimelineOptions options;
  obs::Timeline timeline(options);
  double probe_value = 0.0;
  for (int i = 0; i < 6; ++i) {
    timeline.AddProbe("probe." + std::to_string(i), "units",
                      obs::Timeline::SeriesKind::kGauge,
                      [&probe_value] { return probe_value; });
  }
  obs::Timeline::WindowedId response =
      timeline.AddWindowed("bench.response", "sim_s");
  obs::Timeline::WindowedId wait = timeline.AddWindowed("bench.wait", "sim_s");
  double now = 0.0;
  for (auto _ : state) {
    probe_value += 1.0;
    for (int i = 0; i < observations; ++i) {
      timeline.Observe(response, 1.0 + static_cast<double>(i % 37));
      timeline.Observe(wait, 0.5 + static_cast<double>(i % 11));
    }
    now += 1.0;
    timeline.Sample(now);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TimelineSample)->Arg(0)->Arg(16)->Arg(256);

/// The flight-recorder append hot path: a fixed-size struct copy into an
/// arena-backed ring. This rides on every schedule/backup/preempt
/// decision, so it must stay in the few-ns range.
void BM_FlightRecorderAppend(benchmark::State& state) {
  sim::Arena arena;
  obs::FlightRecorder flight(128, &arena);
  double now = 0.0;
  for (auto _ : state) {
    now += 1e-3;
    flight.Append(now, obs::FlightEventKind::kSchedule, /*job=*/1,
                  /*node=*/2, /*detail=*/3, /*value=*/now);
    benchmark::DoNotOptimize(flight.appended());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlightRecorderAppend);

/// A representative source file for the lint engines: comments, string
/// literals, a raw string, nested scopes, annotations, one suppressed
/// hazard. Repeated to the requested line count so the benchmark scales.
std::string SynthesizeLintInput(int repeats) {
  static const char* kChunk =
      "// A chunk of plausible simulator code for the linter.\n"
      "#include <string>\n"
      "#include <vector>\n"
      "struct DMR_SHARD_AFFINE Shardlet {\n"
      "  std::vector<int> shards_;\n"
      "  int Sum() const {\n"
      "    int total = 0;\n"
      "    for (int v : shards_) total += v;\n"
      "    return total;\n"
      "  }\n"
      "};\n"
      "std::string Describe(const Shardlet& s) DMR_CROSS_SHARD_OK {\n"
      "  /* the \"<<\" below lives in a literal */\n"
      "  std::string out = R\"(sum << goes here)\";\n"
      "  out += std::to_string(s.shards_.size());\n"
      "  return out;\n"
      "}\n"
      "int Jitter() {\n"
      "  // dmr-lint: allow(unseeded-rng) benchmark fodder, not real code\n"
      "  return rand();\n"
      "}\n";
  std::string content;
  for (int i = 0; i < repeats; ++i) content += kChunk;
  return content;
}

/// The v2 token/scope engine over a synthetic file: the cost of linting
/// one file end to end (lex + scope tree + all checks). tier-1 runs this
/// over every file in src/, so per-file cost bounds the gate's latency.
void BM_LintFile(benchmark::State& state) {
  const std::string content =
      SynthesizeLintInput(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto findings = lint::LintContent("bench/synth.cc", content);
    benchmark::DoNotOptimize(findings.data());
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * content.size()));
}
BENCHMARK(BM_LintFile)->Arg(4)->Arg(32);

/// The preserved v1 line-regex engine on the same input, for a direct
/// cost comparison with the rebuild.
void BM_LintFileV1(benchmark::State& state) {
  const std::string content =
      SynthesizeLintInput(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    auto findings = lint::v1::LintContentV1("bench/synth.cc", content);
    benchmark::DoNotOptimize(findings.data());
  }
  state.SetBytesProcessed(
      static_cast<int64_t>(state.iterations() * content.size()));
}
BENCHMARK(BM_LintFileV1)->Arg(4)->Arg(32);

void BM_PsResourceChurn(benchmark::State& state) {
  for (auto _ : state) {
    sim::Simulation sim;
    sim::PsResource disk(&sim, "disk", 80e6, 80e6);
    int done = 0;
    for (int i = 0; i < state.range(0); ++i) {
      sim.Schedule(static_cast<double>(i), [&disk, &done] {
        disk.Submit(8e6, [&done] { ++done; });
      });
    }
    sim.Run();
    benchmark::DoNotOptimize(done);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PsResourceChurn)->Arg(1000)->Arg(10000);

}  // namespace
}  // namespace dmr

BENCHMARK_MAIN();
