/// \file
/// Ablation: delay-scheduling locality wait sweep for the Fair Scheduler on
/// the heterogeneous workload. Longer waits buy locality with idle slots —
/// the dial behind the paper's Section V-F observation. The per-wait cells
/// fan out across hardware threads.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"
#include "workload/workload_driver.h"

namespace dmr {
namespace {

struct Row {
  double locality = 0;
  double occupancy = 0;
  double sampling_tp = 0;
  double non_sampling_tp = 0;
};

Result<Row> RunWithWait(double wait) {
  constexpr int kNumUsers = 10;
  constexpr int kSamplingUsers = 4;
  testbed::Testbed bed(cluster::ClusterConfig::MultiUser(),
                       testbed::SchedulerKind::kFair, wait);
  {
    char cell[48];
    std::snprintf(cell, sizeof(cell), "locality-wait-%g", wait);
    bed.Annotate("cell", cell);
  }
  bed.Annotate("policy", "LA");
  bed.Annotate("z", 0.0);
  DMR_ASSIGN_OR_RETURN(dynamic::GrowthPolicy policy,
                       dynamic::PolicyTable::BuiltIn().Find("LA"));

  std::vector<testbed::Dataset> datasets;
  for (int u = 0; u < kNumUsers; ++u) {
    DMR_ASSIGN_OR_RETURN(
        testbed::Dataset dataset,
        testbed::MakeLineItemDataset(&bed.fs(), 100, 0.0, 6000 + 29 * u,
                                     "u" + std::to_string(u)));
    datasets.push_back(std::move(dataset));
  }

  workload::WorkloadDriver driver(&bed.client());
  for (int u = 0; u < kNumUsers; ++u) {
    workload::UserSpec user;
    user.name = "user" + std::to_string(u);
    user.think_time = 30.0;
    const testbed::Dataset* dataset = &datasets[u];
    if (u < kSamplingUsers) {
      user.job_class = "Sampling";
      user.make_job = [dataset, policy,
                       u](int iteration) -> Result<mapred::JobSubmission> {
        sampling::SamplingJobOptions options;
        options.job_name = "ablate-wait-sampling";
        options.user = "user" + std::to_string(u);
        options.sample_size = tpch::kPaperSampleSize;
        options.seed = 88000 + 101ULL * u + 7919ULL * iteration;
        return sampling::MakeSamplingJob(
            dataset->file, dataset->matching_per_partition, policy, options);
      };
    } else {
      user.job_class = "NonSampling";
      user.make_job = [dataset, u](int) -> Result<mapred::JobSubmission> {
        return sampling::MakeSelectProjectJob(
            dataset->file, dataset->matching_per_partition,
            "ablate-wait-sp", "user" + std::to_string(u));
      };
    }
    driver.AddUser(std::move(user));
  }

  DMR_ASSIGN_OR_RETURN(
      workload::WorkloadReport report,
      driver.Run({.duration = 4.0 * 3600, .warmup = 1800.0}));
  Row row;
  row.locality = bed.tracker().LocalityPercent();
  row.occupancy = bed.monitor().slot_occupancy_percent().MeanAfter(1800.0);
  row.sampling_tp = report.For("Sampling").throughput_jobs_per_hour;
  row.non_sampling_tp = report.For("NonSampling").throughput_jobs_per_hour;
  return row;
}

}  // namespace
}  // namespace dmr

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "ablate_locality_wait");
  bench::PrintHeader(
      "Ablation: Fair Scheduler locality-wait sweep (hetero workload, LA)",
      "DESIGN.md ablation #4 (the dial behind Section V-F)",
      "wait=0 behaves like plain fair sharing (lower locality, higher "
      "occupancy); longer waits raise locality and idle more slots");

  const std::vector<double> waits = {0.0, 2.5, 5.0, 10.0, 20.0};
  exec::ThreadPool pool = options.MakePool();
  auto rows = bench::UnwrapOrDie(
      exec::ParallelMap<Row>(&pool, waits.size(),
                             [&](size_t i) { return RunWithWait(waits[i]); }),
      "locality-wait sweep");

  bench::JsonWriter json;
  TablePrinter table({"locality wait (s)", "locality (%)", "occupancy (%)",
                      "Sampling (jobs/h)", "NonSampling (jobs/h)"});
  for (size_t i = 0; i < waits.size(); ++i) {
    const Row& row = rows[i];
    table.AddNumericRow(std::to_string(waits[i]).substr(0, 4),
                        {row.locality, row.occupancy, row.sampling_tp,
                         row.non_sampling_tp},
                        1);
    json.AddCell()
        .Set("study", "ablate_locality_wait")
        .Set("locality_wait_s", waits[i])
        .Set("locality_percent", row.locality)
        .Set("occupancy_percent", row.occupancy)
        .Set("sampling_jobs_per_hour", row.sampling_tp)
        .Set("non_sampling_jobs_per_hour", row.non_sampling_tp);
  }
  table.Print();
  bench::MaybeWriteJson(options, json);
  return 0;
}
