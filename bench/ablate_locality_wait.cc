/// \file
/// Ablation: delay-scheduling locality wait sweep for the Fair Scheduler on
/// the heterogeneous workload. Longer waits buy locality with idle slots —
/// the dial behind the paper's Section V-F observation.

#include <cstdio>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"
#include "workload/workload_driver.h"

namespace dmr {
namespace {

struct Row {
  double locality = 0;
  double occupancy = 0;
  double sampling_tp = 0;
  double non_sampling_tp = 0;
};

Row RunWithWait(double wait) {
  constexpr int kNumUsers = 10;
  constexpr int kSamplingUsers = 4;
  testbed::Testbed bed(cluster::ClusterConfig::MultiUser(),
                       testbed::SchedulerKind::kFair, wait);
  auto policy = bench::UnwrapOrDie(
      dynamic::PolicyTable::BuiltIn().Find("LA"), "policy");

  std::vector<testbed::Dataset> datasets;
  for (int u = 0; u < kNumUsers; ++u) {
    datasets.push_back(bench::UnwrapOrDie(
        testbed::MakeLineItemDataset(&bed.fs(), 100, 0.0, 6000 + 29 * u,
                                     "u" + std::to_string(u)),
        "dataset"));
  }

  workload::WorkloadDriver driver(&bed.client());
  for (int u = 0; u < kNumUsers; ++u) {
    workload::UserSpec user;
    user.name = "user" + std::to_string(u);
    user.think_time = 30.0;
    const testbed::Dataset* dataset = &datasets[u];
    if (u < kSamplingUsers) {
      user.job_class = "Sampling";
      user.make_job = [dataset, policy,
                       u](int iteration) -> Result<mapred::JobSubmission> {
        sampling::SamplingJobOptions options;
        options.job_name = "ablate-wait-sampling";
        options.user = "user" + std::to_string(u);
        options.sample_size = tpch::kPaperSampleSize;
        options.seed = 88000 + 101ULL * u + 7919ULL * iteration;
        return sampling::MakeSamplingJob(
            dataset->file, dataset->matching_per_partition, policy, options);
      };
    } else {
      user.job_class = "NonSampling";
      user.make_job = [dataset, u](int) -> Result<mapred::JobSubmission> {
        return sampling::MakeSelectProjectJob(
            dataset->file, dataset->matching_per_partition,
            "ablate-wait-sp", "user" + std::to_string(u));
      };
    }
    driver.AddUser(std::move(user));
  }

  auto report = bench::UnwrapOrDie(
      driver.Run({.duration = 4.0 * 3600, .warmup = 1800.0}), "run");
  Row row;
  row.locality = bed.tracker().LocalityPercent();
  row.occupancy = bed.monitor().slot_occupancy_percent().MeanAfter(1800.0);
  row.sampling_tp = report.For("Sampling").throughput_jobs_per_hour;
  row.non_sampling_tp = report.For("NonSampling").throughput_jobs_per_hour;
  return row;
}

}  // namespace
}  // namespace dmr

int main() {
  using namespace dmr;
  bench::PrintHeader(
      "Ablation: Fair Scheduler locality-wait sweep (hetero workload, LA)",
      "DESIGN.md ablation #4 (the dial behind Section V-F)",
      "wait=0 behaves like plain fair sharing (lower locality, higher "
      "occupancy); longer waits raise locality and idle more slots");

  TablePrinter table({"locality wait (s)", "locality (%)", "occupancy (%)",
                      "Sampling (jobs/h)", "NonSampling (jobs/h)"});
  for (double wait : {0.0, 2.5, 5.0, 10.0, 20.0}) {
    Row row = RunWithWait(wait);
    table.AddNumericRow(std::to_string(wait).substr(0, 4),
                        {row.locality, row.occupancy, row.sampling_tp,
                         row.non_sampling_tp},
                        1);
  }
  table.Print();
  return 0;
}
