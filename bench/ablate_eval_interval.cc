/// \file
/// Ablation: EvaluationInterval sweep (the paper fixes 4 s, Section III-B).
/// Short intervals react quickly but would cost real evaluation overhead;
/// long intervals leave the job starved between intakes. The per-interval
/// cells fan out across hardware threads.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/growth_policy.h"
#include "exec/parallel.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr {
namespace {

Result<double> RunWithInterval(double interval, int run) {
  testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
  {
    char cell[48];
    std::snprintf(cell, sizeof(cell), "eval-interval-%g", interval);
    bed.Annotate("cell", cell);
  }
  bed.Annotate("policy", "LA");
  bed.Annotate("z", 1.0);
  bed.Annotate("repeat", static_cast<int64_t>(run));
  DMR_ASSIGN_OR_RETURN(
      testbed::Dataset dataset,
      testbed::MakeLineItemDataset(&bed.fs(), 20, /*z=*/1.0, 900 + 13 * run));
  DMR_ASSIGN_OR_RETURN(
      dynamic::GrowthPolicy policy,
      dynamic::GrowthPolicy::Create("LA-sweep", "LA with custom interval",
                                    10.0, "AS > 0 ? 0.2 * AS : 0.1 * TS",
                                    interval));
  sampling::SamplingJobOptions options;
  options.job_name = "ablate-interval";
  options.sample_size = tpch::kPaperSampleSize;
  options.seed = 7100 + run;
  DMR_ASSIGN_OR_RETURN(
      mapred::JobSubmission submission,
      sampling::MakeSamplingJob(dataset.file, dataset.matching_per_partition,
                                policy, options));
  DMR_ASSIGN_OR_RETURN(mapred::JobStats stats,
                       bed.RunJobToCompletion(std::move(submission)));
  return stats.response_time();
}

}  // namespace
}  // namespace dmr

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "ablate_eval_interval");
  bench::PrintHeader(
      "Ablation: evaluation interval sweep (LA policy, 20x, z=1)",
      "DESIGN.md ablation #3 (supports the paper's 4 s choice)",
      "response time grows with the interval once it dominates the wait "
      "between intakes; very short intervals give diminishing returns");

  const std::vector<double> intervals = {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0};
  constexpr int kRepeats = 5;

  exec::ThreadPool pool = options.MakePool();
  auto means = bench::UnwrapOrDie(
      exec::ParallelMap<double>(
          &pool, intervals.size(),
          [&](size_t i) -> Result<double> {
            double sum = 0;
            for (int run = 0; run < kRepeats; ++run) {
              DMR_ASSIGN_OR_RETURN(double rt,
                                   RunWithInterval(intervals[i], run));
              sum += rt;
            }
            return sum / kRepeats;
          }),
      "interval sweep");

  bench::JsonWriter json;
  TablePrinter table({"interval (s)", "mean response time (s)"});
  for (size_t i = 0; i < intervals.size(); ++i) {
    table.AddNumericRow(std::to_string(intervals[i]).substr(0, 4),
                        {means[i]}, 1);
    json.AddCell()
        .Set("study", "ablate_eval_interval")
        .Set("interval_s", intervals[i])
        .Set("mean_response_time_s", means[i]);
  }
  table.Print();
  bench::MaybeWriteJson(options, json);
  return 0;
}
