/// \file
/// Ablation: EvaluationInterval sweep (the paper fixes 4 s, Section III-B).
/// Short intervals react quickly but would cost real evaluation overhead;
/// long intervals leave the job starved between intakes.

#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/growth_policy.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"

namespace dmr {
namespace {

double RunWithInterval(double interval, int run) {
  testbed::Testbed bed(cluster::ClusterConfig::SingleUser());
  auto dataset = bench::UnwrapOrDie(
      testbed::MakeLineItemDataset(&bed.fs(), 20, /*z=*/1.0, 900 + 13 * run),
      "dataset");
  auto policy = bench::UnwrapOrDie(
      dynamic::GrowthPolicy::Create("LA-sweep", "LA with custom interval",
                                    10.0, "AS > 0 ? 0.2 * AS : 0.1 * TS",
                                    interval),
      "policy");
  sampling::SamplingJobOptions options;
  options.job_name = "ablate-interval";
  options.sample_size = tpch::kPaperSampleSize;
  options.seed = 7100 + run;
  auto submission = bench::UnwrapOrDie(
      sampling::MakeSamplingJob(dataset.file, dataset.matching_per_partition,
                                policy, options),
      "job");
  auto stats = bench::UnwrapOrDie(
      bed.RunJobToCompletion(std::move(submission)), "run");
  return stats.response_time();
}

}  // namespace
}  // namespace dmr

int main() {
  using namespace dmr;
  bench::PrintHeader(
      "Ablation: evaluation interval sweep (LA policy, 20x, z=1)",
      "DESIGN.md ablation #3 (supports the paper's 4 s choice)",
      "response time grows with the interval once it dominates the wait "
      "between intakes; very short intervals give diminishing returns");

  TablePrinter table({"interval (s)", "mean response time (s)"});
  for (double interval : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0}) {
    double sum = 0;
    constexpr int kRepeats = 5;
    for (int run = 0; run < kRepeats; ++run) {
      sum += RunWithInterval(interval, run);
    }
    table.AddNumericRow(std::to_string(interval).substr(0, 4),
                        {sum / kRepeats}, 1);
  }
  table.Print();
  return 0;
}
