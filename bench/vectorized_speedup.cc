/// \file
/// Measures the vectorized predicate engine against the interpreted oracle
/// over the Table III predicate suite and records the per-row throughput of
/// both engines plus the speedup as BENCH_vectorized.json (via --json=FILE).
/// Also cross-checks that both engines count the same matches — a run whose
/// engines disagree aborts.
///
/// Usage: vectorized_speedup [--threads=N] [--json=FILE]

#include <chrono>
#include <cstdio>
#include <string>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "exec/parallel.h"
#include "exec/vectorized.h"
#include "expr/expression.h"
#include "tpch/dataset_catalog.h"
#include "tpch/generator.h"
#include "tpch/lineitem.h"
#include "tpch/predicates.h"

namespace {

struct EngineCell {
  uint64_t rows = 0;
  uint64_t matches_interp = 0;
  uint64_t matches_vectorized = 0;
  double interp_seconds = 0.0;
  double vectorized_seconds = 0.0;
};

// This driver exists to measure *real host* per-row cost of the two
// predicate engines, so the raw clock reads are the point, not a hazard:
// the timings feed the printed speedup table only, never a digest-checked
// artifact.
// dmr-lint: allow(wall-clock) measuring real engine throughput is the point
double Seconds(std::chrono::steady_clock::time_point start) {
  // dmr-lint: allow(wall-clock) see above
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "vectorized_speedup");
  bench::PrintHeader(
      "Vectorized predicate engine vs interpreted oracle",
      "record-level scan cost underlying Table III / Algorithm 1",
      "identical match counts; vectorized rows/sec at least ~5x the "
      "interpreted engine on every suite predicate");

  const auto& suite = tpch::PredicateSuite();
  exec::ThreadPool pool = options.MakePool();
  auto cells = bench::UnwrapOrDie(
      exec::ParallelMap<EngineCell>(
          &pool, suite.size(),
          [&](size_t i) -> Result<EngineCell> {
            const auto& pred = suite[i];
            tpch::SkewSpec spec;
            spec.num_partitions = 8;
            spec.records_per_partition = 25000;
            spec.selectivity = tpch::kPaperSelectivity;
            spec.zipf_z = pred.zipf_z;
            spec.seed = 20120402;
            DMR_ASSIGN_OR_RETURN(auto dataset,
                                 tpch::MaterializeDatasetShared(spec, pred));
            EngineCell cell;
            cell.rows = dataset->total_records();

            // dmr-lint: allow(wall-clock) real-throughput measurement
            auto start = std::chrono::steady_clock::now();
            const auto& schema = tpch::LineItemSchema();
            for (const auto& partition : dataset->partitions) {
              for (const auto& row : partition) {
                DMR_ASSIGN_OR_RETURN(
                    bool matched,
                    expr::EvaluatePredicate(*pred.predicate, schema,
                                            tpch::ToTuple(row)));
                if (matched) ++cell.matches_interp;
              }
            }
            cell.interp_seconds = Seconds(start);

            DMR_ASSIGN_OR_RETURN(
                exec::PredicateProgram program,
                exec::PredicateProgram::Compile(*pred.predicate));
            // dmr-lint: allow(wall-clock) real-throughput measurement
            start = std::chrono::steady_clock::now();
            for (const auto& partition : dataset->columnar) {
              DMR_ASSIGN_OR_RETURN(uint64_t matches,
                                   exec::CountMatches(program, partition));
              cell.matches_vectorized += matches;
            }
            cell.vectorized_seconds = Seconds(start);

            if (cell.matches_interp != cell.matches_vectorized) {
              return Status::Internal(
                  "engines disagree on '" + pred.name + "': interpreted " +
                  std::to_string(cell.matches_interp) + " vs vectorized " +
                  std::to_string(cell.matches_vectorized));
            }
            return cell;
          }),
      "engine comparison");

  bench::JsonWriter json;
  TablePrinter table({"predicate", "rows", "interp Mrows/s",
                      "vectorized Mrows/s", "speedup"});
  for (size_t i = 0; i < suite.size(); ++i) {
    const auto& pred = suite[i];
    const EngineCell& cell = cells[i];
    double interp_rps =
        static_cast<double>(cell.rows) / cell.interp_seconds;
    double vectorized_rps =
        static_cast<double>(cell.rows) / cell.vectorized_seconds;
    double speedup = vectorized_rps / interp_rps;
    char interp_buf[32], vec_buf[32], speedup_buf[32];
    std::snprintf(interp_buf, sizeof(interp_buf), "%.2f", interp_rps / 1e6);
    std::snprintf(vec_buf, sizeof(vec_buf), "%.2f", vectorized_rps / 1e6);
    std::snprintf(speedup_buf, sizeof(speedup_buf), "%.1fx", speedup);
    table.AddRow({pred.sql, std::to_string(cell.rows), interp_buf, vec_buf,
                  speedup_buf});
    json.AddCell()
        .Set("bench", "vectorized_speedup")
        .Set("predicate", pred.sql)
        .Set("name", pred.name)
        .Set("z", pred.zipf_z)
        .Set("rows", cell.rows)
        .Set("matches", cell.matches_vectorized)
        .Set("interp_rows_per_sec", interp_rps)
        .Set("vectorized_rows_per_sec", vectorized_rps)
        .Set("speedup", speedup);
  }
  table.Print();
  std::printf("\n(each engine scans the same memoized dataset; match counts "
              "are cross-checked per predicate)\n");
  bench::MaybeWriteJson(options, json);
  return 0;
}
