/// \file
/// Reproduces Figure 6: homogeneous multi-user workload. 10 concurrent users
/// all run the same predicate-based sampling query, each against a private
/// copy of the 100x LINEITEM data, on a cluster with 16 map slots per node.
/// Reports per-policy throughput (jobs/hour), mean CPU utilization (%) and
/// mean disk reads (KB/s per disk), under a uniform and a highly skewed
/// (z = 2) distribution of the matching records.
///
/// Cells (policy x skew panel) are independent simulations and fan out
/// across hardware threads; results are printed in deterministic order.

#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "common/table_printer.h"
#include "dynamic/growth_policy.h"
#include "exec/parallel.h"
#include "sampling/sampling_job.h"
#include "testbed/testbed.h"
#include "tpch/dataset_catalog.h"
#include "workload/workload_driver.h"

namespace dmr {
namespace {

constexpr int kNumUsers = 10;
constexpr int kScale = 100;
constexpr double kDuration = 6.0 * 3600;
constexpr double kWarmup = 1800.0;

struct PolicyResult {
  double throughput = 0;
  double cpu_percent = 0;
  double disk_kbs = 0;
};

Result<PolicyResult> RunPolicy(const std::string& policy_name, double z) {
  testbed::Testbed bed(cluster::ClusterConfig::MultiUser());
  bed.Annotate("cell", "multiuser-s" + std::to_string(kScale));
  bed.Annotate("policy", policy_name);
  bed.Annotate("z", z);
  DMR_ASSIGN_OR_RETURN(dynamic::GrowthPolicy policy,
                       dynamic::PolicyTable::BuiltIn().Find(policy_name));

  // Each user works against a private copy of the dataset (the paper does
  // this to defeat buffer-cache sharing; here it also decorrelates skew
  // realizations across users).
  std::vector<testbed::Dataset> datasets;
  for (int u = 0; u < kNumUsers; ++u) {
    DMR_ASSIGN_OR_RETURN(
        testbed::Dataset dataset,
        testbed::MakeLineItemDataset(&bed.fs(), kScale, z, 9000 + 131 * u,
                                     "u" + std::to_string(u)));
    datasets.push_back(std::move(dataset));
  }

  workload::WorkloadDriver driver(&bed.client());
  for (int u = 0; u < kNumUsers; ++u) {
    workload::UserSpec user;
    user.name = "user" + std::to_string(u);
    user.job_class = "Sampling";
    const testbed::Dataset* dataset = &datasets[u];
    user.make_job = [dataset, policy, u,
                     policy_name](int iteration)
        -> Result<mapred::JobSubmission> {
      sampling::SamplingJobOptions options;
      options.job_name = "fig6-" + policy_name;
      options.user = "user" + std::to_string(u);
      options.sample_size = tpch::kPaperSampleSize;
      options.seed = 100000 + 7919ULL * u + 104729ULL * iteration;
      return sampling::MakeSamplingJob(dataset->file,
                                       dataset->matching_per_partition,
                                       policy, options);
    };
    driver.AddUser(std::move(user));
  }

  DMR_ASSIGN_OR_RETURN(workload::WorkloadReport report,
                       driver.Run({.duration = kDuration, .warmup = kWarmup}));

  PolicyResult result;
  result.throughput = report.For("Sampling").throughput_jobs_per_hour;
  result.cpu_percent = bed.monitor().cpu_percent().MeanAfter(kWarmup);
  result.disk_kbs = bed.monitor().disk_read_kbs().MeanAfter(kWarmup);
  return result;
}

}  // namespace
}  // namespace dmr

int main(int argc, char** argv) {
  using namespace dmr;
  bench::BenchOptions options = bench::BenchOptions::Parse(argc, argv);
  bench::ObsSession obs_session(options, "fig6_homogeneous");
  bench::PrintHeader(
      "Figure 6: homogeneous multi-user workload (10 users, 100x data)",
      "Grover & Carey, ICDE 2012, Fig. 6",
      "Hadoop gives the lowest throughput with the highest CPU/disk usage; "
      "throughput rises as policies get less aggressive (HA -> MA -> LA), "
      "with C slightly below LA; high skew lowers throughput and raises "
      "resource usage for dynamic policies, Hadoop unaffected");

  const std::vector<std::string> policies = {"C", "LA", "MA", "HA", "Hadoop"};
  struct Panel {
    const char* label;
    double z;
  };
  const std::vector<Panel> panels = {
      {"uniform distribution of matching records", 0.0},
      {"highly skewed distribution (z = 2)", 2.0}};

  exec::ThreadPool pool = options.MakePool();
  auto grid = bench::UnwrapOrDie(
      exec::ParallelGrid<PolicyResult>(
          &pool, panels.size(), policies.size(),
          [&](size_t panel, size_t p) {
            return RunPolicy(policies[p], panels[panel].z);
          }),
      "figure 6 grid");

  bench::JsonWriter json;
  for (size_t panel = 0; panel < panels.size(); ++panel) {
    TablePrinter table({"policy", "throughput (jobs/h)", "CPU util (%)",
                        "disk reads (KB/s)"});
    std::printf("Figure 6 (%s)\n", panels[panel].label);
    for (size_t p = 0; p < policies.size(); ++p) {
      const PolicyResult& r = grid[panel][p];
      table.AddNumericRow(policies[p],
                          {r.throughput, r.cpu_percent, r.disk_kbs}, 1);
      json.AddCell()
          .Set("figure", "fig6")
          .Set("policy", policies[p])
          .Set("z", panels[panel].z)
          .Set("throughput_jobs_per_hour", r.throughput)
          .Set("cpu_percent", r.cpu_percent)
          .Set("disk_read_kbs", r.disk_kbs);
    }
    table.Print();
    std::printf("\n");
  }
  bench::MaybeWriteJson(options, json);
  return 0;
}
