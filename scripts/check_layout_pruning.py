#!/usr/bin/env python3
"""Tier-1 checks for bench_layout_pruning JSON (DESIGN.md §16).

Usage: check_layout_pruning.py RUN_A.json RUN_B.json

Two invariants:

1. Thread-count invariance: the two runs (e.g. --threads=1 vs
   --threads=4) must agree on every cell field except host wall time
   and the speedup derived from it.
2. Pruning invisibility: within each run, every variant of a host
   (z, selectivity) cell — unpruned/pruned x first/repeated — must
   report identical match counts, sample row counts and sample
   digests. Pruning may only move physical-cost counters.
"""

import json
import sys

VOLATILE = {"wall_ms", "speedup_vs_unpruned"}


def load_cells(path):
    with open(path) as f:
        doc = json.load(f)
    cells = doc["cells"] if isinstance(doc, dict) else doc
    return [{k: v for k, v in cell.items() if k not in VOLATILE}
            for cell in cells]


def check_pruning_invisibility(cells, path):
    groups = {}
    for cell in cells:
        if cell.get("bench") != "layout_pruning":
            continue
        key = (cell["z"], cell["selectivity"])
        groups.setdefault(key, set()).add(
            (cell["matches"], cell["sample_rows"], cell["sample_digest"]))
    if not groups:
        sys.exit(f"{path}: no host layout_pruning cells found")
    for key, outcomes in sorted(groups.items()):
        if len(outcomes) != 1:
            sys.exit(f"{path}: variants disagree at (z, sel)={key}: "
                     f"{sorted(outcomes)} — pruning changed the sample")
    return len(groups)


def main():
    if len(sys.argv) != 3:
        sys.exit(__doc__)
    a, b = sys.argv[1], sys.argv[2]
    cells_a, cells_b = load_cells(a), load_cells(b)
    if cells_a != cells_b:
        for i, (ca, cb) in enumerate(zip(cells_a, cells_b)):
            if ca != cb:
                sys.exit(f"thread-count variance at cell {i}:\n"
                         f"  {a}: {ca}\n  {b}: {cb}")
        sys.exit(f"cell count differs: {a} has {len(cells_a)}, "
                 f"{b} has {len(cells_b)}")
    groups = check_pruning_invisibility(cells_a, a)
    check_pruning_invisibility(cells_b, b)
    print(f"layout_pruning OK: {len(cells_a)} cells identical across runs "
          f"(volatile wall-time fields excluded); match counts and sample "
          f"digests agree across pruning variants in {groups} cells")


if __name__ == "__main__":
    main()
