#!/usr/bin/env bash
# The tier-1 lint gate: dmr-lint v2 over the whole tree against the
# checked-in baseline, plus self-tests that prove the gate can actually
# fail — a seeded shard-ownership violation must exit nonzero, a doctored
# baseline (banking debt that does not exist) must exit nonzero, and the
# --format=github annotation output must render. The tree pass is held to
# a wall-clock budget so the linter cannot quietly become the slowest
# stage of tier-1 (override with DMR_LINT_BUDGET_MS).
#
# Usage: scripts/lint_all.sh
set -euo pipefail
cd "$(dirname "$0")/.."

LINT=./build/src/lint/dmr-lint
BASELINE=configs/lint_baseline.json
BUDGET_MS="${DMR_LINT_BUDGET_MS:-15000}"

if [[ ! -x "${LINT}" ]]; then
  echo "lint_all: ${LINT} not built (run the tier-1 build first)" >&2
  exit 2
fi

tmp=$(mktemp -d)
trap 'rm -rf "${tmp}"' EXIT

# 1. The gate itself: every unsuppressed error in src/bench/examples must
#    be accounted for by the baseline (whose entries list is empty — the
#    tree is clean; it exists so future debt is explicit and auditable).
start_ns=$(date +%s%N)
"${LINT}" --fail-on=error --baseline="${BASELINE}" src bench examples
end_ns=$(date +%s%N)
elapsed_ms=$(( (end_ns - start_ns) / 1000000 ))
if (( elapsed_ms > BUDGET_MS )); then
  echo "lint_all: tree lint took ${elapsed_ms} ms, over the" \
       "${BUDGET_MS} ms budget — profile BM_LintFile before raising it" >&2
  exit 1
fi
echo "lint_all: tree lint clean in ${elapsed_ms} ms (budget ${BUDGET_MS} ms)"

# 2. Self-test: a seeded shard-ownership violation must be refused.
if "${LINT}" --fail-on=error \
     tests/lint/fixtures/shard_affine_violating.cc > /dev/null 2>&1; then
  echo "lint_all: seeded shard-ownership violation was accepted — the" \
       "gate is not gating" >&2
  exit 1
fi

# 3. Self-test: a baseline doctored to bank nonexistent debt must be
#    refused (stale entries block, so recorded debt can only shrink).
python3 - "${BASELINE}" "${tmp}/doctored.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
doc["entries"].append(
    {"file": "src/sim/simulation.cc", "check": "shard-affine", "count": 3})
json.dump(doc, open(sys.argv[2], "w"))
PY
if "${LINT}" --fail-on=error --baseline="${tmp}/doctored.json" \
     src bench examples > /dev/null 2>&1; then
  echo "lint_all: doctored baseline was accepted — stale entries must" \
       "block" >&2
  exit 1
fi

# 4. The GitHub annotation format must render one ::error per finding.
"${LINT}" --format=github \
  tests/lint/fixtures/wall_clock.cc > "${tmp}/gh.txt" 2>&1 || true
grep -q '^::error file=.*wall_clock\.cc,line=5::\[wall-clock\]' "${tmp}/gh.txt"

echo "lint_all: OK (gate + self-tests)"
