#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, a bench smoke run (micro
# benchmarks + the Table III driver on both predicate engines, asserting
# identical JSON), then the concurrency-sensitive pool/kernel/vectorized
# tests again under ThreadSanitizer.
#
# Usage: scripts/tier1.sh [--no-tsan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

echo "== tier-1: configure + build (preset: default) =="
cmake --preset default
cmake --build --preset default -j "${jobs}"

echo "== tier-1: full test suite =="
ctest --preset default -j "${jobs}"

echo "== tier-1: observability outputs (--trace/--metrics schema check) =="
obs_dir=$(mktemp -d)
trap 'rm -rf "${obs_dir}"' EXIT
./build/bench/bench_fig5_single_user \
  --trace="${obs_dir}/trace.json" --metrics="${obs_dir}/metrics.json" \
  > "${obs_dir}/stdout.txt"
./build/src/obs/dmr-analyze --json="${obs_dir}/comparison.json" \
  "${obs_dir}/metrics.json" > /dev/null
python3 scripts/check_obs_output.py \
  "${obs_dir}/trace.json" "${obs_dir}/metrics.json" \
  "${obs_dir}/comparison.json"

echo "== tier-1: ledger/critical-path baseline (dmr-analyze --baseline) =="
./build/src/obs/dmr-analyze \
  --baseline=configs/baselines/smoke.json "${obs_dir}/metrics.json"

echo "== tier-1: bench smoke (micro benchmarks + engine-parity diff) =="
./build/bench/bench_micro --benchmark_min_time=0.01 \
  --benchmark_filter='BM_(PredicateEval|ColumnarConvert)' \
  > "${obs_dir}/micro.txt"
./build/bench/bench_table3_predicates interpreted \
  --json="${obs_dir}/table3_interpreted.json" > /dev/null
./build/bench/bench_table3_predicates vectorized \
  --json="${obs_dir}/table3_vectorized.json" > /dev/null
diff "${obs_dir}/table3_interpreted.json" "${obs_dir}/table3_vectorized.json"
echo "table3 JSON identical on both engines"

if [[ "${1:-}" == "--no-tsan" ]]; then
  echo "== tier-1: TSan stage skipped (--no-tsan) =="
  exit 0
fi

echo "== tier-1: ThreadSanitizer pass (pool + kernel + metrics + vectorized + ledger tests) =="
cmake --preset tsan
cmake --build --preset tsan -j "${jobs}" \
  --target parallel_test simulation_test metrics_test vectorized_test \
           ledger_test
ctest --preset tsan

echo "== tier-1: OK =="
