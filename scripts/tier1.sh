#!/usr/bin/env bash
# Tier-1 verification: full build + test suite, the dmr-lint gate
# (scripts/lint_all.sh: tree lint against configs/lint_baseline.json plus
# gate self-tests and a wall-clock budget), a bench smoke run (micro benchmarks + the Table III driver on both
# predicate engines, asserting identical JSON), the DES kernel scale smoke
# (calendar/heap x serial/sharded firing-order digests must agree), the
# tie-shuffle + queue-kind digest invariance check (fig5 metrics AND the
# virtual-time telemetry timelines must be byte-identical across shuffle
# seeds and queue implementations), the timeline thread-count invariance +
# dmr-analyze timeline smoke, the profiling digest-invisibility check plus
# dmr-analyze profile smoke and count-regression gate (banded against
# configs/baselines/profile_smoke.json), the shard-affinity sentinel
# digest-invisibility check (fig5 artifacts byte-identical with the
# sentinel armed or disarmed), the adaptive-layout smoke (pruning
# must not change match counts or sample digests, across thread counts, with
# the simulated cells banded against configs/baselines/), then the
# concurrency-sensitive tests under ThreadSanitizer and the sim/mapred/obs
# tests under ASan+UBSan.
#
# Usage: scripts/tier1.sh [--no-tsan] [--no-asan]
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 2)

run_tsan=1
run_asan=1
for arg in "$@"; do
  case "${arg}" in
    --no-tsan) run_tsan=0 ;;
    --no-asan) run_asan=0 ;;
    *) echo "unknown flag: ${arg}" >&2; exit 2 ;;
  esac
done

echo "== tier-1: configure + build (preset: default) =="
cmake --preset default
cmake --build --preset default -j "${jobs}"

echo "== tier-1: full test suite =="
ctest --preset default -j "${jobs}"

echo "== tier-1: dmr-lint gate (baseline + self-tests + wall-clock budget) =="
scripts/lint_all.sh

echo "== tier-1: observability outputs (--trace/--metrics/--profile schema check) =="
obs_dir=$(mktemp -d)
trap 'rm -rf "${obs_dir}"' EXIT
./build/bench/bench_fig5_single_user \
  --trace="${obs_dir}/trace.json" --metrics="${obs_dir}/metrics.json" \
  --timeline="${obs_dir}/timeline.json" \
  --profile="${obs_dir}/profile.collapsed" \
  > "${obs_dir}/stdout.txt"
./build/src/obs/dmr-analyze --json="${obs_dir}/comparison.json" \
  "${obs_dir}/metrics.json" > /dev/null
python3 scripts/check_obs_output.py --timeline="${obs_dir}/timeline.json" \
  --profile="${obs_dir}/profile.collapsed" \
  "${obs_dir}/trace.json" "${obs_dir}/metrics.json" \
  "${obs_dir}/comparison.json"

echo "== tier-1: ledger/critical-path baseline (dmr-analyze --baseline) =="
./build/src/obs/dmr-analyze \
  --baseline=configs/baselines/smoke.json "${obs_dir}/metrics.json"

echo "== tier-1: bench smoke (micro benchmarks + engine-parity diff) =="
./build/bench/bench_micro --benchmark_min_time=0.01 \
  --benchmark_filter='BM_(PredicateEval|ColumnarConvert)' \
  > "${obs_dir}/micro.txt"
./build/bench/bench_table3_predicates interpreted \
  --json="${obs_dir}/table3_interpreted.json" > /dev/null
./build/bench/bench_table3_predicates vectorized \
  --json="${obs_dir}/table3_vectorized.json" > /dev/null
diff "${obs_dir}/table3_interpreted.json" "${obs_dir}/table3_vectorized.json"
echo "table3 JSON identical on both engines"

echo "== tier-1: DES kernel scale smoke (calendar/heap x serial/sharded digest diff) =="
# The sim_scale driver runs every {queue kind} x {serial, RunParallel}
# cell at 100 nodes, folds each firing sequence into per-shard digests and
# exits nonzero unless all four agree — the order-equivalence contract of
# DESIGN.md §14 end to end.
./build/bench/bench_sim_scale --nodes=100 --shards=4 \
  --json="${obs_dir}/sim_scale_smoke.json" > /dev/null
echo "sim_scale digests identical across queue kinds and engines"

echo "== tier-1: tie-shuffle + queue-kind digest invariance (frozen host clock) =="
# The determinism contract (DESIGN.md §13/§14): among events tied on
# (timestamp, EventClass) the handlers must commute, and the calendar
# queue must realize exactly the heap oracle's order — so the full
# metrics + ledger + critical-path report is byte-identical under any
# legal tie order AND either queue implementation.
digest_ref=""
for queue in calendar heap; do
  for seed in base 11 23 37 41 53; do
    args=("--queue=${queue}")
    if [[ "${seed}" != "base" ]]; then args+=("--shuffle-ties=${seed}"); fi
    DMR_HOST_CLOCK=frozen ./build/bench/bench_fig5_single_user "${args[@]}" \
      --metrics="${obs_dir}/shuffle_${queue}_${seed}.json" \
      --timeline="${obs_dir}/shuffle_tl_${queue}_${seed}.json" > /dev/null
    # One digest over metrics + timeline: the telemetry timelines (probe
    # series, windowed percentiles, SLO verdicts, flight-recorder rings)
    # are part of the same byte-identity contract as the metrics report.
    digest=$(cat "${obs_dir}/shuffle_${queue}_${seed}.json" \
                 "${obs_dir}/shuffle_tl_${queue}_${seed}.json" \
             | sha256sum | cut -d' ' -f1)
    if [[ -z "${digest_ref}" ]]; then
      digest_ref="${digest}"
    elif [[ "${digest}" != "${digest_ref}" ]]; then
      echo "digest mismatch: queue=${queue} seed=${seed} diverged — either" \
           "a handler pair at one virtual instant does not commute or the" \
           "calendar queue broke the firing-order contract" >&2
      exit 1
    fi
  done
done
echo "fig5 metrics+timeline digest identical across {calendar, heap} x {base + 5 shuffle seeds}"

echo "== tier-1: timeline thread-count invariance + dmr-analyze timeline smoke =="
# The virtual-time timelines sample simulation state only, so the document
# must be byte-identical whether the experiment cells run serially or on a
# worker pool.
for threads in 1 4; do
  DMR_HOST_CLOCK=frozen ./build/bench/bench_fig5_single_user \
    --threads="${threads}" \
    --timeline="${obs_dir}/timeline_t${threads}.json" > /dev/null
done
diff "${obs_dir}/timeline_t1.json" "${obs_dir}/timeline_t4.json"
echo "fig5 timeline byte-identical at --threads=1 and --threads=4"
# Two identical runs through the timeline analyzer: the markdown must
# render and an emitted baseline must accept the runs it was built from.
./build/src/obs/dmr-analyze timeline \
  --markdown="${obs_dir}/timeline.md" \
  --emit-baseline="${obs_dir}/timeline_baseline.json" \
  "${obs_dir}/timeline_t1.json" "${obs_dir}/timeline_t4.json" > /dev/null
./build/src/obs/dmr-analyze timeline \
  --baseline="${obs_dir}/timeline_baseline.json" \
  "${obs_dir}/timeline_t1.json" > /dev/null
echo "dmr-analyze timeline markdown + baseline round-trip OK"

echo "== tier-1: profiling digest invisibility (prof on/off x threads x seeds) =="
# DESIGN.md §17: the prof seam observes host time only, so every simulation
# artifact must be byte-identical whether profiling is enabled or not — at
# any thread count and under any legal tie order.
while read -r threads seed; do
  args=("--threads=${threads}")
  if [[ "${seed}" != "base" ]]; then args+=("--shuffle-ties=${seed}"); fi
  tag="t${threads}_${seed}"
  DMR_HOST_CLOCK=frozen ./build/bench/bench_fig5_single_user "${args[@]}" \
    --timeline="${obs_dir}/prof_off_${tag}.json" > /dev/null
  DMR_HOST_CLOCK=frozen ./build/bench/bench_fig5_single_user "${args[@]}" \
    --timeline="${obs_dir}/prof_on_${tag}.json" \
    --profile="${obs_dir}/prof_${tag}.collapsed" > /dev/null
  diff "${obs_dir}/prof_off_${tag}.json" "${obs_dir}/prof_on_${tag}.json"
done <<'CELLS'
1 base
4 base
4 11
4 23
CELLS
echo "fig5 timeline byte-identical profiled vs unprofiled across threads={1,4} and tie seeds"

echo "== tier-1: dmr-analyze profile smoke + regression gate =="
# A profiled fig5 run must round-trip through the analyzer: the markdown
# top-phase table renders, the re-emitted collapsed stacks are byte-equal
# to the driver's own, the checked-in count baseline accepts a fresh run,
# and a seeded 10x count regression is refused with a nonzero exit.
DMR_HOST_CLOCK=frozen ./build/bench/bench_fig5_single_user \
  --metrics="${obs_dir}/prof_metrics.json" \
  --profile="${obs_dir}/prof_fig5.collapsed" > /dev/null
./build/src/obs/dmr-analyze profile --top=10 \
  --markdown="${obs_dir}/profile.md" \
  "${obs_dir}/prof_metrics.json" > /dev/null
grep -q "sim.dispatch" "${obs_dir}/profile.md"
./build/src/obs/dmr-analyze profile \
  --collapsed="${obs_dir}/prof_reemit.collapsed" \
  "${obs_dir}/prof_metrics.json" > /dev/null
diff "${obs_dir}/prof_fig5.collapsed" "${obs_dir}/prof_reemit.collapsed"
./build/src/obs/dmr-analyze profile \
  --baseline=configs/baselines/profile_smoke.json \
  "${obs_dir}/prof_metrics.json"
python3 - "${obs_dir}/prof_metrics.json" "${obs_dir}/prof_doctored.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
for phase in doc["prof"]["phases"]:
    phase["count"] *= 10
json.dump(doc, open(sys.argv[2], "w"))
PY
if ./build/src/obs/dmr-analyze profile \
     --baseline=configs/baselines/profile_smoke.json \
     "${obs_dir}/prof_doctored.json" > /dev/null 2>&1; then
  echo "profile baseline gate accepted a 10x phase-count regression" >&2
  exit 1
fi
echo "dmr-analyze profile markdown + collapsed round-trip + baseline gate OK"

echo "== tier-1: shard-affinity sentinel digest invisibility (on/off x threads x seeds) =="
# DESIGN.md §18: the sentinel observes thread/shard bindings and never
# touches virtual time, event order or allocation, so every simulation
# artifact must be byte-identical with it armed or disarmed — at any
# thread count and under any legal tie order. Metrics are compared at
# --threads=1 only: at higher thread counts the per-worker histogram
# merge order already wobbles in the last float digit run-to-run
# (sentinel or not), which is why the other multi-thread stages diff
# timelines too.
while read -r threads seed; do
  args=("--threads=${threads}")
  if [[ "${seed}" != "base" ]]; then args+=("--shuffle-ties=${seed}"); fi
  tag="t${threads}_${seed}"
  DMR_HOST_CLOCK=frozen DMR_SHARD_SENTINEL=0 ./build/bench/bench_fig5_single_user \
    "${args[@]}" --metrics="${obs_dir}/sentinel_off_${tag}.json" \
    --timeline="${obs_dir}/sentinel_off_tl_${tag}.json" > /dev/null
  DMR_HOST_CLOCK=frozen DMR_SHARD_SENTINEL=1 ./build/bench/bench_fig5_single_user \
    "${args[@]}" --metrics="${obs_dir}/sentinel_on_${tag}.json" \
    --timeline="${obs_dir}/sentinel_on_tl_${tag}.json" > /dev/null
  if [[ "${threads}" == "1" ]]; then
    diff "${obs_dir}/sentinel_off_${tag}.json" "${obs_dir}/sentinel_on_${tag}.json"
  fi
  diff "${obs_dir}/sentinel_off_tl_${tag}.json" "${obs_dir}/sentinel_on_tl_${tag}.json"
done <<'CELLS'
1 base
1 17
4 base
4 17
CELLS
echo "fig5 metrics+timeline byte-identical sentinel on vs off across threads={1,4} and tie seeds"

echo "== tier-1: adaptive-layout smoke (pruning invisibility + thread invariance + baseline) =="
# DESIGN.md §16: zone-map pruning and piggybacked indexing must be
# invisible to everything except physical cost. The driver itself asserts
# per-cell digest agreement across its pruned/unpruned variants; here the
# checker re-asserts it from the JSON and diffs the two thread counts on
# every field except host wall time. The simulated cells are then banded
# against the checked-in baseline.
for threads in 1 4; do
  DMR_HOST_CLOCK=frozen ./build/bench/bench_layout_pruning \
    --threads="${threads}" --reps=3 \
    --json="${obs_dir}/layout_t${threads}.json" \
    --metrics="${obs_dir}/layout_metrics_t${threads}.json" > /dev/null
done
python3 scripts/check_layout_pruning.py \
  "${obs_dir}/layout_t1.json" "${obs_dir}/layout_t4.json"
./build/src/obs/dmr-analyze \
  --baseline=configs/baselines/layout_pruning.json \
  "${obs_dir}/layout_metrics_t1.json"

if [[ "${run_tsan}" == "1" ]]; then
  echo "== tier-1: ThreadSanitizer pass (pool + kernel + metrics + vectorized + ledger tests) =="
  cmake --preset tsan
  cmake --build --preset tsan -j "${jobs}" \
    --target parallel_test simulation_test metrics_test vectorized_test \
             ledger_test run_parallel_test queue_equivalence_test \
             timeline_test layout_pruning_test prof_test \
             affinity_sentinel_test
  ctest --preset tsan
else
  echo "== tier-1: TSan stage skipped (--no-tsan) =="
fi

if [[ "${run_asan}" == "1" ]]; then
  echo "== tier-1: ASan+UBSan pass (sim + mapred + obs tests) =="
  cmake --preset asan
  cmake --build --preset asan -j "${jobs}" \
    --target simulation_test tie_race_test ps_resource_test \
             job_tracker_test job_client_test metrics_test trace_test \
             ledger_test analysis_test lint_test \
             lint_diff_test lint_engine_test \
             run_parallel_test queue_equivalence_test \
             timeline_test flight_recorder_test layout_pruning_test \
             prof_test affinity_sentinel_test
  ctest --preset asan
else
  echo "== tier-1: ASan stage skipped (--no-asan) =="
fi

echo "== tier-1: OK =="
