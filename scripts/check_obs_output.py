#!/usr/bin/env python3
"""Schema check for the observability outputs of a bench driver run.

Usage: check_obs_output.py TRACE.json METRICS.json

Validates that:
  * the trace file is Chrome trace-event JSON (traceEvents array, known
    phase codes, complete spans carrying ts/dur/pid/tid),
  * async begin/end events balance per (cat, id),
  * there is at least one map-attempt span per launched map (span count
    equals the mapred.maps_launched counter) and one provider-decision
    instant event per provider invocation,
  * the metrics report carries the standard counters and the task-wait
    latency histogram with ordered p50/p95/p99.

Exits non-zero with a message on the first violation.
"""

import json
import sys

KNOWN_PHASES = {"X", "b", "e", "i", "C", "M"}


def fail(message):
    print(f"check_obs_output: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: expected an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not an array")

    async_depth = {}
    stats = {"map_spans": 0, "reduce_spans": 0, "provider_instants": 0,
             "job_spans": 0, "split_spans": 0}
    for event in events:
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            fail(f"{path}: unknown phase {ph!r} in {event}")
        if ph == "M":
            continue
        for key in ("ts", "pid", "name"):
            if key not in event:
                fail(f"{path}: {ph} event missing {key!r}: {event}")
        cat = event.get("cat", "")
        if ph == "X":
            if "dur" not in event or "tid" not in event:
                fail(f"{path}: complete span missing dur/tid: {event}")
            if event["dur"] < 0:
                fail(f"{path}: negative span duration: {event}")
            if cat == "map":
                stats["map_spans"] += 1
            elif cat == "reduce":
                stats["reduce_spans"] += 1
        elif ph in ("b", "e"):
            key = (cat, event.get("id"))
            if key[1] is None:
                fail(f"{path}: async event missing id: {event}")
            async_depth[key] = async_depth.get(key, 0) + (1 if ph == "b" else -1)
            if async_depth[key] < 0:
                fail(f"{path}: async end before begin for {key}")
            if ph == "b" and cat == "job":
                stats["job_spans"] += 1
            if ph == "b" and cat == "split":
                stats["split_spans"] += 1
        elif ph == "i":
            if cat == "provider":
                stats["provider_instants"] += 1

    unbalanced = {k: v for k, v in async_depth.items() if v != 0}
    # Splits that never completed (e.g. a driver that stops at end-of-input
    # with maps in flight) legitimately leave open spans; jobs must close.
    open_jobs = [k for k in unbalanced if k[0] == "job"]
    if open_jobs:
        fail(f"{path}: {len(open_jobs)} job spans never ended")
    return stats


def check_metrics(path, trace_stats):
    with open(path) as f:
        doc = json.load(f)
    for section in ("info", "counters", "histograms"):
        if section not in doc:
            fail(f"{path}: missing section {section!r}")
    counters = doc["counters"]
    for name in ("mapred.maps_launched", "mapred.maps_completed",
                 "mapred.jobs_submitted", "mapred.heartbeats"):
        if name not in counters:
            fail(f"{path}: missing counter {name!r}")
    if counters["mapred.maps_launched"] <= 0:
        fail(f"{path}: no maps launched; the run recorded nothing")

    hists = {h.get("name"): h for h in doc["histograms"]}
    for name in ("mapred.task_wait", "mapred.task_run",
                 "mapred.heartbeat_assign", "provider.decision"):
        if name not in hists:
            fail(f"{path}: missing histogram {name!r}")
        h = hists[name]
        for key in ("unit", "count", "p50", "p95", "p99", "max"):
            if key not in h:
                fail(f"{path}: histogram {name} missing {key!r}")
        if not (h["p50"] <= h["p95"] <= h["p99"] <= h["max"]):
            fail(f"{path}: histogram {name} percentiles out of order: {h}")
    if hists["mapred.task_wait"]["count"] <= 0:
        fail(f"{path}: task_wait histogram is empty")

    # Cross-check trace against counters: one span per map attempt, one
    # instant per provider decision.
    if trace_stats["map_spans"] != counters["mapred.maps_launched"]:
        fail(f"map spans ({trace_stats['map_spans']}) != "
             f"mapred.maps_launched ({counters['mapred.maps_launched']})")
    decisions = hists["provider.decision"]["count"]
    if trace_stats["provider_instants"] != decisions:
        fail(f"provider instants ({trace_stats['provider_instants']}) != "
             f"provider.decision count ({decisions})")
    if trace_stats["job_spans"] != counters["mapred.jobs_submitted"]:
        fail(f"job spans ({trace_stats['job_spans']}) != "
             f"mapred.jobs_submitted ({counters['mapred.jobs_submitted']})")
    return counters


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    trace_stats = check_trace(sys.argv[1])
    counters = check_metrics(sys.argv[2], trace_stats)
    print(f"check_obs_output: OK "
          f"({trace_stats['map_spans']} map spans, "
          f"{trace_stats['provider_instants']} provider decisions, "
          f"{counters['mapred.maps_launched']} maps launched)")


if __name__ == "__main__":
    main()
