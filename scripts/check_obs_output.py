#!/usr/bin/env python3
"""Schema check for the observability outputs of a bench driver run.

Usage: check_obs_output.py [--timeline=FILE] [--profile=COLLAPSED] \
           TRACE.json METRICS.json [ANALYSIS.json]

Validates that:
  * the trace file is Chrome trace-event JSON (traceEvents array, known
    phase codes, complete spans carrying ts/dur/pid/tid),
  * async begin/end events balance per (cat, id),
  * there is at least one map-attempt span per launched map (span count
    equals the mapred.maps_launched counter) and one provider-decision
    instant event per provider invocation,
  * the metrics report carries the standard counters and the task-wait
    latency histogram with ordered p50/p95/p99,
  * the report's `ledger` section attributes every slot-second to exactly
    one of the six categories (sum equals nodes x slots x makespan),
  * the report's `critical_path` section carries, per job, a time-ordered
    path whose per-category breakdown sums to the path time,
  * an optional dmr-analyze comparison JSON (third argument) joins the
    same cells the ledger reported,
  * an optional --timeline document carries, per cell, probe and windowed
    series whose retained tick timestamps are strictly monotone and
    gap-free on the sampling cadence, ordered per-point and whole-run
    percentiles, SLO breaches placed inside the run, and a flight
    recorder whose ring arithmetic (appended - dropped == retained,
    retained <= capacity) and sequence ordering hold,
  * with --profile, the metrics report's `prof` section (host phase tree:
    paths sorted, counts positive, self <= total, min <= max, self equal
    to total minus the direct children's totals clamped at zero, zero
    timer-stack imbalances, nonnegative allocation accounting) and the
    driver's collapsed flamegraph file, whose path -> self_ns lines must
    match the JSON section exactly.

Exits non-zero with a message on the first violation.
"""

import json
import sys

KNOWN_PHASES = {"X", "b", "e", "i", "C", "M"}


def fail(message):
    print(f"check_obs_output: FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail(f"{path}: expected an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list):
        fail(f"{path}: traceEvents is not an array")

    async_depth = {}
    stats = {"map_spans": 0, "reduce_spans": 0, "provider_instants": 0,
             "job_spans": 0, "split_spans": 0}
    for event in events:
        ph = event.get("ph")
        if ph not in KNOWN_PHASES:
            fail(f"{path}: unknown phase {ph!r} in {event}")
        if ph == "M":
            continue
        for key in ("ts", "pid", "name"):
            if key not in event:
                fail(f"{path}: {ph} event missing {key!r}: {event}")
        cat = event.get("cat", "")
        if ph == "X":
            if "dur" not in event or "tid" not in event:
                fail(f"{path}: complete span missing dur/tid: {event}")
            if event["dur"] < 0:
                fail(f"{path}: negative span duration: {event}")
            if cat == "map":
                stats["map_spans"] += 1
            elif cat == "reduce":
                stats["reduce_spans"] += 1
        elif ph in ("b", "e"):
            key = (cat, event.get("id"))
            if key[1] is None:
                fail(f"{path}: async event missing id: {event}")
            async_depth[key] = async_depth.get(key, 0) + (1 if ph == "b" else -1)
            if async_depth[key] < 0:
                fail(f"{path}: async end before begin for {key}")
            if ph == "b" and cat == "job":
                stats["job_spans"] += 1
            if ph == "b" and cat == "split":
                stats["split_spans"] += 1
        elif ph == "i":
            if cat == "provider":
                stats["provider_instants"] += 1

    unbalanced = {k: v for k, v in async_depth.items() if v != 0}
    # Splits that never completed (e.g. a driver that stops at end-of-input
    # with maps in flight) legitimately leave open spans; jobs must close.
    open_jobs = [k for k in unbalanced if k[0] == "job"]
    if open_jobs:
        fail(f"{path}: {len(open_jobs)} job spans never ended")
    return stats


def check_metrics(path, trace_stats):
    with open(path) as f:
        doc = json.load(f)
    for section in ("info", "counters", "histograms"):
        if section not in doc:
            fail(f"{path}: missing section {section!r}")
    counters = doc["counters"]
    for name in ("mapred.maps_launched", "mapred.maps_completed",
                 "mapred.jobs_submitted", "mapred.heartbeats"):
        if name not in counters:
            fail(f"{path}: missing counter {name!r}")
    if counters["mapred.maps_launched"] <= 0:
        fail(f"{path}: no maps launched; the run recorded nothing")

    hists = {h.get("name"): h for h in doc["histograms"]}
    for name in ("mapred.task_wait", "mapred.task_run",
                 "mapred.heartbeat_assign", "provider.decision"):
        if name not in hists:
            fail(f"{path}: missing histogram {name!r}")
        h = hists[name]
        for key in ("unit", "count", "p50", "p95", "p99", "max"):
            if key not in h:
                fail(f"{path}: histogram {name} missing {key!r}")
        if not (h["p50"] <= h["p95"] <= h["p99"] <= h["max"]):
            fail(f"{path}: histogram {name} percentiles out of order: {h}")
    if hists["mapred.task_wait"]["count"] <= 0:
        fail(f"{path}: task_wait histogram is empty")

    # Cross-check trace against counters: one span per map attempt, one
    # instant per provider decision.
    if trace_stats["map_spans"] != counters["mapred.maps_launched"]:
        fail(f"map spans ({trace_stats['map_spans']}) != "
             f"mapred.maps_launched ({counters['mapred.maps_launched']})")
    decisions = hists["provider.decision"]["count"]
    if trace_stats["provider_instants"] != decisions:
        fail(f"provider instants ({trace_stats['provider_instants']}) != "
             f"provider.decision count ({decisions})")
    if trace_stats["job_spans"] != counters["mapred.jobs_submitted"]:
        fail(f"job spans ({trace_stats['job_spans']}) != "
             f"mapred.jobs_submitted ({counters['mapred.jobs_submitted']})")
    return counters


LEDGER_CATEGORIES = ("useful", "wasted", "speculative", "queueing",
                     "provider_wait", "idle")


def check_ledger(path, doc):
    """Validates the slot-time ledger section; returns the cell count."""
    if "ledger" not in doc:
        fail(f"{path}: missing section 'ledger'")
    cells = doc["ledger"].get("cells")
    if not isinstance(cells, list):
        fail(f"{path}: ledger.cells is not an array")
    for cell in cells:
        label = cell.get("label", "?")
        for key in ("annotations", "nodes", "map_slots_per_node", "makespan",
                    "total_slot_seconds", "categories", "wasted_pct",
                    "utilization_pct"):
            if key not in cell:
                fail(f"{path}: ledger cell {label} missing {key!r}")
        cats = cell["categories"]
        if set(cats) != set(LEDGER_CATEGORIES):
            fail(f"{path}: ledger cell {label} categories {sorted(cats)} != "
                 f"{sorted(LEDGER_CATEGORIES)}")
        if any(cats[c] < 0 for c in cats):
            fail(f"{path}: ledger cell {label} has a negative category")
        expected = cell["nodes"] * cell["map_slots_per_node"] * cell["makespan"]
        total = cell["total_slot_seconds"]
        tol = 1e-6 * max(1.0, expected)
        if abs(total - expected) > tol:
            fail(f"{path}: ledger cell {label} total_slot_seconds {total} != "
                 f"nodes*slots*makespan {expected}")
        cat_sum = sum(cats.values())
        if abs(cat_sum - total) > tol:
            fail(f"{path}: ledger cell {label} categories sum to {cat_sum}, "
                 f"not the total {total} (ledger is not exhaustive)")
        for pct in ("wasted_pct", "utilization_pct"):
            if not (0.0 <= cell[pct] <= 100.0):
                fail(f"{path}: ledger cell {label} {pct} out of range: "
                     f"{cell[pct]}")
    return len(cells)


def check_critical_path(path, doc):
    """Validates the critical_path section; returns the total job count."""
    if "critical_path" not in doc:
        fail(f"{path}: missing section 'critical_path'")
    cells = doc["critical_path"].get("cells")
    if not isinstance(cells, list):
        fail(f"{path}: critical_path.cells is not an array")
    jobs_total = 0
    for cell in cells:
        label = cell.get("label", "?")
        analysis = cell.get("analysis")
        if not isinstance(analysis, dict) or "jobs" not in analysis:
            fail(f"{path}: critical_path cell {label} missing analysis.jobs")
        for job in analysis["jobs"]:
            jobs_total += 1
            jid = job.get("job", "?")
            for key in ("finish_time", "response_time", "path_time",
                        "breakdown", "path", "path_truncated"):
                if key not in job:
                    fail(f"{path}: critical path of job {jid} in cell "
                         f"{label} missing {key!r}")
            if job["response_time"] < 0 or job["path_time"] < 0:
                fail(f"{path}: job {jid} in cell {label} has a negative "
                     f"response/path time")
            steps = job["path"]
            if not steps:
                fail(f"{path}: job {jid} in cell {label} has an empty path")
            for a, b in zip(steps, steps[1:]):
                if b["t"] < a["t"]:
                    fail(f"{path}: job {jid} in cell {label} path is not "
                         f"time-ordered at t={b['t']}")
            if steps[-1]["event"] != "job_completed":
                fail(f"{path}: job {jid} in cell {label} path does not end "
                     f"at job_completed")
            # The breakdown covers the full (untruncated) path.
            breakdown_sum = sum(job["breakdown"].values())
            if abs(breakdown_sum - job["path_time"]) > \
                    1e-6 * max(1.0, job["path_time"]):
                fail(f"{path}: job {jid} in cell {label} breakdown sums to "
                     f"{breakdown_sum}, not path_time {job['path_time']}")
    return jobs_total


def check_analysis(path, ledger_cells):
    """Validates a dmr-analyze comparison JSON against the report."""
    with open(path) as f:
        doc = json.load(f)
    for section in ("runs", "cells"):
        if section not in doc or not isinstance(doc[section], list):
            fail(f"{path}: missing array section {section!r}")
    if not doc["runs"]:
        fail(f"{path}: no runs in the comparison")
    joined = 0
    for cell in doc["cells"]:
        for key in ("driver", "cell", "policy", "z", "runs"):
            if key not in cell:
                fail(f"{path}: comparison cell missing {key!r}: {cell}")
        if len(cell["runs"]) != len(doc["runs"]):
            fail(f"{path}: comparison cell {cell['cell']} has "
                 f"{len(cell['runs'])} run entries for {len(doc['runs'])} "
                 f"runs")
        for entry in cell["runs"]:
            if entry is None:
                continue
            joined += entry.get("repeats", 0)
            for key in ("response_time", "wasted_pct", "utilization_pct",
                        "makespan", "categories"):
                if key not in entry:
                    fail(f"{path}: comparison entry for {cell['cell']} "
                         f"missing {key!r}")
    if ledger_cells > 0 and joined != ledger_cells:
        fail(f"{path}: comparison joined {joined} ledger cells, report "
             f"emitted {ledger_cells}")
    return len(doc["cells"])


def check_tick_times(path, label, name, times, interval):
    """Retained ring timestamps: strictly monotone, gap-free on the
    sampling cadence (consecutive ticks exactly one interval apart)."""
    tol = 1e-9 * max(1.0, interval)
    for a, b in zip(times, times[1:]):
        if b <= a:
            fail(f"{path}: cell {label} series {name} timestamps not "
                 f"strictly monotone at t={b}")
        if abs((b - a) - interval) > tol:
            fail(f"{path}: cell {label} series {name} has a gap: "
                 f"t={a} -> t={b}, cadence is {interval}s")


def check_timeline_cell(path, cell, interval, windows):
    label = cell.get("label", "?")
    for key in ("annotations", "timeline", "slo", "flight_recorder"):
        if key not in cell:
            fail(f"{path}: timeline cell {label} missing {key!r}")
    tl = cell["timeline"]
    for key in ("ticks", "dropped_ticks", "sealed_at", "series", "windowed"):
        if key not in tl:
            fail(f"{path}: cell {label} timeline missing {key!r}")
    retained = tl["ticks"] - tl["dropped_ticks"]
    if retained < 0:
        fail(f"{path}: cell {label} dropped more ticks than it sampled")

    tick_times = None
    for series in tl["series"]:
        name = series.get("name", "?")
        for key in ("unit", "kind", "summary", "points"):
            if key not in series:
                fail(f"{path}: cell {label} series {name} missing {key!r}")
        if series["kind"] not in ("gauge", "counter"):
            fail(f"{path}: cell {label} series {name} has unknown kind "
                 f"{series['kind']!r}")
        summary = series["summary"]
        for key in ("ticks", "min", "max", "mean", "last", "t_at_max"):
            if key not in summary:
                fail(f"{path}: cell {label} series {name} summary missing "
                     f"{key!r}")
        if summary["ticks"] != tl["ticks"]:
            fail(f"{path}: cell {label} series {name} sampled "
                 f"{summary['ticks']} ticks, cell closed {tl['ticks']}")
        if not (summary["min"] <= summary["mean"] <= summary["max"]):
            fail(f"{path}: cell {label} series {name} summary extrema out "
                 f"of order: {summary}")
        points = series["points"]
        if len(points) != retained:
            fail(f"{path}: cell {label} series {name} retained "
                 f"{len(points)} points, expected {retained}")
        times = [p[0] for p in points]
        check_tick_times(path, label, name, times, interval)
        if tick_times is None:
            tick_times = times
        elif times != tick_times:
            fail(f"{path}: cell {label} series {name} ticks disagree with "
                 f"the cell's other series")
        for p in points:
            if len(p) != 3:
                fail(f"{path}: cell {label} series {name} point is not "
                     f"[t, value, rate]: {p}")
            if not (summary["min"] <= p[1] <= summary["max"]):
                fail(f"{path}: cell {label} series {name} point value "
                     f"{p[1]} outside summary [min, max]")

    for series in tl["windowed"]:
        name = series.get("name", "?")
        if "windows" not in series:
            fail(f"{path}: cell {label} windowed {name} missing 'windows'")
        emitted = [w.get("window") for w in series["windows"]]
        if emitted != windows:
            fail(f"{path}: cell {label} windowed {name} windows {emitted} "
                 f"!= book windows {windows}")
        for w in series["windows"]:
            summary = w.get("summary")
            if not isinstance(summary, dict):
                fail(f"{path}: cell {label} windowed {name} w={w.get('window')}"
                     f" missing summary")
            for key in ("count_max", "p50_max", "p90_max", "p99_max"):
                if key not in summary:
                    fail(f"{path}: cell {label} windowed {name} summary "
                         f"missing {key!r}")
            if not (summary["p50_max"] <= summary["p90_max"]
                    <= summary["p99_max"]):
                fail(f"{path}: cell {label} windowed {name} whole-run "
                     f"percentile maxima out of order: {summary}")
            points = w["points"]
            if len(points) != retained:
                fail(f"{path}: cell {label} windowed {name} retained "
                     f"{len(points)} points, expected {retained}")
            times = [p[0] for p in points]
            check_tick_times(path, label, name, times, interval)
            if tick_times is not None and times != tick_times:
                fail(f"{path}: cell {label} windowed {name} ticks disagree "
                     f"with the cell's probe series")
            for p in points:
                if len(p) != 5:
                    fail(f"{path}: cell {label} windowed {name} point is "
                         f"not [t, count, p50, p90, p99]: {p}")
                if p[1] < 0 or p[1] > summary["count_max"]:
                    fail(f"{path}: cell {label} windowed {name} count "
                         f"{p[1]} outside [0, count_max]")
                if not (p[2] <= p[3] <= p[4]):
                    fail(f"{path}: cell {label} windowed {name} per-point "
                         f"percentiles out of order: {p}")

    slo = cell["slo"]
    for key in ("rules", "breaches"):
        if key not in slo or not isinstance(slo[key], list):
            fail(f"{path}: cell {label} slo missing array {key!r}")
    for rule in slo["rules"]:
        for key in ("name", "series", "window", "quantile", "max",
                    "budget_fraction", "evaluated_ticks", "breached_ticks",
                    "budget_burned"):
            if key not in rule:
                fail(f"{path}: cell {label} slo rule missing {key!r}")
        if rule["breached_ticks"] > rule["evaluated_ticks"]:
            fail(f"{path}: cell {label} slo rule {rule['name']} breached "
                 f"more ticks than it evaluated")
    for breach in slo["breaches"]:
        for key in ("t", "rule", "kind", "measured"):
            if key not in breach:
                fail(f"{path}: cell {label} slo breach missing {key!r}")
        if not 0 <= breach["rule"] < len(slo["rules"]):
            fail(f"{path}: cell {label} slo breach references unknown rule "
                 f"{breach['rule']}")
        if not 0.0 < breach["t"] <= tl["sealed_at"]:
            fail(f"{path}: cell {label} slo breach at t={breach['t']} is "
                 f"outside the run (sealed at {tl['sealed_at']})")

    flight = cell["flight_recorder"]
    for key in ("capacity", "appended", "dropped", "events"):
        if key not in flight:
            fail(f"{path}: cell {label} flight_recorder missing {key!r}")
    events = flight["events"]
    if len(events) > flight["capacity"]:
        fail(f"{path}: cell {label} flight recorder retained more events "
             f"than its capacity")
    if flight["appended"] - flight["dropped"] != len(events):
        fail(f"{path}: cell {label} flight recorder ring arithmetic is "
             f"wrong: {flight['appended']} - {flight['dropped']} != "
             f"{len(events)}")
    for a, b in zip(events, events[1:]):
        if b["seq"] <= a["seq"]:
            fail(f"{path}: cell {label} flight events out of sequence at "
                 f"seq={b['seq']}")
        if b["t"] < a["t"]:
            fail(f"{path}: cell {label} flight events go backwards in time "
                 f"at seq={b['seq']}")
    return len(slo["breaches"])


def check_timeline(path):
    """Validates a --timeline document; returns (cells, breaches)."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "timeline" not in doc:
        fail(f"{path}: expected an object with a timeline section")
    book = doc["timeline"]
    interval = book.get("interval")
    if not isinstance(interval, (int, float)) or interval <= 0:
        fail(f"{path}: timeline interval must be positive")
    windows = book.get("windows")
    if not isinstance(windows, list) or any(w <= 0 for w in windows):
        fail(f"{path}: timeline windows must be positive")
    cells = book.get("cells")
    if not isinstance(cells, list):
        fail(f"{path}: timeline.cells is not an array")
    breaches = 0
    for cell in cells:
        breaches += check_timeline_cell(path, cell, interval, windows)
    return len(cells), breaches


def check_profile(metrics_path, doc, collapsed_path):
    """Validates the prof section + the collapsed file; returns the phase
    count."""
    if "prof" not in doc:
        fail(f"{metrics_path}: missing section 'prof' (run with --profile)")
    prof = doc["prof"]
    for key in ("calibration_ns", "threads", "imbalances", "phases", "alloc"):
        if key not in prof:
            fail(f"{metrics_path}: prof missing {key!r}")
    if prof["calibration_ns"] < 0:
        fail(f"{metrics_path}: negative calibration {prof['calibration_ns']}")
    if prof["threads"] < 1:
        fail(f"{metrics_path}: prof merged {prof['threads']} threads")
    if prof["imbalances"] != 0:
        fail(f"{metrics_path}: {prof['imbalances']} timer-stack imbalances "
             f"in a clean run")
    phases = prof["phases"]
    if not phases:
        fail(f"{metrics_path}: prof recorded no phases")
    by_path = {}
    for phase in phases:
        path = phase.get("path")
        if not path:
            fail(f"{metrics_path}: prof phase without a path: {phase}")
        if path in by_path:
            fail(f"{metrics_path}: duplicate prof phase {path}")
        for key in ("count", "total_ns", "self_ns", "min_ns", "max_ns"):
            if key not in phase or phase[key] < 0:
                fail(f"{metrics_path}: prof phase {path} bad {key!r}")
        if phase["count"] == 0:
            fail(f"{metrics_path}: prof phase {path} has zero count")
        if phase["self_ns"] > phase["total_ns"]:
            fail(f"{metrics_path}: prof phase {path} self > total")
        if phase["min_ns"] > phase["max_ns"]:
            fail(f"{metrics_path}: prof phase {path} min > max")
        by_path[path] = phase
    if sorted(by_path) != [p["path"] for p in phases]:
        fail(f"{metrics_path}: prof phases are not sorted by path")
    for path, phase in by_path.items():
        children_total = sum(
            c["total_ns"] for p, c in by_path.items()
            if p.startswith(path + ";") and ";" not in p[len(path) + 1:])
        expected_self = max(phase["total_ns"] - children_total, 0)
        if phase["self_ns"] != expected_self:
            fail(f"{metrics_path}: prof phase {path} self_ns "
                 f"{phase['self_ns']} != total - direct children "
                 f"({expected_self})")
    seen_sites = set()
    for stat in prof["alloc"]:
        site = stat.get("site")
        if not site or site in seen_sites:
            fail(f"{metrics_path}: bad/duplicate prof alloc site: {stat}")
        seen_sites.add(site)
        if stat.get("count", -1) < 0 or stat.get("bytes", -1) < 0:
            fail(f"{metrics_path}: prof alloc {site} has negative counters")

    with open(collapsed_path) as f:
        lines = f.read().splitlines()
    collapsed = {}
    for line in lines:
        path, _, value = line.rpartition(" ")
        if not path or not value.isdigit():
            fail(f"{collapsed_path}: malformed collapsed line {line!r}")
        collapsed[path] = int(value)
    if list(collapsed) != sorted(collapsed):
        fail(f"{collapsed_path}: collapsed paths are not sorted")
    json_view = {p: ph["self_ns"] for p, ph in by_path.items()}
    if collapsed != json_view:
        fail(f"{collapsed_path}: collapsed stacks disagree with the prof "
             f"section of {metrics_path}")
    return len(phases)


def main():
    argv = sys.argv[1:]
    timeline_path = None
    profile_path = None
    positional = []
    for arg in argv:
        if arg.startswith("--timeline="):
            timeline_path = arg[len("--timeline="):]
        elif arg.startswith("--profile="):
            profile_path = arg[len("--profile="):]
        elif arg.startswith("--"):
            print(__doc__, file=sys.stderr)
            sys.exit(2)
        else:
            positional.append(arg)
    if len(positional) not in (2, 3):
        print(__doc__, file=sys.stderr)
        sys.exit(2)
    trace_stats = check_trace(positional[0])
    counters = check_metrics(positional[1], trace_stats)
    with open(positional[1]) as f:
        metrics_doc = json.load(f)
    ledger_cells = check_ledger(positional[1], metrics_doc)
    cp_jobs = check_critical_path(positional[1], metrics_doc)
    analysis_cells = 0
    if len(positional) == 3:
        analysis_cells = check_analysis(positional[2], ledger_cells)
    timeline_cells = breaches = 0
    if timeline_path:
        timeline_cells, breaches = check_timeline(timeline_path)
    prof_phases = 0
    if profile_path:
        prof_phases = check_profile(positional[1], metrics_doc, profile_path)
    print(f"check_obs_output: OK "
          f"({trace_stats['map_spans']} map spans, "
          f"{trace_stats['provider_instants']} provider decisions, "
          f"{counters['mapred.maps_launched']} maps launched, "
          f"{ledger_cells} ledger cells, {cp_jobs} critical paths, "
          f"{analysis_cells} joined cells, {timeline_cells} timeline "
          f"cells, {breaches} SLO breaches, {prof_phases} prof phases)")


if __name__ == "__main__":
    main()
