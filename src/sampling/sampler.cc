#include "sampling/sampler.h"

namespace dmr::sampling {

SamplingMapper::SamplingMapper(expr::ExprPtr predicate,
                               const expr::Schema* schema, uint64_t k)
    : predicate_(std::move(predicate)), schema_(schema), k_(k) {}

Result<bool> SamplingMapper::Map(const expr::Tuple& row,
                                 std::vector<expr::Tuple>* out) {
  ++records_seen_;
  // Algorithm 1 keeps scanning after the cap but stops emitting; matching
  // is still evaluated so counters reflect the data.
  DMR_ASSIGN_OR_RETURN(bool matches,
                       expr::EvaluatePredicate(*predicate_, *schema_, row));
  if (!matches) return false;
  ++records_matched_;
  if (emitted_ < k_) {
    ++emitted_;
    out->push_back(row);
  }
  return true;
}

SamplingReducer::SamplingReducer(uint64_t k, SampleMode mode, uint64_t seed)
    : k_(k), mode_(mode), rng_(seed ^ 0x5EEDCAFEULL) {}

void SamplingReducer::Add(expr::Tuple value) {
  ++candidates_seen_;
  if (sample_.size() < k_) {
    sample_.push_back(std::move(value));
    return;
  }
  if (mode_ == SampleMode::kReservoir) {
    // Classic reservoir: replace a random slot with probability k / seen.
    uint64_t j = rng_.NextBounded(candidates_seen_);
    if (j < k_) sample_[j] = std::move(value);
  }
  // kFirstK: excess candidates are dropped (Algorithm 2 keeps the first k).
}

std::vector<expr::Tuple> SamplingReducer::Finish() {
  std::vector<expr::Tuple> out = std::move(sample_);
  sample_.clear();
  candidates_seen_ = 0;
  return out;
}

}  // namespace dmr::sampling
