#include "sampling/sampler.h"

namespace dmr::sampling {

SamplingMapper::SamplingMapper(expr::ExprPtr predicate,
                               const expr::Schema* schema, uint64_t k)
    : predicate_(std::move(predicate)), schema_(schema), k_(k) {}

Result<bool> SamplingMapper::Map(const expr::Tuple& row,
                                 std::vector<expr::Tuple>* out) {
  ++records_seen_;
  // Algorithm 1 keeps scanning after the cap but stops emitting; matching
  // is still evaluated so counters reflect the data.
  DMR_ASSIGN_OR_RETURN(bool matches,
                       expr::EvaluatePredicate(*predicate_, *schema_, row));
  if (!matches) return false;
  ++records_matched_;
  if (emitted_ < k_) {
    ++emitted_;
    out->push_back(row);
  }
  return true;
}

void SamplingMapper::MapMatches(uint64_t num_rows,
                                const std::vector<uint32_t>& match_rows,
                                uint32_t partition,
                                std::vector<RowRef>* out) {
  records_seen_ += num_rows;
  records_matched_ += match_rows.size();
  for (uint32_t row : match_rows) {
    if (emitted_ >= k_) break;
    ++emitted_;
    out->push_back(RowRef{partition, row});
  }
}

}  // namespace dmr::sampling
