#ifndef DMR_SAMPLING_SAMPLER_H_
#define DMR_SAMPLING_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "expr/expression.h"

namespace dmr::sampling {

/// \brief Record-level map logic for predicate-based sampling — the paper's
/// Algorithm 1.
///
/// Each map task evaluates the predicate on every record of its partition
/// and emits (k_dummy, record) for matches, stopping after k emissions
/// (every map emits up to k because no other map may find anything).
class SamplingMapper {
 public:
  /// \param predicate  boolean expression over `schema`.
  /// \param k          required sample size.
  SamplingMapper(expr::ExprPtr predicate, const expr::Schema* schema,
                 uint64_t k);

  /// Processes one record; appends to `out` when it is emitted.
  /// Returns whether the record matched the predicate (even if not emitted
  /// because the k cap was reached).
  Result<bool> Map(const expr::Tuple& row, std::vector<expr::Tuple>* out);

  /// Emitted so far by this mapper (<= k).
  uint64_t emitted() const { return emitted_; }
  uint64_t records_seen() const { return records_seen_; }
  uint64_t records_matched() const { return records_matched_; }

 private:
  expr::ExprPtr predicate_;
  const expr::Schema* schema_;
  uint64_t k_;
  uint64_t emitted_ = 0;
  uint64_t records_seen_ = 0;
  uint64_t records_matched_ = 0;
};

/// \brief How the reduce side trims the candidate list to k records.
enum class SampleMode {
  /// Keep the first k values of the list (the paper's Algorithm 2).
  kFirstK,
  /// Keep a uniform random k via reservoir sampling (the paper's footnote:
  /// "One could do a 'random' k instead ... where more randomness is
  /// desired").
  kReservoir,
};

/// \brief Record-level reduce logic — the paper's Algorithm 2. All map
/// outputs share one dummy key, so a single reducer sees the whole
/// candidate list.
class SamplingReducer {
 public:
  SamplingReducer(uint64_t k, SampleMode mode, uint64_t seed = 0);

  /// Streams one candidate value into the reducer.
  void Add(expr::Tuple value);

  /// Returns the final sample (size <= k) and resets the reducer.
  std::vector<expr::Tuple> Finish();

  uint64_t candidates_seen() const { return candidates_seen_; }

 private:
  uint64_t k_;
  SampleMode mode_;
  Rng rng_;
  uint64_t candidates_seen_ = 0;
  std::vector<expr::Tuple> sample_;
};

}  // namespace dmr::sampling

#endif  // DMR_SAMPLING_SAMPLER_H_
