#ifndef DMR_SAMPLING_SAMPLER_H_
#define DMR_SAMPLING_SAMPLER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "common/result.h"
#include "expr/expression.h"

namespace dmr::sampling {

/// \brief A candidate identified by position — (partition id, row index) —
/// instead of a copied tuple. The vectorized path ships these through the
/// shuffle/reduce stages and materializes actual rows only for the final
/// sample.
struct RowRef {
  uint32_t partition = 0;
  uint32_t row = 0;
};

/// \brief Record-level map logic for predicate-based sampling — the paper's
/// Algorithm 1.
///
/// Each map task evaluates the predicate on every record of its partition
/// and emits (k_dummy, record) for matches, stopping after k emissions
/// (every map emits up to k because no other map may find anything).
class SamplingMapper {
 public:
  /// \param predicate  boolean expression over `schema`.
  /// \param k          required sample size.
  SamplingMapper(expr::ExprPtr predicate, const expr::Schema* schema,
                 uint64_t k);

  /// Processes one record; appends to `out` when it is emitted.
  /// Returns whether the record matched the predicate (even if not emitted
  /// because the k cap was reached).
  Result<bool> Map(const expr::Tuple& row, std::vector<expr::Tuple>* out);

  /// Batch form used by the vectorized engine: accounts for `num_rows`
  /// scanned records of which `match_rows` (ascending row indices within
  /// `partition`) satisfied the predicate, and emits the first candidates
  /// up to the k cap as RowRefs. Counter and emission semantics are
  /// identical to calling Map() on every record in order.
  void MapMatches(uint64_t num_rows, const std::vector<uint32_t>& match_rows,
                  uint32_t partition, std::vector<RowRef>* out);

  /// Emitted so far by this mapper (<= k).
  uint64_t emitted() const { return emitted_; }
  uint64_t records_seen() const { return records_seen_; }
  uint64_t records_matched() const { return records_matched_; }

 private:
  expr::ExprPtr predicate_;
  const expr::Schema* schema_;
  uint64_t k_;
  uint64_t emitted_ = 0;
  uint64_t records_seen_ = 0;
  uint64_t records_matched_ = 0;
};

/// \brief How the reduce side trims the candidate list to k records.
enum class SampleMode {
  /// Keep the first k values of the list (the paper's Algorithm 2).
  kFirstK,
  /// Keep a uniform random k via reservoir sampling (the paper's footnote:
  /// "One could do a 'random' k instead ... where more randomness is
  /// desired").
  kReservoir,
};

/// \brief Record-level reduce logic — the paper's Algorithm 2. All map
/// outputs share one dummy key, so a single reducer sees the whole
/// candidate list.
///
/// Generic over the candidate representation: full tuples on the
/// interpreted path, RowRefs on the vectorized path (where sample rows are
/// materialized only after Finish()). Trimming consumes the RNG stream
/// identically for any T, so both paths select the same candidates for the
/// same (seed, candidate order).
template <typename T>
class BasicSamplingReducer {
 public:
  BasicSamplingReducer(uint64_t k, SampleMode mode, uint64_t seed = 0)
      : k_(k), mode_(mode), rng_(seed ^ 0x5EEDCAFEULL) {}

  /// Streams one candidate value into the reducer.
  void Add(T value) {
    ++candidates_seen_;
    if (sample_.size() < k_) {
      sample_.push_back(std::move(value));
      return;
    }
    if (mode_ == SampleMode::kReservoir) {
      // Classic reservoir: replace a random slot with probability k / seen.
      uint64_t j = rng_.NextBounded(candidates_seen_);
      if (j < k_) sample_[j] = std::move(value);
    }
    // kFirstK: excess candidates are dropped (Algorithm 2 keeps first k).
  }

  /// Returns the final sample (size <= k) and resets the reducer.
  std::vector<T> Finish() {
    std::vector<T> out = std::move(sample_);
    sample_.clear();
    candidates_seen_ = 0;
    return out;
  }

  uint64_t candidates_seen() const { return candidates_seen_; }

 private:
  uint64_t k_;
  SampleMode mode_;
  Rng rng_;
  uint64_t candidates_seen_ = 0;
  std::vector<T> sample_;
};

using SamplingReducer = BasicSamplingReducer<expr::Tuple>;
using RefSamplingReducer = BasicSamplingReducer<RowRef>;

}  // namespace dmr::sampling

#endif  // DMR_SAMPLING_SAMPLER_H_
