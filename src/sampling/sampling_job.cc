#include "sampling/sampling_job.h"

#include <algorithm>
#include <memory>

#include "dynamic/sampling_input_provider.h"
#include "mapred/input_splits.h"

namespace dmr::sampling {

mapred::MapOutputModel SamplingMapOutputModel(uint64_t k) {
  return [k](const mapred::InputSplit& split) {
    return std::min<uint64_t>(k, split.num_matching);
  };
}

mapred::MapOutputModel SelectProjectOutputModel() {
  return [](const mapred::InputSplit& split) { return split.num_matching; };
}

Result<mapred::JobSubmission> MakeSamplingJob(
    const dfs::FileInfo& file,
    const std::vector<uint64_t>& matching_per_partition,
    const dynamic::GrowthPolicy& policy, const SamplingJobOptions& options) {
  if (options.sample_size == 0) {
    return Status::InvalidArgument("sample_size must be > 0");
  }
  mapred::JobSubmission submission;
  submission.conf.set_name(options.job_name);
  submission.conf.set_user(options.user);
  submission.conf.set_input_file(file.name);
  submission.conf.set_sample_size(options.sample_size);
  if (!options.predicate_sql.empty()) {
    submission.conf.props().Set(mapred::kPredicateKey, options.predicate_sql);
  }
  submission.conf.props().Set(mapred::kDynamicProviderKey,
                              "dmr::dynamic::SamplingInputProvider");
  policy.Apply(&submission.conf);

  DMR_ASSIGN_OR_RETURN(submission.input,
                       mapred::MakeInputSplits(file, matching_per_partition));
  submission.output_model = SamplingMapOutputModel(options.sample_size);
  submission.input_provider =
      std::make_shared<dynamic::SamplingInputProvider>(policy, options.seed);
  return submission;
}

Result<mapred::JobSubmission> MakeSelectProjectJob(
    const dfs::FileInfo& file,
    const std::vector<uint64_t>& matching_per_partition,
    const std::string& job_name, const std::string& user) {
  mapred::JobSubmission submission;
  submission.conf.set_name(job_name);
  submission.conf.set_user(user);
  submission.conf.set_input_file(file.name);
  submission.conf.set_dynamic_job(false);
  DMR_ASSIGN_OR_RETURN(submission.input,
                       mapred::MakeInputSplits(file, matching_per_partition));
  submission.output_model = SelectProjectOutputModel();
  return submission;
}

}  // namespace dmr::sampling
