#ifndef DMR_SAMPLING_SAMPLING_JOB_H_
#define DMR_SAMPLING_SAMPLING_JOB_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "dfs/file_system.h"
#include "dynamic/growth_policy.h"
#include "mapred/job_client.h"

namespace dmr::sampling {

/// \brief Map-output model for a predicate-based sampling job: each map task
/// emits at most k matching records (Algorithm 1).
mapred::MapOutputModel SamplingMapOutputModel(uint64_t k);

/// \brief Map-output model for an ordinary select-project job: every
/// matching record is emitted.
mapred::MapOutputModel SelectProjectOutputModel();

/// \brief Parameters for building a simulated sampling job.
struct SamplingJobOptions {
  std::string job_name = "sampling";
  std::string user = "default";
  uint64_t sample_size = 10000;
  /// SQL text of the predicate (informational; stored in the JobConf).
  std::string predicate_sql;
  /// Seed for the Input Provider's uniform split draw.
  uint64_t seed = 1;
};

/// \brief Builds a complete dynamic-job submission for predicate-based
/// sampling over `file` under `policy` — what the modified Hive compiler
/// produces for `SELECT ... FROM t WHERE pred LIMIT k` (paper Section IV).
///
/// \param matching_per_partition  ground-truth matching counts (from the
///        dataset's skew profile) used by the simulator's output model.
Result<mapred::JobSubmission> MakeSamplingJob(
    const dfs::FileInfo& file,
    const std::vector<uint64_t>& matching_per_partition,
    const dynamic::GrowthPolicy& policy, const SamplingJobOptions& options);

/// \brief Builds a static (ordinary Hadoop) select-project job over `file` —
/// the paper's Non-Sampling workload class (Section V-E).
Result<mapred::JobSubmission> MakeSelectProjectJob(
    const dfs::FileInfo& file,
    const std::vector<uint64_t>& matching_per_partition,
    const std::string& job_name, const std::string& user);

}  // namespace dmr::sampling

#endif  // DMR_SAMPLING_SAMPLING_JOB_H_
