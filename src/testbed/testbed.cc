#include "testbed/testbed.h"

#include <cstdio>
#include <optional>

#include "common/logging.h"
#include "obs/ledger.h"
#include "obs/timeline.h"

#include "scheduler/fair_scheduler.h"
#include "scheduler/fifo_scheduler.h"

namespace dmr::testbed {

Testbed::Testbed(const cluster::ClusterConfig& config, SchedulerKind kind,
                 double locality_wait, double layout_weight)
    : config_(config) {
  if (obs::Hub::active()) {
    scope_ = obs::MakeClusterScope(obs::Hub::registry(),
                                   obs::Hub::recorder(),
                                   obs::Hub::book(),
                                   obs::Hub::NextCellLabel(),
                                   config_.num_nodes,
                                   config_.map_slots_per_node,
                                   obs::Hub::timeline_book());
    if (obs::TraceStream* trace = scope_->trace()) {
      // Label the per-slot lanes (tid = map slot; the lane after the map
      // slots renders reduce tasks).
      for (int n = 0; n < config_.num_nodes; ++n) {
        for (int s = 0; s < config_.map_slots_per_node; ++s) {
          trace->ThreadName(n, s, "slot" + std::to_string(s));
        }
        trace->ThreadName(n, config_.map_slots_per_node, "reduce");
      }
    }
  }
  obs::Scope* obs = scope_.get();

  cluster_ = std::make_unique<cluster::Cluster>(&sim_, config_);
  if (obs != nullptr) {
    for (int n = 0; n < cluster_->num_nodes(); ++n) {
      cluster_->node(n)->set_obs(obs);
    }
  }
  switch (kind) {
    case SchedulerKind::kFifo:
      scheduler_ = std::make_unique<scheduler::FifoScheduler>();
      break;
    case SchedulerKind::kFair: {
      scheduler::FairSchedulerOptions options;
      options.total_map_slots = config_.total_map_slots();
      options.locality_wait = locality_wait;
      options.layout_weight = layout_weight;
      scheduler_ = std::make_unique<scheduler::FairScheduler>(options);
      break;
    }
  }
  scheduler_->set_obs(obs);
  tracker_ = std::make_unique<mapred::JobTracker>(cluster_.get(),
                                                  scheduler_.get(), obs);
  tracker_->Start();
  client_ = std::make_unique<mapred::JobClient>(tracker_.get());
  monitor_ = std::make_unique<cluster::ClusterMonitor>(cluster_.get());
  fs_ = std::make_unique<dfs::FileSystem>(config_.num_nodes,
                                          config_.disks_per_node);
  fs_->set_obs(obs);
  if (obs != nullptr && obs->timeline() != nullptr) SetupTimeline();
}

void Testbed::SetupTimeline() {
  obs::Timeline* tl = scope_->timeline();

  // Engine-health probes. Every callback reads state that is a pure
  // function of virtual time (queue sizes, arena bytes, slot/job counts),
  // which is what keeps timeline output byte-identical across --threads,
  // --queue and --shuffle-ties (DESIGN.md §15).
  tl->AddProbe("sim.live_size", "events", obs::Timeline::SeriesKind::kGauge,
               [this] { return static_cast<double>(sim_.live_size()); });
  tl->AddProbe("sim.events_fired", "events",
               obs::Timeline::SeriesKind::kCounter,
               [this] { return static_cast<double>(sim_.events_fired()); });
  tl->AddProbe("sim.arena_bytes", "bytes", obs::Timeline::SeriesKind::kGauge,
               // Cross-shard OK: the probe fires from the serial engine's
               // telemetry phase and only reads a counter.
               [this] DMR_CROSS_SHARD_OK {
                 return static_cast<double>(sim_.arena()->bytes_reserved());
               });
  tl->AddProbe("cluster.occupied_map_slots", "slots",
               obs::Timeline::SeriesKind::kGauge, [this] {
                 return static_cast<double>(cluster_->used_map_slots());
               });
  tl->AddProbe("mapred.active_jobs", "jobs",
               obs::Timeline::SeriesKind::kGauge, [this] {
                 return static_cast<double>(tracker_->active_jobs());
               });

  // A permissive default SLO over the windowed job-response p99: a
  // sampling job that takes an hour has gone badly wrong at any paper
  // scale. Drivers layer stricter rules via AddSloRule.
  obs::SloRule rule;
  rule.name = "job_response_p99_1h";
  rule.series = "mapred.job_response";
  rule.window = tl->options().windows.empty() ? 60.0
                                              : tl->options().windows.back();
  rule.quantile = 99.0;
  rule.max_value = 3600.0;
  scope_->slo()->AddRule(rule);

  // kTelemetry, not kBookkeeping: probes read kernel stats (events fired,
  // live queue size) that same-instant bookkeeping handlers perturb; the
  // tick must be totally ordered after them or the sampled values would
  // depend on the tie order within the instant.
  timeline_tick_ = sim_.Schedule(tl->options().interval,
                                 sim::EventClass::kTelemetry,
                                 [this] { TimelineTick(); });
}

void Testbed::TimelineTick() {
  obs::Timeline* tl = scope_->timeline();
  tl->Sample(sim_.Now());
  scope_->slo()->Evaluate(sim_.Now());
  timeline_tick_ = sim_.Schedule(tl->options().interval,
                                 sim::EventClass::kTelemetry,
                                 [this] { TimelineTick(); });
}

int Testbed::AddSloRule(const obs::SloRule& rule) {
  if (scope_ == nullptr || scope_->slo() == nullptr) return -1;
  return scope_->slo()->AddRule(rule);
}

Testbed::~Testbed() {
  monitor_->Stop();
  timeline_tick_.Cancel();
  if (scope_ != nullptr) {
    // Export the kernel's tie-race totals: under --shuffle-ties these must
    // not move across seeds (tie groups are a property of the schedule,
    // not of the order chosen within a group).
    const sim::TieStats ties = sim_.tie_stats();
    scope_->Count(scope_->m().sim_tie_groups,
                  static_cast<int64_t>(ties.groups));
    scope_->Count(scope_->m().sim_tie_events,
                  static_cast<int64_t>(ties.tied_events));
    if (obs::Ledger* ledger = scope_->ledger()) ledger->Seal(sim_.Now());
    if (obs::Timeline* tl = scope_->timeline()) tl->Seal(sim_.Now());
  }
}

void Testbed::Annotate(std::string_view key, std::string_view value) {
  if (scope_ != nullptr) scope_->Annotate(key, value);
}

void Testbed::Annotate(std::string_view key, int64_t value) {
  Annotate(key, std::to_string(value));
}

void Testbed::Annotate(std::string_view key, double value) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%g", value);
  Annotate(key, buf);
}

Result<mapred::JobStats> Testbed::RunJobToCompletion(
    mapred::JobSubmission submission, double timeout) {
  std::optional<mapred::JobStats> stats;
  DMR_ASSIGN_OR_RETURN(
      int job_id,
      client_->Submit(std::move(submission),
                      [&stats](const mapred::JobStats& s) { stats = s; }));
  (void)job_id;
  double deadline = sim_.Now() + timeout;
  while (!stats.has_value() && sim_.Now() < deadline) {
    sim_.RunUntil(std::min(deadline, sim_.Now() + 600.0));
    // The tracker's per-node heartbeat chains must keep the simulation
    // alive until the job calls back; a drained queue here means the job
    // can never complete. live_size() is the right gauge — queue_size()
    // also counts lazily-cancelled tombstones awaiting a batched purge.
    DMR_CHECK_GT(sim_.live_size(), 0u)
        << "event queue drained with job still incomplete";
  }
  if (!stats.has_value()) {
    return Status::Internal("job did not complete within " +
                            std::to_string(timeout) + " virtual seconds");
  }
  return *stats;
}

namespace {

obs::Report::SeriesStats DigestSeries(const std::string& name,
                                      const std::string& unit,
                                      const TimeSeries& series) {
  obs::Report::SeriesStats stats;
  stats.name = name;
  stats.unit = unit;
  stats.count = series.size();
  stats.mean = series.Mean();
  stats.min = series.Min();
  stats.max = series.Max();
  stats.p50 = series.Percentile(50.0);
  stats.p95 = series.Percentile(95.0);
  stats.p99 = series.Percentile(99.0);
  return stats;
}

}  // namespace

void Testbed::AppendToReport(obs::Report* report) const {
  report->AddSeries(
      DigestSeries("cluster.cpu", "%", monitor_->cpu_percent()));
  report->AddSeries(
      DigestSeries("cluster.disk_read", "KB/s", monitor_->disk_read_kbs()));
  report->AddSeries(DigestSeries("cluster.slot_occupancy", "%",
                                 monitor_->slot_occupancy_percent()));
  report->AddJsonSection("job_history", tracker_->history().ToJson());
}

Result<Dataset> MakeLineItemDataset(dfs::FileSystem* fs, int scale, double z,
                                    uint64_t seed, const std::string& tag) {
  Dataset dataset;
  DMR_ASSIGN_OR_RETURN(dataset.properties, tpch::PropertiesForScale(scale));
  dataset.zipf_z = z;

  std::string name = dataset.properties.file_name();
  if (!tag.empty()) name += "_" + tag;
  DMR_ASSIGN_OR_RETURN(
      dataset.file,
      fs->CreateFile(name, dataset.properties.num_partitions,
                     tpch::kRecordsPerPartition, tpch::kLineItemRecordBytes));

  tpch::SkewSpec spec;
  spec.num_partitions = dataset.properties.num_partitions;
  spec.records_per_partition = tpch::kRecordsPerPartition;
  spec.selectivity = tpch::kPaperSelectivity;
  spec.zipf_z = z;
  spec.seed = seed;
  DMR_ASSIGN_OR_RETURN(dataset.matching_per_partition,
                       tpch::AssignMatchingRecords(spec));
  return dataset;
}

}  // namespace dmr::testbed
