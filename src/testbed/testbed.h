#ifndef DMR_TESTBED_TESTBED_H_
#define DMR_TESTBED_TESTBED_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/cluster_monitor.h"
#include "common/result.h"
#include "dfs/file_system.h"
#include "dynamic/growth_policy.h"
#include "mapred/job_client.h"
#include "mapred/job_tracker.h"
#include "obs/report.h"
#include "obs/scope.h"
#include "obs/slo.h"
#include "sim/simulation.h"
#include "tpch/dataset_catalog.h"
#include "tpch/skew_model.h"

namespace dmr::testbed {

/// \brief Which TaskScheduler the testbed installs.
enum class SchedulerKind { kFifo, kFair };

/// \brief A ready-to-use simulated cluster: simulation kernel, cluster,
/// scheduler, JobTracker (started), JobClient, monitor and DFS. This is the
/// shared fixture for the examples and the per-figure benchmark harnesses.
class Testbed {
 public:
  /// \param locality_wait  Fair-scheduler delay-scheduling wait (ignored
  ///        for FIFO).
  /// \param layout_weight  Fair-scheduler weight of replica-layout quality
  ///        against locality when ranking candidate (node, split) pairs
  ///        (0 = pure locality, the paper's behaviour; ignored for FIFO).
  ///
  /// Observability: when the process-global obs::Hub is active (bench
  /// drivers install it for --trace/--metrics), the testbed automatically
  /// creates a per-cell Scope over the hub's registry/recorder and attaches
  /// it to every layer (tracker, scheduler, nodes, DFS). Without an active
  /// hub nothing is attached and the simulation runs obs-free.
  explicit Testbed(const cluster::ClusterConfig& config,
                   SchedulerKind scheduler = SchedulerKind::kFifo,
                   double locality_wait = 5.0, double layout_weight = 0.0);
  ~Testbed();

  Testbed(const Testbed&) = delete;
  Testbed& operator=(const Testbed&) = delete;

  sim::Simulation& sim() { return sim_; }
  cluster::Cluster& cluster() { return *cluster_; }
  mapred::JobTracker& tracker() { return *tracker_; }
  mapred::JobClient& client() { return *client_; }
  cluster::ClusterMonitor& monitor() { return *monitor_; }
  dfs::FileSystem& fs() { return *fs_; }
  const cluster::ClusterConfig& config() const { return config_; }

  /// Submits one job and runs the simulation until it completes (bounded by
  /// `timeout` virtual seconds).
  Result<mapred::JobStats> RunJobToCompletion(
      mapred::JobSubmission submission, double timeout = 48.0 * 3600);

  /// The cell's observability scope (null when the hub was inactive at
  /// construction).
  obs::Scope* obs() { return scope_.get(); }

  /// Tags this cell's ledger/critical-path records with a driver-provided
  /// annotation ("policy", "z", "repeat", ...). dmr-analyze joins cells
  /// across runs by these keys; they also give the report a stable cell
  /// order under --threads=N. No-op without an active ledger book.
  void Annotate(std::string_view key, std::string_view value);
  void Annotate(std::string_view key, int64_t value);
  void Annotate(std::string_view key, double value);

  /// Appends this cell's resource series (cpu / disk-read / slot-occupancy
  /// digests with p50/p95/p99) and its job-history timeline to `report`.
  void AppendToReport(obs::Report* report) const;

  /// Adds one SLO rule to this cell's monitor (no-op when no timeline
  /// cell is attached). Returns the rule index, or -1.
  int AddSloRule(const obs::SloRule& rule);

 private:
  /// Registers the engine-health probes and arms the recurring
  /// kBookkeeping sampling tick. Only called when a timeline is attached.
  void SetupTimeline();
  void TimelineTick();

  sim::Simulation sim_;
  std::unique_ptr<obs::Scope> scope_;
  cluster::ClusterConfig config_;
  std::unique_ptr<cluster::Cluster> cluster_;
  std::unique_ptr<mapred::TaskScheduler> scheduler_;
  std::unique_ptr<mapred::JobTracker> tracker_;
  std::unique_ptr<mapred::JobClient> client_;
  std::unique_ptr<cluster::ClusterMonitor> monitor_;
  std::unique_ptr<dfs::FileSystem> fs_;
  sim::EventHandle timeline_tick_;
};

/// \brief A generated LINEITEM dataset registered in a testbed's DFS:
/// file metadata plus the ground-truth matching counts for its predicate.
struct Dataset {
  dfs::FileInfo file;
  std::vector<uint64_t> matching_per_partition;
  tpch::DatasetProperties properties;
  double zipf_z = 0.0;
};

/// \brief Creates (and registers in `fs`) a LINEITEM dataset at `scale` with
/// skew `z`; `tag` disambiguates multiple copies (the paper's multi-user
/// runs give each user their own copy of the 100x data).
Result<Dataset> MakeLineItemDataset(dfs::FileSystem* fs, int scale, double z,
                                    uint64_t seed,
                                    const std::string& tag = "");

}  // namespace dmr::testbed

#endif  // DMR_TESTBED_TESTBED_H_
