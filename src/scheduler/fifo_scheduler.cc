#include "scheduler/fifo_scheduler.h"

namespace dmr::scheduler {

using mapred::Job;
using mapred::MapAssignment;

std::vector<MapAssignment> FifoScheduler::AssignMapTasks(
    const std::vector<Job*>& running_jobs, int node_id, int free_slots,
    double now) {
  (void)now;
  std::vector<MapAssignment> assignments;
  for (int slot = 0; slot < free_slots; ++slot) {
    MapAssignment picked;
    for (Job* job : running_jobs) {
      if (!job->HasPendingSplits()) continue;
      if (auto local = job->TakeLocalPending(node_id)) {
        picked = {job, *local, true};
      } else {
        auto any = job->TakeAnyPending();
        picked = {job, *any, any->IsLocalTo(node_id)};
      }
      break;
    }
    if (picked.job == nullptr) break;
    assignments.push_back(std::move(picked));
  }
  if (obs_ != nullptr) {
    obs_->Count(obs_->m().sched_decisions,
                static_cast<int64_t>(assignments.size()));
  }
  return assignments;
}

}  // namespace dmr::scheduler
