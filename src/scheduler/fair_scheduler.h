#ifndef DMR_SCHEDULER_FAIR_SCHEDULER_H_
#define DMR_SCHEDULER_FAIR_SCHEDULER_H_

#include <string>
#include <vector>

#include "mapred/task_scheduler.h"

namespace dmr::scheduler {

/// \brief Configuration for the fair scheduler.
struct FairSchedulerOptions {
  /// Total map slots in the cluster (used to compute pool fair shares).
  int total_map_slots = 40;
  /// Delay-scheduling locality wait: a job with only non-local pending work
  /// is skipped until it has waited this long (seconds). 0 disables delay
  /// scheduling.
  double locality_wait = 5.0;
  /// Hadoop 0.20's Fair Scheduler launched at most one map task per
  /// TaskTracker heartbeat (mapred.fairscheduler.assignmultiple=false by
  /// default); this throttling is what drives the low slot occupancy the
  /// paper measures in Section V-F. Set true to fill all free slots.
  bool assign_multiple = false;
  /// Strict fair sharing: when the most-starved pool's head job is waiting
  /// for locality, the slot is held idle rather than offered to less
  /// deserving jobs. This is the occupancy-for-locality trade the paper
  /// observes (88 % locality at 18 % occupancy). false = skip to the next
  /// job instead.
  bool strict_delay = true;
  /// Layout-aware scheduling weight in [0, 1] (DESIGN.md §16). 0 keeps
  /// the classic layout-blind delay scheduler. When > 0 the scheduler
  /// (a) prefers the best-layout local pending split over FIFO order, and
  /// (b) shortens a job's locality wait by weight * quality/2 of its best
  /// pending replica layout — an indexed remote copy reads so little
  /// that waiting for a row-layout local copy stops paying (Dittrich et
  /// al., per-replica layouts).
  double layout_weight = 0.0;
};

/// \brief A fair-share scheduler with delay scheduling — modeled after the
/// Hadoop Fair Scheduler developed at U.C. Berkeley and Facebook that the
/// paper evaluates in Section V-F.
///
/// Jobs are grouped into per-user pools. Pools are served most-starved
/// first (running tasks relative to the pool's fair share); within a pool
/// jobs run in submission order. A job whose pending work is not local to
/// the heartbeating node is skipped until it has waited `locality_wait`
/// seconds, trading slot occupancy for data locality — exactly the
/// behaviour whose locality/occupancy trade-off the paper measures.
class FairScheduler : public mapred::TaskScheduler {
 public:
  explicit FairScheduler(FairSchedulerOptions options)
      : options_(options) {}

  std::string name() const override { return "Fair"; }

  std::vector<mapred::MapAssignment> AssignMapTasks(
      const std::vector<mapred::Job*>& running_jobs, int node_id,
      int free_slots, double now) override;

  const FairSchedulerOptions& options() const { return options_; }

 private:
  FairSchedulerOptions options_;
};

}  // namespace dmr::scheduler

#endif  // DMR_SCHEDULER_FAIR_SCHEDULER_H_
