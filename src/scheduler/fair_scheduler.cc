#include "scheduler/fair_scheduler.h"

#include <algorithm>
#include <map>

#include "obs/ledger.h"

namespace dmr::scheduler {

using mapred::Job;
using mapred::MapAssignment;

namespace {

struct Pool {
  std::string user;
  std::vector<Job*> jobs;  // submission order
  int running = 0;

  bool HasDemand() const {
    for (Job* j : jobs) {
      if (j->HasPendingSplits()) return true;
    }
    return false;
  }
};

}  // namespace

std::vector<MapAssignment> FairScheduler::AssignMapTasks(
    const std::vector<Job*>& running_jobs, int node_id, int free_slots,
    double now) {
  std::vector<MapAssignment> assignments;

  // Group jobs into per-user pools (stable submission order within a pool).
  std::vector<Pool> pools;
  std::map<std::string, size_t> pool_index;
  for (Job* job : running_jobs) {
    std::string user = job->conf().user();
    auto it = pool_index.find(user);
    if (it == pool_index.end()) {
      pool_index[user] = pools.size();
      pools.push_back(Pool{user, {}, 0});
      it = pool_index.find(user);
    }
    Pool& pool = pools[it->second];
    pool.jobs.push_back(job);
    pool.running += job->maps_running();
  }
  if (pools.empty()) return assignments;

  int assignable = options_.assign_multiple ? free_slots
                                            : std::min(free_slots, 1);
  for (int slot = 0; slot < assignable; ++slot) {
    // Fair share: equal division among pools that still have demand.
    int demanding = 0;
    for (const Pool& p : pools) {
      if (p.HasDemand()) ++demanding;
    }
    if (demanding == 0) break;
    double share = static_cast<double>(options_.total_map_slots) /
                   static_cast<double>(demanding);

    // Serve the most starved demanding pool first.
    std::vector<Pool*> order;
    for (Pool& p : pools) {
      if (p.HasDemand()) order.push_back(&p);
    }
    std::stable_sort(order.begin(), order.end(),
                     [share](const Pool* a, const Pool* b) {
                       return static_cast<double>(a->running) / share <
                              static_cast<double>(b->running) / share;
                     });

    bool assigned = false;
    bool held = false;
    for (Pool* pool : order) {
      const bool layout_aware = options_.layout_weight > 0.0;
      for (Job* job : pool->jobs) {
        if (!job->HasPendingSplits()) continue;
        auto local = layout_aware ? job->TakeBestLayoutPending(node_id)
                                  : job->TakeLocalPending(node_id);
        if (local) {
          assignments.push_back({job, *local, true});
          job->delay_waiting = false;
          pool->running += 1;
          assigned = true;
          break;
        }
        // Delay scheduling: make the job wait for a local opportunity
        // before allowing a remote launch. With layout awareness the wait
        // shrinks when a good remote layout is pending: quality 2
        // (indexed) at weight 1 waives the wait entirely.
        double wait = options_.locality_wait;
        if (layout_aware && wait > 0.0) {
          int quality = job->BestPendingLayoutQuality(-1);
          if (quality > 0) {
            wait *= std::max(0.0, 1.0 - options_.layout_weight *
                                            static_cast<double>(quality) /
                                            2.0);
          }
        }
        if (wait > 0.0) {
          bool still_waiting = false;
          if (!job->delay_waiting) {
            job->delay_waiting = true;
            job->delay_wait_start = now;
            still_waiting = true;
          } else if (now - job->delay_wait_start < wait) {
            still_waiting = true;
          }
          if (still_waiting) {
            if (options_.strict_delay) {
              // Strict fairness: hold the slot for the deserving job.
              if (obs_ != nullptr) {
                obs_->Count(obs_->m().sched_delay_holds);
                if (obs::Ledger* ledger = obs_->ledger()) {
                  ledger->OnDelayHold();
                }
              }
              held = true;
              break;
            }
            if (obs_ != nullptr) obs_->Count(obs_->m().sched_delay_skips);
            continue;  // skip to the next job
          }
        }
        auto any = layout_aware ? job->TakeBestLayoutPending(-1)
                                : job->TakeAnyPending();
        if (!any) continue;
        assignments.push_back({job, *any, any->IsLocalTo(node_id)});
        job->delay_waiting = false;
        pool->running += 1;
        assigned = true;
        break;
      }
      if (assigned || held) break;
    }
    if (!assigned) break;  // slot held or nothing assignable right now
  }
  if (obs_ != nullptr) {
    obs_->Count(obs_->m().sched_decisions,
                static_cast<int64_t>(assignments.size()));
  }
  return assignments;
}

}  // namespace dmr::scheduler
