#ifndef DMR_SCHEDULER_FIFO_SCHEDULER_H_
#define DMR_SCHEDULER_FIFO_SCHEDULER_H_

#include <string>
#include <vector>

#include "mapred/task_scheduler.h"

namespace dmr::scheduler {

/// \brief Hadoop 0.20's default scheduler: jobs are served strictly in
/// submission order; for the head job with pending work the scheduler
/// prefers a node-local split and otherwise launches a remote one
/// immediately (no locality wait).
class FifoScheduler : public mapred::TaskScheduler {
 public:
  std::string name() const override { return "FIFO"; }

  std::vector<mapred::MapAssignment> AssignMapTasks(
      const std::vector<mapred::Job*>& running_jobs, int node_id,
      int free_slots, double now) override;
};

}  // namespace dmr::scheduler

#endif  // DMR_SCHEDULER_FIFO_SCHEDULER_H_
