#include "dynamic/grab_limit_expr.h"

#include <cctype>
#include <cmath>
#include <functional>
#include <limits>
#include <vector>

#include "common/strings.h"

namespace dmr::dynamic {

/// Expression tree node: a small closure-based interpreter.
class GrabLimitExpr::Node {
 public:
  using EvalFn = std::function<double(const SlotVars&)>;
  explicit Node(EvalFn fn) : fn_(std::move(fn)) {}
  double Eval(const SlotVars& vars) const { return fn_(vars); }

 private:
  EvalFn fn_;
};

namespace {

using NodePtr = std::shared_ptr<const GrabLimitExpr::Node>;

NodePtr MakeNode(GrabLimitExpr::Node::EvalFn fn) {
  return std::make_shared<const GrabLimitExpr::Node>(std::move(fn));
}

struct Token {
  enum class Kind {
    kNumber,
    kIdent,
    kOp,  // one of: ? : , ( ) + - * / < <= > >= == !=
    kEnd,
  };
  Kind kind = Kind::kEnd;
  double number = 0.0;
  std::string text;
  size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& input) : input_(input) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> tokens;
    size_t i = 0;
    while (i < input_.size()) {
      char c = input_[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      Token tok;
      tok.pos = i;
      if (std::isdigit(static_cast<unsigned char>(c)) || c == '.') {
        size_t start = i;
        while (i < input_.size() &&
               (std::isdigit(static_cast<unsigned char>(input_[i])) ||
                input_[i] == '.')) {
          ++i;
        }
        std::string num = input_.substr(start, i - start);
        double value;
        if (!ParseDouble(num, &value)) {
          return Status::ParseError("bad number '" + num + "' at position " +
                                    std::to_string(start));
        }
        tok.kind = Token::Kind::kNumber;
        tok.number = value;
      } else if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = i;
        while (i < input_.size() &&
               (std::isalnum(static_cast<unsigned char>(input_[i])) ||
                input_[i] == '_')) {
          ++i;
        }
        tok.kind = Token::Kind::kIdent;
        tok.text = input_.substr(start, i - start);
      } else {
        static const char* kTwoChar[] = {"<=", ">=", "==", "!="};
        tok.kind = Token::Kind::kOp;
        bool matched = false;
        for (const char* op : kTwoChar) {
          if (input_.compare(i, 2, op) == 0) {
            tok.text = op;
            i += 2;
            matched = true;
            break;
          }
        }
        if (!matched) {
          if (std::string("?:,()+-*/<>").find(c) == std::string::npos) {
            return Status::ParseError(std::string("unexpected character '") +
                                      c + "' at position " +
                                      std::to_string(i));
          }
          tok.text = std::string(1, c);
          ++i;
        }
      }
      tokens.push_back(std::move(tok));
    }
    Token end;
    end.kind = Token::Kind::kEnd;
    end.pos = input_.size();
    tokens.push_back(end);
    return tokens;
  }

 private:
  const std::string& input_;
};

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<NodePtr> Parse() {
    DMR_ASSIGN_OR_RETURN(NodePtr root, ParseTernary());
    if (Peek().kind != Token::Kind::kEnd) {
      return Status::ParseError("trailing input at position " +
                                std::to_string(Peek().pos));
    }
    return root;
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  Token Take() { return tokens_[index_++]; }

  bool TakeOp(const char* op) {
    if (Peek().kind == Token::Kind::kOp && Peek().text == op) {
      ++index_;
      return true;
    }
    return false;
  }

  Result<NodePtr> ParseTernary() {
    DMR_ASSIGN_OR_RETURN(NodePtr cond, ParseOr());
    if (!TakeOp("?")) return cond;
    DMR_ASSIGN_OR_RETURN(NodePtr then_node, ParseTernary());
    if (!TakeOp(":")) {
      return Status::ParseError("expected ':' at position " +
                                std::to_string(Peek().pos));
    }
    DMR_ASSIGN_OR_RETURN(NodePtr else_node, ParseTernary());
    return MakeNode([cond, then_node, else_node](const SlotVars& v) {
      return cond->Eval(v) != 0.0 ? then_node->Eval(v) : else_node->Eval(v);
    });
  }

  Result<NodePtr> ParseOr() {
    DMR_ASSIGN_OR_RETURN(NodePtr left, ParseAnd());
    while (PeekKeyword("or")) {
      ++index_;
      DMR_ASSIGN_OR_RETURN(NodePtr right, ParseAnd());
      NodePtr prev = left;
      left = MakeNode([prev, right](const SlotVars& v) {
        return (prev->Eval(v) != 0.0 || right->Eval(v) != 0.0) ? 1.0 : 0.0;
      });
    }
    return left;
  }

  Result<NodePtr> ParseAnd() {
    DMR_ASSIGN_OR_RETURN(NodePtr left, ParseCmp());
    while (PeekKeyword("and")) {
      ++index_;
      DMR_ASSIGN_OR_RETURN(NodePtr right, ParseCmp());
      NodePtr prev = left;
      left = MakeNode([prev, right](const SlotVars& v) {
        return (prev->Eval(v) != 0.0 && right->Eval(v) != 0.0) ? 1.0 : 0.0;
      });
    }
    return left;
  }

  bool PeekKeyword(const char* kw) const {
    return Peek().kind == Token::Kind::kIdent &&
           EqualsIgnoreCase(Peek().text, kw);
  }

  Result<NodePtr> ParseCmp() {
    DMR_ASSIGN_OR_RETURN(NodePtr left, ParseAdd());
    static const char* kCmps[] = {"<=", ">=", "==", "!=", "<", ">"};
    for (const char* op : kCmps) {
      if (TakeOp(op)) {
        DMR_ASSIGN_OR_RETURN(NodePtr right, ParseAdd());
        std::string o = op;
        NodePtr prev = left;
        return MakeNode([prev, right, o](const SlotVars& v) {
          double a = prev->Eval(v);
          double b = right->Eval(v);
          bool r = o == "<"    ? a < b
                   : o == "<=" ? a <= b
                   : o == ">"  ? a > b
                   : o == ">=" ? a >= b
                   : o == "==" ? a == b
                                : a != b;
          return r ? 1.0 : 0.0;
        });
      }
    }
    return left;
  }

  Result<NodePtr> ParseAdd() {
    DMR_ASSIGN_OR_RETURN(NodePtr left, ParseMul());
    for (;;) {
      bool plus = false;
      if (TakeOp("+")) {
        plus = true;
      } else if (!TakeOp("-")) {
        return left;
      }
      DMR_ASSIGN_OR_RETURN(NodePtr right, ParseMul());
      NodePtr prev = left;
      left = MakeNode([prev, right, plus](const SlotVars& v) {
        return plus ? prev->Eval(v) + right->Eval(v)
                    : prev->Eval(v) - right->Eval(v);
      });
    }
  }

  Result<NodePtr> ParseMul() {
    DMR_ASSIGN_OR_RETURN(NodePtr left, ParseUnary());
    for (;;) {
      bool mul = false;
      if (TakeOp("*")) {
        mul = true;
      } else if (!TakeOp("/")) {
        return left;
      }
      DMR_ASSIGN_OR_RETURN(NodePtr right, ParseUnary());
      NodePtr prev = left;
      left = MakeNode([prev, right, mul](const SlotVars& v) {
        double b = right->Eval(v);
        if (mul) return prev->Eval(v) * b;
        return b == 0.0 ? std::numeric_limits<double>::infinity()
                        : prev->Eval(v) / b;
      });
    }
  }

  Result<NodePtr> ParseUnary() {
    if (TakeOp("-")) {
      DMR_ASSIGN_OR_RETURN(NodePtr operand, ParseUnary());
      return MakeNode(
          [operand](const SlotVars& v) { return -operand->Eval(v); });
    }
    return ParsePrimary();
  }

  Result<NodePtr> ParsePrimary() {
    const Token& tok = Peek();
    if (tok.kind == Token::Kind::kNumber) {
      double value = Take().number;
      return MakeNode([value](const SlotVars&) { return value; });
    }
    if (tok.kind == Token::Kind::kIdent) {
      std::string name = Take().text;
      if (EqualsIgnoreCase(name, "AS")) {
        return MakeNode(
            [](const SlotVars& v) { return v.available_slots; });
      }
      if (EqualsIgnoreCase(name, "TS")) {
        return MakeNode([](const SlotVars& v) { return v.total_slots; });
      }
      if (EqualsIgnoreCase(name, "INF") ||
          EqualsIgnoreCase(name, "INFINITY")) {
        return MakeNode([](const SlotVars&) {
          return std::numeric_limits<double>::infinity();
        });
      }
      if (EqualsIgnoreCase(name, "max") || EqualsIgnoreCase(name, "min")) {
        bool is_max = EqualsIgnoreCase(name, "max");
        if (!TakeOp("(")) {
          return Status::ParseError("expected '(' after " + name);
        }
        DMR_ASSIGN_OR_RETURN(NodePtr a, ParseTernary());
        if (!TakeOp(",")) {
          return Status::ParseError("expected ',' in " + name + "()");
        }
        DMR_ASSIGN_OR_RETURN(NodePtr b, ParseTernary());
        if (!TakeOp(")")) {
          return Status::ParseError("expected ')' to close " + name + "()");
        }
        return MakeNode([a, b, is_max](const SlotVars& v) {
          double x = a->Eval(v);
          double y = b->Eval(v);
          return is_max ? std::max(x, y) : std::min(x, y);
        });
      }
      return Status::ParseError("unknown identifier '" + name +
                                "' (expected AS, TS, INF, max, min)");
    }
    if (TakeOp("(")) {
      DMR_ASSIGN_OR_RETURN(NodePtr inner, ParseTernary());
      if (!TakeOp(")")) {
        return Status::ParseError("expected ')' at position " +
                                  std::to_string(Peek().pos));
      }
      return inner;
    }
    return Status::ParseError("unexpected token at position " +
                              std::to_string(tok.pos));
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

Result<GrabLimitExpr> GrabLimitExpr::Parse(const std::string& text) {
  Lexer lexer(text);
  DMR_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  Parser parser(std::move(tokens));
  DMR_ASSIGN_OR_RETURN(NodePtr root, parser.Parse());
  return GrabLimitExpr(text, std::move(root));
}

double GrabLimitExpr::Evaluate(const SlotVars& vars) const {
  return root_->Eval(vars);
}

}  // namespace dmr::dynamic
