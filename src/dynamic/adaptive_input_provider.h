#ifndef DMR_DYNAMIC_ADAPTIVE_INPUT_PROVIDER_H_
#define DMR_DYNAMIC_ADAPTIVE_INPUT_PROVIDER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "mapred/input_provider.h"

namespace dmr::dynamic {

/// \brief An Input Provider that re-tunes its own aggressiveness at every
/// evaluation — the paper's future-work proposal ("a more flexible model
/// wherein a job could decide and change the policy at runtime, based on
/// the discovered characteristics of the input data together with the
/// existing load on the cluster", Section VII).
///
/// Two runtime signals drive the choice:
///
///  1. **Cluster load.** The grab limit scales as AS^2 / TS: on an idle
///     cluster this is AS (HA-like), at 50 % occupancy 0.5*AS (MA-like),
///     at 90 % occupancy 0.1*AS (C-like) — a smooth sweep over the paper's
///     Table I spectrum.
///  2. **Observed skew.** The provider tracks the per-evaluation yield of
///     completed maps and computes a coefficient of variation. High
///     variance means the selectivity estimate is unreliable (skewed
///     placement of matching records), so the records-needed projection is
///     inflated by (1 + CV) — the adaptive analogue of the paper's finding
///     that aggressive intake is what overcomes skew.
class AdaptiveInputProvider : public mapred::InputProvider {
 public:
  struct Options {
    /// Safety-factor cap applied to the skew inflation term.
    double max_skew_inflation = 3.0;
    /// Lower bound on the load-scaled grab (keeps starved jobs alive).
    int64_t min_grab = 1;
    /// Per-split stats hints (DESIGN.md §16): deterministic cheapest-first
    /// grab and per-split yield projection, as in
    /// SamplingInputProvider::Options::use_split_hints.
    bool use_split_hints = false;
  };

  AdaptiveInputProvider(uint64_t seed, Options options);
  explicit AdaptiveInputProvider(uint64_t seed);

  Status Initialize(const std::vector<mapred::InputSplit>& all_splits,
                    const mapred::JobConf& conf) override;

  mapred::InputResponse GetInitialInput(
      const mapred::ClusterStatus& cluster) override;

  mapred::InputResponse Evaluate(const mapred::JobProgress& progress,
                                 const mapred::ClusterStatus& cluster) override;

  /// Latest skew signal: coefficient of variation of per-evaluation map
  /// yields (0 until two evaluations have data).
  double observed_skew_cv() const { return skew_cv_; }

  /// The grab limit the provider derived at the last evaluation.
  int64_t last_grab_limit() const { return last_grab_limit_; }

  int remaining_splits() const {
    return static_cast<int>(unprocessed_.size());
  }

 private:
  /// The decision logic proper; Evaluate wraps it to attach the decision
  /// diagnostics (skew CV, grab limit) to the response.
  mapred::InputResponse EvaluateImpl(const mapred::JobProgress& progress,
                                     const mapred::ClusterStatus& cluster);

  /// Load-adaptive grab limit: AS^2 / TS, floored at options_.min_grab.
  int64_t LoadScaledGrab(const mapred::ClusterStatus& cluster) const;

  std::vector<mapred::InputSplit> DrawSplits(int64_t count);

  Options options_;
  Rng rng_;
  uint64_t sample_size_ = 0;
  std::vector<mapred::InputSplit> unprocessed_;
  bool initialized_ = false;

  // Per-evaluation yield history for the skew signal.
  int last_maps_completed_ = 0;
  uint64_t last_output_records_ = 0;
  std::vector<double> yields_;  // matches per completed map, per interval
  double skew_cv_ = 0.0;
  int64_t last_grab_limit_ = 0;
};

}  // namespace dmr::dynamic

#endif  // DMR_DYNAMIC_ADAPTIVE_INPUT_PROVIDER_H_
