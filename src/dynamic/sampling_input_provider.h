#ifndef DMR_DYNAMIC_SAMPLING_INPUT_PROVIDER_H_
#define DMR_DYNAMIC_SAMPLING_INPUT_PROVIDER_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "dynamic/growth_policy.h"
#include "mapred/input_provider.h"

namespace dmr::dynamic {

/// \brief The Input Provider for predicate-based sampling (paper Section IV).
///
/// Behaviour at each evaluation:
///  1. If completed maps already produced >= k output records: end-of-input.
///  2. Otherwise estimate the predicate selectivity sigma = matched /
///     processed from the finished maps' counters, project the expected
///     output of the in-flight ("pending") input, and:
///     - if matched + expected(pending) >= k: "no input available"
///       (wait and see);
///     - else compute the records still needed, convert to a split count via
///       the estimated records-per-split, clamp by the policy's GrabLimit,
///       and return that many splits drawn uniformly at random from the
///       unprocessed partitions (randomness of the final sample comes from
///       this uniform draw, Section IV).
///  3. When nothing has matched yet (sigma estimate is 0), it grows blindly
///     by the GrabLimit.
///  4. When every partition has been handed to the job: end-of-input (the
///     job must finish with whatever it found).
class SamplingInputProvider : public mapred::InputProvider {
 public:
  struct Options {
    /// When false, the provider grows blindly by the GrabLimit whenever the
    /// job is starved, ignoring the selectivity estimate (ablation knob;
    /// the paper's provider always estimates).
    bool use_selectivity_estimation = true;
    /// Per-split stats hints (DESIGN.md §16): replace the uniform draw
    /// with a deterministic cheapest-first grab (ascending scan_fraction)
    /// and project expected yield per split from hint_selectivity where
    /// known instead of the single global estimate. This draws a
    /// *different* (still deterministic) sample than the uniform mode, so
    /// pruned-vs-unpruned digest comparisons must hold it fixed.
    bool use_split_hints = false;
  };

  /// \param policy  growth policy whose GrabLimit bounds each intake.
  /// \param seed    seed for the uniform split draw.
  SamplingInputProvider(GrowthPolicy policy, uint64_t seed);
  SamplingInputProvider(GrowthPolicy policy, uint64_t seed, Options options);

  Status Initialize(const std::vector<mapred::InputSplit>& all_splits,
                    const mapred::JobConf& conf) override;

  mapred::InputResponse GetInitialInput(
      const mapred::ClusterStatus& cluster) override;

  mapred::InputResponse Evaluate(const mapred::JobProgress& progress,
                                 const mapred::ClusterStatus& cluster) override;

  /// Latest selectivity estimate (for tests/diagnostics); -1 before any
  /// completed map.
  double estimated_selectivity() const { return estimated_selectivity_; }

  int remaining_splits() const {
    return static_cast<int>(unprocessed_.size());
  }

 private:
  /// The decision logic proper; Evaluate wraps it to attach the decision
  /// diagnostics (selectivity estimate, grab limit) to the response.
  mapred::InputResponse EvaluateImpl(const mapred::JobProgress& progress,
                                     const mapred::ClusterStatus& cluster);

  /// Draws up to `count` splits uniformly without replacement.
  std::vector<mapred::InputSplit> DrawSplits(int64_t count);

  GrowthPolicy policy_;
  Options options_;
  Rng rng_;
  uint64_t sample_size_ = 0;
  std::vector<mapred::InputSplit> unprocessed_;
  double estimated_selectivity_ = -1.0;
  bool initialized_ = false;
};

}  // namespace dmr::dynamic

#endif  // DMR_DYNAMIC_SAMPLING_INPUT_PROVIDER_H_
