#ifndef DMR_DYNAMIC_GROWTH_POLICY_H_
#define DMR_DYNAMIC_GROWTH_POLICY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/properties.h"
#include "common/result.h"
#include "dynamic/grab_limit_expr.h"
#include "mapred/job_conf.h"
#include "mapred/types.h"

namespace dmr::dynamic {

/// \brief A policy for incremental processing of input (paper Table I):
/// EvaluationInterval, WorkThreshold and GrabLimit (Section III-B).
class GrowthPolicy {
 public:
  /// \param grab_limit_text  expression over AS/TS; see GrabLimitExpr.
  static Result<GrowthPolicy> Create(std::string name, std::string description,
                                     double work_threshold_pct,
                                     std::string grab_limit_text,
                                     double eval_interval_seconds = 4.0);

  const std::string& name() const { return name_; }
  const std::string& description() const { return description_; }
  double work_threshold_pct() const { return work_threshold_pct_; }
  double eval_interval() const { return eval_interval_; }
  const std::string& grab_limit_text() const { return grab_limit_.text(); }

  /// Max partitions a single intake may add given the cluster state; INT64
  /// max encodes "unbounded" (the Hadoop policy). Fractional limits round to
  /// nearest, with a floor of 1 when the raw value is positive so a starved
  /// job on a nearly-full cluster can still make progress.
  int64_t GrabLimit(const mapred::ClusterStatus& cluster) const;

  /// True for the unbounded (Hadoop-style) policy.
  bool unbounded() const;

  /// Writes the policy's execution parameters into a JobConf
  /// (dynamic.job = true, dynamic.job.policy, interval, threshold).
  void Apply(mapred::JobConf* conf) const;

 private:
  GrowthPolicy(std::string name, std::string description,
               double work_threshold_pct, GrabLimitExpr grab_limit,
               double eval_interval)
      : name_(std::move(name)),
        description_(std::move(description)),
        work_threshold_pct_(work_threshold_pct),
        grab_limit_(std::move(grab_limit)),
        eval_interval_(eval_interval) {}

  std::string name_;
  std::string description_;
  double work_threshold_pct_;
  GrabLimitExpr grab_limit_;
  double eval_interval_;
};

/// \brief Named registry of growth policies — the analogue of the paper's
/// policy.xml file (Section IV).
class PolicyTable {
 public:
  /// The paper's five policies (Table I):
  ///
  /// | name   | work threshold | grab limit                   |
  /// |--------|----------------|------------------------------|
  /// | Hadoop | —              | INF                          |
  /// | HA     | 0 %            | max(0.5*TS, AS)              |
  /// | MA     | 5 %            | AS > 0 ? 0.5*AS : 0.2*TS     |
  /// | LA     | 10 %           | AS > 0 ? 0.2*AS : 0.1*TS     |
  /// | C      | 15 %           | 0.1*AS                       |
  ///
  /// EvaluationInterval is 4 s for all but Hadoop (where it is irrelevant).
  static const PolicyTable& BuiltIn();

  /// Parses a policy file in Properties format:
  ///
  ///   policy.<NAME>.description   = ...
  ///   policy.<NAME>.work_threshold = 10      # percent
  ///   policy.<NAME>.grab_limit     = AS > 0 ? 0.2*AS : 0.1*TS
  ///   policy.<NAME>.eval_interval  = 4       # seconds, optional
  static Result<PolicyTable> Parse(const std::string& text);

  Result<GrowthPolicy> Find(const std::string& name) const;
  bool Contains(const std::string& name) const;

  Status Add(GrowthPolicy policy);

  const std::vector<GrowthPolicy>& policies() const { return policies_; }

 private:
  std::vector<GrowthPolicy> policies_;
};

}  // namespace dmr::dynamic

#endif  // DMR_DYNAMIC_GROWTH_POLICY_H_
