#include "dynamic/sampling_input_provider.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "dynamic/split_hints.h"

namespace dmr::dynamic {

using mapred::ClusterStatus;
using mapred::InputResponse;
using mapred::InputSplit;
using mapred::JobProgress;

SamplingInputProvider::SamplingInputProvider(GrowthPolicy policy,
                                             uint64_t seed)
    : SamplingInputProvider(std::move(policy), seed, Options{}) {}

SamplingInputProvider::SamplingInputProvider(GrowthPolicy policy,
                                             uint64_t seed, Options options)
    : policy_(std::move(policy)), options_(options), rng_(seed) {}

Status SamplingInputProvider::Initialize(
    const std::vector<InputSplit>& all_splits, const mapred::JobConf& conf) {
  if (initialized_) {
    return Status::FailedPrecondition("provider already initialized");
  }
  sample_size_ = conf.sample_size();
  if (sample_size_ == 0) {
    return Status::InvalidArgument(
        "sampling job requires a positive sample size (" +
        std::string(mapred::kSampleSizeKey) + ")");
  }
  unprocessed_ = all_splits;
  initialized_ = true;
  return Status::OK();
}

std::vector<InputSplit> SamplingInputProvider::DrawSplits(int64_t count) {
  if (options_.use_split_hints) {
    return TakeCheapestSplits(&unprocessed_, count);
  }
  std::vector<InputSplit> drawn;
  int64_t n = std::min<int64_t>(count,
                                static_cast<int64_t>(unprocessed_.size()));
  drawn.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    size_t pick = static_cast<size_t>(rng_.NextBounded(unprocessed_.size()));
    drawn.push_back(unprocessed_[pick]);
    unprocessed_[pick] = unprocessed_.back();
    unprocessed_.pop_back();
  }
  return drawn;
}

InputResponse SamplingInputProvider::GetInitialInput(
    const ClusterStatus& cluster) {
  DMR_CHECK(initialized_);
  if (unprocessed_.empty()) return InputResponse::EndOfInput();
  // The initial intake is GrabLimit splits; at least one so the job can
  // start learning the data even on a saturated cluster.
  int64_t limit = std::max<int64_t>(1, policy_.GrabLimit(cluster));
  return InputResponse::Available(DrawSplits(limit));
}

InputResponse SamplingInputProvider::Evaluate(const JobProgress& progress,
                                              const ClusterStatus& cluster) {
  InputResponse response = EvaluateImpl(progress, cluster);
  response
      .WithDiagnostic("selectivity_estimate", estimated_selectivity_)
      .WithDiagnostic("grab_limit",
                      static_cast<double>(policy_.GrabLimit(cluster)))
      // Feed the decision-instant trace (and dmr-analyze drill-downs) with
      // the provider's remaining-input view, so the provider-wait ledger
      // category can be cross-checked against what the provider still held.
      .WithDiagnostic("splits_remaining",
                      static_cast<double>(unprocessed_.size()))
      .WithDiagnostic("splits_granted",
                      static_cast<double>(response.splits.size()));
  return response;
}

InputResponse SamplingInputProvider::EvaluateImpl(
    const JobProgress& progress, const ClusterStatus& cluster) {
  DMR_CHECK(initialized_);

  // Completed maps already found enough matching records.
  if (progress.output_records >= sample_size_) {
    return InputResponse::EndOfInput();
  }

  // All partitions handed over: the job finishes with whatever it finds.
  if (unprocessed_.empty()) {
    return InputResponse::EndOfInput();
  }

  // Estimate selectivity from the completed maps' counters.
  double selectivity = 0.0;
  if (progress.records_processed > 0) {
    selectivity = static_cast<double>(progress.output_records) /
                  static_cast<double>(progress.records_processed);
    estimated_selectivity_ = selectivity;
  }

  int64_t limit = policy_.GrabLimit(cluster);

  if (!options_.use_selectivity_estimation) {
    // Ablation mode: blind fixed-policy growth, no yield projection.
    if (!progress.starved()) return InputResponse::NoInput();
    return InputResponse::Available(DrawSplits(std::max<int64_t>(1, limit)));
  }

  if (selectivity <= 0.0) {
    // Nothing matched yet (or nothing finished yet): no basis for an
    // estimate. If work is still in flight, wait and see; if the job is
    // starved, grow blindly by the grab limit.
    if (!progress.starved()) return InputResponse::NoInput();
    return InputResponse::Available(DrawSplits(std::max<int64_t>(1, limit)));
  }

  // Expected output still to come from the added-but-unfinished input.
  double expected_pending =
      selectivity * static_cast<double>(progress.pending_records);
  double expected_total =
      static_cast<double>(progress.output_records) + expected_pending;
  if (expected_total >= static_cast<double>(sample_size_)) {
    return InputResponse::NoInput();  // wait and see
  }

  // Records that still need to be scanned to close the gap, and the split
  // count that covers them (records-per-split estimated from the processed
  // prefix, since split metadata record counts may vary; Section IV).
  // With per-split hints the projection walks the cheapest-first grab
  // order and uses each split's own selectivity bound where stats gave
  // one — the non-stationary-cost refinement of DESIGN.md §16.
  int64_t splits_needed;
  if (options_.use_split_hints) {
    splits_needed = SplitsNeededWithHints(
        unprocessed_, static_cast<double>(sample_size_) - expected_total,
        selectivity);
  } else {
    double records_needed =
        (static_cast<double>(sample_size_) - expected_total) / selectivity;
    double records_per_split =
        progress.maps_completed > 0
            ? static_cast<double>(progress.records_processed) /
                  static_cast<double>(progress.maps_completed)
            : static_cast<double>(unprocessed_.front().num_records);
    if (records_per_split <= 0.0) records_per_split = 1.0;
    splits_needed = static_cast<int64_t>(
        std::ceil(records_needed / records_per_split));
    splits_needed = std::max<int64_t>(1, splits_needed);
  }

  int64_t grab = std::min(splits_needed, limit);
  if (grab <= 0) {
    // GrabLimit says the cluster has no room right now.
    return InputResponse::NoInput();
  }
  return InputResponse::Available(DrawSplits(grab));
}

}  // namespace dmr::dynamic
