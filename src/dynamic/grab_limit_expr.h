#ifndef DMR_DYNAMIC_GRAB_LIMIT_EXPR_H_
#define DMR_DYNAMIC_GRAB_LIMIT_EXPR_H_

#include <memory>
#include <string>

#include "common/result.h"

namespace dmr::dynamic {

/// \brief Variables available to grab-limit expressions (paper Table I):
/// AS = currently available (free) map slots, TS = total map slots.
struct SlotVars {
  double available_slots = 0;  // AS
  double total_slots = 0;      // TS
};

/// \brief A compiled grab-limit expression.
///
/// Grammar (paper Table I uses exactly these forms):
///
///   expr    := or ( '?' expr ':' expr )?
///   or      := and ( 'or' and )*            (case-insensitive keywords)
///   and     := cmp ( 'and' cmp )*
///   cmp     := add ( ('<'|'<='|'>'|'>='|'=='|'!=') add )?
///   add     := mul ( ('+'|'-') mul )*
///   mul     := unary ( ('*'|'/') unary )*
///   unary   := '-' unary | primary
///   primary := NUMBER | 'AS' | 'TS' | 'INF'
///            | ('max'|'min') '(' expr ',' expr ')' | '(' expr ')'
///
/// Comparisons yield 1.0 / 0.0; the ternary tests for non-zero. 'INF'
/// evaluates to +infinity (the Hadoop policy's unbounded grab).
class GrabLimitExpr {
 public:
  /// Compiles the expression text; reports syntax errors with positions.
  static Result<GrabLimitExpr> Parse(const std::string& text);

  /// Evaluates with the given slot variables.
  double Evaluate(const SlotVars& vars) const;

  /// Original text (for diagnostics / serialization).
  const std::string& text() const { return text_; }

  class Node;

 private:
  GrabLimitExpr(std::string text, std::shared_ptr<const Node> root)
      : text_(std::move(text)), root_(std::move(root)) {}

  std::string text_;
  std::shared_ptr<const Node> root_;
};

}  // namespace dmr::dynamic

#endif  // DMR_DYNAMIC_GRAB_LIMIT_EXPR_H_
