#include "dynamic/adaptive_input_provider.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "dynamic/split_hints.h"

namespace dmr::dynamic {

using mapred::ClusterStatus;
using mapred::InputResponse;
using mapred::InputSplit;
using mapred::JobProgress;

AdaptiveInputProvider::AdaptiveInputProvider(uint64_t seed, Options options)
    : options_(options), rng_(seed) {}

AdaptiveInputProvider::AdaptiveInputProvider(uint64_t seed)
    : AdaptiveInputProvider(seed, Options{}) {}

Status AdaptiveInputProvider::Initialize(
    const std::vector<InputSplit>& all_splits, const mapred::JobConf& conf) {
  if (initialized_) {
    return Status::FailedPrecondition("provider already initialized");
  }
  sample_size_ = conf.sample_size();
  if (sample_size_ == 0) {
    return Status::InvalidArgument(
        "adaptive sampling requires a positive sample size");
  }
  unprocessed_ = all_splits;
  initialized_ = true;
  return Status::OK();
}

int64_t AdaptiveInputProvider::LoadScaledGrab(
    const ClusterStatus& cluster) const {
  double as = static_cast<double>(cluster.available_map_slots());
  double ts = static_cast<double>(cluster.total_map_slots);
  if (ts <= 0.0) return options_.min_grab;
  double raw = as * as / ts;
  return std::max<int64_t>(options_.min_grab,
                           static_cast<int64_t>(std::llround(raw)));
}

std::vector<InputSplit> AdaptiveInputProvider::DrawSplits(int64_t count) {
  if (options_.use_split_hints) {
    return TakeCheapestSplits(&unprocessed_, count);
  }
  std::vector<InputSplit> drawn;
  int64_t n = std::min<int64_t>(count,
                                static_cast<int64_t>(unprocessed_.size()));
  drawn.reserve(n);
  for (int64_t i = 0; i < n; ++i) {
    size_t pick = static_cast<size_t>(rng_.NextBounded(unprocessed_.size()));
    drawn.push_back(unprocessed_[pick]);
    unprocessed_[pick] = unprocessed_.back();
    unprocessed_.pop_back();
  }
  return drawn;
}

InputResponse AdaptiveInputProvider::GetInitialInput(
    const ClusterStatus& cluster) {
  DMR_CHECK(initialized_);
  if (unprocessed_.empty()) return InputResponse::EndOfInput();
  last_grab_limit_ = LoadScaledGrab(cluster);
  return InputResponse::Available(DrawSplits(last_grab_limit_));
}

InputResponse AdaptiveInputProvider::Evaluate(const JobProgress& progress,
                                              const ClusterStatus& cluster) {
  InputResponse response = EvaluateImpl(progress, cluster);
  response.WithDiagnostic("skew_cv", skew_cv_)
      .WithDiagnostic("grab_limit", static_cast<double>(last_grab_limit_));
  return response;
}

InputResponse AdaptiveInputProvider::EvaluateImpl(
    const JobProgress& progress, const ClusterStatus& cluster) {
  DMR_CHECK(initialized_);

  // Update the per-evaluation yield history (the skew signal).
  int new_maps = progress.maps_completed - last_maps_completed_;
  uint64_t new_output = progress.output_records - last_output_records_;
  if (new_maps > 0) {
    yields_.push_back(static_cast<double>(new_output) /
                      static_cast<double>(new_maps));
    last_maps_completed_ = progress.maps_completed;
    last_output_records_ = progress.output_records;
  }
  if (yields_.size() >= 2) {
    double sum = 0.0;
    for (double y : yields_) sum += y;
    double mean = sum / static_cast<double>(yields_.size());
    if (mean > 0.0) {
      double var = 0.0;
      for (double y : yields_) var += (y - mean) * (y - mean);
      var /= static_cast<double>(yields_.size());
      skew_cv_ = std::sqrt(var) / mean;
    }
  }

  if (progress.output_records >= sample_size_) {
    return InputResponse::EndOfInput();
  }
  if (unprocessed_.empty()) {
    return InputResponse::EndOfInput();
  }

  double selectivity =
      progress.records_processed > 0
          ? static_cast<double>(progress.output_records) /
                static_cast<double>(progress.records_processed)
          : 0.0;

  last_grab_limit_ = LoadScaledGrab(cluster);

  if (selectivity <= 0.0) {
    // No estimate yet: grow by the load-scaled limit once starved.
    if (!progress.starved()) return InputResponse::NoInput();
    return InputResponse::Available(DrawSplits(last_grab_limit_));
  }

  // Projected yield of in-flight work, discounted when the data looks
  // skewed (an unreliable estimate should not talk us into waiting).
  double inflation =
      1.0 + std::min(skew_cv_, options_.max_skew_inflation - 1.0);
  double expected_pending =
      selectivity * static_cast<double>(progress.pending_records);
  double expected_total =
      static_cast<double>(progress.output_records) +
      expected_pending / inflation;
  if (expected_total >= static_cast<double>(sample_size_)) {
    return InputResponse::NoInput();
  }

  int64_t splits_needed;
  if (options_.use_split_hints) {
    // Per-split yield projection over the cheapest-first grab order
    // (DESIGN.md §16); the skew inflation widens the matches gap instead
    // of the records estimate.
    splits_needed = SplitsNeededWithHints(
        unprocessed_,
        (static_cast<double>(sample_size_) - expected_total) * inflation,
        selectivity);
  } else {
    double records_needed =
        (static_cast<double>(sample_size_) - expected_total) / selectivity *
        inflation;
    double records_per_split =
        progress.maps_completed > 0
            ? static_cast<double>(progress.records_processed) /
                  static_cast<double>(progress.maps_completed)
            : static_cast<double>(unprocessed_.front().num_records);
    if (records_per_split <= 0.0) records_per_split = 1.0;
    splits_needed = std::max<int64_t>(
        1,
        static_cast<int64_t>(std::ceil(records_needed / records_per_split)));
  }

  int64_t grab = std::min(splits_needed, last_grab_limit_);
  if (grab <= 0) return InputResponse::NoInput();
  return InputResponse::Available(DrawSplits(grab));
}

}  // namespace dmr::dynamic
