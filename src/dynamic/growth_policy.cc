#include "dynamic/growth_policy.h"

#include <cmath>
#include <limits>
#include <set>

#include "common/logging.h"
#include "common/strings.h"

namespace dmr::dynamic {

Result<GrowthPolicy> GrowthPolicy::Create(std::string name,
                                          std::string description,
                                          double work_threshold_pct,
                                          std::string grab_limit_text,
                                          double eval_interval_seconds) {
  if (name.empty()) return Status::InvalidArgument("policy name is empty");
  if (work_threshold_pct < 0.0 || work_threshold_pct > 100.0) {
    return Status::InvalidArgument("work threshold must be in [0, 100]");
  }
  if (eval_interval_seconds <= 0.0) {
    return Status::InvalidArgument("evaluation interval must be > 0");
  }
  DMR_ASSIGN_OR_RETURN(GrabLimitExpr expr,
                       GrabLimitExpr::Parse(grab_limit_text));
  return GrowthPolicy(std::move(name), std::move(description),
                      work_threshold_pct, std::move(expr),
                      eval_interval_seconds);
}

int64_t GrowthPolicy::GrabLimit(const mapred::ClusterStatus& cluster) const {
  SlotVars vars;
  vars.available_slots = static_cast<double>(cluster.available_map_slots());
  vars.total_slots = static_cast<double>(cluster.total_map_slots);
  double raw = grab_limit_.Evaluate(vars);
  if (std::isinf(raw) && raw > 0) {
    return std::numeric_limits<int64_t>::max();
  }
  if (raw <= 0.0) return 0;
  return std::max<int64_t>(1, static_cast<int64_t>(std::llround(raw)));
}

bool GrowthPolicy::unbounded() const {
  // Unbounded iff the limit is infinite regardless of cluster state.
  SlotVars zero{0.0, 0.0};
  return std::isinf(grab_limit_.Evaluate(zero));
}

void GrowthPolicy::Apply(mapred::JobConf* conf) const {
  conf->set_dynamic_job(true);
  conf->set_policy(name_);
  conf->set_eval_interval(eval_interval_);
  conf->set_work_threshold_pct(work_threshold_pct_);
}

const PolicyTable& PolicyTable::BuiltIn() {
  static const PolicyTable* table = [] {
    auto* t = new PolicyTable();
    auto add = [t](const char* name, const char* desc, double threshold,
                   const char* grab) {
      auto policy = GrowthPolicy::Create(name, desc, threshold, grab);
      DMR_CHECK(policy.ok()) << policy.status().ToString();
      DMR_CHECK(t->Add(*std::move(policy)).ok());
    };
    add("Hadoop", "Hadoop's default behaviour (all input up front)", 0.0,
        "INF");
    add("HA", "Highly Aggressive policy", 0.0, "max(0.5 * TS, AS)");
    add("MA", "Mid Aggressive policy", 5.0, "AS > 0 ? 0.5 * AS : 0.2 * TS");
    add("LA", "Less Aggressive policy", 10.0,
        "AS > 0 ? 0.2 * AS : 0.1 * TS");
    add("C", "Conservative policy", 15.0, "0.1 * AS");
    return t;
  }();
  return *table;
}

Result<PolicyTable> PolicyTable::Parse(const std::string& text) {
  DMR_ASSIGN_OR_RETURN(Properties props, Properties::Parse(text));

  // Collect policy names in file order of first appearance.
  std::vector<std::string> names;
  std::set<std::string> seen;
  for (const auto& [key, value] : props.entries()) {
    if (!StartsWith(key, "policy.")) {
      return Status::ParseError("unexpected key '" + key +
                                "' (expected policy.<NAME>.<field>)");
    }
    auto rest = key.substr(7);
    auto dot = rest.find('.');
    if (dot == std::string::npos || dot == 0) {
      return Status::ParseError("malformed policy key '" + key + "'");
    }
    std::string name = rest.substr(0, dot);
    if (seen.insert(name).second) names.push_back(name);
  }

  PolicyTable table;
  for (const auto& name : names) {
    std::string prefix = "policy." + name + ".";
    std::string grab = props.Get(prefix + "grab_limit", "");
    if (grab.empty()) {
      return Status::ParseError("policy '" + name + "' lacks grab_limit");
    }
    DMR_ASSIGN_OR_RETURN(double threshold,
                         props.GetDouble(prefix + "work_threshold", 0.0));
    DMR_ASSIGN_OR_RETURN(double interval,
                         props.GetDouble(prefix + "eval_interval", 4.0));
    DMR_ASSIGN_OR_RETURN(
        GrowthPolicy policy,
        GrowthPolicy::Create(name, props.Get(prefix + "description", ""),
                             threshold, grab, interval));
    DMR_RETURN_NOT_OK(table.Add(std::move(policy)));
  }
  return table;
}

Result<GrowthPolicy> PolicyTable::Find(const std::string& name) const {
  for (const auto& p : policies_) {
    if (EqualsIgnoreCase(p.name(), name)) return p;
  }
  return Status::NotFound("no policy named '" + name + "'");
}

bool PolicyTable::Contains(const std::string& name) const {
  return Find(name).ok();
}

Status PolicyTable::Add(GrowthPolicy policy) {
  if (Contains(policy.name())) {
    return Status::AlreadyExists("policy '" + policy.name() +
                                 "' already registered");
  }
  policies_.push_back(std::move(policy));
  return Status::OK();
}

}  // namespace dmr::dynamic
