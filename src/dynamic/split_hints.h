#ifndef DMR_DYNAMIC_SPLIT_HINTS_H_
#define DMR_DYNAMIC_SPLIT_HINTS_H_

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include "mapred/types.h"

namespace dmr::dynamic {

/// Per-split stats-hint consumption for the Input Providers (DESIGN.md
/// §16). Once zone maps and piggybacked indexes land, split costs are
/// non-stationary — a pruned split costs only a stats-read while an
/// unindexed one costs a full scan — so the provider can stop treating
/// the input as exchangeable: grab the cheap splits first and project
/// yield per split instead of with one global selectivity. Both helpers
/// are deterministic (no RNG): cheapest-first order is ascending
/// scan_fraction with insertion order breaking ties.

/// Indices of `pool` in cheapest-first order.
inline std::vector<size_t> CheapestOrder(
    const std::vector<mapred::InputSplit>& pool) {
  std::vector<size_t> order(pool.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(), [&pool](size_t a, size_t b) {
    return pool[a].scan_fraction < pool[b].scan_fraction;
  });
  return order;
}

/// Removes and returns up to `count` splits from `pool`, cheapest first.
inline std::vector<mapred::InputSplit> TakeCheapestSplits(
    std::vector<mapred::InputSplit>* pool, int64_t count) {
  std::vector<size_t> order = CheapestOrder(*pool);
  size_t n = std::min<size_t>(static_cast<size_t>(std::max<int64_t>(0, count)),
                              pool->size());
  std::vector<mapred::InputSplit> drawn;
  drawn.reserve(n);
  std::vector<size_t> taken(order.begin(), order.begin() + n);
  for (size_t index : taken) drawn.push_back((*pool)[index]);
  // Erase the taken slots back-to-front so earlier indices stay valid.
  std::sort(taken.begin(), taken.end());
  for (auto it = taken.rbegin(); it != taken.rend(); ++it) {
    pool->erase(pool->begin() + static_cast<ptrdiff_t>(*it));
  }
  return drawn;
}

/// Splits needed to cover `matches_gap` more matching records, walking
/// `pool` cheapest-first and projecting each split's yield from its
/// hint_selectivity when known (fall back to `global_selectivity`).
/// Returns at least 1 while the pool is non-empty; callers clamp by the
/// policy's grab limit as usual.
inline int64_t SplitsNeededWithHints(
    const std::vector<mapred::InputSplit>& pool, double matches_gap,
    double global_selectivity) {
  if (pool.empty()) return 0;
  double expected = 0.0;
  int64_t needed = 0;
  for (size_t index : CheapestOrder(pool)) {
    const mapred::InputSplit& split = pool[index];
    double sel = split.hint_selectivity >= 0.0 ? split.hint_selectivity
                                               : global_selectivity;
    expected += sel * static_cast<double>(split.num_records);
    ++needed;
    if (expected >= matches_gap) break;
  }
  return std::max<int64_t>(1, needed);
}

}  // namespace dmr::dynamic

#endif  // DMR_DYNAMIC_SPLIT_HINTS_H_
