#include "expr/expression.h"

namespace dmr::expr {

const char* BinaryOpToString(BinaryOp op) {
  switch (op) {
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNe:
      return "!=";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLe:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGe:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
  }
  return "?";
}

Result<Value> ColumnRefExpr::Evaluate(const Schema& schema,
                                      const Tuple& row) const {
  int index = schema.FindColumn(name_);
  if (index < 0) {
    return Status::NotFound("unknown column '" + name_ + "'");
  }
  if (static_cast<size_t>(index) >= row.size()) {
    return Status::Internal("row is narrower than schema");
  }
  return row[index];
}

namespace {

Result<bool> AsBool(const Value& v) {
  if (TypeOf(v) != ValueType::kBool) {
    return Status::InvalidArgument("expected BOOL, got " +
                                   std::string(ValueTypeToString(TypeOf(v))));
  }
  return std::get<bool>(v);
}

}  // namespace

Result<Value> BinaryExpr::Evaluate(const Schema& schema,
                                   const Tuple& row) const {
  // Logical operators get short-circuit evaluation.
  if (op_ == BinaryOp::kAnd || op_ == BinaryOp::kOr) {
    DMR_ASSIGN_OR_RETURN(Value lv, left_->Evaluate(schema, row));
    DMR_ASSIGN_OR_RETURN(bool lb, AsBool(lv));
    if (op_ == BinaryOp::kAnd && !lb) return Value(false);
    if (op_ == BinaryOp::kOr && lb) return Value(true);
    DMR_ASSIGN_OR_RETURN(Value rv, right_->Evaluate(schema, row));
    DMR_ASSIGN_OR_RETURN(bool rb, AsBool(rv));
    return Value(rb);
  }

  DMR_ASSIGN_OR_RETURN(Value lv, left_->Evaluate(schema, row));
  DMR_ASSIGN_OR_RETURN(Value rv, right_->Evaluate(schema, row));

  switch (op_) {
    case BinaryOp::kEq:
    case BinaryOp::kNe:
    case BinaryOp::kLt:
    case BinaryOp::kLe:
    case BinaryOp::kGt:
    case BinaryOp::kGe: {
      DMR_ASSIGN_OR_RETURN(int c, CompareValues(lv, rv));
      switch (op_) {
        case BinaryOp::kEq:
          return Value(c == 0);
        case BinaryOp::kNe:
          return Value(c != 0);
        case BinaryOp::kLt:
          return Value(c < 0);
        case BinaryOp::kLe:
          return Value(c <= 0);
        case BinaryOp::kGt:
          return Value(c > 0);
        default:
          return Value(c >= 0);
      }
    }
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv: {
      // Integer arithmetic stays integral except for division.
      if (TypeOf(lv) == ValueType::kInt64 && TypeOf(rv) == ValueType::kInt64 &&
          op_ != BinaryOp::kDiv) {
        int64_t x = std::get<int64_t>(lv);
        int64_t y = std::get<int64_t>(rv);
        switch (op_) {
          case BinaryOp::kAdd:
            return Value(x + y);
          case BinaryOp::kSub:
            return Value(x - y);
          default:
            return Value(x * y);
        }
      }
      DMR_ASSIGN_OR_RETURN(double x, ToDouble(lv));
      DMR_ASSIGN_OR_RETURN(double y, ToDouble(rv));
      switch (op_) {
        case BinaryOp::kAdd:
          return Value(x + y);
        case BinaryOp::kSub:
          return Value(x - y);
        case BinaryOp::kMul:
          return Value(x * y);
        default:
          if (y == 0.0) return Status::InvalidArgument("division by zero");
          return Value(x / y);
      }
    }
    default:
      return Status::Internal("unreachable binary op");
  }
}

std::string BinaryExpr::ToString() const {
  return "(" + left_->ToString() + " " + BinaryOpToString(op_) + " " +
         right_->ToString() + ")";
}

Result<Value> NotExpr::Evaluate(const Schema& schema, const Tuple& row) const {
  DMR_ASSIGN_OR_RETURN(Value v, operand_->Evaluate(schema, row));
  DMR_ASSIGN_OR_RETURN(bool b, AsBool(v));
  return Value(!b);
}

Result<Value> NegateExpr::Evaluate(const Schema& schema,
                                   const Tuple& row) const {
  DMR_ASSIGN_OR_RETURN(Value v, operand_->Evaluate(schema, row));
  if (TypeOf(v) == ValueType::kInt64) return Value(-std::get<int64_t>(v));
  DMR_ASSIGN_OR_RETURN(double d, ToDouble(v));
  return Value(-d);
}

Result<Value> BetweenExpr::Evaluate(const Schema& schema,
                                    const Tuple& row) const {
  DMR_ASSIGN_OR_RETURN(Value v, operand_->Evaluate(schema, row));
  DMR_ASSIGN_OR_RETURN(Value lo, low_->Evaluate(schema, row));
  DMR_ASSIGN_OR_RETURN(Value hi, high_->Evaluate(schema, row));
  DMR_ASSIGN_OR_RETURN(int c1, CompareValues(v, lo));
  if (c1 < 0) return Value(false);
  DMR_ASSIGN_OR_RETURN(int c2, CompareValues(v, hi));
  return Value(c2 <= 0);
}

std::string BetweenExpr::ToString() const {
  return "(" + operand_->ToString() + " BETWEEN " + low_->ToString() +
         " AND " + high_->ToString() + ")";
}

Result<Value> InExpr::Evaluate(const Schema& schema, const Tuple& row) const {
  DMR_ASSIGN_OR_RETURN(Value v, operand_->Evaluate(schema, row));
  for (const auto& cand : candidates_) {
    DMR_ASSIGN_OR_RETURN(Value cv, cand->Evaluate(schema, row));
    DMR_ASSIGN_OR_RETURN(int c, CompareValues(v, cv));
    if (c == 0) return Value(true);
  }
  return Value(false);
}

std::string InExpr::ToString() const {
  std::string out = "(" + operand_->ToString() + " IN (";
  for (size_t i = 0; i < candidates_.size(); ++i) {
    if (i) out += ", ";
    out += candidates_[i]->ToString();
  }
  return out + "))";
}

bool LikeMatch(std::string_view text, std::string_view pattern) {
  // Iterative two-pointer matcher with backtracking on the last '%'.
  size_t t = 0, p = 0;
  size_t star_p = std::string_view::npos, star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string_view::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

Result<Value> LikeExpr::Evaluate(const Schema& schema,
                                 const Tuple& row) const {
  DMR_ASSIGN_OR_RETURN(Value v, operand_->Evaluate(schema, row));
  if (TypeOf(v) != ValueType::kString) {
    return Status::InvalidArgument("LIKE requires a string operand");
  }
  bool m = LikeMatch(std::get<std::string>(v), pattern_);
  return Value(negated_ ? !m : m);
}

std::string LikeExpr::ToString() const {
  return "(" + operand_->ToString() + (negated_ ? " NOT LIKE '" : " LIKE '") +
         pattern_ + "')";
}

Result<bool> EvaluatePredicate(const Expression& expr, const Schema& schema,
                               const Tuple& row) {
  DMR_ASSIGN_OR_RETURN(Value v, expr.Evaluate(schema, row));
  if (TypeOf(v) != ValueType::kBool) {
    return Status::InvalidArgument("predicate did not evaluate to BOOL");
  }
  return std::get<bool>(v);
}

ExprPtr Lit(Value v) { return std::make_shared<LiteralExpr>(std::move(v)); }
ExprPtr Col(std::string name) {
  return std::make_shared<ColumnRefExpr>(std::move(name));
}
ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
  return std::make_shared<BinaryExpr>(op, std::move(l), std::move(r));
}

}  // namespace dmr::expr
