#ifndef DMR_EXPR_EXPRESSION_H_
#define DMR_EXPR_EXPRESSION_H_

#include <memory>
#include <string>
#include <vector>

#include "expr/value.h"

namespace dmr::expr {

class Expression;
using ExprPtr = std::shared_ptr<const Expression>;

/// \brief Operators for binary expression nodes.
enum class BinaryOp {
  kEq,
  kNe,
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,
  kOr,
  kAdd,
  kSub,
  kMul,
  kDiv,
};

const char* BinaryOpToString(BinaryOp op);

/// \brief An immutable expression tree evaluated against (Schema, Tuple).
///
/// Nodes: literals, column references, unary NOT / negation, binary
/// arithmetic/comparison/logic, BETWEEN, IN (value list), LIKE
/// ('%' and '_' wildcards). This is the predicate language the mini-Hive
/// front end compiles into (hive/) and that the sampling map function
/// evaluates per record (sampling/).
class Expression {
 public:
  enum class Kind {
    kLiteral,
    kColumnRef,
    kBinary,
    kNot,
    kNegate,
    kBetween,
    kIn,
    kLike,
  };

  virtual ~Expression() = default;

  Kind kind() const { return kind_; }

  /// Evaluates against a row. Type errors surface as Status.
  virtual Result<Value> Evaluate(const Schema& schema,
                                 const Tuple& row) const = 0;

  /// Pretty-prints the tree as SQL-ish text.
  virtual std::string ToString() const = 0;

 protected:
  explicit Expression(Kind kind) : kind_(kind) {}

 private:
  Kind kind_;
};

class LiteralExpr : public Expression {
 public:
  explicit LiteralExpr(Value value)
      : Expression(Kind::kLiteral), value_(std::move(value)) {}
  Result<Value> Evaluate(const Schema&, const Tuple&) const override {
    return value_;
  }
  std::string ToString() const override { return ValueToString(value_); }
  const Value& value() const { return value_; }

 private:
  Value value_;
};

class ColumnRefExpr : public Expression {
 public:
  explicit ColumnRefExpr(std::string name)
      : Expression(Kind::kColumnRef), name_(std::move(name)) {}
  Result<Value> Evaluate(const Schema& schema, const Tuple& row) const override;
  std::string ToString() const override { return name_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
};

class BinaryExpr : public Expression {
 public:
  BinaryExpr(BinaryOp op, ExprPtr left, ExprPtr right)
      : Expression(Kind::kBinary),
        op_(op),
        left_(std::move(left)),
        right_(std::move(right)) {}
  Result<Value> Evaluate(const Schema& schema, const Tuple& row) const override;
  std::string ToString() const override;
  BinaryOp op() const { return op_; }
  const ExprPtr& left() const { return left_; }
  const ExprPtr& right() const { return right_; }

 private:
  BinaryOp op_;
  ExprPtr left_;
  ExprPtr right_;
};

class NotExpr : public Expression {
 public:
  explicit NotExpr(ExprPtr operand)
      : Expression(Kind::kNot), operand_(std::move(operand)) {}
  Result<Value> Evaluate(const Schema& schema, const Tuple& row) const override;
  std::string ToString() const override {
    return "NOT (" + operand_->ToString() + ")";
  }
  const ExprPtr& operand() const { return operand_; }

 private:
  ExprPtr operand_;
};

class NegateExpr : public Expression {
 public:
  explicit NegateExpr(ExprPtr operand)
      : Expression(Kind::kNegate), operand_(std::move(operand)) {}
  Result<Value> Evaluate(const Schema& schema, const Tuple& row) const override;
  std::string ToString() const override {
    return "-(" + operand_->ToString() + ")";
  }
  const ExprPtr& operand() const { return operand_; }

 private:
  ExprPtr operand_;
};

class BetweenExpr : public Expression {
 public:
  BetweenExpr(ExprPtr operand, ExprPtr low, ExprPtr high)
      : Expression(Kind::kBetween),
        operand_(std::move(operand)),
        low_(std::move(low)),
        high_(std::move(high)) {}
  Result<Value> Evaluate(const Schema& schema, const Tuple& row) const override;
  std::string ToString() const override;
  const ExprPtr& operand() const { return operand_; }
  const ExprPtr& low() const { return low_; }
  const ExprPtr& high() const { return high_; }

 private:
  ExprPtr operand_;
  ExprPtr low_;
  ExprPtr high_;
};

class InExpr : public Expression {
 public:
  InExpr(ExprPtr operand, std::vector<ExprPtr> candidates)
      : Expression(Kind::kIn),
        operand_(std::move(operand)),
        candidates_(std::move(candidates)) {}
  Result<Value> Evaluate(const Schema& schema, const Tuple& row) const override;
  std::string ToString() const override;
  const ExprPtr& operand() const { return operand_; }
  const std::vector<ExprPtr>& candidates() const { return candidates_; }

 private:
  ExprPtr operand_;
  std::vector<ExprPtr> candidates_;
};

class LikeExpr : public Expression {
 public:
  LikeExpr(ExprPtr operand, std::string pattern, bool negated = false)
      : Expression(Kind::kLike),
        operand_(std::move(operand)),
        pattern_(std::move(pattern)),
        negated_(negated) {}
  Result<Value> Evaluate(const Schema& schema, const Tuple& row) const override;
  std::string ToString() const override;
  const ExprPtr& operand() const { return operand_; }
  const std::string& pattern() const { return pattern_; }
  bool negated() const { return negated_; }

 private:
  ExprPtr operand_;
  std::string pattern_;
  bool negated_;
};

/// SQL LIKE matcher: '%' matches any run, '_' any single character.
bool LikeMatch(std::string_view text, std::string_view pattern);

/// Evaluates an expression expecting a boolean outcome; numeric results are
/// rejected (predicates must be boolean-typed).
Result<bool> EvaluatePredicate(const Expression& expr, const Schema& schema,
                               const Tuple& row);

/// Convenience constructors.
ExprPtr Lit(Value v);
ExprPtr Col(std::string name);
ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r);

}  // namespace dmr::expr

#endif  // DMR_EXPR_EXPRESSION_H_
