#include "expr/value.h"

#include <cstdio>

#include "common/strings.h"

namespace dmr::expr {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kBool:
      return "BOOL";
  }
  return "?";
}

ValueType TypeOf(const Value& v) {
  switch (v.index()) {
    case 0:
      return ValueType::kInt64;
    case 1:
      return ValueType::kDouble;
    case 2:
      return ValueType::kString;
    default:
      return ValueType::kBool;
  }
}

std::string ValueToString(const Value& v) {
  switch (v.index()) {
    case 0:
      return std::to_string(std::get<int64_t>(v));
    case 1: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", std::get<double>(v));
      return buf;
    }
    case 2:
      return "'" + std::get<std::string>(v) + "'";
    default:
      return std::get<bool>(v) ? "true" : "false";
  }
}

Result<double> ToDouble(const Value& v) {
  switch (v.index()) {
    case 0:
      return static_cast<double>(std::get<int64_t>(v));
    case 1:
      return std::get<double>(v);
    default:
      return Status::InvalidArgument("cannot coerce " +
                                     std::string(ValueTypeToString(TypeOf(v))) +
                                     " to a number");
  }
}

Result<int> CompareValues(const Value& a, const Value& b) {
  ValueType ta = TypeOf(a);
  ValueType tb = TypeOf(b);
  bool a_num = ta == ValueType::kInt64 || ta == ValueType::kDouble;
  bool b_num = tb == ValueType::kInt64 || tb == ValueType::kDouble;
  if (a_num && b_num) {
    if (ta == ValueType::kInt64 && tb == ValueType::kInt64) {
      int64_t x = std::get<int64_t>(a);
      int64_t y = std::get<int64_t>(b);
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    double x = *ToDouble(a);
    double y = *ToDouble(b);
    return x < y ? -1 : (x > y ? 1 : 0);
  }
  if (ta == ValueType::kString && tb == ValueType::kString) {
    const auto& x = std::get<std::string>(a);
    const auto& y = std::get<std::string>(b);
    int c = x.compare(y);
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (ta == ValueType::kBool && tb == ValueType::kBool) {
    bool x = std::get<bool>(a);
    bool y = std::get<bool>(b);
    return x == y ? 0 : (x ? 1 : -1);
  }
  return Status::InvalidArgument(
      std::string("type mismatch comparing ") + ValueTypeToString(ta) +
      " with " + ValueTypeToString(tb));
}

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

int Schema::FindColumn(std::string_view name) const {
  for (int i = 0; i < num_columns(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) return i;
  }
  return -1;
}

}  // namespace dmr::expr
