#ifndef DMR_EXPR_VALUE_H_
#define DMR_EXPR_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"

namespace dmr::expr {

/// \brief Runtime value types supported by the expression evaluator.
///
/// Dates are carried as kString in 'YYYY-MM-DD' form; lexicographic
/// comparison coincides with chronological order.
enum class ValueType { kInt64, kDouble, kString, kBool };

const char* ValueTypeToString(ValueType type);

/// \brief A dynamically typed scalar.
using Value = std::variant<int64_t, double, std::string, bool>;

ValueType TypeOf(const Value& v);

/// Renders a value for diagnostics ("42", "3.14", "'abc'", "true").
std::string ValueToString(const Value& v);

/// Numeric coercion; errors on strings/bools.
Result<double> ToDouble(const Value& v);

/// Three-way comparison with numeric coercion between int64 and double.
/// Strings compare with strings only; bools with bools only.
Result<int> CompareValues(const Value& a, const Value& b);

/// \brief A materialized row: one Value per schema column.
using Tuple = std::vector<Value>;

/// \brief Column descriptors for a relation.
class Schema {
 public:
  struct Column {
    std::string name;
    ValueType type;
  };

  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  /// Case-insensitive lookup; returns -1 when absent.
  int FindColumn(std::string_view name) const;

  const Column& column(int index) const { return columns_[index]; }
  int num_columns() const { return static_cast<int>(columns_.size()); }
  const std::vector<Column>& columns() const { return columns_; }

 private:
  std::vector<Column> columns_;
};

}  // namespace dmr::expr

#endif  // DMR_EXPR_VALUE_H_
