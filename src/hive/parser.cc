#include "hive/parser.h"

#include "common/strings.h"
#include "hive/lexer.h"

namespace dmr::hive {

namespace {

using expr::BinaryOp;
using expr::ExprPtr;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    if (Peek().IsKeyword("SET")) {
      ++index_;
      DMR_ASSIGN_OR_RETURN(SetStatement set, ParseSet());
      DMR_RETURN_NOT_OK(ExpectEnd());
      return Statement(std::move(set));
    }
    if (Peek().IsKeyword("EXPLAIN")) {
      ++index_;
      DMR_ASSIGN_OR_RETURN(SelectStatement select, ParseSelect());
      DMR_RETURN_NOT_OK(ExpectEnd());
      return Statement(ExplainStatement{std::move(select)});
    }
    DMR_ASSIGN_OR_RETURN(SelectStatement select, ParseSelect());
    DMR_RETURN_NOT_OK(ExpectEnd());
    return Statement(std::move(select));
  }

 private:
  const Token& Peek() const { return tokens_[index_]; }
  Token Take() { return tokens_[index_++]; }

  Status Error(const std::string& msg) const {
    return Status::ParseError(msg + " at position " +
                              std::to_string(Peek().pos));
  }

  Status ExpectEnd() {
    if (Peek().IsOp(";")) ++index_;
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return Status::OK();
  }

  bool TakeKeyword(const char* kw) {
    if (Peek().IsKeyword(kw)) {
      ++index_;
      return true;
    }
    return false;
  }

  bool TakeOp(const char* op) {
    if (Peek().IsOp(op)) {
      ++index_;
      return true;
    }
    return false;
  }

  Result<std::string> ExpectIdent(const char* what) {
    if (Peek().kind != TokenKind::kIdent) {
      return Status::ParseError(std::string("expected ") + what +
                                ", got " + TokenKindToString(Peek().kind) +
                                " at position " + std::to_string(Peek().pos));
    }
    return Take().text;
  }

  Result<SetStatement> ParseSet() {
    // Keys may be dotted: SET dynamic.job.policy = LA
    DMR_ASSIGN_OR_RETURN(std::string key, ExpectIdent("parameter name"));
    while (TakeOp(".")) {
      DMR_ASSIGN_OR_RETURN(std::string part, ExpectIdent("parameter name"));
      key += "." + part;
    }
    if (!TakeOp("=")) return Error("expected '=' in SET");
    // Value: everything until ';' / end — identifier, number or string.
    const Token& v = Peek();
    std::string value;
    switch (v.kind) {
      case TokenKind::kIdent:
        value = Take().text;
        break;
      case TokenKind::kString:
        value = Take().text;
        break;
      case TokenKind::kInteger:
        value = std::to_string(Take().integer);
        break;
      case TokenKind::kDecimal: {
        Token tok = Take();
        value = std::to_string(tok.decimal);
        break;
      }
      default:
        return Error("expected a value in SET");
    }
    return SetStatement{std::move(key), std::move(value)};
  }

  Result<SelectStatement> ParseSelect() {
    if (!TakeKeyword("SELECT")) return Error("expected SELECT");
    SelectStatement stmt;
    if (TakeOp("*")) {
      // SELECT * — empty projection list.
    } else {
      do {
        DMR_ASSIGN_OR_RETURN(std::string col, ExpectIdent("column name"));
        stmt.columns.push_back(std::move(col));
      } while (TakeOp(","));
    }
    if (!TakeKeyword("FROM")) return Error("expected FROM");
    DMR_ASSIGN_OR_RETURN(stmt.table, ExpectIdent("table name"));
    if (TakeKeyword("WHERE")) {
      DMR_ASSIGN_OR_RETURN(stmt.where, ParseOr());
    }
    if (TakeKeyword("LIMIT")) {
      if (Peek().kind != TokenKind::kInteger) {
        return Error("expected an integer after LIMIT");
      }
      int64_t k = Take().integer;
      if (k <= 0) return Error("LIMIT must be positive");
      stmt.limit = static_cast<uint64_t>(k);
    }
    return stmt;
  }

  Result<ExprPtr> ParseOr() {
    DMR_ASSIGN_OR_RETURN(ExprPtr left, ParseAnd());
    while (TakeKeyword("OR")) {
      DMR_ASSIGN_OR_RETURN(ExprPtr right, ParseAnd());
      left = expr::Bin(BinaryOp::kOr, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseAnd() {
    DMR_ASSIGN_OR_RETURN(ExprPtr left, ParseNot());
    while (TakeKeyword("AND")) {
      DMR_ASSIGN_OR_RETURN(ExprPtr right, ParseNot());
      left = expr::Bin(BinaryOp::kAnd, std::move(left), std::move(right));
    }
    return left;
  }

  Result<ExprPtr> ParseNot() {
    if (TakeKeyword("NOT")) {
      DMR_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return ExprPtr(std::make_shared<expr::NotExpr>(std::move(operand)));
    }
    return ParseComparison();
  }

  Result<ExprPtr> ParseComparison() {
    DMR_ASSIGN_OR_RETURN(ExprPtr left, ParseAdditive());

    bool negated = false;
    if (Peek().IsKeyword("NOT")) {
      // NOT here can only precede BETWEEN / IN / LIKE.
      ++index_;
      negated = true;
    }

    if (TakeKeyword("BETWEEN")) {
      DMR_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      if (!TakeKeyword("AND")) return Error("expected AND in BETWEEN");
      DMR_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      ExprPtr between = std::make_shared<expr::BetweenExpr>(
          std::move(left), std::move(lo), std::move(hi));
      if (negated) return ExprPtr(std::make_shared<expr::NotExpr>(between));
      return between;
    }
    if (TakeKeyword("IN")) {
      if (!TakeOp("(")) return Error("expected '(' after IN");
      std::vector<ExprPtr> candidates;
      do {
        DMR_ASSIGN_OR_RETURN(ExprPtr cand, ParseAdditive());
        candidates.push_back(std::move(cand));
      } while (TakeOp(","));
      if (!TakeOp(")")) return Error("expected ')' to close IN list");
      ExprPtr in = std::make_shared<expr::InExpr>(std::move(left),
                                                  std::move(candidates));
      if (negated) return ExprPtr(std::make_shared<expr::NotExpr>(in));
      return in;
    }
    if (TakeKeyword("LIKE")) {
      if (Peek().kind != TokenKind::kString) {
        return Error("expected a string pattern after LIKE");
      }
      std::string pattern = Take().text;
      return ExprPtr(std::make_shared<expr::LikeExpr>(
          std::move(left), std::move(pattern), negated));
    }
    if (negated) return Error("expected BETWEEN, IN or LIKE after NOT");

    struct CmpOp {
      const char* text;
      BinaryOp op;
    };
    static const CmpOp kOps[] = {
        {"<=", BinaryOp::kLe}, {">=", BinaryOp::kGe}, {"!=", BinaryOp::kNe},
        {"<>", BinaryOp::kNe}, {"==", BinaryOp::kEq}, {"=", BinaryOp::kEq},
        {"<", BinaryOp::kLt},  {">", BinaryOp::kGt},
    };
    for (const auto& cmp : kOps) {
      if (TakeOp(cmp.text)) {
        DMR_ASSIGN_OR_RETURN(ExprPtr right, ParseAdditive());
        return expr::Bin(cmp.op, std::move(left), std::move(right));
      }
    }
    return left;
  }

  Result<ExprPtr> ParseAdditive() {
    DMR_ASSIGN_OR_RETURN(ExprPtr left, ParseMultiplicative());
    for (;;) {
      BinaryOp op;
      if (TakeOp("+")) {
        op = BinaryOp::kAdd;
      } else if (TakeOp("-")) {
        op = BinaryOp::kSub;
      } else {
        return left;
      }
      DMR_ASSIGN_OR_RETURN(ExprPtr right, ParseMultiplicative());
      left = expr::Bin(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseMultiplicative() {
    DMR_ASSIGN_OR_RETURN(ExprPtr left, ParseUnary());
    for (;;) {
      BinaryOp op;
      if (TakeOp("*")) {
        op = BinaryOp::kMul;
      } else if (TakeOp("/")) {
        op = BinaryOp::kDiv;
      } else {
        return left;
      }
      DMR_ASSIGN_OR_RETURN(ExprPtr right, ParseUnary());
      left = expr::Bin(op, std::move(left), std::move(right));
    }
  }

  Result<ExprPtr> ParseUnary() {
    if (TakeOp("-")) {
      DMR_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return ExprPtr(std::make_shared<expr::NegateExpr>(std::move(operand)));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& tok = Peek();
    switch (tok.kind) {
      case TokenKind::kInteger:
        return expr::Lit(Take().integer);
      case TokenKind::kDecimal:
        return expr::Lit(Take().decimal);
      case TokenKind::kString:
        return expr::Lit(Take().text);
      case TokenKind::kIdent: {
        if (tok.IsKeyword("TRUE")) {
          ++index_;
          return expr::Lit(true);
        }
        if (tok.IsKeyword("FALSE")) {
          ++index_;
          return expr::Lit(false);
        }
        return expr::Col(Take().text);
      }
      case TokenKind::kOperator:
        if (TakeOp("(")) {
          DMR_ASSIGN_OR_RETURN(ExprPtr inner, ParseOr());
          if (!TakeOp(")")) return Error("expected ')'");
          return inner;
        }
        break;
      default:
        break;
    }
    return Error("expected an expression");
  }

  std::vector<Token> tokens_;
  size_t index_ = 0;
};

}  // namespace

Result<Statement> ParseStatement(const std::string& sql) {
  DMR_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

Result<SelectStatement> ParseSelect(const std::string& sql) {
  DMR_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  if (auto* select = std::get_if<SelectStatement>(&stmt)) {
    return std::move(*select);
  }
  return Status::InvalidArgument("statement is not a SELECT");
}

std::string SelectStatement::ToString() const {
  std::string out = "SELECT ";
  if (columns.empty()) {
    out += "*";
  } else {
    out += JoinStrings(columns, ", ");
  }
  out += " FROM " + table;
  if (where) out += " WHERE " + where->ToString();
  if (limit) out += " LIMIT " + std::to_string(*limit);
  return out;
}

}  // namespace dmr::hive
