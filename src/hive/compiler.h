#ifndef DMR_HIVE_COMPILER_H_
#define DMR_HIVE_COMPILER_H_

#include <string>
#include <vector>

#include "common/properties.h"
#include "common/result.h"
#include "dynamic/growth_policy.h"
#include "expr/expression.h"
#include "hive/ast.h"
#include "mapred/job_conf.h"

namespace dmr::hive {

/// \brief The compiled form of a SELECT: one MapReduce job description.
struct CompiledQuery {
  mapred::JobConf conf;
  /// Null means no WHERE clause (every record matches).
  expr::ExprPtr predicate;
  /// Schema indexes of the projected columns (schema order for SELECT *).
  std::vector<int> projection;
  std::vector<std::string> projected_names;
  /// 0 means no LIMIT (a full select-project job).
  uint64_t limit = 0;
  /// The growth policy chosen for the job (sampling queries only).
  std::string policy_name;

  bool is_sampling() const { return limit > 0; }

  /// Human-readable plan (EXPLAIN output).
  std::string ExplainString() const;
};

/// \brief Compiles SELECT statements into JobConfs — the analogue of the
/// paper's modified Hive compiler (Section IV): a query with a LIMIT is
/// marked dynamic ("dynamic.job" = true), its sample size recorded, and the
/// session's "dynamic.job.policy" (chosen via SET, validated against the
/// policy table / policy.xml) applied.
class HiveCompiler {
 public:
  /// \param schema    table schema queries are validated against.
  /// \param policies  available growth policies (the policy.xml analogue).
  HiveCompiler(const expr::Schema* schema,
               const dynamic::PolicyTable* policies);

  /// Applies a SET statement to the session configuration. Setting
  /// "dynamic.job.policy" validates the policy name.
  Status ApplySet(const SetStatement& set);

  /// Compiles a parsed SELECT into a job description.
  Result<CompiledQuery> Compile(const SelectStatement& select) const;

  /// Parses and compiles in one step (SET statements update the session and
  /// yield no query; EXPLAIN yields a query flagged explain_only).
  struct SessionResult {
    /// Present for SELECT / EXPLAIN.
    std::optional<CompiledQuery> query;
    bool explain_only = false;
    /// Message for statements with textual output (SET acknowledgments).
    std::string message;
  };
  Result<SessionResult> Process(const std::string& sql);

  const Properties& session() const { return session_; }

  /// The policy the session currently selects (default "LA" — the paper's
  /// best overall policy).
  Result<dynamic::GrowthPolicy> CurrentPolicy() const;

 private:
  const expr::Schema* schema_;
  const dynamic::PolicyTable* policies_;
  Properties session_;
};

}  // namespace dmr::hive

#endif  // DMR_HIVE_COMPILER_H_
