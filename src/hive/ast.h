#ifndef DMR_HIVE_AST_H_
#define DMR_HIVE_AST_H_

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "expr/expression.h"

namespace dmr::hive {

/// \brief `SELECT cols FROM table [WHERE expr] [LIMIT k]` — the query shape
/// the paper compiles into one predicate-based-sampling MapReduce job.
struct SelectStatement {
  /// Projected column names; empty means `SELECT *`.
  std::vector<std::string> columns;
  std::string table;
  /// Null when there is no WHERE clause.
  expr::ExprPtr where;
  std::optional<uint64_t> limit;

  /// Renders back to SQL (for EXPLAIN output and tests).
  std::string ToString() const;
};

/// \brief `SET key = value;` — how a Hive end-user picks the runtime policy
/// ("dynamic.job.policy", paper Section IV).
struct SetStatement {
  std::string key;
  std::string value;
};

/// \brief `EXPLAIN <select>;` — prints the compiled plan.
struct ExplainStatement {
  SelectStatement select;
};

using Statement = std::variant<SelectStatement, SetStatement,
                               ExplainStatement>;

}  // namespace dmr::hive

#endif  // DMR_HIVE_AST_H_
