#ifndef DMR_HIVE_LEXER_H_
#define DMR_HIVE_LEXER_H_

#include <string>
#include <vector>

#include "common/result.h"

namespace dmr::hive {

/// \brief Token kinds produced by the HiveQL lexer.
enum class TokenKind {
  kIdent,      // bare identifier or keyword (keywords resolved by parser)
  kInteger,    // 123
  kDecimal,    // 1.25
  kString,     // 'abc' (quotes stripped, '' unescaped)
  kOperator,   // = != <> < <= > >= + - * / ( ) , ; .
  kEnd,
};

const char* TokenKindToString(TokenKind kind);

/// \brief One lexed token with its source offset (for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;        // identifier/operator text (identifiers verbatim)
  int64_t integer = 0;     // for kInteger
  double decimal = 0.0;    // for kDecimal
  size_t pos = 0;

  bool IsKeyword(const char* kw) const;
  bool IsOp(const char* op) const {
    return kind == TokenKind::kOperator && text == op;
  }
};

/// \brief Tokenizes a HiveQL statement. Comments: '--' to end of line.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace dmr::hive

#endif  // DMR_HIVE_LEXER_H_
