#include "hive/compiler.h"

#include "common/strings.h"
#include "hive/parser.h"

namespace dmr::hive {

namespace {

/// Builds a row of per-type default values used for best-effort compile-time
/// validation of predicates (unknown columns and gross type errors surface
/// before the job runs).
expr::Tuple DefaultRow(const expr::Schema& schema) {
  expr::Tuple row;
  row.reserve(schema.num_columns());
  for (int i = 0; i < schema.num_columns(); ++i) {
    switch (schema.column(i).type) {
      case expr::ValueType::kInt64:
        row.emplace_back(int64_t{0});
        break;
      case expr::ValueType::kDouble:
        row.emplace_back(0.0);
        break;
      case expr::ValueType::kString:
        row.emplace_back(std::string());
        break;
      case expr::ValueType::kBool:
        row.emplace_back(false);
        break;
    }
  }
  return row;
}

}  // namespace

HiveCompiler::HiveCompiler(const expr::Schema* schema,
                           const dynamic::PolicyTable* policies)
    : schema_(schema), policies_(policies) {
  session_.Set(mapred::kDynamicPolicyKey, "LA");
  session_.Set(mapred::kUserNameKey, "default");
}

Status HiveCompiler::ApplySet(const SetStatement& set) {
  if (EqualsIgnoreCase(set.key, mapred::kDynamicPolicyKey)) {
    if (!policies_->Contains(set.value)) {
      std::string known;
      for (const auto& p : policies_->policies()) {
        if (!known.empty()) known += ", ";
        known += p.name();
      }
      return Status::InvalidArgument("unknown policy '" + set.value +
                                     "' (configured policies: " + known +
                                     ")");
    }
  }
  session_.Set(set.key, set.value);
  return Status::OK();
}

Result<dynamic::GrowthPolicy> HiveCompiler::CurrentPolicy() const {
  return policies_->Find(session_.Get(mapred::kDynamicPolicyKey, "LA"));
}

Result<CompiledQuery> HiveCompiler::Compile(
    const SelectStatement& select) const {
  CompiledQuery query;

  // Resolve the projection.
  if (select.columns.empty()) {
    for (int i = 0; i < schema_->num_columns(); ++i) {
      query.projection.push_back(i);
      query.projected_names.push_back(schema_->column(i).name);
    }
  } else {
    for (const auto& name : select.columns) {
      int index = schema_->FindColumn(name);
      if (index < 0) {
        return Status::InvalidArgument("unknown column '" + name + "'");
      }
      query.projection.push_back(index);
      query.projected_names.push_back(schema_->column(index).name);
    }
  }

  // Best-effort static validation of the predicate.
  if (select.where) {
    expr::Tuple dummy = DefaultRow(*schema_);
    Result<bool> check =
        expr::EvaluatePredicate(*select.where, *schema_, dummy);
    if (!check.ok()) {
      return Status::InvalidArgument("invalid WHERE clause: " +
                                     check.status().message());
    }
    query.predicate = select.where;
  }

  query.limit = select.limit.value_or(0);

  // Assemble the JobConf the way the modified Hive compiler does.
  query.conf.set_name("hive: " + select.ToString());
  query.conf.set_user(session_.Get(mapred::kUserNameKey, "default"));
  query.conf.set_input_file(select.table);
  if (select.where) {
    query.conf.props().Set(mapred::kPredicateKey, select.where->ToString());
  }
  if (query.is_sampling()) {
    DMR_ASSIGN_OR_RETURN(dynamic::GrowthPolicy policy, CurrentPolicy());
    query.policy_name = policy.name();
    query.conf.set_sample_size(query.limit);
    query.conf.props().Set(mapred::kDynamicProviderKey,
                           "dmr::dynamic::SamplingInputProvider");
    policy.Apply(&query.conf);
  } else {
    query.conf.set_dynamic_job(false);
  }
  return query;
}

Result<HiveCompiler::SessionResult> HiveCompiler::Process(
    const std::string& sql) {
  DMR_ASSIGN_OR_RETURN(Statement stmt, ParseStatement(sql));
  SessionResult result;
  if (auto* set = std::get_if<SetStatement>(&stmt)) {
    DMR_RETURN_NOT_OK(ApplySet(*set));
    result.message = set->key + " = " + set->value;
    return result;
  }
  if (auto* explain = std::get_if<ExplainStatement>(&stmt)) {
    DMR_ASSIGN_OR_RETURN(CompiledQuery q, Compile(explain->select));
    result.explain_only = true;
    result.message = q.ExplainString();
    result.query = std::move(q);
    return result;
  }
  DMR_ASSIGN_OR_RETURN(CompiledQuery q,
                       Compile(std::get<SelectStatement>(stmt)));
  result.query = std::move(q);
  return result;
}

std::string CompiledQuery::ExplainString() const {
  std::string out;
  out += "Job: " + conf.name() + "\n";
  out += "  input file : " + conf.input_file() + "\n";
  out += "  projection : " + JoinStrings(projected_names, ", ") + "\n";
  out += "  predicate  : " +
         (predicate ? predicate->ToString() : std::string("<none>")) + "\n";
  if (is_sampling()) {
    out += "  execution  : DYNAMIC predicate-based sampling, k = " +
           std::to_string(limit) + "\n";
    out += "  policy     : " + policy_name + "\n";
  } else {
    out += "  execution  : static full scan (select-project)\n";
  }
  return out;
}

}  // namespace dmr::hive
