#ifndef DMR_HIVE_PARSER_H_
#define DMR_HIVE_PARSER_H_

#include <string>

#include "common/result.h"
#include "hive/ast.h"

namespace dmr::hive {

/// \brief Parses one HiveQL statement (optionally ';'-terminated).
///
/// Supported statements:
///   SELECT col[, col...] | * FROM table [WHERE expr] [LIMIT n]
///   SET key = value
///   EXPLAIN <select>
///
/// Expression grammar (precedence low to high): OR, AND, NOT, comparison /
/// BETWEEN / [NOT] IN / [NOT] LIKE, additive, multiplicative, unary minus,
/// primary (literal, column, parenthesized).
Result<Statement> ParseStatement(const std::string& sql);

/// Convenience: parses and requires a SELECT.
Result<SelectStatement> ParseSelect(const std::string& sql);

}  // namespace dmr::hive

#endif  // DMR_HIVE_PARSER_H_
