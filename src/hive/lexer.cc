#include "hive/lexer.h"

#include <cctype>

#include "common/strings.h"

namespace dmr::hive {

const char* TokenKindToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kInteger:
      return "integer";
    case TokenKind::kDecimal:
      return "decimal";
    case TokenKind::kString:
      return "string";
    case TokenKind::kOperator:
      return "operator";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "?";
}

bool Token::IsKeyword(const char* kw) const {
  return kind == TokenKind::kIdent && EqualsIgnoreCase(text, kw);
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  auto fail = [&](const std::string& msg) {
    return Status::ParseError(msg + " at position " + std::to_string(i));
  };
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < sql.size() && sql[i + 1] == '-') {
      while (i < sql.size() && sql[i] != '\n') ++i;
      continue;
    }
    Token tok;
    tok.pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      while (i < sql.size() && (std::isalnum(static_cast<unsigned char>(
                                    sql[i])) ||
                                sql[i] == '_')) {
        ++i;
      }
      tok.kind = TokenKind::kIdent;
      tok.text = sql.substr(start, i - start);
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < sql.size() &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool has_dot = false;
      while (i < sql.size() &&
             (std::isdigit(static_cast<unsigned char>(sql[i])) ||
              sql[i] == '.')) {
        if (sql[i] == '.') {
          if (has_dot) return fail("number with two decimal points");
          has_dot = true;
        }
        ++i;
      }
      std::string num = sql.substr(start, i - start);
      if (has_dot) {
        tok.kind = TokenKind::kDecimal;
        if (!ParseDouble(num, &tok.decimal)) {
          return fail("malformed number '" + num + "'");
        }
      } else {
        tok.kind = TokenKind::kInteger;
        if (!ParseInt64(num, &tok.integer)) {
          return fail("malformed integer '" + num + "'");
        }
      }
    } else if (c == '\'') {
      ++i;
      std::string value;
      bool closed = false;
      while (i < sql.size()) {
        if (sql[i] == '\'') {
          if (i + 1 < sql.size() && sql[i + 1] == '\'') {
            value += '\'';  // escaped quote
            i += 2;
            continue;
          }
          closed = true;
          ++i;
          break;
        }
        value += sql[i++];
      }
      if (!closed) return fail("unterminated string literal");
      tok.kind = TokenKind::kString;
      tok.text = std::move(value);
    } else {
      static const char* kTwoChar[] = {"!=", "<>", "<=", ">=", "=="};
      tok.kind = TokenKind::kOperator;
      bool matched = false;
      for (const char* op : kTwoChar) {
        if (sql.compare(i, 2, op) == 0) {
          tok.text = op;
          i += 2;
          matched = true;
          break;
        }
      }
      if (!matched) {
        if (std::string("=<>+-*/(),;.").find(c) == std::string::npos) {
          return fail(std::string("unexpected character '") + c + "'");
        }
        tok.text = std::string(1, c);
        ++i;
      }
    }
    tokens.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.pos = sql.size();
  tokens.push_back(end);
  return tokens;
}

}  // namespace dmr::hive
