#ifndef DMR_EXEC_VECTORIZED_H_
#define DMR_EXEC_VECTORIZED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "expr/expression.h"
#include "tpch/columnar.h"

namespace dmr::exec {

/// \brief Which predicate engine the record-level runtime uses.
///
/// kInterpreted walks the expr::Expression tree per row over
/// std::variant tuples (the original path, kept as the correctness
/// oracle); kVectorized runs the compiled kernel program below over
/// columnar batches.
enum class Engine { kInterpreted, kVectorized };

const char* EngineToString(Engine engine);

/// Rows per batch of the vectorized executor. One batch's worth of scratch
/// state fits comfortably in L1/L2 even for deep expressions.
inline constexpr uint32_t kVectorBatchRows = 1024;

/// \brief A predicate over LINEITEM compiled to a flat kernel program.
///
/// Compile() flattens the expr::Expression tree into a postfix instruction
/// sequence with compile-time register allocation: every instruction reads
/// its operand slots and writes one output slot, so execution is a single
/// linear sweep with no virtual dispatch, no std::variant, no shared_ptr
/// hops and no allocation. Typing is resolved at compile time from the
/// LINEITEM column kinds (tpch::LineItemColumnKind); expressions the
/// interpreter would reject per-row with a type error are rejected here
/// once, at compile time.
///
/// Semantics mirror expr::EvaluatePredicate exactly for well-typed
/// predicates: AND/OR short-circuit per row via selection-vector
/// refinement, BETWEEN/IN/LIKE match the interpreted results, and
/// constant subtrees are folded through the interpreter itself.
class PredicateProgram {
 public:
  /// Compiles `expr` against the LINEITEM schema. Fails on unknown
  /// columns and statically ill-typed expressions.
  static Result<PredicateProgram> Compile(const expr::Expression& expr);

  // Out-of-line: Instr/DictTableSpec are incomplete here.
  ~PredicateProgram();
  PredicateProgram(PredicateProgram&&) noexcept;
  PredicateProgram& operator=(PredicateProgram&&) noexcept;

  /// Number of kernel instructions (after fusion and constant folding).
  size_t num_instructions() const;

  /// The column slots EvaluateZoneMap consults for this program — the set
  /// a piggybacked per-batch index must fold to be useful for it. Columns
  /// the abstract evaluator ignores (generic string comparisons, LIKE over
  /// date text) are excluded: their zone slots would never be read.
  tpch::ZoneMapColumns ZoneMapColumnsUsed() const;

  /// Disassembly, one instruction per line (tests and debugging).
  std::string ToString() const;

 private:
  friend class BoundPredicate;
  friend class ProgramCompiler;

  PredicateProgram() = default;

  struct Instr;
  struct DictTableSpec;

  std::vector<Instr> code_;
  std::vector<std::string> str_pool_;
  std::vector<std::vector<int64_t>> i64_sets_;
  std::vector<std::vector<double>> f64_sets_;
  std::vector<std::vector<int32_t>> date_sets_;
  std::vector<DictTableSpec> dict_tables_;
  int num_i64_slots_ = 0;
  int num_f64_slots_ = 0;
  int num_bool_slots_ = 0;
  int max_ctrl_depth_ = 0;
  int result_slot_ = -1;
};

/// \brief Tri-state verdict of evaluating a predicate against a zone map.
///
/// kNoMatch means no row in the zoned range can satisfy the predicate, so
/// the range may be skipped without scanning (the pruning guarantee);
/// kAllMatch means every row satisfies it; kMaybe means the zone map
/// cannot decide and the rows must be scanned.
enum class PruneVerdict : uint8_t { kNoMatch, kMaybe, kAllMatch };

const char* PruneVerdictToString(PruneVerdict verdict);

/// \brief A PredicateProgram bound to one columnar partition.
///
/// Binding precomputes every dictionary-dependent table (comparisons
/// against literals, LIKE matches, IN membership) once per distinct value
/// of the partition's dictionaries — the evaluation cost of LIKE drops
/// from per-row to per-distinct-value. The binding borrows both the
/// program and the partition; scratch buffers are allocated here and
/// reused across batches, so the batch loop itself never allocates.
class BoundPredicate {
 public:
  BoundPredicate(const PredicateProgram* program,
                 const tpch::ColumnarPartition* partition);

  /// Appends the ids of rows in [begin, end) satisfying the predicate to
  /// `out`, in ascending order. The only runtime failure is division by
  /// zero on an evaluated lane (mirroring the interpreter).
  Status FilterRange(uint32_t begin, uint32_t end,
                     std::vector<uint32_t>* out);

  /// FilterRange over the whole partition.
  Status FilterAll(std::vector<uint32_t>* out);

  /// Evaluates the compiled program against a zone map of this partition
  /// (the partition-level map or a refined per-range map from
  /// ColumnarPartition::BuildZoneMap) by tri-state abstract
  /// interpretation: column loads become [min, max] intervals, dictionary
  /// tables reduce over the codes present in the range, and booleans live
  /// in {false, maybe, true}. Returns kNoMatch only when provably no row
  /// in the range satisfies the predicate — the caller may then skip the
  /// scan without changing match counts. A division whose divisor
  /// interval may contain zero poisons the analysis to kMaybe, so a range
  /// on which the real scan would raise the interpreter's
  /// division-by-zero error is never skipped.
  PruneVerdict EvaluateZoneMap(const tpch::ZoneMap& zm) const;

 private:
  Status RunBatch(uint32_t base, uint32_t end, std::vector<uint32_t>* out);

  const PredicateProgram* program_;
  const tpch::ColumnarPartition* partition_;
  // Bind-time per-dictionary-code truth tables, parallel to
  // program_->dict_tables_.
  std::vector<std::vector<uint8_t>> dict_tables_;
  // Scratch register pools, one kVectorBatchRows-sized buffer per slot.
  std::vector<std::vector<int64_t>> i64_slots_;
  std::vector<std::vector<double>> f64_slots_;
  std::vector<std::vector<uint8_t>> bool_slots_;
  // Selection vectors: the live one plus one saved copy per control depth.
  std::vector<uint32_t> sel_;
  std::vector<std::vector<uint32_t>> saved_sel_;
  std::vector<uint32_t> saved_count_;
};

/// \brief Convenience: counts matching rows of a whole partition.
Result<uint64_t> CountMatches(const PredicateProgram& program,
                              const tpch::ColumnarPartition& partition);

}  // namespace dmr::exec

#endif  // DMR_EXEC_VECTORIZED_H_
