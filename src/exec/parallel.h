#ifndef DMR_EXEC_PARALLEL_H_
#define DMR_EXEC_PARALLEL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace dmr::exec {

/// \brief A fixed-size thread pool with a bounded FIFO task queue.
///
/// Deliberately work-stealing-free: tasks are taken in submission order from
/// a single queue, which keeps the pool simple and the scheduling overhead
/// negligible next to experiment-cell granularity (milliseconds to minutes).
/// Submit blocks once `queue_capacity` tasks are waiting, providing natural
/// backpressure for producers that enumerate huge grids.
///
/// Used by the experiment harness to fan independent simulation cells out
/// across hardware threads. Each cell must build its own Simulation (the
/// one-Simulation-per-thread determinism contract, see DESIGN.md §9).
class ThreadPool {
 public:
  /// \param num_threads     worker count; <= 0 selects HardwareThreads().
  /// \param queue_capacity  max queued (not yet running) tasks before
  ///                        Submit blocks.
  explicit ThreadPool(int num_threads = 0, size_t queue_capacity = 1024);

  /// Drains outstanding tasks, then joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; blocks while the queue is at capacity.
  void Submit(std::function<void()> task);

  /// Blocks until every task submitted so far has finished.
  void Wait();

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Worker count used for `num_threads <= 0`: the DMR_THREADS environment
  /// variable when set to a positive integer, else hardware concurrency.
  static int HardwareThreads();

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable task_ready_;   // workers wait for tasks/shutdown
  std::condition_variable space_ready_;  // producers wait for queue space
  std::condition_variable idle_;         // Wait() waits for quiescence
  std::deque<std::function<void()>> queue_;
  size_t queue_capacity_;
  size_t in_flight_ = 0;  // queued + currently running
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// \brief Runs `fn(i)` for every i in [0, n) on the pool and blocks until
/// all complete. Returns the Status of the lowest-index failure (subsequent
/// cells still run; deterministic error reporting regardless of timing).
Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& fn);

/// \brief Computes `fn(i)` for every i in [0, n) on the pool and returns the
/// results in index order — the parallel analogue of a serial cell loop,
/// with bit-identical output as long as each cell is self-contained.
/// On failure returns the Status of the lowest-index failed cell.
template <typename T>
Result<std::vector<T>> ParallelMap(
    ThreadPool* pool, size_t n,
    const std::function<Result<T>(size_t)>& fn) {
  std::vector<Result<T>> cells;
  cells.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    cells.emplace_back(Status::Internal("cell not run"));
  }
  Status status = ParallelFor(pool, n, [&](size_t i) {
    cells[i] = fn(i);
    return cells[i].status();
  });
  DMR_RETURN_NOT_OK(status);
  std::vector<T> values;
  values.reserve(n);
  for (auto& cell : cells) values.push_back(std::move(cell).ValueUnsafe());
  return values;
}

/// \brief Evaluates a rows x cols grid of independent cells on the pool and
/// returns results as `grid[row][col]`, preserving the serial iteration
/// order. The workhorse of the bench drivers: rows are typically policies,
/// columns scales/skews/fractions.
template <typename T>
Result<std::vector<std::vector<T>>> ParallelGrid(
    ThreadPool* pool, size_t rows, size_t cols,
    const std::function<Result<T>(size_t row, size_t col)>& fn) {
  DMR_ASSIGN_OR_RETURN(
      std::vector<T> flat,
      (ParallelMap<T>(pool, rows * cols, [&](size_t i) {
        return fn(i / cols, i % cols);
      })));
  std::vector<std::vector<T>> grid(rows);
  for (size_t r = 0; r < rows; ++r) {
    grid[r].reserve(cols);
    for (size_t c = 0; c < cols; ++c) {
      grid[r].push_back(std::move(flat[r * cols + c]));
    }
  }
  return grid;
}

}  // namespace dmr::exec

#endif  // DMR_EXEC_PARALLEL_H_
