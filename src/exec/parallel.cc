#include "exec/parallel.h"

#include <atomic>
#include <cstdlib>

namespace dmr::exec {

int ThreadPool::HardwareThreads() {
  if (const char* env = std::getenv("DMR_THREADS")) {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity)
    : queue_capacity_(queue_capacity > 0 ? queue_capacity : 1) {
  int n = num_threads > 0 ? num_threads : HardwareThreads();
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    space_ready_.wait(lock, [this] {
      return queue_.size() < queue_capacity_ || shutdown_;
    });
    if (shutdown_) return;  // tasks submitted after shutdown are dropped
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [this] { return in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return !queue_.empty() || shutdown_; });
      if (queue_.empty()) {
        if (shutdown_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    space_ready_.notify_one();
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (--in_flight_ == 0) idle_.notify_all();
    }
  }
}

Status ParallelFor(ThreadPool* pool, size_t n,
                   const std::function<Status(size_t)>& fn) {
  // Lowest failed index wins so error reporting is deterministic no matter
  // how the cells interleave across workers.
  std::atomic<size_t> first_error{n};
  std::vector<Status> errors(n);
  for (size_t i = 0; i < n; ++i) {
    pool->Submit([&, i] {
      Status status = fn(i);
      if (!status.ok()) {
        errors[i] = std::move(status);
        size_t current = first_error.load(std::memory_order_relaxed);
        while (i < current && !first_error.compare_exchange_weak(
                                  current, i, std::memory_order_release,
                                  std::memory_order_relaxed)) {
        }
      }
    });
  }
  pool->Wait();
  size_t bad = first_error.load(std::memory_order_acquire);
  if (bad < n) return errors[bad];
  return Status::OK();
}

}  // namespace dmr::exec
