#ifndef DMR_EXEC_LOCAL_RUNTIME_H_
#define DMR_EXEC_LOCAL_RUNTIME_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "dynamic/growth_policy.h"
#include "exec/layout_catalog.h"
#include "exec/vectorized.h"
#include "expr/expression.h"
#include "hive/compiler.h"
#include "sampling/sampler.h"
#include "tpch/generator.h"

namespace dmr::obs {
class Scope;
}  // namespace dmr::obs

namespace dmr::exec {

/// \brief Options for local execution.
struct LocalRunOptions {
  /// Worker threads = "map slots" of the local mini-cluster.
  int num_threads = 4;
  /// Reduce-side trim mode (Algorithm 2 or the footnote's reservoir).
  sampling::SampleMode sample_mode = sampling::SampleMode::kFirstK;
  uint64_t seed = 7;
  /// Predicate engine for the record-level scan. Both engines produce the
  /// same result rows in the same order for the same (seed, dataset); the
  /// interpreted engine remains as the correctness oracle.
  Engine engine = Engine::kVectorized;
  /// Zone-map pruning (DESIGN.md §16): evaluate the compiled predicate
  /// against per-partition stats and skip partitions/batches that provably
  /// cannot match. Vectorized engine only. Match counts, sampled rows and
  /// the provider's counter stream are byte-identical with pruning on or
  /// off — a pruned partition still reports its rows as seen and zero
  /// matched, exactly like a real scan; only the physical cost changes.
  bool zone_map_pruning = false;
  /// Piggybacked adaptive indexing (Richter et al.): the first full scan
  /// of a partition registers per-batch refined zone maps here as a side
  /// effect; repeated predicates then scan only qualifying batches. Null
  /// disables; only consulted when zone_map_pruning is on. The catalog
  /// must outlive the runtime and belong to this dataset.
  LayoutCatalog* layout_catalog = nullptr;
  /// Observability scope for the exec.* pruning/indexing counters
  /// (null = off, the usual zero-overhead contract).
  obs::Scope* obs = nullptr;
  /// Let the sampling provider consume the per-split stats hints computed
  /// under zone_map_pruning: cheapest-first grab and per-split yield
  /// projection instead of the uniform draw. Draws a different (still
  /// deterministic) sample — keep it off when comparing digests against
  /// the uniform path.
  bool cost_aware_grab = false;
};

/// \brief Outcome of a local run.
struct LocalRunResult {
  /// Projected result rows (sample rows for LIMIT queries).
  std::vector<expr::Tuple> rows;
  uint64_t records_scanned = 0;
  /// Map-output records (candidates that reached the reducer).
  uint64_t candidate_records = 0;
  int partitions_processed = 0;
  int partitions_total = 0;
  /// Input-provider invocations (rounds of incremental growth).
  int provider_rounds = 0;
  /// Final selectivity estimate (-1 when nothing was processed).
  double estimated_selectivity = -1.0;
  /// Physical-cost counters of the adaptive-layout path. records_scanned
  /// above is the logical count (unchanged by pruning); this is what the
  /// engine actually touched. Equal to records_scanned when pruning is off.
  uint64_t rows_physically_scanned = 0;
  /// Partitions skipped whole (or resolved whole) by the partition-level
  /// zone map.
  uint64_t partitions_pruned = 0;
  /// Batches skipped (or resolved) by a piggybacked per-batch index.
  uint64_t batches_pruned = 0;
  /// Piggybacked indexes registered by this run's first scans.
  uint64_t index_builds = 0;
  /// Map tasks that consumed a previously registered index.
  uint64_t index_hits = 0;
};

/// \brief Executes compiled queries over materialized datasets on the local
/// machine — the record-level counterpart of the cluster simulator.
///
/// Sampling queries run the paper's exact loop, synchronously: the Input
/// Provider picks an initial uniform batch of partitions, a pool of worker
/// threads applies Algorithm 1 to each, and the provider is re-evaluated
/// with the accumulated counters until it declares end-of-input; Algorithm 2
/// then trims the candidates to k. Because rounds are synchronous, the
/// policy's EvaluationInterval and WorkThreshold do not apply here — only
/// its GrabLimit shapes the growth (with AS = idle worker threads).
class LocalRuntime {
 public:
  explicit LocalRuntime(LocalRunOptions options);

  /// Executes `query` over `dataset` (sampling when query.limit > 0, full
  /// select-project scan otherwise). The policy's GrabLimit drives growth
  /// for sampling queries.
  Result<LocalRunResult> Execute(const hive::CompiledQuery& query,
                                 const tpch::MaterializedDataset& dataset,
                                 const dynamic::GrowthPolicy& policy);

 private:
  struct PartitionOutput {
    /// Interpreted path: copied candidate tuples.
    std::vector<expr::Tuple> emitted;
    /// Vectorized path: candidate positions; rows materialize post-reduce.
    std::vector<sampling::RowRef> refs;
    uint64_t records_seen = 0;
    uint64_t records_matched = 0;
    // Adaptive-layout accounting (see LocalRunResult).
    uint64_t rows_physical = 0;
    uint32_t partitions_pruned = 0;
    uint32_t batches_pruned = 0;
    uint32_t index_built = 0;
    uint32_t index_hit = 0;
  };

  /// Applies Algorithm 1 to one partition (interpreted engine).
  Result<PartitionOutput> RunMapTask(
      const std::vector<tpch::LineItemRow>& partition,
      const expr::ExprPtr& predicate, uint64_t k) const;

  /// Applies Algorithm 1 to one columnar partition (vectorized engine);
  /// `program` may be null for predicate-less scans.
  Result<PartitionOutput> RunMapTaskVectorized(
      const tpch::ColumnarPartition& partition, uint32_t partition_id,
      const PredicateProgram* program, uint64_t k) const;

  LocalRunOptions options_;
};

}  // namespace dmr::exec

#endif  // DMR_EXEC_LOCAL_RUNTIME_H_
