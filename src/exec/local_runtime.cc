#include "exec/local_runtime.h"

#include <future>
#include <memory>

#include "common/logging.h"
#include "dynamic/sampling_input_provider.h"
#include "obs/scope.h"
#include "prof/prof.h"
#include "tpch/lineitem.h"

namespace dmr::exec {

using mapred::InputSplit;

LocalRuntime::LocalRuntime(LocalRunOptions options) : options_(options) {
  DMR_CHECK_GT(options_.num_threads, 0);
}

Result<LocalRuntime::PartitionOutput> LocalRuntime::RunMapTask(
    const std::vector<tpch::LineItemRow>& partition,
    const expr::ExprPtr& predicate, uint64_t k) const {
  PartitionOutput out;
  if (!predicate) {
    // No WHERE clause: every record is a candidate (up to the per-map cap).
    out.records_seen = partition.size();
    out.records_matched = partition.size();
    out.rows_physical = partition.size();
    uint64_t cap = k == 0 ? partition.size() : k;
    for (const auto& row : partition) {
      if (out.emitted.size() >= cap) break;
      out.emitted.push_back(tpch::ToTuple(row));
    }
    return out;
  }
  sampling::SamplingMapper mapper(
      predicate, &tpch::LineItemSchema(),
      k == 0 ? static_cast<uint64_t>(partition.size()) : k);
  for (const auto& row : partition) {
    DMR_ASSIGN_OR_RETURN(bool matched,
                         mapper.Map(tpch::ToTuple(row), &out.emitted));
    (void)matched;
  }
  out.records_seen = mapper.records_seen();
  out.records_matched = mapper.records_matched();
  out.rows_physical = out.records_seen;  // the interpreter never prunes
  return out;
}

Result<LocalRuntime::PartitionOutput> LocalRuntime::RunMapTaskVectorized(
    const tpch::ColumnarPartition& partition, uint32_t partition_id,
    const PredicateProgram* program, uint64_t k) const {
  PartitionOutput out;
  const uint64_t num_rows = partition.num_rows();
  const uint64_t cap = k == 0 ? num_rows : k;
  if (!program) {
    // No WHERE clause: every record is a candidate (up to the per-map cap).
    out.records_seen = num_rows;
    out.records_matched = num_rows;
    out.rows_physical = num_rows;
    const uint32_t limit = static_cast<uint32_t>(std::min(cap, num_rows));
    out.refs.reserve(limit);
    for (uint32_t row = 0; row < limit; ++row) {
      out.refs.push_back(sampling::RowRef{partition_id, row});
    }
    return out;
  }
  static const prof::PhaseId kScanPhase =
      prof::RegisterPhase("exec", "vectorized_scan");
  static const prof::PhaseId kPrunePhase =
      prof::RegisterPhase("exec", "zone_prune");
  prof::ScopedTimer prof_frame(kScanPhase);
  BoundPredicate bound(program, &partition);
  std::vector<uint32_t> matches;
  if (!options_.zone_map_pruning) {
    DMR_RETURN_NOT_OK(bound.FilterAll(&matches));
    out.rows_physical = num_rows;
  } else {
    prof::ScopedTimer prune_frame(kPrunePhase);
    // Adaptive-layout path (DESIGN.md §16). Whatever gets skipped, the
    // SamplingMapper below still sees `num_rows` records and exactly the
    // rows a full scan would have matched, so every downstream counter and
    // RNG draw is byte-identical to the unpruned run.
    LayoutCatalog* catalog = options_.layout_catalog;
    const PartitionIndex* index =
        catalog != nullptr ? catalog->Find(partition_id) : nullptr;
    const uint32_t rows32 = static_cast<uint32_t>(num_rows);
    switch (bound.EvaluateZoneMap(partition.zone_map())) {
      case PruneVerdict::kNoMatch:
        out.partitions_pruned = 1;
        break;
      case PruneVerdict::kAllMatch:
        out.partitions_pruned = 1;
        matches.reserve(rows32);
        for (uint32_t row = 0; row < rows32; ++row) matches.push_back(row);
        break;
      case PruneVerdict::kMaybe:
        if (index != nullptr) {
          out.index_hit = 1;
          for (const tpch::ZoneMap& zm : index->batches) {
            switch (bound.EvaluateZoneMap(zm)) {
              case PruneVerdict::kNoMatch:
                ++out.batches_pruned;
                break;
              case PruneVerdict::kAllMatch:
                ++out.batches_pruned;
                for (uint32_t row = zm.row_begin; row < zm.row_end; ++row) {
                  matches.push_back(row);
                }
                break;
              case PruneVerdict::kMaybe:
                out.rows_physical += zm.rows();
                DMR_RETURN_NOT_OK(
                    bound.FilterRange(zm.row_begin, zm.row_end, &matches));
                break;
            }
          }
        } else {
          // First undecided scan: full filter, and piggyback the per-batch
          // index for repeated predicates on this partition.
          out.rows_physical = num_rows;
          DMR_RETURN_NOT_OK(bound.FilterAll(&matches));
          if (catalog != nullptr &&
              catalog->Register(partition_id,
                                BuildPartitionIndex(
                                    partition, kVectorBatchRows,
                                    program->ZoneMapColumnsUsed()))) {
            out.index_built = 1;
          }
        }
        break;
    }
  }
  sampling::SamplingMapper mapper(nullptr, &tpch::LineItemSchema(), cap);
  mapper.MapMatches(num_rows, matches, partition_id, &out.refs);
  out.records_seen = mapper.records_seen();
  out.records_matched = mapper.records_matched();
  return out;
}

Result<LocalRunResult> LocalRuntime::Execute(
    const hive::CompiledQuery& query,
    const tpch::MaterializedDataset& dataset,
    const dynamic::GrowthPolicy& policy) {
  LocalRunResult result;
  result.partitions_total = static_cast<int>(dataset.partitions.size());

  // Fabricate splits describing the in-memory partitions (the provider only
  // reads metadata, never ground truth).
  std::vector<InputSplit> splits;
  splits.reserve(dataset.partitions.size());
  for (size_t i = 0; i < dataset.partitions.size(); ++i) {
    InputSplit split;
    split.file = query.conf.input_file();
    split.index = static_cast<int>(i);
    split.num_records = dataset.partitions[i].size();
    split.size_bytes = split.num_records * tpch::kLineItemRecordBytes;
    splits.push_back(split);
  }

  const bool vectorized = options_.engine == Engine::kVectorized;
  std::unique_ptr<PredicateProgram> program;
  if (vectorized && query.predicate) {
    DMR_ASSIGN_OR_RETURN(PredicateProgram compiled,
                         PredicateProgram::Compile(*query.predicate));
    program = std::make_unique<PredicateProgram>(std::move(compiled));
  }
  // Datasets built by MaterializeDataset carry their columnar form; others
  // (e.g. loaded from disk) are converted here once per Execute.
  tpch::ColumnarDataset local_columnar;
  const tpch::ColumnarDataset* columnar = &dataset.columnar;
  if (vectorized && dataset.columnar.size() != dataset.partitions.size()) {
    local_columnar.reserve(dataset.partitions.size());
    for (const auto& rows : dataset.partitions) {
      DMR_ASSIGN_OR_RETURN(tpch::ColumnarPartition part,
                           tpch::ColumnarPartition::FromRows(rows));
      local_columnar.push_back(std::move(part));
    }
    columnar = &local_columnar;
  }

  // With pruning on, stamp each split with its stats hints (DESIGN.md
  // §16): the zone-map verdict bounds the selectivity, and a registered
  // piggybacked index refines the scan fraction to the qualifying
  // batches. The hints feed the provider's cost-aware mode and the
  // simulator's cost model; the default-constructed values (1.0 / -1)
  // leave every consumer at full-scan behaviour.
  if (vectorized && program != nullptr && options_.zone_map_pruning) {
    for (InputSplit& split : splits) {
      const tpch::ColumnarPartition& part = (*columnar)[split.index];
      if (part.num_rows() == 0) {
        split.scan_fraction = 0.0;
        split.hint_selectivity = 0.0;
        continue;
      }
      BoundPredicate bound(program.get(), &part);
      switch (bound.EvaluateZoneMap(part.zone_map())) {
        case PruneVerdict::kNoMatch:
          split.scan_fraction = 0.0;
          split.hint_selectivity = 0.0;
          break;
        case PruneVerdict::kAllMatch:
          split.scan_fraction = 0.0;
          split.hint_selectivity = 1.0;
          break;
        case PruneVerdict::kMaybe:
          if (options_.layout_catalog != nullptr) {
            const PartitionIndex* index = options_.layout_catalog->Find(
                static_cast<uint32_t>(split.index));
            if (index != nullptr && index->num_rows > 0) {
              uint64_t maybe_rows = 0;
              for (const tpch::ZoneMap& zm : index->batches) {
                if (bound.EvaluateZoneMap(zm) == PruneVerdict::kMaybe) {
                  maybe_rows += zm.rows();
                }
              }
              split.scan_fraction = static_cast<double>(maybe_rows) /
                                    static_cast<double>(index->num_rows);
            }
          }
          break;
      }
    }
  }

  const uint64_t k = query.limit;
  mapred::ClusterStatus status;
  status.total_map_slots = options_.num_threads;
  status.occupied_map_slots = 0;
  status.running_jobs = 1;

  // Decide the sequence of partition batches to process.
  std::vector<std::vector<InputSplit>> batches;
  std::unique_ptr<dynamic::SamplingInputProvider> provider;
  if (query.is_sampling()) {
    dynamic::SamplingInputProvider::Options popts;
    popts.use_split_hints = options_.cost_aware_grab;
    provider = std::make_unique<dynamic::SamplingInputProvider>(
        policy, options_.seed, popts);
    DMR_RETURN_NOT_OK(provider->Initialize(splits, query.conf));
  }

  mapred::JobProgress progress;
  progress.splits_total = static_cast<int>(splits.size());
  std::vector<expr::Tuple> candidates;
  std::vector<sampling::RowRef> ref_candidates;

  auto process_batch = [&](const std::vector<InputSplit>& batch) -> Status {
    // Fan the batch out in waves of at most num_threads workers.
    for (size_t base = 0; base < batch.size();
         base += static_cast<size_t>(options_.num_threads)) {
      size_t wave_end = std::min(
          batch.size(), base + static_cast<size_t>(options_.num_threads));
      std::vector<std::future<Result<PartitionOutput>>> futures;
      futures.reserve(wave_end - base);
      for (size_t b = base; b < wave_end; ++b) {
        const int index = batch[b].index;
        futures.push_back(std::async(
            std::launch::async,
            [this, index, &dataset, columnar, &query, k, vectorized,
             prog = program.get()]() -> Result<PartitionOutput> {
              if (vectorized) {
                return RunMapTaskVectorized((*columnar)[index],
                                            static_cast<uint32_t>(index),
                                            prog, k);
              }
              return RunMapTask(dataset.partitions[index], query.predicate,
                                k);
            }));
      }
      for (auto& future : futures) {
        Result<PartitionOutput> out = future.get();
        if (!out.ok()) return out.status();
        progress.maps_completed += 1;
        progress.records_processed += out->records_seen;
        progress.output_records += out->emitted.size() + out->refs.size();
        result.records_scanned += out->records_seen;
        result.partitions_processed += 1;
        result.rows_physically_scanned += out->rows_physical;
        result.partitions_pruned += out->partitions_pruned;
        result.batches_pruned += out->batches_pruned;
        result.index_builds += out->index_built;
        result.index_hits += out->index_hit;
        for (auto& tuple : out->emitted) {
          candidates.push_back(std::move(tuple));
        }
        for (sampling::RowRef ref : out->refs) {
          ref_candidates.push_back(ref);
        }
      }
    }
    return Status::OK();
  };

  if (query.is_sampling()) {
    mapred::InputResponse response = provider->GetInitialInput(status);
    while (response.kind == mapred::InputResponseKind::kInputAvailable) {
      ++result.provider_rounds;
      progress.splits_added += static_cast<int>(response.splits.size());
      DMR_RETURN_NOT_OK(process_batch(response.splits));
      progress.pending_records = 0;  // rounds are synchronous
      response = provider->Evaluate(progress, status);
      if (response.kind == mapred::InputResponseKind::kNoInputAvailable) {
        // Unreachable for a starved synchronous job; guard anyway.
        return Status::Internal(
            "provider returned no-input-available for a starved job");
      }
    }
    result.estimated_selectivity = provider->estimated_selectivity();
  } else {
    ++result.provider_rounds;
    progress.splits_added = static_cast<int>(splits.size());
    DMR_RETURN_NOT_OK(process_batch(splits));
    if (progress.records_processed > 0) {
      result.estimated_selectivity =
          static_cast<double>(progress.output_records) /
          static_cast<double>(progress.records_processed);
    }
  }

  result.candidate_records = candidates.size() + ref_candidates.size();

  if (options_.obs != nullptr) {
    obs::Scope* s = options_.obs;
    s->Count(s->m().exec_partitions_pruned,
             static_cast<int64_t>(result.partitions_pruned));
    s->Count(s->m().exec_batches_pruned,
             static_cast<int64_t>(result.batches_pruned));
    s->Count(s->m().exec_rows_skipped,
             static_cast<int64_t>(result.records_scanned -
                                  result.rows_physically_scanned));
    s->Count(s->m().exec_index_builds,
             static_cast<int64_t>(result.index_builds));
    s->Count(s->m().exec_index_hits,
             static_cast<int64_t>(result.index_hits));
  }

  // Reduce phase: trim to k (Algorithm 2) and project. The vectorized path
  // reduces positions and materializes only the final sample's projected
  // columns; both reducers consume the RNG stream identically, so the two
  // engines select the same rows.
  if (vectorized) {
    std::vector<sampling::RowRef> final_refs;
    if (query.is_sampling()) {
      sampling::RefSamplingReducer reducer(k, options_.sample_mode,
                                           options_.seed);
      for (sampling::RowRef ref : ref_candidates) reducer.Add(ref);
      final_refs = reducer.Finish();
    } else {
      final_refs = std::move(ref_candidates);
    }
    result.rows.reserve(final_refs.size());
    for (sampling::RowRef ref : final_refs) {
      const tpch::ColumnarPartition& part = (*columnar)[ref.partition];
      expr::Tuple projected;
      projected.reserve(query.projection.size());
      for (int index : query.projection) {
        projected.push_back(part.ValueAt(index, ref.row));
      }
      result.rows.push_back(std::move(projected));
    }
    return result;
  }

  std::vector<expr::Tuple> reduced;
  if (query.is_sampling()) {
    sampling::SamplingReducer reducer(k, options_.sample_mode,
                                      options_.seed);
    for (auto& tuple : candidates) reducer.Add(std::move(tuple));
    reduced = reducer.Finish();
  } else {
    reduced = std::move(candidates);
  }

  result.rows.reserve(reduced.size());
  for (const auto& tuple : reduced) {
    expr::Tuple projected;
    projected.reserve(query.projection.size());
    for (int index : query.projection) projected.push_back(tuple[index]);
    result.rows.push_back(std::move(projected));
  }
  return result;
}

}  // namespace dmr::exec
