#include "exec/vectorized.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

#include "common/logging.h"
#include "tpch/lineitem.h"

namespace dmr::exec {

using expr::BinaryOp;
using expr::Expression;
using expr::Value;
using expr::ValueType;
using tpch::ColumnarPartition;
using tpch::ColumnKind;

namespace {

/// Kernel opcodes. Every instruction reads operand register slots (in1/in2)
/// or fused column/literal operands and writes one output slot; control ops
/// (kAndThen/kAndEnd, kOrElse/kOrEnd) refine and restore the selection
/// vector to give AND/OR exact per-row short-circuit semantics.
enum class Op : uint8_t {
  kLoadColI64,
  kLoadColF64,
  kLoadLitI64,
  kLoadLitF64,
  kLoadLitBool,
  kCastI64ToF64,
  kAddI64,
  kSubI64,
  kMulI64,
  kNegI64,
  kAddF64,
  kSubF64,
  kMulF64,
  kDivF64,
  kNegF64,
  kCmpI64,
  kCmpF64,
  kCmpBool,
  kCmpColLit,
  kCmpColCol,
  kDictTable,
  kCmpStrGeneric,
  kLikeDateCol,
  kInColI64,
  kInColF64,
  kInColDate,
  kInI64,
  kInF64,
  kNot,
  kAndEager,
  kAndThen,
  kAndEnd,
  kOrElse,
  kOrEnd,
};

const char* OpName(Op op) {
  switch (op) {
    case Op::kLoadColI64: return "load_col_i64";
    case Op::kLoadColF64: return "load_col_f64";
    case Op::kLoadLitI64: return "load_lit_i64";
    case Op::kLoadLitF64: return "load_lit_f64";
    case Op::kLoadLitBool: return "load_lit_bool";
    case Op::kCastI64ToF64: return "cast_i64_f64";
    case Op::kAddI64: return "add_i64";
    case Op::kSubI64: return "sub_i64";
    case Op::kMulI64: return "mul_i64";
    case Op::kNegI64: return "neg_i64";
    case Op::kAddF64: return "add_f64";
    case Op::kSubF64: return "sub_f64";
    case Op::kMulF64: return "mul_f64";
    case Op::kDivF64: return "div_f64";
    case Op::kNegF64: return "neg_f64";
    case Op::kCmpI64: return "cmp_i64";
    case Op::kCmpF64: return "cmp_f64";
    case Op::kCmpBool: return "cmp_bool";
    case Op::kCmpColLit: return "cmp_col_lit";
    case Op::kCmpColCol: return "cmp_col_col";
    case Op::kDictTable: return "dict_table";
    case Op::kCmpStrGeneric: return "cmp_str_generic";
    case Op::kLikeDateCol: return "like_date_col";
    case Op::kInColI64: return "in_col_i64";
    case Op::kInColF64: return "in_col_f64";
    case Op::kInColDate: return "in_col_date";
    case Op::kInI64: return "in_i64";
    case Op::kInF64: return "in_f64";
    case Op::kNot: return "not";
    case Op::kAndEager: return "and_eager";
    case Op::kAndThen: return "and_then";
    case Op::kAndEnd: return "and_end";
    case Op::kOrElse: return "or_else";
    case Op::kOrEnd: return "or_end";
  }
  return "?";
}

/// Applies a comparison operator to a three-way comparison sign.
bool ApplyCmpSign(BinaryOp cmp, int c) {
  switch (cmp) {
    case BinaryOp::kEq: return c == 0;
    case BinaryOp::kNe: return c != 0;
    case BinaryOp::kLt: return c < 0;
    case BinaryOp::kLe: return c <= 0;
    case BinaryOp::kGt: return c > 0;
    case BinaryOp::kGe: return c >= 0;
    default: break;
  }
  DMR_CHECK(false);
  return false;
}

/// Flips a comparison so that `a cmp b` == `b Flip(cmp) a`.
BinaryOp FlipCmp(BinaryOp cmp) {
  switch (cmp) {
    case BinaryOp::kLt: return BinaryOp::kGt;
    case BinaryOp::kLe: return BinaryOp::kGe;
    case BinaryOp::kGt: return BinaryOp::kLt;
    case BinaryOp::kGe: return BinaryOp::kLe;
    default: return cmp;  // kEq / kNe are symmetric
  }
}

/// Invokes `f` with a comparator functor selected by `cmp` — hoists the
/// operator dispatch out of the per-lane loops.
template <typename F>
void WithCmp(BinaryOp cmp, F&& f) {
  switch (cmp) {
    case BinaryOp::kEq: f([](auto a, auto b) { return a == b; }); return;
    case BinaryOp::kNe: f([](auto a, auto b) { return a != b; }); return;
    case BinaryOp::kLt: f([](auto a, auto b) { return a < b; }); return;
    case BinaryOp::kLe: f([](auto a, auto b) { return a <= b; }); return;
    case BinaryOp::kGt: f([](auto a, auto b) { return a > b; }); return;
    case BinaryOp::kGe: f([](auto a, auto b) { return a >= b; }); return;
    default: DMR_CHECK(false);
  }
}

}  // namespace

struct PredicateProgram::Instr {
  Op op;
  BinaryOp cmp = BinaryOp::kEq;
  int col = -1;       // primary column (fused ops)
  int col2 = -1;      // rhs column (kCmpColCol)
  int slot = -1;      // table/set/str-pool index, or ctrl depth
  int in1 = -1;       // operand register slots
  int in2 = -1;
  int out = -1;       // output register slot
  int64_t i64 = 0;    // literal payloads
  double f64 = 0.0;
  int32_t date = 0;
  bool flag = false;  // bool literal / LIKE negation
  uint8_t lit_kind = 0;  // kCmpColLit: 0 = i64, 1 = f64, 2 = date
  // kCmpStrGeneric operand descriptors: kind 0 = dict col, 1 = date col,
  // 2 = string-pool literal.
  uint8_t sa_kind = 0;
  uint8_t sb_kind = 0;
  int sa = -1;
  int sb = -1;
};

struct PredicateProgram::DictTableSpec {
  enum class Kind : uint8_t { kCmp, kLike, kIn };
  Kind kind = Kind::kCmp;
  int col = -1;
  BinaryOp cmp = BinaryOp::kEq;
  std::string text;   // comparison literal or LIKE pattern
  bool negated = false;
  std::vector<std::string> in_list;
};

PredicateProgram::~PredicateProgram() = default;
size_t PredicateProgram::num_instructions() const { return code_.size(); }

tpch::ZoneMapColumns PredicateProgram::ZoneMapColumnsUsed() const {
  tpch::ZoneMapColumns cols = tpch::ZoneMapColumns::None();
  for (const Instr& ins : code_) {
    switch (ins.op) {
      case Op::kLoadColI64:
      case Op::kLoadColF64:
      case Op::kCmpColLit:
      case Op::kDictTable:
      case Op::kInColI64:
      case Op::kInColF64:
      case Op::kInColDate:
        cols.MarkColumn(ins.col);
        break;
      case Op::kCmpColCol:
        cols.MarkColumn(ins.col);
        cols.MarkColumn(ins.col2);
        break;
      default:
        // kCmpStrGeneric / kLikeDateCol land on kMaybe without reading zone
        // slots; arithmetic and boolean ops read registers, not columns.
        break;
    }
  }
  return cols;
}
PredicateProgram::PredicateProgram(PredicateProgram&&) noexcept = default;
PredicateProgram& PredicateProgram::operator=(PredicateProgram&&) noexcept =
    default;

/// \brief Compiles an Expression tree into a PredicateProgram.
///
/// Compilation performs constant folding (through the interpreter, so folded
/// semantics are the interpreter's by construction), static type checking
/// against the LINEITEM column kinds, operator fusion (column-vs-literal and
/// column-vs-column comparisons never touch scratch registers), and register
/// allocation (each emitted instruction owns its output slot).
class ProgramCompiler {
 public:
  Result<PredicateProgram> Run(const Expression& root) {
    DMR_ASSIGN_OR_RETURN(Operand result, CompileNode(root));
    if (result.type == Type::kBool && result.kind == Kind::kLiteral) {
      result = EmitLoadLitBool(std::get<bool>(result.lit));
    }
    if (result.type != Type::kBool) {
      return Status::InvalidArgument("predicate did not evaluate to BOOL");
    }
    prog_.result_slot_ = result.slot;
    prog_.num_i64_slots_ = num_i64_;
    prog_.num_f64_slots_ = num_f64_;
    prog_.num_bool_slots_ = num_bool_;
    return std::move(prog_);
  }

 private:
  using Instr = PredicateProgram::Instr;
  using DictTableSpec = PredicateProgram::DictTableSpec;
  using Spec = DictTableSpec::Kind;

  enum class Kind : uint8_t { kColumn, kLiteral, kStack };
  /// Static type of a compiled operand. kDate and kDict are column-only;
  /// kStr is literal-only; registers are kI64 / kF64 / kBool.
  enum class Type : uint8_t { kI64, kF64, kBool, kStr, kDate, kDict };

  struct Operand {
    Kind kind;
    Type type;
    int col = -1;   // kColumn
    int slot = -1;  // kStack register
    Value lit;      // kLiteral
  };

  /// The value-type name the interpreter would report for this operand.
  static const char* TypeName(const Operand& o) {
    switch (o.type) {
      case Type::kI64: return "INT64";
      case Type::kF64: return "DOUBLE";
      case Type::kBool: return "BOOL";
      default: return "STRING";
    }
  }

  static bool IsNumeric(const Operand& o) {
    return o.type == Type::kI64 || o.type == Type::kF64;
  }
  static bool IsStringish(const Operand& o) {
    return o.type == Type::kStr || o.type == Type::kDate ||
           o.type == Type::kDict;
  }

  static bool HasColumnRef(const Expression& e) {
    switch (e.kind()) {
      case Expression::Kind::kLiteral:
        return false;
      case Expression::Kind::kColumnRef:
        return true;
      case Expression::Kind::kBinary: {
        const auto& b = static_cast<const expr::BinaryExpr&>(e);
        return HasColumnRef(*b.left()) || HasColumnRef(*b.right());
      }
      case Expression::Kind::kNot:
        return HasColumnRef(
            *static_cast<const expr::NotExpr&>(e).operand());
      case Expression::Kind::kNegate:
        return HasColumnRef(
            *static_cast<const expr::NegateExpr&>(e).operand());
      case Expression::Kind::kBetween: {
        const auto& b = static_cast<const expr::BetweenExpr&>(e);
        return HasColumnRef(*b.operand()) || HasColumnRef(*b.low()) ||
               HasColumnRef(*b.high());
      }
      case Expression::Kind::kIn: {
        const auto& in = static_cast<const expr::InExpr&>(e);
        if (HasColumnRef(*in.operand())) return true;
        for (const auto& c : in.candidates()) {
          if (HasColumnRef(*c)) return true;
        }
        return false;
      }
      case Expression::Kind::kLike:
        return HasColumnRef(
            *static_cast<const expr::LikeExpr&>(e).operand());
    }
    return true;
  }

  static Operand LiteralOperand(Value v) {
    Operand o;
    o.kind = Kind::kLiteral;
    switch (expr::TypeOf(v)) {
      case ValueType::kInt64: o.type = Type::kI64; break;
      case ValueType::kDouble: o.type = Type::kF64; break;
      case ValueType::kString: o.type = Type::kStr; break;
      case ValueType::kBool: o.type = Type::kBool; break;
    }
    o.lit = std::move(v);
    return o;
  }

  // ---- emission helpers ------------------------------------------------

  Operand PushInstr(Instr instr, Type out_type) {
    int slot = -1;
    switch (out_type) {
      case Type::kI64: slot = num_i64_++; break;
      case Type::kF64: slot = num_f64_++; break;
      case Type::kBool: slot = num_bool_++; break;
      default: DMR_CHECK(false);
    }
    instr.out = slot;
    prog_.code_.push_back(instr);
    Operand o;
    o.kind = Kind::kStack;
    o.type = out_type;
    o.slot = slot;
    return o;
  }

  Operand EmitLoadLitBool(bool value) {
    Instr instr;
    instr.op = Op::kLoadLitBool;
    instr.flag = value;
    return PushInstr(instr, Type::kBool);
  }

  /// Materializes `o` as an INT64 register (o must be i64-typed).
  Result<int> EnsureI64(const Operand& o) {
    DMR_CHECK(o.type == Type::kI64);
    if (o.kind == Kind::kStack) return o.slot;
    Instr instr;
    if (o.kind == Kind::kColumn) {
      instr.op = Op::kLoadColI64;
      instr.col = o.col;
    } else {
      instr.op = Op::kLoadLitI64;
      instr.i64 = std::get<int64_t>(o.lit);
    }
    return PushInstr(instr, Type::kI64).slot;
  }

  /// Materializes `o` as a DOUBLE register, inserting promotions.
  Result<int> EnsureF64(const Operand& o) {
    DMR_CHECK(IsNumeric(o));
    if (o.kind == Kind::kStack && o.type == Type::kF64) return o.slot;
    if (o.kind == Kind::kLiteral) {
      Instr instr;
      instr.op = Op::kLoadLitF64;
      instr.f64 = *expr::ToDouble(o.lit);
      return PushInstr(instr, Type::kF64).slot;
    }
    if (o.kind == Kind::kColumn && o.type == Type::kF64) {
      Instr instr;
      instr.op = Op::kLoadColF64;
      instr.col = o.col;
      return PushInstr(instr, Type::kF64).slot;
    }
    DMR_ASSIGN_OR_RETURN(int i64_slot, EnsureI64(o));
    Instr cast;
    cast.op = Op::kCastI64ToF64;
    cast.in1 = i64_slot;
    return PushInstr(cast, Type::kF64).slot;
  }

  /// Materializes `o` as a BOOL register; mirrors the interpreter's AsBool
  /// error for non-boolean operands.
  Result<int> EnsureBool(const Operand& o) {
    if (o.type != Type::kBool) {
      return Status::InvalidArgument("expected BOOL, got " +
                                     std::string(TypeName(o)));
    }
    if (o.kind == Kind::kStack) return o.slot;
    return EmitLoadLitBool(std::get<bool>(o.lit)).slot;
  }

  int AddString(std::string s) {
    prog_.str_pool_.push_back(std::move(s));
    return static_cast<int>(prog_.str_pool_.size()) - 1;
  }

  Operand EmitDictTable(DictTableSpec spec) {
    Instr instr;
    instr.op = Op::kDictTable;
    instr.col = spec.col;
    instr.slot = static_cast<int>(prog_.dict_tables_.size());
    prog_.dict_tables_.push_back(std::move(spec));
    return PushInstr(instr, Type::kBool);
  }

  // ---- compilation -----------------------------------------------------

  Result<Operand> CompileNode(const Expression& e) {
    // Constant subtrees fold through the interpreter itself: whatever it
    // computes (or whatever error it raises) is exactly what a per-row
    // evaluation would have produced, since constants see no row data.
    if (!HasColumnRef(e)) {
      static const expr::Tuple kEmptyRow;
      DMR_ASSIGN_OR_RETURN(
          Value v, e.Evaluate(tpch::LineItemSchema(), kEmptyRow));
      return LiteralOperand(std::move(v));
    }
    switch (e.kind()) {
      case Expression::Kind::kLiteral:
        return LiteralOperand(
            static_cast<const expr::LiteralExpr&>(e).value());
      case Expression::Kind::kColumnRef:
        return CompileColumnRef(static_cast<const expr::ColumnRefExpr&>(e));
      case Expression::Kind::kBinary:
        return CompileBinary(static_cast<const expr::BinaryExpr&>(e));
      case Expression::Kind::kNot: {
        const auto& n = static_cast<const expr::NotExpr&>(e);
        DMR_ASSIGN_OR_RETURN(Operand o, CompileNode(*n.operand()));
        DMR_ASSIGN_OR_RETURN(int slot, EnsureBool(o));
        Instr instr;
        instr.op = Op::kNot;
        instr.in1 = slot;
        return PushInstr(instr, Type::kBool);
      }
      case Expression::Kind::kNegate: {
        const auto& n = static_cast<const expr::NegateExpr&>(e);
        DMR_ASSIGN_OR_RETURN(Operand o, CompileNode(*n.operand()));
        if (!IsNumeric(o)) {
          return Status::InvalidArgument("cannot coerce " +
                                         std::string(TypeName(o)) +
                                         " to a number");
        }
        Instr instr;
        if (o.type == Type::kI64) {
          DMR_ASSIGN_OR_RETURN(instr.in1, EnsureI64(o));
          instr.op = Op::kNegI64;
          return PushInstr(instr, Type::kI64);
        }
        DMR_ASSIGN_OR_RETURN(instr.in1, EnsureF64(o));
        instr.op = Op::kNegF64;
        return PushInstr(instr, Type::kF64);
      }
      case Expression::Kind::kBetween:
        return CompileBetween(static_cast<const expr::BetweenExpr&>(e));
      case Expression::Kind::kIn:
        return CompileIn(static_cast<const expr::InExpr&>(e));
      case Expression::Kind::kLike:
        return CompileLike(static_cast<const expr::LikeExpr&>(e));
    }
    return Status::Internal("unreachable expression kind");
  }

  Result<Operand> CompileColumnRef(const expr::ColumnRefExpr& ref) {
    int col = tpch::LineItemSchema().FindColumn(ref.name());
    if (col < 0) {
      return Status::NotFound("unknown column '" + ref.name() + "'");
    }
    Operand o;
    o.kind = Kind::kColumn;
    o.col = col;
    switch (tpch::LineItemColumnKind(col)) {
      case ColumnKind::kInt64: o.type = Type::kI64; break;
      case ColumnKind::kDouble: o.type = Type::kF64; break;
      case ColumnKind::kDate32: o.type = Type::kDate; break;
      case ColumnKind::kDict: o.type = Type::kDict; break;
    }
    return o;
  }

  Result<Operand> CompileBinary(const expr::BinaryExpr& b) {
    if (b.op() == BinaryOp::kAnd || b.op() == BinaryOp::kOr) {
      return CompileLogic(b);
    }
    DMR_ASSIGN_OR_RETURN(Operand l, CompileNode(*b.left()));
    DMR_ASSIGN_OR_RETURN(Operand r, CompileNode(*b.right()));
    switch (b.op()) {
      case BinaryOp::kEq:
      case BinaryOp::kNe:
      case BinaryOp::kLt:
      case BinaryOp::kLe:
      case BinaryOp::kGt:
      case BinaryOp::kGe:
        return EmitCompare(b.op(), l, r);
      default:
        return EmitArith(b.op(), l, r);
    }
  }

  /// AND/OR with the interpreter's exact short-circuit semantics. When the
  /// pruning side is a known constant the other side is skipped or passed
  /// through exactly as per-row evaluation would have done.
  Result<Operand> CompileLogic(const expr::BinaryExpr& b) {
    const bool is_and = b.op() == BinaryOp::kAnd;
    DMR_ASSIGN_OR_RETURN(Operand l, CompileNode(*b.left()));
    if (l.type != Type::kBool) {
      return Status::InvalidArgument("expected BOOL, got " +
                                     std::string(TypeName(l)));
    }
    if (l.kind == Kind::kLiteral) {
      bool lb = std::get<bool>(l.lit);
      // The interpreter never evaluates the right side on the pruned
      // value, so neither do we (its compile errors are unreachable too).
      if (is_and && !lb) return LiteralOperand(Value(false));
      if (!is_and && lb) return LiteralOperand(Value(true));
      DMR_ASSIGN_OR_RETURN(Operand r, CompileNode(*b.right()));
      if (r.type != Type::kBool) {
        return Status::InvalidArgument("expected BOOL, got " +
                                       std::string(TypeName(r)));
      }
      return r;
    }
    DMR_ASSIGN_OR_RETURN(int lslot, EnsureBool(l));
    int depth = ctrl_depth_++;
    prog_.max_ctrl_depth_ = std::max(prog_.max_ctrl_depth_, ctrl_depth_);
    Instr open;
    open.op = is_and ? Op::kAndThen : Op::kOrElse;
    open.in1 = lslot;
    open.slot = depth;
    prog_.code_.push_back(open);
    DMR_ASSIGN_OR_RETURN(Operand r, CompileNode(*b.right()));
    DMR_ASSIGN_OR_RETURN(int rslot, EnsureBool(r));
    --ctrl_depth_;
    Instr close;
    close.op = is_and ? Op::kAndEnd : Op::kOrEnd;
    close.in1 = lslot;
    close.in2 = rslot;
    close.slot = depth;
    return PushInstr(close, Type::kBool);
  }

  Result<Operand> EmitArith(BinaryOp op, const Operand& l, const Operand& r) {
    if (!IsNumeric(l)) {
      return Status::InvalidArgument("cannot coerce " +
                                     std::string(TypeName(l)) +
                                     " to a number");
    }
    if (!IsNumeric(r)) {
      return Status::InvalidArgument("cannot coerce " +
                                     std::string(TypeName(r)) +
                                     " to a number");
    }
    if (op != BinaryOp::kDiv && l.type == Type::kI64 &&
        r.type == Type::kI64) {
      Instr instr;
      DMR_ASSIGN_OR_RETURN(instr.in1, EnsureI64(l));
      DMR_ASSIGN_OR_RETURN(instr.in2, EnsureI64(r));
      switch (op) {
        case BinaryOp::kAdd: instr.op = Op::kAddI64; break;
        case BinaryOp::kSub: instr.op = Op::kSubI64; break;
        default: instr.op = Op::kMulI64; break;
      }
      return PushInstr(instr, Type::kI64);
    }
    Instr instr;
    DMR_ASSIGN_OR_RETURN(instr.in1, EnsureF64(l));
    DMR_ASSIGN_OR_RETURN(instr.in2, EnsureF64(r));
    switch (op) {
      case BinaryOp::kAdd: instr.op = Op::kAddF64; break;
      case BinaryOp::kSub: instr.op = Op::kSubF64; break;
      case BinaryOp::kMul: instr.op = Op::kMulF64; break;
      default: instr.op = Op::kDivF64; break;
    }
    return PushInstr(instr, Type::kF64);
  }

  Result<Operand> EmitCompare(BinaryOp cmp, const Operand& l,
                              const Operand& r) {
    // Numeric vs numeric.
    if (IsNumeric(l) && IsNumeric(r)) return EmitNumCompare(cmp, l, r);
    // String-ish vs string-ish (dict columns, date columns, literals).
    if (IsStringish(l) && IsStringish(r)) return EmitStrCompare(cmp, l, r);
    if (l.type == Type::kBool && r.type == Type::kBool) {
      Instr instr;
      instr.op = Op::kCmpBool;
      instr.cmp = cmp;
      DMR_ASSIGN_OR_RETURN(instr.in1, EnsureBool(l));
      DMR_ASSIGN_OR_RETURN(instr.in2, EnsureBool(r));
      return PushInstr(instr, Type::kBool);
    }
    return Status::InvalidArgument(std::string("type mismatch comparing ") +
                                   TypeName(l) + " with " + TypeName(r));
  }

  Result<Operand> EmitNumCompare(BinaryOp cmp, const Operand& l,
                                 const Operand& r) {
    if (l.kind == Kind::kLiteral && r.kind == Kind::kLiteral) {
      DMR_ASSIGN_OR_RETURN(int c, expr::CompareValues(l.lit, r.lit));
      return LiteralOperand(Value(ApplyCmpSign(cmp, c)));
    }
    if (l.kind == Kind::kLiteral) {
      return EmitNumCompare(FlipCmp(cmp), r, l);
    }
    if (l.kind == Kind::kColumn && r.kind == Kind::kLiteral) {
      Instr instr;
      instr.op = Op::kCmpColLit;
      instr.cmp = cmp;
      instr.col = l.col;
      if (l.type == Type::kI64 && r.type == Type::kI64) {
        instr.lit_kind = 0;
        instr.i64 = std::get<int64_t>(r.lit);
      } else {
        instr.lit_kind = 1;
        instr.f64 = *expr::ToDouble(r.lit);
      }
      return PushInstr(instr, Type::kBool);
    }
    if (l.kind == Kind::kColumn && r.kind == Kind::kColumn) {
      Instr instr;
      instr.op = Op::kCmpColCol;
      instr.cmp = cmp;
      instr.col = l.col;
      instr.col2 = r.col;
      return PushInstr(instr, Type::kBool);
    }
    // A computed register is involved: compare through registers.
    Instr instr;
    instr.cmp = cmp;
    if (l.type == Type::kI64 && r.type == Type::kI64) {
      instr.op = Op::kCmpI64;
      DMR_ASSIGN_OR_RETURN(instr.in1, EnsureI64(l));
      DMR_ASSIGN_OR_RETURN(instr.in2, EnsureI64(r));
    } else {
      instr.op = Op::kCmpF64;
      DMR_ASSIGN_OR_RETURN(instr.in1, EnsureF64(l));
      DMR_ASSIGN_OR_RETURN(instr.in2, EnsureF64(r));
    }
    return PushInstr(instr, Type::kBool);
  }

  Result<Operand> EmitStrCompare(BinaryOp cmp, const Operand& l,
                                 const Operand& r) {
    if (l.kind == Kind::kLiteral && r.kind == Kind::kLiteral) {
      DMR_ASSIGN_OR_RETURN(int c, expr::CompareValues(l.lit, r.lit));
      return LiteralOperand(Value(ApplyCmpSign(cmp, c)));
    }
    if (l.kind == Kind::kLiteral) return EmitStrCompare(FlipCmp(cmp), r, l);
    // l is a column from here on.
    if (l.type == Type::kDict && r.kind == Kind::kLiteral) {
      DictTableSpec spec;
      spec.kind = Spec::kCmp;
      spec.col = l.col;
      spec.cmp = cmp;
      spec.text = std::get<std::string>(r.lit);
      return EmitDictTable(std::move(spec));
    }
    if (l.type == Type::kDate && r.kind == Kind::kLiteral) {
      const std::string& text = std::get<std::string>(r.lit);
      Result<int32_t> packed = tpch::EncodeDate32(text);
      if (packed.ok()) {
        Instr instr;
        instr.op = Op::kCmpColLit;
        instr.cmp = cmp;
        instr.col = l.col;
        instr.lit_kind = 2;
        instr.date = *packed;
        return PushInstr(instr, Type::kBool);
      }
      // Non-canonical literal: compare the formatted date lexicographically.
      Instr instr;
      instr.op = Op::kCmpStrGeneric;
      instr.cmp = cmp;
      instr.sa_kind = 1;
      instr.sa = l.col;
      instr.sb_kind = 2;
      instr.sb = AddString(text);
      return PushInstr(instr, Type::kBool);
    }
    if (l.type == Type::kDate && r.type == Type::kDate) {
      Instr instr;
      instr.op = Op::kCmpColCol;
      instr.cmp = cmp;
      instr.col = l.col;
      instr.col2 = r.col;
      return PushInstr(instr, Type::kBool);
    }
    // Remaining column/column pairs involving a dictionary column.
    Instr instr;
    instr.op = Op::kCmpStrGeneric;
    instr.cmp = cmp;
    instr.sa_kind = l.type == Type::kDict ? 0 : 1;
    instr.sa = l.col;
    instr.sb_kind = r.type == Type::kDict ? 0 : 1;
    instr.sb = r.col;
    return PushInstr(instr, Type::kBool);
  }

  Result<Operand> CompileBetween(const expr::BetweenExpr& b) {
    // Desugars to (v >= low) AND (v <= high) with an eager AND: the
    // interpreter evaluates all three operands up front, so no lane may
    // skip the high-bound evaluation.
    DMR_ASSIGN_OR_RETURN(Operand v, CompileNode(*b.operand()));
    DMR_ASSIGN_OR_RETURN(Operand lo, CompileNode(*b.low()));
    DMR_ASSIGN_OR_RETURN(Operand hi, CompileNode(*b.high()));
    DMR_ASSIGN_OR_RETURN(Operand ge, EmitCompare(BinaryOp::kGe, v, lo));
    DMR_ASSIGN_OR_RETURN(Operand le, EmitCompare(BinaryOp::kLe, v, hi));
    if (ge.kind == Kind::kLiteral && le.kind == Kind::kLiteral) {
      return LiteralOperand(
          Value(std::get<bool>(ge.lit) && std::get<bool>(le.lit)));
    }
    Instr instr;
    instr.op = Op::kAndEager;
    DMR_ASSIGN_OR_RETURN(instr.in1, EnsureBool(ge));
    DMR_ASSIGN_OR_RETURN(instr.in2, EnsureBool(le));
    return PushInstr(instr, Type::kBool);
  }

  Result<Operand> CompileIn(const expr::InExpr& in) {
    DMR_ASSIGN_OR_RETURN(Operand v, CompileNode(*in.operand()));
    bool all_const = true;
    for (const auto& c : in.candidates()) {
      if (HasColumnRef(*c)) {
        all_const = false;
        break;
      }
    }
    if (!all_const || v.type == Type::kBool) {
      // General fallback: IN is first-match-wins over the candidates,
      // which is exactly a left-to-right OR chain of equalities.
      if (in.candidates().empty()) return LiteralOperand(Value(false));
      expr::ExprPtr chain;
      for (const auto& c : in.candidates()) {
        expr::ExprPtr eq = std::make_shared<expr::BinaryExpr>(
            BinaryOp::kEq, in.operand(), c);
        chain = chain ? std::make_shared<expr::BinaryExpr>(
                            BinaryOp::kOr, std::move(chain), std::move(eq))
                      : std::move(eq);
      }
      return CompileNode(*chain);
    }
    static const expr::Tuple kEmptyRow;
    std::vector<Value> values;
    values.reserve(in.candidates().size());
    for (const auto& c : in.candidates()) {
      DMR_ASSIGN_OR_RETURN(
          Value cv, c->Evaluate(tpch::LineItemSchema(), kEmptyRow));
      values.push_back(std::move(cv));
    }
    if (IsNumeric(v)) return CompileNumIn(v, values);
    if (v.type == Type::kDate) return CompileDateIn(v, values);
    if (v.type == Type::kDict) return CompileDictIn(v, values);
    // v is a string literal and every candidate is constant — the whole IN
    // is constant and was folded before reaching here.
    return Status::Internal("unfolded constant IN");
  }

  Result<Operand> CompileNumIn(const Operand& v,
                               const std::vector<Value>& values) {
    bool all_i64 = v.type == Type::kI64;
    for (const Value& cv : values) {
      ValueType t = expr::TypeOf(cv);
      if (t != ValueType::kInt64 && t != ValueType::kDouble) {
        return Status::InvalidArgument(
            std::string("type mismatch comparing ") +
            (v.type == Type::kI64 ? "INT64" : "DOUBLE") + " with " +
            expr::ValueTypeToString(t));
      }
      if (t != ValueType::kInt64) all_i64 = false;
    }
    Instr instr;
    if (all_i64) {
      std::vector<int64_t> set;
      set.reserve(values.size());
      for (const Value& cv : values) set.push_back(std::get<int64_t>(cv));
      std::sort(set.begin(), set.end());
      instr.slot = static_cast<int>(prog_.i64_sets_.size());
      prog_.i64_sets_.push_back(std::move(set));
      if (v.kind == Kind::kColumn) {
        instr.op = Op::kInColI64;
        instr.col = v.col;
      } else {
        instr.op = Op::kInI64;
        DMR_ASSIGN_OR_RETURN(instr.in1, EnsureI64(v));
      }
      return PushInstr(instr, Type::kBool);
    }
    std::vector<double> set;
    set.reserve(values.size());
    for (const Value& cv : values) set.push_back(*expr::ToDouble(cv));
    std::sort(set.begin(), set.end());
    instr.slot = static_cast<int>(prog_.f64_sets_.size());
    prog_.f64_sets_.push_back(std::move(set));
    if (v.kind == Kind::kColumn && v.type == Type::kF64) {
      instr.op = Op::kInColF64;
      instr.col = v.col;
    } else {
      instr.op = Op::kInF64;
      DMR_ASSIGN_OR_RETURN(instr.in1, EnsureF64(v));
    }
    return PushInstr(instr, Type::kBool);
  }

  Result<Operand> CompileDateIn(const Operand& v,
                                const std::vector<Value>& values) {
    std::vector<int32_t> set;
    for (const Value& cv : values) {
      if (expr::TypeOf(cv) != ValueType::kString) {
        return Status::InvalidArgument(
            std::string("type mismatch comparing STRING with ") +
            expr::ValueTypeToString(expr::TypeOf(cv)));
      }
      // A non-canonical string can never equal a stored canonical date.
      Result<int32_t> packed = tpch::EncodeDate32(std::get<std::string>(cv));
      if (packed.ok()) set.push_back(*packed);
    }
    std::sort(set.begin(), set.end());
    Instr instr;
    instr.op = Op::kInColDate;
    instr.col = v.col;
    instr.slot = static_cast<int>(prog_.date_sets_.size());
    prog_.date_sets_.push_back(std::move(set));
    return PushInstr(instr, Type::kBool);
  }

  Result<Operand> CompileDictIn(const Operand& v,
                                const std::vector<Value>& values) {
    DictTableSpec spec;
    spec.kind = Spec::kIn;
    spec.col = v.col;
    for (const Value& cv : values) {
      if (expr::TypeOf(cv) != ValueType::kString) {
        return Status::InvalidArgument(
            std::string("type mismatch comparing STRING with ") +
            expr::ValueTypeToString(expr::TypeOf(cv)));
      }
      spec.in_list.push_back(std::get<std::string>(cv));
    }
    return EmitDictTable(std::move(spec));
  }

  Result<Operand> CompileLike(const expr::LikeExpr& like) {
    DMR_ASSIGN_OR_RETURN(Operand v, CompileNode(*like.operand()));
    if (v.type == Type::kDict) {
      DictTableSpec spec;
      spec.kind = Spec::kLike;
      spec.col = v.col;
      spec.text = like.pattern();
      spec.negated = like.negated();
      return EmitDictTable(std::move(spec));
    }
    if (v.type == Type::kDate) {
      Instr instr;
      instr.op = Op::kLikeDateCol;
      instr.col = v.col;
      instr.slot = AddString(like.pattern());
      instr.flag = like.negated();
      return PushInstr(instr, Type::kBool);
    }
    if (v.type == Type::kStr && v.kind == Kind::kLiteral) {
      bool m = expr::LikeMatch(std::get<std::string>(v.lit), like.pattern());
      return LiteralOperand(Value(like.negated() ? !m : m));
    }
    return Status::InvalidArgument("LIKE requires a string operand");
  }

  PredicateProgram prog_;
  int num_i64_ = 0;
  int num_f64_ = 0;
  int num_bool_ = 0;
  int ctrl_depth_ = 0;
};

Result<PredicateProgram> PredicateProgram::Compile(const Expression& expr) {
  ProgramCompiler compiler;
  return compiler.Run(expr);
}

std::string PredicateProgram::ToString() const {
  std::string out;
  char line[192];
  for (size_t i = 0; i < code_.size(); ++i) {
    const Instr& ins = code_[i];
    std::snprintf(line, sizeof(line),
                  "%3zu: %-16s cmp=%s col=%d col2=%d slot=%d in=(%d,%d) "
                  "out=%d\n",
                  i, OpName(ins.op), expr::BinaryOpToString(ins.cmp),
                  ins.col, ins.col2, ins.slot, ins.in1, ins.in2, ins.out);
    out += line;
  }
  return out;
}

const char* EngineToString(Engine engine) {
  return engine == Engine::kInterpreted ? "interpreted" : "vectorized";
}

// ---------------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------------

BoundPredicate::BoundPredicate(const PredicateProgram* program,
                               const tpch::ColumnarPartition* partition)
    : program_(program), partition_(partition) {
  using Spec = PredicateProgram::DictTableSpec;
  // Resolve every dictionary-dependent operation once per distinct value.
  dict_tables_.reserve(program_->dict_tables_.size());
  for (const Spec& spec : program_->dict_tables_) {
    const tpch::StringDictionary& dict = partition_->Dictionary(spec.col);
    std::vector<uint8_t> table(dict.size(), 0);
    for (uint32_t code = 0; code < dict.size(); ++code) {
      const std::string& value = dict.value(code);
      switch (spec.kind) {
        case Spec::Kind::kCmp: {
          int c = value.compare(spec.text);
          c = c < 0 ? -1 : (c > 0 ? 1 : 0);
          table[code] = ApplyCmpSign(spec.cmp, c) ? 1 : 0;
          break;
        }
        case Spec::Kind::kLike: {
          bool m = expr::LikeMatch(value, spec.text);
          table[code] = (spec.negated ? !m : m) ? 1 : 0;
          break;
        }
        case Spec::Kind::kIn: {
          bool found = false;
          for (const std::string& cand : spec.in_list) {
            if (value == cand) {
              found = true;
              break;
            }
          }
          table[code] = found ? 1 : 0;
          break;
        }
      }
    }
    dict_tables_.push_back(std::move(table));
  }
  i64_slots_.resize(program_->num_i64_slots_);
  for (auto& s : i64_slots_) s.resize(kVectorBatchRows);
  f64_slots_.resize(program_->num_f64_slots_);
  for (auto& s : f64_slots_) s.resize(kVectorBatchRows);
  bool_slots_.resize(program_->num_bool_slots_);
  for (auto& s : bool_slots_) s.resize(kVectorBatchRows);
  sel_.resize(kVectorBatchRows);
  saved_sel_.resize(program_->max_ctrl_depth_);
  for (auto& s : saved_sel_) s.resize(kVectorBatchRows);
  saved_count_.resize(program_->max_ctrl_depth_, 0);
}

Status BoundPredicate::FilterAll(std::vector<uint32_t>* out) {
  return FilterRange(0, partition_->num_rows(), out);
}

Status BoundPredicate::FilterRange(uint32_t begin, uint32_t end,
                                   std::vector<uint32_t>* out) {
  DMR_CHECK_LE(begin, end);
  DMR_CHECK_LE(end, partition_->num_rows());
  for (uint32_t base = begin; base < end; base += kVectorBatchRows) {
    uint32_t batch_end = std::min<uint32_t>(end, base + kVectorBatchRows);
    DMR_RETURN_NOT_OK(RunBatch(base, batch_end, out));
  }
  return Status::OK();
}

Status BoundPredicate::RunBatch(uint32_t base, uint32_t end,
                                std::vector<uint32_t>* out) {
  using Instr = PredicateProgram::Instr;
  const uint32_t n = end - base;
  uint32_t count = n;
  uint32_t* sel = sel_.data();
  for (uint32_t i = 0; i < n; ++i) sel[i] = base + i;

  for (const Instr& ins : program_->code_) {
    switch (ins.op) {
      case Op::kLoadColI64: {
        const int64_t* col = partition_->Int64Column(ins.col).data();
        int64_t* o = i64_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t row = sel[k];
          o[row - base] = col[row];
        }
        break;
      }
      case Op::kLoadColF64: {
        const double* col = partition_->DoubleColumn(ins.col).data();
        double* o = f64_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t row = sel[k];
          o[row - base] = col[row];
        }
        break;
      }
      case Op::kLoadLitI64: {
        int64_t* o = i64_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) o[sel[k] - base] = ins.i64;
        break;
      }
      case Op::kLoadLitF64: {
        double* o = f64_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) o[sel[k] - base] = ins.f64;
        break;
      }
      case Op::kLoadLitBool: {
        uint8_t* o = bool_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          o[sel[k] - base] = ins.flag ? 1 : 0;
        }
        break;
      }
      case Op::kCastI64ToF64: {
        const int64_t* a = i64_slots_[ins.in1].data();
        double* o = f64_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t i = sel[k] - base;
          o[i] = static_cast<double>(a[i]);
        }
        break;
      }
      case Op::kAddI64:
      case Op::kSubI64:
      case Op::kMulI64: {
        const int64_t* a = i64_slots_[ins.in1].data();
        const int64_t* b = i64_slots_[ins.in2].data();
        int64_t* o = i64_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t i = sel[k] - base;
          o[i] = ins.op == Op::kAddI64   ? a[i] + b[i]
                 : ins.op == Op::kSubI64 ? a[i] - b[i]
                                         : a[i] * b[i];
        }
        break;
      }
      case Op::kNegI64: {
        const int64_t* a = i64_slots_[ins.in1].data();
        int64_t* o = i64_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t i = sel[k] - base;
          o[i] = -a[i];
        }
        break;
      }
      case Op::kAddF64:
      case Op::kSubF64:
      case Op::kMulF64: {
        const double* a = f64_slots_[ins.in1].data();
        const double* b = f64_slots_[ins.in2].data();
        double* o = f64_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t i = sel[k] - base;
          o[i] = ins.op == Op::kAddF64   ? a[i] + b[i]
                 : ins.op == Op::kSubF64 ? a[i] - b[i]
                                         : a[i] * b[i];
        }
        break;
      }
      case Op::kDivF64: {
        const double* a = f64_slots_[ins.in1].data();
        const double* b = f64_slots_[ins.in2].data();
        double* o = f64_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t i = sel[k] - base;
          if (b[i] == 0.0) {
            return Status::InvalidArgument("division by zero");
          }
          o[i] = a[i] / b[i];
        }
        break;
      }
      case Op::kNegF64: {
        const double* a = f64_slots_[ins.in1].data();
        double* o = f64_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t i = sel[k] - base;
          o[i] = -a[i];
        }
        break;
      }
      case Op::kCmpI64: {
        const int64_t* a = i64_slots_[ins.in1].data();
        const int64_t* b = i64_slots_[ins.in2].data();
        uint8_t* o = bool_slots_[ins.out].data();
        WithCmp(ins.cmp, [&](auto cmp) {
          for (uint32_t k = 0; k < count; ++k) {
            uint32_t i = sel[k] - base;
            o[i] = cmp(a[i], b[i]) ? 1 : 0;
          }
        });
        break;
      }
      case Op::kCmpF64: {
        const double* a = f64_slots_[ins.in1].data();
        const double* b = f64_slots_[ins.in2].data();
        uint8_t* o = bool_slots_[ins.out].data();
        WithCmp(ins.cmp, [&](auto cmp) {
          for (uint32_t k = 0; k < count; ++k) {
            uint32_t i = sel[k] - base;
            o[i] = cmp(a[i], b[i]) ? 1 : 0;
          }
        });
        break;
      }
      case Op::kCmpBool: {
        const uint8_t* a = bool_slots_[ins.in1].data();
        const uint8_t* b = bool_slots_[ins.in2].data();
        uint8_t* o = bool_slots_[ins.out].data();
        WithCmp(ins.cmp, [&](auto cmp) {
          for (uint32_t k = 0; k < count; ++k) {
            uint32_t i = sel[k] - base;
            o[i] = cmp(a[i] != 0, b[i] != 0) ? 1 : 0;
          }
        });
        break;
      }
      case Op::kCmpColLit: {
        uint8_t* o = bool_slots_[ins.out].data();
        if (ins.lit_kind == 0) {
          const int64_t* col = partition_->Int64Column(ins.col).data();
          const int64_t lit = ins.i64;
          WithCmp(ins.cmp, [&](auto cmp) {
            for (uint32_t k = 0; k < count; ++k) {
              uint32_t row = sel[k];
              o[row - base] = cmp(col[row], lit) ? 1 : 0;
            }
          });
        } else if (ins.lit_kind == 1) {
          const double lit = ins.f64;
          if (tpch::LineItemColumnKind(ins.col) == ColumnKind::kInt64) {
            const int64_t* col = partition_->Int64Column(ins.col).data();
            WithCmp(ins.cmp, [&](auto cmp) {
              for (uint32_t k = 0; k < count; ++k) {
                uint32_t row = sel[k];
                o[row - base] =
                    cmp(static_cast<double>(col[row]), lit) ? 1 : 0;
              }
            });
          } else {
            const double* col = partition_->DoubleColumn(ins.col).data();
            WithCmp(ins.cmp, [&](auto cmp) {
              for (uint32_t k = 0; k < count; ++k) {
                uint32_t row = sel[k];
                o[row - base] = cmp(col[row], lit) ? 1 : 0;
              }
            });
          }
        } else {
          const int32_t* col = partition_->Date32Column(ins.col).data();
          const int32_t lit = ins.date;
          WithCmp(ins.cmp, [&](auto cmp) {
            for (uint32_t k = 0; k < count; ++k) {
              uint32_t row = sel[k];
              o[row - base] = cmp(col[row], lit) ? 1 : 0;
            }
          });
        }
        break;
      }
      case Op::kCmpColCol: {
        uint8_t* o = bool_slots_[ins.out].data();
        ColumnKind ka = tpch::LineItemColumnKind(ins.col);
        ColumnKind kb = tpch::LineItemColumnKind(ins.col2);
        if (ka == ColumnKind::kDate32) {
          const int32_t* a = partition_->Date32Column(ins.col).data();
          const int32_t* b = partition_->Date32Column(ins.col2).data();
          WithCmp(ins.cmp, [&](auto cmp) {
            for (uint32_t k = 0; k < count; ++k) {
              uint32_t row = sel[k];
              o[row - base] = cmp(a[row], b[row]) ? 1 : 0;
            }
          });
        } else if (ka == ColumnKind::kInt64 && kb == ColumnKind::kInt64) {
          const int64_t* a = partition_->Int64Column(ins.col).data();
          const int64_t* b = partition_->Int64Column(ins.col2).data();
          WithCmp(ins.cmp, [&](auto cmp) {
            for (uint32_t k = 0; k < count; ++k) {
              uint32_t row = sel[k];
              o[row - base] = cmp(a[row], b[row]) ? 1 : 0;
            }
          });
        } else {
          // Mixed numeric: promote to double (CompareValues semantics).
          auto lane = [&](ColumnKind kind, int col, uint32_t row) {
            return kind == ColumnKind::kInt64
                       ? static_cast<double>(
                             partition_->Int64Column(col)[row])
                       : partition_->DoubleColumn(col)[row];
          };
          WithCmp(ins.cmp, [&](auto cmp) {
            for (uint32_t k = 0; k < count; ++k) {
              uint32_t row = sel[k];
              o[row - base] =
                  cmp(lane(ka, ins.col, row), lane(kb, ins.col2, row)) ? 1
                                                                       : 0;
            }
          });
        }
        break;
      }
      case Op::kDictTable: {
        const uint32_t* codes = partition_->DictCodes(ins.col).data();
        const uint8_t* table = dict_tables_[ins.slot].data();
        uint8_t* o = bool_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t row = sel[k];
          o[row - base] = table[codes[row]];
        }
        break;
      }
      case Op::kCmpStrGeneric: {
        uint8_t* o = bool_slots_[ins.out].data();
        char buf_a[11];
        char buf_b[11];
        auto side = [&](uint8_t kind, int ref, uint32_t row,
                        char* buf) -> std::string_view {
          if (kind == 0) {
            const auto& dict = partition_->Dictionary(ref);
            return dict.value(partition_->DictCodes(ref)[row]);
          }
          if (kind == 1) {
            return tpch::FormatDate32(partition_->Date32Column(ref)[row],
                                      buf);
          }
          return program_->str_pool_[ref];
        };
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t row = sel[k];
          std::string_view a = side(ins.sa_kind, ins.sa, row, buf_a);
          std::string_view b = side(ins.sb_kind, ins.sb, row, buf_b);
          int c = a.compare(b);
          c = c < 0 ? -1 : (c > 0 ? 1 : 0);
          o[row - base] = ApplyCmpSign(ins.cmp, c) ? 1 : 0;
        }
        break;
      }
      case Op::kLikeDateCol: {
        const int32_t* col = partition_->Date32Column(ins.col).data();
        const std::string& pattern = program_->str_pool_[ins.slot];
        uint8_t* o = bool_slots_[ins.out].data();
        char buf[11];
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t row = sel[k];
          bool m = expr::LikeMatch(tpch::FormatDate32(col[row], buf),
                                   pattern);
          o[row - base] = (ins.flag ? !m : m) ? 1 : 0;
        }
        break;
      }
      case Op::kInColI64: {
        const int64_t* col = partition_->Int64Column(ins.col).data();
        const auto& set = program_->i64_sets_[ins.slot];
        uint8_t* o = bool_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t row = sel[k];
          o[row - base] =
              std::binary_search(set.begin(), set.end(), col[row]) ? 1 : 0;
        }
        break;
      }
      case Op::kInColF64: {
        const double* col = partition_->DoubleColumn(ins.col).data();
        const auto& set = program_->f64_sets_[ins.slot];
        uint8_t* o = bool_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t row = sel[k];
          o[row - base] =
              std::binary_search(set.begin(), set.end(), col[row]) ? 1 : 0;
        }
        break;
      }
      case Op::kInColDate: {
        const int32_t* col = partition_->Date32Column(ins.col).data();
        const auto& set = program_->date_sets_[ins.slot];
        uint8_t* o = bool_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t row = sel[k];
          o[row - base] =
              std::binary_search(set.begin(), set.end(), col[row]) ? 1 : 0;
        }
        break;
      }
      case Op::kInI64: {
        const int64_t* a = i64_slots_[ins.in1].data();
        const auto& set = program_->i64_sets_[ins.slot];
        uint8_t* o = bool_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t i = sel[k] - base;
          o[i] = std::binary_search(set.begin(), set.end(), a[i]) ? 1 : 0;
        }
        break;
      }
      case Op::kInF64: {
        const double* a = f64_slots_[ins.in1].data();
        const auto& set = program_->f64_sets_[ins.slot];
        uint8_t* o = bool_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t i = sel[k] - base;
          o[i] = std::binary_search(set.begin(), set.end(), a[i]) ? 1 : 0;
        }
        break;
      }
      case Op::kNot: {
        const uint8_t* a = bool_slots_[ins.in1].data();
        uint8_t* o = bool_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t i = sel[k] - base;
          o[i] = a[i] ? 0 : 1;
        }
        break;
      }
      case Op::kAndEager: {
        const uint8_t* a = bool_slots_[ins.in1].data();
        const uint8_t* b = bool_slots_[ins.in2].data();
        uint8_t* o = bool_slots_[ins.out].data();
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t i = sel[k] - base;
          o[i] = (a[i] && b[i]) ? 1 : 0;
        }
        break;
      }
      case Op::kAndThen:
      case Op::kOrElse: {
        // Save the selection, then keep only the lanes on which the right
        // side must be evaluated (left true for AND, left false for OR).
        uint32_t* saved = saved_sel_[ins.slot].data();
        std::copy(sel, sel + count, saved);
        saved_count_[ins.slot] = count;
        const uint8_t* l = bool_slots_[ins.in1].data();
        const bool keep = ins.op == Op::kAndThen;
        uint32_t kept = 0;
        for (uint32_t k = 0; k < count; ++k) {
          uint32_t row = sel[k];
          if ((l[row - base] != 0) == keep) sel[kept++] = row;
        }
        count = kept;
        break;
      }
      case Op::kAndEnd:
      case Op::kOrEnd: {
        const uint32_t* saved = saved_sel_[ins.slot].data();
        count = saved_count_[ins.slot];
        std::copy(saved, saved + count, sel);
        const uint8_t* l = bool_slots_[ins.in1].data();
        const uint8_t* r = bool_slots_[ins.in2].data();
        uint8_t* o = bool_slots_[ins.out].data();
        if (ins.op == Op::kAndEnd) {
          for (uint32_t k = 0; k < count; ++k) {
            uint32_t i = sel[k] - base;
            o[i] = l[i] ? r[i] : 0;
          }
        } else {
          for (uint32_t k = 0; k < count; ++k) {
            uint32_t i = sel[k] - base;
            o[i] = l[i] ? 1 : r[i];
          }
        }
        break;
      }
    }
  }

  const uint8_t* result = bool_slots_[program_->result_slot_].data();
  for (uint32_t k = 0; k < count; ++k) {
    uint32_t row = sel[k];
    if (result[row - base]) out->push_back(row);
  }
  return Status::OK();
}

Result<uint64_t> CountMatches(const PredicateProgram& program,
                              const tpch::ColumnarPartition& partition) {
  BoundPredicate bound(&program, &partition);
  std::vector<uint32_t> matches;
  matches.reserve(partition.num_rows());
  DMR_RETURN_NOT_OK(bound.FilterAll(&matches));
  return static_cast<uint64_t>(matches.size());
}

// ---------------------------------------------------------------------------
// Zone-map pruning: tri-state abstract interpretation of the program
// ---------------------------------------------------------------------------

namespace {

enum class Tri : uint8_t { kFalse, kMaybe, kTrue };

Tri TriNot(Tri t) {
  if (t == Tri::kFalse) return Tri::kTrue;
  if (t == Tri::kTrue) return Tri::kFalse;
  return Tri::kMaybe;
}

Tri TriAnd(Tri a, Tri b) {
  if (a == Tri::kFalse || b == Tri::kFalse) return Tri::kFalse;
  if (a == Tri::kTrue && b == Tri::kTrue) return Tri::kTrue;
  return Tri::kMaybe;
}

Tri TriOr(Tri a, Tri b) {
  if (a == Tri::kTrue || b == Tri::kTrue) return Tri::kTrue;
  if (a == Tri::kFalse && b == Tri::kFalse) return Tri::kFalse;
  return Tri::kMaybe;
}

/// Integer interval; `top` = unbounded (e.g. after an overflowing multiply,
/// where the real lanes would wrap — widening to top stays sound).
struct AbsI64 {
  int64_t lo = 0;
  int64_t hi = 0;
  bool top = true;
};

/// Double interval; `top` = unknown.
struct AbsF64 {
  double lo = 0.0;
  double hi = 0.0;
  bool top = true;
};

AbsI64 I64Interval(int64_t lo, int64_t hi) { return {lo, hi, false}; }
AbsF64 F64Interval(double lo, double hi) { return {lo, hi, false}; }

/// Clamps an exactly-computed 128-bit interval back to int64, widening to
/// top when a bound leaves the representable range.
AbsI64 ClampI64(__int128 lo, __int128 hi) {
  constexpr __int128 kMin = std::numeric_limits<int64_t>::min();
  constexpr __int128 kMax = std::numeric_limits<int64_t>::max();
  if (lo < kMin || hi > kMax) return AbsI64{};
  return I64Interval(static_cast<int64_t>(lo), static_cast<int64_t>(hi));
}

/// Interval-vs-interval comparison. IEEE note: a NaN endpoint fails every
/// ordered test below, which lands on kMaybe — the sound answer.
template <typename T>
Tri CmpIntervals(BinaryOp cmp, T lo1, T hi1, T lo2, T hi2) {
  switch (cmp) {
    case BinaryOp::kLt:
      if (hi1 < lo2) return Tri::kTrue;
      if (lo1 >= hi2) return Tri::kFalse;
      return Tri::kMaybe;
    case BinaryOp::kLe:
      if (hi1 <= lo2) return Tri::kTrue;
      if (lo1 > hi2) return Tri::kFalse;
      return Tri::kMaybe;
    case BinaryOp::kGt:
      if (lo1 > hi2) return Tri::kTrue;
      if (hi1 <= lo2) return Tri::kFalse;
      return Tri::kMaybe;
    case BinaryOp::kGe:
      if (lo1 >= hi2) return Tri::kTrue;
      if (hi1 < lo2) return Tri::kFalse;
      return Tri::kMaybe;
    case BinaryOp::kEq:
      if (hi1 < lo2 || hi2 < lo1) return Tri::kFalse;
      if (lo1 == hi1 && lo2 == hi2 && lo1 == lo2) return Tri::kTrue;
      return Tri::kMaybe;
    case BinaryOp::kNe:
      return TriNot(CmpIntervals(BinaryOp::kEq, lo1, hi1, lo2, hi2));
    default:
      break;
  }
  DMR_CHECK(false);
  return Tri::kMaybe;
}

/// Interval membership in a sorted IN set: kFalse when no element lies in
/// [lo, hi], kTrue when the interval is a single present point.
template <typename T, typename SetT>
Tri InInterval(T lo, T hi, const std::vector<SetT>& set) {
  auto it = std::lower_bound(set.begin(), set.end(), static_cast<SetT>(lo));
  if (it == set.end() || static_cast<T>(*it) > hi) return Tri::kFalse;
  if (lo == hi) return Tri::kTrue;
  return Tri::kMaybe;
}

bool FiniteInterval(const AbsF64& a) {
  return std::isfinite(a.lo) && std::isfinite(a.hi);
}

}  // namespace

const char* PruneVerdictToString(PruneVerdict verdict) {
  switch (verdict) {
    case PruneVerdict::kNoMatch: return "no-match";
    case PruneVerdict::kMaybe: return "maybe";
    case PruneVerdict::kAllMatch: return "all-match";
  }
  return "?";
}

PruneVerdict BoundPredicate::EvaluateZoneMap(const tpch::ZoneMap& zm) const {
  using Instr = PredicateProgram::Instr;
  // An empty range has no rows to match; skipping it is trivially sound.
  if (zm.rows() == 0) return PruneVerdict::kNoMatch;

  std::vector<AbsI64> i64(program_->num_i64_slots_);
  std::vector<AbsF64> f64(program_->num_f64_slots_);
  std::vector<Tri> bools(program_->num_bool_slots_, Tri::kMaybe);
  // Set when a real scan of the range might raise a runtime error the
  // abstract run cannot rule out (division by zero); forces kMaybe so the
  // scan — and its error — still happens.
  bool poisoned = false;

  // A slot the map never folded (a piggybacked index built for a predicate
  // over other columns) reads as the full range: `top` for the operators
  // that check it, real full-range endpoints for the comparison paths that
  // consume lo/hi directly — either way the verdict degrades to kMaybe.
  auto col_i64 = [&zm](int col) {
    int slot = tpch::LineItemColumnSlot(col);
    if (!zm.I64Valid(slot)) {
      return AbsI64{std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max(), true};
    }
    return I64Interval(zm.i64_min[slot], zm.i64_max[slot]);
  };
  auto col_f64 = [&zm](int col) {
    int slot = tpch::LineItemColumnSlot(col);
    if (!zm.F64Valid(slot)) {
      return AbsF64{-std::numeric_limits<double>::infinity(),
                    std::numeric_limits<double>::infinity(), true};
    }
    return F64Interval(zm.f64_min[slot], zm.f64_max[slot]);
  };
  auto col_date = [&zm](int col) {
    int slot = tpch::LineItemColumnSlot(col);
    if (!zm.DateValid(slot)) {
      return AbsI64{std::numeric_limits<int32_t>::min(),
                    std::numeric_limits<int32_t>::max(), true};
    }
    return I64Interval(zm.date_min[slot], zm.date_max[slot]);
  };
  // A numeric column as a double interval (promoting int64 columns, the
  // kCmpColLit lit_kind == 1 and mixed kCmpColCol paths).
  auto col_num_f64 = [&](int col) {
    if (tpch::LineItemColumnKind(col) == ColumnKind::kInt64) {
      AbsI64 a = col_i64(col);
      return F64Interval(static_cast<double>(a.lo),
                         static_cast<double>(a.hi));
    }
    return col_f64(col);
  };

  for (const Instr& ins : program_->code_) {
    switch (ins.op) {
      case Op::kLoadColI64:
        i64[ins.out] = col_i64(ins.col);
        break;
      case Op::kLoadColF64:
        f64[ins.out] = col_f64(ins.col);
        break;
      case Op::kLoadLitI64:
        i64[ins.out] = I64Interval(ins.i64, ins.i64);
        break;
      case Op::kLoadLitF64:
        f64[ins.out] = F64Interval(ins.f64, ins.f64);
        break;
      case Op::kLoadLitBool:
        bools[ins.out] = ins.flag ? Tri::kTrue : Tri::kFalse;
        break;
      case Op::kCastI64ToF64: {
        const AbsI64& a = i64[ins.in1];
        f64[ins.out] = a.top ? AbsF64{}
                             : F64Interval(static_cast<double>(a.lo),
                                           static_cast<double>(a.hi));
        break;
      }
      case Op::kAddI64:
      case Op::kSubI64:
      case Op::kMulI64: {
        const AbsI64& a = i64[ins.in1];
        const AbsI64& b = i64[ins.in2];
        if (a.top || b.top) {
          i64[ins.out] = AbsI64{};
          break;
        }
        __int128 lo;
        __int128 hi;
        if (ins.op == Op::kAddI64) {
          lo = static_cast<__int128>(a.lo) + b.lo;
          hi = static_cast<__int128>(a.hi) + b.hi;
        } else if (ins.op == Op::kSubI64) {
          lo = static_cast<__int128>(a.lo) - b.hi;
          hi = static_cast<__int128>(a.hi) - b.lo;
        } else {
          const __int128 p[4] = {static_cast<__int128>(a.lo) * b.lo,
                                 static_cast<__int128>(a.lo) * b.hi,
                                 static_cast<__int128>(a.hi) * b.lo,
                                 static_cast<__int128>(a.hi) * b.hi};
          lo = std::min(std::min(p[0], p[1]), std::min(p[2], p[3]));
          hi = std::max(std::max(p[0], p[1]), std::max(p[2], p[3]));
        }
        i64[ins.out] = ClampI64(lo, hi);
        break;
      }
      case Op::kNegI64: {
        const AbsI64& a = i64[ins.in1];
        i64[ins.out] = a.top ? AbsI64{}
                             : ClampI64(-static_cast<__int128>(a.hi),
                                        -static_cast<__int128>(a.lo));
        break;
      }
      case Op::kAddF64:
      case Op::kSubF64:
      case Op::kMulF64: {
        const AbsF64& a = f64[ins.in1];
        const AbsF64& b = f64[ins.in2];
        // Non-finite endpoints could make the corner products NaN; widen
        // instead of reasoning about them.
        if (a.top || b.top || !FiniteInterval(a) || !FiniteInterval(b)) {
          f64[ins.out] = AbsF64{};
          break;
        }
        if (ins.op == Op::kAddF64) {
          f64[ins.out] = F64Interval(a.lo + b.lo, a.hi + b.hi);
        } else if (ins.op == Op::kSubF64) {
          f64[ins.out] = F64Interval(a.lo - b.hi, a.hi - b.lo);
        } else {
          const double p[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo,
                               a.hi * b.hi};
          double lo = p[0];
          double hi = p[0];
          for (int i = 1; i < 4; ++i) {
            lo = std::min(lo, p[i]);
            hi = std::max(hi, p[i]);
          }
          f64[ins.out] = F64Interval(lo, hi);
        }
        break;
      }
      case Op::kDivF64: {
        const AbsF64& a = f64[ins.in1];
        const AbsF64& b = f64[ins.in2];
        // The divisor interval may contain zero (or is unknown): a real
        // scan could raise the division-by-zero error, so this range must
        // not be skipped on any account.
        if (b.top || (b.lo <= 0.0 && b.hi >= 0.0)) {
          poisoned = true;
          f64[ins.out] = AbsF64{};
          break;
        }
        if (a.top || !FiniteInterval(a) || !FiniteInterval(b)) {
          f64[ins.out] = AbsF64{};
          break;
        }
        const double p[4] = {a.lo / b.lo, a.lo / b.hi, a.hi / b.lo,
                             a.hi / b.hi};
        double lo = p[0];
        double hi = p[0];
        for (int i = 1; i < 4; ++i) {
          lo = std::min(lo, p[i]);
          hi = std::max(hi, p[i]);
        }
        f64[ins.out] = F64Interval(lo, hi);
        break;
      }
      case Op::kNegF64: {
        const AbsF64& a = f64[ins.in1];
        f64[ins.out] = a.top ? AbsF64{} : F64Interval(-a.hi, -a.lo);
        break;
      }
      case Op::kCmpI64: {
        const AbsI64& a = i64[ins.in1];
        const AbsI64& b = i64[ins.in2];
        bools[ins.out] = (a.top || b.top)
                             ? Tri::kMaybe
                             : CmpIntervals(ins.cmp, a.lo, a.hi, b.lo, b.hi);
        break;
      }
      case Op::kCmpF64: {
        const AbsF64& a = f64[ins.in1];
        const AbsF64& b = f64[ins.in2];
        bools[ins.out] = (a.top || b.top)
                             ? Tri::kMaybe
                             : CmpIntervals(ins.cmp, a.lo, a.hi, b.lo, b.hi);
        break;
      }
      case Op::kCmpBool: {
        Tri a = bools[ins.in1];
        Tri b = bools[ins.in2];
        if (a == Tri::kMaybe || b == Tri::kMaybe) {
          bools[ins.out] = Tri::kMaybe;
          break;
        }
        bool r = false;
        WithCmp(ins.cmp, [&](auto cmp) {
          r = cmp(a == Tri::kTrue, b == Tri::kTrue);
        });
        bools[ins.out] = r ? Tri::kTrue : Tri::kFalse;
        break;
      }
      case Op::kCmpColLit: {
        if (ins.lit_kind == 0) {
          AbsI64 a = col_i64(ins.col);
          bools[ins.out] =
              CmpIntervals(ins.cmp, a.lo, a.hi, ins.i64, ins.i64);
        } else if (ins.lit_kind == 1) {
          AbsF64 a = col_num_f64(ins.col);
          bools[ins.out] =
              CmpIntervals(ins.cmp, a.lo, a.hi, ins.f64, ins.f64);
        } else {
          AbsI64 a = col_date(ins.col);
          bools[ins.out] = CmpIntervals(ins.cmp, a.lo, a.hi,
                                        static_cast<int64_t>(ins.date),
                                        static_cast<int64_t>(ins.date));
        }
        break;
      }
      case Op::kCmpColCol: {
        ColumnKind ka = tpch::LineItemColumnKind(ins.col);
        ColumnKind kb = tpch::LineItemColumnKind(ins.col2);
        if (ka == ColumnKind::kDate32) {
          AbsI64 a = col_date(ins.col);
          AbsI64 b = col_date(ins.col2);
          bools[ins.out] = CmpIntervals(ins.cmp, a.lo, a.hi, b.lo, b.hi);
        } else if (ka == ColumnKind::kInt64 && kb == ColumnKind::kInt64) {
          AbsI64 a = col_i64(ins.col);
          AbsI64 b = col_i64(ins.col2);
          bools[ins.out] = CmpIntervals(ins.cmp, a.lo, a.hi, b.lo, b.hi);
        } else {
          AbsF64 a = col_num_f64(ins.col);
          AbsF64 b = col_num_f64(ins.col2);
          bools[ins.out] = CmpIntervals(ins.cmp, a.lo, a.hi, b.lo, b.hi);
        }
        break;
      }
      case Op::kDictTable: {
        // Reduce the bind-time truth table over the codes present in the
        // range. Codes are iterated in ascending order (deterministic).
        const std::vector<uint8_t>& table = dict_tables_[ins.slot];
        int dslot = tpch::LineItemColumnSlot(ins.col);
        if (!zm.DictValid(dslot)) {
          // No presence bitmap for this range: any subset of the dictionary
          // could occur, so the reduction is undecided.
          bools[ins.out] = Tri::kMaybe;
          break;
        }
        bool any_true = false;
        bool any_false = false;
        for (uint32_t code = 0;
             code < table.size() && !(any_true && any_false); ++code) {
          if (!zm.DictHas(dslot, code)) continue;
          (table[code] ? any_true : any_false) = true;
        }
        bools[ins.out] = any_true
                             ? (any_false ? Tri::kMaybe : Tri::kTrue)
                             : (any_false ? Tri::kFalse : Tri::kMaybe);
        break;
      }
      case Op::kCmpStrGeneric:
      case Op::kLikeDateCol:
        bools[ins.out] = Tri::kMaybe;
        break;
      case Op::kInColI64: {
        AbsI64 a = col_i64(ins.col);
        bools[ins.out] =
            InInterval(a.lo, a.hi, program_->i64_sets_[ins.slot]);
        break;
      }
      case Op::kInColF64: {
        AbsF64 a = col_f64(ins.col);
        bools[ins.out] =
            InInterval(a.lo, a.hi, program_->f64_sets_[ins.slot]);
        break;
      }
      case Op::kInColDate: {
        AbsI64 a = col_date(ins.col);
        bools[ins.out] =
            InInterval(static_cast<int32_t>(a.lo), static_cast<int32_t>(a.hi),
                       program_->date_sets_[ins.slot]);
        break;
      }
      case Op::kInI64: {
        const AbsI64& a = i64[ins.in1];
        bools[ins.out] =
            a.top ? Tri::kMaybe
                  : InInterval(a.lo, a.hi, program_->i64_sets_[ins.slot]);
        break;
      }
      case Op::kInF64: {
        const AbsF64& a = f64[ins.in1];
        bools[ins.out] =
            a.top ? Tri::kMaybe
                  : InInterval(a.lo, a.hi, program_->f64_sets_[ins.slot]);
        break;
      }
      case Op::kNot:
        bools[ins.out] = TriNot(bools[ins.in1]);
        break;
      case Op::kAndEager:
        bools[ins.out] = TriAnd(bools[ins.in1], bools[ins.in2]);
        break;
      case Op::kAndThen:
      case Op::kOrElse:
        // Selection-vector bookkeeping only; the abstract run evaluates
        // both sides over the whole range, which over-approximates every
        // refined lane set (sound, possibly less precise).
        break;
      case Op::kAndEnd:
        bools[ins.out] = TriAnd(bools[ins.in1], bools[ins.in2]);
        break;
      case Op::kOrEnd:
        bools[ins.out] = TriOr(bools[ins.in1], bools[ins.in2]);
        break;
    }
  }

  if (poisoned) return PruneVerdict::kMaybe;
  Tri result = bools[program_->result_slot_];
  if (result == Tri::kFalse) return PruneVerdict::kNoMatch;
  if (result == Tri::kTrue) return PruneVerdict::kAllMatch;
  return PruneVerdict::kMaybe;
}

}  // namespace dmr::exec
