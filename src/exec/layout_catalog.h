#ifndef DMR_EXEC_LAYOUT_CATALOG_H_
#define DMR_EXEC_LAYOUT_CATALOG_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "tpch/columnar.h"

namespace dmr::exec {

/// \brief Per-batch refined zone maps for one partition — the piggybacked
/// index a first map scan leaves behind (Richter et al., "Towards
/// Zero-Overhead Adaptive Indexing in Hadoop").
///
/// One ZoneMap per kVectorBatchRows range, in ascending row order. A
/// repeated predicate evaluates each batch map and scans only the batches
/// that may match; everything else is skipped at stats cost.
struct PartitionIndex {
  uint32_t num_rows = 0;
  std::vector<tpch::ZoneMap> batches;
};

/// \brief Registry of piggybacked per-partition indexes, shared across map
/// tasks and across queries.
///
/// Registration happens as a side effect of the first full scan of a
/// partition; later scans consult Find(). Entries are immutable once
/// registered and the map is ordered by partition id, so lookups return
/// address-stable pointers that remain valid while the catalog lives —
/// concurrent Find()-then-read from worker threads is safe.
class LayoutCatalog {
 public:
  /// Returns the index for `partition_id`, or nullptr if no scan has
  /// registered one yet. The pointer stays valid for the catalog lifetime.
  const PartitionIndex* Find(uint32_t partition_id) const;

  /// Registers the piggybacked index for `partition_id`. Returns true if
  /// this call inserted it, false if another scan won the race (the first
  /// registration wins; concurrent scans of one query build identical
  /// indexes, so the loser's copy is simply dropped). An index built for
  /// one predicate's columns stays sound for any later predicate: slots it
  /// never folded are marked invalid and evaluate to kMaybe, which just
  /// forfeits pruning for that predicate.
  bool Register(uint32_t partition_id, PartitionIndex index);

  /// Number of partitions with a registered index.
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<uint32_t, PartitionIndex> indexes_;
};

/// Builds the per-batch refined zone maps of `partition` with
/// `batch_rows`-row granularity (callers pass exec::kVectorBatchRows so the
/// index ranges coincide with the vectorized engine's batches). `cols`
/// selects which slots each batch map folds — the piggybacking scan passes
/// PredicateProgram::ZoneMapColumnsUsed() so the build sweeps only the
/// predicate's own columns (near-zero overhead on top of the scan itself).
PartitionIndex BuildPartitionIndex(
    const tpch::ColumnarPartition& partition, uint32_t batch_rows,
    const tpch::ZoneMapColumns& cols = tpch::ZoneMapColumns());

}  // namespace dmr::exec

#endif  // DMR_EXEC_LAYOUT_CATALOG_H_
