#include "exec/layout_catalog.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace dmr::exec {

const PartitionIndex* LayoutCatalog::Find(uint32_t partition_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = indexes_.find(partition_id);
  if (it == indexes_.end()) return nullptr;
  // std::map nodes are address-stable and entries are never mutated after
  // insertion, so handing the pointer out of the lock is safe.
  return &it->second;
}

bool LayoutCatalog::Register(uint32_t partition_id, PartitionIndex index) {
  std::lock_guard<std::mutex> lock(mu_);
  return indexes_.emplace(partition_id, std::move(index)).second;
}

size_t LayoutCatalog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return indexes_.size();
}

PartitionIndex BuildPartitionIndex(const tpch::ColumnarPartition& partition,
                                   uint32_t batch_rows,
                                   const tpch::ZoneMapColumns& cols) {
  DMR_CHECK_GT(batch_rows, 0u);
  PartitionIndex index;
  index.num_rows = partition.num_rows();
  index.batches.reserve((index.num_rows + batch_rows - 1) / batch_rows);
  for (uint32_t base = 0; base < index.num_rows; base += batch_rows) {
    uint32_t end = std::min(index.num_rows, base + batch_rows);
    index.batches.push_back(partition.BuildZoneMap(base, end, cols));
  }
  return index;
}

}  // namespace dmr::exec
