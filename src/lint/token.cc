#include "lint/token.h"

#include <algorithm>
#include <cctype>

namespace dmr::lint {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

std::vector<std::string> SplitLines(const std::string& content) {
  std::vector<std::string> lines;
  std::string current;
  for (char c : content) {
    if (c == '\n') {
      lines.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) lines.push_back(std::move(current));
  return lines;
}

/// One pass over the file: emits tokens and blanks the two views in step.
/// Blanking matches the v1 line scanner exactly: comments are blanked in
/// both views; string/char contents are blanked (quotes kept) in `code`
/// only; raw strings are blanked wholesale (R, delimiters and all) in
/// `code` only.
class Lexer {
 public:
  explicit Lexer(TokenizedFile* f) : f_(*f) {}

  void Run() {
    bool pp_continues = false;
    for (li_ = 0; li_ < f_.raw.size(); ++li_) {
      const std::string& line = f_.raw[li_];
      if (!in_block_ && !in_raw_) {
        if (pp_continues) {
          // Same directive, continued by a trailing backslash.
        } else {
          size_t first = line.find_first_not_of(" \t");
          pp_ = first != std::string::npos && line[first] == '#';
        }
      }
      ci_ = 0;
      ScanLine(line);
      if (in_block_ || in_raw_) {
        pending_.text += '\n';
        pp_continues = false;
      } else {
        pp_continues = pp_ && !line.empty() && line.back() == '\\';
      }
    }
    if (in_block_ || in_raw_) {
      // Unterminated at EOF: close the token at the last position seen.
      FinishPending(f_.raw.size(), f_.raw.empty() ? 0 : f_.raw.back().size());
    }
  }

 private:
  void BlankView(std::vector<std::string>* view, size_t line, size_t from,
                 size_t to) {
    std::string& s = (*view)[line];
    to = std::min(to, s.size());
    for (size_t k = from; k < to; ++k) s[k] = ' ';
  }
  void BlankCode(size_t line, size_t from, size_t to) {
    BlankView(&f_.code, line, from, to);
  }
  void BlankBoth(size_t line, size_t from, size_t to) {
    BlankView(&f_.code, line, from, to);
    BlankView(&f_.code_strings, line, from, to);
  }

  void Emit(TokKind kind, size_t line, size_t col, size_t end_col,
            std::string text) {
    Tok t;
    t.kind = kind;
    t.pp = pp_;
    t.line = static_cast<int>(line) + 1;
    t.col = static_cast<int>(col);
    t.end_line = t.line;
    t.end_col = static_cast<int>(end_col);
    t.text = std::move(text);
    f_.tokens.push_back(std::move(t));
  }

  void StartPending(TokKind kind, std::string text) {
    pending_ = Tok{};
    pending_.kind = kind;
    pending_.pp = pp_;
    pending_.line = static_cast<int>(li_) + 1;
    pending_.col = static_cast<int>(ci_);
    pending_.text = std::move(text);
  }

  void FinishPending(size_t end_line, size_t end_col) {
    pending_.end_line = static_cast<int>(end_line) + 1;
    pending_.end_col = static_cast<int>(end_col);
    f_.tokens.push_back(std::move(pending_));
    in_block_ = false;
    in_raw_ = false;
  }

  void ScanLine(const std::string& line) {
    const size_t n = line.size();
    while (ci_ < n) {
      if (in_block_) {
        size_t end = line.find("*/", ci_);
        if (end == std::string::npos) {
          pending_.text += line.substr(ci_);
          BlankBoth(li_, ci_, n);
          ci_ = n;
          return;
        }
        pending_.text += line.substr(ci_, end + 2 - ci_);
        BlankBoth(li_, ci_, end + 2);
        size_t stop = end + 2;
        FinishPending(li_, stop);
        ci_ = stop;
        continue;
      }
      if (in_raw_) {
        size_t end = line.find(raw_term_, ci_);
        size_t stop = end == std::string::npos ? n : end + raw_term_.size();
        pending_.text += line.substr(ci_, stop - ci_);
        BlankCode(li_, ci_, stop);
        if (end != std::string::npos) {
          FinishPending(li_, stop);
        }
        ci_ = stop;
        if (in_raw_) return;
        continue;
      }
      char c = line[ci_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++ci_;
        continue;
      }
      if (c == '/' && ci_ + 1 < n && line[ci_ + 1] == '/') {
        Emit(TokKind::kComment, li_, ci_, n, line.substr(ci_));
        BlankBoth(li_, ci_, n);
        ci_ = n;
        continue;
      }
      if (c == '/' && ci_ + 1 < n && line[ci_ + 1] == '*') {
        StartPending(TokKind::kComment, "");
        BlankBoth(li_, ci_, ci_ + 2);
        in_block_ = true;
        // The in_block_ branch above consumes the body (and the open
        // characters' text) from here on.
        pending_.text += "/*";
        ci_ += 2;
        continue;
      }
      if (c == 'R' && ci_ + 1 < n && line[ci_ + 1] == '"') {
        size_t open = line.find('(', ci_ + 2);
        if (open != std::string::npos) {
          raw_term_ = ")" + line.substr(ci_ + 2, open - (ci_ + 2)) + "\"";
          StartPending(TokKind::kRawString, "");
          size_t end = line.find(raw_term_, open + 1);
          size_t stop = end == std::string::npos ? n : end + raw_term_.size();
          pending_.text = line.substr(ci_, stop - ci_);
          BlankCode(li_, ci_, stop);
          if (end == std::string::npos) {
            in_raw_ = true;  // Run() appends the newline and continues.
            ci_ = stop;
            return;
          }
          FinishPending(li_, stop);
          ci_ = stop;
          continue;
        }
        // No '(' on the line: not a raw string; fall through so the R
        // lexes as an identifier and the quote as an ordinary string.
      }
      if (c == '"' || c == '\'') {
        char quote = c;
        size_t j = ci_ + 1;
        while (j < n) {
          if (line[j] == '\\') {
            j += 2;
            continue;
          }
          if (line[j] == quote) break;
          ++j;
        }
        size_t stop = std::min(j + 1, n);
        for (size_t k = ci_ + 1; k < stop && k < j; ++k) {
          BlankCode(li_, k, k + 1);
        }
        Emit(quote == '"' ? TokKind::kString : TokKind::kCharLit, li_, ci_,
             stop, line.substr(ci_, stop - ci_));
        ci_ = stop;
        continue;
      }
      if (IsIdentStart(c)) {
        size_t j = ci_ + 1;
        while (j < n && IsIdentChar(line[j])) ++j;
        Emit(TokKind::kIdent, li_, ci_, j, line.substr(ci_, j - ci_));
        ci_ = j;
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c)) ||
          (c == '.' && ci_ + 1 < n &&
           std::isdigit(static_cast<unsigned char>(line[ci_ + 1])))) {
        size_t j = ci_ + 1;
        while (j < n) {
          char d = line[j];
          if (IsIdentChar(d) || d == '.') {
            ++j;
          } else if (d == '\'' && j + 1 < n &&
                     std::isalnum(static_cast<unsigned char>(line[j + 1]))) {
            ++j;  // digit separator
          } else if ((d == '+' || d == '-') &&
                     (line[j - 1] == 'e' || line[j - 1] == 'E' ||
                      line[j - 1] == 'p' || line[j - 1] == 'P')) {
            ++j;
          } else {
            break;
          }
        }
        Emit(TokKind::kNumber, li_, ci_, j, line.substr(ci_, j - ci_));
        ci_ = j;
        continue;
      }
      // Punctuator: merge the multi-character operators the structural
      // passes care about; everything else is a single character.
      static const char* kPunct3[] = {"...", "->*", "<<=", ">>="};
      static const char* kPunct2[] = {"::", "->", "++", "--", "<<", ">>",
                                      "<=", ">=", "==", "!=", "&&", "||",
                                      "+=", "-=", "*=", "/=", "%=", "&=",
                                      "|=", "^=", "##"};
      size_t len = 1;
      for (const char* p : kPunct3) {
        if (line.compare(ci_, 3, p) == 0) {
          len = 3;
          break;
        }
      }
      if (len == 1) {
        for (const char* p : kPunct2) {
          if (line.compare(ci_, 2, p) == 0) {
            len = 2;
            break;
          }
        }
      }
      Emit(TokKind::kPunct, li_, ci_, ci_ + len, line.substr(ci_, len));
      ci_ += len;
    }
  }

  TokenizedFile& f_;
  size_t li_ = 0;
  size_t ci_ = 0;
  bool pp_ = false;
  bool in_block_ = false;
  bool in_raw_ = false;
  std::string raw_term_;
  Tok pending_;
};

}  // namespace

TokenizedFile Tokenize(const std::string& content) {
  TokenizedFile f;
  f.raw = SplitLines(content);
  f.code = f.raw;
  f.code_strings = f.raw;
  Lexer lexer(&f);
  lexer.Run();
  return f;
}

int NextSig(const TokenizedFile& f, int i) {
  for (int k = std::max(i, 0); k < static_cast<int>(f.tokens.size()); ++k) {
    if (IsSig(f.tokens[k])) return k;
  }
  return -1;
}

int PrevSig(const TokenizedFile& f, int i) {
  for (int k = std::min(i, static_cast<int>(f.tokens.size()) - 1); k >= 0;
       --k) {
    if (IsSig(f.tokens[k])) return k;
  }
  return -1;
}

}  // namespace dmr::lint
