#ifndef DMR_LINT_LINT_H_
#define DMR_LINT_LINT_H_

#include <string>
#include <vector>

namespace dmr::lint {

/// \brief dmr-lint: a token-level static checker for DMR determinism
/// hazards.
///
/// The simulator's contract (DESIGN.md "Determinism contract") is that a
/// run's observable output is a pure function of its configuration and
/// seeds. That contract is easy to break from far away: one call to a host
/// clock, one iteration over an unordered container that feeds a report,
/// one pointer value formatted into a trace, and two runs of the same
/// binary stop agreeing byte-for-byte. These hazards are invisible to the
/// type system and to tests that only run once, so they are linted.
///
/// The checker is deliberately lexical, not a real C++ front end: the
/// hazards it hunts are all syntactically local, and a lexical engine
/// keeps the tool dependency-free and fast enough to run on every tier-1
/// invocation. Since v2 the engine is token/scope-aware (lint/token.h,
/// lint/scope.h): one lexer pass produces a token stream plus the blanked
/// line views the regex checks run on, and a brace-scope tracker feeds the
/// statement-scoped suppressions, the false-positive filters, and the
/// shard-ownership checks (which read the DMR_SHARD_AFFINE /
/// DMR_CROSS_SHARD_OK / DMR_BARRIER_PHASE annotations of
/// src/sim/affinity.h). The remaining false-positive surface is what the
/// suppression comment is for:
///
///     legit_hazard();  // dmr-lint: allow(check-id) why this one is fine
///
/// An allow() on its own line (no code) covers the whole following
/// statement, including an attached brace block; the trailing form covers
/// the statement its line belongs to. The justification text is required —
/// an allow() without one is rejected and reported as a `lint-allow`
/// error — and every suppression keeps its justification so the JSON
/// report can audit deliberate exceptions.
///
/// Checks are rows in a data-driven table (see kChecks in lint.cc): a new
/// line-regex rule is one table entry, ~20 lines with tests.
enum class Severity : int {
  kNote = 0,
  kWarning = 1,
  kError = 2,
};

const char* SeverityName(Severity severity);

/// One hazard sighting. `suppressed` findings are reported (and counted in
/// the JSON audit trail) but never fail the build.
struct Finding {
  std::string check;          ///< check id, e.g. "wall-clock"
  Severity severity = Severity::kWarning;
  std::string file;           ///< path as given to the linter
  int line = 0;               ///< 1-based
  std::string message;
  bool suppressed = false;
  std::string justification;  ///< trailing text of the allow() comment
};

/// How a check inspects a file.
enum class CheckKind {
  /// Scan each code line (comments stripped; string-literal contents
  /// stripped unless `scan_strings`) against every pattern.
  kLineRegex,
  /// Flag range-for loops over locally declared unordered_map/unordered_set
  /// whose body emits formatted output (JSON, streams, printf): iteration
  /// order is libstdc++-internal and not part of the determinism contract.
  kUnorderedOutput,
  /// Flag DMR_CHECK* argument lists containing side effects (++/--,
  /// assignment, mutating member calls): checks must stay removable.
  kCheckSideEffect,
  /// Flag bare-statement calls to the named functions, whose Status/Result
  /// return value encodes failure and must be consumed.
  kIgnoredResult,
  /// v2-only: the shard-ownership checks. Uses of shard-affine state
  /// (names declared under DMR_SHARD_AFFINE plus the configured seam
  /// identifiers in `patterns`) must sit inside a scope or statement
  /// annotated DMR_CROSS_SHARD_OK / DMR_BARRIER_PHASE, or inside the body
  /// of a DMR_SHARD_AFFINE class (the state's own home). See
  /// src/sim/affinity.h for the vocabulary and DESIGN.md §18 for the
  /// contract being enforced.
  kShardOwnership,
};

/// One row of the check table. `patterns` holds regexes for kLineRegex and
/// function names for kIgnoredResult; the context-sensitive kinds have
/// their logic in the engine and use `patterns` as configuration (emit
/// patterns for kUnorderedOutput, mutator names for kCheckSideEffect).
struct CheckDef {
  const char* id;
  Severity severity;
  CheckKind kind;
  const char* message;
  std::vector<const char*> patterns;
  /// Path substrings exempt from this check (sanctioned seams, e.g. the
  /// HostClock implementation for wall-clock).
  std::vector<const char*> path_allow;
  /// kLineRegex only: keep string-literal contents when matching (for
  /// hazards that live inside format strings, like "%p").
  bool scan_strings = false;
};

/// The built-in determinism check table.
const std::vector<CheckDef>& BuiltinChecks();

/// Lints one in-memory file. `path` is used for reporting and for
/// path_allow exemptions. Findings come back sorted by (line, check id).
std::vector<Finding> LintContent(const std::string& path,
                                 const std::string& content);

/// Reads and lints one file on disk. I/O failures surface as a kError
/// finding with check id "io" so a vanished file cannot pass silently.
std::vector<Finding> LintPath(const std::string& path);

/// Recursively lints every C++ source under each root (.h/.hpp/.cc/.cpp),
/// visiting files in sorted order so the report is deterministic.
std::vector<Finding> LintTree(const std::vector<std::string>& roots);

/// Count of findings at or above `floor` that are not suppressed — the
/// CLI's exit-code signal.
int CountActionable(const std::vector<Finding>& findings, Severity floor);

/// Machine-readable report:
/// {"findings": [{check, severity, file, line, message, suppressed,
///   justification}...], "counts": {errors, warnings, notes, suppressed}}.
std::string FindingsToJson(const std::vector<Finding>& findings);

/// The lint baseline: per-(file, check) counts of unsuppressed findings at
/// or above `floor`, as deterministic JSON —
/// {"floor": "...", "entries": [{"file", "check", "count"}...]}.
/// tier-1 checks src/bench/examples against configs/lint_baseline.json:
/// pre-existing findings recorded there ride along, new ones block, and a
/// stale entry (baseline counts a finding that no longer exists) also
/// blocks so the file cannot rot or be doctored upward.
std::string BaselineToJson(const std::vector<Finding>& findings,
                           Severity floor);

/// Compares findings against a baseline document. Returns human-readable
/// delta lines (empty == exact match). A malformed baseline reports
/// through `error` and returns a single delta line.
std::vector<std::string> CompareBaseline(
    const std::vector<Finding>& findings, Severity floor,
    const std::string& baseline_json, std::string* error);

}  // namespace dmr::lint

#endif  // DMR_LINT_LINT_H_
