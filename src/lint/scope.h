#ifndef DMR_LINT_SCOPE_H_
#define DMR_LINT_SCOPE_H_

#include <string>
#include <vector>

#include "lint/token.h"

namespace dmr::lint {

/// \brief Brace-scope tracking and the per-file symbol table for the v2
/// engine.
///
/// BuildScopes() walks the token stream once, classifying every brace pair
/// (namespace / class / function / lambda / plain block) from the tokens
/// in its head, recording any DMR shard-ownership annotations it finds
/// there, and collecting the names declared with DMR_SHARD_AFFINE. The
/// result is deliberately approximate — dmr-lint is a lexical tool, not a
/// C++ front end — but brace matching plus head classification is exact
/// enough for statement-scoped suppressions and the shard-ownership
/// checks, and it degrades safely: an unrecognized construct becomes a
/// plain block, never a parse failure.
enum class ScopeKind : unsigned char {
  kFile,
  kNamespace,
  kClass,     // struct/class/union/enum body
  kFunction,  // function or member-function body
  kLambda,    // lambda body: annotations do NOT flow in from outside
  kBlock,     // control statement, bare block, or initializer braces
};

/// Annotation bits found in a scope's head (see src/sim/affinity.h for the
/// vocabulary's meaning).
inline constexpr unsigned kAnnCrossShardOk = 1u << 0;
inline constexpr unsigned kAnnBarrierPhase = 1u << 1;
inline constexpr unsigned kAnnShardAffine = 1u << 2;

struct Scope {
  ScopeKind kind = ScopeKind::kBlock;
  int parent = -1;
  unsigned annotations = 0;  ///< kAnn* bits from the scope head
  std::string name;          ///< namespace/class/function name when known
  int open_token = -1;       ///< index of the '{' (-1 for the file scope)
  int close_token = -1;      ///< index of the '}' (-1 when unbalanced)
};

/// A name declared under DMR_SHARD_AFFINE: either a variable/member
/// (is_type == false) whose every use must be sanctioned, or a type
/// (is_type == true) whose class body is its sanctioned home.
struct AffineSymbol {
  std::string name;
  int decl_token = -1;
  int scope = 0;  ///< scope the declaration appears in
  bool is_type = false;
};

struct ScopeTree {
  std::vector<Scope> scopes;       ///< [0] is the file scope
  std::vector<int> token_scope;    ///< token index -> innermost scope id
  std::vector<AffineSymbol> affine_symbols;
};

ScopeTree BuildScopes(const TokenizedFile& f);

/// True when `scope` or an enclosing scope carries one of `bits`. The walk
/// refuses to cross an unannotated lambda boundary: a lambda can leave the
/// thread its enclosing function's annotation vouched for (the RunParallel
/// worker bodies are exactly this case), so sanction must be restated on
/// the lambda itself.
bool ScopeSanctioned(const ScopeTree& t, int scope, unsigned bits);

/// The [first, last] token range (inclusive, significant tokens) of the
/// statement containing token `i`. A statement runs between `;`/`{`/`}`
/// boundaries; a brace block opened inside it (function body, initializer
/// list) is included through its closing brace.
struct StmtRange {
  int first = -1;
  int last = -1;
};
StmtRange StatementAround(const TokenizedFile& f, const ScopeTree& t, int i);

}  // namespace dmr::lint

#endif  // DMR_LINT_SCOPE_H_
