#include "lint/scope.h"

#include <algorithm>

namespace dmr::lint {

namespace {

bool IsPunct(const Tok& t, const char* text) {
  return t.kind == TokKind::kPunct && t.text == text;
}

bool IsIdent(const Tok& t, const char* text) {
  return t.kind == TokKind::kIdent && t.text == text;
}

bool IsBoundary(const Tok& t) {
  return t.kind == TokKind::kPunct &&
         (t.text == ";" || t.text == "{" || t.text == "}");
}

bool IsAnnotation(const Tok& t, unsigned* bit) {
  if (t.kind != TokKind::kIdent) return false;
  if (t.text == "DMR_CROSS_SHARD_OK") {
    *bit = kAnnCrossShardOk;
    return true;
  }
  if (t.text == "DMR_BARRIER_PHASE") {
    *bit = kAnnBarrierPhase;
    return true;
  }
  if (t.text == "DMR_SHARD_AFFINE") {
    *bit = kAnnShardAffine;
    return true;
  }
  return false;
}

/// Index of the matching '(' for the ')' at `close`, or -1.
int MatchParenBack(const TokenizedFile& f, int close) {
  int depth = 0;
  for (int k = close; k >= 0; k = PrevSig(f, k - 1)) {
    const Tok& t = f.tokens[k];
    if (IsPunct(t, ")")) ++depth;
    if (IsPunct(t, "(")) {
      if (--depth == 0) return k;
    }
  }
  return -1;
}

struct Classified {
  ScopeKind kind = ScopeKind::kBlock;
  std::string name;
};

/// Classifies the brace whose head ends in `...)`: a function body, a
/// lambda body, or a control-statement block.
Classified ClassifyAfterParen(const TokenizedFile& f, int close) {
  Classified c;
  int open = MatchParenBack(f, close);
  if (open < 0) return c;
  int b = PrevSig(f, open - 1);
  if (b < 0) return c;
  const Tok& t = f.tokens[b];
  if (t.kind == TokKind::kIdent) {
    if (t.text == "if" || t.text == "for" || t.text == "while" ||
        t.text == "switch" || t.text == "catch") {
      return c;  // control statement
    }
    c.kind = ScopeKind::kFunction;
    c.name = t.text;
    return c;
  }
  if (IsPunct(t, "]")) {
    c.kind = ScopeKind::kLambda;
    return c;
  }
  // `operator<<(...)` and friends: symbol preceded by the operator keyword.
  if (t.kind == TokKind::kPunct) {
    int before = PrevSig(f, b - 1);
    if (before >= 0 && IsIdent(f.tokens[before], "operator")) {
      c.kind = ScopeKind::kFunction;
      c.name = "operator" + t.text;
      return c;
    }
  }
  return c;
}

/// Name of a struct/class/enum: the first identifier after the keyword
/// that is not an annotation or specifier.
std::string ClassName(const TokenizedFile& f, int keyword, int brace) {
  for (int k = NextSig(f, keyword + 1); k >= 0 && k < brace;
       k = NextSig(f, k + 1)) {
    const Tok& t = f.tokens[k];
    if (IsPunct(t, ":") || IsPunct(t, "{")) break;
    if (t.kind != TokKind::kIdent) continue;
    if (t.text == "class" || t.text == "struct" || t.text == "final" ||
        t.text == "alignas") {
      continue;
    }
    unsigned bit;
    if (IsAnnotation(t, &bit)) continue;
    return t.text;
  }
  return "";
}

/// Classifies the brace at token `i` from the tokens in its head.
Classified Classify(const TokenizedFile& f, int i) {
  Classified c;
  int p = PrevSig(f, i - 1);
  if (p < 0) return c;
  const Tok& tp = f.tokens[p];
  if (tp.kind == TokKind::kPunct) {
    if (tp.text == ")") return ClassifyAfterParen(f, p);
    if (tp.text == "]") {
      c.kind = ScopeKind::kLambda;
      return c;
    }
    return c;  // =, {, (, comma, ...: initializer or bare block
  }
  // The head ends in identifiers (trailing specifiers, annotations, type
  // names). Walk it backwards looking for the defining construct.
  for (int j = p; j >= 0; j = PrevSig(f, j - 1)) {
    const Tok& t = f.tokens[j];
    if (t.kind == TokKind::kPunct) {
      if (IsBoundary(t)) break;
      if (t.text == ")") return ClassifyAfterParen(f, j);
      if (t.text == "]") {
        c.kind = ScopeKind::kLambda;
        return c;
      }
      if (t.text == "=") break;  // `using X = decltype{...}`-ish: block
      continue;                  // ::, <, >, *, &, ->, commas, ...
    }
    if (t.kind == TokKind::kIdent) {
      if (t.text == "namespace") {
        c.kind = ScopeKind::kNamespace;
        c.name = ClassName(f, j, i);
        return c;
      }
      if (t.text == "struct" || t.text == "class" || t.text == "union" ||
          t.text == "enum") {
        c.kind = ScopeKind::kClass;
        c.name = ClassName(f, j, i);
        return c;
      }
      if (t.text == "do" || t.text == "else" || t.text == "try") return c;
    }
  }
  return c;
}

/// kAnn* bits in the head of the brace at `i` (tokens since the previous
/// statement boundary).
unsigned HeadAnnotations(const TokenizedFile& f, int i) {
  unsigned bits = 0;
  for (int j = PrevSig(f, i - 1); j >= 0; j = PrevSig(f, j - 1)) {
    const Tok& t = f.tokens[j];
    if (IsBoundary(t)) break;
    unsigned bit;
    if (IsAnnotation(t, &bit)) bits |= bit;
  }
  return bits;
}

/// Collects names declared under DMR_SHARD_AFFINE. For a type annotation
/// (`struct DMR_SHARD_AFFINE Name`) the type name is recorded; otherwise
/// the declarator scan walks forward to the declared variable/member name
/// (the last depth-0 identifier before `;`, `=`, `{`, `,` or an
/// unbalanced `)`).
void CollectAffineSymbols(const TokenizedFile& f,
                          const std::vector<int>& token_scope,
                          std::vector<AffineSymbol>* out) {
  const int n = static_cast<int>(f.tokens.size());
  for (int i = 0; i < n; ++i) {
    if (!IsSig(f.tokens[i]) || !IsIdent(f.tokens[i], "DMR_SHARD_AFFINE")) {
      continue;
    }
    AffineSymbol sym;
    sym.decl_token = i;
    sym.scope = token_scope[i];
    int p = PrevSig(f, i - 1);
    if (p >= 0 && (IsIdent(f.tokens[p], "struct") ||
                   IsIdent(f.tokens[p], "class") ||
                   IsIdent(f.tokens[p], "union"))) {
      int name = NextSig(f, i + 1);
      if (name >= 0 && f.tokens[name].kind == TokKind::kIdent) {
        sym.name = f.tokens[name].text;
        sym.is_type = true;
        out->push_back(std::move(sym));
      }
      continue;
    }
    int angle = 0, paren = 0, square = 0;
    std::string last_ident;
    for (int k = NextSig(f, i + 1); k >= 0; k = NextSig(f, k + 1)) {
      const Tok& t = f.tokens[k];
      if (t.kind == TokKind::kPunct) {
        if (t.text == "<") ++angle;
        if (t.text == ">") angle = std::max(0, angle - 1);
        if (t.text == ">>") angle = std::max(0, angle - 2);
        if (t.text == "(" ) ++paren;
        if (t.text == "[") ++square;
        if (t.text == "]") --square;
        if (t.text == ")") {
          if (--paren < 0) break;  // end of an enclosing parameter list
        }
        if (angle == 0 && paren == 0 && square == 0 &&
            (t.text == ";" || t.text == "=" || t.text == "{" ||
             t.text == ",")) {
          break;
        }
      } else if (t.kind == TokKind::kIdent && angle == 0 && paren == 0 &&
                 square == 0) {
        last_ident = t.text;
      }
    }
    if (!last_ident.empty()) {
      sym.name = std::move(last_ident);
      out->push_back(std::move(sym));
    }
  }
}

}  // namespace

ScopeTree BuildScopes(const TokenizedFile& f) {
  ScopeTree tree;
  tree.scopes.push_back(Scope{ScopeKind::kFile, -1, 0, "", -1, -1});
  tree.token_scope.assign(f.tokens.size(), 0);
  std::vector<int> stack = {0};
  const int n = static_cast<int>(f.tokens.size());
  for (int i = 0; i < n; ++i) {
    const Tok& t = f.tokens[i];
    if (!IsSig(t)) {
      tree.token_scope[i] = stack.back();
      continue;
    }
    if (IsPunct(t, "{")) {
      Classified c = Classify(f, i);
      Scope s;
      s.kind = c.kind;
      s.name = std::move(c.name);
      s.parent = stack.back();
      s.annotations = HeadAnnotations(f, i);
      s.open_token = i;
      int id = static_cast<int>(tree.scopes.size());
      tree.scopes.push_back(std::move(s));
      tree.token_scope[i] = id;
      stack.push_back(id);
      continue;
    }
    if (IsPunct(t, "}")) {
      tree.token_scope[i] = stack.back();
      if (stack.size() > 1) {
        tree.scopes[stack.back()].close_token = i;
        stack.pop_back();
      }
      continue;
    }
    tree.token_scope[i] = stack.back();
  }
  CollectAffineSymbols(f, tree.token_scope, &tree.affine_symbols);
  return tree;
}

bool ScopeSanctioned(const ScopeTree& t, int scope, unsigned bits) {
  for (int s = scope; s >= 0; s = t.scopes[s].parent) {
    if (t.scopes[s].annotations & bits) return true;
    // A lambda that does not restate the sanction blocks inheritance: the
    // body may run on a different thread than the enclosing function.
    if (t.scopes[s].kind == ScopeKind::kLambda) return false;
  }
  return false;
}

StmtRange StatementAround(const TokenizedFile& f, const ScopeTree& t,
                          int i) {
  StmtRange r;
  const int n = static_cast<int>(f.tokens.size());
  if (i < 0 || i >= n) return r;
  int first = i;
  for (int p = PrevSig(f, first - 1); p >= 0; p = PrevSig(f, p - 1)) {
    if (IsBoundary(f.tokens[p])) break;
    first = p;
  }
  r.first = first;
  int last = first;
  int depth = 0;
  for (int k = first; k >= 0; k = NextSig(f, k + 1)) {
    const Tok& tok = f.tokens[k];
    last = k;
    if (tok.kind != TokKind::kPunct) continue;
    if (tok.text == "(" || tok.text == "[") ++depth;
    if (tok.text == ")" || tok.text == "]") {
      if (--depth < 0) {  // left the enclosing expression
        int p = PrevSig(f, k - 1);
        last = p >= 0 && p >= first ? p : k;
        break;
      }
    }
    if (depth != 0) continue;
    if (tok.text == ";") break;  // last == k
    if (tok.text == "{") {
      int close = t.token_scope[k] >= 0
                      ? t.scopes[t.token_scope[k]].close_token
                      : -1;
      if (close < 0) {
        last = n - 1;
        break;
      }
      // Include a directly attached `;` (type definitions, do-while).
      int after = NextSig(f, close + 1);
      last = (after >= 0 && IsPunct(f.tokens[after], ";")) ? after : close;
      break;
    }
    if (tok.text == "}") {  // end of the enclosing block
      int p = PrevSig(f, k - 1);
      last = p >= 0 && p >= first ? p : k;
      break;
    }
  }
  r.last = last;
  return r;
}

}  // namespace dmr::lint
