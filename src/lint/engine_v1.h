#ifndef DMR_LINT_ENGINE_V1_H_
#define DMR_LINT_ENGINE_V1_H_

#include <string>
#include <vector>

#include "lint/lint.h"

namespace dmr::lint::v1 {

/// \brief The original (PR 5) line-scanning lint engine, kept verbatim.
///
/// lint.cc's LintContent() is the v2 token/scope engine; this is the v1
/// line-regex implementation it replaced, preserved as the oracle for the
/// differential test (tests/lint/lint_diff_test.cc): on every pre-v2
/// fixture the two engines must return byte-identical findings. v1 only
/// knows the original four check kinds — CheckKind::kShardOwnership rows
/// are skipped, and suppressions cover a single line (the allow's own, or
/// the next code line), not the following statement.
std::vector<Finding> LintContentV1(const std::string& path,
                                   const std::string& content);

}  // namespace dmr::lint::v1

#endif  // DMR_LINT_ENGINE_V1_H_
