// dmr-lint: the DMR determinism checker CLI.
//
//   dmr-lint [--json=PATH] [--format=text|github]
//            [--baseline=PATH] [--emit-baseline=PATH]
//            [--fail-on=error|warning|note] [PATH...]
//
// PATHs are files or directories (default: src bench examples). Prints
// compiler-style findings (or GitHub workflow commands with
// --format=github), optionally writes the JSON report, and exits nonzero
// when any unsuppressed finding at or above the --fail-on floor (default:
// warning) exists — that is the tier-1 gate.
//
// --baseline=PATH compares the run against a checked-in baseline
// (configs/lint_baseline.json): recorded findings ride along, new ones
// fail, and stale entries fail too so the file cannot rot or be doctored.
// --emit-baseline=PATH regenerates that file from the current findings.
//
// Exit codes: 0 clean, 1 findings at/above the floor (or baseline
// mismatch), 2 usage error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: dmr-lint [--json=PATH] [--format=text|github]\n"
      "                [--baseline=PATH] [--emit-baseline=PATH]\n"
      "                [--fail-on=error|warning|note] [PATH...]\n"
      "Scans C++ sources for DMR determinism hazards; see src/lint/lint.h\n"
      "for the check table and the `// dmr-lint: allow(<check>)` "
      "suppression syntax.\n");
  return 2;
}

// GitHub Actions workflow command per finding: annotates the PR diff.
// Severity note maps to `notice`, which is what Actions calls it.
void PrintGithub(const dmr::lint::Finding& f) {
  const char* level = "error";
  if (f.severity == dmr::lint::Severity::kWarning) level = "warning";
  if (f.severity == dmr::lint::Severity::kNote) level = "notice";
  std::printf("::%s file=%s,line=%d::[%s] %s\n", level, f.file.c_str(),
              f.line, f.check.c_str(), f.message.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  using dmr::lint::Finding;
  using dmr::lint::Severity;

  std::string json_path;
  std::string baseline_path;
  std::string emit_baseline_path;
  bool github = false;
  Severity floor = Severity::kWarning;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--baseline=", 0) == 0) {
      baseline_path = arg.substr(11);
    } else if (arg.rfind("--emit-baseline=", 0) == 0) {
      emit_baseline_path = arg.substr(16);
    } else if (arg.rfind("--format=", 0) == 0) {
      std::string format = arg.substr(9);
      if (format == "github") {
        github = true;
      } else if (format != "text") {
        return Usage();
      }
    } else if (arg.rfind("--fail-on=", 0) == 0) {
      std::string level = arg.substr(10);
      if (level == "error") {
        floor = Severity::kError;
      } else if (level == "warning") {
        floor = Severity::kWarning;
      } else if (level == "note") {
        floor = Severity::kNote;
      } else {
        return Usage();
      }
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "bench", "examples"};

  std::vector<Finding> findings = dmr::lint::LintTree(roots);

  int suppressed = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    if (github) {
      PrintGithub(f);
    } else {
      std::fprintf(stderr, "%s:%d: %s: [%s] %s\n", f.file.c_str(), f.line,
                   dmr::lint::SeverityName(f.severity), f.check.c_str(),
                   f.message.c_str());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "dmr-lint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << dmr::lint::FindingsToJson(findings);
  }

  if (!emit_baseline_path.empty()) {
    std::ofstream out(emit_baseline_path);
    if (!out) {
      std::fprintf(stderr, "dmr-lint: cannot write %s\n",
                   emit_baseline_path.c_str());
      return 2;
    }
    out << dmr::lint::BaselineToJson(findings, floor);
  }

  int actionable = dmr::lint::CountActionable(findings, floor);
  bool baseline_ok = true;
  if (!baseline_path.empty()) {
    std::ifstream in(baseline_path);
    if (!in) {
      std::fprintf(stderr, "dmr-lint: cannot read baseline %s\n",
                   baseline_path.c_str());
      return 2;
    }
    std::ostringstream doc;
    doc << in.rdbuf();
    std::string error;
    std::vector<std::string> deltas =
        dmr::lint::CompareBaseline(findings, floor, doc.str(), &error);
    for (const std::string& delta : deltas) {
      if (github) {
        std::printf("::error::baseline %s: %s\n", baseline_path.c_str(),
                    delta.c_str());
      } else {
        std::fprintf(stderr, "dmr-lint: baseline %s: %s\n",
                     baseline_path.c_str(), delta.c_str());
      }
    }
    if (!error.empty()) {
      std::fprintf(stderr, "dmr-lint: baseline parse: %s\n", error.c_str());
    }
    baseline_ok = deltas.empty();
    // With a baseline, recorded findings are the ride-along set: the gate
    // is the comparison, not the raw count.
    if (baseline_ok) actionable = 0;
  }

  std::fprintf(stderr,
               "dmr-lint: %zu finding(s), %d actionable, %d suppressed\n",
               findings.size(), actionable, suppressed);
  return (actionable > 0 || !baseline_ok) ? 1 : 0;
}
