// dmr-lint: the DMR determinism checker CLI.
//
//   dmr-lint [--json=PATH] [--fail-on=error|warning|note] [PATH...]
//
// PATHs are files or directories (default: src bench examples). Prints
// compiler-style findings, optionally writes the JSON report, and exits
// nonzero when any unsuppressed finding at or above the --fail-on floor
// (default: warning) exists — that is the tier-1 gate.
//
// Exit codes: 0 clean, 1 findings at/above the floor, 2 usage error.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "lint/lint.h"

namespace {

int Usage() {
  std::fprintf(
      stderr,
      "usage: dmr-lint [--json=PATH] [--fail-on=error|warning|note] "
      "[PATH...]\n"
      "Scans C++ sources for DMR determinism hazards; see src/lint/lint.h\n"
      "for the check table and the `// dmr-lint: allow(<check>)` "
      "suppression syntax.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  using dmr::lint::Finding;
  using dmr::lint::Severity;

  std::string json_path;
  Severity floor = Severity::kWarning;
  std::vector<std::string> roots;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg.rfind("--fail-on=", 0) == 0) {
      std::string level = arg.substr(10);
      if (level == "error") {
        floor = Severity::kError;
      } else if (level == "warning") {
        floor = Severity::kWarning;
      } else if (level == "note") {
        floor = Severity::kNote;
      } else {
        return Usage();
      }
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      return Usage();
    } else {
      roots.push_back(arg);
    }
  }
  if (roots.empty()) roots = {"src", "bench", "examples"};

  std::vector<Finding> findings = dmr::lint::LintTree(roots);

  int suppressed = 0;
  for (const Finding& f : findings) {
    if (f.suppressed) {
      ++suppressed;
      continue;
    }
    std::fprintf(stderr, "%s:%d: %s: [%s] %s\n", f.file.c_str(), f.line,
                 dmr::lint::SeverityName(f.severity), f.check.c_str(),
                 f.message.c_str());
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path);
    if (!out) {
      std::fprintf(stderr, "dmr-lint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << dmr::lint::FindingsToJson(findings);
  }

  int actionable = dmr::lint::CountActionable(findings, floor);
  std::fprintf(stderr,
               "dmr-lint: %zu finding(s), %d actionable, %d suppressed\n",
               findings.size(), actionable, suppressed);
  return actionable > 0 ? 1 : 0;
}
